# Empty dependencies file for aecdsm_tests.
# This may be replaced when dependencies are built.
