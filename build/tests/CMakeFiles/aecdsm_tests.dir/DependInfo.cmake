
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aec_units.cpp" "tests/CMakeFiles/aecdsm_tests.dir/test_aec_units.cpp.o" "gcc" "tests/CMakeFiles/aecdsm_tests.dir/test_aec_units.cpp.o.d"
  "/root/repo/tests/test_apps.cpp" "tests/CMakeFiles/aecdsm_tests.dir/test_apps.cpp.o" "gcc" "tests/CMakeFiles/aecdsm_tests.dir/test_apps.cpp.o.d"
  "/root/repo/tests/test_apps_structure.cpp" "tests/CMakeFiles/aecdsm_tests.dir/test_apps_structure.cpp.o" "gcc" "tests/CMakeFiles/aecdsm_tests.dir/test_apps_structure.cpp.o.d"
  "/root/repo/tests/test_determinism.cpp" "tests/CMakeFiles/aecdsm_tests.dir/test_determinism.cpp.o" "gcc" "tests/CMakeFiles/aecdsm_tests.dir/test_determinism.cpp.o.d"
  "/root/repo/tests/test_diff.cpp" "tests/CMakeFiles/aecdsm_tests.dir/test_diff.cpp.o" "gcc" "tests/CMakeFiles/aecdsm_tests.dir/test_diff.cpp.o.d"
  "/root/repo/tests/test_dsm_context.cpp" "tests/CMakeFiles/aecdsm_tests.dir/test_dsm_context.cpp.o" "gcc" "tests/CMakeFiles/aecdsm_tests.dir/test_dsm_context.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/aecdsm_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/aecdsm_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_erc_units.cpp" "tests/CMakeFiles/aecdsm_tests.dir/test_erc_units.cpp.o" "gcc" "tests/CMakeFiles/aecdsm_tests.dir/test_erc_units.cpp.o.d"
  "/root/repo/tests/test_failure_modes.cpp" "tests/CMakeFiles/aecdsm_tests.dir/test_failure_modes.cpp.o" "gcc" "tests/CMakeFiles/aecdsm_tests.dir/test_failure_modes.cpp.o.d"
  "/root/repo/tests/test_harness.cpp" "tests/CMakeFiles/aecdsm_tests.dir/test_harness.cpp.o" "gcc" "tests/CMakeFiles/aecdsm_tests.dir/test_harness.cpp.o.d"
  "/root/repo/tests/test_lap.cpp" "tests/CMakeFiles/aecdsm_tests.dir/test_lap.cpp.o" "gcc" "tests/CMakeFiles/aecdsm_tests.dir/test_lap.cpp.o.d"
  "/root/repo/tests/test_mem_models.cpp" "tests/CMakeFiles/aecdsm_tests.dir/test_mem_models.cpp.o" "gcc" "tests/CMakeFiles/aecdsm_tests.dir/test_mem_models.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/aecdsm_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/aecdsm_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_property_random.cpp" "tests/CMakeFiles/aecdsm_tests.dir/test_property_random.cpp.o" "gcc" "tests/CMakeFiles/aecdsm_tests.dir/test_property_random.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/aecdsm_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/aecdsm_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_tmk_units.cpp" "tests/CMakeFiles/aecdsm_tests.dir/test_tmk_units.cpp.o" "gcc" "tests/CMakeFiles/aecdsm_tests.dir/test_tmk_units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/aecdsm_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/aecdsm_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/aec/CMakeFiles/aecdsm_aec.dir/DependInfo.cmake"
  "/root/repo/build/src/tmk/CMakeFiles/aecdsm_tmk.dir/DependInfo.cmake"
  "/root/repo/build/src/erc/CMakeFiles/aecdsm_erc.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/aecdsm_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/aecdsm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aecdsm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/aecdsm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aecdsm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
