# Empty dependencies file for lock_prediction.
# This may be replaced when dependencies are built.
