file(REMOVE_RECURSE
  "CMakeFiles/lock_prediction.dir/lock_prediction.cpp.o"
  "CMakeFiles/lock_prediction.dir/lock_prediction.cpp.o.d"
  "lock_prediction"
  "lock_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
