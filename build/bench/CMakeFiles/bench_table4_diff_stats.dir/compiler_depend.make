# Empty compiler generated dependencies file for bench_table4_diff_stats.
# This may be replaced when dependencies are built.
