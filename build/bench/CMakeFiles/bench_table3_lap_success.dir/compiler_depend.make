# Empty compiler generated dependencies file for bench_table3_lap_success.
# This may be replaced when dependencies are built.
