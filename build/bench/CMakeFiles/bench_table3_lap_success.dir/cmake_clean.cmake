file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_lap_success.dir/bench_table3_lap_success.cpp.o"
  "CMakeFiles/bench_table3_lap_success.dir/bench_table3_lap_success.cpp.o.d"
  "bench_table3_lap_success"
  "bench_table3_lap_success.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_lap_success.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
