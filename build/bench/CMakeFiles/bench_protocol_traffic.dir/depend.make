# Empty dependencies file for bench_protocol_traffic.
# This may be replaced when dependencies are built.
