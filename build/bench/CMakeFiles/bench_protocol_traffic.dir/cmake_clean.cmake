file(REMOVE_RECURSE
  "CMakeFiles/bench_protocol_traffic.dir/bench_protocol_traffic.cpp.o"
  "CMakeFiles/bench_protocol_traffic.dir/bench_protocol_traffic.cpp.o.d"
  "bench_protocol_traffic"
  "bench_protocol_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_protocol_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
