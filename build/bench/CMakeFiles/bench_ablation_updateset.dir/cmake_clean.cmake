file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_updateset.dir/bench_ablation_updateset.cpp.o"
  "CMakeFiles/bench_ablation_updateset.dir/bench_ablation_updateset.cpp.o.d"
  "bench_ablation_updateset"
  "bench_ablation_updateset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_updateset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
