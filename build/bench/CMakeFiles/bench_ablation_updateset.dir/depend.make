# Empty dependencies file for bench_ablation_updateset.
# This may be replaced when dependencies are built.
