file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_affinity.dir/bench_ablation_affinity.cpp.o"
  "CMakeFiles/bench_ablation_affinity.dir/bench_ablation_affinity.cpp.o.d"
  "bench_ablation_affinity"
  "bench_ablation_affinity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_affinity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
