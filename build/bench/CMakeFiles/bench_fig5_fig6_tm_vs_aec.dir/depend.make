# Empty dependencies file for bench_fig5_fig6_tm_vs_aec.
# This may be replaced when dependencies are built.
