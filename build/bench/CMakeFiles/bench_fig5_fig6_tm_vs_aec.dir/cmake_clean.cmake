file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_fig6_tm_vs_aec.dir/bench_fig5_fig6_tm_vs_aec.cpp.o"
  "CMakeFiles/bench_fig5_fig6_tm_vs_aec.dir/bench_fig5_fig6_tm_vs_aec.cpp.o.d"
  "bench_fig5_fig6_tm_vs_aec"
  "bench_fig5_fig6_tm_vs_aec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_fig6_tm_vs_aec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
