
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_fault_overhead.cpp" "bench/CMakeFiles/bench_fig3_fault_overhead.dir/bench_fig3_fault_overhead.cpp.o" "gcc" "bench/CMakeFiles/bench_fig3_fault_overhead.dir/bench_fig3_fault_overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/aecdsm_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/aecdsm_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/tmk/CMakeFiles/aecdsm_tmk.dir/DependInfo.cmake"
  "/root/repo/build/src/erc/CMakeFiles/aecdsm_erc.dir/DependInfo.cmake"
  "/root/repo/build/src/aec/CMakeFiles/aecdsm_aec.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/aecdsm_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/aecdsm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aecdsm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/aecdsm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aecdsm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
