file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_syncevents.dir/bench_table2_syncevents.cpp.o"
  "CMakeFiles/bench_table2_syncevents.dir/bench_table2_syncevents.cpp.o.d"
  "bench_table2_syncevents"
  "bench_table2_syncevents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_syncevents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
