file(REMOVE_RECURSE
  "CMakeFiles/bench_lap_robustness.dir/bench_lap_robustness.cpp.o"
  "CMakeFiles/bench_lap_robustness.dir/bench_lap_robustness.cpp.o.d"
  "bench_lap_robustness"
  "bench_lap_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lap_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
