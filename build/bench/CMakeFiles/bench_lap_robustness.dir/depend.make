# Empty dependencies file for bench_lap_robustness.
# This may be replaced when dependencies are built.
