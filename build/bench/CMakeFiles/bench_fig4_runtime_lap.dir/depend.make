# Empty dependencies file for bench_fig4_runtime_lap.
# This may be replaced when dependencies are built.
