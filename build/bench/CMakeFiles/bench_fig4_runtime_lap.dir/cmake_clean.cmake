file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_runtime_lap.dir/bench_fig4_runtime_lap.cpp.o"
  "CMakeFiles/bench_fig4_runtime_lap.dir/bench_fig4_runtime_lap.cpp.o.d"
  "bench_fig4_runtime_lap"
  "bench_fig4_runtime_lap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_runtime_lap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
