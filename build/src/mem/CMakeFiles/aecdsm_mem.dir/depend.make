# Empty dependencies file for aecdsm_mem.
# This may be replaced when dependencies are built.
