file(REMOVE_RECURSE
  "CMakeFiles/aecdsm_mem.dir/diff.cpp.o"
  "CMakeFiles/aecdsm_mem.dir/diff.cpp.o.d"
  "libaecdsm_mem.a"
  "libaecdsm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aecdsm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
