file(REMOVE_RECURSE
  "libaecdsm_mem.a"
)
