file(REMOVE_RECURSE
  "CMakeFiles/aecdsm_harness.dir/format.cpp.o"
  "CMakeFiles/aecdsm_harness.dir/format.cpp.o.d"
  "CMakeFiles/aecdsm_harness.dir/lap_report.cpp.o"
  "CMakeFiles/aecdsm_harness.dir/lap_report.cpp.o.d"
  "CMakeFiles/aecdsm_harness.dir/runner.cpp.o"
  "CMakeFiles/aecdsm_harness.dir/runner.cpp.o.d"
  "libaecdsm_harness.a"
  "libaecdsm_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aecdsm_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
