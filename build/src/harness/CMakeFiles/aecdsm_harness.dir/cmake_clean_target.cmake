file(REMOVE_RECURSE
  "libaecdsm_harness.a"
)
