# Empty dependencies file for aecdsm_harness.
# This may be replaced when dependencies are built.
