file(REMOVE_RECURSE
  "CMakeFiles/aecdsm_net.dir/mesh.cpp.o"
  "CMakeFiles/aecdsm_net.dir/mesh.cpp.o.d"
  "libaecdsm_net.a"
  "libaecdsm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aecdsm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
