# Empty dependencies file for aecdsm_net.
# This may be replaced when dependencies are built.
