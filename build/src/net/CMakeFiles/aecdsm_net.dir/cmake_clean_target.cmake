file(REMOVE_RECURSE
  "libaecdsm_net.a"
)
