# Empty dependencies file for aecdsm_common.
# This may be replaced when dependencies are built.
