file(REMOVE_RECURSE
  "CMakeFiles/aecdsm_common.dir/log.cpp.o"
  "CMakeFiles/aecdsm_common.dir/log.cpp.o.d"
  "CMakeFiles/aecdsm_common.dir/params.cpp.o"
  "CMakeFiles/aecdsm_common.dir/params.cpp.o.d"
  "libaecdsm_common.a"
  "libaecdsm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aecdsm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
