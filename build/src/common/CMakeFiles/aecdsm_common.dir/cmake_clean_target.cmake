file(REMOVE_RECURSE
  "libaecdsm_common.a"
)
