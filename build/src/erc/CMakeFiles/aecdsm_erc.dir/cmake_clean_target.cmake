file(REMOVE_RECURSE
  "libaecdsm_erc.a"
)
