# Empty compiler generated dependencies file for aecdsm_erc.
# This may be replaced when dependencies are built.
