file(REMOVE_RECURSE
  "CMakeFiles/aecdsm_erc.dir/protocol.cpp.o"
  "CMakeFiles/aecdsm_erc.dir/protocol.cpp.o.d"
  "libaecdsm_erc.a"
  "libaecdsm_erc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aecdsm_erc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
