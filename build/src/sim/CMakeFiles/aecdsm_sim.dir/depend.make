# Empty dependencies file for aecdsm_sim.
# This may be replaced when dependencies are built.
