file(REMOVE_RECURSE
  "CMakeFiles/aecdsm_sim.dir/cothread.cpp.o"
  "CMakeFiles/aecdsm_sim.dir/cothread.cpp.o.d"
  "CMakeFiles/aecdsm_sim.dir/processor.cpp.o"
  "CMakeFiles/aecdsm_sim.dir/processor.cpp.o.d"
  "libaecdsm_sim.a"
  "libaecdsm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aecdsm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
