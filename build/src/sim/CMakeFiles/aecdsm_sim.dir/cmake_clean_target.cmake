file(REMOVE_RECURSE
  "libaecdsm_sim.a"
)
