# Empty compiler generated dependencies file for aecdsm_aec.
# This may be replaced when dependencies are built.
