file(REMOVE_RECURSE
  "CMakeFiles/aecdsm_aec.dir/lap.cpp.o"
  "CMakeFiles/aecdsm_aec.dir/lap.cpp.o.d"
  "CMakeFiles/aecdsm_aec.dir/protocol.cpp.o"
  "CMakeFiles/aecdsm_aec.dir/protocol.cpp.o.d"
  "CMakeFiles/aecdsm_aec.dir/suite.cpp.o"
  "CMakeFiles/aecdsm_aec.dir/suite.cpp.o.d"
  "libaecdsm_aec.a"
  "libaecdsm_aec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aecdsm_aec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
