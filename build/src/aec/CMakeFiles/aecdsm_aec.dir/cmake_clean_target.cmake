file(REMOVE_RECURSE
  "libaecdsm_aec.a"
)
