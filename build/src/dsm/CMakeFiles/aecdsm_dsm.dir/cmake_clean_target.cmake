file(REMOVE_RECURSE
  "libaecdsm_dsm.a"
)
