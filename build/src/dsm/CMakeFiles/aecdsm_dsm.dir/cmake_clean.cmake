file(REMOVE_RECURSE
  "CMakeFiles/aecdsm_dsm.dir/context.cpp.o"
  "CMakeFiles/aecdsm_dsm.dir/context.cpp.o.d"
  "CMakeFiles/aecdsm_dsm.dir/machine.cpp.o"
  "CMakeFiles/aecdsm_dsm.dir/machine.cpp.o.d"
  "CMakeFiles/aecdsm_dsm.dir/system.cpp.o"
  "CMakeFiles/aecdsm_dsm.dir/system.cpp.o.d"
  "libaecdsm_dsm.a"
  "libaecdsm_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aecdsm_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
