# Empty compiler generated dependencies file for aecdsm_dsm.
# This may be replaced when dependencies are built.
