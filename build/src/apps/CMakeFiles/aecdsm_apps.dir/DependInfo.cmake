
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/fft.cpp" "src/apps/CMakeFiles/aecdsm_apps.dir/fft.cpp.o" "gcc" "src/apps/CMakeFiles/aecdsm_apps.dir/fft.cpp.o.d"
  "/root/repo/src/apps/is.cpp" "src/apps/CMakeFiles/aecdsm_apps.dir/is.cpp.o" "gcc" "src/apps/CMakeFiles/aecdsm_apps.dir/is.cpp.o.d"
  "/root/repo/src/apps/ocean.cpp" "src/apps/CMakeFiles/aecdsm_apps.dir/ocean.cpp.o" "gcc" "src/apps/CMakeFiles/aecdsm_apps.dir/ocean.cpp.o.d"
  "/root/repo/src/apps/raytrace.cpp" "src/apps/CMakeFiles/aecdsm_apps.dir/raytrace.cpp.o" "gcc" "src/apps/CMakeFiles/aecdsm_apps.dir/raytrace.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/apps/CMakeFiles/aecdsm_apps.dir/registry.cpp.o" "gcc" "src/apps/CMakeFiles/aecdsm_apps.dir/registry.cpp.o.d"
  "/root/repo/src/apps/water_ns.cpp" "src/apps/CMakeFiles/aecdsm_apps.dir/water_ns.cpp.o" "gcc" "src/apps/CMakeFiles/aecdsm_apps.dir/water_ns.cpp.o.d"
  "/root/repo/src/apps/water_sp.cpp" "src/apps/CMakeFiles/aecdsm_apps.dir/water_sp.cpp.o" "gcc" "src/apps/CMakeFiles/aecdsm_apps.dir/water_sp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsm/CMakeFiles/aecdsm_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/aecdsm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aecdsm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/aecdsm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aecdsm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
