file(REMOVE_RECURSE
  "CMakeFiles/aecdsm_apps.dir/fft.cpp.o"
  "CMakeFiles/aecdsm_apps.dir/fft.cpp.o.d"
  "CMakeFiles/aecdsm_apps.dir/is.cpp.o"
  "CMakeFiles/aecdsm_apps.dir/is.cpp.o.d"
  "CMakeFiles/aecdsm_apps.dir/ocean.cpp.o"
  "CMakeFiles/aecdsm_apps.dir/ocean.cpp.o.d"
  "CMakeFiles/aecdsm_apps.dir/raytrace.cpp.o"
  "CMakeFiles/aecdsm_apps.dir/raytrace.cpp.o.d"
  "CMakeFiles/aecdsm_apps.dir/registry.cpp.o"
  "CMakeFiles/aecdsm_apps.dir/registry.cpp.o.d"
  "CMakeFiles/aecdsm_apps.dir/water_ns.cpp.o"
  "CMakeFiles/aecdsm_apps.dir/water_ns.cpp.o.d"
  "CMakeFiles/aecdsm_apps.dir/water_sp.cpp.o"
  "CMakeFiles/aecdsm_apps.dir/water_sp.cpp.o.d"
  "libaecdsm_apps.a"
  "libaecdsm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aecdsm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
