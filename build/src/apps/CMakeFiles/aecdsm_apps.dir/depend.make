# Empty dependencies file for aecdsm_apps.
# This may be replaced when dependencies are built.
