file(REMOVE_RECURSE
  "libaecdsm_apps.a"
)
