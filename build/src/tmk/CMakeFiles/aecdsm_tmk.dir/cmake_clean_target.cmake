file(REMOVE_RECURSE
  "libaecdsm_tmk.a"
)
