file(REMOVE_RECURSE
  "CMakeFiles/aecdsm_tmk.dir/protocol.cpp.o"
  "CMakeFiles/aecdsm_tmk.dir/protocol.cpp.o.d"
  "libaecdsm_tmk.a"
  "libaecdsm_tmk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aecdsm_tmk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
