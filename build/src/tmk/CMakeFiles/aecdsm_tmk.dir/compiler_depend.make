# Empty compiler generated dependencies file for aecdsm_tmk.
# This may be replaced when dependencies are built.
