
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tmk/protocol.cpp" "src/tmk/CMakeFiles/aecdsm_tmk.dir/protocol.cpp.o" "gcc" "src/tmk/CMakeFiles/aecdsm_tmk.dir/protocol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsm/CMakeFiles/aecdsm_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/aec/CMakeFiles/aecdsm_aec.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/aecdsm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/aecdsm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/aecdsm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/aecdsm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
