// Section 2.1 footnote: the paper's 60% affinity-set inclusion threshold is
// "admittedly arbitrary" and a sensitivity study is left as future work —
// this bench performs it, sweeping the threshold on the affinity-driven
// applications.
#include <iomanip>
#include <iostream>
#include <sstream>

#include "harness/bench_registry.hpp"
#include "harness/format.hpp"
#include "harness/lap_report.hpp"

namespace {
using namespace aecdsm;

harness::ExperimentPlan build_plan() {
  harness::ExperimentPlan plan;
  plan.name = "ablation_affinity";
  for (const std::string& app : {std::string("Raytrace"), std::string("Water-ns"),
                                 std::string("Ocean")}) {
    for (const double threshold : {0.0, 0.3, 0.6, 1.0, 2.0}) {
      SystemParams params = harness::paper_params();
      params.affinity_threshold = threshold;
      std::ostringstream label;
      label << app << "/threshold=" << threshold;
      plan.add("AEC", app, apps::Scale::kDefault, params).label = label.str();
    }
  }
  return plan;
}

void report(harness::BenchReport& r) {
  harness::print_header(std::cout,
                        "Ablation: affinity-set threshold (AEC, 16 procs, K = 2)");
  std::cout << std::left << std::setw(12) << "Appl" << std::right << std::setw(12)
            << "threshold" << std::setw(10) << "LAP" << std::setw(14) << "finish(M)"
            << "\n";
  for (std::size_t i = 0; i < r.results.size(); ++i) {
    const auto& res = r.results[i];
    const double threshold = r.plan.cells[i].params.affinity_threshold;
    const auto total = harness::total_lap_score(res);
    std::cout << std::left << std::setw(12) << res.stats.app << std::right
              << std::fixed << std::setw(11) << std::setprecision(0)
              << threshold * 100.0 << "%" << std::setw(9) << std::setprecision(1)
              << total.rate() * 100.0 << "%" << std::setw(14) << std::setprecision(2)
              << res.stats.finish_time / 1e6 << "\n";
  }
}

[[maybe_unused]] const bool registered =
    harness::register_bench({"ablation_affinity", 9, build_plan, report});

}  // namespace

#ifndef AECDSM_BENCH_ALL
int main(int argc, char** argv) {
  return aecdsm::harness::bench_main("ablation_affinity", argc, argv);
}
#endif
