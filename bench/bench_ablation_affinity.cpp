// Section 2.1 footnote: the paper's 60% affinity-set inclusion threshold is
// "admittedly arbitrary" and a sensitivity study is left as future work —
// this bench performs it, sweeping the threshold on the affinity-driven
// applications.
#include <iomanip>
#include <iostream>

#include "harness/format.hpp"
#include "harness/lap_report.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace aecdsm;
  harness::print_header(std::cout,
                        "Ablation: affinity-set threshold (AEC, 16 procs, K = 2)");
  std::cout << std::left << std::setw(12) << "Appl" << std::right << std::setw(12)
            << "threshold" << std::setw(10) << "LAP" << std::setw(14) << "finish(M)"
            << "\n";
  for (const std::string& app : {std::string("Raytrace"), std::string("Water-ns"),
                                 std::string("Ocean")}) {
    for (const double threshold : {0.0, 0.3, 0.6, 1.0, 2.0}) {
      SystemParams params = harness::paper_params();
      params.affinity_threshold = threshold;
      const auto r = harness::run_experiment("AEC", app, apps::Scale::kDefault, params);
      const auto scores = harness::lap_scores_of(r);
      aec::PredictorScore total;
      for (const auto& [l, s] : scores) {
        total.predictions += s.lap.predictions;
        total.hits += s.lap.hits;
      }
      std::cout << std::left << std::setw(12) << app << std::right << std::fixed
                << std::setw(11) << std::setprecision(0) << threshold * 100.0 << "%"
                << std::setw(9) << std::setprecision(1) << total.rate() * 100.0 << "%"
                << std::setw(14) << std::setprecision(2) << r.stats.finish_time / 1e6
                << "\n";
    }
  }
  return 0;
}
