// Section 5.1 robustness study: sweep the update-set size K from 1 to 3.
// The paper reports that K = 2 improves accuracy significantly over K = 1
// while K = 3 adds little (<= 10%) at higher update traffic — this bench
// reproduces that trade-off.
#include <iomanip>
#include <iostream>

#include "harness/bench_registry.hpp"
#include "harness/format.hpp"
#include "harness/lap_report.hpp"

namespace {
using namespace aecdsm;

harness::ExperimentPlan build_plan() {
  harness::ExperimentPlan plan;
  plan.name = "ablation_updateset";
  for (const std::string& app : apps::app_names()) {
    for (int k = 1; k <= 3; ++k) {
      SystemParams params = harness::paper_params();
      params.update_set_size = k;
      plan.add("AEC", app, apps::Scale::kDefault, params).label =
          app + "/K=" + std::to_string(k);
    }
  }
  return plan;
}

void report(harness::BenchReport& r) {
  harness::print_header(std::cout, "Ablation: update-set size K (AEC, 16 procs)");
  std::cout << std::left << std::setw(12) << "Appl" << std::right << std::setw(4)
            << "K" << std::setw(10) << "LAP" << std::setw(14) << "finish(M)"
            << std::setw(12) << "msgs" << std::setw(14) << "MB moved" << "\n";
  for (std::size_t i = 0; i < r.results.size(); ++i) {
    const auto& res = r.results[i];
    const int k = r.plan.cells[i].params.update_set_size;
    const auto total = harness::total_lap_score(res);
    std::cout << std::left << std::setw(12) << res.stats.app << std::right
              << std::setw(4) << k << std::setw(9) << std::fixed
              << std::setprecision(1) << total.rate() * 100.0 << "%" << std::setw(14)
              << std::setprecision(2) << res.stats.finish_time / 1e6 << std::setw(12)
              << res.stats.msgs.messages << std::setw(14) << std::setprecision(2)
              << static_cast<double>(res.stats.msgs.bytes) / 1e6 << "\n";
  }
}

[[maybe_unused]] const bool registered =
    harness::register_bench({"ablation_updateset", 8, build_plan, report});

}  // namespace

#ifndef AECDSM_BENCH_ALL
int main(int argc, char** argv) {
  return aecdsm::harness::bench_main("ablation_updateset", argc, argv);
}
#endif
