// Section 5.1 robustness study: sweep the update-set size K from 1 to 3.
// The paper reports that K = 2 improves accuracy significantly over K = 1
// while K = 3 adds little (<= 10%) at higher update traffic — this bench
// reproduces that trade-off.
#include <iomanip>
#include <iostream>

#include "harness/format.hpp"
#include "harness/lap_report.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace aecdsm;
  harness::print_header(std::cout, "Ablation: update-set size K (AEC, 16 procs)");
  std::cout << std::left << std::setw(12) << "Appl" << std::right << std::setw(4) << "K"
            << std::setw(10) << "LAP" << std::setw(14) << "finish(M)" << std::setw(12)
            << "msgs" << std::setw(14) << "MB moved" << "\n";
  for (const std::string& app : apps::app_names()) {
    for (int k = 1; k <= 3; ++k) {
      SystemParams params = harness::paper_params();
      params.update_set_size = k;
      const auto r = harness::run_experiment("AEC", app, apps::Scale::kDefault, params);
      const auto scores = harness::lap_scores_of(r);
      aec::PredictorScore total;
      for (const auto& [l, s] : scores) {
        total.predictions += s.lap.predictions;
        total.hits += s.lap.hits;
      }
      std::cout << std::left << std::setw(12) << app << std::right << std::setw(4) << k
                << std::setw(9) << std::fixed << std::setprecision(1)
                << total.rate() * 100.0 << "%" << std::setw(14)
                << std::setprecision(2) << r.stats.finish_time / 1e6 << std::setw(12)
                << r.stats.msgs.messages << std::setw(14) << std::setprecision(2)
                << static_cast<double>(r.stats.msgs.bytes) / 1e6 << "\n";
    }
  }
  return 0;
}
