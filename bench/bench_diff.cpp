// bench_diff: the cross-run regression gate. Compares two batch/bench_all
// JSON artifacts cell-by-cell (content-hash alignment with an identity
// fallback) and exits nonzero when any metric moved beyond its tolerance —
// which, with a deterministic simulator, defaults to "moved at all".
//
//   bench_diff OLD.json NEW.json
//   bench_diff --baseline bench/baselines/bench_all.json NEW.json
//   bench_diff --baseline ... --update-baseline NEW.json   # accept NEW
//
// Exit codes: 0 = within tolerance, 1 = regression gate failed,
// 2 = usage / unreadable artifact / unknown schema.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/artifact_diff.hpp"

namespace {

using namespace aecdsm::harness;

[[noreturn]] void print_usage_and_exit(const char* argv0, int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: %s [options] OLD.json NEW.json\n"
      "       %s [options] --baseline FILE NEW.json\n"
      "Compare two aecdsm-batch-v1 / aecdsm-bench-all-v1 artifacts and gate\n"
      "on per-metric tolerances (default: exact match).\n"
      "  --baseline FILE     diff NEW against FILE (instead of a positional OLD)\n"
      "  --update-baseline   rewrite the baseline file with NEW's bytes after\n"
      "                      reporting, and exit 0 (accept the new numbers)\n"
      "  --tol METRIC=VAL    relative tolerance, e.g. finish_time=0.5%% or\n"
      "                      messages=0.02; METRIC '*' sets the default\n"
      "                      (repeatable)\n"
      "  --subset            gate only on cells present in BOTH documents:\n"
      "                      align by content hash alone (across bench scopes)\n"
      "                      and ignore one-sided cells instead of failing —\n"
      "                      holds a partial sweep against a full baseline\n"
      "  --tol-file FILE     aecdsm-tolerances-v1 JSON defaults file\n"
      "  --json PATH         write the aecdsm-bench-diff-v1 document to PATH\n"
      "                      ('-' = stdout; suppresses the human report on '-')\n"
      "  -q, --quiet         suppress the human report\n",
      argv0, argv0);
  std::exit(code);
}

/// Value of "--flag V" or "--flag=V"; advances i past a separate value.
bool flag_value(int argc, char** argv, int& i, const char* flag, std::string& out) {
  const std::size_t len = std::strlen(flag);
  if (std::strncmp(argv[i], flag, len) != 0) return false;
  if (argv[i][len] == '=') {
    out = argv[i] + len + 1;
    return true;
  }
  if (argv[i][len] == '\0') {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag);
      std::exit(2);
    }
    out = argv[++i];
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline;
  bool update_baseline = false;
  bool subset = false;
  std::string json_path;
  bool quiet = false;
  artifact_diff::Tolerances tol;
  std::vector<std::string> files;

  try {
    for (int i = 1; i < argc; ++i) {
      std::string value;
      if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
        print_usage_and_exit(argv[0], 0);
      } else if (flag_value(argc, argv, i, "--baseline", value)) {
        baseline = value;
      } else if (std::strcmp(argv[i], "--update-baseline") == 0) {
        update_baseline = true;
      } else if (std::strcmp(argv[i], "--subset") == 0) {
        subset = true;
      } else if (flag_value(argc, argv, i, "--tol-file", value)) {
        tol.load_file(value);
      } else if (flag_value(argc, argv, i, "--tol", value)) {
        tol.add_spec(value);
      } else if (flag_value(argc, argv, i, "--json", value)) {
        json_path = value;
      } else if (std::strcmp(argv[i], "--quiet") == 0 ||
                 std::strcmp(argv[i], "-q") == 0) {
        quiet = true;
      } else if (argv[i][0] == '-' && argv[i][1] != '\0') {
        std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], argv[i]);
        print_usage_and_exit(argv[0], 2);
      } else {
        files.push_back(argv[i]);
      }
    }

    std::string old_path;
    std::string new_path;
    if (!baseline.empty() && files.size() == 1) {
      old_path = baseline;
      new_path = files[0];
    } else if (baseline.empty() && files.size() == 2) {
      old_path = files[0];
      new_path = files[1];
    } else {
      std::fprintf(stderr, "%s: want OLD.json NEW.json, or --baseline FILE NEW.json\n",
                   argv[0]);
      print_usage_and_exit(argv[0], 2);
    }
    if (update_baseline && baseline.empty()) {
      std::fprintf(stderr, "%s: --update-baseline needs --baseline FILE\n", argv[0]);
      print_usage_and_exit(argv[0], 2);
    }
    if (update_baseline && subset) {
      // A partial sweep must never overwrite the full baseline.
      std::fprintf(stderr, "%s: --subset and --update-baseline conflict\n", argv[0]);
      print_usage_and_exit(argv[0], 2);
    }

    const artifact_diff::Document before = artifact_diff::load_file(old_path);
    const artifact_diff::Document after = artifact_diff::load_file(new_path);
    const artifact_diff::DiffResult result =
        artifact_diff::diff(before, after, tol, subset);

    if (json_path == "-") {
      artifact_diff::to_json(result).write(std::cout);
      std::cout << "\n";
    } else if (!json_path.empty()) {
      std::ofstream out(json_path, std::ios::binary);
      if (!out.good()) {
        std::fprintf(stderr, "%s: cannot open %s\n", argv[0], json_path.c_str());
        return 2;
      }
      artifact_diff::to_json(result).write(out);
      out << "\n";
    }
    if (!quiet && json_path != "-") artifact_diff::print_human(std::cout, result);

    if (update_baseline) {
      // Copy NEW's exact bytes so a follow-up diff against the refreshed
      // baseline is byte-level (and therefore metric-level) clean.
      std::ifstream in(new_path, std::ios::binary);
      std::ostringstream body;
      body << in.rdbuf();
      std::ofstream out(baseline, std::ios::binary | std::ios::trunc);
      if (!in.good() || !out.good()) {
        std::fprintf(stderr, "%s: cannot update baseline %s\n", argv[0],
                     baseline.c_str());
        return 2;
      }
      out << body.str();
      std::fprintf(stderr, "[bench_diff] baseline %s updated from %s\n",
                   baseline.c_str(), new_path.c_str());
      return 0;
    }
    return artifact_diff::gate_exit_code(result);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
}
