// Figures 5 and 6 of the paper: execution time breakdowns under TreadMarks
// (=100) and AEC. Figure 5 covers the barrier-dominated applications (FFT,
// Ocean, Water-sp); figure 6 the lock-dominated ones (IS, Raytrace,
// Water-ns).
#include <iostream>
#include <utility>
#include <vector>

#include "harness/bench_registry.hpp"
#include "harness/format.hpp"

namespace {
using namespace aecdsm;

const std::vector<std::pair<std::string, std::vector<std::string>>>& figures() {
  static const std::vector<std::pair<std::string, std::vector<std::string>>> figs = {
      {"Figure 5", {"FFT", "Ocean", "Water-sp"}},
      {"Figure 6", {"IS", "Raytrace", "Water-ns"}},
  };
  return figs;
}

harness::ExperimentPlan build_plan() {
  harness::ExperimentPlan plan;
  plan.name = "fig5_fig6_tm_vs_aec";
  for (const auto& [fig, apps_list] : figures()) {
    for (const std::string& app : apps_list) {
      plan.add("TreadMarks", app);
      plan.add("AEC", app);
    }
  }
  return plan;
}

void report(harness::BenchReport& r) {
  for (const auto& [fig, apps_list] : figures()) {
    for (const std::string& app : apps_list) {
      const auto& tm = r.result("TreadMarks/" + app);
      const auto& aec = r.result("AEC/" + app);
      harness::print_breakdown_figure(
          std::cout, fig + ": " + app + " execution time, TreadMarks (=100) vs AEC",
          {{"TreadMarks", tm.stats.aggregate(), tm.stats.finish_time},
           {"AEC", aec.stats.aggregate(), aec.stats.finish_time}});
    }
  }
}

[[maybe_unused]] const bool registered =
    harness::register_bench({"fig5_fig6_tm_vs_aec", 7, build_plan, report});

}  // namespace

#ifndef AECDSM_BENCH_ALL
int main(int argc, char** argv) {
  return aecdsm::harness::bench_main("fig5_fig6_tm_vs_aec", argc, argv);
}
#endif
