// Figures 5 and 6 of the paper: execution time breakdowns under TreadMarks
// (=100) and AEC. Figure 5 covers the barrier-dominated applications (FFT,
// Ocean, Water-sp); figure 6 the lock-dominated ones (IS, Raytrace,
// Water-ns).
#include <iostream>

#include "harness/batch.hpp"
#include "harness/format.hpp"

int main(int argc, char** argv) {
  using namespace aecdsm;
  const std::vector<std::pair<std::string, std::vector<std::string>>> figures = {
      {"Figure 5", {"FFT", "Ocean", "Water-sp"}},
      {"Figure 6", {"IS", "Raytrace", "Water-ns"}},
  };
  harness::ExperimentPlan plan;
  plan.name = "fig5_fig6_tm_vs_aec";
  for (const auto& [fig, apps_list] : figures) {
    for (const std::string& app : apps_list) {
      plan.add("TreadMarks", app);
      plan.add("AEC", app);
    }
  }
  return harness::run_bench(argc, argv, plan, [&](harness::BenchReport& r) {
    for (const auto& [fig, apps_list] : figures) {
      for (const std::string& app : apps_list) {
        const auto& tm = r.result("TreadMarks/" + app);
        const auto& aec = r.result("AEC/" + app);
        harness::print_breakdown_figure(
            std::cout, fig + ": " + app + " execution time, TreadMarks (=100) vs AEC",
            {{"TreadMarks", tm.stats.aggregate(), tm.stats.finish_time},
             {"AEC", aec.stats.aggregate(), aec.stats.finish_time}});
      }
    }
  });
}
