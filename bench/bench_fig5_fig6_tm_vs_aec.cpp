// Figures 5 and 6 of the paper: execution time breakdowns under TreadMarks
// (=100) and AEC. Figure 5 covers the barrier-dominated applications (FFT,
// Ocean, Water-sp); figure 6 the lock-dominated ones (IS, Raytrace,
// Water-ns).
#include <iostream>

#include "harness/format.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace aecdsm;
  const std::vector<std::pair<std::string, std::vector<std::string>>> figures = {
      {"Figure 5", {"FFT", "Ocean", "Water-sp"}},
      {"Figure 6", {"IS", "Raytrace", "Water-ns"}},
  };
  for (const auto& [fig, apps_list] : figures) {
    for (const std::string& app : apps_list) {
      const auto tm = harness::run_experiment("TreadMarks", app, apps::Scale::kDefault,
                                              harness::paper_params());
      const auto aec = harness::run_experiment("AEC", app, apps::Scale::kDefault,
                                               harness::paper_params());
      harness::print_breakdown_figure(
          std::cout, fig + ": " + app + " execution time, TreadMarks (=100) vs AEC",
          {{"TreadMarks", tm.stats.aggregate(), tm.stats.finish_time},
           {"AEC", aec.stats.aggregate(), aec.stats.finish_time}});
    }
  }
  return 0;
}
