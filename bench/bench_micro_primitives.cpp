// Google-benchmark microbenchmarks of the host-side cost of the simulator's
// core primitives (diff machinery, interconnect model, event engine, batch
// runner). These measure the *simulator's* speed, complementing the
// experiment drivers that measure *simulated* time.
#include <benchmark/benchmark.h>

#include "common/params.hpp"
#include "harness/batch.hpp"
#include "mem/diff.hpp"
#include "net/mesh.hpp"
#include "sim/engine.hpp"

namespace {

using namespace aecdsm;

std::vector<Word> make_page(std::size_t words, std::uint64_t seed) {
  std::vector<Word> page(words);
  std::uint64_t z = seed;
  for (Word& w : page) {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    w = static_cast<Word>(z);
  }
  return page;
}

// Diff creation, vectorized (chunked) encoder vs the scalar oracle, swept
// over page size (words: 1 KiB / 4 KiB / 16 KiB pages) and modification
// stride. The pair quantifies the SIMD speedup as a tracked number — the
// same cells run warm in CI via the batch telemetry.
void BM_DiffCreate(benchmark::State& state) {
  const std::size_t words = static_cast<std::size_t>(state.range(0));
  auto twin = make_page(words, 1);
  auto cur = twin;
  // Modify a fraction of the words controlled by the benchmark argument.
  const std::size_t stride = static_cast<std::size_t>(state.range(1));
  for (std::size_t i = 0; i < words; i += stride) cur[i] ^= 0xDEADBEEF;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem::Diff::create(twin, cur));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(words * sizeof(Word)));
}
BENCHMARK(BM_DiffCreate)
    ->ArgsProduct({{256, 1024, 4096}, {1, 8, 64}});

void BM_DiffCreateScalar(benchmark::State& state) {
  const std::size_t words = static_cast<std::size_t>(state.range(0));
  auto twin = make_page(words, 1);
  auto cur = twin;
  const std::size_t stride = static_cast<std::size_t>(state.range(1));
  for (std::size_t i = 0; i < words; i += stride) cur[i] ^= 0xDEADBEEF;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem::Diff::create_scalar(twin, cur));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(words * sizeof(Word)));
}
BENCHMARK(BM_DiffCreateScalar)
    ->ArgsProduct({{256, 1024, 4096}, {1, 8, 64}});

void BM_DiffApply(benchmark::State& state) {
  const std::size_t words = 1024;
  auto twin = make_page(words, 1);
  auto cur = twin;
  const std::size_t stride = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < words; i += stride) cur[i] ^= 0xDEADBEEF;
  const mem::Diff d = mem::Diff::create(twin, cur);
  auto target = make_page(words, 2);
  for (auto _ : state) {
    d.apply_to(target);
    benchmark::DoNotOptimize(target.data());
  }
}
BENCHMARK(BM_DiffApply)->Arg(1)->Arg(8)->Arg(64);

void BM_DiffMerge(benchmark::State& state) {
  const std::size_t words = static_cast<std::size_t>(state.range(0));
  auto twin = make_page(words, 1);
  auto a = twin;
  auto b = twin;
  for (std::size_t i = 0; i < words; i += 4) a[i] ^= 0x1111;
  for (std::size_t i = 2; i < words; i += 4) b[i] ^= 0x2222;
  const mem::Diff da = mem::Diff::create(twin, a);
  const mem::Diff db = mem::Diff::create(twin, b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem::Diff::merge(da, db));
  }
}
BENCHMARK(BM_DiffMerge)->Arg(256)->Arg(1024)->Arg(4096);

void BM_DiffMergeOverlap(benchmark::State& state) {
  // Release-point merge shape: long overlapping dirty stretches where the
  // newer diff must win word-by-word, the worst case for the two-pointer
  // run merge. The argument is the length of each dirty stretch.
  const std::size_t words = 1024;
  const std::size_t stretch = static_cast<std::size_t>(state.range(0));
  auto twin = make_page(words, 1);
  auto a = twin;
  auto b = twin;
  for (std::size_t base = 0; base + stretch <= words; base += 2 * stretch) {
    for (std::size_t k = 0; k < stretch; ++k) a[base + k] ^= 0x3333;
    // Overlap the second half of each of a's stretches, plus fresh words.
    for (std::size_t k = stretch / 2; k < stretch + stretch / 2 && base + k < words; ++k) {
      b[base + k] ^= 0x4444;
    }
  }
  const mem::Diff da = mem::Diff::create(twin, a);
  const mem::Diff db = mem::Diff::create(twin, b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem::Diff::merge(da, db));
  }
}
BENCHMARK(BM_DiffMergeOverlap)->Arg(8)->Arg(64)->Arg(256);

void BM_MeshSend(benchmark::State& state) {
  SystemParams params;
  for (auto _ : state) {
    sim::Engine engine;
    net::MeshNetwork net(engine, params);
    int delivered = 0;
    for (int i = 0; i < 64; ++i) {
      net.send(i % 16, (i * 7) % 16, 4096, [&delivered] { ++delivered; });
    }
    engine.run();
    benchmark::DoNotOptimize(delivered);
  }
}
BENCHMARK(BM_MeshSend);

void BM_EngineEvents(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t fired = 0;
    for (Cycles t = 0; t < 1000; ++t) {
      engine.schedule(t * 10, [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_EngineEvents);

void BM_BatchRunnerSmallPlan(benchmark::State& state) {
  // Host-side throughput of the batch scheduler itself: a small-scale plan
  // of independent simulations executed at the given worker count.
  SystemParams params;
  params.num_procs = 4;
  params.mesh_width = 2;
  params.page_bytes = 256;
  params.cache_bytes = 8 * 1024;
  harness::ExperimentPlan plan;
  plan.name = "micro_batch";
  for (int i = 0; i < 4; ++i) {
    plan.add("AEC", "IS", apps::Scale::kSmall, params);
  }
  harness::BatchOptions opts;
  opts.jobs = static_cast<int>(state.range(0));
  opts.json_path = "off";
  for (auto _ : state) {
    harness::BatchRunner runner(opts);
    auto results = runner.run(plan);
    benchmark::DoNotOptimize(results.data());
  }
}
BENCHMARK(BM_BatchRunnerSmallPlan)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

// Batch flags (--jobs/--json) are stripped before google-benchmark parses
// the rest, so the shared bench CLI works uniformly across all 12 binaries.
int main(int argc, char** argv) {
  aecdsm::harness::parse_batch_cli(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
