// Figure 3 of the paper: memory access fault overhead under AEC without
// LAP (normalized to 100) and AEC, for the lock-dominated applications.
#include <iomanip>
#include <iostream>
#include <vector>

#include "harness/bench_registry.hpp"
#include "harness/format.hpp"

namespace {
using namespace aecdsm;

const std::vector<std::string>& apps_list() {
  static const std::vector<std::string> apps = {"IS", "Raytrace", "Water-ns"};
  return apps;
}

harness::ExperimentPlan build_plan() {
  harness::ExperimentPlan plan;
  plan.name = "fig3_fault_overhead";
  for (const std::string& app : apps_list()) {
    plan.add("AEC-noLAP", app);
    plan.add("AEC", app);
  }
  return plan;
}

void report(harness::BenchReport& r) {
  harness::print_header(std::cout,
                        "Figure 3: Access fault overhead, AEC-noLAP (=100) vs AEC");
  std::cout << std::left << std::setw(12) << "Appl" << std::right << std::setw(10)
            << "noLAP" << std::setw(8) << "LAP" << std::setw(14) << "reduction"
            << "\n";
  for (const std::string& app : apps_list()) {
    const auto& nolap = r.result("AEC-noLAP/" + app);
    const auto& lap = r.result("AEC/" + app);
    const double base = static_cast<double>(nolap.stats.faults.fault_cycles);
    const double with = static_cast<double>(lap.stats.faults.fault_cycles);
    const double norm = base == 0.0 ? 0.0 : with / base * 100.0;
    std::cout << std::left << std::setw(12) << app << std::right << std::fixed
              << std::setprecision(0) << std::setw(10) << 100.0 << std::setw(8)
              << norm << std::setw(13) << std::setprecision(1) << (100.0 - norm)
              << "%" << "\n";
  }
}

[[maybe_unused]] const bool registered =
    harness::register_bench({"fig3_fault_overhead", 4, build_plan, report});

}  // namespace

#ifndef AECDSM_BENCH_ALL
int main(int argc, char** argv) {
  return aecdsm::harness::bench_main("fig3_fault_overhead", argc, argv);
}
#endif
