// Figure 3 of the paper: memory access fault overhead under AEC without
// LAP (normalized to 100) and AEC, for the lock-dominated applications.
#include <iomanip>
#include <iostream>

#include "harness/format.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace aecdsm;
  harness::print_header(std::cout,
                        "Figure 3: Access fault overhead, AEC-noLAP (=100) vs AEC");
  std::cout << std::left << std::setw(12) << "Appl" << std::right << std::setw(10)
            << "noLAP" << std::setw(8) << "LAP" << std::setw(14) << "reduction"
            << "\n";
  for (const std::string& app : {std::string("IS"), std::string("Raytrace"),
                                 std::string("Water-ns")}) {
    const auto nolap = harness::run_experiment("AEC-noLAP", app, apps::Scale::kDefault,
                                               harness::paper_params());
    const auto lap = harness::run_experiment("AEC", app, apps::Scale::kDefault,
                                             harness::paper_params());
    const double base = static_cast<double>(nolap.stats.faults.fault_cycles);
    const double with = static_cast<double>(lap.stats.faults.fault_cycles);
    const double norm = base == 0.0 ? 0.0 : with / base * 100.0;
    std::cout << std::left << std::setw(12) << app << std::right << std::fixed
              << std::setprecision(0) << std::setw(10) << 100.0 << std::setw(8)
              << norm << std::setw(13) << std::setprecision(1) << (100.0 - norm)
              << "%" << "\n";
  }
  return 0;
}
