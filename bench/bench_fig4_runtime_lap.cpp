// Figure 4 of the paper: execution time breakdown (busy/data/synch/ipc/
// others) under AEC without LAP (=100) and AEC, for the lock-dominated
// applications.
#include <iostream>

#include "harness/batch.hpp"
#include "harness/format.hpp"

int main(int argc, char** argv) {
  using namespace aecdsm;
  harness::ExperimentPlan plan;
  plan.name = "fig4_runtime_lap";
  const std::vector<std::string> apps_list = {"IS", "Raytrace", "Water-ns"};
  for (const std::string& app : apps_list) {
    plan.add("AEC-noLAP", app);
    plan.add("AEC", app);
  }
  return harness::run_bench(argc, argv, plan, [&](harness::BenchReport& r) {
    for (const std::string& app : apps_list) {
      const auto& nolap = r.result("AEC-noLAP/" + app);
      const auto& lap = r.result("AEC/" + app);
      harness::print_breakdown_figure(
          std::cout, "Figure 4: " + app + " running time, AEC-noLAP (=100) vs AEC",
          {{"AEC-noLAP", nolap.stats.aggregate(), nolap.stats.finish_time},
           {"AEC", lap.stats.aggregate(), lap.stats.finish_time}});
    }
  });
}
