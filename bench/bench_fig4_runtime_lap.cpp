// Figure 4 of the paper: execution time breakdown (busy/data/synch/ipc/
// others) under AEC without LAP (=100) and AEC, for the lock-dominated
// applications.
#include <iostream>

#include "harness/format.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace aecdsm;
  for (const std::string& app : {std::string("IS"), std::string("Raytrace"),
                                 std::string("Water-ns")}) {
    const auto nolap = harness::run_experiment("AEC-noLAP", app, apps::Scale::kDefault,
                                               harness::paper_params());
    const auto lap = harness::run_experiment("AEC", app, apps::Scale::kDefault,
                                             harness::paper_params());
    harness::print_breakdown_figure(
        std::cout, "Figure 4: " + app + " running time, AEC-noLAP (=100) vs AEC",
        {{"AEC-noLAP", nolap.stats.aggregate(), nolap.stats.finish_time},
         {"AEC", lap.stats.aggregate(), lap.stats.finish_time}});
  }
  return 0;
}
