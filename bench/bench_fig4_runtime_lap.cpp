// Figure 4 of the paper: execution time breakdown (busy/data/synch/ipc/
// others) under AEC without LAP (=100) and AEC, for the lock-dominated
// applications.
#include <iostream>
#include <vector>

#include "harness/bench_registry.hpp"
#include "harness/format.hpp"

namespace {
using namespace aecdsm;

const std::vector<std::string>& apps_list() {
  static const std::vector<std::string> apps = {"IS", "Raytrace", "Water-ns"};
  return apps;
}

harness::ExperimentPlan build_plan() {
  harness::ExperimentPlan plan;
  plan.name = "fig4_runtime_lap";
  for (const std::string& app : apps_list()) {
    plan.add("AEC-noLAP", app);
    plan.add("AEC", app);
  }
  return plan;
}

void report(harness::BenchReport& r) {
  for (const std::string& app : apps_list()) {
    const auto& nolap = r.result("AEC-noLAP/" + app);
    const auto& lap = r.result("AEC/" + app);
    harness::print_breakdown_figure(
        std::cout, "Figure 4: " + app + " running time, AEC-noLAP (=100) vs AEC",
        {{"AEC-noLAP", nolap.stats.aggregate(), nolap.stats.finish_time},
         {"AEC", lap.stats.aggregate(), lap.stats.finish_time}});
  }
}

[[maybe_unused]] const bool registered =
    harness::register_bench({"fig4_runtime_lap", 5, build_plan, report});

}  // namespace

#ifndef AECDSM_BENCH_ALL
int main(int argc, char** argv) {
  return aecdsm::harness::bench_main("fig4_runtime_lap", argc, argv);
}
#endif
