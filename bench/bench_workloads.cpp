// Synthetic-workload sweep: the `syn:` grammar corpus crossed with every
// registered consistency policy at small scale. Each cell's app carries its
// own sequential oracle, so the sweep is simultaneously a conformance run
// (an invalid result fails the batch) and a where-does-AEC-win survey over
// sharing patterns the paper's six kernels never exercise.
//
// The top-level artifact keeps the standard aecdsm-batch-v1 schema (so
// bench_diff can gate it); the report attaches a derived
// "aecdsm-bench-workloads-v1" section with per-spec rows — canonical
// fingerprints, finish times and vs-AEC ratios.
//
// AECDSM_WORKLOAD_SPECS="syn:...,syn:..." restricts the corpus (the CI
// smoke uses it); the default corpus covers all five sharing patterns.
// Deliberately NOT part of bench_all: the corpus is environment-tunable,
// and the committed bench_all baseline must stay byte-identical.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/synthetic/workload.hpp"
#include "harness/bench_registry.hpp"
#include "harness/format.hpp"
#include "policy/policy.hpp"

namespace {
using namespace aecdsm;

std::vector<std::string> split_env_list(const char* env,
                                        std::vector<std::string> fallback) {
  if (env == nullptr || *env == '\0') return fallback;
  std::vector<std::string> picked;
  std::stringstream ss{std::string(env)};
  for (std::string name; std::getline(ss, name, ',');) {
    if (!name.empty()) picked.push_back(name);
  }
  return picked;
}

std::vector<std::string> corpus() {
  return split_env_list(std::getenv("AECDSM_WORKLOAD_SPECS"),
                        apps::synthetic::default_corpus());
}

harness::ExperimentPlan build_plan() {
  harness::ExperimentPlan plan;
  plan.name = "workloads";
  for (const std::string& spec : corpus()) {
    // Parse up front so a typo fails with the grammar error before any
    // simulation starts, not in the middle of the batch.
    (void)apps::synthetic::WorkloadSpec::parse(spec);
    for (const std::string& pol : policy::registered_names()) {
      plan.add(pol, spec, apps::Scale::kSmall);
    }
  }
  return plan;
}

void report(harness::BenchReport& r) {
  harness::print_header(
      std::cout, "Synthetic workload corpus x every registered policy (small scale)");
  std::printf("%-44s %-16s %10s %10s %7s %6s\n", "workload", "policy",
              "finish (M)", "messages", "vs AEC", "valid");

  json::Value section = json::Value::object();
  section["schema"] = "aecdsm-bench-workloads-v1";
  json::Value rows = json::Value::array();
  for (const std::string& spec : corpus()) {
    const std::string fp = apps::synthetic::WorkloadSpec::parse(spec).fingerprint();
    const auto& aec = r.result("AEC/" + spec);
    for (const std::string& pol : policy::registered_names()) {
      const auto& cell = r.result(pol + "/" + spec);
      const double vs_aec = static_cast<double>(cell.stats.finish_time) /
                            static_cast<double>(aec.stats.finish_time);
      std::printf("%-44s %-16s %10.2f %10llu %6.2fx %6s\n", fp.c_str(),
                  pol.c_str(), cell.stats.finish_time / 1e6,
                  static_cast<unsigned long long>(cell.stats.msgs.messages),
                  vs_aec, cell.stats.result_valid ? "yes" : "NO");
      json::Value row = json::Value::object();
      row["spec"] = spec;
      row["fingerprint"] = fp;
      row["policy"] = pol;
      row["finish_time"] = cell.stats.finish_time;
      row["messages"] = cell.stats.msgs.messages;
      row["vs_aec"] = vs_aec;
      row["result_valid"] = cell.stats.result_valid;
      rows.append(std::move(row));
    }
  }
  section["rows"] = std::move(rows);
  r.doc["workloads"] = std::move(section);

  std::printf(
      "\n(Every workload ships its own sequential oracle; 'valid' is the\n"
      " oracle verdict under that policy. Patterns: migratory regions,\n"
      " producer-consumer handoff, read-mostly after a fill round, hotspot\n"
      " contention on one region, and a per-burst mixed draw.)\n");
}

[[maybe_unused]] const bool registered = harness::register_bench(
    {"workloads", 15, build_plan, report, /*in_bench_all=*/false});

}  // namespace

#ifndef AECDSM_BENCH_ALL
int main(int argc, char** argv) {
  return aecdsm::harness::bench_main("workloads", argc, argv);
}
#endif
