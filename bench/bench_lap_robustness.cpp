// Section 5.1 robustness claim: "we compared the LAP results taken from our
// simulated AEC to similar simulation-based implementations of the
// technique in TreadMarks and in a locally-developed release-consistent
// SW-DSM". The same predictor runs scoring-only inside the simulated
// TreadMarks and the Munin-style eager-RC baseline; this bench compares the
// accuracy across all three protocols.
#include <iomanip>
#include <iostream>

#include "harness/format.hpp"
#include "harness/lap_report.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace aecdsm;
  harness::print_header(
      std::cout, "LAP robustness: success rate under AEC / TreadMarks / ERC (16 procs)");
  std::cout << std::left << std::setw(12) << "Appl" << std::right << std::setw(12)
            << "AEC LAP" << std::setw(14) << "TM LAP" << std::setw(14) << "ERC LAP"
            << "\n";
  for (const std::string& app : apps::app_names()) {
    auto rate_of = [&](const std::string& proto) {
      const auto r =
          harness::run_experiment(proto, app, apps::Scale::kDefault, harness::paper_params());
      const auto scores = harness::lap_scores_of(r);
      aec::PredictorScore total;
      for (const auto& [l, s] : scores) {
        total.predictions += s.lap.predictions;
        total.hits += s.lap.hits;
      }
      return total.rate();
    };
    const double a = rate_of("AEC");
    const double t = rate_of("TreadMarks");
    const double e = rate_of("Munin-ERC");
    std::cout << std::left << std::setw(12) << app << std::right << std::fixed
              << std::setw(11) << std::setprecision(1) << a * 100.0 << "%"
              << std::setw(13) << t * 100.0 << "%" << std::setw(13) << e * 100.0
              << "%" << "\n";
  }
  return 0;
}
