// Section 5.1 robustness claim: "we compared the LAP results taken from our
// simulated AEC to similar simulation-based implementations of the
// technique in TreadMarks and in a locally-developed release-consistent
// SW-DSM". The same predictor runs scoring-only inside the simulated
// TreadMarks and the Munin-style eager-RC baseline; this bench compares the
// accuracy across all three protocols.
#include <iomanip>
#include <iostream>

#include "harness/bench_registry.hpp"
#include "harness/format.hpp"
#include "harness/lap_report.hpp"

namespace {
using namespace aecdsm;

harness::ExperimentPlan build_plan() {
  harness::ExperimentPlan plan;
  plan.name = "lap_robustness";
  for (const std::string& app : apps::app_names()) {
    for (const char* proto : {"AEC", "TreadMarks", "Munin-ERC"}) {
      plan.add(proto, app);
    }
  }
  return plan;
}

void report(harness::BenchReport& r) {
  harness::print_header(
      std::cout,
      "LAP robustness: success rate under AEC / TreadMarks / ERC (16 procs)");
  std::cout << std::left << std::setw(12) << "Appl" << std::right << std::setw(12)
            << "AEC LAP" << std::setw(14) << "TM LAP" << std::setw(14) << "ERC LAP"
            << "\n";
  for (const std::string& app : apps::app_names()) {
    auto rate_of = [&](const std::string& proto) {
      return harness::total_lap_score(r.result(proto + "/" + app)).rate();
    };
    std::cout << std::left << std::setw(12) << app << std::right << std::fixed
              << std::setw(11) << std::setprecision(1) << rate_of("AEC") * 100.0
              << "%" << std::setw(13) << rate_of("TreadMarks") * 100.0 << "%"
              << std::setw(13) << rate_of("Munin-ERC") * 100.0 << "%" << "\n";
  }
}

[[maybe_unused]] const bool registered =
    harness::register_bench({"lap_robustness", 10, build_plan, report});

}  // namespace

#ifndef AECDSM_BENCH_ALL
int main(int argc, char** argv) {
  return aecdsm::harness::bench_main("lap_robustness", argc, argv);
}
#endif
