// Lock-manager scaling sweep: mesh size x contention pattern x strategy
// (DESIGN.md §13). Every cell runs one `syn:` workload on a k x k mesh with
// one of the three lock strategies and reports the lock plane's behavior:
// grant throughput, mean handoff hops, the fraction of handoffs that leave
// the releaser's mesh quadrant, manager queue depth, and the mcs direct
// handoff / link counters. For the saturated hotspot rows the report prints
// the Aksenov closed-form throughput prediction (1 / (C + H), see
// locks/model.hpp) next to the simulated rate; a committed test
// (McsStrategy.ThroughputOfASaturatedLockMatchesTheAksenovModel) holds the
// two within tolerance, the bench shows the trend across mesh sizes.
//
// AECDSM_LOCK_MESHES="16,64" restricts the mesh-size axis (the CI smoke
// uses it to skip the 256-node cells); AECDSM_LOCK_SPECS restricts the
// workload axis. Deliberately NOT part of bench_all: its cells diverge from
// the paper testbed (meshes past 4x4, shrunk pages), and the committed
// bench_all baseline must stay byte-identical.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "apps/synthetic/workload.hpp"
#include "common/check.hpp"
#include "harness/bench_registry.hpp"
#include "harness/format.hpp"
#include "locks/model.hpp"

namespace {
using namespace aecdsm;

std::vector<std::string> split_env_list(const char* env,
                                        std::vector<std::string> fallback) {
  if (env == nullptr || *env == '\0') return fallback;
  std::vector<std::string> picked;
  std::stringstream ss{std::string(env)};
  for (std::string name; std::getline(ss, name, ',');) {
    if (!name.empty()) picked.push_back(name);
  }
  return picked;
}

/// Node counts on the mesh-size axis; each must be a perfect square (the
/// sweep only walks k x k geometries).
std::vector<int> meshes() {
  std::vector<int> sizes;
  for (const std::string& tok :
       split_env_list(std::getenv("AECDSM_LOCK_MESHES"), {"16", "64", "256"})) {
    const int n = std::atoi(tok.c_str());
    const int k = static_cast<int>(std::lround(std::sqrt(n)));
    AECDSM_CHECK_MSG(n > 0 && k * k == n,
                     "AECDSM_LOCK_MESHES entry '" << tok
                                                  << "' is not a square node count");
    sizes.push_back(n);
  }
  return sizes;
}

/// Contention axis: one saturated hotspot lock at two fan-in levels plus the
/// migratory pattern (locks handed around a ring of regions).
std::vector<std::string> specs() {
  return split_env_list(std::getenv("AECDSM_LOCK_SPECS"),
                        {"syn:hotspot/cs64/fan2/bursts4/seed17",
                         "syn:hotspot/cs512/fan8/bursts4/seed17",
                         "syn:migratory/cs32/fan4/seed7"});
}

const std::vector<std::string>& strategies() {
  static const std::vector<std::string> s = {"central", "mcs", "hier"};
  return s;
}

SystemParams cell_params(int nprocs, const std::string& strategy) {
  SystemParams p;
  p.num_procs = nprocs;
  p.mesh_width = static_cast<int>(std::lround(std::sqrt(nprocs)));
  // Shrunk pages and caches on every mesh size so rows are comparable
  // across the axis and the 256-node cells stay tractable.
  p.page_bytes = 256;
  p.cache_bytes = 8 * 1024;
  p.locks.strategy = strategy;
  // `central` only accounts its grant stream when asked; mcs/hier always
  // do. Set it everywhere so every row has the same columns.
  p.locks.collect_stats = true;
  return p;
}

std::string cell_label(const std::string& strategy, const std::string& spec,
                       int nprocs) {
  return strategy + "/" + spec + "@" + std::to_string(nprocs);
}

harness::ExperimentPlan build_plan() {
  harness::ExperimentPlan plan;
  plan.name = "lock_scale";
  for (const std::string& spec : specs()) {
    // Parse up front so a typo fails with the grammar error before any
    // simulation starts.
    (void)apps::synthetic::WorkloadSpec::parse(spec);
    for (const int n : meshes()) {
      for (const std::string& strat : strategies()) {
        auto& cell = plan.add("AEC", spec, apps::Scale::kSmall,
                              cell_params(n, strat), /*seed=*/7);
        cell.label = cell_label(strat, spec, n);
      }
    }
  }
  return plan;
}

/// Simulated lock throughput in grants per million cycles.
double throughput_mcyc(const RunStats& s) {
  if (s.finish_time == 0) return 0.0;
  return static_cast<double>(s.lockmgr.grants) /
         (static_cast<double>(s.finish_time) / 1e6);
}

/// Aksenov 1/(C + H) prediction for a saturated mcs lock, composed the same
/// way the committed model test does: the direct-handoff wire cost at the
/// observed mean hop distance plus the receiver's grant service, and one
/// extra interrupt for the LAP push that precedes the grant on the
/// successor's service queue.
double aksenov_mcyc(const SystemParams& p, Cycles cs_cycles,
                    const LockMgrStats& lm) {
  if (lm.handoffs == 0) return 0.0;
  const double hops = static_cast<double>(lm.handoff_hops) /
                      static_cast<double>(lm.handoffs);
  const Cycles handoff =
      locks::mcs_handoff_cycles(p, /*bytes=*/64,
                                static_cast<int>(std::lround(hops)),
                                p.list_processing_per_elem * 4) +
      p.interrupt_cycles;
  return locks::mcs_predicted_throughput(static_cast<double>(cs_cycles),
                                         static_cast<double>(handoff)) *
         1e6;
}

void report(harness::BenchReport& r) {
  harness::print_header(
      std::cout,
      "Lock strategies across k x k meshes (small scale, shrunk pages)");
  std::printf("%-34s %5s %-8s %9s %9s %6s %7s %7s %7s %7s %9s\n", "workload",
              "nodes", "strategy", "grants", "gr/Mcyc", "hops", "xquad%",
              "qdepth", "qmax", "direct", "pred/Mc");
  json::Value rows = json::Value::array();
  for (const std::string& spec : specs()) {
    const auto parsed = apps::synthetic::WorkloadSpec::parse(spec);
    const std::string fp = parsed.fingerprint();
    const bool hotspot = spec.find("hotspot") != std::string::npos;
    for (const int n : meshes()) {
      for (const std::string& strat : strategies()) {
        const auto& cell = r.result(cell_label(strat, spec, n));
        AECDSM_CHECK_MSG(cell.status == "ok" && cell.stats.result_valid,
                         "lock-scale cell " << cell_label(strat, spec, n)
                                            << " failed: " << cell.status);
        const LockMgrStats& lm = cell.stats.lockmgr;
        const double hops =
            lm.handoffs ? static_cast<double>(lm.handoff_hops) /
                              static_cast<double>(lm.handoffs)
                        : 0.0;
        const double xquad =
            lm.handoffs ? 100.0 * static_cast<double>(lm.cross_cohort) /
                              static_cast<double>(lm.handoffs)
                        : 0.0;
        const double qdepth =
            lm.grants ? static_cast<double>(lm.queue_depth_sum) /
                            static_cast<double>(lm.grants)
                      : 0.0;
        // The closed form models one saturated queue with direct handoffs,
        // so it only applies to the hotspot x mcs rows.
        const bool predict = hotspot && strat == "mcs";
        const SystemParams params = cell_params(n, strat);
        const double pred =
            predict ? aksenov_mcyc(params, parsed.cs_cycles, lm) : 0.0;
        char pred_text[16];
        if (predict) {
          std::snprintf(pred_text, sizeof pred_text, "%9.2f", pred);
        } else {
          std::snprintf(pred_text, sizeof pred_text, "%9s", "-");
        }
        std::printf("%-34s %5d %-8s %9llu %9.2f %6.2f %6.1f%% %7.2f %7llu %7llu %s\n",
                    fp.c_str(), n, strat.c_str(),
                    static_cast<unsigned long long>(lm.grants),
                    throughput_mcyc(cell.stats), hops, xquad, qdepth,
                    static_cast<unsigned long long>(lm.queue_depth_max),
                    static_cast<unsigned long long>(lm.direct_handoffs),
                    pred_text);
        json::Value row = json::Value::object();
        row["spec"] = spec;
        row["fingerprint"] = fp;
        row["nodes"] = static_cast<std::uint64_t>(n);
        row["strategy"] = strat;
        row["grants"] = lm.grants;
        row["grants_per_mcycle"] = throughput_mcyc(cell.stats);
        row["mean_handoff_hops"] = hops;
        row["cross_cohort_pct"] = xquad;
        row["mean_queue_depth"] = qdepth;
        row["max_queue_depth"] = lm.queue_depth_max;
        row["direct_handoffs"] = lm.direct_handoffs;
        row["link_messages"] = lm.link_messages;
        row["fallback_rels"] = lm.fallback_rels;
        row["hier_skips"] = lm.hier_skips;
        if (predict) row["aksenov_per_mcycle"] = pred;
        rows.append(std::move(row));
      }
      std::printf("\n");
    }
  }
  json::Value section = json::Value::object();
  section["schema"] = "aecdsm-bench-lock-scale-v1";
  section["rows"] = std::move(rows);
  r.doc["lock_scale"] = std::move(section);

  std::printf(
      "(gr/Mcyc = grants per million cycles; xquad%% = handoffs leaving the\n"
      " releaser's mesh quadrant; pred/Mc = Aksenov 1/(C+H) closed form on\n"
      " hotspot x mcs rows — the saturated-queue ceiling, which the sweep's\n"
      " rows sit below because the workload interleaves region work between\n"
      " acquisitions (the committed model test saturates a pure lock loop\n"
      " and holds sim/pred within tolerance). hier should cut xquad%% vs\n"
      " central on the larger meshes; mcs should push 'direct' close to its\n"
      " handoff count.)\n");
}

[[maybe_unused]] const bool registered = harness::register_bench(
    {"lock_scale", 16, build_plan, report, /*in_bench_all=*/false});

}  // namespace

#ifndef AECDSM_BENCH_ALL
int main(int argc, char** argv) {
  return aecdsm::harness::bench_main("lock_scale", argc, argv);
}
#endif
