// Table 1 of the paper: defaults for the simulated system parameters.
// This binary documents the exact constants every other experiment uses;
// its batch plan is empty, but it still routes through run_bench so the
// constants land in a JSON artifact alongside every other bench's results.
#include <iomanip>
#include <iostream>

#include "common/params.hpp"
#include "harness/bench_registry.hpp"
#include "harness/format.hpp"

namespace {
using namespace aecdsm;

harness::ExperimentPlan build_plan() {
  harness::ExperimentPlan plan;
  plan.name = "table1_params";
  return plan;
}

void report(harness::BenchReport& r) {
  const SystemParams p;
  harness::print_header(std::cout,
                        "Table 1: Defaults for System Parameters (1 cycle = 10ns)");
  auto row = [](const std::string& name, const std::string& value) {
    std::cout << "  " << std::left << std::setw(28) << name << value << "\n";
  };
  row("Number of procs", std::to_string(p.num_procs));
  row("TLB size", std::to_string(p.tlb_entries) + " entries");
  row("TLB fill service time", std::to_string(p.tlb_fill_cycles) + " cycles");
  row("All interrupts", std::to_string(p.interrupt_cycles) + " cycles");
  row("Page size", std::to_string(p.page_bytes) + " bytes");
  row("Total cache", std::to_string(p.cache_bytes / 1024) + "K bytes");
  row("Write buffer size", std::to_string(p.write_buffer_entries) + " entries");
  row("Cache line size", std::to_string(p.cache_line_bytes) + " bytes");
  row("Memory setup time", std::to_string(p.mem_setup_cycles) + " cycles");
  row("Memory access time", "2.25 cycles/word");
  row("I/O bus setup time", std::to_string(p.io_setup_cycles) + " cycles");
  row("I/O bus access time", std::to_string(p.io_cycles_per_word) + " cycles/word");
  row("Network path width", std::to_string(p.network_width_bits) + " bits (bidir)");
  row("Messaging overhead", std::to_string(p.message_overhead) + " cycles");
  row("Switch latency", std::to_string(p.switch_cycles) + " cycles");
  row("Wire latency", std::to_string(p.wire_cycles) + " cycles");
  row("List processing", std::to_string(p.list_processing_per_elem) + " cycles/element");
  row("Page twinning", std::to_string(p.twin_cycles_per_word) + " cycles/word + mem");
  row("Diff appl/creation", std::to_string(p.diff_cycles_per_word) + " cycles/word + mem");
  row("Update set size (K)", std::to_string(p.update_set_size));
  row("Affinity threshold", "60%");
  r.doc["params"] = harness::to_json(p);
}

[[maybe_unused]] const bool registered =
    harness::register_bench({"table1_params", 1, build_plan, report});

}  // namespace

#ifndef AECDSM_BENCH_ALL
int main(int argc, char** argv) {
  return aecdsm::harness::bench_main("table1_params", argc, argv);
}
#endif
