// bench_all: the whole evaluation in one batch. Unions the plans of every
// registered table/figure bench, deduplicates identical cells by their
// content hash (many figures share e.g. the default-parameter AEC runs),
// simulates each unique cell exactly once — through the cell cache, so a
// re-run with unchanged inputs simulates nothing — and fans the results
// back out into every paper-style report, every per-bench JSON artifact,
// and one combined "aecdsm-bench-all-v1" document.
//
// The shared batch CLI applies: --jobs, --json (the *combined* artifact;
// per-bench artifacts keep their default <name>.json paths), --no-json,
// --cache-dir, --no-cache, --refresh, --fail-fast.
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "harness/bench_registry.hpp"
#include "harness/cellcache.hpp"

int main(int argc, char** argv) {
  using namespace aecdsm;
  harness::BatchOptions opts = harness::parse_batch_cli(argc, argv);
  for (int i = 1; i < argc; ++i) {
    std::fprintf(stderr, "%s: unknown argument '%s' (try --help)\n", argv[0], argv[i]);
    return 2;
  }

  const std::vector<const harness::BenchDef*> benches = harness::registered_benches();

  // Union of every bench's cells, first occurrence wins. Cells are
  // identified by their content hash — the same key the cell cache uses —
  // so two benches sweeping the same (protocol, app, scale, params, seed)
  // share one simulation regardless of their row labels.
  struct BenchInstance {
    const harness::BenchDef* def;
    harness::ExperimentPlan plan;
    std::vector<std::size_t> cell_index;  ///< per plan cell: index into mega plan
  };
  std::vector<BenchInstance> instances;
  harness::ExperimentPlan mega;
  mega.name = "bench_all";
  std::unordered_map<std::string, std::size_t> index_of_hash;
  for (const harness::BenchDef* def : benches) {
    if (!def->in_bench_all) continue;  // e.g. the fault injection sweep
    BenchInstance inst{def, def->plan(), {}};
    inst.cell_index.reserve(inst.plan.cells.size());
    for (const harness::ExperimentCell& cell : inst.plan.cells) {
      const std::string hash = harness::CellCache::cell_hash(cell);
      auto [it, inserted] = index_of_hash.try_emplace(hash, mega.cells.size());
      if (inserted) mega.cells.push_back(cell);
      inst.cell_index.push_back(it->second);
    }
    instances.push_back(std::move(inst));
  }

  std::size_t unioned = 0;
  for (const BenchInstance& inst : instances) unioned += inst.plan.cells.size();
  std::fprintf(stderr, "[bench_all] %zu benches, %zu plan cells, %zu unique\n",
               instances.size(), unioned, mega.cells.size());

  try {
    harness::BatchRunner runner(opts);
    const std::vector<harness::ExperimentResult> mega_results = runner.run(mega);

    harness::json::Value combined = harness::json::Value::object();
    combined["schema"] = harness::json::Value("aecdsm-bench-all-v1");
    combined["plan"] = harness::json::Value(mega.name);
    combined["unique_cells"] =
        harness::json::Value(static_cast<std::uint64_t>(mega.cells.size()));
    combined["plan_cells"] = harness::json::Value(static_cast<std::uint64_t>(unioned));
    harness::json::Value benches_doc = harness::json::Value::object();

    // Per-bench artifacts go to their default <name>.json paths (suppressed
    // by --no-json), exactly as the standalone drivers write them.
    harness::BatchOptions per_bench_opts;
    per_bench_opts.json_path = opts.json_path == "off" ? "off" : "";
    const harness::BatchRunner per_bench_writer(per_bench_opts);

    for (const BenchInstance& inst : instances) {
      std::vector<harness::ExperimentResult> results;
      results.reserve(inst.plan.cells.size());
      for (const std::size_t idx : inst.cell_index) {
        results.push_back(mega_results[idx]);
      }
      harness::json::Value doc = harness::BatchRunner::document(inst.plan, results);
      harness::BenchReport rep{inst.plan, results, doc};
      inst.def->report(rep);
      per_bench_writer.write_json(inst.plan, doc);
      benches_doc[inst.def->name] = std::move(doc);
    }

    combined["benches"] = std::move(benches_doc);
    runner.write_json(mega, combined);

    const harness::BatchRunInfo& info = runner.last_run_info();
    std::fprintf(stderr,
                 "[bench_all] done: %zu unique cells (%zu cache hits, %zu simulated)\n",
                 info.cells, info.cache_hits, info.simulated);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 1;
  }
  return 0;
}
