// The policy engine's acceptance matrix: every registered consistency
// policy — the three legacy protocol presets, the AEC-noLAP ablation and
// the hybrid AEC-TmkBarrier — across all six applications on the paper
// testbed. Legacy cells carry the same content hash as their bench_all
// twins, so CI holds this artifact against the committed baseline with
// `bench_diff --subset`: the cells both documents share must be
// byte-identical, while the hybrid-only cells (absent from the baseline by
// design) pass through. Opted out of bench_all for the same reason the
// fault sweep is: the hybrid cells must not perturb the committed baseline.
#include <cstdio>
#include <iostream>

#include "harness/bench_registry.hpp"
#include "harness/format.hpp"
#include "policy/policy.hpp"

namespace {
using namespace aecdsm;

harness::ExperimentPlan build_plan() {
  harness::ExperimentPlan plan;
  plan.name = "policy_matrix";
  for (const std::string& app : apps::app_names()) {
    for (const std::string& pol : policy::registered_names()) {
      plan.add(pol, app);
    }
  }
  return plan;
}

void report(harness::BenchReport& r) {
  harness::print_header(
      std::cout, "Policy matrix: every registered preset x every application");
  std::printf("%-12s %-16s %12s %12s %9s %6s\n", "application", "policy",
              "finish (M)", "messages", "vs AEC", "valid");
  for (const auto& res : r.results) {
    const auto& aec = r.result("AEC/" + res.stats.app);
    std::printf("%-12s %-16s %12.2f %12llu %8.2fx %6s\n", res.stats.app.c_str(),
                res.stats.protocol.c_str(), res.stats.finish_time / 1e6,
                static_cast<unsigned long long>(res.stats.msgs.messages),
                static_cast<double>(res.stats.finish_time) /
                    static_cast<double>(aec.stats.finish_time),
                res.stats.result_valid ? "yes" : "NO");
  }
  std::printf(
      "\n(Every preset must finish every app with a valid result. The hybrid\n"
      " AEC-TmkBarrier keeps AEC's lock handling but flips the barrier action\n"
      " to invalidation: sharers drop their copies and refetch on demand\n"
      " instead of receiving routed diffs.)\n");
}

[[maybe_unused]] const bool registered = harness::register_bench(
    {"policy_matrix", 14, build_plan, report, /*in_bench_all=*/false});

}  // namespace

#ifndef AECDSM_BENCH_ALL
int main(int argc, char** argv) {
  return aecdsm::harness::bench_main("policy_matrix", argc, argv);
}
#endif
