// Table 4 of the paper: diff statistics in AEC — average diff size, average
// merged-diff size, the fraction of diffs that participate in release-point
// merges, the total diff-creation cost, and the fraction of that cost hidden
// behind synchronization waits.
#include <iostream>

#include "harness/format.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace aecdsm;
  harness::print_header(std::cout, "Table 4: Diff statistics in AEC (16 procs)");
  std::vector<harness::DiffRow> rows;
  for (const std::string& app : apps::app_names()) {
    const auto r = harness::run_experiment("AEC", app, apps::Scale::kDefault,
                                           harness::paper_params());
    rows.push_back(harness::DiffRow{app, r.stats.diffs});
  }
  harness::print_diff_table(std::cout, rows);
  std::cout << "\n(Size/MergedSize in bytes; Create in millions of cycles; "
               "Hidden = share of diff-creation cycles overlapped with waits)\n";
  return 0;
}
