// Table 4 of the paper: diff statistics in AEC — average diff size, average
// merged-diff size, the fraction of diffs that participate in release-point
// merges, the total diff-creation cost, and the fraction of that cost hidden
// behind synchronization waits.
#include <iostream>

#include "harness/bench_registry.hpp"
#include "harness/format.hpp"

namespace {
using namespace aecdsm;

harness::ExperimentPlan build_plan() {
  harness::ExperimentPlan plan;
  plan.name = "table4_diff_stats";
  for (const std::string& app : apps::app_names()) plan.add("AEC", app);
  return plan;
}

void report(harness::BenchReport& r) {
  harness::print_header(std::cout, "Table 4: Diff statistics in AEC (16 procs)");
  std::vector<harness::DiffRow> rows;
  for (const auto& res : r.results) {
    rows.push_back(harness::DiffRow{res.stats.app, res.stats.diffs});
  }
  harness::print_diff_table(std::cout, rows);
  std::cout << "\n(Size/MergedSize in bytes; Create in millions of cycles; "
               "Hidden = share of diff-creation cycles overlapped with waits)\n";
}

[[maybe_unused]] const bool registered =
    harness::register_bench({"table4_diff_stats", 6, build_plan, report});

}  // namespace

#ifndef AECDSM_BENCH_ALL
int main(int argc, char** argv) {
  return aecdsm::harness::bench_main("table4_diff_stats", argc, argv);
}
#endif
