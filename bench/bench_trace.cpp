// Tracing showcase: one traced cell per application x protocol at small
// scale, exporting both trace formats (aecdsm-trace-v1 + Chrome
// trace_event) and tabulating the OverlapAnalyzer's verdict — how many
// diff-work cycles each protocol hides behind synchronization delay the
// processor suffers anyway. This is the paper's central claim made visible:
// AEC's rows should show a high hidden fraction, TreadMarks' lazy diffs and
// Munin-ERC's eager flushes a low one.
//
// Deliberately NOT part of bench_all: tracing bypasses the cell cache, and
// the committed bench_all baseline must stay byte-identical.
//
// Unless the caller picks a sink (--trace / --trace-dir), per-cell trace
// files default to ./traces. AECDSM_TRACE_APPS="Water-SP" and
// AECDSM_TRACE_PROTOCOLS="AEC,TreadMarks" restrict the sweep (the CI smoke
// uses both to trace a single cell).
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/bench_registry.hpp"
#include "harness/format.hpp"

namespace {
using namespace aecdsm;

std::vector<std::string> split_env_list(const char* env,
                                        std::vector<std::string> fallback) {
  if (env == nullptr || *env == '\0') return fallback;
  std::vector<std::string> picked;
  std::stringstream ss{std::string(env)};
  for (std::string name; std::getline(ss, name, ',');) {
    if (!name.empty()) picked.push_back(name);
  }
  return picked;
}

std::vector<std::string> protocols() {
  return split_env_list(std::getenv("AECDSM_TRACE_PROTOCOLS"),
                        {"AEC", "AEC-noLAP", "TreadMarks", "Munin-ERC"});
}

std::vector<std::string> apps_list() {
  return split_env_list(std::getenv("AECDSM_TRACE_APPS"), apps::app_names());
}

harness::ExperimentPlan build_plan() {
  harness::ExperimentPlan plan;
  plan.name = "trace";
  for (const std::string& app : apps_list()) {
    for (const std::string& proto : protocols()) {
      plan.add(proto, app, apps::Scale::kSmall);
    }
  }
  return plan;
}

std::string kcycles(Cycles c) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1)
     << static_cast<double>(c) / 1000.0 << "K";
  return os.str();
}

void report(harness::BenchReport& r) {
  harness::print_header(
      std::cout,
      "Diff-work overlap with synchronization delay (small scale, traced)");
  bool traced = false;
  for (const auto& res : r.results) traced |= res.stats.overlap.any();
  if (!traced) {
    std::cout << "(no overlap data - run with --trace PATH or --trace-dir DIR"
              << " to record timelines)\n";
    return;
  }
  std::cout << std::left << std::setw(12) << "Appl" << std::setw(12) << "Protocol"
            << std::right << std::setw(10) << "diff" << std::setw(10) << "lockhid"
            << std::setw(10) << "barrhid" << std::setw(10) << "svchid"
            << std::setw(9) << "hidden" << std::setw(10) << "episodes" << "\n";
  for (const std::string& app : apps_list()) {
    for (const std::string& proto : protocols()) {
      const auto& cell = r.result(proto + "/" + app);
      if (cell.status != "ok") {
        std::cout << std::left << std::setw(12) << app << std::setw(12) << proto
                  << std::right << std::setw(10) << cell.status << "\n";
        continue;
      }
      const OverlapStats& o = cell.stats.overlap;
      std::cout << std::left << std::setw(12) << app << std::setw(12) << proto
                << std::right << std::setw(10) << kcycles(o.diff_cycles)
                << std::setw(10) << kcycles(o.overlap_lock_wait)
                << std::setw(10) << kcycles(o.overlap_barrier_wait)
                << std::setw(10) << kcycles(o.overlap_service)
                << std::setw(9) << harness::pct(o.ratio())
                << std::setw(10) << o.episodes << "\n";
    }
  }
  std::cout << "\nhidden = diff cycles overlapped with lock waiting, barrier\n"
               "imbalance, or message service on the same node (union, counted\n"
               "once); engine-side diff work serving a remote request is never\n"
               "counted as hidden - it sits on the requester's critical path.\n";
}

[[maybe_unused]] const bool registered = harness::register_bench(
    {"trace", 13, build_plan, report, /*in_bench_all=*/false});

}  // namespace

#ifndef AECDSM_BENCH_ALL
int main(int argc, char** argv) {
  // Tracing is this driver's whole point: when the caller did not pick a
  // sink, default to per-cell files under ./traces.
  std::vector<char*> args(argv, argv + argc);
  bool has_sink = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace", 7) == 0) has_sink = true;
  }
  static char kFlag[] = "--trace-dir";
  static char kDir[] = "traces";
  if (!has_sink) {
    args.push_back(kFlag);
    args.push_back(kDir);
  }
  args.push_back(nullptr);
  return aecdsm::harness::bench_main("trace", static_cast<int>(args.size()) - 1,
                                     args.data());
}
#endif
