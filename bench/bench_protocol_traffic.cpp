// Section 6 of the paper contrasts AEC's update traffic against Munin's:
// "AEC leads to much less communication than in Munin, since updates are
// only sent to the update set of the lock releaser, as opposed to all
// processors that shared the modified data." This bench quantifies that
// with the Munin-style eager-release-consistency baseline (src/erc),
// alongside TreadMarks for reference.
#include <cstdio>
#include <iostream>

#include "harness/bench_registry.hpp"
#include "harness/format.hpp"

namespace {
using namespace aecdsm;

harness::ExperimentPlan build_plan() {
  harness::ExperimentPlan plan;
  plan.name = "protocol_traffic";
  for (const std::string& app : apps::app_names()) {
    for (const char* proto : {"AEC", "TreadMarks", "Munin-ERC"}) {
      plan.add(proto, app);
    }
  }
  return plan;
}

void report(harness::BenchReport& r) {
  harness::print_header(std::cout,
                        "Protocol traffic: AEC vs TreadMarks vs Munin-ERC (16 procs)");
  std::printf("%-12s %-12s %12s %12s %14s\n", "application", "protocol", "messages",
              "MB moved", "finish (M)");
  for (const auto& res : r.results) {
    std::printf("%-12s %-12s %12llu %12.2f %14.2f\n", res.stats.app.c_str(),
                res.stats.protocol.c_str(),
                static_cast<unsigned long long>(res.stats.msgs.messages),
                static_cast<double>(res.stats.msgs.bytes) / 1e6,
                res.stats.finish_time / 1e6);
  }
  std::printf("\n(Munin-ERC pushes every release's diffs to all copyset members\n"
              " and stalls for acknowledgements — the communication volume AEC's\n"
              " update sets avoid.)\n");
}

[[maybe_unused]] const bool registered =
    harness::register_bench({"protocol_traffic", 11, build_plan, report});

}  // namespace

#ifndef AECDSM_BENCH_ALL
int main(int argc, char** argv) {
  return aecdsm::harness::bench_main("protocol_traffic", argc, argv);
}
#endif
