// Section 6 of the paper contrasts AEC's update traffic against Munin's:
// "AEC leads to much less communication than in Munin, since updates are
// only sent to the update set of the lock releaser, as opposed to all
// processors that shared the modified data." This bench quantifies that
// with the Munin-style eager-release-consistency baseline (src/erc),
// alongside TreadMarks for reference.
#include <cstdio>

#include "harness/format.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace aecdsm;
  harness::print_header(std::cout,
                        "Protocol traffic: AEC vs TreadMarks vs Munin-ERC (16 procs)");
  std::printf("%-12s %-12s %12s %12s %14s\n", "application", "protocol", "messages",
              "MB moved", "finish (M)");
  for (const std::string& app : apps::app_names()) {
    for (const char* proto : {"AEC", "TreadMarks", "Munin-ERC"}) {
      const auto r = harness::run_experiment(proto, app, apps::Scale::kDefault,
                                             harness::paper_params());
      std::printf("%-12s %-12s %12llu %12.2f %14.2f\n", app.c_str(), proto,
                  static_cast<unsigned long long>(r.stats.msgs.messages),
                  static_cast<double>(r.stats.msgs.bytes) / 1e6,
                  r.stats.finish_time / 1e6);
    }
  }
  std::printf("\n(Munin-ERC pushes every release's diffs to all copyset members\n"
              " and stalls for acknowledgements — the communication volume AEC's\n"
              " update sets avoid.)\n");
  return 0;
}
