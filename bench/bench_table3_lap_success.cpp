// Table 3 of the paper: LAP success rates for K = 2 — per lock-variable
// group, the number of acquire events, the share of all acquires, and the
// success rate of the full LAP combination plus the low-level technique
// combinations (waitQ, waitQ+affinity, waitQ+virtualQ).
#include <iostream>

#include "harness/format.hpp"
#include "harness/lap_report.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace aecdsm;
  harness::print_header(std::cout, "Table 3: LAP success rates for K = 2 (AEC, 16 procs)");
  for (const std::string& app : apps::app_names()) {
    const auto r = harness::run_experiment("AEC", app, apps::Scale::kDefault,
                                           harness::paper_params());
    const auto scores = harness::lap_scores_of(r);
    const auto rows = harness::lap_rows(
        scores, apps::lock_groups(app, apps::Scale::kDefault, r.stats.num_procs));
    harness::print_lap_table(std::cout, app, rows);
    std::cout << "\n";
  }
  return 0;
}
