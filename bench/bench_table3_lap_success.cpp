// Table 3 of the paper: LAP success rates for K = 2 — per lock-variable
// group, the number of acquire events, the share of all acquires, and the
// success rate of the full LAP combination plus the low-level technique
// combinations (waitQ, waitQ+affinity, waitQ+virtualQ).
#include <iostream>

#include "harness/bench_registry.hpp"
#include "harness/format.hpp"
#include "harness/lap_report.hpp"

namespace {
using namespace aecdsm;

harness::ExperimentPlan build_plan() {
  harness::ExperimentPlan plan;
  plan.name = "table3_lap_success";
  for (const std::string& app : apps::app_names()) plan.add("AEC", app);
  return plan;
}

void report(harness::BenchReport& r) {
  harness::print_header(std::cout,
                        "Table 3: LAP success rates for K = 2 (AEC, 16 procs)");
  for (const auto& res : r.results) {
    const auto scores = harness::lap_scores_of(res);
    const auto rows = harness::lap_rows(
        scores,
        apps::lock_groups(res.stats.app, apps::Scale::kDefault, res.stats.num_procs));
    harness::print_lap_table(std::cout, res.stats.app, rows);
    std::cout << "\n";
  }
}

[[maybe_unused]] const bool registered =
    harness::register_bench({"table3_lap_success", 3, build_plan, report});

}  // namespace

#ifndef AECDSM_BENCH_ALL
int main(int argc, char** argv) {
  return aecdsm::harness::bench_main("table3_lap_success", argc, argv);
}
#endif
