// Fault tolerance sweep: graceful degradation of AEC vs TreadMarks under an
// unreliable mesh. Sweeps message loss {0%, 0.1%, 1%, 5%} across all six
// applications at small scale with a fixed fault seed, and reports the
// finish-time inflation relative to the loss-free run together with the
// transport's recovery counters (retransmits, LAP push fallbacks).
//
// Deliberately NOT part of bench_all: its cells diverge from the paper
// testbed, and the committed bench_all baseline must stay byte-identical.
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/bench_registry.hpp"
#include "harness/format.hpp"

namespace {
using namespace aecdsm;

struct LossPoint {
  double rate;
  const char* label;
};

const std::vector<LossPoint>& losses() {
  static const std::vector<LossPoint> pts = {
      {0.0, "0%"}, {0.001, "0.1%"}, {0.01, "1%"}, {0.05, "5%"}};
  return pts;
}

const std::vector<std::string>& protocols() {
  static const std::vector<std::string> protos = {"AEC", "TreadMarks"};
  return protos;
}

/// --full-scale (standalone binary only) runs the sweep at the paper's
/// default problem sizes instead of small scale. Default-scale cells are
/// memory-hungry, so pair it with --max-mem (or AECDSM_MAX_MEM) to bound
/// how many simulate concurrently.
bool full_scale = false;

apps::Scale sweep_scale() {
  return full_scale ? apps::Scale::kDefault : apps::Scale::kSmall;
}

/// Apps in the sweep; AECDSM_FAULT_APPS="IS,FFT" restricts the list (the CI
/// smoke uses this to keep the job fast).
std::vector<std::string> apps_list() {
  const char* env = std::getenv("AECDSM_FAULT_APPS");
  if (env == nullptr || *env == '\0') return apps::app_names();
  std::vector<std::string> picked;
  std::stringstream ss{std::string(env)};
  for (std::string name; std::getline(ss, name, ',');) {
    if (!name.empty()) picked.push_back(name);
  }
  return picked;
}

harness::ExperimentPlan build_plan() {
  harness::ExperimentPlan plan;
  plan.name = "fault_tolerance";
  for (const std::string& proto : protocols()) {
    for (const std::string& app : apps_list()) {
      for (const LossPoint& loss : losses()) {
        auto& cell = plan.add(proto, app, sweep_scale());
        cell.label = proto + "/" + app + "@" + loss.label;
        if (loss.rate > 0) {
          // loss.rate == 0 keeps FaultParams at its all-zero default, so the
          // fault-free column shares cells (and cache slots) with the rest
          // of the suite at small scale.
          cell.params.faults.drop_rate = loss.rate;
          cell.params.faults.seed = 7;
        }
      }
    }
  }
  return plan;
}

void report(harness::BenchReport& r) {
  harness::print_header(
      std::cout, std::string("Fault tolerance: finish-time inflation vs message loss (") +
                     (full_scale ? "default scale)" : "small scale)"));
  std::cout << std::left << std::setw(12) << "Appl" << std::setw(12) << "Protocol"
            << std::right << std::setw(12) << "0% cycles";
  for (std::size_t li = 1; li < losses().size(); ++li) {
    std::cout << std::setw(9) << losses()[li].label;
  }
  std::cout << std::setw(10) << "retx@5%" << std::setw(10) << "fallb@5%" << "\n";
  for (const std::string& app : apps_list()) {
    for (const std::string& proto : protocols()) {
      const auto& base = r.result(proto + "/" + app + "@0%");
      std::cout << std::left << std::setw(12) << app << std::setw(12) << proto
                << std::right << std::setw(12) << base.stats.finish_time;
      for (std::size_t li = 1; li < losses().size(); ++li) {
        const auto& cell = r.result(proto + "/" + app + "@" + losses()[li].label);
        if (cell.status != "ok" || base.stats.finish_time == 0) {
          std::cout << std::setw(9) << cell.status;
          continue;
        }
        const double ratio = static_cast<double>(cell.stats.finish_time) /
                             static_cast<double>(base.stats.finish_time);
        std::ostringstream cellText;
        cellText << std::fixed << std::setprecision(2) << ratio << "x";
        std::cout << std::setw(9) << cellText.str();
      }
      const auto& worst = r.result(proto + "/" + app + "@5%");
      if (worst.status == "ok") {
        std::cout << std::setw(10) << worst.stats.transport.retransmits
                  << std::setw(10) << worst.stats.transport.push_fallbacks;
      }
      std::cout << "\n";
    }
  }
}

[[maybe_unused]] const bool registered = harness::register_bench(
    {"fault_tolerance", 12, build_plan, report, /*in_bench_all=*/false});

}  // namespace

#ifndef AECDSM_BENCH_ALL
int main(int argc, char** argv) {
  // Strip --full-scale before the shared batch CLI sees it.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full-scale") == 0) {
      full_scale = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
  return aecdsm::harness::bench_main("fault_tolerance", argc, argv);
}
#endif
