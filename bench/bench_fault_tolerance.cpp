// Fault tolerance sweep: graceful degradation of AEC vs TreadMarks under an
// unreliable mesh. Sweeps message loss {0%, 0.1%, 1%, 5%} across all six
// applications at small scale with a fixed fault seed, and reports the
// finish-time inflation relative to the loss-free run together with the
// transport's recovery counters (retransmits, LAP push fallbacks).
//
// Second section: the crash/recovery sweep. Fail-stop crash schedules
// ({1, 2} lock-manager crashes) run the lock-heavy Water-ns kernel across
// every policy preset; each cell must finish with a correct pid-0 oracle
// audit (no lost updates through failover), and the report shows recovery
// time, manager re-elections, replayed requests and traffic inflation vs
// the crash-free run. A failed audit throws and fails the bench.
//
// Deliberately NOT part of bench_all: its cells diverge from the paper
// testbed, and the committed bench_all baseline must stay byte-identical.
#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/params.hpp"
#include "harness/bench_registry.hpp"
#include "harness/format.hpp"

namespace {
using namespace aecdsm;

struct LossPoint {
  double rate;
  const char* label;
};

const std::vector<LossPoint>& losses() {
  static const std::vector<LossPoint> pts = {
      {0.0, "0%"}, {0.001, "0.1%"}, {0.01, "1%"}, {0.05, "5%"}};
  return pts;
}

const std::vector<std::string>& protocols() {
  static const std::vector<std::string> protos = {"AEC", "TreadMarks"};
  return protos;
}

/// --full-scale (standalone binary only) runs the sweep at the paper's
/// default problem sizes instead of small scale. Default-scale cells are
/// memory-hungry, so pair it with --max-mem (or AECDSM_MAX_MEM) to bound
/// how many simulate concurrently.
bool full_scale = false;

apps::Scale sweep_scale() {
  return full_scale ? apps::Scale::kDefault : apps::Scale::kSmall;
}

/// Apps in the sweep; AECDSM_FAULT_APPS="IS,FFT" restricts the list (the CI
/// smoke uses this to keep the job fast).
std::vector<std::string> apps_list() {
  const char* env = std::getenv("AECDSM_FAULT_APPS");
  if (env == nullptr || *env == '\0') return apps::app_names();
  std::vector<std::string> picked;
  std::stringstream ss{std::string(env)};
  for (std::string name; std::getline(ss, name, ',');) {
    if (!name.empty()) picked.push_back(name);
  }
  return picked;
}

/// Crash sweep shape: the lock-heavy Water-ns kernel (every node manages a
/// slice of the per-molecule locks), every policy preset, {0, 1, 2} fail-stop
/// crashes. Windows land mid-run for all presets (small-scale Water-ns
/// finishes between ~22M and ~160M cycles) and crash nodes that manage locks
/// other nodes contend for, so each scheduled crash exercises suspect ->
/// failover -> re-election -> replay.
const char* kCrashApp = "Water-ns";

const std::vector<std::string>& crash_presets() {
  static const std::vector<std::string> presets = {
      "AEC", "AEC-noLAP", "AEC-TmkBarrier", "TreadMarks", "Munin-ERC"};
  return presets;
}

std::vector<FaultWindow> crash_schedule(const std::string& preset, int count) {
  // Anchor the windows at ~25% and ~60% of each preset's crash-free finish
  // time (small-scale Water-ns: AEC family ~8M cycles, TreadMarks ~12M,
  // Munin-ERC ~35M) so the outages land inside the lock-heavy phase for
  // every preset — a window placed by one preset's clock would fall into
  // another's startup, crashing a manager nobody is talking to yet.
  Cycles anchor = 8'000'000;
  if (preset == "TreadMarks") anchor = 12'000'000;
  if (preset == "Munin-ERC") anchor = 35'000'000;
  std::vector<FaultWindow> ws;
  if (count >= 1) ws.push_back({/*node=*/3, anchor / 4, /*cycles=*/1'500'000});
  if (count >= 2) ws.push_back({/*node=*/5, (anchor * 3) / 5, /*cycles=*/1'500'000});
  return ws;
}

std::string crash_label(const std::string& preset, int count) {
  return preset + "/" + kCrashApp + "+crash" + std::to_string(count);
}

harness::ExperimentPlan build_plan() {
  harness::ExperimentPlan plan;
  plan.name = "fault_tolerance";
  for (const std::string& proto : protocols()) {
    for (const std::string& app : apps_list()) {
      for (const LossPoint& loss : losses()) {
        auto& cell = plan.add(proto, app, sweep_scale());
        cell.label = proto + "/" + app + "@" + loss.label;
        if (loss.rate > 0) {
          // loss.rate == 0 keeps FaultParams at its all-zero default, so the
          // fault-free column shares cells (and cache slots) with the rest
          // of the suite at small scale.
          cell.params.faults.drop_rate = loss.rate;
          cell.params.faults.seed = 7;
        }
      }
    }
  }
  for (const std::string& preset : crash_presets()) {
    for (int count = 0; count <= 2; ++count) {
      auto& cell = plan.add(preset, kCrashApp, sweep_scale());
      cell.label = crash_label(preset, count);
      if (count > 0) {
        cell.params.faults.crashes = crash_schedule(preset, count);
        cell.params.faults.seed = 7;
      }
    }
  }
  return plan;
}

void report(harness::BenchReport& r) {
  harness::print_header(
      std::cout, std::string("Fault tolerance: finish-time inflation vs message loss (") +
                     (full_scale ? "default scale)" : "small scale)"));
  std::cout << std::left << std::setw(12) << "Appl" << std::setw(12) << "Protocol"
            << std::right << std::setw(12) << "0% cycles";
  for (std::size_t li = 1; li < losses().size(); ++li) {
    std::cout << std::setw(9) << losses()[li].label;
  }
  std::cout << std::setw(10) << "retx@5%" << std::setw(10) << "fallb@5%" << "\n";
  for (const std::string& app : apps_list()) {
    for (const std::string& proto : protocols()) {
      const auto& base = r.result(proto + "/" + app + "@0%");
      std::cout << std::left << std::setw(12) << app << std::setw(12) << proto
                << std::right << std::setw(12) << base.stats.finish_time;
      for (std::size_t li = 1; li < losses().size(); ++li) {
        const auto& cell = r.result(proto + "/" + app + "@" + losses()[li].label);
        if (cell.status != "ok" || base.stats.finish_time == 0) {
          std::cout << std::setw(9) << cell.status;
          continue;
        }
        const double ratio = static_cast<double>(cell.stats.finish_time) /
                             static_cast<double>(base.stats.finish_time);
        std::ostringstream cellText;
        cellText << std::fixed << std::setprecision(2) << ratio << "x";
        std::cout << std::setw(9) << cellText.str();
      }
      const auto& worst = r.result(proto + "/" + app + "@5%");
      if (worst.status == "ok") {
        std::cout << std::setw(10) << worst.stats.transport.retransmits
                  << std::setw(10) << worst.stats.transport.push_fallbacks;
      }
      std::cout << "\n";
    }
  }

  harness::print_header(
      std::cout,
      std::string("Crash recovery: lock-manager failover on ") + kCrashApp);
  std::cout << std::left << std::setw(16) << "Preset" << std::right
            << std::setw(8) << "crashes" << std::setw(10) << "audit"
            << std::setw(9) << "time" << std::setw(9) << "bytes"
            << std::setw(7) << "fails" << std::setw(7) << "reel"
            << std::setw(7) << "replay" << std::setw(12) << "rec cycles"
            << "\n";
  for (const std::string& preset : crash_presets()) {
    const auto& base = r.result(crash_label(preset, 0));
    for (int count = 0; count <= 2; ++count) {
      const auto& cell = r.result(crash_label(preset, count));
      std::cout << std::left << std::setw(16) << preset << std::right
                << std::setw(8) << count;
      if (cell.status != "ok") {
        std::cout << std::setw(10) << cell.status << "\n";
        AECDSM_CHECK_MSG(false, "crash cell " << crash_label(preset, count)
                                              << " did not complete: "
                                              << cell.status);
        continue;
      }
      const RunStats& s = cell.stats;
      // The acceptance gate: every preset must survive its lock-manager
      // crashes with the pid-0 result oracle intact (no lost updates).
      AECDSM_CHECK_MSG(s.result_valid, "oracle audit failed for "
                                           << crash_label(preset, count));
      auto ratio = [&](std::uint64_t a, std::uint64_t b) {
        std::ostringstream os;
        if (b == 0) return std::string("-");
        os << std::fixed << std::setprecision(2)
           << static_cast<double>(a) / static_cast<double>(b) << "x";
        return os.str();
      };
      std::cout << std::setw(10) << (s.result_valid ? "ok" : "FAIL")
                << std::setw(9) << ratio(s.finish_time, base.stats.finish_time)
                << std::setw(9) << ratio(s.msgs.bytes, base.stats.msgs.bytes)
                << std::setw(7) << s.recovery.failovers << std::setw(7)
                << s.recovery.reelections << std::setw(7)
                << s.recovery.requeued_requests << std::setw(12)
                << s.recovery.recovery_cycles << "\n";
    }
  }
}

[[maybe_unused]] const bool registered = harness::register_bench(
    {"fault_tolerance", 12, build_plan, report, /*in_bench_all=*/false});

}  // namespace

#ifndef AECDSM_BENCH_ALL
int main(int argc, char** argv) {
  // Strip --full-scale before the shared batch CLI sees it.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full-scale") == 0) {
      full_scale = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
  return aecdsm::harness::bench_main("fault_tolerance", argc, argv);
}
#endif
