// Table 2 of the paper: synchronization events in the application suite
// (number of lock variables, lock acquire events, barrier events) measured
// on the default scaled inputs with 16 simulated processors.
#include <iomanip>
#include <iostream>

#include "harness/format.hpp"
#include "harness/runner.hpp"

int main() {
  using namespace aecdsm;
  harness::print_header(std::cout,
                        "Table 2: Synchronization events (16 procs, default scaled inputs)");
  std::cout << std::left << std::setw(12) << "Appl" << std::right << std::setw(10)
            << "# locks" << std::setw(14) << "# acq events" << std::setw(18)
            << "# barrier events" << "\n";
  for (const std::string& app : apps::app_names()) {
    const auto r = harness::run_experiment("AEC", app, apps::Scale::kDefault,
                                           harness::paper_params());
    std::cout << std::left << std::setw(12) << app << std::right << std::setw(10)
              << r.stats.sync.distinct_locks << std::setw(14)
              << r.stats.sync.lock_acquires << std::setw(18)
              << r.stats.sync.barrier_events << "\n";
  }
  return 0;
}
