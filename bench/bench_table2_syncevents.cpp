// Table 2 of the paper: synchronization events in the application suite
// (number of lock variables, lock acquire events, barrier events) measured
// on the default scaled inputs with 16 simulated processors.
#include <iomanip>
#include <iostream>

#include "harness/batch.hpp"
#include "harness/format.hpp"

int main(int argc, char** argv) {
  using namespace aecdsm;
  harness::ExperimentPlan plan;
  plan.name = "table2_syncevents";
  for (const std::string& app : apps::app_names()) plan.add("AEC", app);
  return harness::run_bench(argc, argv, plan, [](harness::BenchReport& r) {
    harness::print_header(
        std::cout, "Table 2: Synchronization events (16 procs, default scaled inputs)");
    std::cout << std::left << std::setw(12) << "Appl" << std::right << std::setw(10)
              << "# locks" << std::setw(14) << "# acq events" << std::setw(18)
              << "# barrier events" << "\n";
    for (const auto& res : r.results) {
      std::cout << std::left << std::setw(12) << res.stats.app << std::right
                << std::setw(10) << res.stats.sync.distinct_locks << std::setw(14)
                << res.stats.sync.lock_acquires << std::setw(18)
                << res.stats.sync.barrier_events << "\n";
    }
  });
}
