// Table 2 of the paper: synchronization events in the application suite
// (number of lock variables, lock acquire events, barrier events) measured
// on the default scaled inputs with 16 simulated processors.
#include <iomanip>
#include <iostream>

#include "harness/bench_registry.hpp"
#include "harness/format.hpp"

namespace {
using namespace aecdsm;

harness::ExperimentPlan build_plan() {
  harness::ExperimentPlan plan;
  plan.name = "table2_syncevents";
  for (const std::string& app : apps::app_names()) plan.add("AEC", app);
  return plan;
}

void report(harness::BenchReport& r) {
  harness::print_header(
      std::cout, "Table 2: Synchronization events (16 procs, default scaled inputs)");
  std::cout << std::left << std::setw(12) << "Appl" << std::right << std::setw(10)
            << "# locks" << std::setw(14) << "# acq events" << std::setw(18)
            << "# barrier events" << "\n";
  for (const auto& res : r.results) {
    std::cout << std::left << std::setw(12) << res.stats.app << std::right
              << std::setw(10) << res.stats.sync.distinct_locks << std::setw(14)
              << res.stats.sync.lock_acquires << std::setw(18)
              << res.stats.sync.barrier_events << "\n";
  }
}

[[maybe_unused]] const bool registered =
    harness::register_bench({"table2_syncevents", 2, build_plan, report});

}  // namespace

#ifndef AECDSM_BENCH_ALL
int main(int argc, char** argv) {
  return aecdsm::harness::bench_main("table2_syncevents", argc, argv);
}
#endif
