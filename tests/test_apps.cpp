// Integration tests: every application must produce its sequential
// oracle's result under every protocol — the strongest end-to-end check of
// protocol correctness — across processor counts.
#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "tests/test_util.hpp"

namespace aecdsm::test {
namespace {

struct Case {
  const char* app;
  const char* protocol;
  int nprocs;
};

class AppCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(AppCorrectness, MatchesSequentialOracle) {
  const Case& c = GetParam();
  auto app = apps::make_app(c.app, apps::Scale::kSmall);
  SystemParams params = small_params(c.nprocs);
  const RunStats stats = run_protocol(*app, c.protocol, params);
  EXPECT_TRUE(stats.result_valid)
      << c.app << " under " << c.protocol << " with " << c.nprocs << " procs";
  EXPECT_GT(stats.finish_time, 0u);
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const std::string& app : apps::app_names()) {
    for (const char* proto : kAllProtocols) {
      for (const int np : {2, 4, 8}) {
        cases.push_back(Case{app == "IS"         ? "IS"
                             : app == "Raytrace" ? "Raytrace"
                             : app == "Water-ns" ? "Water-ns"
                             : app == "FFT"      ? "FFT"
                             : app == "Ocean"    ? "Ocean"
                                                 : "Water-sp",
                             proto, np});
      }
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string s = std::string(info.param.app) + "_" + info.param.protocol + "_p" +
                  std::to_string(info.param.nprocs);
  for (char& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(Suite, AppCorrectness, ::testing::ValuesIn(all_cases()),
                         case_name);

}  // namespace
}  // namespace aecdsm::test
