// Unit tests for the src/locks lock-manager strategy library: strategy
// parsing, mesh cohorts, the hier queue discipline and its fairness budget,
// grant accounting, the Aksenov-style MCS throughput model, the DynBitset
// that lifted the 64-node cap, and the JSON/validation surface the
// subsystem added to SystemParams and RunStats.
#include <gtest/gtest.h>

#include <deque>
#include <string>

#include "common/bitset.hpp"
#include "common/check.hpp"
#include "common/params.hpp"
#include "common/stats.hpp"
#include "harness/json_out.hpp"
#include "locks/cohort.hpp"
#include "locks/discipline.hpp"
#include "locks/model.hpp"
#include "locks/strategy.hpp"

namespace aecdsm::test {
namespace {

using locks::Pick;
using locks::Strategy;

SystemParams mesh_params(int width, int procs) {
  SystemParams p;
  p.num_procs = procs;
  p.mesh_width = width;
  return p;
}

// ---------------------------------------------------------------- Strategy

TEST(LockStrategy, ParsesEverySpellingAndRoundTrips) {
  EXPECT_EQ(locks::parse_strategy("central"), Strategy::kCentral);
  EXPECT_EQ(locks::parse_strategy("mcs"), Strategy::kMcs);
  EXPECT_EQ(locks::parse_strategy("hier"), Strategy::kHier);
  for (const Strategy s : {Strategy::kCentral, Strategy::kMcs, Strategy::kHier}) {
    EXPECT_EQ(locks::parse_strategy(locks::to_string(s)), s);
  }
}

TEST(LockStrategy, UnknownSpellingNamesTheKnob) {
  try {
    locks::parse_strategy("queue");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("locks.strategy"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("queue"), std::string::npos);
  }
}

TEST(LockStrategy, ParamsValidationRejectsBadKnobs) {
  SystemParams p;
  p.locks.strategy = "queue";
  EXPECT_NE(p.validate().find("locks.strategy"), std::string::npos);
  p.locks.strategy = "hier";
  p.locks.hier_fairness = 0;
  EXPECT_NE(p.validate().find("locks.hier_fairness"), std::string::npos);
  p.locks.hier_fairness = 4;
  EXPECT_TRUE(p.validate().empty());
}

TEST(LockStrategy, MeshGeometryValidationNamesTheKnob) {
  SystemParams p = mesh_params(/*width=*/5, /*procs=*/16);
  const std::string err = p.validate();
  EXPECT_NE(err.find("num_procs"), std::string::npos);
  EXPECT_NE(err.find("mesh_width=5"), std::string::npos);
  EXPECT_NE(mesh_params(0, 16).validate().find("mesh_width"), std::string::npos);
  // Every k x k sweep shape passes.
  for (const int k : {2, 4, 8, 16, 32}) {
    EXPECT_TRUE(mesh_params(k, k * k).validate().empty()) << k;
  }
}

// ----------------------------------------------------------------- Cohorts

TEST(LockCohort, QuadrantsOfA4x4Mesh) {
  const SystemParams p = mesh_params(4, 16);
  // Rows 0-1 are north, columns 0-1 are west.
  EXPECT_EQ(locks::cohort_of(0, p), 0);   // (0,0) NW
  EXPECT_EQ(locks::cohort_of(5, p), 0);   // (1,1) NW
  EXPECT_EQ(locks::cohort_of(2, p), 1);   // (2,0) NE
  EXPECT_EQ(locks::cohort_of(8, p), 2);   // (0,2) SW
  EXPECT_EQ(locks::cohort_of(15, p), 3);  // (3,3) SE
  EXPECT_TRUE(locks::same_cohort(0, 5, p));
  EXPECT_FALSE(locks::same_cohort(0, 15, p));
}

TEST(LockCohort, DegenerateGeometriesStayWellDefined) {
  // A 1-wide mesh splits into north/south halves only.
  const SystemParams line = mesh_params(1, 4);
  EXPECT_EQ(locks::cohort_of(0, line), locks::cohort_of(1, line));
  EXPECT_NE(locks::cohort_of(1, line), locks::cohort_of(2, line));
  // A single node is one cohort.
  const SystemParams solo = mesh_params(1, 1);
  EXPECT_EQ(locks::cohort_of(0, solo), 0);
}

TEST(LockCohort, MeshHopsIsManhattanAndSymmetric) {
  const SystemParams p = mesh_params(4, 16);
  EXPECT_EQ(locks::mesh_hops(0, 0, p), 0);
  EXPECT_EQ(locks::mesh_hops(0, 15, p), 6);
  EXPECT_EQ(locks::mesh_hops(5, 10, p), 2);
  for (int a = 0; a < 16; ++a) {
    for (int b = 0; b < 16; ++b) {
      EXPECT_EQ(locks::mesh_hops(a, b, p), locks::mesh_hops(b, a, p));
    }
  }
}

// ------------------------------------------------------------- pick_waiter

TEST(LockDiscipline, CentralAndMcsAlwaysServeTheHead) {
  const SystemParams p = mesh_params(4, 16);
  std::deque<ProcId> waiting = {15, 1, 2};
  for (const Strategy s : {Strategy::kCentral, Strategy::kMcs}) {
    int streak = 3;
    const Pick pick = locks::pick_waiter(waiting, s, /*releaser=*/0, p, streak);
    EXPECT_EQ(pick.index, 0u);
    EXPECT_FALSE(pick.skipped_head);
    EXPECT_EQ(streak, 0);
  }
}

TEST(LockDiscipline, HierPromotesAnInCohortWaiterPastTheHead) {
  const SystemParams p = mesh_params(4, 16);
  // Releaser 0 is NW; head 15 is SE; waiter 5 shares NW.
  std::deque<ProcId> waiting = {15, 5, 2};
  int streak = 0;
  const Pick pick = locks::pick_waiter(waiting, Strategy::kHier, 0, p, streak);
  EXPECT_EQ(pick.index, 1u);
  EXPECT_TRUE(pick.skipped_head);
  EXPECT_EQ(streak, 1);
}

TEST(LockDiscipline, HierFairnessBudgetBoundsConsecutiveSkips) {
  const SystemParams p = mesh_params(4, 16);
  std::deque<ProcId> waiting = {15, 5};
  int streak = 0;
  for (int i = 0; i < p.locks.hier_fairness; ++i) {
    const Pick pick = locks::pick_waiter(waiting, Strategy::kHier, 0, p, streak);
    EXPECT_TRUE(pick.skipped_head) << i;
  }
  // Budget exhausted: the cross-cohort head must now be served, and the
  // streak resets so in-cohort preference resumes afterwards.
  const Pick head = locks::pick_waiter(waiting, Strategy::kHier, 0, p, streak);
  EXPECT_EQ(head.index, 0u);
  EXPECT_FALSE(head.skipped_head);
  EXPECT_EQ(streak, 0);
}

TEST(LockDiscipline, HierServesInCohortHeadWithoutAccruingDebt) {
  const SystemParams p = mesh_params(4, 16);
  std::deque<ProcId> waiting = {5, 15};  // head shares the releaser's quadrant
  int streak = 2;
  const Pick pick = locks::pick_waiter(waiting, Strategy::kHier, 0, p, streak);
  EXPECT_EQ(pick.index, 0u);
  EXPECT_EQ(streak, 0);
}

TEST(LockDiscipline, HierFallsBackToHeadWhenNoCohortWaiterExists) {
  const SystemParams p = mesh_params(4, 16);
  std::deque<ProcId> waiting = {15, 11, 10};  // all south-east of releaser 0
  int streak = 1;
  const Pick pick = locks::pick_waiter(waiting, Strategy::kHier, 0, p, streak);
  EXPECT_EQ(pick.index, 0u);
  EXPECT_FALSE(pick.skipped_head);
  EXPECT_EQ(streak, 1);  // untouched: the next release may be in-cohort
}

TEST(LockDiscipline, NoteGrantFoldsHopsCohortsAndDepth) {
  const SystemParams p = mesh_params(4, 16);
  LockMgrStats st;
  // Uncontended first grant: no handoff, no hops.
  locks::note_grant(st, p, kNoProc, 3, /*depth_after=*/0,
                    /*direct_handoff=*/false, /*skipped_head=*/false);
  EXPECT_EQ(st.grants, 1u);
  EXPECT_EQ(st.handoffs, 0u);
  // Cross-quadrant handoff 0 -> 15 with two left waiting.
  locks::note_grant(st, p, 0, 15, 2, /*direct_handoff=*/true,
                    /*skipped_head=*/false);
  EXPECT_EQ(st.grants, 2u);
  EXPECT_EQ(st.handoffs, 1u);
  EXPECT_EQ(st.direct_handoffs, 1u);
  EXPECT_EQ(st.handoff_hops, 6u);
  EXPECT_EQ(st.cross_cohort, 1u);
  EXPECT_EQ(st.queue_depth_sum, 2u);
  EXPECT_EQ(st.queue_depth_max, 2u);
  // In-quadrant hier skip.
  locks::note_grant(st, p, 0, 5, 1, /*direct_handoff=*/false,
                    /*skipped_head=*/true);
  EXPECT_EQ(st.cross_cohort, 1u);
  EXPECT_EQ(st.hier_skips, 1u);
  EXPECT_EQ(st.handoff_hops, 8u);
}

// ------------------------------------------------------------------- Model

TEST(LockModel, ThroughputIsOneOverPeriod) {
  EXPECT_DOUBLE_EQ(locks::mcs_predicted_throughput(300.0, 700.0), 1.0 / 1000.0);
  EXPECT_EQ(locks::mcs_predicted_throughput(0.0, 0.0), 0.0);
}

TEST(LockModel, HandoffCyclesGrowWithDistanceAndPayload) {
  const SystemParams p = mesh_params(4, 16);
  const Cycles near = locks::mcs_handoff_cycles(p, 64, /*hops=*/1, 0);
  const Cycles far = locks::mcs_handoff_cycles(p, 64, /*hops=*/6, 0);
  EXPECT_EQ(far - near, 5 * (p.switch_cycles + p.wire_cycles));
  EXPECT_LT(locks::mcs_handoff_cycles(p, 64, 1, 0),
            locks::mcs_handoff_cycles(p, 4096, 1, 0));
  // Grant-processing service time adds through directly.
  EXPECT_EQ(locks::mcs_handoff_cycles(p, 64, 1, 500) - near, 500u);
}

// --------------------------------------------------------------- DynBitset

TEST(DynBitset, TracksBitsAcrossWordBoundaries) {
  DynBitset b(100);
  EXPECT_TRUE(b.none());
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(99);
  EXPECT_EQ(b.count(), 4);
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_FALSE(b.test(65));
  b.reset(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.count(), 3);
  EXPECT_TRUE(b.any());
}

TEST(DynBitset, AnyExceptIgnoresExactlyOneBit) {
  DynBitset b(70);
  b.set(69);
  EXPECT_TRUE(b.any_except(0));
  EXPECT_FALSE(b.any_except(69));
  b.set(1);
  EXPECT_TRUE(b.any_except(69));
}

TEST(DynBitset, SetAlgebraMatchesMaskSemantics) {
  DynBitset a(130), b(130);
  a.set(0);
  a.set(128);
  b.set(128);
  b.set(129);
  DynBitset u = a;
  u |= b;
  EXPECT_EQ(u.count(), 3);
  DynBitset i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1);
  EXPECT_TRUE(i.test(128));
  DynBitset d = a;
  d.andnot(b);
  EXPECT_EQ(d.count(), 1);
  EXPECT_TRUE(d.test(0));
  EXPECT_FALSE(i == d);
}

// -------------------------------------------------------------------- JSON

TEST(LockJson, LockMgrStatsRoundTripThroughRunStats) {
  RunStats s;
  s.lockmgr.grants = 10;
  s.lockmgr.handoffs = 7;
  s.lockmgr.direct_handoffs = 4;
  s.lockmgr.link_messages = 5;
  s.lockmgr.fallback_rels = 1;
  s.lockmgr.handoff_hops = 21;
  s.lockmgr.cross_cohort = 3;
  s.lockmgr.hier_skips = 2;
  s.lockmgr.queue_depth_sum = 17;
  s.lockmgr.queue_depth_max = 6;
  const json::Value doc = harness::to_json(s);
  ASSERT_NE(doc.find("lockmgr"), nullptr);
  const RunStats back = harness::run_stats_from_json(doc);
  EXPECT_EQ(back.lockmgr, s.lockmgr);
  EXPECT_EQ(harness::to_json(back).dump(), doc.dump());
}

TEST(LockJson, DefaultDocumentsOmitTheLockBlocks) {
  // The byte-identity contract: a run that never touched the locks knobs
  // serializes exactly as before src/locks existed.
  const RunStats s;
  EXPECT_EQ(harness::to_json(s).find("lockmgr"), nullptr);
  const SystemParams p;
  EXPECT_EQ(harness::to_json(p).find("locks"), nullptr);
  SystemParams mcs;
  mcs.locks.strategy = "mcs";
  const json::Value mcs_doc = harness::to_json(mcs);
  const json::Value* lk = mcs_doc.find("locks");
  ASSERT_NE(lk, nullptr);
  EXPECT_EQ(lk->at("strategy").as_string(), "mcs");
}

}  // namespace
}  // namespace aecdsm::test
