// The simulator must be exactly reproducible: identical configuration gives
// identical cycle counts, statistics and message traffic across runs — for
// every protocol and application.
#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "harness/batch.hpp"
#include "harness/json_out.hpp"
#include "tests/test_util.hpp"

namespace aecdsm::test {
namespace {

struct DetCase {
  const char* app;
  const char* protocol;
};

class Determinism : public ::testing::TestWithParam<DetCase> {};

TEST_P(Determinism, RepeatedRunsAreCycleIdentical) {
  const DetCase& c = GetParam();
  auto run_once = [&] {
    auto app = apps::make_app(c.app, apps::Scale::kSmall);
    return run_protocol(*app, c.protocol, small_params(4));
  };
  const RunStats a = run_once();
  const RunStats b = run_once();
  ASSERT_TRUE(a.result_valid);
  ASSERT_TRUE(b.result_valid);
  EXPECT_EQ(a.finish_time, b.finish_time);
  EXPECT_EQ(a.msgs.messages, b.msgs.messages);
  EXPECT_EQ(a.msgs.bytes, b.msgs.bytes);
  EXPECT_EQ(a.faults.fault_cycles, b.faults.fault_cycles);
  EXPECT_EQ(a.diffs.create_cycles, b.diffs.create_cycles);
  ASSERT_EQ(a.per_proc.size(), b.per_proc.size());
  for (std::size_t p = 0; p < a.per_proc.size(); ++p) {
    EXPECT_EQ(a.per_proc[p].busy, b.per_proc[p].busy) << "proc " << p;
    EXPECT_EQ(a.per_proc[p].synch, b.per_proc[p].synch) << "proc " << p;
    EXPECT_EQ(a.per_proc[p].data, b.per_proc[p].data) << "proc " << p;
    EXPECT_EQ(a.per_proc[p].ipc, b.per_proc[p].ipc) << "proc " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Suite, Determinism,
    ::testing::Values(DetCase{"IS", "AEC"}, DetCase{"IS", "TreadMarks"},
                      DetCase{"Water-ns", "AEC"}, DetCase{"Ocean", "TreadMarks"},
                      DetCase{"Raytrace", "AEC"}, DetCase{"Water-sp", "AEC-noLAP"}),
    [](const ::testing::TestParamInfo<DetCase>& info) {
      std::string s = std::string(info.param.app) + "_" + info.param.protocol;
      for (char& ch : s) {
        if (ch == '-') ch = '_';
      }
      return s;
    });

TEST(Determinism, BatchRunnerMatchesSerialRunByteForByte) {
  // The same (protocol, app, seed) cell run serially and through the batch
  // runner with 4 workers must produce byte-identical RunStats — compared
  // via the full JSON serialization, which covers every field including the
  // per-processor breakdowns.
  const SystemParams params = small_params(4);
  const auto serial =
      harness::run_experiment("AEC", "IS", apps::Scale::kSmall, params, 7);
  const std::string want = harness::to_json(serial.stats).dump();

  harness::ExperimentPlan plan;
  plan.name = "det_batch";
  // Four copies of the same cell plus other protocols in flight, so the
  // workers genuinely run simulations concurrently.
  for (int i = 0; i < 4; ++i) plan.add("AEC", "IS", apps::Scale::kSmall, params, 7);
  plan.add("TreadMarks", "IS", apps::Scale::kSmall, params, 7);
  plan.add("Munin-ERC", "IS", apps::Scale::kSmall, params, 7);

  harness::BatchOptions opts;
  opts.jobs = 4;
  opts.no_cache = true;  // every copy must genuinely simulate
  harness::BatchRunner runner(opts);
  const auto results = runner.run(plan);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(harness::to_json(results[static_cast<std::size_t>(i)].stats).dump(),
              want)
        << "batch copy " << i;
  }
}

TEST(Rng, DeterministicAndSplittable) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(42);
  Rng s1 = c.split(1);
  Rng c2(42);
  Rng s1b = c2.split(1);
  EXPECT_EQ(s1.next_u64(), s1b.next_u64());
  // Different salts give different streams.
  Rng c3(42);
  Rng s2 = c3.split(2);
  EXPECT_NE(s1.next_u64(), s2.next_u64());
}

TEST(Rng, BoundsRespected) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
    const auto v = r.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_THROW(r.next_below(0), SimError);
}

TEST(Stats, BreakdownArithmetic) {
  TimeBreakdown a;
  a.busy = 10;
  a.data = 5;
  a.others_tlb = 2;
  a.others_cache = 3;
  TimeBreakdown b;
  b.busy = 1;
  b.ipc = 4;
  a += b;
  EXPECT_EQ(a.busy, 11u);
  EXPECT_EQ(a.ipc, 4u);
  EXPECT_EQ(a.others(), 5u);
  EXPECT_EQ(a.total(), 11u + 5u + 4u + 5u);
}

TEST(Stats, RunStatsAggregation) {
  RunStats s;
  s.per_proc.resize(2);
  s.per_proc[0].busy = 7;
  s.per_proc[1].synch = 3;
  const TimeBreakdown agg = s.aggregate();
  EXPECT_EQ(agg.busy, 7u);
  EXPECT_EQ(agg.synch, 3u);
  EXPECT_EQ(agg.total(), 10u);
}

TEST(Stats, SyncStatsDistinctLocksKeepMax) {
  SyncStats a, b;
  a.distinct_locks = 3;
  a.lock_acquires = 10;
  b.distinct_locks = 5;
  b.lock_acquires = 7;
  a += b;
  EXPECT_EQ(a.distinct_locks, 5u);
  EXPECT_EQ(a.lock_acquires, 17u);
}

}  // namespace
}  // namespace aecdsm::test
