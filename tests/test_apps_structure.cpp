// Structural tests of the application suite: the synchronization shape the
// paper's Table 2 reports is pinned (lock-variable counts, acquire counts,
// barrier counts at the default scale), oracles are deterministic, and the
// suite runs at the paper's 16-processor configuration and degenerate
// processor counts.
#include <gtest/gtest.h>

#include "apps/registry.hpp"
#include "harness/runner.hpp"
#include "tests/test_util.hpp"

namespace aecdsm::test {
namespace {

struct Shape {
  const char* app;
  std::uint64_t locks;
  std::uint64_t acquires;
  std::uint64_t barriers;
};

class AppShape : public ::testing::TestWithParam<Shape> {};

// The default-scale synchronization structure at 16 processors. These pin
// the Table 2 reproduction: any change to an application's lock/barrier
// skeleton must be deliberate.
TEST_P(AppShape, Table2StructureIsStable) {
  const Shape& s = GetParam();
  const auto r = harness::run_experiment("AEC", s.app, apps::Scale::kDefault,
                                         harness::paper_params());
  ASSERT_TRUE(r.stats.result_valid);
  EXPECT_EQ(r.stats.sync.distinct_locks, s.locks) << s.app;
  EXPECT_EQ(r.stats.sync.lock_acquires, s.acquires) << s.app;
  EXPECT_EQ(r.stats.sync.barrier_events, s.barriers) << s.app;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, AppShape,
    ::testing::Values(Shape{"IS", 1, 80, 21}, Shape{"Water-ns", 65, 2240, 33},
                      Shape{"FFT", 1, 16, 7}, Shape{"Ocean", 4, 496, 41},
                      Shape{"Water-sp", 6, 416, 33}),
    [](const ::testing::TestParamInfo<Shape>& info) {
      std::string s = info.param.app;
      for (char& ch : s) {
        if (ch == '-') ch = '_';
      }
      return s;
    });

TEST(AppOracles, SetupIsDeterministic) {
  // Two setups of the same app produce identical shared layouts; combined
  // with run determinism this means oracle checksums are stable.
  for (const std::string& name : apps::app_names()) {
    SystemParams params = small_params(4);
    auto app1 = apps::make_app(name, apps::Scale::kSmall);
    auto app2 = apps::make_app(name, apps::Scale::kSmall);
    const RunStats a = run_protocol(*app1, "AEC", params);
    const RunStats b = run_protocol(*app2, "AEC", params);
    ASSERT_TRUE(a.result_valid) << name;
    ASSERT_TRUE(b.result_valid) << name;
    EXPECT_EQ(a.finish_time, b.finish_time) << name;
  }
}

TEST(AppEdges, SixteenProcessorsSmallScale) {
  SystemParams params;  // paper defaults: 16 procs, 4K pages
  for (const std::string& name : apps::app_names()) {
    auto app = apps::make_app(name, apps::Scale::kSmall);
    dsm::RunConfig cfg;
    cfg.params = params;
    aec::AecSuite suite;
    const RunStats stats = dsm::run_app(*app, suite.suite(), cfg);
    EXPECT_TRUE(stats.result_valid) << name << " at 16 procs";
  }
}

TEST(AppEdges, SingleProcessorDegeneratesGracefully) {
  SystemParams params;
  params.num_procs = 1;
  params.mesh_width = 1;
  auto app = apps::make_app("FFT", apps::Scale::kSmall);
  dsm::RunConfig cfg;
  cfg.params = params;
  aec::AecSuite suite;
  const RunStats stats = dsm::run_app(*app, suite.suite(), cfg);
  EXPECT_TRUE(stats.result_valid);
  EXPECT_EQ(stats.msgs.messages, stats.msgs.messages);  // ran to completion
}

TEST(AppEdges, OddProcessorCountsWork) {
  // Block partitioning must handle remainders.
  SystemParams params = small_params(3);
  params.mesh_width = 3;
  for (const char* name : {"IS", "Ocean"}) {
    auto app = apps::make_app(name, apps::Scale::kSmall);
    dsm::RunConfig cfg;
    cfg.params = params;
    aec::AecSuite suite;
    const RunStats stats = dsm::run_app(*app, suite.suite(), cfg);
    EXPECT_TRUE(stats.result_valid) << name << " at 3 procs";
  }
}

}  // namespace
}  // namespace aecdsm::test
