// Unit and property tests for the twin/diff machinery — the data-movement
// currency of both protocols. Property sweeps are parameterized over random
// seeds and modification densities.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "mem/diff.hpp"

namespace aecdsm::test {
namespace {

using mem::Diff;

std::vector<Word> random_page(Rng& rng, std::size_t words) {
  std::vector<Word> page(words);
  for (Word& w : page) w = static_cast<Word>(rng.next_u64());
  return page;
}

TEST(Diff, EmptyWhenIdentical) {
  std::vector<Word> page{1, 2, 3, 4};
  const Diff d = Diff::create(page, page);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.changed_words(), 0u);
  EXPECT_EQ(d.encoded_bytes(), 0u);
}

TEST(Diff, SingleWordChange) {
  std::vector<Word> twin{1, 2, 3, 4};
  std::vector<Word> cur{1, 9, 3, 4};
  const Diff d = Diff::create(twin, cur);
  ASSERT_EQ(d.runs().size(), 1u);
  EXPECT_EQ(d.runs()[0].word_offset, 1u);
  EXPECT_EQ(d.runs()[0].words, (std::vector<Word>{9}));
  EXPECT_EQ(d.changed_words(), 1u);
  EXPECT_EQ(d.encoded_bytes(), 8u + 4u);
}

TEST(Diff, RunsAreMaximalAndSorted) {
  std::vector<Word> twin(16, 0);
  std::vector<Word> cur = twin;
  cur[2] = 1;
  cur[3] = 2;
  cur[4] = 3;
  cur[10] = 4;
  const Diff d = Diff::create(twin, cur);
  ASSERT_EQ(d.runs().size(), 2u);
  EXPECT_EQ(d.runs()[0].word_offset, 2u);
  EXPECT_EQ(d.runs()[0].words.size(), 3u);
  EXPECT_EQ(d.runs()[1].word_offset, 10u);
  EXPECT_EQ(d.runs()[1].words.size(), 1u);
}

TEST(Diff, ChangeAtPageEdges) {
  std::vector<Word> twin(8, 0);
  std::vector<Word> cur = twin;
  cur[0] = 7;
  cur[7] = 9;
  const Diff d = Diff::create(twin, cur);
  ASSERT_EQ(d.runs().size(), 2u);
  std::vector<Word> target = twin;
  d.apply_to(target);
  EXPECT_EQ(target, cur);
}

TEST(Diff, FullPageChange) {
  std::vector<Word> twin(32, 1);
  std::vector<Word> cur(32, 2);
  const Diff d = Diff::create(twin, cur);
  ASSERT_EQ(d.runs().size(), 1u);
  EXPECT_EQ(d.changed_words(), 32u);
}

TEST(Diff, MergeNewerWins) {
  std::vector<Word> base(8, 0);
  std::vector<Word> a = base;
  a[1] = 10;
  a[2] = 20;
  std::vector<Word> b = base;
  b[2] = 99;
  b[5] = 50;
  const Diff da = Diff::create(base, a);
  const Diff db = Diff::create(base, b);
  const Diff m = Diff::merge(da, db);
  std::vector<Word> target = base;
  m.apply_to(target);
  EXPECT_EQ(target[1], 10u);  // only in older
  EXPECT_EQ(target[2], 99u);  // newer wins
  EXPECT_EQ(target[5], 50u);  // only in newer
}

TEST(Diff, MergeWithEmpty) {
  std::vector<Word> base(4, 0);
  std::vector<Word> a = base;
  a[0] = 1;
  const Diff da = Diff::create(base, a);
  const Diff empty;
  EXPECT_EQ(Diff::merge(empty, da), da);
  EXPECT_EQ(Diff::merge(da, empty), da);
}

TEST(Diff, MergeCoalescesOverlappingAndAdjacentRuns) {
  // Regression for the two-pointer merge: overlapping and touching runs
  // from the two sides must come back as one maximal run, with the newer
  // diff's words winning across the overlap.
  std::vector<Word> base(16, 0);
  std::vector<Word> a = base;
  for (std::size_t i = 2; i <= 6; ++i) a[i] = 10 + static_cast<Word>(i);
  std::vector<Word> b = base;
  for (std::size_t i = 5; i <= 9; ++i) b[i] = 20 + static_cast<Word>(i);
  const Diff m = Diff::merge(Diff::create(base, a), Diff::create(base, b));
  ASSERT_EQ(m.runs().size(), 1u);
  EXPECT_EQ(m.runs()[0].word_offset, 2u);
  ASSERT_EQ(m.runs()[0].words.size(), 8u);  // words 2..9 as one run
  EXPECT_EQ(m.runs()[0].words[0], 12u);     // older-only prefix
  EXPECT_EQ(m.runs()[0].words[3], 25u);     // overlap: newer wins
  EXPECT_EQ(m.runs()[0].words[7], 29u);     // newer-only suffix
  EXPECT_EQ(m.changed_words(), 8u);
}

TEST(Diff, ChunkedCreateMatchesScalarOracleOnBoundaryShapes) {
  // Hand-picked shapes that straddle the vectorized encoder's 8-word chunk
  // boundaries: runs starting/ending mid-chunk, exactly chunk-aligned runs,
  // dirty tails shorter than a chunk, and alternating words that defeat the
  // whole-chunk dirty test.
  const std::size_t words = 67;  // deliberately not a multiple of the chunk
  std::vector<Word> twin(words, 0xAAAAAAAA);
  const auto check = [&](const std::vector<std::size_t>& dirty) {
    std::vector<Word> cur = twin;
    for (std::size_t i : dirty) cur[i] ^= 0x5A5A5A5A;
    const Diff fast = Diff::create(twin, cur);
    const Diff slow = Diff::create_scalar(twin, cur);
    EXPECT_EQ(fast, slow);
    std::vector<Word> target = twin;
    fast.apply_to(target);
    EXPECT_EQ(target, cur);
  };
  check({});
  check({0});
  check({7});
  check({8});
  check({66});
  check({0, 1, 2, 3, 4, 5, 6, 7});            // exactly one chunk
  check({5, 6, 7, 8, 9, 10});                 // run across a chunk seam
  check({63, 64, 65, 66});                    // run into the scalar tail
  check({0, 2, 4, 6, 8, 10, 12, 14});         // alternating: no dirty chunk
  std::vector<std::size_t> all(words);
  for (std::size_t i = 0; i < words; ++i) all[i] = i;
  check(all);                                 // fully dirty page
}

TEST(Diff, WordPoolRecyclesRunStorage) {
  // A destroyed diff donates its run vectors; the next create() reuses the
  // capacity instead of allocating.
  std::vector<Word> twin(64, 0);
  std::vector<Word> cur = twin;
  cur[3] = 1;
  cur[40] = 2;
  while (mem::wordpool::parked() > 0) (void)mem::wordpool::acquire();
  {
    const Diff d = Diff::create(twin, cur);
    ASSERT_EQ(d.runs().size(), 2u);
  }
  EXPECT_EQ(mem::wordpool::parked(), 2u);
  const Diff d2 = Diff::create(twin, cur);
  EXPECT_EQ(mem::wordpool::parked(), 0u);
  EXPECT_EQ(d2.runs().size(), 2u);
}

TEST(Diff, CopiesAreDeepAndPoolBacked) {
  std::vector<Word> twin(16, 0);
  std::vector<Word> cur = twin;
  cur[2] = 7;
  const Diff a = Diff::create(twin, cur);
  Diff b = a;           // copy draws from the pool
  EXPECT_EQ(a, b);
  Diff c;
  c = a;                // copy-assign
  EXPECT_EQ(a, c);
  const Diff moved = std::move(b);
  EXPECT_EQ(a, moved);  // move preserves contents; b is hollow
}

TEST(Diff, ApplyOutOfBoundsThrows) {
  std::vector<Word> twin(8, 0);
  std::vector<Word> cur = twin;
  cur[7] = 1;
  const Diff d = Diff::create(twin, cur);
  std::vector<Word> small(4, 0);
  EXPECT_THROW(d.apply_to(small), SimError);
}

TEST(Diff, SizeMismatchThrows) {
  std::vector<Word> a(8, 0), b(16, 0);
  EXPECT_THROW(Diff::create(a, b), SimError);
}

// --- Property sweeps ---------------------------------------------------------

struct DiffProp {
  std::uint64_t seed;
  int denominator;  ///< each word changes with probability 1/denominator
};

class DiffProperty : public ::testing::TestWithParam<DiffProp> {};

TEST_P(DiffProperty, ApplyCreateRoundTrips) {
  Rng rng(GetParam().seed);
  const std::size_t words = 1024;
  const std::vector<Word> twin = random_page(rng, words);
  std::vector<Word> cur = twin;
  for (Word& w : cur) {
    if (rng.next_below(static_cast<std::uint64_t>(GetParam().denominator)) == 0) {
      w = static_cast<Word>(rng.next_u64());
    }
  }
  const Diff d = Diff::create(twin, cur);
  std::vector<Word> target = twin;
  d.apply_to(target);
  EXPECT_EQ(target, cur);
  // The chunked encoder is bitwise-equivalent to the scalar oracle at every
  // density, including run structure (not just the applied image).
  EXPECT_EQ(d, Diff::create_scalar(twin, cur));
}

TEST_P(DiffProperty, MergeEqualsSequentialApplication) {
  Rng rng(GetParam().seed ^ 0xABCDEF);
  const std::size_t words = 512;
  const std::vector<Word> base = random_page(rng, words);
  std::vector<Word> v1 = base;
  for (Word& w : v1) {
    if (rng.next_below(static_cast<std::uint64_t>(GetParam().denominator)) == 0) {
      w = static_cast<Word>(rng.next_u64());
    }
  }
  std::vector<Word> v2 = v1;
  for (Word& w : v2) {
    if (rng.next_below(static_cast<std::uint64_t>(GetParam().denominator)) == 0) {
      w = static_cast<Word>(rng.next_u64());
    }
  }
  const Diff d1 = Diff::create(base, v1);
  const Diff d2 = Diff::create(v1, v2);
  // merge(d1, d2) applied to base == apply d1 then d2.
  std::vector<Word> via_merge = base;
  Diff::merge(d1, d2).apply_to(via_merge);
  std::vector<Word> via_seq = base;
  d1.apply_to(via_seq);
  d2.apply_to(via_seq);
  EXPECT_EQ(via_merge, via_seq);
  EXPECT_EQ(via_merge, v2);
}

TEST_P(DiffProperty, DisjointMergesCommute) {
  Rng rng(GetParam().seed ^ 0x5555);
  const std::size_t words = 512;
  const std::vector<Word> base = random_page(rng, words);
  // a modifies even words, b modifies odd words: disjoint by construction.
  std::vector<Word> a = base, b = base;
  for (std::size_t i = 0; i < words; i += 2) a[i] ^= 0x1234;
  for (std::size_t i = 1; i < words; i += 2) b[i] ^= 0x4321;
  const Diff da = Diff::create(base, a);
  const Diff db = Diff::create(base, b);
  std::vector<Word> ab = base, ba = base;
  Diff::merge(da, db).apply_to(ab);
  Diff::merge(db, da).apply_to(ba);
  EXPECT_EQ(ab, ba);
}

TEST_P(DiffProperty, EncodedBytesMatchRunStructure) {
  Rng rng(GetParam().seed ^ 0x77);
  const std::size_t words = 256;
  const std::vector<Word> twin = random_page(rng, words);
  std::vector<Word> cur = twin;
  for (Word& w : cur) {
    if (rng.next_below(static_cast<std::uint64_t>(GetParam().denominator)) == 0) {
      w = static_cast<Word>(rng.next_u64());
    }
  }
  const Diff d = Diff::create(twin, cur);
  std::size_t expect = 0;
  for (const auto& run : d.runs()) expect += 8 + run.words.size() * kWordBytes;
  EXPECT_EQ(d.encoded_bytes(), expect);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DiffProperty,
    ::testing::Values(DiffProp{1, 2}, DiffProp{2, 2}, DiffProp{3, 4}, DiffProp{4, 4},
                      DiffProp{5, 8}, DiffProp{6, 8}, DiffProp{7, 16}, DiffProp{8, 16},
                      DiffProp{9, 64}, DiffProp{10, 64}, DiffProp{11, 1},
                      DiffProp{12, 1}),
    [](const ::testing::TestParamInfo<DiffProp>& info) {
      return "seed" + std::to_string(info.param.seed) + "_den" +
             std::to_string(info.param.denominator);
    });

}  // namespace
}  // namespace aecdsm::test
