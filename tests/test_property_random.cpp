// Property-based protocol correctness: randomized lock-disciplined SPMD
// workloads must produce exactly the sequential reference result under
// every protocol. This sweeps seeds, processor counts and sharing shapes —
// the strongest general check on the coherence implementations.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "apps/app_common.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "dsm/shared_array.hpp"
#include "tests/test_util.hpp"

namespace aecdsm::test {
namespace {

// The workload: a shared array of counters partitioned into lock-protected
// regions plus a per-processor "private block" written outside critical
// sections. Each processor performs a random schedule of:
//   * region update bursts (lock, read-modify-write several cells, unlock)
//   * private block writes (outside any CS)
//   * barriers (all processors share one schedule position for these)
// The sequential oracle replays the same operations in a canonical order;
// commutative integer updates make the comparison exact.
struct WorkloadConfig {
  std::uint64_t seed = 1;
  int nprocs = 4;
  std::size_t regions = 6;        ///< lock-protected regions
  std::size_t region_cells = 24;  ///< cells per region (spans page boundaries)
  int rounds = 4;                 ///< barrier-separated rounds
  int bursts_per_round = 8;       ///< lock bursts per processor per round
};

class RandomWorkloadApp : public apps::AppBase {
 public:
  explicit RandomWorkloadApp(WorkloadConfig cfg) : cfg_(cfg) {}

  std::string name() const override { return "random-workload"; }
  std::size_t shared_bytes() const override {
    return (cfg_.regions * cfg_.region_cells + 64 * static_cast<std::size_t>(cfg_.nprocs)) *
               sizeof(std::uint64_t) +
           16 * 4096;
  }

  void setup(dsm::Machine& m) override {
    cells_ = dsm::SharedArray<std::uint64_t>::alloc(m, cfg_.regions * cfg_.region_cells);
    priv_ = dsm::SharedArray<std::uint64_t>::alloc(
        m, 64 * static_cast<std::size_t>(cfg_.nprocs));

    // Oracle: region cells accumulate commutative contributions; private
    // blocks take the last value each owner writes in each round.
    std::vector<std::uint64_t> cells(cfg_.regions * cfg_.region_cells, 0);
    std::vector<std::uint64_t> priv(64 * static_cast<std::size_t>(cfg_.nprocs), 0);
    for (int p = 0; p < cfg_.nprocs; ++p) {
      Rng rng = Rng(cfg_.seed).split(static_cast<std::uint64_t>(p) + 1);
      for (int round = 0; round < cfg_.rounds; ++round) {
        for (int b = 0; b < cfg_.bursts_per_round; ++b) {
          const std::size_t region = rng.next_below(cfg_.regions);
          const std::size_t n_cells = 1 + rng.next_below(4);
          for (std::size_t k = 0; k < n_cells; ++k) {
            const std::size_t cell =
                region * cfg_.region_cells + rng.next_below(cfg_.region_cells);
            cells[cell] += rng.next_below(1000) + 1;
          }
          const std::size_t pslot =
              64 * static_cast<std::size_t>(p) + rng.next_below(8);
          priv[pslot] = rng.next_u64();
          (void)rng.next_below(500);  // keep in step with the body's compute draw
        }
      }
    }
    oracle_cells_ = cells;
    oracle_priv_ = priv;
    oracle_checksum_ = 0;
    for (const std::uint64_t v : cells) oracle_checksum_ = apps::mix_into(oracle_checksum_, v);
    for (const std::uint64_t v : priv) oracle_checksum_ = apps::mix_into(oracle_checksum_, v);
  }

  void body(dsm::Context& ctx) override {
    const int p = ctx.pid();
    Rng rng = Rng(cfg_.seed).split(static_cast<std::uint64_t>(p) + 1);
    for (int round = 0; round < cfg_.rounds; ++round) {
      for (int b = 0; b < cfg_.bursts_per_round; ++b) {
        const std::size_t region = rng.next_below(cfg_.regions);
        const std::size_t n_cells = 1 + rng.next_below(4);
        // Random advance notice for some bursts (exercises virtual queues).
        if (n_cells == 2) ctx.lock_acquire_notice(static_cast<LockId>(region));
        ctx.lock(static_cast<LockId>(region));
        for (std::size_t k = 0; k < n_cells; ++k) {
          const std::size_t cell =
              region * cfg_.region_cells + rng.next_below(cfg_.region_cells);
          cells_.put(ctx, cell, cells_.get(ctx, cell) + rng.next_below(1000) + 1);
        }
        ctx.unlock(static_cast<LockId>(region));
        const std::size_t pslot = 64 * static_cast<std::size_t>(p) + rng.next_below(8);
        priv_.put(ctx, pslot, rng.next_u64());
        ctx.compute(rng.next_below(500));
      }
      ctx.barrier();
    }
    ctx.barrier();
    if (p == 0) {
      std::uint64_t checksum = 0;
      for (std::size_t i = 0; i < cfg_.regions * cfg_.region_cells; ++i) {
        const std::uint64_t v = cells_.get(ctx, i);
        if (!oracle_cells_.empty() && v != oracle_cells_[i]) {
          AECDSM_DEBUG("random-workload cell " << i << " (region "
                                               << i / cfg_.region_cells << "): got " << v
                                               << " want " << oracle_cells_[i]);
        }
        checksum = apps::mix_into(checksum, v);
      }
      for (std::size_t i = 0; i < 64 * static_cast<std::size_t>(cfg_.nprocs); ++i) {
        const std::uint64_t v = priv_.get(ctx, i);
        if (!oracle_priv_.empty() && v != oracle_priv_[i]) {
          AECDSM_DEBUG("random-workload priv slot " << i << " (proc " << i / 64
                                                    << "): got " << v << " want "
                                                    << oracle_priv_[i]);
        }
        checksum = apps::mix_into(checksum, v);
      }
      set_ok(checksum == oracle_checksum_);
    }
  }

 private:
  WorkloadConfig cfg_;
  std::vector<std::uint64_t> oracle_cells_;
  std::vector<std::uint64_t> oracle_priv_;
  dsm::SharedArray<std::uint64_t> cells_;
  dsm::SharedArray<std::uint64_t> priv_;
  std::uint64_t oracle_checksum_ = 0;
};

struct PropCase {
  WorkloadConfig cfg;
  const char* protocol;
};

class RandomWorkload : public ::testing::TestWithParam<PropCase> {};

TEST_P(RandomWorkload, MatchesSequentialOracle) {
  const PropCase& c = GetParam();
  RandomWorkloadApp app(c.cfg);
  const RunStats stats = run_protocol(app, c.protocol, small_params(c.cfg.nprocs),
                                      /*seed=*/c.cfg.seed);
  EXPECT_TRUE(stats.result_valid)
      << c.protocol << " seed=" << c.cfg.seed << " nprocs=" << c.cfg.nprocs;
  // Accounting conservation: every attributed cycle belongs to one bucket.
  for (const TimeBreakdown& b : stats.per_proc) {
    EXPECT_GT(b.total(), 0u);
  }
}

std::vector<PropCase> prop_cases() {
  std::vector<PropCase> cases;
  for (const char* proto : kAllProtocols) {
    for (const std::uint64_t seed : {11ull, 23ull, 37ull, 51ull}) {
      for (const int np : {2, 4, 8}) {
        WorkloadConfig cfg;
        cfg.seed = seed;
        cfg.nprocs = np;
        // Vary the sharing shape with the seed.
        cfg.regions = 3 + seed % 5;
        cfg.region_cells = 16 + (seed % 3) * 17;
        cases.push_back(PropCase{cfg, proto});
      }
    }
  }
  return cases;
}

std::string prop_name(const ::testing::TestParamInfo<PropCase>& info) {
  std::string s = std::string(info.param.protocol) + "_s" +
                  std::to_string(info.param.cfg.seed) + "_p" +
                  std::to_string(info.param.cfg.nprocs);
  for (char& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomWorkload, ::testing::ValuesIn(prop_cases()),
                         prop_name);

}  // namespace
}  // namespace aecdsm::test
