// Property-based protocol correctness: randomized lock-disciplined SPMD
// workloads must produce exactly the sequential reference result under
// every protocol. This sweeps seeds, processor counts and sharing shapes —
// the strongest general check on the coherence implementations.
//
// The workload is expressed as an explicit apps::synthetic::ScheduleSet (a
// random schedule of lock-protected update bursts, private last-write slots
// and barriers), so the sequential oracle and the simulated execution are
// the one shared implementation in src/apps/synthetic — the same one every
// `syn:` grammar workload uses.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/synthetic/schedule.hpp"
#include "common/rng.hpp"
#include "tests/test_util.hpp"

namespace aecdsm::test {
namespace {

using apps::synthetic::CellUpdate;
using apps::synthetic::Op;
using apps::synthetic::PrivateWrite;
using apps::synthetic::ScheduleApp;
using apps::synthetic::ScheduleSet;

struct WorkloadConfig {
  std::uint64_t seed = 1;
  int nprocs = 4;
  std::size_t regions = 6;        ///< lock-protected regions
  std::size_t region_cells = 24;  ///< cells per region (spans page boundaries)
  int rounds = 4;                 ///< barrier-separated rounds
  int bursts_per_round = 8;       ///< lock bursts per processor per round
};

// Each processor performs a random schedule of region update bursts (lock,
// read-modify-write several cells, unlock), private block writes outside
// any CS, and modeled compute; rounds are barrier-separated. Some bursts
// issue advance acquire notices to exercise AEC's virtual queues.
ScheduleSet random_schedule(const WorkloadConfig& cfg, int nprocs) {
  ScheduleSet set;
  set.cell_count = cfg.regions * cfg.region_cells;
  set.priv_count = 64 * static_cast<std::size_t>(nprocs);
  set.procs.resize(static_cast<std::size_t>(nprocs));
  for (int p = 0; p < nprocs; ++p) {
    Rng rng = Rng(cfg.seed).split(static_cast<std::uint64_t>(p) + 1);
    auto& rounds = set.procs[static_cast<std::size_t>(p)].rounds;
    rounds.resize(static_cast<std::size_t>(cfg.rounds));
    for (auto& round : rounds) {
      for (int b = 0; b < cfg.bursts_per_round; ++b) {
        Op op;
        const std::size_t region = rng.next_below(cfg.regions);
        const std::size_t n_cells = 1 + rng.next_below(4);
        op.burst.lock = static_cast<LockId>(region);
        op.burst.notice = n_cells == 2;
        for (std::size_t k = 0; k < n_cells; ++k) {
          const std::uint32_t cell = static_cast<std::uint32_t>(
              region * cfg.region_cells + rng.next_below(cfg.region_cells));
          op.burst.updates.push_back(CellUpdate{
              cell, static_cast<std::uint32_t>(rng.next_below(1000) + 1)});
        }
        op.writes.push_back(PrivateWrite{
            static_cast<std::uint32_t>(64 * p + rng.next_below(8)),
            rng.next_u64()});
        op.post_compute = static_cast<Cycles>(rng.next_below(500));
        round.push_back(std::move(op));
      }
    }
  }
  return set;
}

ScheduleApp make_random_app(const WorkloadConfig& cfg) {
  const std::size_t bytes =
      (cfg.regions * cfg.region_cells +
       64 * static_cast<std::size_t>(cfg.nprocs)) *
          sizeof(std::uint64_t) +
      16 * 4096;
  return ScheduleApp("random-workload", bytes, [cfg](int nprocs) {
    return random_schedule(cfg, nprocs);
  });
}

struct PropCase {
  WorkloadConfig cfg;
  const char* protocol;
};

class RandomWorkload : public ::testing::TestWithParam<PropCase> {};

TEST_P(RandomWorkload, MatchesSequentialOracle) {
  const PropCase& c = GetParam();
  ScheduleApp app = make_random_app(c.cfg);
  const RunStats stats = run_protocol(app, c.protocol, small_params(c.cfg.nprocs),
                                      /*seed=*/c.cfg.seed);
  EXPECT_TRUE(stats.result_valid)
      << c.protocol << " seed=" << c.cfg.seed << " nprocs=" << c.cfg.nprocs;
  // Accounting conservation: every attributed cycle belongs to one bucket.
  for (const TimeBreakdown& b : stats.per_proc) {
    EXPECT_GT(b.total(), 0u);
  }
}

// The host-side oracle must agree with a literal reference interpreter: a
// hand-rolled round-major replay of the same schedule.
TEST(ScheduleOracle, ReplayMatchesDirectInterpretation) {
  WorkloadConfig cfg;
  cfg.seed = 91;
  const ScheduleSet set = random_schedule(cfg, cfg.nprocs);
  const apps::synthetic::OracleImage img = apps::synthetic::replay_sequential(set);

  std::vector<std::uint64_t> cells(set.cell_count, 0);
  std::vector<std::uint64_t> priv(set.priv_count, 0);
  for (std::size_t r = 0; r < set.rounds(); ++r) {
    for (const auto& sched : set.procs) {
      for (const Op& op : sched.rounds[r]) {
        for (const CellUpdate& u : op.burst.updates) cells[u.cell] += u.delta;
        for (const PrivateWrite& w : op.writes) priv[w.slot] = w.value;
      }
    }
  }
  EXPECT_EQ(img.cells, cells);
  EXPECT_EQ(img.priv, priv);
  EXPECT_NE(img.checksum(), 0u);
}

// Malformed schedules must be rejected before any simulation runs.
TEST(ScheduleOracle, ValidateRejectsRaggedAndOutOfRange) {
  WorkloadConfig cfg;
  ScheduleSet ragged = random_schedule(cfg, cfg.nprocs);
  ragged.procs[1].rounds.pop_back();
  EXPECT_THROW(apps::synthetic::validate(ragged), SimError);

  ScheduleSet oob = random_schedule(cfg, cfg.nprocs);
  oob.procs[0].rounds[0][0].burst.updates.push_back(
      CellUpdate{static_cast<std::uint32_t>(oob.cell_count), 1});
  EXPECT_THROW(apps::synthetic::validate(oob), SimError);
}

std::vector<PropCase> prop_cases() {
  std::vector<PropCase> cases;
  for (const char* proto : kAllProtocols) {
    for (const std::uint64_t seed : {11ull, 23ull, 37ull, 51ull}) {
      for (const int np : {2, 4, 8}) {
        WorkloadConfig cfg;
        cfg.seed = seed;
        cfg.nprocs = np;
        // Vary the sharing shape with the seed.
        cfg.regions = 3 + seed % 5;
        cfg.region_cells = 16 + (seed % 3) * 17;
        cases.push_back(PropCase{cfg, proto});
      }
    }
  }
  return cases;
}

std::string prop_name(const ::testing::TestParamInfo<PropCase>& info) {
  std::string s = std::string(info.param.protocol) + "_s" +
                  std::to_string(info.param.cfg.seed) + "_p" +
                  std::to_string(info.param.cfg.nprocs);
  for (char& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomWorkload, ::testing::ValuesIn(prop_cases()),
                         prop_name);

}  // namespace
}  // namespace aecdsm::test
