// Failure-injection tests: the simulator must fail loudly — not hang or
// corrupt — on protocol deadlock, API misuse, and bounds violations.
#include <gtest/gtest.h>

#include "common/log.hpp"
#include "dsm/shared_array.hpp"
#include "tests/test_util.hpp"

namespace aecdsm::test {
namespace {

TEST(FailureModes, DeadlockIsDetectedAndReported) {
  // Processor 1 takes the lock and never releases it; processor 0's
  // acquire can never be granted. The engine drains and the run driver
  // must diagnose the deadlock instead of hanging.
  LambdaApp app(
      "deadlock", 4096, [](dsm::Machine& m) { m.alloc_shared(64); },
      [&](dsm::Context& ctx) {
        if (ctx.pid() == 1) {
          ctx.lock(0);
          // never unlocked
        } else {
          ctx.compute(10000);
          ctx.lock(0);  // blocks forever
          ctx.unlock(0);
        }
      });
  aec::AecSuite suite;
  dsm::RunConfig cfg;
  cfg.params = small_params(2);
  try {
    dsm::run_app(app, suite.suite(), cfg);
    FAIL() << "deadlock not detected";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
  }
}

TEST(FailureModes, SharedArrayBoundsChecked) {
  SystemParams params = small_params();
  dsm::Machine m(params, 1 << 14);
  auto arr = dsm::SharedArray<std::uint32_t>::alloc(m, 8);
  EXPECT_NO_THROW(arr.addr(7));
  EXPECT_THROW(arr.addr(8), SimError);
}

TEST(FailureModes, InvariantViolationsThrowSimError) {
  EXPECT_THROW(
      []() {
        AECDSM_CHECK_MSG(1 == 2, "math is broken: " << 42);
      }(),
      SimError);
  try {
    AECDSM_CHECK_MSG(false, "context " << 7);
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("context 7"), std::string::npos);
    EXPECT_NE(what.find("test_failure_modes"), std::string::npos);  // file name
  }
}

TEST(FailureModes, LoggingLevelsGate) {
  const auto prev = logging::level();
  logging::set_level(logging::Level::kWarn);
  EXPECT_EQ(logging::level(), logging::Level::kWarn);
  // Macros below the threshold are cheap no-ops; above, they emit (to
  // stderr — not asserted here, just exercised).
  AECDSM_DEBUG("suppressed " << 1);
  AECDSM_WARN("emitted " << 2);
  logging::set_level(prev);
}

TEST(FailureModes, MachineRejectsInvalidParams) {
  SystemParams params;
  params.num_procs = 6;
  params.mesh_width = 4;  // 6 % 4 != 0
  EXPECT_THROW(dsm::Machine(params, 4096), SimError);
}

}  // namespace
}  // namespace aecdsm::test
