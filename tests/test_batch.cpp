// Tests for the batch experiment subsystem: the thread pool, the JSON
// document writer, the shared bench CLI, and BatchRunner's plan-ordered,
// jobs-independent execution.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "harness/batch.hpp"
#include "harness/cellcache.hpp"
#include "harness/json_out.hpp"
#include "harness/threadpool.hpp"
#include "tests/test_util.hpp"

namespace aecdsm::test {
namespace {

using harness::json::Value;

TEST(ThreadPool, RunsEverySubmittedTask) {
  harness::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_all();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitAllIsReusable) {
  harness::ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_all();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { ++count; });
  pool.submit([&count] { ++count; });
  pool.wait_all();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    harness::ThreadPool pool(1);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&count] { ++count; });
    }
  }
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ResolveJobsPrecedence) {
  unsetenv("AECDSM_JOBS");
  EXPECT_EQ(harness::ThreadPool::resolve_jobs(3), 3);
  EXPECT_GE(harness::ThreadPool::resolve_jobs(0), 1);
  setenv("AECDSM_JOBS", "7", 1);
  EXPECT_EQ(harness::ThreadPool::resolve_jobs(0), 7);
  EXPECT_EQ(harness::ThreadPool::resolve_jobs(2), 2);  // explicit beats env
  setenv("AECDSM_JOBS", "bogus", 1);
  EXPECT_GE(harness::ThreadPool::resolve_jobs(0), 1);
  unsetenv("AECDSM_JOBS");
}

TEST(Json, ScalarsAndCompactForm) {
  Value v = Value::object();
  v["b"] = Value(true);
  v["i"] = Value(-3);
  v["u"] = Value(std::uint64_t{18446744073709551615ULL});
  v["d"] = Value(0.6);
  v["s"] = Value("hi");
  v["n"];  // null member
  EXPECT_EQ(v.dump(-1),
            "{\"b\":true,\"i\":-3,\"u\":18446744073709551615,\"d\":0.6,"
            "\"s\":\"hi\",\"n\":null}");
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  Value v = Value::object();
  v["zebra"] = Value(1);
  v["apple"] = Value(2);
  v["zebra"] = Value(3);  // update in place, no reorder, no duplicate
  EXPECT_EQ(v.dump(-1), "{\"zebra\":3,\"apple\":2}");
  EXPECT_EQ(v.size(), 2u);
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(harness::json::quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(harness::json::quote(std::string("x\x01y")), "\"x\\u0001y\"");
}

TEST(Json, ArraysAndNesting) {
  Value v = Value::array();
  v.append(Value(1));
  Value inner = Value::object();
  inner["k"] = Value("v");
  v.append(std::move(inner));
  EXPECT_EQ(v.dump(-1), "[1,{\"k\":\"v\"}]");
  // Pretty form round-trips the same content with indentation.
  EXPECT_NE(v.dump(0).find("  \"k\": \"v\""), std::string::npos);
}

TEST(BatchCli, ParsesAndStripsKnownFlags) {
  const char* raw[] = {"bench", "--jobs", "4", "--keepme", "--json=out.json", nullptr};
  int argc = 5;
  char** argv = const_cast<char**>(raw);
  const harness::BatchOptions opts = harness::parse_batch_cli(argc, argv);
  EXPECT_EQ(opts.jobs, 4);
  EXPECT_EQ(opts.json_path, "out.json");
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "--keepme");
}

TEST(BatchCli, NoJsonAndEqualsForms) {
  const char* raw[] = {"bench", "--jobs=2", "--no-json", nullptr};
  int argc = 3;
  char** argv = const_cast<char**>(raw);
  const harness::BatchOptions opts = harness::parse_batch_cli(argc, argv);
  EXPECT_EQ(opts.jobs, 2);
  EXPECT_EQ(opts.json_path, "off");
  EXPECT_EQ(argc, 1);
}

TEST(Plan, AddDefaultsLabelAndReturnsCellForTweaks) {
  harness::ExperimentPlan plan;
  plan.add("AEC", "IS", apps::Scale::kSmall);
  plan.add("AEC", "IS", apps::Scale::kSmall).label = "IS/K=3";
  plan.cells.back().params.update_set_size = 3;
  ASSERT_EQ(plan.cells.size(), 2u);
  EXPECT_EQ(plan.cells[0].label, "AEC/IS");
  EXPECT_EQ(plan.cells[1].label, "IS/K=3");
  EXPECT_EQ(plan.cells[1].params.update_set_size, 3);
}

TEST(BatchRunner, ResultsComeBackInPlanOrder) {
  harness::ExperimentPlan plan;
  plan.name = "order";
  plan.add("AEC", "IS", apps::Scale::kSmall, small_params(4));
  plan.add("TreadMarks", "IS", apps::Scale::kSmall, small_params(4));
  plan.add("Munin-ERC", "IS", apps::Scale::kSmall, small_params(4));
  plan.add("AEC-noLAP", "FFT", apps::Scale::kSmall, small_params(4));
  harness::BatchOptions opts;
  opts.jobs = 4;
  opts.no_cache = true;  // exercise real simulations, not the cell cache
  harness::BatchRunner runner(opts);
  const auto results = runner.run(plan);
  ASSERT_EQ(results.size(), plan.cells.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].stats.app, plan.cells[i].app) << i;
    EXPECT_TRUE(results[i].stats.result_valid) << i;
  }
  EXPECT_EQ(results[0].stats.protocol, "AEC");
  EXPECT_EQ(results[1].stats.protocol, "TreadMarks");
  EXPECT_EQ(results[2].stats.protocol, "Munin-ERC");
  EXPECT_EQ(results[3].stats.protocol, "AEC-noLAP");
  EXPECT_NE(results[0].aec, nullptr);
  EXPECT_NE(results[1].tm, nullptr);
  EXPECT_NE(results[2].erc, nullptr);
}

TEST(BatchRunner, CellFailurePropagatesAfterBatchFinishes) {
  harness::ExperimentPlan plan;
  plan.name = "boom";
  plan.add("AEC", "IS", apps::Scale::kSmall, small_params(4));
  plan.add("NoSuchProtocol", "IS", apps::Scale::kSmall, small_params(4));
  harness::BatchOptions opts;
  opts.jobs = 2;
  opts.no_cache = true;
  harness::BatchRunner runner(opts);
  EXPECT_THROW(runner.run(plan), SimError);
}

TEST(BatchRunner, DocumentIsIdenticalAcrossJobCounts) {
  harness::ExperimentPlan plan;
  plan.name = "docdet";
  for (const char* proto : {"AEC", "TreadMarks", "Munin-ERC", "AEC-noLAP"}) {
    plan.add(proto, "IS", apps::Scale::kSmall, small_params(4));
  }
  auto doc_with_jobs = [&](int jobs) {
    harness::BatchOptions opts;
    opts.jobs = jobs;
    opts.no_cache = true;
    harness::BatchRunner runner(opts);
    return harness::BatchRunner::document(plan, runner.run(plan)).dump();
  };
  const std::string serial = doc_with_jobs(1);
  EXPECT_EQ(serial, doc_with_jobs(4));
  // The document carries the full breakdown and the LAP scores.
  EXPECT_NE(serial.find("\"schema\": \"aecdsm-batch-v1\""), std::string::npos);
  EXPECT_NE(serial.find("\"busy\""), std::string::npos);
  EXPECT_NE(serial.find("\"waitq_virtualq\""), std::string::npos);
  EXPECT_NE(serial.find("\"affinity_threshold\""), std::string::npos);
}

TEST(LptSchedule, KnownDurationsDispatchLongestFirstUnknownAheadOfAll) {
  // Cells 0..3 with telemetry for a, b, d; c has no recorded duration.
  const std::vector<std::string> hashes = {"a", "b", "c", "d"};
  const harness::TelemetryMap telemetry = {{"a", 10}, {"b", 500}, {"d", 50}};
  const std::vector<std::size_t> order =
      harness::lpt_schedule({0, 1, 2, 3}, hashes, telemetry);
  // Unknown first (it may be the heavy one), then descending duration.
  EXPECT_EQ(order, (std::vector<std::size_t>{2, 1, 3, 0}));
}

TEST(LptSchedule, EmptyTelemetryKeepsPlanOrder) {
  const std::vector<std::string> hashes = {"a", "b", "c"};
  EXPECT_EQ(harness::lpt_schedule({0, 1, 2}, hashes, {}),
            (std::vector<std::size_t>{0, 1, 2}));
  // A subset of misses is preserved as given, too.
  EXPECT_EQ(harness::lpt_schedule({2, 0}, hashes, {}),
            (std::vector<std::size_t>{2, 0}));
}

TEST(LptSchedule, TiesAndUnknownsAreStableInIncomingOrder) {
  const std::vector<std::string> hashes = {"a", "b", "c", "d"};
  const harness::TelemetryMap telemetry = {{"a", 100}, {"b", 100}};
  // Equal durations keep incoming order; so do multiple unknowns.
  EXPECT_EQ(harness::lpt_schedule({0, 1, 2, 3}, hashes, telemetry),
            (std::vector<std::size_t>{2, 3, 0, 1}));
  EXPECT_EQ(harness::lpt_schedule({3, 2, 1, 0}, hashes, telemetry),
            (std::vector<std::size_t>{3, 2, 1, 0}));
}

TEST(LptSchedule, SeededTelemetryChangesDispatchNotResults) {
  // Seed the cache with reversed durations (claim the first plan cell is
  // by far the fastest): the document must come out identical anyway,
  // because scheduling only reorders dispatch, never results.
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "aecdsm_test_lpt";
  fs::remove_all(dir);
  harness::ExperimentPlan plan;
  plan.name = "lpt";
  plan.add("AEC", "IS", apps::Scale::kSmall, small_params(4), 1);
  plan.add("AEC", "IS", apps::Scale::kSmall, small_params(4), 2);
  plan.add("AEC", "IS", apps::Scale::kSmall, small_params(4), 3);

  harness::BatchOptions no_cache;
  no_cache.jobs = 1;
  no_cache.no_cache = true;
  harness::BatchRunner plain(no_cache);
  const std::string expected =
      harness::BatchRunner::document(plan, plain.run(plan)).dump();

  harness::CellCache cache(dir.string());
  harness::TelemetryMap seeded;
  std::uint64_t fake = 10;
  for (const harness::ExperimentCell& cell : plan.cells) {
    seeded[harness::CellCache::cell_hash(cell)] = fake;
    fake *= 100;
  }
  cache.merge_telemetry(seeded);

  harness::BatchOptions with_cache;
  with_cache.jobs = 2;
  with_cache.cache_dir = dir.string();
  harness::BatchRunner scheduled(with_cache);
  EXPECT_EQ(harness::BatchRunner::document(plan, scheduled.run(plan)).dump(),
            expected);
  EXPECT_EQ(scheduled.last_run_info().simulated, plan.cells.size());
  fs::remove_all(dir);
}

TEST(BatchRunner, BenchReportLooksUpByLabel) {
  harness::ExperimentPlan plan;
  plan.name = "lookup";
  plan.add("AEC", "IS", apps::Scale::kSmall, small_params(4));
  plan.add("TreadMarks", "IS", apps::Scale::kSmall, small_params(4));
  harness::BatchOptions opts;
  opts.jobs = 2;
  opts.no_cache = true;
  harness::BatchRunner runner(opts);
  const auto results = runner.run(plan);
  harness::json::Value doc =
      harness::BatchRunner::document(plan, results);
  harness::BenchReport rep{plan, results, doc};
  EXPECT_EQ(rep.result("TreadMarks/IS").stats.protocol, "TreadMarks");
  EXPECT_THROW(rep.result("nope"), SimError);
}

}  // namespace
}  // namespace aecdsm::test
