// Tests for the batch experiment subsystem: the thread pool, the JSON
// document writer, the shared bench CLI, and BatchRunner's plan-ordered,
// jobs-independent execution.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "harness/batch.hpp"
#include "harness/cellcache.hpp"
#include "harness/json_out.hpp"
#include "harness/threadpool.hpp"
#include "tests/test_util.hpp"

namespace aecdsm::test {
namespace {

using harness::json::Value;

TEST(ThreadPool, RunsEverySubmittedTask) {
  harness::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_all();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitAllIsReusable) {
  harness::ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_all();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { ++count; });
  pool.submit([&count] { ++count; });
  pool.wait_all();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    harness::ThreadPool pool(1);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&count] { ++count; });
    }
  }
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ResolveJobsPrecedence) {
  unsetenv("AECDSM_JOBS");
  EXPECT_EQ(harness::ThreadPool::resolve_jobs(3), 3);
  EXPECT_GE(harness::ThreadPool::resolve_jobs(0), 1);
  setenv("AECDSM_JOBS", "7", 1);
  EXPECT_EQ(harness::ThreadPool::resolve_jobs(0), 7);
  EXPECT_EQ(harness::ThreadPool::resolve_jobs(2), 2);  // explicit beats env
  setenv("AECDSM_JOBS", "bogus", 1);
  EXPECT_GE(harness::ThreadPool::resolve_jobs(0), 1);
  unsetenv("AECDSM_JOBS");
}

TEST(Json, ScalarsAndCompactForm) {
  Value v = Value::object();
  v["b"] = Value(true);
  v["i"] = Value(-3);
  v["u"] = Value(std::uint64_t{18446744073709551615ULL});
  v["d"] = Value(0.6);
  v["s"] = Value("hi");
  v["n"];  // null member
  EXPECT_EQ(v.dump(-1),
            "{\"b\":true,\"i\":-3,\"u\":18446744073709551615,\"d\":0.6,"
            "\"s\":\"hi\",\"n\":null}");
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  Value v = Value::object();
  v["zebra"] = Value(1);
  v["apple"] = Value(2);
  v["zebra"] = Value(3);  // update in place, no reorder, no duplicate
  EXPECT_EQ(v.dump(-1), "{\"zebra\":3,\"apple\":2}");
  EXPECT_EQ(v.size(), 2u);
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(harness::json::quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(harness::json::quote(std::string("x\x01y")), "\"x\\u0001y\"");
}

TEST(Json, ArraysAndNesting) {
  Value v = Value::array();
  v.append(Value(1));
  Value inner = Value::object();
  inner["k"] = Value("v");
  v.append(std::move(inner));
  EXPECT_EQ(v.dump(-1), "[1,{\"k\":\"v\"}]");
  // Pretty form round-trips the same content with indentation.
  EXPECT_NE(v.dump(0).find("  \"k\": \"v\""), std::string::npos);
}

TEST(BatchCli, ParsesAndStripsKnownFlags) {
  const char* raw[] = {"bench", "--jobs", "4", "--keepme", "--json=out.json", nullptr};
  int argc = 5;
  char** argv = const_cast<char**>(raw);
  const harness::BatchOptions opts = harness::parse_batch_cli(argc, argv);
  EXPECT_EQ(opts.jobs, 4);
  EXPECT_EQ(opts.json_path, "out.json");
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[1], "--keepme");
}

TEST(BatchCli, NoJsonAndEqualsForms) {
  const char* raw[] = {"bench", "--jobs=2", "--no-json", nullptr};
  int argc = 3;
  char** argv = const_cast<char**>(raw);
  const harness::BatchOptions opts = harness::parse_batch_cli(argc, argv);
  EXPECT_EQ(opts.jobs, 2);
  EXPECT_EQ(opts.json_path, "off");
  EXPECT_EQ(argc, 1);
}

TEST(Plan, AddDefaultsLabelAndReturnsCellForTweaks) {
  harness::ExperimentPlan plan;
  plan.add("AEC", "IS", apps::Scale::kSmall);
  plan.add("AEC", "IS", apps::Scale::kSmall).label = "IS/K=3";
  plan.cells.back().params.update_set_size = 3;
  ASSERT_EQ(plan.cells.size(), 2u);
  EXPECT_EQ(plan.cells[0].label, "AEC/IS");
  EXPECT_EQ(plan.cells[1].label, "IS/K=3");
  EXPECT_EQ(plan.cells[1].params.update_set_size, 3);
}

TEST(BatchRunner, ResultsComeBackInPlanOrder) {
  harness::ExperimentPlan plan;
  plan.name = "order";
  plan.add("AEC", "IS", apps::Scale::kSmall, small_params(4));
  plan.add("TreadMarks", "IS", apps::Scale::kSmall, small_params(4));
  plan.add("Munin-ERC", "IS", apps::Scale::kSmall, small_params(4));
  plan.add("AEC-noLAP", "FFT", apps::Scale::kSmall, small_params(4));
  harness::BatchOptions opts;
  opts.jobs = 4;
  opts.no_cache = true;  // exercise real simulations, not the cell cache
  harness::BatchRunner runner(opts);
  const auto results = runner.run(plan);
  ASSERT_EQ(results.size(), plan.cells.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].stats.app, plan.cells[i].app) << i;
    EXPECT_TRUE(results[i].stats.result_valid) << i;
  }
  EXPECT_EQ(results[0].stats.protocol, "AEC");
  EXPECT_EQ(results[1].stats.protocol, "TreadMarks");
  EXPECT_EQ(results[2].stats.protocol, "Munin-ERC");
  EXPECT_EQ(results[3].stats.protocol, "AEC-noLAP");
  EXPECT_NE(results[0].aec, nullptr);
  EXPECT_NE(results[1].tm, nullptr);
  EXPECT_NE(results[2].erc, nullptr);
}

TEST(BatchRunner, CellFailurePropagatesAfterBatchFinishes) {
  harness::ExperimentPlan plan;
  plan.name = "boom";
  plan.add("AEC", "IS", apps::Scale::kSmall, small_params(4));
  plan.add("NoSuchProtocol", "IS", apps::Scale::kSmall, small_params(4));
  harness::BatchOptions opts;
  opts.jobs = 2;
  opts.no_cache = true;
  harness::BatchRunner runner(opts);
  EXPECT_THROW(runner.run(plan), SimError);
}

TEST(BatchRunner, DocumentIsIdenticalAcrossJobCounts) {
  harness::ExperimentPlan plan;
  plan.name = "docdet";
  for (const char* proto : {"AEC", "TreadMarks", "Munin-ERC", "AEC-noLAP"}) {
    plan.add(proto, "IS", apps::Scale::kSmall, small_params(4));
  }
  auto doc_with_jobs = [&](int jobs) {
    harness::BatchOptions opts;
    opts.jobs = jobs;
    opts.no_cache = true;
    harness::BatchRunner runner(opts);
    return harness::BatchRunner::document(plan, runner.run(plan)).dump();
  };
  const std::string serial = doc_with_jobs(1);
  EXPECT_EQ(serial, doc_with_jobs(4));
  // The document carries the full breakdown and the LAP scores.
  EXPECT_NE(serial.find("\"schema\": \"aecdsm-batch-v1\""), std::string::npos);
  EXPECT_NE(serial.find("\"busy\""), std::string::npos);
  EXPECT_NE(serial.find("\"waitq_virtualq\""), std::string::npos);
  EXPECT_NE(serial.find("\"affinity_threshold\""), std::string::npos);
}

TEST(LptSchedule, KnownDurationsDispatchLongestFirstUnknownAheadOfAll) {
  // Cells 0..3 with telemetry for a, b, d; c has no recorded duration.
  const std::vector<std::string> hashes = {"a", "b", "c", "d"};
  const harness::TelemetryMap telemetry = {{"a", 10}, {"b", 500}, {"d", 50}};
  const std::vector<std::size_t> order =
      harness::lpt_schedule({0, 1, 2, 3}, hashes, telemetry);
  // Unknown first (it may be the heavy one), then descending duration.
  EXPECT_EQ(order, (std::vector<std::size_t>{2, 1, 3, 0}));
}

TEST(LptSchedule, EmptyTelemetryKeepsPlanOrder) {
  const std::vector<std::string> hashes = {"a", "b", "c"};
  EXPECT_EQ(harness::lpt_schedule({0, 1, 2}, hashes, {}),
            (std::vector<std::size_t>{0, 1, 2}));
  // A subset of misses is preserved as given, too.
  EXPECT_EQ(harness::lpt_schedule({2, 0}, hashes, {}),
            (std::vector<std::size_t>{2, 0}));
}

TEST(LptSchedule, TiesAndUnknownsAreStableInIncomingOrder) {
  const std::vector<std::string> hashes = {"a", "b", "c", "d"};
  const harness::TelemetryMap telemetry = {{"a", 100}, {"b", 100}};
  // Equal durations keep incoming order; so do multiple unknowns.
  EXPECT_EQ(harness::lpt_schedule({0, 1, 2, 3}, hashes, telemetry),
            (std::vector<std::size_t>{2, 3, 0, 1}));
  EXPECT_EQ(harness::lpt_schedule({3, 2, 1, 0}, hashes, telemetry),
            (std::vector<std::size_t>{3, 2, 1, 0}));
}

TEST(LptSchedule, SeededTelemetryChangesDispatchNotResults) {
  // Seed the cache with reversed durations (claim the first plan cell is
  // by far the fastest): the document must come out identical anyway,
  // because scheduling only reorders dispatch, never results.
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "aecdsm_test_lpt";
  fs::remove_all(dir);
  harness::ExperimentPlan plan;
  plan.name = "lpt";
  plan.add("AEC", "IS", apps::Scale::kSmall, small_params(4), 1);
  plan.add("AEC", "IS", apps::Scale::kSmall, small_params(4), 2);
  plan.add("AEC", "IS", apps::Scale::kSmall, small_params(4), 3);

  harness::BatchOptions no_cache;
  no_cache.jobs = 1;
  no_cache.no_cache = true;
  harness::BatchRunner plain(no_cache);
  const std::string expected =
      harness::BatchRunner::document(plan, plain.run(plan)).dump();

  harness::CellCache cache(dir.string());
  harness::TelemetryMap seeded;
  std::uint64_t fake = 10;
  for (const harness::ExperimentCell& cell : plan.cells) {
    seeded[harness::CellCache::cell_hash(cell)] = fake;
    fake *= 100;
  }
  cache.merge_telemetry(seeded);

  harness::BatchOptions with_cache;
  with_cache.jobs = 2;
  with_cache.cache_dir = dir.string();
  harness::BatchRunner scheduled(with_cache);
  EXPECT_EQ(harness::BatchRunner::document(plan, scheduled.run(plan)).dump(),
            expected);
  EXPECT_EQ(scheduled.last_run_info().simulated, plan.cells.size());
  fs::remove_all(dir);
}

TEST(MemGate, ZeroCapIsDisabledAndFree) {
  harness::MemGate gate(0);
  EXPECT_FALSE(gate.enabled());
  EXPECT_EQ(gate.acquire(1 << 30), 0u);  // no reservation, no blocking
  EXPECT_EQ(gate.used(), 0u);
  gate.release(0);  // releasing a disabled acquisition is a no-op
}

TEST(MemGate, ReservesReleasesAndClampsOversizedCells) {
  harness::MemGate gate(100);
  EXPECT_TRUE(gate.enabled());
  const std::size_t a = gate.acquire(60);
  EXPECT_EQ(a, 60u);
  EXPECT_EQ(gate.used(), 60u);
  EXPECT_EQ(gate.try_acquire(60), 0u);  // would overflow the cap
  EXPECT_EQ(gate.used(), 60u);
  const std::size_t b = gate.try_acquire(40);
  EXPECT_EQ(b, 40u);
  EXPECT_EQ(gate.used(), 100u);
  gate.release(a);
  gate.release(b);
  EXPECT_EQ(gate.used(), 0u);
  // A cell heavier than the whole budget is clamped so it can still run.
  EXPECT_EQ(gate.acquire(1000), 100u);
  gate.release(100);
}

TEST(MemGate, BoundsConcurrentReservations) {
  harness::MemGate gate(2);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  harness::ThreadPool pool(8);
  for (int i = 0; i < 32; ++i) {
    pool.submit([&] {
      const std::size_t r = gate.acquire(1);
      const int now = ++running;
      int seen = peak.load();
      while (now > seen && !peak.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      --running;
      gate.release(r);
    });
  }
  pool.wait_all();
  EXPECT_EQ(gate.used(), 0u);
  EXPECT_LE(peak.load(), 2);  // never more than cap/weight cells at once
  EXPECT_GE(peak.load(), 1);
}

TEST(MemGate, CellWeightTracksAppFootprintAndProcs) {
  harness::ExperimentCell small_is;
  small_is.app = "IS";
  small_is.scale = apps::Scale::kSmall;
  small_is.params = small_params(4);
  harness::ExperimentCell default_is = small_is;
  default_is.scale = apps::Scale::kDefault;
  harness::ExperimentCell wide_is = small_is;
  wide_is.params.num_procs = 16;

  const std::size_t w_small = harness::cell_mem_weight(small_is);
  const std::size_t w_default = harness::cell_mem_weight(default_is);
  const std::size_t w_wide = harness::cell_mem_weight(wide_is);
  EXPECT_GT(w_small, 0u);
  // Bigger inputs and more processors both mean a bigger footprint.
  EXPECT_GT(w_default, w_small);
  EXPECT_GT(w_wide, w_small);
}

TEST(BatchRunner, MaxMemBoundedDispatchMatchesUnboundedResults) {
  harness::ExperimentPlan plan;
  plan.name = "memcap";
  for (const char* proto : {"AEC", "TreadMarks", "Munin-ERC", "AEC-noLAP"}) {
    plan.add(proto, "IS", apps::Scale::kSmall, small_params(4));
  }
  auto doc_with = [&](std::size_t max_mem_mb) {
    harness::BatchOptions opts;
    opts.jobs = 4;
    opts.no_cache = true;
    opts.max_mem_mb = max_mem_mb;
    harness::BatchRunner runner(opts);
    return harness::BatchRunner::document(plan, runner.run(plan)).dump();
  };
  // A 1 MiB budget is below any single cell's weight, so every cell clamps
  // to the whole budget and the batch serializes — same document anyway.
  EXPECT_EQ(doc_with(0), doc_with(1));
}

TEST(BatchCli, MaxMemAndCellTimeoutFlags) {
  unsetenv("AECDSM_MAX_MEM");
  {
    const char* raw[] = {"bench", "--max-mem", "2048", "--cell-timeout=1.5",
                         nullptr};
    int argc = 4;
    char** argv = const_cast<char**>(raw);
    const harness::BatchOptions opts = harness::parse_batch_cli(argc, argv);
    EXPECT_EQ(opts.max_mem_mb, 2048u);
    EXPECT_DOUBLE_EQ(opts.cell_timeout_sec, 1.5);
    EXPECT_EQ(argc, 1);
  }
  setenv("AECDSM_MAX_MEM", "512", 1);
  {
    const char* raw[] = {"bench", nullptr};
    int argc = 1;
    char** argv = const_cast<char**>(raw);
    EXPECT_EQ(harness::parse_batch_cli(argc, argv).max_mem_mb, 512u);
  }
  {  // the flag overrides the environment default
    const char* raw[] = {"bench", "--max-mem=64", nullptr};
    int argc = 2;
    char** argv = const_cast<char**>(raw);
    EXPECT_EQ(harness::parse_batch_cli(argc, argv).max_mem_mb, 64u);
  }
  unsetenv("AECDSM_MAX_MEM");
}

TEST(BatchRunner, CellTimeoutMarksCellsInsteadOfHanging) {
  harness::ExperimentPlan plan;
  plan.name = "stuck";
  plan.add("AEC", "IS", apps::Scale::kSmall, small_params(4));
  plan.add("TreadMarks", "IS", apps::Scale::kSmall, small_params(4));
  harness::BatchOptions opts;
  opts.jobs = 2;
  opts.no_cache = true;
  // A nanosecond deadline trips on the engine's first wall-clock poll, so
  // every cell reports "timeout" — the batch itself must NOT throw.
  opts.cell_timeout_sec = 1e-9;
  harness::BatchRunner runner(opts);
  const auto results = runner.run(plan);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status, "timeout");
  EXPECT_EQ(results[1].status, "timeout");
  EXPECT_EQ(runner.last_run_info().timeouts, 2u);

  // The artifact records the status and nulls the measurements.
  const std::string doc = harness::BatchRunner::document(plan, results).dump();
  EXPECT_NE(doc.find("\"status\": \"timeout\""), std::string::npos);
  EXPECT_NE(doc.find("\"stats\": null"), std::string::npos);

  // A generous timeout lets the same plan complete normally.
  opts.cell_timeout_sec = 300.0;
  harness::BatchRunner patient(opts);
  const auto ok = patient.run(plan);
  EXPECT_EQ(ok[0].status, "ok");
  EXPECT_EQ(patient.last_run_info().timeouts, 0u);
}

TEST(BatchRunner, CellTimeoutComposesWithFailFast) {
  harness::ExperimentPlan plan;
  plan.name = "stuck_ff";
  for (int i = 0; i < 4; ++i) {
    plan.add("AEC", "IS", apps::Scale::kSmall, small_params(4), 100 + i);
  }
  harness::BatchOptions opts;
  opts.jobs = 1;
  opts.no_cache = true;
  opts.cell_timeout_sec = 1e-9;
  opts.fail_fast = true;
  harness::BatchRunner runner(opts);
  const auto results = runner.run(plan);  // still no throw
  EXPECT_EQ(results[0].status, "timeout");
  // With one worker the first timeout cancels everything queued behind it.
  EXPECT_EQ(runner.last_run_info().timeouts, 1u);
  EXPECT_EQ(runner.last_run_info().skipped, 3u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].status, "skipped");
  }
}

TEST(BatchRunner, BenchReportLooksUpByLabel) {
  harness::ExperimentPlan plan;
  plan.name = "lookup";
  plan.add("AEC", "IS", apps::Scale::kSmall, small_params(4));
  plan.add("TreadMarks", "IS", apps::Scale::kSmall, small_params(4));
  harness::BatchOptions opts;
  opts.jobs = 2;
  opts.no_cache = true;
  harness::BatchRunner runner(opts);
  const auto results = runner.run(plan);
  harness::json::Value doc =
      harness::BatchRunner::document(plan, results);
  harness::BenchReport rep{plan, results, doc};
  EXPECT_EQ(rep.result("TreadMarks/IS").stats.protocol, "TreadMarks");
  EXPECT_THROW(rep.result("nope"), SimError);
}

}  // namespace
}  // namespace aecdsm::test
