// Tests for the src/trace observability subsystem: the ring-buffered
// Recorder (wrap/overflow semantics), the exporters (Perfetto golden file,
// byte-determinism across same-seed runs), the OverlapAnalyzer on
// hand-built timelines, and the no-perturbation guarantee — a traced run's
// RunStats are identical to an untraced run's.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/json_out.hpp"
#include "harness/runner.hpp"
#include "tests/test_util.hpp"
#include "trace/export.hpp"
#include "trace/overlap.hpp"
#include "trace/recorder.hpp"

namespace aecdsm::test {
namespace {

using trace::Category;
using trace::Event;
using trace::Recorder;
namespace names = trace::names;

// ---------------------------------------------------------------- Recorder

TEST(TraceRecorder, KeepsEventsInTimestampOrder) {
  if (!trace::kTracingCompiled) GTEST_SKIP() << "tracing compiled out";
  Recorder rec(16);
  rec.span(0, Category::kDiff, names::kDiffCreate, 50, 60);
  rec.instant(1, Category::kNet, names::kNetSend, 10);
  rec.span(0, Category::kLock, names::kLockWait, 10, 40);
  const std::vector<Event> events = rec.events();
  ASSERT_EQ(events.size(), 3u);
  // Same timestamp: record order (seq) breaks the tie.
  EXPECT_STREQ(events[0].name, names::kNetSend);
  EXPECT_STREQ(events[1].name, names::kLockWait);
  EXPECT_STREQ(events[2].name, names::kDiffCreate);
  EXPECT_EQ(rec.recorded(), 3u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceRecorder, RingWrapKeepsNewestAndCountsDropped) {
  if (!trace::kTracingCompiled) GTEST_SKIP() << "tracing compiled out";
  Recorder rec(4);
  for (std::uint64_t i = 0; i < 6; ++i) {
    rec.instant(0, Category::kNet, names::kNetSend, 100 + i, "dst", i);
  }
  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.recorded(), 6u);
  EXPECT_EQ(rec.dropped(), 2u);
  EXPECT_EQ(rec.size(), 4u);
  const std::vector<Event> events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  // The two oldest events (a0 = 0, 1) were overwritten.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].a0, i + 2);
    EXPECT_EQ(events[i].t_start, 102 + i);
  }
}

TEST(TraceRecorder, ClearResetsTheRing) {
  if (!trace::kTracingCompiled) GTEST_SKIP() << "tracing compiled out";
  Recorder rec(4);
  for (int i = 0; i < 6; ++i) rec.instant(0, Category::kNet, names::kNetSend, 1);
  rec.clear();
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_TRUE(rec.events().empty());
  rec.instant(0, Category::kNet, names::kNetAck, 7);
  ASSERT_EQ(rec.events().size(), 1u);
  EXPECT_STREQ(rec.events()[0].name, names::kNetAck);
}

TEST(TraceRecorder, BackwardsSpanDegradesToInstant) {
  if (!trace::kTracingCompiled) GTEST_SKIP() << "tracing compiled out";
  Recorder rec(4);
  rec.span(0, Category::kDiff, names::kDiffApply, 100, 90);
  const std::vector<Event> events = rec.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_FALSE(events[0].is_span());
  EXPECT_EQ(events[0].t_start, 100u);
  EXPECT_EQ(events[0].t_end, 100u);
}

// --------------------------------------------------------------- Exporters

trace::TraceMeta toy_meta() {
  trace::TraceMeta meta;
  meta.protocol = "AEC";
  meta.app = "toy";
  meta.num_procs = 2;
  meta.seed = 42;
  meta.label = "AEC/toy";
  return meta;
}

// --------------------------------------------------------- Streaming spill

TEST(TraceSpill, KeepsFullTimelineAcrossRingWrap) {
  if (!trace::kTracingCompiled) GTEST_SKIP() << "tracing compiled out";
  Recorder rec(4);
  rec.enable_spill(::testing::TempDir(), "spill_wrap", /*chunk_events=*/3);
  for (std::uint64_t i = 0; i < 10; ++i) {
    rec.instant(0, Category::kNet, names::kNetSend, 100 + i, "dst", i);
  }
  // The ring dropped its head, the spill did not.
  EXPECT_EQ(rec.dropped(), 6u);
  EXPECT_EQ(rec.spilled(), 10u);
  EXPECT_EQ(rec.spill_chunks().size(), 4u);  // ceil(10 / 3)
  trace::TraceMeta meta = toy_meta();
  const json::Value doc = trace::trace_json(rec, meta);
  EXPECT_EQ(doc.at("dropped").as_uint(), 6u);
  EXPECT_EQ(doc.at("spilled").as_uint(), 10u);
  EXPECT_EQ(doc.at("spill_chunks").as_uint(), 4u);
  const std::vector<json::Value>& events = doc.at("events").items();
  ASSERT_EQ(events.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(events[i].at("ts").as_uint(), 100 + i);
    EXPECT_EQ(events[i].at("args").at("dst").as_uint(), i);
  }
}

TEST(TraceSpill, DisabledPathIsByteIdenticalAndEnabledMatchesRingRows) {
  if (!trace::kTracingCompiled) GTEST_SKIP() << "tracing compiled out";
  auto record = [](Recorder& rec) {
    rec.span(0, Category::kLock, names::kLockWait, 100, 250, "lock", 3);
    rec.counter(1, names::kLockQueueDepth, 140, 2);
    rec.instant(1, Category::kNet, names::kNetSend, 160, "dst", 0, "bytes", 64);
  };
  Recorder plain(8);
  record(plain);
  Recorder spilling(8);
  spilling.enable_spill(::testing::TempDir(), "spill_match");
  record(spilling);
  const trace::TraceMeta meta = toy_meta();
  const json::Value plain_doc = trace::trace_json(plain, meta);
  const json::Value spill_doc = trace::trace_json(spilling, meta);
  // Same events either way; the spilling doc only adds its bookkeeping.
  EXPECT_EQ(plain_doc.at("events").dump(-1), spill_doc.at("events").dump(-1));
  EXPECT_EQ(plain_doc.find("spilled"), nullptr);
  EXPECT_EQ(spill_doc.at("spilled").as_uint(), 3u);
  // Perfetto export (counters included) is row-for-row identical too.
  EXPECT_EQ(trace::perfetto_json(plain, meta).dump(-1),
            trace::perfetto_json(spilling, meta).dump(-1));
}

Recorder toy_recorder() {
  Recorder rec(8);
  rec.span(0, Category::kLock, names::kLockWait, 100, 250, "lock", 3);
  rec.span(0, Category::kDiff, names::kDiffCreate, 120, 180, "page", 7);
  rec.instant(1, Category::kNet, names::kNetSend, 140, "dst", 0, "bytes", 64);
  return rec;
}

TEST(TraceExport, PerfettoGolden) {
  if (!trace::kTracingCompiled) GTEST_SKIP() << "tracing compiled out";
  const std::string got = trace::perfetto_json(toy_recorder(), toy_meta()).dump(-1);
  EXPECT_EQ(
      got,
      R"({"displayTimeUnit":"ms","traceEvents":[)"
      R"({"ph":"M","pid":0,"name":"process_name","args":{"name":"AEC/toy"}},)"
      R"({"ph":"M","pid":0,"tid":0,"name":"thread_name","args":{"name":"node 0"}},)"
      R"({"ph":"M","pid":0,"tid":1,"name":"thread_name","args":{"name":"node 1"}},)"
      R"({"ph":"X","pid":0,"tid":0,"cat":"lock","name":"lock.wait","ts":100,"dur":150,"args":{"lock":3}},)"
      R"({"ph":"X","pid":0,"tid":0,"cat":"diff","name":"diff.create","ts":120,"dur":60,"args":{"page":7}},)"
      R"({"ph":"i","pid":0,"tid":1,"cat":"net","name":"net.send","ts":140,"s":"t","args":{"dst":0,"bytes":64}}]})");
}

TEST(TraceExport, TraceV1Golden) {
  if (!trace::kTracingCompiled) GTEST_SKIP() << "tracing compiled out";
  const std::string got = trace::trace_json(toy_recorder(), toy_meta()).dump(-1);
  EXPECT_EQ(
      got,
      R"({"schema":"aecdsm-trace-v1","protocol":"AEC","app":"toy","num_procs":2,)"
      R"("seed":42,"capacity":8,"recorded":3,"dropped":0,"events":[)"
      R"({"node":0,"cat":"lock","name":"lock.wait","ts":100,"dur":150,"args":{"lock":3}},)"
      R"({"node":0,"cat":"diff","name":"diff.create","ts":120,"dur":60,"args":{"page":7}},)"
      R"({"node":1,"cat":"net","name":"net.send","ts":140,"args":{"dst":0,"bytes":64}}]})");
}

TEST(TraceExport, CounterSamplesExportAsPerfettoCounterEvents) {
  if (!trace::kTracingCompiled) GTEST_SKIP() << "tracing compiled out";
  Recorder rec(8);
  rec.counter(0, names::kLockQueueDepth, 100, 2);
  rec.counter(1, names::kDiffOutstanding, 140, 5);
  const std::string got = trace::perfetto_json(rec, toy_meta()).dump(-1);
  // "C" phase, no tid (the node is folded into the track name), and the
  // sample value keyed by the counter name so Perfetto plots it as y.
  EXPECT_EQ(
      got,
      R"({"displayTimeUnit":"ms","traceEvents":[)"
      R"({"ph":"M","pid":0,"name":"process_name","args":{"name":"AEC/toy"}},)"
      R"({"ph":"M","pid":0,"tid":0,"name":"thread_name","args":{"name":"node 0"}},)"
      R"({"ph":"M","pid":0,"tid":1,"name":"thread_name","args":{"name":"node 1"}},)"
      R"({"ph":"C","pid":0,"cat":"counter","name":"lockq.depth node0","ts":100,"args":{"lockq.depth":2}},)"
      R"({"ph":"C","pid":0,"cat":"counter","name":"diff.outstanding node1","ts":140,"args":{"diff.outstanding":5}}]})");
}

// --------------------------------------------------------- OverlapAnalyzer

std::vector<Event> timeline(std::vector<Event> events) {
  std::uint64_t seq = 0;
  for (Event& e : events) e.seq = seq++;
  return events;
}

Event span_of(ProcId node, Category cat, const char* name, Cycles t0, Cycles t1) {
  Event e;
  e.node = node;
  e.cat = cat;
  e.name = name;
  e.t_start = t0;
  e.t_end = t1;
  return e;
}

TEST(OverlapAnalyzer, FullyHiddenDiffWork) {
  // diff.create [10,20) entirely inside lock.wait [0,100) on the same node.
  auto report = trace::analyze_overlap(timeline({
      span_of(0, Category::kLock, names::kLockWait, 0, 100),
      span_of(0, Category::kDiff, names::kDiffCreate, 10, 20),
  }));
  EXPECT_EQ(report.diff_cycles, 10u);
  EXPECT_EQ(report.overlap_lock_wait, 10u);
  EXPECT_EQ(report.overlap_any, 10u);
  EXPECT_EQ(report.lock_wait_cycles, 100u);
  EXPECT_DOUBLE_EQ(report.overlap_ratio(), 1.0);
  ASSERT_EQ(report.episodes.size(), 1u);
  EXPECT_EQ(report.episodes[0].diff_overlap, 10u);
  EXPECT_STREQ(report.episodes[0].kind, names::kLockWait);
}

TEST(OverlapAnalyzer, FullyExposedDiffWork) {
  // Delay on node 1 cannot hide diff work on node 0.
  auto report = trace::analyze_overlap(timeline({
      span_of(1, Category::kLock, names::kLockWait, 0, 100),
      span_of(0, Category::kDiff, names::kDiffApply, 10, 60),
  }));
  EXPECT_EQ(report.diff_cycles, 50u);
  EXPECT_EQ(report.overlap_any, 0u);
  EXPECT_DOUBLE_EQ(report.overlap_ratio(), 0.0);
}

TEST(OverlapAnalyzer, PartialOverlapCountsTheIntersection) {
  auto report = trace::analyze_overlap(timeline({
      span_of(0, Category::kBarrier, names::kBarrierWait, 0, 100),
      span_of(0, Category::kDiff, names::kDiffCreate, 50, 150),
  }));
  EXPECT_EQ(report.diff_cycles, 100u);
  EXPECT_EQ(report.overlap_barrier_wait, 50u);
  EXPECT_EQ(report.overlap_any, 50u);
  EXPECT_DOUBLE_EQ(report.overlap_ratio(), 0.5);
  ASSERT_EQ(report.episodes.size(), 1u);
  EXPECT_EQ(report.episodes[0].diff_overlap, 50u);
  EXPECT_STREQ(report.episodes[0].kind, names::kBarrierWait);
}

TEST(OverlapAnalyzer, UnionNeverDoubleCounts) {
  // diff [0,100) under lock.wait [0,60) and svc [40,100): per-kind overlaps
  // sum to 120 but the union covers the span exactly once.
  auto report = trace::analyze_overlap(timeline({
      span_of(0, Category::kLock, names::kLockWait, 0, 60),
      span_of(0, Category::kSvc, names::kService, 40, 100),
      span_of(0, Category::kDiff, names::kDiffCreate, 0, 100),
  }));
  EXPECT_EQ(report.diff_cycles, 100u);
  EXPECT_EQ(report.overlap_lock_wait, 60u);
  EXPECT_EQ(report.overlap_service, 60u);
  EXPECT_EQ(report.overlap_any, 100u);
  EXPECT_DOUBLE_EQ(report.overlap_ratio(), 1.0);
}

TEST(OverlapAnalyzer, ServiceSideDiffWorkIsNeverHidden) {
  // A diff span flagged "svc"=1 ran inside a message service handler — it
  // sits on a remote requester's critical path, so even though it lies
  // entirely under this node's svc span it must not count as overlapped.
  Event served = span_of(0, Category::kDiff, names::kDiffCreate, 10, 30);
  served.k0 = "svc";
  served.a0 = 1;
  auto report = trace::analyze_overlap(timeline({
      span_of(0, Category::kSvc, names::kService, 0, 50),
      served,
  }));
  EXPECT_EQ(report.diff_cycles, 20u);
  EXPECT_EQ(report.overlap_service, 0u);
  EXPECT_EQ(report.overlap_any, 0u);
  EXPECT_DOUBLE_EQ(report.overlap_ratio(), 0.0);
  EXPECT_EQ(report.service_cycles, 50u);
}

// --------------------------------------------- traced runs, end to end

harness::ExperimentResult traced_run(const std::string& protocol,
                                     Recorder& rec) {
  return harness::run_experiment(protocol, "IS", apps::Scale::kSmall,
                                 harness::paper_params(), 42, 0.0, &rec);
}

TEST(TraceEndToEnd, TracedRunStatsIdenticalToUntraced) {
  if (!trace::kTracingCompiled) GTEST_SKIP() << "tracing compiled out";
  Recorder rec;
  const harness::ExperimentResult traced = traced_run("AEC", rec);
  const harness::ExperimentResult plain = harness::run_experiment(
      "AEC", "IS", apps::Scale::kSmall, harness::paper_params(), 42);
  EXPECT_GT(rec.recorded(), 0u);
  // Tracing is observational: the serialized stats must match byte-for-byte.
  EXPECT_EQ(harness::to_json(traced.stats).dump(), harness::to_json(plain.stats).dump());
}

TEST(TraceEndToEnd, SameSeedRunsProduceByteIdenticalTraces) {
  if (!trace::kTracingCompiled) GTEST_SKIP() << "tracing compiled out";
  trace::TraceMeta meta;
  meta.protocol = "AEC";
  meta.app = "IS";
  meta.num_procs = harness::paper_params().num_procs;
  meta.seed = 42;
  meta.label = "AEC/IS";

  Recorder rec_a;
  traced_run("AEC", rec_a);
  Recorder rec_b;
  traced_run("AEC", rec_b);
  EXPECT_EQ(rec_a.recorded(), rec_b.recorded());
  EXPECT_EQ(trace::trace_json(rec_a, meta).dump(),
            trace::trace_json(rec_b, meta).dump());
  EXPECT_EQ(trace::perfetto_json(rec_a, meta).dump(),
            trace::perfetto_json(rec_b, meta).dump());
}

TEST(TraceEndToEnd, AecHidesMoreDiffWorkThanTreadMarks) {
  if (!trace::kTracingCompiled) GTEST_SKIP() << "tracing compiled out";
  // The paper's claim, measured: on a lock-heavy app AEC overlaps a larger
  // fraction of its diff work with synchronization delay than TreadMarks,
  // whose lazy diffs are created while a requester waits.
  Recorder aec_rec;
  harness::run_experiment("AEC", "Water-sp", apps::Scale::kSmall,
                          harness::paper_params(), 42, 0.0, &aec_rec);
  Recorder tmk_rec;
  harness::run_experiment("TreadMarks", "Water-sp", apps::Scale::kSmall,
                          harness::paper_params(), 42, 0.0, &tmk_rec);
  const auto aec = trace::analyze_overlap(aec_rec);
  const auto tmk = trace::analyze_overlap(tmk_rec);
  EXPECT_GT(aec.diff_cycles, 0u);
  EXPECT_GT(tmk.diff_cycles, 0u);
  EXPECT_GT(aec.overlap_ratio(), tmk.overlap_ratio());
}

TEST(TraceEndToEnd, CounterTracksAreRecordedAndInvisibleToOverlap) {
  if (!trace::kTracingCompiled) GTEST_SKIP() << "tracing compiled out";
  Recorder rec;
  // Water-sp is lock-heavy, so both counter tracks fire: lockq.depth at the
  // lock managers and diff.outstanding on the write-fault path.
  harness::run_experiment("AEC", "Water-sp", apps::Scale::kSmall,
                          harness::paper_params(), 42, 0.0, &rec);
  const std::vector<Event> events = rec.events();
  bool saw_lockq = false;
  bool saw_diffout = false;
  std::vector<Event> stripped_events;
  for (const Event& e : events) {
    if (e.cat == Category::kCounter) {
      if (std::string(e.name) == names::kLockQueueDepth) saw_lockq = true;
      if (std::string(e.name) == names::kDiffOutstanding) saw_diffout = true;
      continue;
    }
    stripped_events.push_back(e);
  }
  EXPECT_TRUE(saw_lockq);
  EXPECT_TRUE(saw_diffout);
  // Counter samples are numeric tracks, not sync-delay episodes or diff
  // work: the overlap analysis must be identical with and without them.
  const auto full = trace::analyze_overlap(events);
  const auto stripped = trace::analyze_overlap(std::move(stripped_events));
  EXPECT_EQ(full.diff_cycles, stripped.diff_cycles);
  EXPECT_EQ(full.overlap_any, stripped.overlap_any);
  EXPECT_EQ(full.lock_wait_cycles, stripped.lock_wait_cycles);
  EXPECT_EQ(full.barrier_wait_cycles, stripped.barrier_wait_cycles);
  EXPECT_EQ(full.service_cycles, stripped.service_cycles);
  EXPECT_EQ(full.episodes.size(), stripped.episodes.size());
}

TEST(TraceEndToEnd, OverlapStatsRoundTripThroughJson) {
  if (!trace::kTracingCompiled) GTEST_SKIP() << "tracing compiled out";
  Recorder rec;
  traced_run("AEC", rec);
  RunStats stats;
  stats.protocol = "AEC";
  stats.app = "IS";
  stats.overlap = trace::to_overlap_stats(trace::analyze_overlap(rec));
  ASSERT_TRUE(stats.overlap.any());
  const RunStats back = harness::run_stats_from_json(harness::to_json(stats));
  EXPECT_EQ(back.overlap, stats.overlap);
  EXPECT_EQ(harness::to_json(back).dump(), harness::to_json(stats).dump());
}

}  // namespace
}  // namespace aecdsm::test
