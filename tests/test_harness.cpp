// Tests for the experiment harness: runner protocol routing, LAP score
// collection/grouping (Table 3 plumbing), formatters, and the application
// registry.
#include <gtest/gtest.h>

#include <sstream>

#include "apps/registry.hpp"
#include "harness/format.hpp"
#include "harness/lap_report.hpp"
#include "harness/runner.hpp"
#include "tests/test_util.hpp"

namespace aecdsm::test {
namespace {

TEST(Registry, AllAppsConstructAtBothScales) {
  for (const std::string& name : apps::app_names()) {
    for (const apps::Scale scale : {apps::Scale::kSmall, apps::Scale::kDefault}) {
      auto app = apps::make_app(name, scale);
      ASSERT_NE(app, nullptr);
      EXPECT_EQ(app->name(), name);
      EXPECT_GT(app->shared_bytes(), 0u);
    }
  }
}

TEST(Registry, UnknownAppThrows) {
  EXPECT_THROW(apps::make_app("NoSuchApp", apps::Scale::kSmall), SimError);
}

TEST(Registry, LockGroupsCoverKnownApps) {
  for (const std::string& name : apps::app_names()) {
    const auto groups = apps::lock_groups(name, apps::Scale::kDefault, 16);
    EXPECT_FALSE(groups.empty()) << name;
    for (const auto& g : groups) {
      EXPECT_LE(g.lo, g.hi) << name << "/" << g.label;
      EXPECT_FALSE(g.label.empty());
    }
  }
}

TEST(Runner, RunsEveryProtocolOnASmallApp) {
  SystemParams params = small_params(4);
  for (const char* proto : {"AEC", "AEC-noLAP", "TreadMarks", "Munin-ERC"}) {
    const auto r = harness::run_experiment(proto, "FFT", apps::Scale::kSmall, params);
    EXPECT_TRUE(r.stats.result_valid) << proto;
    EXPECT_EQ(r.stats.num_procs, 4) << proto;
  }
}

TEST(Runner, UnknownProtocolThrows) {
  EXPECT_THROW(harness::run_experiment("Mystery", "FFT", apps::Scale::kSmall,
                                       small_params(2)),
               SimError);
}

TEST(Runner, DetailHandlesMatchProtocol) {
  SystemParams params = small_params(4);
  const auto a = harness::run_experiment("AEC", "IS", apps::Scale::kSmall, params);
  EXPECT_NE(a.aec, nullptr);
  EXPECT_EQ(a.tm, nullptr);
  const auto t = harness::run_experiment("TreadMarks", "IS", apps::Scale::kSmall, params);
  EXPECT_EQ(t.aec, nullptr);
  EXPECT_NE(t.tm, nullptr);
  const auto e = harness::run_experiment("Munin-ERC", "IS", apps::Scale::kSmall, params);
  EXPECT_NE(e.erc, nullptr);
}

TEST(LapReport, ScoresCollectedAndGrouped) {
  SystemParams params = small_params(4);
  const auto r = harness::run_experiment("AEC", "IS", apps::Scale::kSmall, params);
  const auto scores = harness::lap_scores_of(r);
  ASSERT_FALSE(scores.empty());
  const auto rows =
      harness::lap_rows(scores, apps::lock_groups("IS", apps::Scale::kSmall, 4));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GT(rows[0].lock_events, 0u);
  EXPECT_DOUBLE_EQ(rows[0].pct_of_total, 1.0);  // IS has a single lock
}

TEST(LapReport, GroupPercentagesSumToOne) {
  SystemParams params = small_params(4);
  const auto r = harness::run_experiment("AEC", "Ocean", apps::Scale::kSmall, params);
  const auto scores = harness::lap_scores_of(r);
  const auto rows =
      harness::lap_rows(scores, apps::lock_groups("Ocean", apps::Scale::kSmall, 4));
  double total = 0.0;
  for (const auto& row : rows) total += row.pct_of_total;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Format, PercentFormatting) {
  EXPECT_EQ(harness::pct(0.5), "50.0%");
  EXPECT_EQ(harness::pct(0.123, 2), "12.30%");
  EXPECT_EQ(harness::pct(0.0), "0.0%");
}

TEST(Format, BreakdownFigureNormalizesToFirstBar) {
  TimeBreakdown a;
  a.busy = 50;
  a.synch = 50;
  TimeBreakdown b;
  b.busy = 25;
  b.synch = 25;
  std::ostringstream os;
  harness::print_breakdown_figure(os, "t",
                                  {{"base", a, 100}, {"half", b, 50}});
  const std::string out = os.str();
  EXPECT_NE(out.find("100.0"), std::string::npos);
  EXPECT_NE(out.find("50.0"), std::string::npos);
  EXPECT_NE(out.find("base"), std::string::npos);
  EXPECT_NE(out.find("half"), std::string::npos);
}

TEST(Format, DiffTableHandlesEmptyStats) {
  std::ostringstream os;
  harness::print_diff_table(os, {harness::DiffRow{"empty", DiffStats{}}});
  EXPECT_NE(os.str().find("empty"), std::string::npos);  // no division crash
}

TEST(Format, LapTableShowsDashWithoutPredictions) {
  std::ostringstream os;
  harness::LapRow row;
  row.variable = "quiet lock";
  harness::print_lap_table(os, "app", {row});
  EXPECT_NE(os.str().find("-"), std::string::npos);
}

}  // namespace
}  // namespace aecdsm::test
