// Tests for the experiment harness: runner protocol routing, LAP score
// collection/grouping (Table 3 plumbing), formatters, and the application
// registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "harness/format.hpp"
#include "harness/lap_report.hpp"
#include "harness/runner.hpp"
#include "tests/test_util.hpp"

namespace aecdsm::test {
namespace {

TEST(Registry, AllAppsConstructAtBothScales) {
  for (const std::string& name : apps::app_names()) {
    for (const apps::Scale scale : {apps::Scale::kSmall, apps::Scale::kDefault}) {
      auto app = apps::make_app(name, scale);
      ASSERT_NE(app, nullptr);
      EXPECT_EQ(app->name(), name);
      EXPECT_GT(app->shared_bytes(), 0u);
    }
  }
}

TEST(Registry, UnknownAppThrows) {
  EXPECT_THROW(apps::make_app("NoSuchApp", apps::Scale::kSmall), SimError);
}

// The unknown-name error must teach the caller every valid spelling: all
// registered application names plus the synthetic `syn:` spec grammar
// (mirroring the policy registry's unknown-protocol error).
TEST(Registry, UnknownAppErrorListsEveryAppAndTheSpecGrammar) {
  for (const auto go : {+[] { apps::make_app("NoSuchApp", apps::Scale::kSmall); },
                        +[] { apps::lock_groups("NoSuchApp", apps::Scale::kSmall, 4); }}) {
    try {
      go();
      FAIL() << "unknown app accepted";
    } catch (const SimError& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("NoSuchApp"), std::string::npos) << msg;
      for (const std::string& name : apps::app_names()) {
        EXPECT_NE(msg.find(name), std::string::npos) << "missing " << name << ": " << msg;
      }
      EXPECT_NE(msg.find("syn:<pattern>"), std::string::npos) << msg;
      EXPECT_NE(msg.find("migratory"), std::string::npos) << msg;
    }
  }
}

// Every registered app (and a sample of synthetic specs) must expose lock
// groups that are well-formed at every scale and processor count: non-empty
// labels, lo <= hi, and pairwise non-overlapping id ranges.
TEST(Registry, LockGroupsWellFormedForEveryAppScaleAndNprocs) {
  std::vector<std::string> names = apps::app_names();
  names.push_back("syn:migratory/cs32/fan4/seed7");
  names.push_back("syn:hotspot/fan1/seed3");
  names.push_back("syn:mixed/fan256/seed5");
  for (const std::string& name : names) {
    for (const apps::Scale scale : {apps::Scale::kSmall, apps::Scale::kDefault}) {
      for (const int nprocs : {2, 4, 8, 16}) {
        auto groups = apps::lock_groups(name, scale, nprocs);
        ASSERT_FALSE(groups.empty()) << name;
        std::sort(groups.begin(), groups.end(),
                  [](const auto& a, const auto& b) { return a.lo < b.lo; });
        for (std::size_t i = 0; i < groups.size(); ++i) {
          EXPECT_FALSE(groups[i].label.empty()) << name;
          EXPECT_LE(groups[i].lo, groups[i].hi) << name << "/" << groups[i].label;
          if (i > 0) {
            EXPECT_LT(groups[i - 1].hi, groups[i].lo)
                << name << ": groups '" << groups[i - 1].label << "' and '"
                << groups[i].label << "' overlap";
          }
        }
      }
    }
  }
}

// The groups must also cover the lock-id space the app actually uses: every
// lock that shows up in an AEC run's LAP scores falls inside some group.
TEST(Registry, LockGroupsContainEveryObservedLock) {
  const SystemParams params = small_params(4);
  std::vector<std::string> names = apps::app_names();
  names.push_back("syn:mixed/fan6/seed23");
  for (const std::string& name : names) {
    const auto r = harness::run_experiment("AEC", name, apps::Scale::kSmall, params);
    ASSERT_TRUE(r.stats.result_valid) << name;
    const auto groups = apps::lock_groups(name, apps::Scale::kSmall, 4);
    for (const auto& [lock, scores] : harness::lap_scores_of(r)) {
      bool covered = false;
      for (const auto& g : groups) {
        covered = covered || (lock >= g.lo && lock <= g.hi);
      }
      EXPECT_TRUE(covered) << name << ": lock " << lock << " in no group";
    }
  }
}

TEST(Runner, RunsEveryProtocolOnASmallApp) {
  SystemParams params = small_params(4);
  for (const char* proto : {"AEC", "AEC-noLAP", "TreadMarks", "Munin-ERC"}) {
    const auto r = harness::run_experiment(proto, "FFT", apps::Scale::kSmall, params);
    EXPECT_TRUE(r.stats.result_valid) << proto;
    EXPECT_EQ(r.stats.num_procs, 4) << proto;
  }
}

TEST(Runner, UnknownProtocolThrows) {
  EXPECT_THROW(harness::run_experiment("Mystery", "FFT", apps::Scale::kSmall,
                                       small_params(2)),
               SimError);
}

TEST(Runner, DetailHandlesMatchProtocol) {
  SystemParams params = small_params(4);
  const auto a = harness::run_experiment("AEC", "IS", apps::Scale::kSmall, params);
  EXPECT_NE(a.aec, nullptr);
  EXPECT_EQ(a.tm, nullptr);
  const auto t = harness::run_experiment("TreadMarks", "IS", apps::Scale::kSmall, params);
  EXPECT_EQ(t.aec, nullptr);
  EXPECT_NE(t.tm, nullptr);
  const auto e = harness::run_experiment("Munin-ERC", "IS", apps::Scale::kSmall, params);
  EXPECT_NE(e.erc, nullptr);
}

TEST(LapReport, ScoresCollectedAndGrouped) {
  SystemParams params = small_params(4);
  const auto r = harness::run_experiment("AEC", "IS", apps::Scale::kSmall, params);
  const auto scores = harness::lap_scores_of(r);
  ASSERT_FALSE(scores.empty());
  const auto rows =
      harness::lap_rows(scores, apps::lock_groups("IS", apps::Scale::kSmall, 4));
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_GT(rows[0].lock_events, 0u);
  EXPECT_DOUBLE_EQ(rows[0].pct_of_total, 1.0);  // IS has a single lock
}

TEST(LapReport, GroupPercentagesSumToOne) {
  SystemParams params = small_params(4);
  const auto r = harness::run_experiment("AEC", "Ocean", apps::Scale::kSmall, params);
  const auto scores = harness::lap_scores_of(r);
  const auto rows =
      harness::lap_rows(scores, apps::lock_groups("Ocean", apps::Scale::kSmall, 4));
  double total = 0.0;
  for (const auto& row : rows) total += row.pct_of_total;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Format, PercentFormatting) {
  EXPECT_EQ(harness::pct(0.5), "50.0%");
  EXPECT_EQ(harness::pct(0.123, 2), "12.30%");
  EXPECT_EQ(harness::pct(0.0), "0.0%");
}

TEST(Format, BreakdownFigureNormalizesToFirstBar) {
  TimeBreakdown a;
  a.busy = 50;
  a.synch = 50;
  TimeBreakdown b;
  b.busy = 25;
  b.synch = 25;
  std::ostringstream os;
  harness::print_breakdown_figure(os, "t",
                                  {{"base", a, 100}, {"half", b, 50}});
  const std::string out = os.str();
  EXPECT_NE(out.find("100.0"), std::string::npos);
  EXPECT_NE(out.find("50.0"), std::string::npos);
  EXPECT_NE(out.find("base"), std::string::npos);
  EXPECT_NE(out.find("half"), std::string::npos);
}

TEST(Format, DiffTableHandlesEmptyStats) {
  std::ostringstream os;
  harness::print_diff_table(os, {harness::DiffRow{"empty", DiffStats{}}});
  EXPECT_NE(os.str().find("empty"), std::string::npos);  // no division crash
}

TEST(Format, LapTableShowsDashWithoutPredictions) {
  std::ostringstream os;
  harness::LapRow row;
  row.variable = "quiet lock";
  harness::print_lap_table(os, "app", {row});
  EXPECT_NE(os.str().find("-"), std::string::npos);
}

}  // namespace
}  // namespace aecdsm::test
