// Conformance suite for the policy engine: every policy in the registry —
// the three legacy protocol presets, the AEC-noLAP ablation and the hybrid
// AEC-TmkBarrier — must honour the same observable contract regardless of
// which engine family interprets it: lock acquire/release gives mutual
// exclusion and release-to-acquire visibility, barriers make all prior
// writes visible, diff accounting is internally consistent, real apps pass
// their sequential oracles, and the same seed reproduces the run cycle for
// cycle. Plus the registry itself: unknown names fail with every registered
// name in the message, and a per-region policy built from RegionRule runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "common/check.hpp"
#include "dsm/shared_array.hpp"
#include "harness/json_out.hpp"
#include "policy/instance.hpp"
#include "policy/policy.hpp"
#include "tests/test_util.hpp"

namespace aecdsm::test {
namespace {

std::string safe_name(std::string s) {
  std::replace(s.begin(), s.end(), '-', '_');
  return s;
}

class PolicyConformance : public ::testing::TestWithParam<std::string> {};

TEST_P(PolicyConformance, AcquireReleaseGivesExclusionAndVisibility) {
  // Lock-protected read-modify-write of one shared word: any lost update
  // means a release's writes were not visible to the next acquirer.
  dsm::SharedArray<std::uint32_t> counter;
  constexpr int kIters = 8;
  LambdaApp app(
      "policy_counter", 4096,
      [&](dsm::Machine& m) { counter = dsm::SharedArray<std::uint32_t>::alloc(m, 1); },
      [&](dsm::Context& ctx) {
        for (int i = 0; i < kIters; ++i) {
          ctx.lock(0);
          counter.put(ctx, 0, counter.get(ctx, 0) + 1);
          ctx.unlock(0);
          ctx.compute(50);
        }
        ctx.barrier();
        if (ctx.pid() == 0) {
          app.set_ok(counter.get(ctx, 0) ==
                     static_cast<std::uint32_t>(kIters * ctx.nprocs()));
        }
      });
  const RunStats stats = run_protocol(app, GetParam(), small_params());
  EXPECT_TRUE(stats.result_valid) << "lost update under " << GetParam();
  EXPECT_EQ(stats.sync.lock_acquires, static_cast<std::uint64_t>(kIters * 4));
  EXPECT_EQ(stats.sync.barrier_events, 1u);
}

TEST_P(PolicyConformance, BarrierMakesAllPriorWritesVisible) {
  // Each processor writes its own chunk before the barrier and audits its
  // neighbour's after it — every word must have crossed, whichever of
  // directive routing, notice exchange or flush-gather the policy uses.
  dsm::SharedArray<std::uint32_t> data;
  dsm::SharedArray<std::uint32_t> verdict;
  constexpr int kWords = 96;  // ~1.5 pages per processor at 256-byte pages
  LambdaApp app(
      "policy_exchange", 64 * 1024,
      [&](dsm::Machine& m) {
        data = dsm::SharedArray<std::uint32_t>::alloc(m, kWords * 4);
        verdict = dsm::SharedArray<std::uint32_t>::alloc(m, 4);
      },
      [&](dsm::Context& ctx) {
        const int me = ctx.pid();
        for (int i = 0; i < kWords; ++i) {
          data.put(ctx, static_cast<std::size_t>(me * kWords + i),
                   static_cast<std::uint32_t>(me * 100000 + i));
        }
        ctx.barrier();
        const int nb = (me + 1) % ctx.nprocs();
        bool good = true;
        for (int i = 0; i < kWords; ++i) {
          good &= data.get(ctx, static_cast<std::size_t>(nb * kWords + i)) ==
                  static_cast<std::uint32_t>(nb * 100000 + i);
        }
        verdict.put(ctx, static_cast<std::size_t>(me), good ? 1 : 0);
        ctx.barrier();
        if (ctx.pid() == 0) {
          bool all = true;
          for (int p = 0; p < ctx.nprocs(); ++p) {
            all &= verdict.get(ctx, static_cast<std::size_t>(p)) == 1;
          }
          app.set_ok(all);
        }
      });
  const RunStats stats = run_protocol(app, GetParam(), small_params());
  EXPECT_TRUE(stats.result_valid) << "stale read after barrier under " << GetParam();
  EXPECT_EQ(stats.sync.barrier_events, 2u);
}

TEST_P(PolicyConformance, DiffStatsAreInternallyConsistent) {
  auto app = apps::make_app("IS", apps::Scale::kSmall);
  const RunStats stats = run_protocol(*app, GetParam(), small_params());
  ASSERT_TRUE(stats.result_valid);
  // A write-shared app makes every engine create diffs; each created diff
  // costs cycles and encodes at least one byte.
  EXPECT_GT(stats.diffs.diffs_created, 0u);
  EXPECT_GT(stats.diffs.diff_bytes, 0u);
  EXPECT_GT(stats.diffs.create_cycles, 0u);
  // Hidden cycles are a subset of the respective totals.
  EXPECT_LE(stats.diffs.create_hidden_cycles, stats.diffs.create_cycles);
  EXPECT_LE(stats.diffs.apply_hidden_cycles, stats.diffs.apply_cycles);
  if (stats.diffs.diffs_applied > 0) {
    EXPECT_GT(stats.diffs.apply_cycles, 0u);
  } else {
    EXPECT_EQ(stats.diffs.apply_cycles, 0u);
  }
}

TEST_P(PolicyConformance, RealAppsPassTheirOracles) {
  for (const char* name : {"IS", "Water-sp"}) {
    auto app = apps::make_app(name, apps::Scale::kSmall);
    const RunStats stats = run_protocol(*app, GetParam(), small_params());
    EXPECT_TRUE(stats.result_valid) << name << " under " << GetParam();
  }
}

TEST_P(PolicyConformance, SameSeedReproducesTheRunExactly) {
  auto run_once = [&] {
    auto app = apps::make_app("IS", apps::Scale::kSmall);
    return run_protocol(*app, GetParam(), small_params(), /*seed=*/7);
  };
  const RunStats a = run_once();
  const RunStats b = run_once();
  ASSERT_TRUE(a.result_valid);
  // Byte-compare the full serialization: finish time, traffic, diff and
  // fault accounting, and every per-processor bucket.
  EXPECT_EQ(harness::to_json(a).dump(), harness::to_json(b).dump());
}

INSTANTIATE_TEST_SUITE_P(
    Registry, PolicyConformance, ::testing::ValuesIn(policy::registered_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return safe_name(info.param);
    });

TEST(PolicyRegistry, UnknownNameErrorListsEveryRegisteredPolicy) {
  try {
    policy::make_instance("NoSuchProtocol");
    FAIL() << "unknown policy name accepted";
  } catch (const SimError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("NoSuchProtocol"), std::string::npos) << msg;
    for (const std::string& name : policy::registered_names()) {
      EXPECT_NE(msg.find(name), std::string::npos)
          << "'" << name << "' missing from: " << msg;
    }
  }
}

TEST(PolicyRegistry, HybridPresetDiffersFromItsParentsOnTheCacheKey) {
  const policy::ConsistencyPolicy* hybrid = policy::find_policy("AEC-TmkBarrier");
  ASSERT_NE(hybrid, nullptr);
  for (const char* parent : {"AEC", "TreadMarks"}) {
    const policy::ConsistencyPolicy* p = policy::find_policy(parent);
    ASSERT_NE(p, nullptr);
    EXPECT_NE(hybrid->cache_key(), p->cache_key()) << parent;
  }
}

TEST(PolicyRegistry, PerRegionRuleRunsAndKeepsTheOracle) {
  // A custom (unregistered) policy: stock AEC with the propagation axis
  // flipped to invalidate for the first half of the shared image only —
  // "resolved per-region at runtime" end to end.
  policy::ConsistencyPolicy pol = *policy::find_policy("AEC");
  pol.name = "AEC-halfInvalidate";
  pol.regions.push_back({0, 31, policy::Propagation::kInvalidate});
  policy::validate(pol);
  EXPECT_EQ(pol.propagation_for(0), policy::Propagation::kInvalidate);
  EXPECT_EQ(pol.propagation_for(31), policy::Propagation::kInvalidate);
  EXPECT_EQ(pol.propagation_for(32), policy::Propagation::kUpdate);

  policy::ProtocolInstance inst(pol);
  auto app = apps::make_app("IS", apps::Scale::kSmall);
  const RunStats stats = run_one(*app, inst.suite(), small_params(), 42);
  EXPECT_TRUE(stats.result_valid);
  EXPECT_EQ(stats.protocol, "AEC-halfInvalidate");
}

}  // namespace
}  // namespace aecdsm::test
