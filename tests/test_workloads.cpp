// Conformance suite for the `syn:` workload grammar: every generated
// workload in the test corpus must pass its embedded sequential oracle
// under every registered policy preset, byte-identically on the sequential
// and the 4-thread parallel engine. Plus the harness integration contracts:
// spec spellings alias one cell-cache entry, and warm batch runs reproduce
// cold artifacts byte for byte.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "apps/synthetic/workload.hpp"
#include "harness/batch.hpp"
#include "harness/cellcache.hpp"
#include "harness/json_out.hpp"
#include "harness/runner.hpp"
#include "policy/policy.hpp"
#include "tests/test_util.hpp"

namespace aecdsm::test {
namespace {

namespace fs = std::filesystem;

/// One spec per sharing pattern, plus a single-lock long-CS stress spelling.
std::vector<std::string> test_corpus() {
  return {
      "syn:migratory/cs32/fan4/seed7",
      "syn:producer-consumer/fan4/seed3",
      "syn:read-mostly/fan4/cells96/seed13",
      "syn:hotspot/cs64/fan8/seed17",
      "syn:mixed/fan6/seed23",
      "syn:read-mostly/cs512/fan1/seed31",
  };
}

/// Full serialization of everything a cell produces (the byte-identity
/// contract's unit of comparison).
std::string result_fingerprint(const harness::ExperimentResult& r) {
  std::ostringstream os;
  os << harness::to_json(r.stats).dump();
  for (const auto& [lock, s] : r.lap_scores) {
    os << "|" << lock << ":" << s.acquire_events << "," << s.lap.predictions
       << "," << s.lap.hits;
  }
  return os.str();
}

struct ConformanceCase {
  std::string spec;
  std::string policy;
};

class WorkloadConformance : public ::testing::TestWithParam<ConformanceCase> {};

TEST_P(WorkloadConformance, OracleHoldsAndEngineThreadsAreByteIdentical) {
  const auto& [spec, policy] = GetParam();
  const SystemParams params = small_params(4);
  const auto seq = harness::run_experiment(policy, spec, apps::Scale::kSmall,
                                           params, /*seed=*/7);
  EXPECT_TRUE(seq.stats.result_valid) << spec << " under " << policy;
  EXPECT_EQ(seq.stats.app,
            apps::synthetic::WorkloadSpec::parse(spec).fingerprint());

  const auto par = harness::run_experiment(policy, spec, apps::Scale::kSmall,
                                           params, /*seed=*/7,
                                           /*wall_timeout_sec=*/0.0,
                                           /*recorder=*/nullptr,
                                           /*engine_threads=*/4);
  EXPECT_TRUE(par.stats.result_valid) << spec << " under " << policy;
  EXPECT_EQ(result_fingerprint(par), result_fingerprint(seq))
      << spec << " under " << policy << " diverges on 4 engine threads";
}

std::vector<ConformanceCase> conformance_cases() {
  std::vector<ConformanceCase> cases;
  for (const std::string& spec : test_corpus()) {
    for (const std::string& pol : policy::registered_names()) {
      cases.push_back(ConformanceCase{spec, pol});
    }
  }
  return cases;
}

std::string conformance_name(const ::testing::TestParamInfo<ConformanceCase>& info) {
  const auto& spec = info.param.spec;
  // "syn:hotspot/cs64/fan8/seed17" -> "hotspot_cs64_fan8_seed17"
  std::string s = spec.substr(spec.find(':') + 1) + "_" + info.param.policy;
  for (char& ch : s) {
    if (ch == '/' || ch == '-') ch = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(Corpus, WorkloadConformance,
                         ::testing::ValuesIn(conformance_cases()),
                         conformance_name);

// ---- harness integration ----------------------------------------------------

harness::ExperimentCell syn_cell(const std::string& spec) {
  harness::ExperimentPlan plan;
  plan.add("AEC", spec, apps::Scale::kSmall, small_params(4), 7);
  return plan.cells[0];
}

TEST(WorkloadCache, SpellingsOfOneSpecShareACacheKey) {
  const std::string canonical = harness::CellCache::cell_hash(
      syn_cell("syn:hotspot/cs64/fan4/seed5"));
  EXPECT_EQ(harness::CellCache::cell_hash(syn_cell("syn:hotspot/seed5")),
            canonical);
  EXPECT_EQ(harness::CellCache::cell_hash(
                syn_cell("syn:hotspot/seed5/fan4/cs64/read10")),
            canonical);
  EXPECT_NE(harness::CellCache::cell_hash(syn_cell("syn:hotspot/seed6")),
            canonical);
  EXPECT_NE(harness::CellCache::cell_hash(syn_cell("syn:hotspot/seed5/cs65")),
            canonical);
  EXPECT_NE(harness::CellCache::cell_hash(syn_cell("syn:migratory/seed5")),
            canonical);
}

TEST(WorkloadCache, MalformedSpecsFallBackToTheirRawSpelling) {
  // cell_key must not throw on a malformed spec (the parse error surfaces
  // at make_app); distinct raw spellings must not alias.
  EXPECT_NE(harness::CellCache::cell_hash(syn_cell("syn:bogus/a")),
            harness::CellCache::cell_hash(syn_cell("syn:bogus/b")));
}

std::string fresh_cache_dir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() / ("aecdsm_test_cache_" + tag);
  fs::remove_all(dir);
  return dir.string();
}

// A warm batch over spec-named cells must simulate nothing and reproduce
// the cold artifact byte for byte — even when the warm runner uses the
// parallel engine (engine_threads is deliberately not part of the key).
TEST(WorkloadCache, WarmBatchIsByteIdenticalAcrossEngineThreads) {
  harness::ExperimentPlan plan;
  plan.name = "workloads-test";
  for (const char* spec :
       {"syn:migratory/cs32/fan4/seed7", "syn:hotspot/cs64/fan8/seed17"}) {
    for (const char* pol : {"AEC", "TreadMarks"}) {
      plan.add(pol, spec, apps::Scale::kSmall, small_params(4), 7);
    }
  }

  harness::BatchOptions cold_opts;
  cold_opts.jobs = 2;
  cold_opts.json_path = "off";
  cold_opts.cache_dir = fresh_cache_dir("workloads");
  harness::BatchRunner cold(cold_opts);
  const auto cold_results = cold.run(plan);
  EXPECT_EQ(cold.last_run_info().simulated, plan.cells.size());

  harness::BatchOptions warm_opts = cold_opts;
  warm_opts.engine_threads = 4;
  harness::BatchRunner warm(warm_opts);
  const auto warm_results = warm.run(plan);
  EXPECT_EQ(warm.last_run_info().cache_hits, plan.cells.size());
  EXPECT_EQ(warm.last_run_info().simulated, 0u);

  EXPECT_EQ(harness::BatchRunner::document(plan, warm_results).dump(),
            harness::BatchRunner::document(plan, cold_results).dump());
}

TEST(WorkloadRegistry, DefaultCorpusConstructsAtBothScales) {
  for (const std::string& spec : apps::synthetic::default_corpus()) {
    for (const apps::Scale scale : {apps::Scale::kSmall, apps::Scale::kDefault}) {
      auto app = apps::make_app(spec, scale);
      ASSERT_NE(app, nullptr) << spec;
      EXPECT_EQ(app->name(),
                apps::synthetic::WorkloadSpec::parse(spec).fingerprint());
      EXPECT_GT(app->shared_bytes(), 0u);
    }
  }
}

}  // namespace
}  // namespace aecdsm::test
