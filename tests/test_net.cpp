// Unit tests for the wormhole mesh interconnect: XY routing, the analytic
// latency formula, link contention serialization, NIC injection
// serialization, and self-delivery.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>

#include "common/check.hpp"
#include "common/params.hpp"
#include "net/mesh.hpp"
#include "sim/engine.hpp"

namespace aecdsm::test {
namespace {

class MeshTest : public ::testing::Test {
 protected:
  SystemParams params_;  // 16 procs, 4x4 mesh
  sim::Engine engine_;
};

TEST_F(MeshTest, HopCountsAreManhattanDistance) {
  net::MeshNetwork net(engine_, params_);
  EXPECT_EQ(net.hop_count(0, 0), 0);
  EXPECT_EQ(net.hop_count(0, 1), 1);
  EXPECT_EQ(net.hop_count(0, 3), 3);
  EXPECT_EQ(net.hop_count(0, 15), 6);   // (0,0)->(3,3)
  EXPECT_EQ(net.hop_count(5, 10), 2);   // (1,1)->(2,2)
  EXPECT_EQ(net.hop_count(12, 3), 6);   // (0,3)->(3,0)
  EXPECT_EQ(net.hop_count(3, 12), net.hop_count(12, 3));
}

TEST_F(MeshTest, UncontendedLatencyFormula) {
  net::MeshNetwork net(engine_, params_);
  const std::size_t bytes = 4096;
  const std::size_t words = bytes / kWordBytes;
  const Cycles expected = 2 * params_.io_transfer_cycles(words) +
                          6 * (params_.switch_cycles + params_.wire_cycles) +
                          params_.network_payload_cycles(bytes);
  EXPECT_EQ(net.uncontended_latency(0, 15, bytes), expected);
  EXPECT_EQ(net.uncontended_latency(0, 0, bytes), 0u);
}

TEST_F(MeshTest, DeliveryMatchesUncontendedLatency) {
  net::MeshNetwork net(engine_, params_);
  Cycles arrival = 0;
  net.send(0, 15, 256, [&] { arrival = engine_.now(); });
  engine_.run();
  EXPECT_EQ(arrival, net.uncontended_latency(0, 15, 256));
}

TEST_F(MeshTest, SharedLinkSerializesMessages) {
  net::MeshNetwork net(engine_, params_);
  // Two large messages over the same first link (0 -> 1 -> ...).
  Cycles first = 0, second = 0;
  net.send(0, 3, 4096, [&] { first = engine_.now(); });
  net.send(0, 3, 4096, [&] { second = engine_.now(); });
  engine_.run();
  EXPECT_GT(second, first);
  // The second waits at least a payload serialization behind the first.
  EXPECT_GE(second - first, params_.network_payload_cycles(4096));
}

TEST_F(MeshTest, DisjointPathsDoNotContend) {
  net::MeshNetwork net(engine_, params_);
  Cycles a = 0, b = 0;
  net.send(0, 1, 1024, [&] { a = engine_.now(); });
  net.send(14, 15, 1024, [&] { b = engine_.now(); });
  engine_.run();
  EXPECT_EQ(a, net.uncontended_latency(0, 1, 1024));
  EXPECT_EQ(b, net.uncontended_latency(14, 15, 1024));
}

TEST_F(MeshTest, SelfSendDeliversImmediately) {
  net::MeshNetwork net(engine_, params_);
  Cycles arrival = 123;
  net.send(7, 7, 4096, [&] { arrival = engine_.now(); });
  engine_.run();
  EXPECT_EQ(arrival, 0u);
}

TEST_F(MeshTest, StatsCountMessagesAndBytes) {
  net::MeshNetwork net(engine_, params_);
  net.send(0, 1, 100, [] {});
  net.send(2, 3, 200, [] {});
  net.send(4, 4, 50, [] {});
  engine_.run();
  EXPECT_EQ(net.stats().messages, 3u);
  EXPECT_EQ(net.stats().bytes, 350u);
}

TEST_F(MeshTest, SameSourceDestinationIsFifo) {
  net::MeshNetwork net(engine_, params_);
  std::vector<int> order;
  net.send(0, 15, 64, [&] { order.push_back(1); });
  net.send(0, 15, 64, [&] { order.push_back(2); });
  net.send(0, 15, 64, [&] { order.push_back(3); });
  engine_.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(MeshTest, BiggerMessagesTakeLonger) {
  net::MeshNetwork net(engine_, params_);
  EXPECT_LT(net.uncontended_latency(0, 5, 64), net.uncontended_latency(0, 5, 4096));
}

TEST_F(MeshTest, SmallMeshWorks) {
  SystemParams params;
  params.num_procs = 4;
  params.mesh_width = 2;
  net::MeshNetwork net(engine_, params);
  EXPECT_EQ(net.hop_count(0, 3), 2);
  Cycles arrival = 0;
  net.send(0, 3, 128, [&] { arrival = engine_.now(); });
  engine_.run();
  EXPECT_EQ(arrival, net.uncontended_latency(0, 3, 128));
}

TEST_F(MeshTest, RejectsGeometryThatDoesNotTile) {
  SystemParams params;
  params.num_procs = 16;
  params.mesh_width = 5;
  try {
    net::MeshNetwork net(engine_, params);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    // The validation error names the offending knobs.
    EXPECT_NE(std::string(e.what()).find("num_procs"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("mesh_width=5"), std::string::npos);
  }
}

/// Structural invariants on every k x k sweep geometry: XY-routed hop
/// counts are the Manhattan distance, symmetric, and triangle-bounded; the
/// analytic latency is symmetric, monotone in distance, and delivery of a
/// real message matches it exactly (spot-checked on the corner-to-corner
/// worst case, which crosses 2(k-1) links).
class MeshKbyK : public ::testing::TestWithParam<int> {};

TEST_P(MeshKbyK, RoutingAndLatencyInvariantsHold) {
  const int k = GetParam();
  SystemParams params;
  params.num_procs = k * k;
  params.mesh_width = k;
  ASSERT_TRUE(params.validate().empty());
  sim::Engine engine;
  net::MeshNetwork net(engine, params);

  auto coord = [&](int p) { return std::pair<int, int>{p % k, p / k}; };
  const int n = params.num_procs;
  const int far = n - 1;  // (k-1, k-1)
  EXPECT_EQ(net.hop_count(0, far), 2 * (k - 1));
  // Hop counts: Manhattan, symmetric, zero only on the diagonal. Sampling
  // node 0, the corners and a mid node against everyone keeps the check
  // O(k^2) instead of O(k^4) at k = 32.
  for (const int a : {0, k - 1, n - k, far, (n / 2)}) {
    for (int b = 0; b < n; ++b) {
      const auto [ax, ay] = coord(a);
      const auto [bx, by] = coord(b);
      ASSERT_EQ(net.hop_count(a, b), std::abs(ax - bx) + std::abs(ay - by));
      ASSERT_EQ(net.hop_count(a, b), net.hop_count(b, a));
      ASSERT_EQ(net.hop_count(a, b) == 0, a == b);
    }
  }
  // Latency: symmetric, strictly increasing per extra hop (fixed payload),
  // and the minimum cross-node latency is the one-hop neighbour cost.
  const std::size_t bytes = 256;
  Cycles min_cross = net.uncontended_latency(0, 1, bytes);
  for (int b = 1; b < n; ++b) {
    ASSERT_EQ(net.uncontended_latency(0, b, bytes),
              net.uncontended_latency(b, 0, bytes));
    ASSERT_GE(net.uncontended_latency(0, b, bytes), min_cross);
  }
  EXPECT_LT(net.uncontended_latency(0, 1, bytes),
            net.uncontended_latency(0, far, bytes));
  // A delivered message observes exactly the analytic uncontended latency.
  Cycles arrival = 0;
  net.send(0, far, bytes, [&] { arrival = engine.now(); });
  engine.run();
  EXPECT_EQ(arrival, net.uncontended_latency(0, far, bytes));
}

INSTANTIATE_TEST_SUITE_P(Geometries, MeshKbyK, ::testing::Values(2, 4, 8, 16, 32),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "k" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace aecdsm::test
