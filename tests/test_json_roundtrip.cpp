// Property/fuzz tests for the JSON layer bench_diff and the cell cache
// depend on: parse → dump must round-trip randomly generated documents
// byte-identically (nesting, escapes, every numeric lexical class), numbers
// must keep their lexical class, and malformed input must be rejected with
// a SimError, never accepted or crashed on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "harness/json_out.hpp"

namespace aecdsm::test {
namespace {

using harness::json::Value;

/// Random string over the full byte alphabet the writer handles: printable
/// ASCII, the escaped specials, control characters (emitted as \u00XX) and
/// raw high bytes (UTF-8 fragments pass through untouched).
std::string random_string(Rng& rng) {
  static const char* kSpecials = "\"\\\n\t\r\b\f";
  std::string s;
  const std::size_t len = rng.next_below(12);
  for (std::size_t i = 0; i < len; ++i) {
    switch (rng.next_below(4)) {
      case 0: s += static_cast<char>(' ' + rng.next_below(95)); break;
      case 1: s += kSpecials[rng.next_below(std::strlen(kSpecials))]; break;
      case 2: s += static_cast<char>(1 + rng.next_below(0x1F)); break;
      default: s += static_cast<char>(0x80 + rng.next_below(0x80)); break;
    }
  }
  return s;
}

double random_double(Rng& rng) {
  for (;;) {
    double d;
    const std::uint64_t bits = rng.next_u64();
    static_assert(sizeof(d) == sizeof(bits));
    std::memcpy(&d, &bits, sizeof(d));
    // Finite and nonzero: NaN/inf have no JSON form, and -0.0 prints as
    // "-0", which re-parses as the integer 0 by design (lexical classes).
    if (std::isfinite(d) && d != 0.0) return d;
  }
}

Value random_value(Rng& rng, int depth) {
  const std::uint64_t pick = rng.next_below(depth > 0 ? 8 : 6);
  switch (pick) {
    case 0: return Value();
    case 1: return Value(rng.next_below(2) == 0);
    case 2: return Value(static_cast<std::int64_t>(rng.next_u64()));
    case 3: return Value(rng.next_u64());
    case 4: return Value(random_double(rng));
    case 5: return Value(random_string(rng));
    case 6: {
      Value arr = Value::array();
      const std::size_t n = rng.next_below(5);
      for (std::size_t i = 0; i < n; ++i) arr.append(random_value(rng, depth - 1));
      return arr;
    }
    default: {
      Value obj = Value::object();
      const std::size_t n = rng.next_below(5);
      for (std::size_t i = 0; i < n; ++i) {
        obj[random_string(rng)] = random_value(rng, depth - 1);
      }
      return obj;
    }
  }
}

TEST(JsonRoundTrip, RandomDocumentsSurviveParseDumpByteIdentically) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed);
    const Value v = random_value(rng, 4);
    const std::string compact = v.dump(-1);
    const std::string pretty = v.dump(0);
    EXPECT_EQ(Value::parse(compact).dump(-1), compact) << "seed " << seed;
    EXPECT_EQ(Value::parse(pretty).dump(0), pretty) << "seed " << seed;
    // Whitespace is the only difference between the two forms.
    EXPECT_EQ(Value::parse(pretty).dump(-1), compact) << "seed " << seed;
  }
}

TEST(JsonRoundTrip, NumbersKeepTheirLexicalClass) {
  EXPECT_EQ(Value::parse("7").kind(), Value::Kind::kUint);
  EXPECT_EQ(Value::parse("-2").kind(), Value::Kind::kInt);
  EXPECT_EQ(Value::parse("1.5").kind(), Value::Kind::kDouble);
  EXPECT_EQ(Value::parse("1e3").kind(), Value::Kind::kDouble);
  EXPECT_EQ(Value::parse("-0.125E-2").kind(), Value::Kind::kDouble);
  // The full uint64 range survives (doubles could not carry this exactly).
  EXPECT_EQ(Value::parse("18446744073709551615").as_uint(),
            18446744073709551615ULL);
  EXPECT_EQ(Value::parse("-9223372036854775808").as_int(),
            std::numeric_limits<std::int64_t>::min());
  // Lexical stability of the text itself.
  for (const char* text : {"7", "-2", "1.5", "0.6", "1e+300", "-0.125"}) {
    EXPECT_EQ(Value::parse(text).dump(-1), text);
  }
}

TEST(JsonRoundTrip, EscapesRoundTrip) {
  EXPECT_EQ(Value::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Value::parse("\"\\u0009\"").as_string(), "\t");
  EXPECT_EQ(Value::parse("\"\\b\\f\\/\"").as_string(), "\b\f/");
  Value v(std::string("ctrl:\x01\x02 tab:\t nl:\n quote:\" back:\\"));
  EXPECT_EQ(Value::parse(v.dump(-1)).as_string(), v.as_string());
}

TEST(JsonRoundTrip, MalformedInputIsRejectedNotAccepted) {
  const char* kBad[] = {
      "",                      // empty input
      "{",                     // unterminated object
      "[1,]",                  // trailing comma
      "{\"a\":1,}",            // trailing comma in object
      "{\"a\" 1}",             // missing colon
      "[1 2]",                 // missing comma
      "tru",                   // truncated literal
      "truex",                 // literal with trailing garbage
      "\"abc",                 // unterminated string
      "\"\\x\"",               // unknown escape
      "\"\\u12\"",             // truncated \u escape
      "\"\\uZZZZ\"",           // non-hex \u escape
      "\"\\u0080\"",           // beyond the writer's ASCII escape range
      "1.2.3",                 // malformed number
      "1e",                    // dangling exponent
      "--1",                   // double sign
      "{} x",                  // trailing garbage
      "[1] 2",                 // trailing garbage after array
      "{\"a\":}",              // missing value
      "[,1]",                  // leading comma
  };
  for (const char* text : kBad) {
    EXPECT_THROW(Value::parse(text), SimError) << "accepted: " << text;
  }
}

TEST(JsonRoundTrip, DeepNestingRoundTrips) {
  std::string text = "1";
  for (int i = 0; i < 64; ++i) text = "[" + text + "]";
  EXPECT_EQ(Value::parse(text).dump(-1), text);
  std::string obj = "0";
  for (int i = 0; i < 32; ++i) obj = "{\"k\":" + obj + "}";
  EXPECT_EQ(Value::parse(obj).dump(-1), obj);
}

TEST(JsonRoundTrip, DuplicateKeysCollapseToTheLastValue) {
  // The writer never emits duplicates; on input, last one wins (same as
  // building the Value through operator[]).
  const Value v = Value::parse("{\"a\":1,\"a\":2}");
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.at("a").as_uint(), 2u);
}

}  // namespace
}  // namespace aecdsm::test
