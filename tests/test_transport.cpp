// Tests for deterministic fault injection and the reliable transport:
// per-link fault schedules that replay exactly under a fixed seed, drop /
// duplicate / delay / reorder recovery, the exponential retransmit backoff
// schedule, receiver-side dedup and in-order release, node pause windows,
// wall-clock timeouts, and whole-run byte-identical determinism (and
// graceful completion) of every application under a lossy mesh.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/params.hpp"
#include "harness/json_out.hpp"
#include "harness/runner.hpp"
#include "net/fault.hpp"
#include "net/mesh.hpp"
#include "net/transport.hpp"
#include "sim/engine.hpp"
#include "tests/test_util.hpp"

namespace aecdsm::test {
namespace {

SystemParams faulty_params(double drop, std::uint64_t fault_seed = 7) {
  SystemParams p = small_params(4);
  p.faults.drop_rate = drop;
  p.faults.seed = fault_seed;
  return p;
}

TEST(FaultParams, ValidationRejectsBadRatesAndCertainLoss) {
  EXPECT_TRUE(SystemParams{}.validate().empty());
  {
    SystemParams p = faulty_params(0.05);
    EXPECT_TRUE(p.validate().empty()) << p.validate();
  }
  {
    SystemParams p = faulty_params(1.0);  // would retransmit forever
    EXPECT_FALSE(p.validate().empty());
  }
  {
    SystemParams p = faulty_params(-0.1);
    EXPECT_FALSE(p.validate().empty());
  }
  {
    SystemParams p = faulty_params(0.05);
    p.faults.retransmit_timeout_cycles = 0;
    EXPECT_FALSE(p.validate().empty());
  }
  {
    SystemParams p = small_params(4);
    p.faults.pauses.push_back({/*node=*/99, 0, 10});  // outside [0, num_procs)
    EXPECT_FALSE(p.validate().empty());
  }
  {
    SystemParams p = small_params(4);
    p.faults.crashes.push_back({/*node=*/0, 0, 10});  // node 0 may not crash
    EXPECT_FALSE(p.validate().empty());
  }
  {
    SystemParams p = small_params(4);
    p.faults.crashes.push_back({/*node=*/1, /*at_cycle=*/100, /*cycles=*/500});
    p.faults.crashes.push_back({/*node=*/1, /*at_cycle=*/400, /*cycles=*/100});
    EXPECT_FALSE(p.validate().empty());  // overlapping windows on node 1
  }
  {
    SystemParams p = small_params(4);
    p.faults.crashes.push_back({/*node=*/1, /*at_cycle=*/100, /*cycles=*/200});
    p.faults.crashes.push_back({/*node=*/1, /*at_cycle=*/400, /*cycles=*/100});
    EXPECT_TRUE(p.validate().empty()) << p.validate();  // disjoint is fine
    p.faults.suspect_after = 0;
    EXPECT_FALSE(p.validate().empty());
  }
}

TEST(FaultParams, DefaultIsDisabledAndOmittedFromJson) {
  const SystemParams p;
  EXPECT_FALSE(p.faults.any());
  // The params JSON must not change for fault-free runs: the committed
  // bench_all baseline (and every cell cache key) depends on it.
  EXPECT_EQ(harness::to_json(p).dump().find("faults"), std::string::npos);
  SystemParams q = faulty_params(0.01);
  EXPECT_TRUE(q.faults.any());
  EXPECT_NE(harness::to_json(q).dump().find("faults"), std::string::npos);
}

TEST(FaultPlane, SameSeedReplaysTheSameSchedule) {
  const SystemParams p = [&] {
    SystemParams q = small_params(4);
    q.faults.drop_rate = 0.2;
    q.faults.dup_rate = 0.2;
    q.faults.delay_rate = 0.2;
    q.faults.reorder_rate = 0.2;
    q.faults.seed = 99;
    return q;
  }();
  net::FaultPlane a(p), b(p);
  ASSERT_TRUE(a.enabled());
  for (int i = 0; i < 2000; ++i) {
    const ProcId src = static_cast<ProcId>(i % 4);
    const ProcId dst = static_cast<ProcId>((i + 1) % 4);
    const auto da = a.decide(src, dst);
    const auto db = b.decide(src, dst);
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.duplicate, db.duplicate);
    EXPECT_EQ(da.extra_delay, db.extra_delay);
    EXPECT_EQ(da.delayed, db.delayed);
    EXPECT_EQ(da.reordered, db.reordered);
  }
}

TEST(FaultPlane, LinksDrawFromIndependentStreams) {
  SystemParams p = faulty_params(0.3, 11);
  // Plane A interleaves traffic on two links; plane B only ever uses one.
  // The decisions on the common link must be identical: a link's schedule
  // depends only on its own copy count, never on other links' traffic.
  net::FaultPlane a(p), b(p);
  for (int i = 0; i < 500; ++i) {
    const auto da = a.decide(0, 1);
    (void)a.decide(1, 0);
    (void)a.decide(2, 3);
    const auto db = b.decide(0, 1);
    EXPECT_EQ(da.drop, db.drop);
    EXPECT_EQ(da.extra_delay, db.extra_delay);
  }
}

TEST(FaultPlane, RatesAreApproximatelyHonored) {
  SystemParams p = faulty_params(0.1, 5);
  p.faults.dup_rate = 0.25;
  net::FaultPlane plane(p);
  int drops = 0, dups = 0, survived = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto d = plane.decide(0, 1);
    if (d.drop) {
      ++drops;
      continue;  // a dropped copy never duplicates
    }
    ++survived;
    dups += d.duplicate ? 1 : 0;
  }
  EXPECT_NEAR(drops / static_cast<double>(n), 0.10, 0.02);
  EXPECT_NEAR(dups / static_cast<double>(survived), 0.25, 0.02);
}

TEST(Transport, DisabledPlaneIsAStrictPassthrough) {
  const SystemParams p = small_params(4);
  sim::Engine mesh_engine;
  net::MeshNetwork bare(mesh_engine, p);
  Cycles bare_arrival = 0;
  bare.send(0, 3, 512, [&] { bare_arrival = mesh_engine.now(); });
  mesh_engine.run();

  sim::Engine engine;
  net::MeshNetwork mesh(engine, p);
  net::Transport transport(engine, mesh, p);
  EXPECT_FALSE(transport.enabled());
  Cycles arrival = 0;
  transport.send(0, 3, 512, [&] { arrival = engine.now(); });
  engine.run();
  EXPECT_EQ(arrival, bare_arrival);
  EXPECT_FALSE(transport.stats().any());  // nothing counted when disabled
}

TEST(Transport, DeliversEverythingInOrderUnderHeavyFaults) {
  SystemParams p = faulty_params(0.2, 13);
  p.faults.dup_rate = 0.2;
  p.faults.delay_rate = 0.3;
  p.faults.reorder_rate = 0.2;
  sim::Engine engine;
  net::MeshNetwork mesh(engine, p);
  net::Transport transport(engine, mesh, p);
  ASSERT_TRUE(transport.enabled());

  const int n = 200;
  std::vector<int> delivered;
  for (int i = 0; i < n; ++i) {
    transport.send(0, 1, 128, [&delivered, i] { delivered.push_back(i); });
  }
  engine.run();

  // Exactly once each, in send order, despite drops / dups / reorders.
  ASSERT_EQ(delivered.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(delivered[i], i);

  const TransportStats& s = transport.stats();
  EXPECT_EQ(s.data_sends, static_cast<std::uint64_t>(n));
  EXPECT_GT(s.drops_injected, 0u);
  EXPECT_GT(s.dups_injected, 0u);
  EXPECT_GT(s.retransmits, 0u);
  EXPECT_GT(s.dup_dropped, 0u);
  EXPECT_GT(s.acks, 0u);
}

TEST(Transport, RetransmitBackoffFollowsTheExponentialSchedule) {
  SystemParams p = faulty_params(0.5, 3);
  p.faults.retransmit_timeout_cycles = 10000;
  p.faults.retransmit_backoff_cap = 2;

  // Replay the link's fault schedule to learn which copy survives first.
  net::FaultPlane replica(p);
  int first_success = 0;
  while (replica.decide(0, 1).drop) ++first_success;
  ASSERT_GT(first_success, 0) << "seed 3 should drop the first copy";

  // Copy k is injected at sum of the backed-off RTOs before it.
  Cycles inject_at = 0;
  for (int k = 0; k < first_success; ++k) {
    inject_at += p.faults.retransmit_timeout_cycles
                 << std::min(k, p.faults.retransmit_backoff_cap);
  }

  sim::Engine engine;
  net::MeshNetwork mesh(engine, p);
  net::Transport transport(engine, mesh, p);
  Cycles delivered_at = 0;
  std::uint64_t timeouts_at_delivery = 0;
  int deliveries = 0;
  transport.send(0, 1, 64, [&] {
    delivered_at = engine.now();
    timeouts_at_delivery = transport.stats().timeouts;
    ++deliveries;
  });
  engine.run();

  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(delivered_at, inject_at + mesh.uncontended_latency(0, 1, 64));
  EXPECT_EQ(timeouts_at_delivery, static_cast<std::uint64_t>(first_success));
}

TEST(Transport, PausedNodeDefersDeliveryToTheWindowEnd) {
  SystemParams p = small_params(4);
  p.faults.pauses.push_back({/*node=*/1, /*at_cycle=*/0, /*cycles=*/50000});
  p.faults.retransmit_timeout_cycles = 200000;  // no retransmit during pause
  ASSERT_TRUE(p.faults.any());
  sim::Engine engine;
  net::MeshNetwork mesh(engine, p);
  net::Transport transport(engine, mesh, p);
  Cycles delivered_at = 0;
  int deliveries = 0;
  transport.send(0, 1, 64, [&] {
    delivered_at = engine.now();
    ++deliveries;
  });
  engine.run();
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(delivered_at, 50000u);
  EXPECT_EQ(transport.stats().paused_deliveries, 1u);
  EXPECT_EQ(transport.stats().retransmits, 0u);
}

TEST(Transport, BestEffortSendsAreFireAndForget) {
  SystemParams p = faulty_params(0.4, 21);
  sim::Engine engine;
  net::MeshNetwork mesh(engine, p);
  net::Transport transport(engine, mesh, p);
  const int n = 500;
  int arrived = 0;
  for (int i = 0; i < n; ++i) {
    transport.send_best_effort(0, 1, 64, [&] { ++arrived; });
  }
  engine.run();
  const TransportStats& s = transport.stats();
  EXPECT_EQ(s.push_sends, static_cast<std::uint64_t>(n));
  EXPECT_GT(s.push_drops, 0u);
  EXPECT_EQ(static_cast<std::uint64_t>(arrived), s.push_sends - s.push_drops);
  EXPECT_EQ(s.retransmits, 0u);  // lost pushes are simply gone
  EXPECT_EQ(s.acks, 0u);
}

TEST(Engine, WallDeadlineRaisesTimeoutError) {
  sim::Engine engine;
  // Endless self-rescheduling event; only the deadline can stop it.
  std::function<void()> tick = [&] { engine.schedule(engine.now() + 1, tick); };
  engine.schedule(0, tick);
  engine.set_wall_deadline(std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(50));
  EXPECT_THROW(engine.run(), TimeoutError);
}

TEST(FaultRuns, SameFaultSeedGivesByteIdenticalRunStats) {
  SystemParams p = harness::paper_params();
  p.faults.drop_rate = 0.01;  // the acceptance criterion's 1% loss point
  p.faults.seed = 7;
  const auto a =
      harness::run_experiment("AEC", "IS", apps::Scale::kSmall, p);
  const auto b =
      harness::run_experiment("AEC", "IS", apps::Scale::kSmall, p);
  EXPECT_GT(a.stats.transport.retransmits, 0u);
  EXPECT_EQ(harness::to_json(a.stats).dump(), harness::to_json(b.stats).dump());
  EXPECT_EQ(harness::lap_json(a).dump(), harness::lap_json(b).dump());
}

TEST(FaultRuns, EveryAppCompletesUnderFivePercentLoss) {
  SystemParams p = harness::paper_params();
  p.faults.drop_rate = 0.05;
  p.faults.seed = 7;
  std::uint64_t total_retransmits = 0;
  std::uint64_t total_push_activity = 0;
  for (const std::string& app : apps::app_names()) {
    for (const char* proto : {"AEC", "TreadMarks"}) {
      // run_experiment itself checks the app's oracle, so completing here
      // means correct output despite the losses, not just termination.
      const auto r = harness::run_experiment(proto, app, apps::Scale::kSmall, p);
      EXPECT_GT(r.stats.transport.retransmits, 0u) << proto << "/" << app;
      total_retransmits += r.stats.transport.retransmits;
      total_push_activity += r.stats.transport.push_drops +
                             r.stats.transport.push_fallbacks;
    }
  }
  EXPECT_GT(total_retransmits, 0u);
  // AEC's best-effort LAP pushes really were exposed to the loss.
  EXPECT_GT(total_push_activity, 0u);
}

}  // namespace
}  // namespace aecdsm::test
