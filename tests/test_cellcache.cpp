// Tests for the content-addressed cell result cache and the cancellation
// path it rides with: key/hash stability, sensitivity to every cell input,
// warm runs serializing byte-identically to cold ones at any job count,
// corrupt-blob tolerance, telemetry round-trips, and --fail-fast.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "harness/batch.hpp"
#include "harness/cellcache.hpp"
#include "harness/json_out.hpp"
#include "harness/threadpool.hpp"
#include "tests/test_util.hpp"

namespace aecdsm::test {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test cache directory under the system temp dir.
std::string fresh_cache_dir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() / ("aecdsm_test_cache_" + tag);
  fs::remove_all(dir);
  return dir.string();
}

harness::ExperimentCell make_cell() {
  harness::ExperimentPlan plan;
  plan.add("AEC", "IS", apps::Scale::kSmall, small_params(4), 7);
  return plan.cells[0];
}

TEST(CellCache, KeyAndHashAreStable) {
  const harness::ExperimentCell cell = make_cell();
  const std::string key = harness::CellCache::cell_key(cell);
  EXPECT_EQ(key, harness::CellCache::cell_key(cell));
  EXPECT_EQ(harness::CellCache::cell_hash(cell),
            harness::CellCache::cell_hash(cell));
  // The key carries the version salt and every identifying input.
  EXPECT_NE(key.find(harness::kSimVersionSalt), std::string::npos);
  EXPECT_NE(key.find("AEC"), std::string::npos);
  EXPECT_NE(key.find("IS"), std::string::npos);
  // The hash is a filename-safe 16-hex-digit string.
  const std::string hash = harness::CellCache::cell_hash(cell);
  EXPECT_EQ(hash.size(), 16u);
  EXPECT_EQ(hash.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(CellCache, LabelDoesNotAffectHash) {
  harness::ExperimentCell a = make_cell();
  harness::ExperimentCell b = make_cell();
  b.label = "different-row-name";
  EXPECT_EQ(harness::CellCache::cell_hash(a), harness::CellCache::cell_hash(b));
}

TEST(CellCache, EveryInputChangesTheHash) {
  const harness::ExperimentCell base = make_cell();
  const std::string h0 = harness::CellCache::cell_hash(base);

  auto expect_differs = [&](harness::ExperimentCell cell, const char* what) {
    EXPECT_NE(harness::CellCache::cell_hash(cell), h0) << what;
  };

  { auto c = base; c.protocol = "TreadMarks"; expect_differs(c, "protocol"); }
  { auto c = base; c.app = "FFT"; expect_differs(c, "app"); }
  { auto c = base; c.scale = apps::Scale::kDefault; expect_differs(c, "scale"); }
  { auto c = base; c.seed = 8; expect_differs(c, "seed"); }
  { auto c = base; c.params.num_procs = 8; expect_differs(c, "num_procs"); }
  { auto c = base; c.params.page_bytes = 512; expect_differs(c, "page_bytes"); }
  { auto c = base; c.params.update_set_size += 1; expect_differs(c, "update_set_size"); }
  { auto c = base; c.params.affinity_threshold += 1; expect_differs(c, "affinity_threshold"); }
}

TEST(CellCache, StoreLoadRoundTripsAndSurvivesCorruptBlobs) {
  const std::string dir = fresh_cache_dir("roundtrip");
  const harness::ExperimentCell cell = make_cell();
  const harness::ExperimentResult fresh = harness::run_experiment(
      cell.protocol, cell.app, cell.scale, cell.params, cell.seed);

  harness::CellCache cache(dir);
  EXPECT_FALSE(cache.load(cell).has_value());  // cold
  cache.store(cell, fresh);
  const auto hit = cache.load(cell);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->from_cache);
  EXPECT_EQ(harness::to_json(hit->stats).dump(),
            harness::to_json(fresh.stats).dump());

  // A garbage blob degrades to a miss, never an error — and the corrupt
  // file is deleted so it cannot shadow the slot forever.
  const fs::path blob =
      fs::path(dir) / "cells" / (harness::CellCache::cell_hash(cell) + ".json");
  ASSERT_TRUE(fs::exists(blob));
  std::ofstream(blob) << "{not json";
  EXPECT_FALSE(cache.load(cell).has_value());
  EXPECT_FALSE(fs::exists(blob));

  // Same for a truncated blob (a valid prefix of the real document)...
  cache.store(cell, fresh);
  {
    const std::string full = [&] {
      std::ifstream in(blob, std::ios::binary);
      return std::string((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    }();
    ASSERT_GT(full.size(), 64u);
    std::ofstream(blob, std::ios::binary | std::ios::trunc)
        << full.substr(0, full.size() / 2);
  }
  EXPECT_FALSE(cache.load(cell).has_value());
  EXPECT_FALSE(fs::exists(blob));

  // ...and for an existing-but-empty one (a killed writer's leftovers).
  std::ofstream(blob, std::ios::trunc);
  ASSERT_TRUE(fs::exists(blob));
  EXPECT_FALSE(cache.load(cell).has_value());
  EXPECT_FALSE(fs::exists(blob));

  // After the cleanup a fresh store serves hits again.
  cache.store(cell, fresh);
  EXPECT_TRUE(cache.load(cell).has_value());
  fs::remove_all(dir);
}

TEST(CellCache, WarmRunIsByteIdenticalAndSimulatesNothing) {
  const std::string dir = fresh_cache_dir("warm");
  harness::ExperimentPlan plan;
  plan.name = "warmth";
  for (const char* proto : {"AEC", "TreadMarks", "Munin-ERC", "AEC-noLAP"}) {
    plan.add(proto, "IS", apps::Scale::kSmall, small_params(4));
  }

  auto doc_with = [&](int jobs, bool refresh) {
    harness::BatchOptions opts;
    opts.jobs = jobs;
    opts.cache_dir = dir;
    opts.refresh = refresh;
    harness::BatchRunner runner(opts);
    const auto results = runner.run(plan);
    return std::make_pair(harness::BatchRunner::document(plan, results).dump(),
                          runner.last_run_info());
  };

  const auto [cold, cold_info] = doc_with(1, false);
  EXPECT_EQ(cold_info.cache_hits, 0u);
  EXPECT_EQ(cold_info.simulated, plan.cells.size());

  const auto [warm, warm_info] = doc_with(1, false);
  EXPECT_EQ(warm_info.cache_hits, plan.cells.size());
  EXPECT_EQ(warm_info.simulated, 0u);
  EXPECT_EQ(warm, cold);  // byte-identical document from cached cells

  const auto [warm4, warm4_info] = doc_with(4, false);
  EXPECT_EQ(warm4_info.simulated, 0u);
  EXPECT_EQ(warm4, cold);

  // --refresh ignores the memoized cells but re-stores fresh copies.
  const auto [refreshed, refresh_info] = doc_with(1, true);
  EXPECT_EQ(refresh_info.cache_hits, 0u);
  EXPECT_EQ(refresh_info.simulated, plan.cells.size());
  EXPECT_EQ(refreshed, cold);
  fs::remove_all(dir);
}

TEST(CellCache, EngineThreadsNeverForkTheCacheKey) {
  // Audit for the parallel engine mode: the cell hash is computed from the
  // cell alone (protocol/app/scale/params/seed + version salt) — a cell
  // carries no engine-thread count, so a parallel run MUST hit the blobs a
  // sequential run stored, and serve byte-identical documents.
  const std::string dir = fresh_cache_dir("threads_key");
  harness::ExperimentPlan plan;
  plan.name = "threads_key";
  plan.add("AEC", "IS", apps::Scale::kSmall, small_params(4));
  plan.add("TreadMarks", "IS", apps::Scale::kSmall, small_params(4));

  auto doc_with = [&](int engine_threads, bool refresh) {
    harness::BatchOptions opts;
    opts.jobs = 1;
    opts.cache_dir = dir;
    opts.engine_threads = engine_threads;
    opts.refresh = refresh;
    harness::BatchRunner runner(opts);
    const auto results = runner.run(plan);
    return std::make_pair(harness::BatchRunner::document(plan, results).dump(),
                          runner.last_run_info());
  };

  const auto [cold_seq, cold_info] = doc_with(1, false);
  EXPECT_EQ(cold_info.simulated, plan.cells.size());
  // Parallel run: every cell is a warm hit on the sequential run's blobs.
  const auto [warm_par, warm_info] = doc_with(4, false);
  EXPECT_EQ(warm_info.cache_hits, plan.cells.size());
  EXPECT_EQ(warm_par, cold_seq);
  // And a parallel re-simulation stores blobs the sequential run hits.
  const auto [cold_par, par_info] = doc_with(4, true);
  EXPECT_EQ(par_info.simulated, plan.cells.size());
  EXPECT_EQ(cold_par, cold_seq);
  const auto [warm_seq, seq_info] = doc_with(1, false);
  EXPECT_EQ(seq_info.cache_hits, plan.cells.size());
  EXPECT_EQ(warm_seq, cold_seq);
  fs::remove_all(dir);
}

TEST(CellCache, VerifyCacheAcceptsSoundBlobsAndRejectsTamperedOnes) {
  const std::string dir = fresh_cache_dir("verify");
  harness::ExperimentPlan plan;
  plan.name = "verify";
  plan.add("AEC", "IS", apps::Scale::kSmall, small_params(4));

  auto run_with_verify = [&] {
    harness::BatchOptions opts;
    opts.jobs = 1;
    opts.cache_dir = dir;
    opts.verify_cache = true;
    harness::BatchRunner runner(opts);
    const auto results = runner.run(plan);
    return runner.last_run_info();
  };

  // Cold run: nothing to verify yet.
  EXPECT_EQ(run_with_verify().cache_verified, 0u);
  // Warm run: the hit is re-simulated cold and matches.
  EXPECT_EQ(run_with_verify().cache_verified, 1u);

  // Tamper with the blob's stats while keeping the key valid: verify must
  // now catch the divergence.
  const fs::path blob =
      fs::path(dir) / "cells" /
      (harness::CellCache::cell_hash(plan.cells[0]) + ".json");
  ASSERT_TRUE(fs::exists(blob));
  std::ifstream in(blob);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  json::Value doc = json::Value::parse(text);
  json::Value stats = doc.at("stats");
  stats["finish_time"] = json::Value(stats.at("finish_time").as_uint() + 1);
  doc["stats"] = std::move(stats);
  std::ofstream out(blob);
  out << doc.dump() << "\n";
  out.close();
  EXPECT_THROW(run_with_verify(), SimError);
  fs::remove_all(dir);
}

TEST(CellCache, TelemetryMergesLastObservationWins) {
  const std::string dir = fresh_cache_dir("telemetry");
  harness::CellCache cache(dir);
  EXPECT_TRUE(cache.load_telemetry().empty());
  cache.merge_telemetry({{"aaaa", 500}, {"bbbb", 20}});
  cache.merge_telemetry({{"aaaa", 900}, {"cccc", 7}}, {{"aaaa", 123456}});
  const harness::TelemetryMap t = cache.load_telemetry();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.at("aaaa"), 900u);
  EXPECT_EQ(t.at("bbbb"), 20u);
  EXPECT_EQ(t.at("cccc"), 7u);
  // The events/sec section is additive: cells without one stay absent, and
  // later merges preserve earlier observations.
  harness::TelemetryMap eps = cache.load_events_telemetry();
  ASSERT_EQ(eps.size(), 1u);
  EXPECT_EQ(eps.at("aaaa"), 123456u);
  cache.merge_telemetry({{"dddd", 1}}, {{"dddd", 777}});
  eps = cache.load_events_telemetry();
  ASSERT_EQ(eps.size(), 2u);
  EXPECT_EQ(eps.at("aaaa"), 123456u);
  EXPECT_EQ(eps.at("dddd"), 777u);
  fs::remove_all(dir);
}

TEST(CellCache, BatchRunRecordsTelemetryForSimulatedCells) {
  const std::string dir = fresh_cache_dir("batch_telemetry");
  harness::ExperimentPlan plan;
  plan.name = "tele";
  plan.add("AEC", "IS", apps::Scale::kSmall, small_params(4));
  harness::BatchOptions opts;
  opts.jobs = 1;
  opts.cache_dir = dir;
  harness::BatchRunner runner(opts);
  runner.run(plan);
  const harness::CellCache cache(dir);
  const harness::TelemetryMap t = cache.load_telemetry();
  ASSERT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.count(harness::CellCache::cell_hash(plan.cells[0])));
  fs::remove_all(dir);
}

TEST(CellCache, ResolveDirPrecedence) {
  unsetenv("AECDSM_CACHE_DIR");
  EXPECT_EQ(harness::CellCache::resolve_dir("/explicit/dir"), "/explicit/dir");
  setenv("AECDSM_CACHE_DIR", "/from/env", 1);
  EXPECT_EQ(harness::CellCache::resolve_dir(""), "/from/env");
  EXPECT_EQ(harness::CellCache::resolve_dir("/explicit/dir"), "/explicit/dir");
  unsetenv("AECDSM_CACHE_DIR");
  // Without the env override the fallback chain still yields something.
  EXPECT_FALSE(harness::CellCache::resolve_dir("").empty());
}

TEST(ThreadPool, RequestStopDropsQueuedAndLaterTasks) {
  harness::ThreadPool pool(1);
  std::atomic<int> ran{0};
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  // Occupy the single worker so everything behind it stays queued.
  pool.submit([&] {
    started = true;
    while (!release.load()) std::this_thread::yield();
    ++ran;
  });
  while (!started.load()) std::this_thread::yield();
  for (int i = 0; i < 8; ++i) pool.submit([&] { ++ran; });
  pool.request_stop();
  EXPECT_TRUE(pool.stop_requested());
  pool.submit([&] { ++ran; });  // dropped: submitted after the stop
  release = true;
  pool.wait_all();
  // Only the in-flight task ran; the queued and late ones were cancelled.
  EXPECT_EQ(ran.load(), 1);
}

TEST(BatchRunner, FailFastSkipsRemainingCells) {
  harness::ExperimentPlan plan;
  plan.name = "failfast";
  plan.add("NoSuchProtocol", "IS", apps::Scale::kSmall, small_params(4));
  for (int i = 0; i < 3; ++i) {
    plan.add("AEC", "IS", apps::Scale::kSmall, small_params(4), 100 + i);
  }
  harness::BatchOptions opts;
  opts.jobs = 1;
  opts.no_cache = true;
  opts.fail_fast = true;
  harness::BatchRunner runner(opts);
  EXPECT_THROW(runner.run(plan), SimError);
  const harness::BatchRunInfo& info = runner.last_run_info();
  // With one worker the failing first cell cancels everything behind it.
  EXPECT_EQ(info.skipped, 3u);
  EXPECT_EQ(info.simulated, 1u);

  // Without --fail-fast the same plan still throws, but every cell runs.
  opts.fail_fast = false;
  harness::BatchRunner patient(opts);
  EXPECT_THROW(patient.run(plan), SimError);
  EXPECT_EQ(patient.last_run_info().skipped, 0u);
  EXPECT_EQ(patient.last_run_info().simulated, 4u);
}

}  // namespace
}  // namespace aecdsm::test
