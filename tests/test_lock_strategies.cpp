// End-to-end suite for the non-default lock-manager strategies (src/locks,
// DESIGN.md §13): mcs and hier must preserve every correctness contract the
// central manager satisfies — synthetic-corpus oracles under every policy
// preset, byte-identical parallel-engine runs, the paper applications, and
// lock-manager failover under fail-stop crashes — while exhibiting the
// behaviors they exist for: direct releaser->successor handoffs (mcs, with
// throughput matching the Aksenov closed-form model) and reduced
// cross-quadrant handoffs on large meshes (hier).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "dsm/shared_array.hpp"
#include "harness/json_out.hpp"
#include "harness/runner.hpp"
#include "locks/model.hpp"
#include "policy/policy.hpp"
#include "tests/test_util.hpp"

namespace aecdsm::test {
namespace {

SystemParams strategy_params(int nprocs, const std::string& strategy) {
  SystemParams p = small_params(nprocs);
  p.locks.strategy = strategy;
  return p;
}

std::string result_fingerprint(const harness::ExperimentResult& r) {
  std::ostringstream os;
  os << harness::to_json(r.stats).dump();
  for (const auto& [lock, s] : r.lap_scores) {
    os << "|" << lock << ":" << s.acquire_events << "," << s.lap.predictions
       << "," << s.lap.hits;
  }
  return os.str();
}

// ------------------------------------------------- corpus x preset conformance

/// The same spec corpus the workload conformance suite pins for `central`
/// (one spec per sharing pattern plus a long-CS stress spelling).
std::vector<std::string> corpus() {
  return {
      "syn:migratory/cs32/fan4/seed7",
      "syn:producer-consumer/fan4/seed3",
      "syn:read-mostly/fan4/cells96/seed13",
      "syn:hotspot/cs64/fan8/seed17",
      "syn:mixed/fan6/seed23",
      "syn:read-mostly/cs512/fan1/seed31",
  };
}

struct StrategyCase {
  std::string spec;
  std::string policy;
  std::string strategy;
};

class StrategyConformance : public ::testing::TestWithParam<StrategyCase> {};

TEST_P(StrategyConformance, OracleHoldsAndEngineThreadsAreByteIdentical) {
  const auto& [spec, policy, strategy] = GetParam();
  const SystemParams params = strategy_params(4, strategy);
  const auto seq = harness::run_experiment(policy, spec, apps::Scale::kSmall,
                                           params, /*seed=*/7);
  ASSERT_TRUE(seq.stats.result_valid)
      << spec << " under " << policy << "/" << strategy;
  const auto par = harness::run_experiment(policy, spec, apps::Scale::kSmall,
                                           params, /*seed=*/7,
                                           /*wall_timeout_sec=*/0.0,
                                           /*recorder=*/nullptr,
                                           /*engine_threads=*/4);
  EXPECT_TRUE(par.stats.result_valid);
  EXPECT_EQ(result_fingerprint(par), result_fingerprint(seq))
      << spec << " under " << policy << "/" << strategy
      << " diverges on 4 engine threads";
  // The strategy machinery lives in the AEC and ERC lock managers;
  // TreadMarks uses its own distributed-owner locks and ignores the knob.
  if (policy != "TreadMarks") {
    EXPECT_GT(seq.stats.lockmgr.grants, 0u);
  }
}

std::vector<StrategyCase> conformance_cases() {
  std::vector<StrategyCase> cases;
  for (const std::string& spec : corpus()) {
    for (const std::string& pol : policy::registered_names()) {
      for (const char* strat : {"mcs", "hier"}) {
        cases.push_back(StrategyCase{spec, pol, strat});
      }
    }
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<StrategyCase>& info) {
  const auto& spec = info.param.spec;
  std::string s = spec.substr(spec.find(':') + 1) + "_" + info.param.policy +
                  "_" + info.param.strategy;
  for (char& ch : s) {
    if (ch == '/' || ch == '-') ch = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(Corpus, StrategyConformance,
                         ::testing::ValuesIn(conformance_cases()), case_name);

// ------------------------------------------------------------------ paper apps

class StrategyPaperApps : public ::testing::TestWithParam<const char*> {};

TEST_P(StrategyPaperApps, AllSixApplicationsStayOracleValid) {
  const SystemParams params = strategy_params(16, GetParam());
  for (const std::string& app : apps::app_names()) {
    const auto r = harness::run_experiment("AEC", app, apps::Scale::kSmall,
                                           params, /*seed=*/42);
    EXPECT_TRUE(r.stats.result_valid) << app << " under " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, StrategyPaperApps,
                         ::testing::Values("mcs", "hier"));

// ---------------------------------------------------------------- mcs behavior

TEST(McsStrategy, HotLockHandsOffDirectlyWithoutTheManager) {
  const auto central = harness::run_experiment(
      "AEC", "syn:hotspot/cs64/fan2/seed17", apps::Scale::kSmall,
      [] {
        SystemParams p = small_params(16);
        p.locks.collect_stats = true;
        return p;
      }(),
      7);
  const auto mcs = harness::run_experiment("AEC", "syn:hotspot/cs64/fan2/seed17",
                                           apps::Scale::kSmall,
                                           strategy_params(16, "mcs"), 7);
  ASSERT_TRUE(central.stats.result_valid);
  ASSERT_TRUE(mcs.stats.result_valid);
  // Same lock schedule, same number of grants — mcs only changes transport.
  EXPECT_EQ(mcs.stats.lockmgr.grants, central.stats.lockmgr.grants);
  EXPECT_EQ(central.stats.lockmgr.direct_handoffs, 0u);
  EXPECT_GT(mcs.stats.lockmgr.direct_handoffs, 0u);
  EXPECT_GT(mcs.stats.lockmgr.link_messages, 0u);
  // Direct handoffs bypass the REL+GRANT pair through the manager: most
  // contended transfers must take the short path.
  EXPECT_GT(mcs.stats.lockmgr.direct_handoffs,
            mcs.stats.lockmgr.handoffs / 2);
}

TEST(McsStrategy, ThroughputOfASaturatedLockMatchesTheAksenovModel) {
  // Pure synchronization loop: no shared data, so a release carries an
  // empty page list and the critical path of one lock tenure is exactly
  // cs_cycles + one direct-handoff latency — the regime the closed-form
  // 1 / (C + H) models.
  constexpr Cycles kCs = 2000;
  constexpr int kIters = 40;
  const SystemParams params = strategy_params(16, "mcs");
  LambdaApp app(
      "mcs_saturated", 4096, [](dsm::Machine&) {},
      [&](dsm::Context& ctx) {
        for (int i = 0; i < kIters; ++i) {
          ctx.lock(0);
          ctx.compute(kCs);
          ctx.unlock(0);
        }
        ctx.barrier();
        if (ctx.pid() == 0) app.set_ok(true);
      });
  const RunStats stats = run_protocol(app, "AEC", params);
  ASSERT_TRUE(stats.result_valid);
  const LockMgrStats& lm = stats.lockmgr;
  ASSERT_EQ(lm.grants, 16u * kIters);
  ASSERT_GT(lm.handoffs, 0u);
  // H: the 64-byte handoff message (kCtl + grant delta, empty page list)
  // over the measured mean handoff distance, with the empty-list grant
  // service (list_processing_per_elem * 4) — plus one extra interrupt: AEC
  // LAP-pushes the (empty) chain diff to the predicted next owner at
  // release, and that service occupies the successor's handler context
  // right before the grant arrives, serializing ahead of it.
  const double avg_hops = static_cast<double>(lm.handoff_hops) /
                          static_cast<double>(lm.handoffs);
  const Cycles handoff = locks::mcs_handoff_cycles(
                             params, /*bytes=*/64,
                             static_cast<int>(std::lround(avg_hops)),
                             params.list_processing_per_elem * 4) +
                         params.interrupt_cycles;
  const double predicted =
      locks::mcs_predicted_throughput(static_cast<double>(kCs),
                                      static_cast<double>(handoff));
  const double simulated = static_cast<double>(lm.grants) /
                           static_cast<double>(stats.finish_time);
  // The model ignores the post-grant wake-up tail and the few uncontended
  // startup grants; they are worth ~2% here. Hold the agreement to 15%.
  EXPECT_NEAR(simulated / predicted, 1.0, 0.15)
      << "simulated " << simulated << " acq/cycle vs predicted " << predicted
      << " (avg hops " << avg_hops << ", H " << handoff << ", direct "
      << lm.direct_handoffs << "/" << lm.handoffs << ", fallback "
      << lm.fallback_rels << ", link " << lm.link_messages << ")";
}

// --------------------------------------------------------------- hier behavior

TEST(HierStrategy, CutsCrossQuadrantHandoffsOnA256NodeHotspot) {
  // 16 x 16 mesh, every node hammering the hotspot lock. central serves in
  // global FIFO order, so ~3/4 of its handoffs leave the releaser's
  // quadrant; hier keeps handoffs inside the quadrant up to the fairness
  // budget and must land well under that.
  auto params_for = [](const std::string& strategy) {
    SystemParams p;
    p.num_procs = 256;
    p.mesh_width = 16;
    p.page_bytes = 256;
    p.cache_bytes = 8 * 1024;
    p.locks.strategy = strategy;
    p.locks.collect_stats = true;
    return p;
  };
  const char* spec = "syn:hotspot/cs32/fan2/bursts4/seed17";
  const auto central = harness::run_experiment("AEC", spec, apps::Scale::kSmall,
                                               params_for("central"), 7);
  const auto hier = harness::run_experiment("AEC", spec, apps::Scale::kSmall,
                                            params_for("hier"), 7);
  ASSERT_TRUE(central.stats.result_valid);
  ASSERT_TRUE(hier.stats.result_valid);
  const LockMgrStats& c = central.stats.lockmgr;
  const LockMgrStats& h = hier.stats.lockmgr;
  ASSERT_GT(c.handoffs, 0u);
  ASSERT_GT(h.handoffs, 0u);
  EXPECT_GT(h.hier_skips, 0u);
  const double c_cross = static_cast<double>(c.cross_cohort) /
                         static_cast<double>(c.handoffs);
  const double h_cross = static_cast<double>(h.cross_cohort) /
                         static_cast<double>(h.handoffs);
  EXPECT_LT(h_cross, c_cross)
      << "hier cross-quadrant fraction " << h_cross << " vs central " << c_cross;
  const double c_hops = static_cast<double>(c.handoff_hops) /
                        static_cast<double>(c.handoffs);
  const double h_hops = static_cast<double>(h.handoff_hops) /
                        static_cast<double>(h.handoffs);
  EXPECT_LT(h_hops, c_hops)
      << "hier mean handoff hops " << h_hops << " vs central " << c_hops;
}

// ------------------------------------------------------------- crash interplay

class StrategyCrash : public ::testing::TestWithParam<const char*> {};

TEST_P(StrategyCrash, FailoverSurvivesAndMcsStandsDown) {
  // The contended-counter program from the crash-recovery suite: crash the
  // manager of lock 1 mid-contention. Under a crash schedule the mcs
  // machinery is disabled outright (links and direct handoffs assume the
  // manager's queue is authoritative), so the run must fall back to the
  // proven central failover chain and still lose no updates.
  constexpr int kIters = 20;
  auto run = [&](const SystemParams& params) {
    dsm::SharedArray<std::uint32_t> counter;
    LambdaApp app(
        "strategy_crash", 4096,
        [&](dsm::Machine& m) {
          counter = dsm::SharedArray<std::uint32_t>::alloc(m, 1);
        },
        [&](dsm::Context& ctx) {
          for (int i = 0; i < kIters; ++i) {
            ctx.lock(1);
            counter.put(ctx, 0, counter.get(ctx, 0) + 1);
            ctx.unlock(1);
            ctx.compute(5000);
          }
          ctx.barrier();
          if (ctx.pid() == 0) {
            app.set_ok(counter.get(ctx, 0) ==
                       static_cast<std::uint32_t>(kIters * ctx.nprocs()));
          }
        });
    return run_protocol(app, "AEC", params);
  };
  const RunStats base = run(strategy_params(4, GetParam()));
  ASSERT_TRUE(base.result_valid);
  SystemParams crash = strategy_params(4, GetParam());
  crash.faults.retransmit_timeout_cycles = 5000;
  crash.faults.crashes.push_back(
      {/*node=*/1, /*at_cycle=*/base.finish_time / 4,
       /*cycles=*/base.finish_time / 2});
  const RunStats crashed = run(crash);
  EXPECT_TRUE(crashed.result_valid)
      << GetParam() << ": updates lost through the failover";
  EXPECT_GE(crashed.recovery.failovers, 1u);
  EXPECT_EQ(crashed.lockmgr.direct_handoffs, 0u)
      << "mcs direct handoffs must be disabled under a crash schedule";
  EXPECT_EQ(crashed.lockmgr.link_messages, 0u);
}

INSTANTIATE_TEST_SUITE_P(Strategies, StrategyCrash,
                         ::testing::Values("mcs", "hier"));

}  // namespace
}  // namespace aecdsm::test
