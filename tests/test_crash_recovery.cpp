// Fail-stop crash / recovery fault plane: lock-manager failover, custody
// re-election and crashed-node resume, end to end on tiny SPMD programs.
//
// The schedule pattern used throughout: run the program once crash-free to
// learn its deterministic finish time F, then re-run with a crash window
// anchored at a fraction of F so the window reliably lands mid-contention
// regardless of protocol or machine-parameter drift. The RTO is pinned low
// so retransmit exhaustion (the suspect verdict) fits inside the window.
#include <gtest/gtest.h>

#include <string>

#include "dsm/shared_array.hpp"
#include "harness/json_out.hpp"
#include "tests/test_util.hpp"

namespace aecdsm::test {
namespace {

/// All five registered presets: the failover chain has a flavour per lock
/// family (AEC chain custody, TreadMarks hint hand-off, ERC FIFO manager).
const char* kAllPresets[] = {"AEC", "AEC-noLAP", "AEC-TmkBarrier",
                             "TreadMarks", "Munin-ERC"};

/// Contended-counter program: every pid loops `iters` times over lock 1
/// (manager = node 1 on a 4-node machine), so crashing node 1 mid-run takes
/// down a lock manager with requests pending. Returns a fresh app; `ok`
/// checks the oracle on pid 0 — the crashed node's increments must survive
/// its reboot, or the count comes up short.
class CounterProgram {
 public:
  explicit CounterProgram(int iters) : iters_(iters) {}

  RunStats run(const std::string& preset, const SystemParams& params) {
    dsm::SharedArray<std::uint32_t> counter;
    LambdaApp app(
        "crash_counter", 4096,
        [&](dsm::Machine& m) {
          counter = dsm::SharedArray<std::uint32_t>::alloc(m, 1);
        },
        [&](dsm::Context& ctx) {
          for (int i = 0; i < iters_; ++i) {
            ctx.lock(1);
            counter.put(ctx, 0, counter.get(ctx, 0) + 1);
            ctx.unlock(1);
            ctx.compute(5000);
          }
          ctx.barrier();
          if (ctx.pid() == 0) {
            app.set_ok(counter.get(ctx, 0) ==
                       static_cast<std::uint32_t>(iters_ * ctx.nprocs()));
          }
        });
    return run_protocol(app, preset, params);
  }

 private:
  int iters_;
};

SystemParams crash_params(Cycles finish_time_crash_free) {
  SystemParams p = small_params(4);
  // Suspect quickly: 3 exhausted retransmits at a 5k RTO raise the verdict
  // ~35k cycles into the window, far inside the F/2-cycle outage.
  p.faults.retransmit_timeout_cycles = 5000;
  p.faults.crashes.push_back({/*node=*/1,
                              /*at_cycle=*/finish_time_crash_free / 4,
                              /*cycles=*/finish_time_crash_free / 2});
  return p;
}

class CrashRecovery : public ::testing::TestWithParam<const char*> {};

// Manager crash mid-contention: node 1 manages lock 1 and is also mid-grant
// traffic when it dies. A surviving node must be re-elected, pending
// requests replayed, and — after the window — node 1's own increments must
// land (warm reboot resumes from the last sync point).
TEST_P(CrashRecovery, ManagerCrashFailsOverAndCrashedWorkResumes) {
  CounterProgram prog(/*iters=*/20);
  const RunStats base = prog.run(GetParam(), small_params(4));
  ASSERT_TRUE(base.result_valid);
  ASSERT_GT(base.finish_time, 200000u) << "program too short to crash into";

  const RunStats crashed = prog.run(GetParam(), crash_params(base.finish_time));
  EXPECT_TRUE(crashed.result_valid)
      << GetParam() << ": updates lost through the failover";
  EXPECT_GE(crashed.recovery.suspects, 1u) << GetParam();
  EXPECT_GE(crashed.recovery.failovers, 1u) << GetParam();
  EXPECT_GE(crashed.recovery.reelections, 1u) << GetParam();
  EXPECT_GT(crashed.recovery.recovery_cycles, 0u) << GetParam();
  EXPECT_GT(crashed.finish_time, base.finish_time)
      << GetParam() << ": a mid-run outage cannot be free";
}

// Crash spanning barriers: the run stalls on the crashed participant and
// completes after its recovery (node 0 hosts the barrier manager and never
// crashes, so the gather state itself survives).
TEST_P(CrashRecovery, CrashDuringBarrierStallsUntilRecovery) {
  auto run = [&](const SystemParams& p) {
    dsm::SharedArray<std::uint32_t> data;
    LambdaApp app(
        "crash_barrier", 4096,
        [&](dsm::Machine& m) {
          data = dsm::SharedArray<std::uint32_t>::alloc(m, 4);
        },
        [&](dsm::Context& ctx) {
          for (int step = 0; step < 8; ++step) {
            data.put(ctx, static_cast<std::size_t>(ctx.pid()),
                     static_cast<std::uint32_t>(step));
            ctx.compute(20000);
            ctx.barrier();
          }
          if (ctx.pid() == 0) {
            bool good = true;
            for (int q = 0; q < ctx.nprocs(); ++q) {
              if (data.get(ctx, static_cast<std::size_t>(q)) != 7u) good = false;
            }
            app.set_ok(good);
          }
        });
    return run_protocol(app, GetParam(), p);
  };
  const RunStats base = run(small_params(4));
  ASSERT_TRUE(base.result_valid);

  SystemParams p = small_params(4);
  p.faults.retransmit_timeout_cycles = 5000;
  p.faults.crashes.push_back({/*node=*/2, /*at_cycle=*/base.finish_time / 3,
                              /*cycles=*/base.finish_time / 3});
  const RunStats crashed = run(p);
  EXPECT_TRUE(crashed.result_valid)
      << GetParam() << ": barrier data wrong after mid-barrier crash";
  EXPECT_GT(crashed.finish_time, base.finish_time) << GetParam();
  EXPECT_TRUE(crashed.recovery.any())
      << GetParam() << ": the window never touched the run";
}

INSTANTIATE_TEST_SUITE_P(Presets, CrashRecovery,
                         ::testing::ValuesIn(kAllPresets),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string s = info.param;
                           for (char& ch : s) {
                             if (!std::isalnum(static_cast<unsigned char>(ch)))
                               ch = '_';
                           }
                           return s;
                         });

// LAP push-target crash (AEC only): the predictor pushes update sets to the
// predicted next acquirer; while that node's NIC is down the best-effort
// pushes are refused (crash_drops) and the acquirer falls back to the lazy
// §3.4 fetch after recovery — updates delayed, never lost.
TEST(CrashRecoveryAec, LapPushTargetCrashFallsBackLazily) {
  CounterProgram prog(/*iters=*/20);
  const RunStats base = prog.run("AEC", small_params(4));
  ASSERT_TRUE(base.result_valid);

  // Crash node 2 — with round-robin contention on lock 1 the LAP predicts
  // node 2 regularly, so pushes land on a dead NIC inside the window.
  SystemParams p = small_params(4);
  p.faults.retransmit_timeout_cycles = 5000;
  p.faults.crashes.push_back({/*node=*/2, /*at_cycle=*/base.finish_time / 4,
                              /*cycles=*/base.finish_time / 2});
  const RunStats crashed = prog.run("AEC", p);
  EXPECT_TRUE(crashed.result_valid) << "updates lost at the crashed target";
  EXPECT_GT(crashed.recovery.crash_drops, 0u)
      << "no traffic ever hit the crashed NIC";
}

// Multiple crash windows on distinct nodes in one run.
TEST(CrashRecoveryMulti, TwoCrashesSameRun) {
  CounterProgram prog(/*iters=*/30);
  const RunStats base = prog.run("AEC", small_params(4));
  ASSERT_TRUE(base.result_valid);

  SystemParams p = small_params(4);
  p.faults.retransmit_timeout_cycles = 5000;
  p.faults.crashes.push_back({/*node=*/1, /*at_cycle=*/base.finish_time / 5,
                              /*cycles=*/base.finish_time / 4});
  p.faults.crashes.push_back({/*node=*/3, /*at_cycle=*/base.finish_time,
                              /*cycles=*/base.finish_time / 4});
  const RunStats crashed = prog.run("AEC", p);
  EXPECT_TRUE(crashed.result_valid);
  EXPECT_GE(crashed.recovery.suspects, 1u);
  EXPECT_TRUE(crashed.recovery.any());
}

// Zero-crash configs must keep the pre-crash-plane artifact bytes: no
// "recovery" member, identical fingerprint with and without the (empty)
// crash vector present in the params struct.
TEST(CrashRecoveryStats, OmittedWhenEmptyAndRoundTrips) {
  RunStats clean;
  clean.protocol = "AEC";
  clean.app = "x";
  clean.num_procs = 1;
  clean.per_proc.resize(1);
  EXPECT_EQ(harness::to_json(clean).find("recovery"), nullptr);

  RunStats r = clean;
  r.recovery.crash_drops = 3;
  r.recovery.suspects = 2;
  r.recovery.failovers = 1;
  r.recovery.reelections = 1;
  r.recovery.requeued_requests = 4;
  r.recovery.recovery_cycles = 12345;
  const json::Value v = harness::to_json(r);
  ASSERT_NE(v.find("recovery"), nullptr);
  const RunStats back = harness::run_stats_from_json(v);
  EXPECT_EQ(harness::to_json(back).dump(), v.dump());
}

}  // namespace
}  // namespace aecdsm::test
