// Unit tests for the LAP predictor (section 2 of the paper): each low-level
// technique in isolation, the affinity-set threshold rule, the combination
// algorithm of §2.2 step by step, and the success-rate scoring.
#include <gtest/gtest.h>

#include "aec/lap.hpp"

namespace aecdsm::test {
namespace {

using aec::LockLap;

constexpr int kProcs = 8;
constexpr int kK = 2;
constexpr double kThreshold = 0.6;

TEST(Lap, WaitingQueueHeadIsThePrediction) {
  LockLap lap(kProcs, kK, kThreshold);
  lap.enqueue_waiter(5);
  lap.enqueue_waiter(2);
  const auto u = lap.compute_update_set(0);
  // §2.2 step 1: queue head only, and the algorithm stops.
  ASSERT_EQ(u.size(), 1u);
  EXPECT_EQ(u[0], 5);
}

TEST(Lap, EmptyStateYieldsEmptySet) {
  LockLap lap(kProcs, kK, kThreshold);
  EXPECT_TRUE(lap.compute_update_set(0).empty());
}

TEST(Lap, AffinityDrivesPredictionWithoutQueue) {
  LockLap lap(kProcs, kK, kThreshold);
  // Build history: 0 hands off to 3 five times, to 4 once.
  for (int i = 0; i < 5; ++i) {
    lap.compute_update_set(0);
    lap.record_transfer(0, 3);
    lap.compute_update_set(3);
    lap.record_transfer(3, 0);
  }
  lap.compute_update_set(0);
  lap.record_transfer(0, 4);
  lap.compute_update_set(4);
  lap.record_transfer(4, 0);

  // aff(0,3)=5, aff(0,4)=1; mean over 7 others = 6/7; cut = 1.6*6/7 ~ 1.37.
  const auto aff = lap.affinity_set(0);
  ASSERT_FALSE(aff.empty());
  EXPECT_EQ(aff[0], 3);  // strongest first
  // 4 is below the 60%-above-mean cut? aff=1 < 1.37 -> excluded.
  EXPECT_EQ(aff.size(), 1u);

  const auto u = lap.compute_update_set(0);
  ASSERT_FALSE(u.empty());
  EXPECT_EQ(u[0], 3);
  // Step 4 completes the set with any nonzero-affinity processor: 4.
  ASSERT_EQ(u.size(), 2u);
  EXPECT_EQ(u[1], 4);
}

TEST(Lap, AffinityThresholdExcludesWeakTargets) {
  LockLap lap(kProcs, kK, /*threshold=*/0.6);
  // Strong affinity to 1 (ten transfers), weak to 2 (one): the mean is
  // 11/7 ~ 1.57, the 60%-above cut 2.51 — only 1 qualifies.
  for (int i = 0; i < 10; ++i) lap.record_transfer(0, 1);
  lap.record_transfer(0, 2);
  const auto aff = lap.affinity_set(0);
  ASSERT_EQ(aff.size(), 1u);
  EXPECT_EQ(aff[0], 1);
  // Threshold 0 lowers the cut to the mean itself: still only 1 (10 >= 1.57
  // but 1 < 1.57).
  LockLap lap0(kProcs, kK, 0.0);
  for (int i = 0; i < 10; ++i) lap0.record_transfer(0, 1);
  lap0.record_transfer(0, 2);
  EXPECT_EQ(lap0.affinity_set(0).size(), 1u);
  // Uniform history with a zero-diluted mean keeps every target in the set.
  LockLap uni(kProcs, kK, 0.6);
  for (const ProcId q : {1, 2, 3}) uni.record_transfer(0, q);
  EXPECT_EQ(uni.affinity_set(0).size(), 3u);
}

TEST(Lap, VirtualQueueFillsWhenNoAffinity) {
  LockLap lap(kProcs, kK, kThreshold);
  lap.add_notice(6);
  lap.add_notice(1);
  lap.add_notice(4);
  const auto u = lap.compute_update_set(0);
  // Step 4: virtual queue order, truncated to K.
  ASSERT_EQ(u.size(), 2u);
  EXPECT_EQ(u[0], 6);
  EXPECT_EQ(u[1], 1);
}

TEST(Lap, VirtualQueueSkipsSelf) {
  LockLap lap(kProcs, kK, kThreshold);
  lap.add_notice(0);
  lap.add_notice(2);
  const auto u = lap.compute_update_set(0);
  ASSERT_EQ(u.size(), 1u);
  EXPECT_EQ(u[0], 2);
}

TEST(Lap, Step3PrefersVirtualQueueMembersWithAffinity) {
  LockLap lap(kProcs, /*K=*/2, kThreshold);
  // Affinity history: strong to 3 (enters affinity set), weak to 5.
  for (int i = 0; i < 4; ++i) {
    lap.compute_update_set(0);
    lap.record_transfer(0, 3);
  }
  lap.compute_update_set(0);
  lap.record_transfer(0, 5);
  // Virtual queue: 6 (no affinity) then 5 (has affinity).
  lap.add_notice(6);
  lap.add_notice(5);
  const auto u = lap.compute_update_set(0);
  ASSERT_EQ(u.size(), 2u);
  EXPECT_EQ(u[0], 3);  // affinity set
  EXPECT_EQ(u[1], 5);  // virtualQ ∩ nonzero affinity beats plain virtualQ
}

TEST(Lap, ConsumeNoticeRemovesOldestEntry) {
  LockLap lap(kProcs, kK, kThreshold);
  lap.add_notice(2);
  lap.add_notice(3);
  lap.add_notice(2);
  lap.consume_notice(2);
  const auto u = lap.compute_update_set(0);
  ASSERT_EQ(u.size(), 2u);
  EXPECT_EQ(u[0], 3);
  EXPECT_EQ(u[1], 2);  // the second notice from 2 remains
}

TEST(Lap, ScoringCountsHitsAndMisses) {
  LockLap lap(kProcs, kK, kThreshold);
  lap.enqueue_waiter(4);
  lap.compute_update_set(1);  // predicts {4}
  lap.dequeue_waiter();
  lap.record_transfer(1, 4);  // hit
  lap.compute_update_set(4);  // empty prediction
  lap.record_transfer(4, 2);  // miss
  const auto& s = lap.scores();
  EXPECT_EQ(s.lap.predictions, 2u);
  EXPECT_EQ(s.lap.hits, 1u);
  EXPECT_DOUBLE_EQ(s.lap.rate(), 0.5);
  EXPECT_EQ(s.waitq.predictions, 2u);
  EXPECT_EQ(s.waitq.hits, 1u);
}

TEST(Lap, SelfTransfersAreNotScored) {
  LockLap lap(kProcs, kK, kThreshold);
  lap.compute_update_set(1);
  lap.record_transfer(1, 1);
  EXPECT_EQ(lap.scores().lap.predictions, 0u);
  EXPECT_EQ(lap.affinity(1, 1), 0);
}

TEST(Lap, TransferHistoryBuildsAffinityMatrix) {
  LockLap lap(kProcs, kK, kThreshold);
  lap.record_transfer(2, 5);
  lap.record_transfer(2, 5);
  lap.record_transfer(5, 2);
  EXPECT_EQ(lap.affinity(2, 5), 2);
  EXPECT_EQ(lap.affinity(5, 2), 1);
  EXPECT_EQ(lap.affinity(2, 3), 0);
}

TEST(Lap, WaitQueueFifo) {
  LockLap lap(kProcs, kK, kThreshold);
  lap.enqueue_waiter(3);
  lap.enqueue_waiter(1);
  EXPECT_EQ(lap.waiting_count(), 2u);
  EXPECT_EQ(lap.dequeue_waiter(), 3);
  EXPECT_EQ(lap.dequeue_waiter(), 1);
  EXPECT_FALSE(lap.has_waiters());
}

TEST(Lap, SnapshotScoredOnceThenRetaken) {
  LockLap lap(kProcs, kK, kThreshold);
  lap.enqueue_waiter(4);
  lap.compute_update_set(1);
  lap.dequeue_waiter();
  lap.record_transfer(1, 4);  // scores the snapshot
  lap.record_transfer(1, 5);  // no live snapshot: affinity only
  EXPECT_EQ(lap.scores().lap.predictions, 1u);
  EXPECT_EQ(lap.affinity(1, 5), 1);
}

TEST(Lap, UpdateSetSizeOneKeepsOnlyBest) {
  LockLap lap(kProcs, /*K=*/1, kThreshold);
  for (int i = 0; i < 4; ++i) {
    lap.compute_update_set(0);
    lap.record_transfer(0, 3);
  }
  lap.add_notice(6);
  const auto u = lap.compute_update_set(0);
  ASSERT_EQ(u.size(), 1u);
  EXPECT_EQ(u[0], 3);
}

TEST(Lap, DisabledAffinityViaHugeThreshold) {
  LockLap lap(kProcs, kK, 1e30);
  for (int i = 0; i < 10; ++i) {
    lap.compute_update_set(0);
    lap.record_transfer(0, 3);
  }
  EXPECT_TRUE(lap.affinity_set(0).empty());
  // Step 4's nonzero-affinity fallback still finds 3.
  const auto u = lap.compute_update_set(0);
  ASSERT_FALSE(u.empty());
  EXPECT_EQ(u[0], 3);
}

}  // namespace
}  // namespace aecdsm::test
