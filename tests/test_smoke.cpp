// End-to-end smoke tests: tiny SPMD programs must produce correct results
// under every protocol, and the per-processor time accounting must be
// conserved (every cycle lands in exactly one bucket).
#include <gtest/gtest.h>

#include "dsm/shared_array.hpp"
#include "tests/test_util.hpp"

namespace aecdsm::test {
namespace {

class SmokeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SmokeTest, LockProtectedCounter) {
  dsm::SharedArray<std::uint32_t> counter;
  constexpr int kIters = 5;
  LambdaApp app(
      "counter", 4096,
      [&](dsm::Machine& m) { counter = dsm::SharedArray<std::uint32_t>::alloc(m, 1); },
      [&](dsm::Context& ctx) {
        for (int i = 0; i < kIters; ++i) {
          ctx.lock(0);
          counter.put(ctx, 0, counter.get(ctx, 0) + 1);
          ctx.unlock(0);
          ctx.compute(100);
        }
        ctx.barrier();
        if (ctx.pid() == 0) {
          // `app` outlives the run; capturing the enclosing scope is safe.
          app.set_ok(counter.get(ctx, 0) ==
                     static_cast<std::uint32_t>(kIters * ctx.nprocs()));
        }
      });
  const RunStats stats = run_protocol(app, GetParam(), small_params());
  EXPECT_TRUE(stats.result_valid) << "wrong counter under " << GetParam();
  EXPECT_EQ(stats.sync.lock_acquires, static_cast<std::uint64_t>(kIters * 4));
  EXPECT_EQ(stats.sync.barrier_events, 1u);
  EXPECT_GT(stats.finish_time, 0u);
}

TEST_P(SmokeTest, BarrierPhasedExchange) {
  dsm::SharedArray<std::uint32_t> data;
  const int n = 4;
  LambdaApp app(
      "exchange", 64 * 1024,
      [&](dsm::Machine& m) {
        data = dsm::SharedArray<std::uint32_t>::alloc(m, 64 * static_cast<std::size_t>(n));
      },
      [&](dsm::Context& ctx) {
        const int me = ctx.pid();
        // Phase 1: each processor fills its own chunk.
        for (int i = 0; i < 64; ++i) {
          data.put(ctx, static_cast<std::size_t>(me * 64 + i),
                   static_cast<std::uint32_t>(me * 1000 + i));
        }
        ctx.barrier();
        // Phase 2: each processor checks its neighbour's chunk.
        const int nb = (me + 1) % ctx.nprocs();
        bool good = true;
        for (int i = 0; i < 64; ++i) {
          if (data.get(ctx, static_cast<std::size_t>(nb * 64 + i)) !=
              static_cast<std::uint32_t>(nb * 1000 + i)) {
            good = false;
          }
        }
        ctx.barrier();
        if (me == 0 && good) app.set_ok(true);
        if (me != 0 && !good) app.set_ok(false);
      });
  const RunStats stats = run_protocol(app, GetParam(), small_params(n));
  EXPECT_TRUE(stats.result_valid) << "stale neighbour data under " << GetParam();
}

TEST_P(SmokeTest, AccountingConserved) {
  dsm::SharedArray<std::uint32_t> counter;
  LambdaApp app(
      "acct", 4096,
      [&](dsm::Machine& m) { counter = dsm::SharedArray<std::uint32_t>::alloc(m, 1); },
      [&](dsm::Context& ctx) {
        for (int i = 0; i < 3; ++i) {
          ctx.lock(1);
          counter.put(ctx, 0, counter.get(ctx, 0) + 2);
          ctx.unlock(1);
        }
        ctx.barrier();
        if (ctx.pid() == 0) app.set_ok(counter.get(ctx, 0) == 24);
      });
  const RunStats stats = run_protocol(app, GetParam(), small_params());
  EXPECT_TRUE(stats.result_valid);
  // Total attributed time per processor >= its finish time (post-finish ipc
  // service can push the bucket total past the finish stamp, never below).
  TimeBreakdown agg = stats.aggregate();
  EXPECT_GT(agg.busy, 0u);
  EXPECT_GT(agg.total(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SmokeTest, ::testing::ValuesIn(kAllProtocols));

}  // namespace
}  // namespace aecdsm::test
