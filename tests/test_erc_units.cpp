// Behavioural tests of the Munin-style eager-release-consistency baseline:
// copyset growth, eager update fan-out with acknowledgements, the release
// stall, and the fetch/update race handling.
#include <gtest/gtest.h>

#include "dsm/shared_array.hpp"
#include "erc/protocol.hpp"
#include "tests/test_util.hpp"

namespace aecdsm::test {
namespace {

RunStats run_erc(dsm::App& app, const SystemParams& params,
                 std::shared_ptr<const erc::ErcShared>* shared_out = nullptr) {
  erc::ErcSuite suite;
  dsm::RunConfig rc;
  rc.params = params;
  const RunStats stats = dsm::run_app(app, suite.suite(), rc);
  if (shared_out != nullptr) *shared_out = suite.shared_handle();
  return stats;
}

TEST(ErcProtocol, CopysetGrowsWithReaders) {
  dsm::SharedArray<std::uint32_t> arr;
  std::shared_ptr<const erc::ErcShared> shared;
  LambdaApp app(
      "copyset", 8192,
      [&](dsm::Machine& m) { arr = dsm::SharedArray<std::uint32_t>::alloc(m, 8); },
      [&](dsm::Context& ctx) {
        if (ctx.pid() == 0) arr.put(ctx, 0, 7);
        ctx.barrier();
        (void)arr.get(ctx, 0);  // everyone reads -> everyone joins
        ctx.barrier();
        if (ctx.pid() == 0) app.set_ok(arr.get(ctx, 0) == 7);
      });
  const RunStats stats = run_erc(app, small_params(4), &shared);
  ASSERT_TRUE(stats.result_valid);
  // Page 0's copyset: all four processors cache it.
  EXPECT_EQ(shared->copyset[0].count(), 4);
  for (int p = 0; p < 4; ++p) EXPECT_TRUE(shared->copyset[0].test(p));
}

TEST(ErcProtocol, UpdatesReachAllCopiesEagerly) {
  // After a writer's barrier flush, a reader's *already-valid* copy has the
  // new values without any further faulting.
  dsm::SharedArray<std::uint32_t> arr;
  LambdaApp app(
      "eager", 8192,
      [&](dsm::Machine& m) { arr = dsm::SharedArray<std::uint32_t>::alloc(m, 32); },
      [&](dsm::Context& ctx) {
        (void)arr.get(ctx, 0);  // join the copyset up front
        ctx.barrier();
        for (int round = 0; round < 3; ++round) {
          if (ctx.pid() == 0) {
            for (std::size_t i = 0; i < 32; ++i) {
              arr.put(ctx, i, static_cast<std::uint32_t>(round * 100 + i));
            }
          }
          ctx.barrier();
          if (ctx.pid() == 1) {
            for (std::size_t i = 0; i < 32; ++i) {
              if (arr.get(ctx, i) != static_cast<std::uint32_t>(round * 100 + i)) {
                app.set_ok(false);
              }
            }
          }
          ctx.barrier();
        }
        if (ctx.pid() == 0) app.set_ok(true);
      });
  const RunStats stats = run_erc(app, small_params(2));
  ASSERT_TRUE(stats.result_valid);
  // The reader never faults on the page after its first join: the second
  // and third rounds arrive as pushed updates.
  EXPECT_LE(stats.faults.read_faults, 8u);
  EXPECT_GT(stats.diffs.diffs_applied, 0u);
}

TEST(ErcProtocol, ReleaseStallsUntilAcksArrive) {
  // Lock hand-off correctness depends on the ack stall: a chain of
  // increments through two processors must never lose an update.
  dsm::SharedArray<std::uint64_t> cell;
  LambdaApp app(
      "ackstall", 4096,
      [&](dsm::Machine& m) { cell = dsm::SharedArray<std::uint64_t>::alloc(m, 1); },
      [&](dsm::Context& ctx) {
        for (int i = 0; i < 8; ++i) {
          ctx.lock(0);
          cell.put(ctx, 0, cell.get(ctx, 0) + 1);
          ctx.unlock(0);
        }
        ctx.barrier();
        if (ctx.pid() == 0) {
          app.set_ok(cell.get(ctx, 0) ==
                     8u * static_cast<std::uint64_t>(ctx.nprocs()));
        }
      });
  const RunStats stats = run_erc(app, small_params(8));
  EXPECT_TRUE(stats.result_valid);
}

TEST(ErcProtocol, NoHiddenDiffWork) {
  // Eager RC exposes all diff creation at releases/barriers.
  dsm::SharedArray<std::uint64_t> cell;
  LambdaApp app(
      "exposed", 4096,
      [&](dsm::Machine& m) { cell = dsm::SharedArray<std::uint64_t>::alloc(m, 1); },
      [&](dsm::Context& ctx) {
        ctx.lock(0);
        cell.put(ctx, 0, cell.get(ctx, 0) + 1);
        ctx.unlock(0);
        ctx.barrier();
        if (ctx.pid() == 0) app.set_ok(cell.get(ctx, 0) == 4);
      });
  const RunStats stats = run_erc(app, small_params(4));
  ASSERT_TRUE(stats.result_valid);
  EXPECT_EQ(stats.diffs.create_hidden_cycles, 0u);
  EXPECT_GT(stats.diffs.create_cycles, 0u);
}

TEST(ErcProtocol, ScoringLapMatchesEventCounts) {
  dsm::SharedArray<std::uint64_t> cell;
  std::shared_ptr<const erc::ErcShared> shared;
  LambdaApp app(
      "lapscores", 4096,
      [&](dsm::Machine& m) { cell = dsm::SharedArray<std::uint64_t>::alloc(m, 1); },
      [&](dsm::Context& ctx) {
        for (int i = 0; i < 5; ++i) {
          ctx.lock_acquire_notice(2);
          ctx.lock(2);
          cell.put(ctx, 0, cell.get(ctx, 0) + 1);
          ctx.unlock(2);
        }
        ctx.barrier();
        if (ctx.pid() == 0) app.set_ok(cell.get(ctx, 0) == 20);
      });
  const RunStats stats = run_erc(app, small_params(4), &shared);
  ASSERT_TRUE(stats.result_valid);
  // Lock 2's manager (2 % 4) owns its LAP shard.
  const auto it = shared->lap[2].find(2);
  ASSERT_NE(it, shared->lap[2].end());
  EXPECT_EQ(it->second.scores().acquire_events, 20u);
  EXPECT_GT(it->second.scores().lap.rate(), 0.5);
}

TEST(ErcProtocol, MoreTrafficThanAecOnSharedData) {
  // The paper's §6 claim, at unit-test scale: ERC's update-everyone pushes
  // move more bytes than AEC's update-set pushes once several processors
  // cache the page.
  auto make_app = [](dsm::SharedArray<std::uint64_t>& arr, LambdaApp*& out) {
    out = new LambdaApp(
        "traffic", 8192,
        [&arr](dsm::Machine& m) { arr = dsm::SharedArray<std::uint64_t>::alloc(m, 16); },
        [&arr, &out](dsm::Context& ctx) {
          (void)arr.get(ctx, 0);  // everyone joins the copyset
          ctx.barrier();
          for (int i = 0; i < 6; ++i) {
            ctx.lock(0);
            arr.put(ctx, 0, arr.get(ctx, 0) + 1);
            ctx.unlock(0);
          }
          ctx.barrier();
          if (ctx.pid() == 0) out->set_ok(arr.get(ctx, 0) == 48);
        });
  };
  dsm::SharedArray<std::uint64_t> arr1, arr2;
  LambdaApp* erc_app = nullptr;
  LambdaApp* aec_app = nullptr;
  make_app(arr1, erc_app);
  make_app(arr2, aec_app);
  const RunStats erc_stats = run_protocol(*erc_app, "Munin-ERC", small_params(8));
  const RunStats aec_stats = run_protocol(*aec_app, "AEC", small_params(8));
  ASSERT_TRUE(erc_stats.result_valid);
  ASSERT_TRUE(aec_stats.result_valid);
  EXPECT_GT(erc_stats.msgs.messages, aec_stats.msgs.messages);
  delete erc_app;
  delete aec_app;
}

}  // namespace
}  // namespace aecdsm::test
