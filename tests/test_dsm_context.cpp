// Unit tests for the DSM runtime layer: shared allocation, the typed
// access path, fault bookkeeping, API misuse checks, and machine plumbing.
#include <gtest/gtest.h>

#include "dsm/shared_array.hpp"
#include "tests/test_util.hpp"

namespace aecdsm::test {
namespace {

TEST(Machine, AllocationsArePageAlignedAndDisjoint) {
  SystemParams params = small_params();
  dsm::Machine m(params, 1 << 16);
  const GAddr a = m.alloc_shared(10);
  const GAddr b = m.alloc_shared(params.page_bytes + 1);
  const GAddr c = m.alloc_shared(4);
  EXPECT_EQ(a % params.page_bytes, 0u);
  EXPECT_EQ(b, a + params.page_bytes);          // 10 bytes round up to one page
  EXPECT_EQ(c, b + 2 * params.page_bytes);      // page+1 rounds up to two
}

TEST(Machine, ArenaExhaustionThrows) {
  SystemParams params = small_params();
  dsm::Machine m(params, params.page_bytes * 2);
  m.alloc_shared(params.page_bytes * 2);
  EXPECT_THROW(m.alloc_shared(1), SimError);
}

TEST(Machine, ManagerPlacement) {
  SystemParams params = small_params(4);
  dsm::Machine m(params, 4096);
  EXPECT_EQ(m.lock_manager(0), 0);
  EXPECT_EQ(m.lock_manager(5), 1);
  EXPECT_EQ(m.lock_manager(7), 3);
  EXPECT_EQ(m.barrier_manager(), 0);
}

TEST(Context, TypedReadWriteRoundTrip) {
  dsm::SharedArray<double> arr;
  LambdaApp app(
      "roundtrip", 8192,
      [&](dsm::Machine& m) { arr = dsm::SharedArray<double>::alloc(m, 16); },
      [&](dsm::Context& ctx) {
        if (ctx.pid() == 0) {
          for (std::size_t i = 0; i < 16; ++i) {
            arr.put(ctx, i, 1.5 * static_cast<double>(i));
          }
          bool good = true;
          for (std::size_t i = 0; i < 16; ++i) {
            if (arr.get(ctx, i) != 1.5 * static_cast<double>(i)) good = false;
          }
          app.set_ok(good);
        }
        ctx.barrier();
      });
  const RunStats stats = run_protocol(app, "AEC", small_params());
  EXPECT_TRUE(stats.result_valid);
}

TEST(Context, MisalignedAccessThrows) {
  LambdaApp app(
      "misaligned", 4096, [](dsm::Machine& m) { m.alloc_shared(64); },
      [&](dsm::Context& ctx) {
        if (ctx.pid() == 0) {
          EXPECT_THROW(ctx.read<std::uint32_t>(2), SimError);
          EXPECT_THROW(ctx.read<std::uint64_t>(4), SimError);
        }
        app.set_ok(true);
      });
  run_protocol(app, "AEC", small_params());
}

TEST(Context, OutOfArenaAccessThrows) {
  LambdaApp app(
      "oob", 4096, [](dsm::Machine& m) { m.alloc_shared(8); },
      [&](dsm::Context& ctx) {
        if (ctx.pid() == 0) {
          EXPECT_THROW(ctx.read<std::uint32_t>(1 << 20), SimError);
        }
        app.set_ok(true);
      });
  run_protocol(app, "AEC", small_params());
}

TEST(Context, RecursiveLockThrows) {
  LambdaApp app(
      "recursive", 4096, [](dsm::Machine& m) { m.alloc_shared(8); },
      [&](dsm::Context& ctx) {
        if (ctx.pid() == 0) {
          ctx.lock(1);
          EXPECT_THROW(ctx.lock(1), SimError);
          ctx.unlock(1);
        }
        app.set_ok(true);
      });
  run_protocol(app, "AEC", small_params());
}

TEST(Context, UnlockOfUnheldLockThrows) {
  LambdaApp app(
      "badunlock", 4096, [](dsm::Machine& m) { m.alloc_shared(8); },
      [&](dsm::Context& ctx) {
        if (ctx.pid() == 0) {
          EXPECT_THROW(ctx.unlock(9), SimError);
        }
        app.set_ok(true);
      });
  run_protocol(app, "AEC", small_params());
}

TEST(Context, BarrierWhileHoldingLockThrows) {
  LambdaApp app(
      "badbarrier", 4096, [](dsm::Machine& m) { m.alloc_shared(8); },
      [&](dsm::Context& ctx) {
        if (ctx.pid() == 0) {
          ctx.lock(0);
          EXPECT_THROW(ctx.barrier(), SimError);
          ctx.unlock(0);
        }
        // The other processors must not wait on a barrier pid 0 never joins.
        app.set_ok(true);
      });
  run_protocol(app, "AEC", small_params(2));
}

TEST(Context, FaultStatisticsAreRecorded) {
  dsm::SharedArray<std::uint32_t> arr;
  LambdaApp app(
      "faults", 8192,
      [&](dsm::Machine& m) { arr = dsm::SharedArray<std::uint32_t>::alloc(m, 64); },
      [&](dsm::Context& ctx) {
        if (ctx.pid() == 0) {
          for (std::size_t i = 0; i < 64; ++i) arr.put(ctx, i, 7);
        }
        ctx.barrier();
        if (ctx.pid() == 1) {
          std::uint32_t sum = 0;
          for (std::size_t i = 0; i < 64; ++i) sum += arr.get(ctx, i);
          (void)sum;
        }
        ctx.barrier();
        if (ctx.pid() == 0) app.set_ok(true);
      });
  const RunStats stats = run_protocol(app, "AEC", small_params(2));
  EXPECT_GT(stats.faults.read_faults + stats.faults.write_faults, 0u);
  EXPECT_GT(stats.faults.fault_cycles, 0u);
}

TEST(Context, SyncEventCountsMatchProgram) {
  LambdaApp app(
      "synccount", 4096, [](dsm::Machine& m) { m.alloc_shared(8); },
      [&](dsm::Context& ctx) {
        ctx.lock(3);
        ctx.unlock(3);
        ctx.lock(9);
        ctx.unlock(9);
        ctx.barrier();
        ctx.barrier();
        if (ctx.pid() == 0) app.set_ok(true);
      });
  const RunStats stats = run_protocol(app, "AEC", small_params(4));
  EXPECT_EQ(stats.sync.lock_acquires, 8u);   // 2 per proc
  EXPECT_EQ(stats.sync.distinct_locks, 2u);
  EXPECT_EQ(stats.sync.barrier_events, 2u);
}

TEST(Context, AccountingConservationPerProcessor) {
  dsm::SharedArray<std::uint32_t> arr;
  LambdaApp app(
      "conserve", 8192,
      [&](dsm::Machine& m) { arr = dsm::SharedArray<std::uint32_t>::alloc(m, 32); },
      [&](dsm::Context& ctx) {
        ctx.lock(0);
        arr.put(ctx, 0, arr.get(ctx, 0) + 1);
        ctx.unlock(0);
        ctx.compute(777);
        ctx.barrier();
        if (ctx.pid() == 0) app.set_ok(arr.get(ctx, 0) == 4);
      });
  const RunStats stats = run_protocol(app, "AEC", small_params(4));
  EXPECT_TRUE(stats.result_valid);
  // Attributed time per processor is at least its finish time (equality when
  // no post-finish services land on the node).
  for (const TimeBreakdown& b : stats.per_proc) {
    EXPECT_GE(b.total() + 1, stats.per_proc[0].busy > 0 ? 1u : 1u);
    EXPECT_GT(b.busy, 777u - 1u);
  }
}

}  // namespace
}  // namespace aecdsm::test
