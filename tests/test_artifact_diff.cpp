// Golden-file tests for the bench_diff regression gate: identical
// documents diff clean (exit 0), a perturbed finish_time flags the cell
// with the correct relative delta and fails the gate, missing/extra cells
// report as removed/added, tolerance rules and files parse, and malformed
// or unknown-schema artifacts raise a clear ArtifactError instead of
// crashing.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "harness/artifact_diff.hpp"
#include "harness/batch.hpp"
#include "tests/test_util.hpp"

namespace aecdsm::test {
namespace {

namespace ad = harness::artifact_diff;
using harness::json::Value;

/// Hand-built batch-v1 cell with only the members the differ reads.
Value make_cell(const std::string& label, const std::string& protocol,
                const std::string& app, std::uint64_t finish_time,
                std::uint64_t messages = 1000, int num_procs = 4,
                bool with_lap = false) {
  Value c = Value::object();
  c["label"] = Value(label);
  c["protocol"] = Value(protocol);
  c["app"] = Value(app);
  c["scale"] = Value("small");
  c["seed"] = Value(std::uint64_t{42});
  Value params = Value::object();
  params["num_procs"] = Value(num_procs);
  params["page_bytes"] = Value(std::uint64_t{256});
  c["params"] = std::move(params);
  Value stats = Value::object();
  stats["finish_time"] = Value(finish_time);
  stats["result_valid"] = Value(true);
  Value msgs = Value::object();
  msgs["messages"] = Value(messages);
  msgs["bytes"] = Value(messages * 64);
  stats["msgs"] = std::move(msgs);
  Value diffs = Value::object();
  diffs["diffs_created"] = Value(std::uint64_t{50});
  diffs["diff_bytes"] = Value(std::uint64_t{12800});
  diffs["diffs_applied"] = Value(std::uint64_t{90});
  stats["diffs"] = std::move(diffs);
  c["stats"] = std::move(stats);
  if (with_lap) {
    Value lap = Value::object();
    Value score = Value::object();
    score["predictions"] = Value(std::uint64_t{100});
    score["hits"] = Value(std::uint64_t{90});
    score["rate"] = Value(0.9);
    lap["lap"] = score;
    lap["waitq"] = score;
    c["lap"] = std::move(lap);
  } else {
    c["lap"] = Value();
  }
  return c;
}

Value make_doc(std::initializer_list<Value> cells) {
  Value doc = Value::object();
  doc["schema"] = Value(ad::kBatchSchema);
  doc["plan"] = Value("golden");
  Value arr = Value::array();
  for (const Value& c : cells) arr.append(c);
  doc["cells"] = std::move(arr);
  return doc;
}

TEST(ArtifactDiff, IdenticalDocumentsDiffCleanAndExitZero) {
  const Value doc = make_doc({make_cell("AEC/IS", "AEC", "IS", 100000, 500, 4, true),
                              make_cell("TreadMarks/IS", "TreadMarks", "IS", 120000)});
  const ad::Document a = ad::load(doc, "a");
  const ad::Document b = ad::load(doc, "b");
  const ad::DiffResult r = ad::diff(a, b, {});
  EXPECT_EQ(r.compared, 2u);
  EXPECT_EQ(r.identical, 2u);
  EXPECT_TRUE(r.changed.empty());
  EXPECT_TRUE(r.added.empty());
  EXPECT_TRUE(r.removed.empty());
  EXPECT_FALSE(r.gate_failed());
  EXPECT_EQ(ad::gate_exit_code(r), 0);
}

TEST(ArtifactDiff, PerturbedFinishTimeFlagsCellWithRelativeDelta) {
  const Value before = make_doc({make_cell("AEC/IS", "AEC", "IS", 200000),
                                 make_cell("AEC/FFT", "AEC", "FFT", 300000)});
  const Value after = make_doc({make_cell("AEC/IS", "AEC", "IS", 210000),
                                make_cell("AEC/FFT", "AEC", "FFT", 300000)});
  const ad::DiffResult r =
      ad::diff(ad::load(before, "a"), ad::load(after, "b"), {});
  EXPECT_EQ(r.compared, 2u);
  EXPECT_EQ(r.identical, 1u);
  ASSERT_EQ(r.changed.size(), 1u);
  const ad::CellDiff& c = r.changed[0];
  // The report names the cell, protocol, app, and metric.
  EXPECT_EQ(c.cell.label, "AEC/IS");
  EXPECT_EQ(c.cell.protocol, "AEC");
  EXPECT_EQ(c.cell.app, "IS");
  EXPECT_TRUE(c.matched_by_hash);
  ASSERT_EQ(c.deltas.size(), 1u);
  EXPECT_EQ(c.deltas[0].metric, "finish_time");
  EXPECT_DOUBLE_EQ(c.deltas[0].before, 200000.0);
  EXPECT_DOUBLE_EQ(c.deltas[0].after, 210000.0);
  EXPECT_DOUBLE_EQ(c.deltas[0].rel(), 0.05);  // +5%
  EXPECT_TRUE(c.deltas[0].exceeds);           // default tolerance is exact
  EXPECT_TRUE(r.gate_failed());
  EXPECT_EQ(ad::gate_exit_code(r), 1);
}

TEST(ArtifactDiff, ToleranceExcusesSmallDeltasButNotLargeOnes) {
  const Value before = make_doc({make_cell("AEC/IS", "AEC", "IS", 200000)});
  const Value after = make_doc({make_cell("AEC/IS", "AEC", "IS", 210000)});
  ad::Tolerances loose;
  loose.add_spec("finish_time=10%");
  const ad::DiffResult ok =
      ad::diff(ad::load(before, "a"), ad::load(after, "b"), loose);
  ASSERT_EQ(ok.changed.size(), 1u);  // still reported as changed...
  EXPECT_FALSE(ok.changed[0].exceeds());  // ...but inside the tolerance
  EXPECT_FALSE(ok.gate_failed());

  ad::Tolerances tight;
  tight.add_spec("finish_time=1%");
  const ad::DiffResult bad =
      ad::diff(ad::load(before, "a"), ad::load(after, "b"), tight);
  EXPECT_TRUE(bad.gate_failed());

  // A wildcard default applies to every metric without its own rule.
  ad::Tolerances wild;
  wild.add_spec("*=10%");
  EXPECT_FALSE(ad::diff(ad::load(before, "a"), ad::load(after, "b"), wild)
                   .gate_failed());
}

TEST(ArtifactDiff, MissingAndExtraCellsReportAsRemovedAndAdded) {
  const Value before = make_doc({make_cell("AEC/IS", "AEC", "IS", 100),
                                 make_cell("AEC/FFT", "AEC", "FFT", 200)});
  const Value after = make_doc({make_cell("AEC/IS", "AEC", "IS", 100),
                                make_cell("AEC/Ocean", "AEC", "Ocean", 300)});
  const ad::DiffResult r =
      ad::diff(ad::load(before, "a"), ad::load(after, "b"), {});
  EXPECT_EQ(r.compared, 1u);
  ASSERT_EQ(r.added.size(), 1u);
  EXPECT_EQ(r.added[0].label, "AEC/Ocean");
  ASSERT_EQ(r.removed.size(), 1u);
  EXPECT_EQ(r.removed[0].label, "AEC/FFT");
  EXPECT_TRUE(r.gate_failed());
  EXPECT_EQ(ad::gate_exit_code(r), 1);
}

TEST(ArtifactDiff, IdentityFallbackAlignsWhenParamsChanged) {
  // Same cell identity, different params block (e.g. a SystemParams field
  // added between PRs): the content hashes differ, the identity fallback
  // still pairs the cells instead of reporting added+removed.
  const Value before = make_doc({make_cell("AEC/IS", "AEC", "IS", 100000, 500, 4)});
  const Value after = make_doc({make_cell("AEC/IS", "AEC", "IS", 100000, 500, 8)});
  const ad::DiffResult r =
      ad::diff(ad::load(before, "a"), ad::load(after, "b"), {});
  EXPECT_TRUE(r.added.empty());
  EXPECT_TRUE(r.removed.empty());
  EXPECT_EQ(r.compared, 1u);
  EXPECT_EQ(r.identical, 1u);  // metrics equal, only the inputs moved
  EXPECT_FALSE(r.gate_failed());
}

TEST(ArtifactDiff, LapTableAppearingOrVanishingAlwaysExceeds) {
  const Value before = make_doc({make_cell("AEC/IS", "AEC", "IS", 100, 500, 4, true)});
  const Value after = make_doc({make_cell("AEC/IS", "AEC", "IS", 100, 500, 4, false)});
  ad::Tolerances loose;
  loose.add_spec("*=1000%");
  const ad::DiffResult r =
      ad::diff(ad::load(before, "a"), ad::load(after, "b"), loose);
  ASSERT_EQ(r.changed.size(), 1u);
  EXPECT_TRUE(r.changed[0].exceeds());
  EXPECT_TRUE(r.gate_failed());
}

TEST(ArtifactDiff, BenchAllDocumentsFlattenPerBenchScopes) {
  Value combined = Value::object();
  combined["schema"] = Value(ad::kBenchAllSchema);
  combined["plan"] = Value("bench_all");
  Value benches = Value::object();
  benches["fig3"] = make_doc({make_cell("AEC/IS", "AEC", "IS", 100)});
  benches["table4"] = make_doc({make_cell("AEC/IS", "AEC", "IS", 100)});
  combined["benches"] = std::move(benches);
  const ad::Document doc = ad::load(combined, "combined");
  EXPECT_EQ(doc.schema, ad::kBenchAllSchema);
  ASSERT_EQ(doc.cells.size(), 2u);
  EXPECT_EQ(doc.cells[0].scope, "fig3");
  EXPECT_EQ(doc.cells[1].scope, "table4");
  EXPECT_EQ(doc.cells[0].display(), "fig3:AEC/IS");
  // Identical duplicate cells in different scopes never cross-match.
  const ad::DiffResult r = ad::diff(doc, doc, {});
  EXPECT_EQ(r.compared, 2u);
  EXPECT_FALSE(r.gate_failed());
}

TEST(ArtifactDiff, SubsetModeIgnoresOneSidedCellsAndCrossesScopes) {
  // Baseline: a bench-all document with scoped cells. New: a plain batch
  // sweep (no scopes, different labels) sharing one cell's simulation
  // inputs and adding one preset the baseline has never seen. Subset mode
  // aligns the shared cell across the scope/label mismatch and waves the
  // one-sided cells through instead of failing the gate.
  Value combined = Value::object();
  combined["schema"] = Value(ad::kBenchAllSchema);
  combined["plan"] = Value("bench_all");
  Value benches = Value::object();
  benches["fig3"] = make_doc({make_cell("AEC/IS", "AEC", "IS", 100),
                              make_cell("AEC/FFT", "AEC", "FFT", 200)});
  combined["benches"] = std::move(benches);
  const ad::Document baseline = ad::load(combined, "baseline");

  const Value sweep = make_doc({make_cell("matrix:AEC/IS", "AEC", "IS", 100),
                                make_cell("matrix:Hybrid/IS", "Hybrid", "IS", 150)});
  const ad::Document matrix = ad::load(sweep, "matrix");

  const ad::DiffResult strict = ad::diff(baseline, matrix, {});
  EXPECT_TRUE(strict.gate_failed());  // scope mismatch: nothing aligns

  const ad::DiffResult r = ad::diff(baseline, matrix, {}, /*subset=*/true);
  EXPECT_TRUE(r.subset);
  EXPECT_EQ(r.compared, 1u);
  EXPECT_EQ(r.identical, 1u);
  EXPECT_EQ(r.ignored, 1u);  // the hybrid-only cell
  EXPECT_TRUE(r.added.empty());
  EXPECT_TRUE(r.removed.empty());  // baseline-only AEC/FFT is not reported
  EXPECT_FALSE(r.gate_failed());
  EXPECT_EQ(ad::gate_exit_code(r), 0);
  const Value out = ad::to_json(r);
  EXPECT_TRUE(out.at("subset").as_bool());
  EXPECT_EQ(out.at("ignored").as_uint(), 1u);
}

TEST(ArtifactDiff, SubsetModeStillGatesOnChangedSharedCells) {
  // Subset mode relaxes coverage, not correctness: a shared cell whose
  // metrics moved fails the gate exactly as a strict diff would.
  const Value before = make_doc({make_cell("AEC/IS", "AEC", "IS", 100)});
  const Value after =
      make_doc({make_cell("matrix:AEC/IS", "AEC", "IS", 101),
                make_cell("matrix:Hybrid/IS", "Hybrid", "IS", 150)});
  const ad::DiffResult r =
      ad::diff(ad::load(before, "a"), ad::load(after, "b"), {}, /*subset=*/true);
  EXPECT_EQ(r.compared, 1u);
  EXPECT_EQ(r.ignored, 1u);
  ASSERT_EQ(r.changed.size(), 1u);
  EXPECT_TRUE(r.changed[0].matched_by_hash);
  EXPECT_TRUE(r.gate_failed());
  EXPECT_EQ(ad::gate_exit_code(r), 1);
}

TEST(ArtifactDiff, SchemaErrorsAreClearNotCrashes) {
  // Missing schema.
  Value no_schema = Value::object();
  no_schema["cells"] = Value::array();
  EXPECT_THROW(ad::load(no_schema, "x.json"), ad::ArtifactError);
  try {
    ad::load(no_schema, "x.json");
  } catch (const ad::ArtifactError& e) {
    EXPECT_NE(std::string(e.what()).find("x.json"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("schema"), std::string::npos);
  }
  // Unknown schema names itself in the error.
  Value unknown = Value::object();
  unknown["schema"] = Value("aecdsm-batch-v999");
  try {
    ad::load(unknown, "y.json");
    FAIL() << "unknown schema accepted";
  } catch (const ad::ArtifactError& e) {
    EXPECT_NE(std::string(e.what()).find("aecdsm-batch-v999"), std::string::npos);
  }
  // Non-object documents and non-string schemas are rejected too.
  EXPECT_THROW(ad::load(Value::array(), "z.json"), ad::ArtifactError);
  Value bad_kind = Value::object();
  bad_kind["schema"] = Value(std::uint64_t{1});
  EXPECT_THROW(ad::load(bad_kind, "w.json"), ad::ArtifactError);
  // A structurally broken cell reports which artifact it came from.
  Value broken = Value::object();
  broken["schema"] = Value(ad::kBatchSchema);
  Value cells = Value::array();
  cells.append(Value::object());  // cell with no members at all
  broken["cells"] = std::move(cells);
  EXPECT_THROW(ad::load(broken, "b.json"), ad::ArtifactError);
  // Unreadable file.
  EXPECT_THROW(ad::load_file("/nonexistent/never/there.json"), ad::ArtifactError);
}

TEST(ArtifactDiff, ToleranceValueParsing) {
  EXPECT_DOUBLE_EQ(ad::Tolerances::parse_value("0.5%"), 0.005);
  EXPECT_DOUBLE_EQ(ad::Tolerances::parse_value("2%"), 0.02);
  EXPECT_DOUBLE_EQ(ad::Tolerances::parse_value("0.005"), 0.005);
  EXPECT_DOUBLE_EQ(ad::Tolerances::parse_value("0"), 0.0);
  for (const char* bad : {"", "%", "x", "-1%", "1%%", "5px"}) {
    EXPECT_THROW(ad::Tolerances::parse_value(bad), ad::ArtifactError) << bad;
  }
  ad::Tolerances t;
  t.add_spec("finish_time=0.5%");
  t.add_spec("*=2%");
  EXPECT_DOUBLE_EQ(t.for_metric("finish_time"), 0.005);
  EXPECT_DOUBLE_EQ(t.for_metric("messages"), 0.02);  // wildcard default
  EXPECT_THROW(t.add_spec("finish_time"), ad::ArtifactError);
  EXPECT_THROW(t.add_spec("=1%"), ad::ArtifactError);
}

TEST(ArtifactDiff, ToleranceFileRoundTrip) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "aecdsm_tol_test.json";
  std::ofstream(path) << "{\"schema\":\"aecdsm-tolerances-v1\","
                         "\"tolerances\":{\"finish_time\":\"0.5%\","
                         "\"messages\":0.02,\"*\":0}}";
  ad::Tolerances t;
  t.load_file(path.string());
  EXPECT_DOUBLE_EQ(t.for_metric("finish_time"), 0.005);
  EXPECT_DOUBLE_EQ(t.for_metric("messages"), 0.02);
  EXPECT_DOUBLE_EQ(t.for_metric("anything_else"), 0.0);

  std::ofstream(path) << "{\"schema\":\"wrong-v1\",\"tolerances\":{}}";
  ad::Tolerances bad;
  EXPECT_THROW(bad.load_file(path.string()), ad::ArtifactError);
  fs::remove(path);
  EXPECT_THROW(bad.load_file(path.string()), ad::ArtifactError);
}

TEST(ArtifactDiff, DiffJsonCarriesSchemaVersionAndVerdict) {
  const Value doc = make_doc({make_cell("AEC/IS", "AEC", "IS", 100)});
  Value bumped = make_doc({make_cell("AEC/IS", "AEC", "IS", 150)});
  const ad::DiffResult r =
      ad::diff(ad::load(doc, "a"), ad::load(bumped, "b"), {});
  const Value out = ad::to_json(r);
  EXPECT_EQ(out.at("schema").as_string(), ad::kDiffSchema);
  EXPECT_EQ(out.at("version").as_uint(), 1u);
  EXPECT_TRUE(out.at("gate_failed").as_bool());
  EXPECT_EQ(out.at("changed").size(), 1u);
  const Value& delta = out.at("changed").items()[0].at("deltas").items()[0];
  EXPECT_EQ(delta.at("metric").as_string(), "finish_time");
  EXPECT_DOUBLE_EQ(delta.at("rel").as_double(), 0.5);
  // The emitted diff document round-trips through the parser.
  EXPECT_EQ(Value::parse(out.dump()).dump(), out.dump());
}

TEST(ArtifactDiff, GrowthFromZeroReportsInfiniteRelAsNullInJson) {
  const Value before = make_doc({make_cell("AEC/IS", "AEC", "IS", 100, 1000)});
  Value after = make_doc({make_cell("AEC/IS", "AEC", "IS", 100, 1000)});
  // Zero the old messages so the new value grows from an exact 0.
  const Value zeroed = Value::parse([&] {
    std::string s = before.dump();
    const std::string from = "\"messages\": 1000";
    s.replace(s.find(from), from.size(), "\"messages\": 0");
    return s;
  }());
  const ad::DiffResult r =
      ad::diff(ad::load(zeroed, "a"), ad::load(after, "b"), {});
  ASSERT_EQ(r.changed.size(), 1u);
  const Value out = ad::to_json(r);
  bool saw_messages = false;
  for (const Value& d : out.at("changed").items()[0].at("deltas").items()) {
    if (d.at("metric").as_string() != "messages") continue;
    saw_messages = true;
    EXPECT_EQ(d.at("rel").kind(), Value::Kind::kNull);  // inf has no JSON form
    EXPECT_TRUE(d.at("exceeds").as_bool());
  }
  EXPECT_TRUE(saw_messages);
}

TEST(ArtifactDiff, RealBatchDocumentLoadsAndDiffsClean) {
  harness::ExperimentPlan plan;
  plan.name = "golden_real";
  plan.add("AEC", "IS", apps::Scale::kSmall, small_params(4));
  plan.add("TreadMarks", "IS", apps::Scale::kSmall, small_params(4));
  harness::BatchOptions opts;
  opts.jobs = 2;
  opts.no_cache = true;
  harness::BatchRunner runner(opts);
  const Value doc = harness::BatchRunner::document(plan, runner.run(plan));
  const ad::Document loaded = ad::load(doc, "real");
  ASSERT_EQ(loaded.cells.size(), 2u);
  EXPECT_EQ(loaded.cells[0].protocol, "AEC");
  // The AEC cell carries LAP metrics, the TreadMarks scoring ones too.
  EXPECT_NE(loaded.cells[0].metrics.size(), 0u);
  const ad::DiffResult r = ad::diff(loaded, loaded, {});
  EXPECT_EQ(r.identical, 2u);
  EXPECT_FALSE(r.gate_failed());
  EXPECT_EQ(ad::gate_exit_code(r), 0);
}

}  // namespace
}  // namespace aecdsm::test
