// Shared helpers for the test suite: a lambda-based App, small-machine
// parameter presets, and run helpers covering all three protocol suites.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "aec/suite.hpp"
#include "common/params.hpp"
#include "dsm/app.hpp"
#include "dsm/system.hpp"
#include "erc/protocol.hpp"
#include "policy/instance.hpp"
#include "tmk/protocol.hpp"

namespace aecdsm::test {

/// Quick App built from lambdas. The body runs on every simulated
/// processor; `check` runs on the host after the simulation.
class LambdaApp : public dsm::App {
 public:
  LambdaApp(std::string name, std::size_t bytes,
            std::function<void(dsm::Machine&)> setup,
            std::function<void(dsm::Context&)> body)
      : name_(std::move(name)),
        bytes_(bytes),
        setup_(std::move(setup)),
        body_(std::move(body)) {}

  std::string name() const override { return name_; }
  std::size_t shared_bytes() const override { return bytes_; }
  void setup(dsm::Machine& m) override { setup_(m); }
  void body(dsm::Context& ctx) override { body_(ctx); }
  bool ok() const override { return ok_; }

  /// Bodies report their verdict here (typically pid 0 after a barrier).
  void set_ok(bool v) { ok_ = v; }

 private:
  std::string name_;
  std::size_t bytes_;
  std::function<void(dsm::Machine&)> setup_;
  std::function<void(dsm::Context&)> body_;
  bool ok_ = false;
};

/// Small machine for fast tests: 4 nodes, 256-byte pages.
inline SystemParams small_params(int nprocs = 4) {
  SystemParams p;
  p.num_procs = nprocs;
  p.mesh_width = nprocs >= 4 ? 2 : 1;
  while (nprocs % p.mesh_width != 0) ++p.mesh_width;
  if (nprocs >= 16) p.mesh_width = 4;
  p.page_bytes = 256;
  p.cache_bytes = 8 * 1024;
  return p;
}

inline dsm::ProtocolSuite aec_suite_for(aec::AecSuite& s) { return s.suite(); }

/// Run `app` under one suite and return the stats.
inline RunStats run_one(dsm::App& app, dsm::ProtocolSuite suite,
                        const SystemParams& params, std::uint64_t seed = 42) {
  dsm::RunConfig cfg;
  cfg.params = params;
  cfg.seed = seed;
  return dsm::run_app(app, suite, cfg);
}

/// Any registered policy, by name (legacy presets and hybrids alike).
inline RunStats run_protocol(dsm::App& app, const std::string& which,
                             const SystemParams& params, std::uint64_t seed = 42) {
  policy::ProtocolInstance inst = policy::make_instance(which);
  return run_one(app, inst.suite(), params, seed);
}

inline const char* kAllProtocols[] = {"AEC", "AEC-noLAP", "TreadMarks", "Munin-ERC"};

}  // namespace aecdsm::test
