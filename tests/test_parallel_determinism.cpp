// The parallel engine's whole contract is byte-identity: a run with
// --engine-threads N must be indistinguishable from the sequential engine in
// every artifact — RunStats to the last field, LAP scores, event counts.
// This suite sweeps sequential vs {2, 4, 8} worker threads across every
// registered policy preset, every registered app, and fault-plane
// configurations exercising both transport paths.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "harness/json_out.hpp"
#include "harness/runner.hpp"
#include "policy/policy.hpp"
#include "tests/test_util.hpp"

namespace aecdsm::test {
namespace {

constexpr int kThreadSweep[] = {2, 4, 8};

/// Full serialization of everything a cell produces: RunStats (every field,
/// via the canonical JSON encoder) plus the per-lock LAP scores.
std::string fingerprint(const harness::ExperimentResult& r) {
  std::ostringstream os;
  os << harness::to_json(r.stats).dump();
  for (const auto& [lock, s] : r.lap_scores) {
    os << "|" << lock << ":" << s.acquire_events << "," << s.lap.predictions
       << "," << s.lap.hits << "," << s.waitq.hits << ","
       << s.waitq_affinity.hits << "," << s.waitq_virtualq.hits;
  }
  return os.str();
}

void expect_parallel_matches_sequential(const std::string& protocol,
                                        const std::string& app,
                                        const SystemParams& params,
                                        std::uint64_t seed) {
  const auto seq = harness::run_experiment(protocol, app, apps::Scale::kSmall,
                                           params, seed);
  const std::string want = fingerprint(seq);
  for (int threads : kThreadSweep) {
    const auto par = harness::run_experiment(protocol, app, apps::Scale::kSmall,
                                             params, seed,
                                             /*wall_timeout_sec=*/0.0,
                                             /*recorder=*/nullptr, threads);
    EXPECT_EQ(fingerprint(par), want)
        << protocol << "/" << app << " with " << threads << " engine threads";
  }
}

struct Cell {
  std::string protocol;
  std::string app;
};

class ParallelDeterminism : public ::testing::TestWithParam<Cell> {};

TEST_P(ParallelDeterminism, ThreadsProduceByteIdenticalArtifacts) {
  const Cell& c = GetParam();
  expect_parallel_matches_sequential(c.protocol, c.app, small_params(8), 42);
}

std::vector<Cell> all_cells() {
  std::vector<Cell> cells;
  for (const std::string& pol : policy::registered_names()) {
    for (const std::string& app : apps::app_names()) {
      cells.push_back(Cell{pol, app});
    }
  }
  return cells;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ParallelDeterminism, ::testing::ValuesIn(all_cells()),
    [](const ::testing::TestParamInfo<Cell>& info) {
      std::string s = info.param.protocol + "_" + info.param.app;
      for (char& ch : s) {
        if (!(std::isalnum(static_cast<unsigned char>(ch)))) ch = '_';
      }
      return s;
    });

// Fault planes drive the reliable transport (retransmission timers, acks,
// duplicate suppression, the pause window) — a completely different event
// mix from the fault-free fast path, and the part of the simulator with the
// most same-time event ties.
TEST(ParallelDeterminismFaults, DropAndDuplicate) {
  SystemParams p = small_params(8);
  p.faults.drop_rate = 0.05;
  p.faults.dup_rate = 0.05;
  expect_parallel_matches_sequential("AEC", "IS", p, 42);
  expect_parallel_matches_sequential("TreadMarks", "Ocean", p, 42);
}

TEST(ParallelDeterminismFaults, DelayReorderAndPause) {
  SystemParams p = small_params(8);
  p.faults.delay_rate = 0.1;
  p.faults.reorder_rate = 0.05;
  p.faults.pauses.push_back({/*node=*/1, /*at_cycle=*/50000, /*cycles=*/20000});
  expect_parallel_matches_sequential("AEC", "Water-ns", p, 42);
  expect_parallel_matches_sequential("Munin-ERC", "IS", p, 42);
}

TEST(ParallelDeterminismFaults, MultiplePauseWindows) {
  SystemParams p = small_params(8);
  p.faults.pauses.push_back({/*node=*/1, /*at_cycle=*/50000, /*cycles=*/20000});
  p.faults.pauses.push_back({/*node=*/3, /*at_cycle=*/90000, /*cycles=*/30000});
  expect_parallel_matches_sequential("AEC", "IS", p, 42);
}

// Fail-stop crash + failover is the newest and most tie-heavy event mix:
// NIC drops, deferred retransmit timers, suspect verdicts, exclusive
// failover/re-election events, and request replay all have to land
// byte-identically under every worker count. Water-ns spreads 65 locks
// over all 8 manager nodes, so a mid-run crash of node 3 takes down live
// lock managers with requests pending in every preset.
class ParallelDeterminismCrash
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ParallelDeterminismCrash, CrashRunsAreByteIdenticalAcrossThreads) {
  SystemParams p = small_params(8);
  p.faults.crashes.push_back(
      {/*node=*/3, /*at_cycle=*/200000, /*cycles=*/400000});
  p.faults.crashes.push_back(
      {/*node=*/5, /*at_cycle=*/900000, /*cycles=*/300000});
  expect_parallel_matches_sequential(GetParam(), "Water-ns", p, 42);
}

INSTANTIATE_TEST_SUITE_P(
    Presets, ParallelDeterminismCrash,
    ::testing::ValuesIn(policy::registered_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string s = info.param;
      for (char& ch : s) {
        if (!(std::isalnum(static_cast<unsigned char>(ch)))) ch = '_';
      }
      return s;
    });

// Different seeds shift every event time; the lookahead argument must hold
// for all of them, not just the default.
TEST(ParallelDeterminismSeeds, SeedSweep) {
  for (std::uint64_t seed : {7u, 1234u}) {
    expect_parallel_matches_sequential("AEC", "Raytrace", small_params(8), seed);
  }
}

// More threads than nodes must clamp, not break.
TEST(ParallelDeterminismShape, MoreThreadsThanNodes) {
  const SystemParams p = small_params(4);
  const auto seq =
      harness::run_experiment("AEC", "IS", apps::Scale::kSmall, p, 42);
  const auto par =
      harness::run_experiment("AEC", "IS", apps::Scale::kSmall, p, 42, 0.0,
                              nullptr, /*engine_threads=*/16);
  EXPECT_EQ(fingerprint(par), fingerprint(seq));
}

// The parallel engine replays the sequential seq numbering, so the events
// processed counter — which feeds batch telemetry — must agree exactly.
TEST(ParallelDeterminismShape, EventCountMatchesSequential) {
  const SystemParams p = small_params(8);
  const auto seq =
      harness::run_experiment("TreadMarks", "IS", apps::Scale::kSmall, p, 42);
  const auto par = harness::run_experiment("TreadMarks", "IS",
                                           apps::Scale::kSmall, p, 42, 0.0,
                                           nullptr, 4);
  EXPECT_EQ(seq.stats.engine_events, par.stats.engine_events);
}

}  // namespace
}  // namespace aecdsm::test
