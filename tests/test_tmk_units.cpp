// Behavioural tests of the TreadMarks baseline: lazy diff creation, write
// notice propagation through lock grants and barriers, distributed lock
// ownership (including request chasing), and the scoring-only LAP.
#include <gtest/gtest.h>

#include "dsm/shared_array.hpp"
#include "tests/test_util.hpp"
#include "tmk/protocol.hpp"

namespace aecdsm::test {
namespace {

RunStats run_tm(dsm::App& app, const SystemParams& params,
                std::shared_ptr<const tmk::TmShared>* shared_out = nullptr) {
  tmk::TmSuite suite;
  dsm::RunConfig rc;
  rc.params = params;
  const RunStats stats = dsm::run_app(app, suite.suite(), rc);
  if (shared_out != nullptr) *shared_out = suite.shared_handle();
  return stats;
}

TEST(TmProtocol, DiffsAreCreatedLazily) {
  // A writer that nobody reads creates no diffs at all.
  dsm::SharedArray<std::uint32_t> arr;
  LambdaApp app(
      "lazywriter", 8192,
      [&](dsm::Machine& m) { arr = dsm::SharedArray<std::uint32_t>::alloc(m, 64); },
      [&](dsm::Context& ctx) {
        if (ctx.pid() == 0) {
          for (std::size_t i = 0; i < 64; ++i) arr.put(ctx, i, 1);
        }
        ctx.barrier();
        if (ctx.pid() == 0) app.set_ok(true);
      });
  const RunStats stats = run_tm(app, small_params(2));
  ASSERT_TRUE(stats.result_valid);
  EXPECT_EQ(stats.diffs.diffs_created, 0u);
}

TEST(TmProtocol, ReaderTriggersDiffCreationAtWriter) {
  dsm::SharedArray<std::uint32_t> arr;
  LambdaApp app(
      "lazyreader", 8192,
      [&](dsm::Machine& m) { arr = dsm::SharedArray<std::uint32_t>::alloc(m, 64); },
      [&](dsm::Context& ctx) {
        if (ctx.pid() == 0) {
          for (std::size_t i = 0; i < 64; ++i) arr.put(ctx, i, 9);
        }
        ctx.barrier();
        if (ctx.pid() == 1) {
          app.set_ok(arr.get(ctx, 5) == 9);
        }
        ctx.barrier();
      });
  const RunStats stats = run_tm(app, small_params(2));
  ASSERT_TRUE(stats.result_valid);
  EXPECT_GT(stats.diffs.diffs_created, 0u);
  EXPECT_GT(stats.diffs.diffs_applied, 0u);
}

TEST(TmProtocol, LockGrantCarriesWriteNotices) {
  // Lock-protected counter: the acquirer's copy is invalidated by the
  // grant's notices and the fault fetches the chain's diffs.
  dsm::SharedArray<std::uint64_t> cell;
  LambdaApp app(
      "grantnotices", 4096,
      [&](dsm::Machine& m) { cell = dsm::SharedArray<std::uint64_t>::alloc(m, 1); },
      [&](dsm::Context& ctx) {
        for (int i = 0; i < 4; ++i) {
          ctx.lock(0);
          cell.put(ctx, 0, cell.get(ctx, 0) + 1);
          ctx.unlock(0);
        }
        ctx.barrier();
        if (ctx.pid() == 0) app.set_ok(cell.get(ctx, 0) == 16);
      });
  const RunStats stats = run_tm(app, small_params(4));
  ASSERT_TRUE(stats.result_valid);
  EXPECT_GT(stats.faults.faults_inside_cs, 0u);
}

TEST(TmProtocol, OwnershipMigratesWithoutManagerRoundTrips) {
  // After the first grant the manager is only involved in hint updates:
  // repeated transfer between two processors works via direct hand-off.
  dsm::SharedArray<std::uint64_t> cell;
  LambdaApp app(
      "handoff", 4096,
      [&](dsm::Machine& m) { cell = dsm::SharedArray<std::uint64_t>::alloc(m, 1); },
      [&](dsm::Context& ctx) {
        // Lock 3's manager is node 3; only nodes 0 and 1 use the lock, so
        // every grant after the first flows releaser -> requester.
        for (int i = 0; i < 6; ++i) {
          if (ctx.pid() <= 1) {
            ctx.lock(3);
            cell.put(ctx, 0, cell.get(ctx, 0) + 1);
            ctx.unlock(3);
          }
          ctx.compute(300);
        }
        ctx.barrier();
        if (ctx.pid() == 0) app.set_ok(cell.get(ctx, 0) == 12);
      });
  const RunStats stats = run_tm(app, small_params(4));
  EXPECT_TRUE(stats.result_valid);
}

TEST(TmProtocol, BarrierDistributesUnseenIntervals) {
  // Processor 0 writes, processor 1 reads it only through the barrier —
  // even though a *third* processor fetched the diff first (which cleans
  // the writer's dirty state, the regression this guards against).
  dsm::SharedArray<std::uint32_t> arr;
  LambdaApp app(
      "barriernotices", 8192,
      [&](dsm::Machine& m) { arr = dsm::SharedArray<std::uint32_t>::alloc(m, 32); },
      [&](dsm::Context& ctx) {
        if (ctx.pid() == 0) {
          ctx.lock(0);
          for (std::size_t i = 0; i < 32; ++i) arr.put(ctx, i, 42);
          ctx.unlock(0);
        }
        if (ctx.pid() == 2) {
          // Early reader via the same lock: forces the lazy diff.
          ctx.lock(0);
          (void)arr.get(ctx, 0);
          ctx.unlock(0);
        }
        ctx.barrier();
        if (ctx.pid() == 1) {
          bool good = true;
          for (std::size_t i = 0; i < 32; ++i) {
            if (arr.get(ctx, i) != 42) good = false;
          }
          app.set_ok(good);
        }
        ctx.barrier();
        if (ctx.pid() == 0 && !app.ok()) app.set_ok(false);
      });
  const RunStats stats = run_tm(app, small_params(4));
  EXPECT_TRUE(stats.result_valid);
}

TEST(TmProtocol, ScoringLapRunsWithoutInfluencingBehaviour) {
  dsm::SharedArray<std::uint64_t> cell;
  std::shared_ptr<const tmk::TmShared> shared;
  LambdaApp app(
      "tmscores", 4096,
      [&](dsm::Machine& m) { cell = dsm::SharedArray<std::uint64_t>::alloc(m, 1); },
      [&](dsm::Context& ctx) {
        for (int i = 0; i < 5; ++i) {
          ctx.lock_acquire_notice(0);
          ctx.lock(0);
          cell.put(ctx, 0, cell.get(ctx, 0) + 1);
          ctx.unlock(0);
        }
        ctx.barrier();
        if (ctx.pid() == 0) app.set_ok(cell.get(ctx, 0) == 20);
      });
  const RunStats stats = run_tm(app, small_params(4), &shared);
  ASSERT_TRUE(stats.result_valid);
  const auto it = shared->lap.find(0);
  ASSERT_NE(it, shared->lap.end());
  EXPECT_EQ(it->second.scores().acquire_events, 20u);
  EXPECT_GT(it->second.scores().lap.predictions, 0u);
}

TEST(TmProtocol, ColdPagesFetchBaseFromStaticHome) {
  dsm::SharedArray<std::uint32_t> arr;
  LambdaApp app(
      "coldfetch", 16384,
      [&](dsm::Machine& m) { arr = dsm::SharedArray<std::uint32_t>::alloc(m, 256); },
      [&](dsm::Context& ctx) {
        if (ctx.pid() == 3) {
          std::uint32_t sum = 0;
          for (std::size_t i = 0; i < 256; ++i) sum += arr.get(ctx, i);
          app.set_ok(sum == 0);  // untouched pages read as zero
        }
        ctx.barrier();
        if (ctx.pid() == 0 && !app.ok()) app.set_ok(false);
      });
  const RunStats stats = run_tm(app, small_params(4));
  EXPECT_TRUE(stats.result_valid);
  EXPECT_GT(stats.faults.cold_faults, 0u);
}

}  // namespace
}  // namespace aecdsm::test
