// Unit tests for the node-local memory hierarchy timing models (cache, TLB,
// write buffer) and the page store's twin mechanics.
#include <gtest/gtest.h>

#include "common/params.hpp"
#include "mem/cache.hpp"
#include "mem/pagestore.hpp"

namespace aecdsm::test {
namespace {

TEST(CacheModel, MissThenHit) {
  SystemParams params;
  mem::CacheModel cache(params);
  const Cycles miss = cache.access(0x1000);
  EXPECT_GT(miss, 0u);
  EXPECT_EQ(cache.access(0x1000), 0u);  // hit
  EXPECT_EQ(cache.access(0x1010), 0u);  // same 32-byte line
  EXPECT_GT(cache.access(0x1020), 0u);  // next line
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(CacheModel, DirectMappedConflict) {
  SystemParams params;
  mem::CacheModel cache(params);
  cache.access(0);
  // Same index, different tag: cache_bytes apart.
  cache.access(params.cache_bytes);
  EXPECT_GT(cache.access(0), 0u);  // evicted by the conflicting line
}

TEST(CacheModel, InvalidatePageDropsItsLines) {
  SystemParams params;
  mem::CacheModel cache(params);
  cache.access(0);
  cache.access(64);
  EXPECT_EQ(cache.access(0), 0u);
  cache.invalidate_page(0, params.page_bytes);
  EXPECT_GT(cache.access(0), 0u);
  EXPECT_GT(cache.access(64), 0u);
}

TEST(CacheModel, InvalidateOtherPageKeepsLines) {
  SystemParams params;
  mem::CacheModel cache(params);
  cache.access(0);
  cache.invalidate_page(1, params.page_bytes);
  EXPECT_EQ(cache.access(0), 0u);
}

TEST(TlbModel, MissFillHit) {
  SystemParams params;
  mem::TlbModel tlb(params);
  EXPECT_EQ(tlb.access(3), params.tlb_fill_cycles);
  EXPECT_EQ(tlb.access(3), 0u);
  EXPECT_EQ(tlb.access(3 + static_cast<PageId>(params.tlb_entries)),
            params.tlb_fill_cycles);  // direct-mapped conflict
  EXPECT_EQ(tlb.access(3), params.tlb_fill_cycles);  // evicted
  EXPECT_EQ(tlb.misses(), 3u);
}

TEST(WriteBuffer, NoStallWithFreeSlots) {
  SystemParams params;
  mem::WriteBuffer wb(params);
  for (int i = 0; i < params.write_buffer_entries; ++i) {
    EXPECT_EQ(wb.write(static_cast<Cycles>(i)), 0u);
  }
}

TEST(WriteBuffer, StallsWhenFull) {
  SystemParams params;
  mem::WriteBuffer wb(params);
  Cycles stall_total = 0;
  for (int i = 0; i < 2 * params.write_buffer_entries; ++i) {
    stall_total += wb.write(0);  // back-to-back at time 0
  }
  EXPECT_GT(stall_total, 0u);
  EXPECT_EQ(wb.total_stalls(), stall_total);
}

TEST(WriteBuffer, DrainsOverTime) {
  SystemParams params;
  mem::WriteBuffer wb(params);
  for (int i = 0; i < params.write_buffer_entries; ++i) wb.write(0);
  // Far in the future everything has drained: no stall.
  EXPECT_EQ(wb.write(1000000), 0u);
}

TEST(PageStore, FramesAllocateLazily) {
  SystemParams params;
  mem::PageStore store(params, 8);
  EXPECT_EQ(store.num_pages(), 8u);
  const mem::PageStore& cstore = store;
  EXPECT_TRUE(cstore.frame(3).data.empty());  // const access: no allocation
  EXPECT_EQ(store.frame(3).data.size(), params.words_per_page());
}

TEST(PageStore, PagesStartProtectedAndInvalid) {
  SystemParams params;
  mem::PageStore store(params, 2);
  EXPECT_FALSE(store.frame(0).valid);
  EXPECT_TRUE(store.frame(0).write_protected);
}

TEST(PageStore, TwinLifecycle) {
  SystemParams params;
  mem::PageStore store(params, 2);
  auto page = store.page_span(0);
  page[0] = 42;
  store.make_twin(0);
  EXPECT_TRUE(store.frame(0).has_twin());
  page[0] = 43;
  page[7] = 7;
  const mem::Diff d = store.diff_against_twin(0);
  EXPECT_EQ(d.changed_words(), 2u);
  store.refresh_twin(0);
  EXPECT_TRUE(store.diff_against_twin(0).empty());
  store.drop_twin(0);
  EXPECT_FALSE(store.frame(0).has_twin());
}

TEST(PageStore, TwinBuffersRecycleThroughFreeList) {
  SystemParams params;
  mem::PageStore store(params, 2);
  store.page_span(0)[0] = 1;
  store.make_twin(0);
  EXPECT_EQ(store.pooled_twins(), 0u);
  store.drop_twin(0);
  EXPECT_EQ(store.pooled_twins(), 1u);
  // The next twin (any page) reuses the parked buffer and snapshots the
  // current contents correctly.
  store.page_span(1)[3] = 9;
  store.make_twin(1);
  EXPECT_EQ(store.pooled_twins(), 0u);
  store.page_span(1)[3] = 10;
  const mem::Diff d = store.diff_against_twin(1);
  ASSERT_EQ(d.changed_words(), 1u);
  EXPECT_EQ(d.runs()[0].word_offset, 3u);
}

TEST(PageStore, DiffWithoutTwinThrows) {
  SystemParams params;
  mem::PageStore store(params, 1);
  EXPECT_THROW(store.diff_against_twin(0), SimError);
}

TEST(PageStore, OutOfRangeThrows) {
  SystemParams params;
  mem::PageStore store(params, 2);
  EXPECT_THROW(store.frame(2), SimError);
}

TEST(Params, ValidationCatchesBadConfigs) {
  SystemParams p;
  EXPECT_TRUE(p.validate().empty());
  p.num_procs = 15;  // not a multiple of mesh_width 4
  EXPECT_FALSE(p.validate().empty());
  p = SystemParams{};
  p.page_bytes = 100;  // not a multiple of cache lines
  EXPECT_FALSE(p.validate().empty());
  p = SystemParams{};
  p.update_set_size = 0;
  EXPECT_FALSE(p.validate().empty());
}

TEST(Params, DerivedCosts) {
  SystemParams p;
  EXPECT_EQ(p.words_per_page(), 1024u);
  EXPECT_EQ(p.network_payload_cycles(4096), 2048u);  // 2 bytes/cycle
  // memory_access_cycles: setup 9 + ceil(2.25 * words)
  EXPECT_EQ(p.memory_access_cycles(4), 9u + 9u);
  EXPECT_EQ(p.io_transfer_cycles(10), 12u + 30u);
  EXPECT_GT(p.twin_create_cycles(), 5u * 1024u);
  EXPECT_GT(p.diff_create_cycles(), 7u * 1024u);
  EXPECT_EQ(p.diff_apply_cycles(0), p.memory_access_cycles(0));
}

}  // namespace
}  // namespace aecdsm::test
