// The `syn:` workload-spec grammar: parse/fingerprint round-trips, spelling
// aliasing, scaling, generator determinism, and a malformed-input fuzz pass
// (mirroring the json round-trip fuzz style) — a bad spec must throw
// SimError with the grammar attached, never crash or be silently accepted.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "apps/synthetic/workload.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"

namespace aecdsm::test {
namespace {

using apps::synthetic::build_schedule_set;
using apps::synthetic::Pattern;
using apps::synthetic::replay_sequential;
using apps::synthetic::ScheduleSet;
using apps::synthetic::WorkloadSpec;

TEST(SyntheticSpec, PrefixDetection) {
  EXPECT_TRUE(WorkloadSpec::is_spec_name("syn:migratory"));
  EXPECT_TRUE(WorkloadSpec::is_spec_name("syn:"));  // malformed but syn-shaped
  EXPECT_FALSE(WorkloadSpec::is_spec_name("IS"));
  EXPECT_FALSE(WorkloadSpec::is_spec_name("Synthetic"));
  EXPECT_FALSE(WorkloadSpec::is_spec_name(" syn:migratory"));
}

TEST(SyntheticSpec, DefaultsMaterializeInTheFingerprint) {
  const WorkloadSpec spec = WorkloadSpec::parse("syn:migratory");
  EXPECT_EQ(spec.pattern, Pattern::kMigratory);
  EXPECT_EQ(spec.cs_cycles, 64u);
  EXPECT_EQ(spec.fan, 4u);
  EXPECT_EQ(spec.region_cells, 24u);
  EXPECT_EQ(spec.rounds, 4u);
  EXPECT_EQ(spec.bursts, 8u);
  EXPECT_EQ(spec.seed, 1u);
  EXPECT_EQ(spec.read_pct, -1);
  EXPECT_EQ(spec.resolved_read_pct(), 20);
  EXPECT_EQ(spec.fingerprint(),
            "syn:migratory/cs64/fan4/cells24/rounds4/bursts8/read20/seed1");
}

TEST(SyntheticSpec, EveryPatternParsesWithItsDefaultReadShare) {
  const std::vector<std::pair<std::string, int>> expect = {
      {"migratory", 20}, {"producer-consumer", 50}, {"read-mostly", 90},
      {"hotspot", 10},   {"mixed", 40},
  };
  for (const auto& [name, read] : expect) {
    const WorkloadSpec spec = WorkloadSpec::parse("syn:" + name);
    EXPECT_EQ(apps::synthetic::pattern_name(spec.pattern), name);
    EXPECT_EQ(spec.resolved_read_pct(), read) << name;
  }
}

TEST(SyntheticSpec, SpellingsOfOneWorkloadShareAFingerprint) {
  const std::string canonical =
      WorkloadSpec::parse("syn:hotspot/cs64/fan4/seed5").fingerprint();
  // Reordered keys, elided defaults, explicitly-spelled defaults.
  for (const char* alias :
       {"syn:hotspot/seed5", "syn:hotspot/fan4/seed5/cs64",
        "syn:hotspot/seed5/rounds4/bursts8/cells24", "syn:hotspot/read10/seed5"}) {
    EXPECT_EQ(WorkloadSpec::parse(alias).fingerprint(), canonical) << alias;
  }
  EXPECT_NE(WorkloadSpec::parse("syn:hotspot/seed6").fingerprint(), canonical);
  EXPECT_NE(WorkloadSpec::parse("syn:hotspot/seed5/cs65").fingerprint(), canonical);
  EXPECT_NE(WorkloadSpec::parse("syn:hotspot/seed5/read11").fingerprint(), canonical);
}

TEST(SyntheticSpec, FingerprintIsReparseStable) {
  for (const std::string& name : apps::synthetic::default_corpus()) {
    const std::string fp = WorkloadSpec::parse(name).fingerprint();
    EXPECT_EQ(WorkloadSpec::parse(fp).fingerprint(), fp) << name;
  }
}

TEST(SyntheticSpec, SmallScaleHalvesRoundsAndBurstsWithAFloorOfOne) {
  const WorkloadSpec spec = WorkloadSpec::parse("syn:mixed/rounds5/bursts1");
  const WorkloadSpec small = spec.scaled(apps::Scale::kSmall);
  EXPECT_EQ(small.rounds, 2u);
  EXPECT_EQ(small.bursts, 1u);
  const WorkloadSpec def = spec.scaled(apps::Scale::kDefault);
  EXPECT_EQ(def.rounds, 5u);
  EXPECT_EQ(def.bursts, 1u);
}

TEST(SyntheticSpec, GeneratorIsDeterministicInSpecAndNprocs) {
  const WorkloadSpec spec = WorkloadSpec::parse("syn:producer-consumer/fan4/seed3");
  const ScheduleSet a = build_schedule_set(spec, 4);
  const ScheduleSet b = build_schedule_set(spec, 4);
  ASSERT_EQ(a.procs.size(), b.procs.size());
  EXPECT_EQ(replay_sequential(a).checksum(), replay_sequential(b).checksum());
  // A different seed or processor count yields a different program.
  WorkloadSpec other = spec;
  other.seed = 4;
  EXPECT_NE(replay_sequential(build_schedule_set(other, 4)).checksum(),
            replay_sequential(a).checksum());
  EXPECT_NE(replay_sequential(build_schedule_set(spec, 2)).checksum(),
            replay_sequential(a).checksum());
}

TEST(SyntheticSpec, SpecLockGroupsSpanExactlyTheFanOut) {
  const auto one = apps::lock_groups("syn:read-mostly/fan1", apps::Scale::kSmall, 4);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].lo, 0u);
  EXPECT_EQ(one[0].hi, 0u);
  const auto many = apps::lock_groups("syn:read-mostly/fan8", apps::Scale::kDefault, 16);
  ASSERT_EQ(many.size(), 1u);
  EXPECT_EQ(many[0].lo, 0u);
  EXPECT_EQ(many[0].hi, 7u);
}

// ---- malformed inputs -------------------------------------------------------

const char* const kBadSpecs[] = {
    "syn:",                                 // no pattern
    "syn:bogus",                            // unknown pattern
    "syn:Migratory",                        // patterns are case-sensitive
    "syn:/cs32",                            // empty pattern token
    "syn:cs32/migratory",                   // pattern must come first
    "syn:migratory/cs",                     // key without a number
    "syn:migratory/cs32/cs64",              // duplicate key
    "syn:mixed/read50/read60",              // duplicate key
    "syn:migratory/fan0",                   // below range
    "syn:migratory/fan257",                 // above range
    "syn:migratory/rounds0",                //
    "syn:migratory/rounds65",               //
    "syn:migratory/bursts0",                //
    "syn:migratory/bursts2000",             //
    "syn:migratory/cells0",                 //
    "syn:migratory/cells5000",              //
    "syn:migratory/read101",                //
    "syn:migratory/cs-5",                   // negative
    "syn:migratory/cs1e3",                  // not an integer
    "syn:migratory/cs 32",                  // embedded space
    "syn:migratory/seed1x",                 // trailing garbage
    "syn:migratory/seed18446744073709551616",  // uint64 overflow
    "syn:migratory/zzz9",                   // unknown key
    "syn:migratory/",                       // trailing empty token
    "syn:migratory//cs32",                  // interior empty token
};

TEST(SyntheticSpec, MalformedSpecsThrowSimError) {
  for (const char* bad : kBadSpecs) {
    EXPECT_THROW(WorkloadSpec::parse(bad), SimError) << bad;
    EXPECT_THROW(apps::make_app(bad, apps::Scale::kSmall), SimError) << bad;
    EXPECT_THROW(apps::lock_groups(bad, apps::Scale::kSmall, 4), SimError) << bad;
  }
}

TEST(SyntheticSpec, ParseErrorsCarryTheGrammar) {
  try {
    apps::make_app("syn:migratory/fan999", apps::Scale::kSmall);
    FAIL() << "out-of-range fan accepted";
  } catch (const SimError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fan999"), std::string::npos) << msg;
    EXPECT_NE(msg.find("syn:<pattern>"), std::string::npos) << msg;
  }
}

// Fuzz: random token soups must either parse to a spec whose fingerprint is
// reparse-stable, or throw SimError — never abort or silently misparse.
TEST(SyntheticSpec, FuzzRandomTokenSoup) {
  const char* patterns[] = {"migratory", "producer-consumer", "read-mostly",
                            "hotspot",   "mixed",             "bogus"};
  const char* keys[] = {"cs", "fan", "cells", "rounds", "bursts",
                        "read", "seed", "", "x", "cs3q", "-"};
  int parsed = 0, rejected = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    std::string name = "syn:";
    if (rng.next_below(8) != 0) name += patterns[rng.next_below(6)];
    const std::size_t n_tokens = rng.next_below(6);
    for (std::size_t i = 0; i < n_tokens; ++i) {
      name += '/';
      name += keys[rng.next_below(11)];
      if (rng.next_below(3) != 0) {
        name += std::to_string(rng.next_below(100000));
      }
    }
    try {
      const std::string fp = WorkloadSpec::parse(name).fingerprint();
      EXPECT_EQ(WorkloadSpec::parse(fp).fingerprint(), fp) << name;
      ++parsed;
    } catch (const SimError&) {
      ++rejected;
    }
  }
  // The soup must actually exercise both sides of the parser.
  EXPECT_GT(parsed, 10);
  EXPECT_GT(rejected, 10);
}

}  // namespace
}  // namespace aecdsm::test
