// Unit tests for the discrete-event engine and the cooperative processor
// model: event ordering, time monotonicity, quantum syncing, blocking,
// service accounting, and the cycle-conservation invariant.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/params.hpp"
#include "sim/cothread.hpp"
#include "sim/engine.hpp"
#include "sim/processor.hpp"

namespace aecdsm::test {
namespace {

TEST(Engine, EventsRunInTimeOrder) {
  sim::Engine e;
  std::vector<int> order;
  e.schedule(30, [&] { order.push_back(3); });
  e.schedule(10, [&] { order.push_back(1); });
  e.schedule(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, EqualTimesRunFifo) {
  sim::Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, EqualTimeFifoHoldsUnderInterleavedSchedules) {
  // Heap stress for the hand-rolled event queue: schedule a mix of times in
  // a scrambled order, including ties and events scheduled from handlers,
  // and verify the realized order is (time, schedule-order) — i.e. global
  // time order with FIFO among equal times.
  sim::Engine e;
  struct Seen {
    Cycles t;
    int id;
  };
  std::vector<Seen> seen;
  int next_id = 0;
  std::vector<std::pair<Cycles, int>> expect;
  auto add = [&](Cycles t) {
    const int id = next_id++;
    expect.emplace_back(t, id);
    e.schedule(t, [&seen, t, id] { seen.push_back({t, id}); });
  };
  // Scrambled times with many duplicates (xorshift keeps it deterministic).
  std::uint64_t z = 0x9E3779B97F4A7C15ULL;
  for (int i = 0; i < 500; ++i) {
    z ^= z << 13;
    z ^= z >> 7;
    z ^= z << 17;
    add(z % 32);
  }
  // Handlers extend the schedule at and after now(): equal-time events
  // scheduled mid-run must still run after earlier-scheduled ties.
  e.schedule(16, [&] {
    add(16);
    add(31);
  });
  e.run();
  // Expected order: stable sort by time of (time, schedule id). Events
  // scheduled from the handler have larger ids, so stable sort keeps FIFO.
  std::stable_sort(expect.begin(), expect.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  ASSERT_EQ(seen.size(), expect.size());
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].t, expect[i].first) << "slot " << i;
    EXPECT_EQ(seen[i].id, expect[i].second) << "slot " << i;
  }
}

TEST(Engine, HandlersMayScheduleMoreEvents) {
  sim::Engine e;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) e.schedule(e.now() + 10, chain);
  };
  e.schedule(0, chain);
  e.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(e.now(), 40u);
}

TEST(Engine, SchedulingIntoThePastThrows) {
  sim::Engine e;
  e.schedule(100, [&] {
    EXPECT_THROW(e.schedule(50, [] {}), SimError);
  });
  e.run();
}

TEST(Engine, IdleReportsQueueState) {
  sim::Engine e;
  EXPECT_TRUE(e.idle());
  e.schedule(1, [] {});
  EXPECT_FALSE(e.idle());
  e.run();
  EXPECT_TRUE(e.idle());
}

TEST(CoThread, YieldHandshake) {
  int phase = 0;
  sim::CoThread* self = nullptr;
  sim::CoThread t([&] {
    phase = 1;
    self->yield_to_engine();
    phase = 2;
  });
  self = &t;
  EXPECT_EQ(phase, 0);
  t.resume();
  EXPECT_EQ(phase, 1);
  EXPECT_FALSE(t.finished());
  t.resume();
  EXPECT_EQ(phase, 2);
  EXPECT_TRUE(t.finished());
}

TEST(CoThread, ExceptionPropagatesToEngine) {
  sim::CoThread t([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(t.resume(), std::runtime_error);
}

TEST(CoThread, DestructorCancelsSuspendedBody) {
  bool unwound = false;
  {
    sim::CoThread* self = nullptr;
    sim::CoThread t([&] {
      struct Guard {
        bool* flag;
        ~Guard() { *flag = true; }
      } guard{&unwound};
      self->yield_to_engine();  // never resumed normally
    });
    self = &t;
    t.resume();
  }
  EXPECT_TRUE(unwound);
}

class ProcessorTest : public ::testing::Test {
 protected:
  SystemParams params_;
  sim::Engine engine_;
};

TEST_F(ProcessorTest, AdvanceAccumulatesBuckets) {
  sim::Processor p(engine_, 0, params_);
  p.start([&] {
    p.advance(100, sim::Bucket::kBusy);
    p.advance(50, sim::Bucket::kData);
    p.advance(25, sim::Bucket::kSynch);
  });
  engine_.run();
  EXPECT_TRUE(p.finished());
  EXPECT_EQ(p.acct().busy, 100u);
  EXPECT_EQ(p.acct().data, 50u);
  EXPECT_EQ(p.acct().synch, 25u);
  EXPECT_EQ(p.finish_time(), 175u);
  EXPECT_EQ(p.acct().total(), p.now());
}

TEST_F(ProcessorTest, WaitBlocksUntilPoke) {
  sim::Processor p(engine_, 0, params_);
  bool flag = false;
  p.start([&] {
    p.advance(10, sim::Bucket::kBusy);
    p.wait(sim::Bucket::kSynch, [&] { return flag; });
    p.advance(5, sim::Bucket::kBusy);
  });
  engine_.schedule(500, [&] {
    flag = true;
    p.poke();
  });
  engine_.run();
  EXPECT_TRUE(p.finished());
  EXPECT_EQ(p.acct().busy, 15u);
  EXPECT_EQ(p.acct().synch, 490u);  // blocked 10..500
  EXPECT_EQ(p.finish_time(), 505u);
}

TEST_F(ProcessorTest, SpuriousPokeRechecksPredicate) {
  sim::Processor p(engine_, 0, params_);
  bool flag = false;
  p.start([&] { p.wait(sim::Bucket::kSynch, [&] { return flag; }); });
  engine_.schedule(100, [&] { p.poke(); });  // spurious: predicate still false
  engine_.schedule(200, [&] {
    flag = true;
    p.poke();
  });
  engine_.run();
  EXPECT_TRUE(p.finished());
  EXPECT_EQ(p.finish_time(), 200u);
}

TEST_F(ProcessorTest, ServiceDuringBlockBecomesIpc) {
  sim::Processor p(engine_, 0, params_);
  bool flag = false;
  p.start([&] { p.wait(sim::Bucket::kSynch, [&] { return flag; }); });
  engine_.schedule(100, [&] { p.service(600); });  // interrupt(4000) + 600
  engine_.schedule(10000, [&] {
    flag = true;
    p.poke();
  });
  engine_.run();
  // The 4600 service cycles overlapped the block: attributed to ipc, the
  // rest of the 10000-cycle wait to synch.
  EXPECT_EQ(p.acct().ipc, 4600u);
  EXPECT_EQ(p.acct().synch, 10000u - 4600u);
  EXPECT_EQ(p.acct().total(), p.now());
}

TEST_F(ProcessorTest, ServiceWhileRunningStealsCycles) {
  sim::Processor p(engine_, 0, params_);
  p.start([&] {
    p.advance(10, sim::Bucket::kBusy);
    p.sync();
    // A service lands now (scheduled below), stealing cycles that the next
    // advance absorbs.
    p.advance(10, sim::Bucket::kBusy);
    p.sync();
  });
  engine_.schedule(5, [&] { p.service(100); });
  engine_.run();
  EXPECT_EQ(p.acct().busy, 20u);
  EXPECT_EQ(p.acct().ipc, params_.interrupt_cycles + 100);
  EXPECT_EQ(p.acct().total(), p.now());
}

TEST_F(ProcessorTest, QuantumForcesPeriodicSync) {
  SystemParams params = params_;
  params.quantum_cycles = 100;
  sim::Processor p(engine_, 0, params);
  Cycles seen_at_service = 0;
  p.start([&] {
    for (int i = 0; i < 100; ++i) p.advance(10, sim::Bucket::kBusy);
  });
  engine_.schedule(500, [&] { seen_at_service = engine_.now(); });
  engine_.run();
  // The event at 500 ran even though the app only yields at quantum
  // boundaries; with quantum 100 the skew is bounded.
  EXPECT_EQ(seen_at_service, 500u);
  EXPECT_EQ(p.finish_time(), 1000u);
}

TEST_F(ProcessorTest, ServicesSerializeOnTheNode) {
  sim::Processor p(engine_, 0, params_);
  bool flag = false;
  p.start([&] { p.wait(sim::Bucket::kSynch, [&] { return flag; }); });
  Cycles done1 = 0, done2 = 0;
  engine_.schedule(10, [&] { done1 = p.service(1000); });
  engine_.schedule(10, [&] { done2 = p.service(1000); });
  engine_.schedule(100000, [&] {
    flag = true;
    p.poke();
  });
  engine_.run();
  EXPECT_EQ(done1, 10u + 5000u);
  EXPECT_EQ(done2, done1 + 5000u);  // queued behind the first
}

TEST_F(ProcessorTest, TwoProcessorsInterleaveDeterministically) {
  sim::Processor a(engine_, 0, params_);
  sim::Processor b(engine_, 1, params_);
  std::vector<int> order;
  bool a_done = false;
  a.start([&] {
    a.advance(100, sim::Bucket::kBusy);
    a.sync();
    order.push_back(0);
    a_done = true;
    b.poke();
  });
  b.start([&] {
    b.wait(sim::Bucket::kSynch, [&] { return a_done; });
    order.push_back(1);
  });
  engine_.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_TRUE(a.finished());
  EXPECT_TRUE(b.finished());
}

}  // namespace
}  // namespace aecdsm::test
