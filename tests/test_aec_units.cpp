// Behavioural tests of the AEC protocol machinery, observed through run
// statistics and the shared manager state: update-set push delivery, the
// acquire-counter freshness rules, self-reacquisition, invalidation lists,
// barrier write-notice routing, home reassignment, and overlap accounting.
#include <gtest/gtest.h>

#include "aec/suite.hpp"
#include "apps/app_common.hpp"
#include "dsm/shared_array.hpp"
#include "tests/test_util.hpp"

namespace aecdsm::test {
namespace {

/// Ping-pong increments under one lock between two processors — the
/// canonical chain the LAP push optimizes.
class PingPongApp : public apps::AppBase {
 public:
  explicit PingPongApp(int iters) : iters_(iters) {}
  std::string name() const override { return "pingpong"; }
  std::size_t shared_bytes() const override { return 4096; }
  void setup(dsm::Machine& m) override {
    counter_ = dsm::SharedArray<std::uint64_t>::alloc(m, 1);
  }
  void body(dsm::Context& ctx) override {
    for (int i = 0; i < iters_; ++i) {
      ctx.lock(0);
      counter_.put(ctx, 0, counter_.get(ctx, 0) + 1);
      ctx.unlock(0);
      ctx.compute(200);
    }
    ctx.barrier();
    if (ctx.pid() == 0) {
      set_ok(counter_.get(ctx, 0) ==
             static_cast<std::uint64_t>(iters_) * static_cast<std::uint64_t>(ctx.nprocs()));
    }
  }

 private:
  int iters_;
  dsm::SharedArray<std::uint64_t> counter_;
};

RunStats run_aec(dsm::App& app, const SystemParams& params, bool lap,
                 std::shared_ptr<const aec::AecShared>* shared_out = nullptr) {
  const policy::ConsistencyPolicy* pol =
      policy::find_policy(lap ? "AEC" : "AEC-noLAP");
  EXPECT_NE(pol, nullptr);
  aec::AecSuite suite(*pol);
  dsm::RunConfig rc;
  rc.params = params;
  const RunStats stats = dsm::run_app(app, suite.suite(), rc);
  if (shared_out != nullptr) *shared_out = suite.shared_handle();
  return stats;
}

TEST(AecProtocol, LapReducesFaultStallOnContendedChain) {
  PingPongApp a(10), b(10);
  const RunStats with_lap = run_aec(a, small_params(4), true);
  const RunStats without = run_aec(b, small_params(4), false);
  ASSERT_TRUE(with_lap.result_valid);
  ASSERT_TRUE(without.result_valid);
  EXPECT_LT(with_lap.faults.fault_cycles, without.faults.fault_cycles);
  EXPECT_LE(with_lap.finish_time, without.finish_time);
}

TEST(AecProtocol, UpdateSetsComputedForEveryAcquire) {
  PingPongApp app(6);
  std::shared_ptr<const aec::AecShared> shared;
  const RunStats stats = run_aec(app, small_params(4), true, &shared);
  ASSERT_TRUE(stats.result_valid);
  ASSERT_NE(shared, nullptr);
  // Lock 0 lives in manager node 0's shard.
  const auto it = shared->locks[0].find(0);
  ASSERT_NE(it, shared->locks[0].end());
  EXPECT_EQ(it->second.lap.scores().acquire_events, 24u);
  // Under heavy contention the waiting queue predicts nearly perfectly.
  EXPECT_GT(it->second.lap.scores().lap.rate(), 0.8);
}

TEST(AecProtocol, AcquireCountersIncreaseMonotonically) {
  PingPongApp app(5);
  std::shared_ptr<const aec::AecShared> shared;
  run_aec(app, small_params(4), true, &shared);
  const auto& rec = shared->locks[0].at(0);
  EXPECT_EQ(rec.counter, 20u);  // 5 iterations x 4 processors
  EXPECT_FALSE(rec.taken);
}

TEST(AecProtocol, SelfReacquisitionIsCheap) {
  // One processor repeatedly takes an uncontended lock: after the first
  // acquire there is nothing to invalidate or fetch.
  dsm::SharedArray<std::uint64_t> cell;
  LambdaApp app(
      "selfreacq", 4096,
      [&](dsm::Machine& m) { cell = dsm::SharedArray<std::uint64_t>::alloc(m, 1); },
      [&](dsm::Context& ctx) {
        if (ctx.pid() == 0) {
          for (int i = 0; i < 10; ++i) {
            ctx.lock(0);
            cell.put(ctx, 0, cell.get(ctx, 0) + 1);
            ctx.unlock(0);
          }
        }
        ctx.barrier();
        if (ctx.pid() == 0) app.set_ok(cell.get(ctx, 0) == 10);
      });
  const RunStats stats = run_protocol(app, "AEC", small_params(2));
  ASSERT_TRUE(stats.result_valid);
  // Each release seals the critical section's diff, so every CS re-twins on
  // its first write (one write fault per acquisition) — but reacquisition
  // never invalidates or refetches, so there are no read faults beyond the
  // final validation pass.
  EXPECT_LE(stats.faults.write_faults, 11u);
  EXPECT_LE(stats.faults.read_faults, 2u);
}

TEST(AecProtocol, BarrierPropagatesOutsideWritesViaNotices) {
  // Writer/reader across a barrier: the reader's copy must be invalidated
  // and reconstructed — visible as read faults and applied diffs.
  dsm::SharedArray<std::uint32_t> arr;
  LambdaApp app(
      "notices", 8192,
      [&](dsm::Machine& m) { arr = dsm::SharedArray<std::uint32_t>::alloc(m, 128); },
      [&](dsm::Context& ctx) {
        for (int round = 0; round < 3; ++round) {
          if (ctx.pid() == 0) {
            for (std::size_t i = 0; i < 128; ++i) {
              arr.put(ctx, i, static_cast<std::uint32_t>(round * 1000 + i));
            }
          }
          ctx.barrier();
          if (ctx.pid() == 1) {
            bool good = true;
            for (std::size_t i = 0; i < 128; ++i) {
              if (arr.get(ctx, i) != static_cast<std::uint32_t>(round * 1000 + i)) {
                good = false;
              }
            }
            if (!good) app.set_ok(false);
          }
          ctx.barrier();
        }
        if (ctx.pid() == 0) app.set_ok(true);
      });
  const RunStats stats = run_protocol(app, "AEC", small_params(2));
  ASSERT_TRUE(stats.result_valid);
  EXPECT_GT(stats.diffs.diffs_created, 0u);
  EXPECT_GT(stats.diffs.diffs_applied, 0u);
}

TEST(AecProtocol, HomeReassignmentFollowsWriters) {
  dsm::SharedArray<std::uint32_t> arr;
  std::shared_ptr<const aec::AecShared> shared;
  LambdaApp app(
      "homes", 4096,
      [&](dsm::Machine& m) { arr = dsm::SharedArray<std::uint32_t>::alloc(m, 8); },
      [&](dsm::Context& ctx) {
        if (ctx.pid() == 2) {
          for (std::size_t i = 0; i < 8; ++i) arr.put(ctx, i, 5);
        }
        ctx.barrier();
        if (ctx.pid() == 0) app.set_ok(arr.get(ctx, 0) == 5);
        ctx.barrier();
      });
  aec::AecSuite suite;
  dsm::RunConfig rc;
  rc.params = small_params(4);
  const RunStats stats = dsm::run_app(app, suite.suite(), rc);
  ASSERT_TRUE(stats.result_valid);
  // Page 0 was written outside critical sections by processor 2 only: the
  // barrier manager makes the first writer the page's home.
  EXPECT_EQ(suite.shared()->home[0], 2);
}

TEST(AecProtocol, DiffCreationOverlapsAcquireWaits) {
  // Processors write private pages outside CSes and then contend on a lock:
  // the outside diffs flush during the lock wait (hidden creation).
  dsm::SharedArray<std::uint64_t> blocks;
  dsm::SharedArray<std::uint64_t> cell;
  LambdaApp app(
      "overlap", 1 << 16,
      [&](dsm::Machine& m) {
        blocks = dsm::SharedArray<std::uint64_t>::alloc(m, 4 * 512);
        cell = dsm::SharedArray<std::uint64_t>::alloc(m, 1);
      },
      [&](dsm::Context& ctx) {
        const std::size_t base = static_cast<std::size_t>(ctx.pid()) * 512;
        for (int round = 0; round < 2; ++round) {
          for (std::size_t i = 0; i < 512; ++i) {
            blocks.put(ctx, base + i, static_cast<std::uint64_t>(round + 1));
          }
          ctx.lock(0);
          cell.put(ctx, 0, cell.get(ctx, 0) + 1);
          ctx.unlock(0);
          ctx.barrier();
          // Touch the neighbour's block so the flushes matter next round.
          const std::size_t nb = ((static_cast<std::size_t>(ctx.pid()) + 1) % 4) * 512;
          std::uint64_t sum = 0;
          for (std::size_t i = 0; i < 512; i += 32) sum += blocks.get(ctx, nb + i);
          ctx.compute(sum % 3);
          ctx.barrier();
        }
        if (ctx.pid() == 0) app.set_ok(cell.get(ctx, 0) == 8);
      });
  const RunStats stats = run_protocol(app, "AEC", small_params(4));
  ASSERT_TRUE(stats.result_valid);
  EXPECT_GT(stats.diffs.create_hidden_cycles, 0u);
  EXPECT_LE(stats.diffs.create_hidden_cycles, stats.diffs.create_cycles);
}

TEST(AecProtocol, NoLapTradesPushesForFetches) {
  PingPongApp a(8), b(8);
  const RunStats with_lap = run_aec(a, small_params(4), true);
  const RunStats without = run_aec(b, small_params(4), false);
  ASSERT_TRUE(with_lap.result_valid);
  ASSERT_TRUE(without.result_valid);
  // Without pushes the chain diffs are fetched at faults: more fault stall
  // and at least as many fault events.
  EXPECT_GT(without.faults.fault_cycles, with_lap.faults.fault_cycles);
  EXPECT_GE(without.faults.read_faults + without.faults.write_faults,
            with_lap.faults.read_faults + with_lap.faults.write_faults);
}

TEST(AecProtocol, MergedDiffStatisticsAccumulate) {
  PingPongApp app(8);
  const RunStats stats = run_aec(app, small_params(4), true);
  ASSERT_TRUE(stats.result_valid);
  // Successive owners of the chain merge their diff with the inherited one.
  EXPECT_GT(stats.diffs.merged_diffs, 0u);
  EXPECT_GT(stats.diffs.merged_result_bytes, 0u);
}

TEST(AecProtocol, WorksWithUpdateSetSizeSweep) {
  for (const int k : {1, 2, 3}) {
    PingPongApp app(6);
    SystemParams params = small_params(4);
    params.update_set_size = k;
    const RunStats stats = run_aec(app, params, true);
    EXPECT_TRUE(stats.result_valid) << "K=" << k;
  }
}

TEST(AecProtocol, VirtualQueueDisableIsHonoured) {
  policy::ConsistencyPolicy pol = *policy::find_policy("AEC");
  pol.name = "AEC-noVQ";
  pol.lap_virtual_queue = false;
  aec::AecSuite suite(pol);
  PingPongApp app(6);
  dsm::RunConfig rc;
  rc.params = small_params(4);
  const RunStats stats = dsm::run_app(app, suite.suite(), rc);
  EXPECT_TRUE(stats.result_valid);
}

}  // namespace
}  // namespace aecdsm::test
