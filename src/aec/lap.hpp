// Compatibility shim: LAP moved to the policy layer (policy/lap.hpp) in the
// consistency-policy-engine refactor. The aecdsm::aec:: spellings are kept
// alive by aliases in that header.
#pragma once

#include "policy/lap.hpp"
