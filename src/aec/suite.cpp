#include "aec/suite.hpp"

#include "aec/protocol.hpp"

namespace aecdsm::aec {

dsm::ProtocolSuite AecSuite::suite() {
  dsm::ProtocolSuite s;
  s.name = cfg_.lap_enabled ? "AEC" : "AEC-noLAP";
  s.make = [this](dsm::Machine& m, ProcId p) -> std::unique_ptr<dsm::Protocol> {
    if (p == 0) shared_ = std::make_shared<AecShared>(m.params(), cfg_);
    return std::make_unique<AecProtocol>(m, p, shared_);
  };
  return s;
}

}  // namespace aecdsm::aec
