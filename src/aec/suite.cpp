#include "aec/suite.hpp"

#include "aec/protocol.hpp"
#include "common/check.hpp"

namespace aecdsm::aec {

policy::ConsistencyPolicy AecSuite::default_policy() {
  const policy::ConsistencyPolicy* p = policy::find_policy("AEC");
  AECDSM_CHECK(p != nullptr);
  return *p;
}

AecSuite::AecSuite(policy::ConsistencyPolicy pol) : pol_(std::move(pol)) {
  policy::validate(pol_);
  AECDSM_CHECK_MSG(pol_.family == policy::Family::kAec,
                   "AecSuite asked to run non-AEC policy '" << pol_.name << "'");
}

dsm::ProtocolSuite AecSuite::suite() {
  dsm::ProtocolSuite s;
  s.name = pol_.name;
  s.make = [this](dsm::Machine& m, ProcId p) -> std::unique_ptr<dsm::Protocol> {
    if (p == 0) shared_ = std::make_shared<AecShared>(m.params(), pol_);
    return std::make_unique<AecProtocol>(m, p, shared_);
  };
  return s;
}

}  // namespace aecdsm::aec
