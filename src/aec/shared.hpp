// Run-wide AEC state: the per-lock manager records (conceptually resident
// on each lock's manager node — all handlers that touch a lock's record run
// as services on that node, so the *timing* is distributed even though the
// storage is shared), the barrier manager's episode state, and the per-page
// home map.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "aec/lap.hpp"
#include "common/params.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "locks/strategy.hpp"
#include "policy/policy.hpp"

namespace aecdsm::aec {

/// Manager-side record of one lock.
struct LockRecord {
  LockRecord(const SystemParams& p, double affinity_threshold)
      : lap(p.num_procs, p.update_set_size, affinity_threshold),
        update_set(static_cast<std::size_t>(p.num_procs)) {}

  bool taken = false;
  ProcId owner = kNoProc;          ///< current owner while taken
  ProcId last_releaser = kNoProc;  ///< kNoProc right after a barrier (chain reset)
  std::uint32_t counter = 0;       ///< acquire counter; ++ per grant
  /// Acquisition counter of the last release — the counter its push carries.
  /// Grants ship it so acquirers can tell the announced push from a stale
  /// one left over from an earlier ownership of the same processor.
  std::uint32_t last_release_counter = 0;
  std::uint32_t epoch = 0;         ///< barrier episode of the last chain reset

  LockLap lap;

  /// U_l(p) as computed at p's last grant (shipped in the grant reply; the
  /// releaser pushes its merged diffs to this set).
  std::vector<std::vector<ProcId>> update_set;

  /// Cumulative, per barrier step: which processor holds the freshest
  /// merged diff of each page modified under this lock. Drives both the
  /// grant-time invalidation list and the barrier diff routing.
  std::map<PageId, ProcId> diff_holder;

  // Crash-failover dedup state, populated only when a crash schedule
  // exists. Requests and releases then carry a per-(node, lock) monotonic
  // serial; the manager records the serial pending per requester, the
  // serial echoed at its grant, and the serial of its last processed
  // release, so replayed or bounced duplicates are recognized and dropped
  // (or answered idempotently) instead of corrupting the FIFO state.
  std::map<ProcId, std::uint64_t> req_serial;
  std::map<ProcId, std::uint64_t> granted_serial;
  std::map<ProcId, std::uint64_t> released_serial;

  /// hier strategy: consecutive grants that skipped a cross-cohort FIFO
  /// head (locks::pick_waiter's fairness budget).
  int hier_streak = 0;
};

/// Per-lock information a processor reports on barrier arrival: the acquire
/// counter of its last ownership and the pages its merged diffs cover.
/// Routing diffs from these lists (highest counter wins per page) makes the
/// barrier independent of release messages still in flight to lock managers.
struct ArrivalLockInfo {
  LockId lock = 0;
  std::uint32_t counter = 0;
  std::vector<PageId> pages;
};

/// Barrier manager episode state (lives on node 0).
struct BarrierEpisode {
  struct Arrival {
    bool here = false;
    std::vector<ArrivalLockInfo> lock_info;
    std::vector<PageId> outside_pages;   ///< pages this proc wrote outside CSes
    std::vector<std::uint8_t> valid_map; ///< bitmap of pages valid at arrival
  };
  std::vector<Arrival> arrival;
  int arrived = 0;
  int completed = 0;
  std::uint32_t episode = 0;
};

class AecProtocol;

struct AecShared {
  AecShared(const SystemParams& p, policy::ConsistencyPolicy pol)
      : params(p),
        policy(std::move(pol)),
        strategy(aecdsm::locks::parse_strategy(p.locks.strategy)),
        locks(static_cast<std::size_t>(p.num_procs)),
        lockstats(static_cast<std::size_t>(p.num_procs)),
        home(0) {}

  const SystemParams params;  ///< by value: outlives the Machine for post-run reads
  const policy::ConsistencyPolicy policy;
  // The lock-record shards below are also named `locks`, so the strategy
  // namespace needs full qualification inside this class.
  const aecdsm::locks::Strategy strategy;  ///< locks.strategy, parsed once

  /// Collect LockMgrStats? Off for the default central/no-stats config so
  /// artifacts stay byte-identical to pre-locks baselines.
  bool collect_lock_stats() const {
    return strategy != aecdsm::locks::Strategy::kCentral ||
           params.locks.collect_stats;
  }

  /// Node protocol instances, for engine-side cross-node handler access.
  std::vector<AecProtocol*> nodes;

  /// Lock records, sharded by manager node (lock % nprocs). Every handler
  /// that touches a lock's record runs as a service on its manager, so under
  /// the parallel engine each shard — including its lazy insertions — is
  /// only ever mutated by that node's worker. (The cross-shard exception,
  /// the barrier completion's chain reset, runs as an exclusive event.)
  std::vector<std::map<LockId, LockRecord>> locks;

  /// Strategy counters, sharded like the lock records: manager-side paths
  /// update the manager node's slot (that node's worker), the mcs direct
  /// handoff — an exclusive event — updates the handler node's slot.
  /// run_app sums the shards. Empty of any nonzero value unless
  /// collect_lock_stats().
  std::vector<LockMgrStats> lockstats;

  BarrierEpisode barrier;

  /// Current home node per page (initially page % nprocs); reassigned by
  /// the barrier manager and distributed with the episode directives.
  std::vector<ProcId> home;

  LockRecord& lock(LockId l) {
    return lock(l, static_cast<ProcId>(l % static_cast<LockId>(params.num_procs)));
  }

  /// Record lookup by current manager: after a crash failover the record
  /// lives in the re-elected manager's shard, not the static `l % nprocs`
  /// one. Handlers pass Machine::lock_manager(l) so each shard — including
  /// its lazy insertions — is still only touched by its own node's worker.
  LockRecord& lock(LockId l, ProcId mgr) {
    std::map<LockId, LockRecord>& shard = locks[static_cast<std::size_t>(mgr)];
    auto it = shard.find(l);
    if (it == shard.end()) {
      // Disabling the affinity technique is modeled as an unreachable
      // inclusion threshold (the affinity set is then always empty).
      const double threshold =
          policy.lap_affinity ? params.affinity_threshold : 1e30;
      it = shard.emplace(l, LockRecord(params, threshold)).first;
    }
    return it->second;
  }

  /// Find-only variant (election-time reads): nullptr when the record was
  /// never created in `mgr`'s shard.
  LockRecord* find_lock(LockId l, ProcId mgr) {
    auto& shard = locks[static_cast<std::size_t>(mgr)];
    auto it = shard.find(l);
    return it == shard.end() ? nullptr : &it->second;
  }

  /// Crash failover: move lock `l`'s record between manager shards. Custody
  /// (affinity history, diff holders, owner) survives the fail-stop window
  /// because the storage is shared host memory. Exclusive-event only.
  void migrate_lock(LockId l, ProcId from, ProcId to) {
    auto node = locks[static_cast<std::size_t>(from)].extract(l);
    if (!node.empty()) locks[static_cast<std::size_t>(to)].insert(std::move(node));
  }
};

}  // namespace aecdsm::aec
