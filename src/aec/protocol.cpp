#include "aec/protocol.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <memory>

#include "common/bitset.hpp"
#include "common/check.hpp"
#include "common/log.hpp"
#include "dsm/system.hpp"
#include "locks/discipline.hpp"
#include "trace/recorder.hpp"

namespace aecdsm::aec {

// kCtl, trace_page() and trace_word() are inherited from the policy engine
// (policy/engine.hpp), which hoisted them out of the three protocols.

#define AECDSM_TRACE(pg, stream_expr)                       \
  do {                                                      \
    if ((pg) == trace_page()) AECDSM_DEBUG(stream_expr);    \
  } while (0)

AecProtocol::AecProtocol(dsm::Machine& m, ProcId self, std::shared_ptr<AecShared> shared)
    : policy::PolicyEngine(m, self, shared->policy),
      sh_(std::move(shared)),
      pages_(m.num_pages()) {
  interest_.assign((m.num_pages() + 7) / 8, 0);
  if (sh_->home.empty()) {
    sh_->home.resize(m.num_pages());
    for (PageId pg = 0; pg < m.num_pages(); ++pg) {
      sh_->home[pg] = static_cast<ProcId>(pg % static_cast<PageId>(m.nprocs()));
    }
    sh_->barrier.arrival.resize(static_cast<std::size_t>(m.nprocs()));
    sh_->nodes.resize(static_cast<std::size_t>(m.nprocs()), nullptr);
  }
  sh_->nodes[static_cast<std::size_t>(self)] = this;
  // Barrier arrivals to the manager are exclusive events (the completing one
  // rewrites every lock manager's records). Under faults, held out-of-order
  // arrivals are released by whatever reliable carrier fills the channel
  // gap, so every such carrier must run solo as well — registered up front,
  // before any message is in flight.
  m.transport().mark_exclusive_dst(m.barrier_manager());
  dsm::init_round_robin_validity(m, self);
}

AecProtocol::~AecProtocol() = default;

std::string AecProtocol::name() const { return pol_.name; }

// --------------------------------------------------------------------------
// Low-level helpers
// --------------------------------------------------------------------------

void AecProtocol::push_from_app(ProcId to, std::size_t bytes, Cycles svc_cost,
                                std::function<void()> handler, sim::Bucket bucket) {
  proc().advance(m_.params().message_overhead, bucket);
  proc().sync();
  if (trace::Recorder* tr = m_.recorder()) {
    tr->instant(self_, trace::Category::kLap, trace::names::kLapPush,
                proc().now(), "dst", static_cast<std::uint64_t>(to), "bytes",
                bytes);
  }
  m_.post_best_effort(self_, to, bytes, svc_cost, std::move(handler));
}

bool AecProtocol::wait_for_push_or_timeout(LockLocal& ll, sim::Bucket bucket) {
  // The deadline flag is shared-owned: the timer may fire long after this
  // frame returned (there is no event cancellation).
  auto deadline_hit = std::make_shared<bool>(false);
  m_.engine().schedule(m_.engine().now() + m_.params().faults.push_timeout_cycles,
                       [this, deadline_hit] {
                         *deadline_hit = true;
                         proc().poke();
                       });
  proc().wait(bucket,
              [&ll, deadline_hit] { return !ll.expect_push || *deadline_hit; });
  if (!ll.expect_push) return true;
  // The push was lost (or is extremely late): stop waiting and degrade to
  // the noLAP lazy-fetch path. The abandoned push now counts as seen, so a
  // late copy landing after we fetched the diffs ourselves — and possibly
  // wrote over them in the critical section — is discarded as stale instead
  // of resurrecting the old chain state.
  ll.expect_push = false;
  ll.max_counter_seen = std::max(ll.max_counter_seen, ll.grant_release_counter);
  ++m_.transport().stats_for(self_).push_timeouts;
  return false;
}

void AecProtocol::flush_outside_page(PageId pg, bool hidden, sim::Bucket bucket) {
  PageMeta& pm = meta(pg);
  AECDSM_CHECK(pm.dirty_out);
  mem::Diff d = create_diff_charged(pg, hidden, bucket);
  // A still-lazy published generation shares this twin; materialize it
  // before the twin is refreshed (d covers its window too — conservative,
  // and sound for data-race-free programs).
  if (pm.pub_cur.lazy) {
    pm.pub_cur.diff = pm.pub_cur.diff.empty() ? d : mem::Diff::merge(pm.pub_cur.diff, d);
    pm.pub_cur.lazy = false;
  }
  if (pm.pub_prev.lazy) {
    pm.pub_prev.diff = pm.pub_prev.diff.empty() ? d : mem::Diff::merge(pm.pub_prev.diff, d);
    pm.pub_prev.lazy = false;
  }
  if (pm.stale_twin) {
    // d holds previous-step modifications that belong to the published
    // generations materialized above; they must not re-enter this step's
    // accumulator (republishing old values would overwrite newer writes).
    pm.stale_twin = false;
  } else {
    pm.out_acc = pm.out_acc.empty() ? std::move(d) : mem::Diff::merge(pm.out_acc, d);
  }
  // Twin refresh (reutilization) costs another page copy.
  proc().advance(m_.params().twin_create_cycles(), bucket);
  store().refresh_twin(pg);
  store().frame(pg).write_protected = true;
  pm.dirty_out = false;
  pm.reprotected_out = false;
  dirty_out_set_.erase(pg);
  trace_counter(trace::names::kDiffOutstanding, proc().now(),
                dirty_out_set_.size() + dirty_in_set_.size());
}

void AecProtocol::invalidate_page(PageId pg) {
  mem::PageFrame& f = store().frame(pg);
  AECDSM_TRACE(pg, "p" << self_ << " invalidate pg" << pg);
  AECDSM_CHECK(f.valid);
  f.valid = false;
  meta(pg).reconstructible = true;
  ctx().invalidate_cache_page(pg);
}

// --------------------------------------------------------------------------
// Access faults (§3.4)
// --------------------------------------------------------------------------

void AecProtocol::on_read_fault(PageId pg) { handle_fault(pg, /*is_write=*/false); }

void AecProtocol::on_write_fault(PageId pg) { handle_fault(pg, /*is_write=*/true); }

void AecProtocol::handle_fault(PageId pg, bool is_write) {
  // The fault trap itself.
  proc().advance(m_.params().interrupt_cycles, sim::Bucket::kData);
  resolve_base(pg);
  if (ctx().in_critical_section()) apply_cs_diff_if_needed(pg);
  if (is_write) write_twin_discipline(pg);
}

void AecProtocol::resolve_base(PageId pg) {
  PageMeta& pm = meta(pg);
  mem::PageFrame& f = store().frame(pg);
  if (f.valid) return;
  AECDSM_TRACE(pg, "p" << self_ << " resolve_base pg" << pg << " recon="
                       << pm.reconstructible << " notices=" << pm.notices.size()
                       << " nep=" << pm.notices_episode << " ep=" << episode_
                       << " home=p" << sh_->home[pg]);

  if (!pm.reconstructible) {
    // Cold or stale copy: fetch the page from its home (§3.4 "ask home").
    AECDSM_CHECK_MSG(pm.notices.empty() || pm.notices_episode != episode_,
                     "fresh notices on a non-reconstructible page");
    pm.notices.clear();
    ++m_.node(self_).faults.cold_faults;
    const ProcId h = sh_->home[pg];
    AECDSM_CHECK_MSG(h != self_, "home fetch from self for page " << pg);

    fetch_page_from_home(
        pg, h, sim::Bucket::kData,
        [this, h, pg](std::vector<Word>& buf) {
          AecProtocol& home = peer(h);
          home.meta(pg).request_seen = true;
          buf.assign(home.store().page_span(pg).begin(),
                     home.store().page_span(pg).end());
        },
        [this, pg] {
          AECDSM_TRACE(pg, "p" << self_ << " home-fetch pg" << pg << " frame[w"
                               << trace_word() << "]="
                               << store().frame(pg).data[trace_word()]);
          // The home's copy already includes this node's published
          // modifications; restart the twin from the fetched state so
          // future diffs cover only genuinely new local writes.
          mem::PageFrame& f = store().frame(pg);
          if (f.has_twin()) *f.twin = f.data;
        });
    pm.reconstructible = true;
    ctx().invalidate_cache_page(pg);
  }

  apply_notice_diffs(pg, sim::Bucket::kData);
  f.valid = true;
  pm.reconstructible = false;
}

void AecProtocol::apply_notice_diffs(PageId pg, sim::Bucket bucket) {
  PageMeta& pm = meta(pg);
  if (pm.notices.empty()) return;
  AECDSM_CHECK_MSG(pm.notices_episode == episode_,
                   "stale write notices survived cleanup for page " << pg);
  const auto& params = m_.params();
  const std::uint32_t want_episode = episode_;  // diffs published at our last barrier

  struct Fetch {
    std::shared_ptr<mem::Diff> diff = std::make_shared<mem::Diff>();
    bool done = false;
  };
  std::vector<Fetch> fetches(pm.notices.size());
  int pending = static_cast<int>(pm.notices.size());

  proc().advance(params.message_overhead * pm.notices.size(), bucket);
  proc().sync();
  for (std::size_t i = 0; i < pm.notices.size(); ++i) {
    const ProcId w = pm.notices[i];
    Fetch& fx = fetches[i];
    post_dynamic(
        self_, w, kCtl,
        [this, w, pg, want_episode, &fx] {
          Cycles cost = 0;
          *fx.diff = peer(w).serve_published(pg, want_episode, cost);
          return cost;
        },
        [this, w, pg, &fx, &pending] {
          post_dynamic(
              w, self_, kCtl + fx.diff->encoded_bytes(),
              [this] { return m_.params().list_processing_per_elem * 2; },
              [this, &fx, &pending] {
                fx.done = true;
                --pending;
                proc().poke();
              });
        });
  }
  proc().wait(bucket, [&pending] { return pending == 0; });
  for (Fetch& fx : fetches) {
    apply_diff_charged(pg, *fx.diff, /*hidden=*/false, bucket);
  }
  pm.notices.clear();
}

mem::Diff AecProtocol::serve_published(PageId pg, std::uint32_t episode, Cycles& cost) {
  PageMeta& pm = meta(pg);
  AECDSM_TRACE(pg, "p" << self_ << " serve_published pg" << pg << " ep=" << episode
                       << " cur.ep=" << pm.pub_cur.episode << " lazy=" << pm.pub_cur.lazy
                       << " prev.ep=" << pm.pub_prev.episode << " frame[0,6,7]="
                       << store().frame(pg).data[0] << "," << store().frame(pg).data[6] << "," << store().frame(pg).data[7]
                       << " twin[6]="
                       << (store().frame(pg).has_twin() ? (*store().frame(pg).twin)[6] : 0));
  pm.request_seen = true;
  PublishedGen* g = nullptr;
  if (pm.pub_cur.episode == episode) g = &pm.pub_cur;
  else if (pm.pub_prev.episode == episode) g = &pm.pub_prev;
  AECDSM_CHECK_MSG(g != nullptr, "no published diff for page " << pg << " episode "
                                                               << episode);
  if (!g->lazy) {
    cost = m_.params().list_processing_per_elem * 2;
    return g->diff;
  }
  // Deferred publication: diff on demand against the live twin (server pays).
  mem::Diff live = service_diff_create(pg, cost);
  return g->diff.empty() ? live : mem::Diff::merge(g->diff, live);
}

const mem::Diff* AecProtocol::serve_merged(LockId l, PageId pg) {
  if (pg == trace_page()) {
    auto it = locks_.find(l);
    long tw = -2;
    if (it != locks_.end()) {
      auto jt = it->second.merged.find(pg);
      if (jt != it->second.merged.end()) {
        tw = -1;
        for (const auto& r : jt->second.runs()) {
          if (r.word_offset <= trace_word() &&
              trace_word() < r.word_offset + r.words.size()) {
            tw = static_cast<long>(r.words[trace_word() - r.word_offset]);
          }
        }
      }
    }
    AECDSM_DEBUG("p" << self_ << " serve_merged l" << l << " pg" << pg << " diff[w"
                     << trace_word() << "]=" << tw);
  }
  meta(pg).request_seen = true;
  auto it = locks_.find(l);
  if (it == locks_.end()) return nullptr;
  auto jt = it->second.merged.find(pg);
  return jt == it->second.merged.end() ? nullptr : &jt->second;
}

void AecProtocol::apply_cs_diff_if_needed(PageId pg) {
  const auto& params = m_.params();
  for (auto it = cs_stack_.rbegin(); it != cs_stack_.rend(); ++it) {
    const LockId l = *it;
    LockLocal& ll = llocal(l);
    if (!ll.grant_ready) continue;
    auto ht = ll.cs_holders.find(pg);
    if (ht == ll.cs_holders.end()) continue;
    const ProcId holder = ht->second;
    if (ll.chain_applied.count(pg) != 0) return;
    if (ll.expect_push && holder == ll.grant_last_releaser &&
        ll.merged.count(pg) == 0) {
      // The grant announced a push covering the releaser's pages; it is in
      // flight, and waiting for it is cheaper than re-fetching the diffs.
      if (!m_.transport().enabled()) {
        proc().wait(sim::Bucket::kData, [&ll] { return !ll.expect_push; });
      } else if (!wait_for_push_or_timeout(ll, sim::Bucket::kData)) {
        // Best-effort push lost: degrade to the noLAP lazy holder fetch.
        ++m_.transport().stats_for(self_).push_fallbacks;
      }
    }
    if (auto mt = ll.merged.find(pg); mt != ll.merged.end()) {
      // The chain diff is already in local custody (push fold, fetch, or an
      // earlier ownership); it may not have reached the frame yet — even
      // when this node is the recorded holder.
      apply_diff_charged(pg, mt->second, /*hidden=*/false, sim::Bucket::kData);
      ll.chain_applied.insert(pg);
      return;
    }
    AECDSM_CHECK_MSG(holder != self_,
                     "recorded holder p" << self_ << " lacks custody of page " << pg);
    // Fetch the merged chain diff from its holder.
    proc().advance(params.message_overhead, sim::Bucket::kData);
    proc().sync();
    bool done = false;
    auto buf = std::make_shared<mem::Diff>();
    post_dynamic(
        self_, holder, kCtl,
        [this, holder, l, pg, buf] {
          const mem::Diff* d = peer(holder).serve_merged(l, pg);
          AECDSM_CHECK_MSG(d != nullptr, "chain diff missing at holder " << holder
                                                                         << " page " << pg);
          *buf = *d;
          return m_.params().list_processing_per_elem * 2;
        },
        [this, holder, buf, &done] {
          post_dynamic(
              holder, self_, kCtl + buf->encoded_bytes(),
              [this] { return m_.params().list_processing_per_elem * 2; },
              [this, &done] {
                done = true;
                proc().poke();
              });
        });
    proc().wait(sim::Bucket::kData, [&done] { return done; });
    apply_diff_charged(pg, *buf, /*hidden=*/false, sim::Bucket::kData);
    ll.merged[pg] = std::move(*buf);
    ll.chain_applied.insert(pg);
    return;
  }
}

void AecProtocol::write_twin_discipline(PageId pg) {
  PageMeta& pm = meta(pg);
  mem::PageFrame& f = store().frame(pg);
  const bool in_cs = ctx().in_critical_section();
  if (!f.write_protected && f.valid) return;  // resolved by an earlier path

  if (pm.dirty_out) {
    // §3.4 careful path: the page carries un-diffed outside modifications
    // (it was re-protected at acquire without flushing, or this is the
    // first write inside the CS to a page with outside mods). Create the
    // outside diff first so inside and outside modifications stay separate.
    AECDSM_CHECK(f.has_twin());
    mem::Diff d = create_diff_charged(pg, /*hidden=*/false, sim::Bucket::kData);
    if (pm.pub_cur.lazy) {
      pm.pub_cur.diff = pm.pub_cur.diff.empty() ? d : mem::Diff::merge(pm.pub_cur.diff, d);
      pm.pub_cur.lazy = false;
    }
    if (pm.pub_prev.lazy) {
      pm.pub_prev.diff =
          pm.pub_prev.diff.empty() ? d : mem::Diff::merge(pm.pub_prev.diff, d);
      pm.pub_prev.lazy = false;
    }
    if (pm.stale_twin) {
      // Previous-step modifications: generations only (see flush path).
      pm.stale_twin = false;
    } else {
      pm.out_acc = pm.out_acc.empty() ? std::move(d) : mem::Diff::merge(pm.out_acc, d);
    }
    proc().advance(m_.params().twin_create_cycles(), sim::Bucket::kData);
    store().refresh_twin(pg);
    pm.dirty_out = false;
    pm.reprotected_out = false;
    dirty_out_set_.erase(pg);
  }
  if (!f.has_twin()) {
    make_twin_charged(pg, sim::Bucket::kData);
  }
  if (in_cs) {
    AECDSM_CHECK(!cs_stack_.empty());
    pm.dirty_in = true;
    pm.inside_lock = cs_stack_.back();
    dirty_in_set_.insert(pg);
  } else {
    pm.dirty_out = true;
    dirty_out_set_.insert(pg);
    outside_mod_pages_.insert(pg);
  }
  trace_counter(trace::names::kDiffOutstanding, proc().now(),
                dirty_out_set_.size() + dirty_in_set_.size());
  f.write_protected = false;
}

// --------------------------------------------------------------------------
// Locks
// --------------------------------------------------------------------------

void AecProtocol::acquire_notice(LockId l) {
  const ProcId mgr = m_.lock_manager(l);
  send_from_app(mgr, kCtl, m_.params().list_processing_per_elem * 2,
                [this, l, p = self_, mgr] { mgr_handle_notice(l, p, mgr); },
                sim::Bucket::kSynch);
}

void AecProtocol::acquire(LockId l) {
  const auto& params = m_.params();
  LockLocal& ll = llocal(l);
  ll.grant_ready = false;
  ll.grant_processed = false;
  ll.cs_holders.clear();
  ll.my_update_set.clear();

  const ProcId mgr = m_.lock_manager(l);
  std::uint64_t serial = 0;
  if (crash_scheduled()) {
    serial = next_op_serial(l);
    ll.awaiting_serial = serial;
    ll.cur_serial = serial;
    // The replay rides the engine (a NIC-autonomous re-send to the
    // re-elected manager); the app thread is blocked inside this very
    // acquire and must not be charged again.
    ll.req_op_id = track_mgr_op(
        l, mgr, serial, [this, l, serial](ProcId nm) {
          m_.post(self_, nm, kCtl, m_.params().list_processing_per_elem * 4,
                  [this, l, p = self_, serial, nm] {
                    mgr_handle_request(l, p, serial, nm);
                  });
        });
  }
  send_from_app(mgr, kCtl, params.list_processing_per_elem * 4,
                [this, l, p = self_, serial, mgr] {
                  mgr_handle_request(l, p, serial, mgr);
                },
                sim::Bucket::kSynch);

  // Overlap the wait for the grant: first apply already-received pushes to
  // valid pages, then flush outside modifications into diffs (§3.2).
  auto next_push_page = [&]() -> PageId {
    if (!ll.push_valid) return kNoPage;
    for (const auto& [pg, d] : ll.push) {
      if (ll.chain_applied.count(pg) == 0 && store().frame(pg).valid) return pg;
    }
    return kNoPage;
  };
  for (;;) {
    proc().sync();
    if (ll.grant_ready) break;
    if (const PageId pg = next_push_page(); pg != kNoPage) {
      // Copy the diff: a fresher push may replace ll.push while the apply
      // cost is being charged (the sync lets engine events run).
      const std::uint32_t counter_before = ll.push_counter;
      const mem::Diff d = ll.push.at(pg);
      apply_diff_charged(pg, d, /*hidden=*/true, sim::Bucket::kSynch);
      if (ll.push_valid && ll.push_counter == counter_before) {
        ll.chain_applied.insert(pg);
      }
      continue;
    }
    if (!dirty_out_set_.empty()) {
      const PageId pg = *dirty_out_set_.begin();
      flush_outside_page(pg, /*hidden=*/true, sim::Bucket::kSynch);
      meta(pg).flushed_at_acquire = true;
      ll.protected_at_acquire.push_back(pg);
      continue;
    }
    proc().wait(sim::Bucket::kSynch, [&] {
      return ll.grant_ready || next_push_page() != kNoPage;
    });
  }

  // Re-protect outside-dirty pages that the overlap did not get to; their
  // first write inside the CS takes the §3.4 careful path.
  for (const PageId pg : std::vector<PageId>(dirty_out_set_.begin(), dirty_out_set_.end())) {
    store().frame(pg).write_protected = true;
    meta(pg).reprotected_out = true;
    ll.protected_at_acquire.push_back(pg);
    proc().advance(params.list_processing_per_elem, sim::Bucket::kSynch);
  }

  const ProcId last = ll.grant_last_releaser;
  AECDSM_DEBUG("p" << self_ << " granted l" << l << " counter=" << ll.grant_counter
                   << " last=" << last << " push_valid=" << llocal(l).push_valid
                   << " push_from=" << llocal(l).push_from
                   << " holders=" << ll.cs_holders.size());
  if (last != self_ && last != kNoProc) {
    const bool confirmed = pol_.lap_pushes() && ll.push_valid &&
                           ll.push_from == last &&
                           ll.push_counter == ll.grant_release_counter;
    if (confirmed) ll.expect_push = false;  // the push arrived before processing
    if (!confirmed && !ll.expect_push) {
      // Speculatively applied pushes were chain prefixes (harmless); the
      // cs_holders sweep below invalidates anything possibly stale.
      ll.push_valid = false;
      ll.push.clear();
      ll.chain_applied.clear();
    }
    // Rebuild the merged-chain custody: confirmed push pages, plus pages
    // whose freshest holder is this node.
    std::map<PageId, mem::Diff> fresh;
    std::map<PageId, mem::Diff> push_copy;
    if (confirmed) {
      push_copy = ll.push;
      for (const auto& [pg, d] : ll.push) fresh[pg] = d;
      proc().advance(params.list_processing_per_elem * ll.push.size(),
                     sim::Bucket::kSynch);
    }
    for (const auto& [pg, holder] : ll.cs_holders) {
      if (holder != self_) continue;
      auto it = ll.merged.find(pg);
      AECDSM_CHECK_MSG(it != ll.merged.end(),
                       "manager thinks p" << self_ << " holds diff of page " << pg);
      fresh[pg] = std::move(it->second);
    }
    ll.merged = std::move(fresh);

    for (const auto& [pg, holder] : ll.cs_holders) {
      if (holder == self_) continue;  // chain_applied already tracks our frame
      const bool covered = confirmed && push_copy.count(pg) != 0;
      if (covered) {
        if (ll.chain_applied.count(pg) == 0 && store().frame(pg).valid) {
          apply_diff_charged(pg, push_copy.at(pg), /*hidden=*/false,
                             sim::Bucket::kSynch);
          ll.chain_applied.insert(pg);
        }
        // Invalid pages keep the diff pending in ll.merged for fault time.
      } else {
        if (store().frame(pg).valid) {
          invalidate_page(pg);
          proc().advance(params.list_processing_per_elem, sim::Bucket::kSynch);
        }
        // An unconfirmed (late or lost) push may have been applied
        // speculatively before this grant; its chain_applied entry is stale
        // now that the page left local custody, and keeping it would make
        // the in-CS fault path skip the lazy holder fetch and read pre-chain
        // data. No-op on a lossless mesh: the announced push always lands
        // before the grant there, so unconfirmed grants arrive with an empty
        // chain_applied set.
        ll.chain_applied.erase(pg);
      }
    }
    ll.push_valid = false;
    ll.push.clear();
  } else {
    // Reacquisition by the last releaser (or a fresh post-barrier lock):
    // local state is already current.
    ll.push_valid = false;
    ll.push.clear();
    ll.expect_push = false;
  }

  if (sh_->strategy == aecdsm::locks::Strategy::kMcs) {
    // Links chained behind past tenures were consumed (or superseded by a
    // manager-path grant that raced the LINK); only the current tenure's
    // link — possibly not arrived yet — can still matter.
    ll.mcs_links.erase(ll.mcs_links.begin(),
                       ll.mcs_links.lower_bound(ll.grant_counter));
  }
  ll.grant_processed = true;
  owned_this_step_.insert(l);
  cs_stack_.push_back(l);
}

void AecProtocol::release(LockId l) {
  const auto& params = m_.params();
  LockLocal& ll = llocal(l);

  // An announced push that has not landed yet carries chain diffs this
  // release must merge and hand on; it is already in flight, so the wait is
  // short and bounded. Under fault injection the push may never arrive: give
  // up after the push timeout and release without the predecessor's diffs —
  // the manager still records the predecessor as their holder, so later
  // acquirers fetch them lazily.
  if (ll.expect_push) {
    if (!m_.transport().enabled()) {
      proc().wait(sim::Bucket::kSynch, [&ll] { return !ll.expect_push; });
    } else {
      wait_for_push_or_timeout(ll, sim::Bucket::kSynch);
    }
  }

  // 1. Diffs of pages modified inside the critical section. The paper notes
  //    this work cannot be overlapped (the next acquirer must not see stale
  //    data), so it is exposed on the releaser.
  std::vector<PageId> inside;
  for (const PageId pg : dirty_in_set_) {
    if (meta(pg).inside_lock == l) inside.push_back(pg);
  }
  for (const PageId pg : inside) {
    mem::Diff d = create_diff_charged(pg, /*hidden=*/false, sim::Bucket::kSynch);
    auto it = ll.merged.find(pg);
    if (it == ll.merged.end()) {
      ll.merged.emplace(pg, std::move(d));
    } else {
      it->second = mem::Diff::merge(it->second, d);
      ++dstats_.merged_diffs;  // this release's diff merged with the chain's
      ++dstats_.merged_result_count;
      dstats_.merged_result_bytes += it->second.encoded_bytes();
      proc().advance(params.list_processing_per_elem, sim::Bucket::kSynch);
      if (trace::Recorder* tr = m_.recorder()) {
        tr->instant(self_, trace::Category::kDiff, trace::names::kDiffMerge,
                    proc().now(), "page", pg, "lock", l);
      }
    }
    PageMeta& pm = meta(pg);
    pm.dirty_in = false;
    dirty_in_set_.erase(pg);
    store().frame(pg).write_protected = true;
    store().drop_twin(pg);
    ll.chain_applied.insert(pg);
  }

  // 2. Unprotect pages protected at acquire but not modified inside the CS;
  //    their diffs are discarded and twins reutilized (§3.2).
  for (const PageId pg : ll.protected_at_acquire) {
    PageMeta& pm = meta(pg);
    const bool was_inside =
        std::find(inside.begin(), inside.end(), pg) != inside.end();
    if (was_inside || pm.dirty_in) continue;
    store().frame(pg).write_protected = false;
    if (pm.flushed_at_acquire) {
      pm.dirty_out = true;
      dirty_out_set_.insert(pg);
      pm.flushed_at_acquire = false;
    }
    pm.reprotected_out = false;
    proc().advance(params.list_processing_per_elem, sim::Bucket::kSynch);
  }
  ll.protected_at_acquire.clear();

  // 3. Push the merged diffs to the update set (LAP channel). The push is
  //    sent even when empty: a grant may have announced it, and the member
  //    blocks faults until it arrives (bounded by the push timeout under
  //    fault injection — pushes ride the best-effort channel and may be
  //    lost, in which case the member degrades to lazy fetching).
  if (pol_.lap_pushes() && !ll.my_update_set.empty()) {
    auto payload = std::make_shared<std::map<PageId, mem::Diff>>(ll.merged);
    std::size_t bytes = kCtl;
    for (const auto& [pg, d] : *payload) bytes += 8 + d.encoded_bytes();
    for (const ProcId q : ll.my_update_set) {
      if (q == self_) continue;
      const std::uint32_t counter = ll.grant_counter;
      push_from_app(q, bytes, params.list_processing_per_elem * payload->size(),
                    [this, q, l, counter, ep = episode_, payload] {
                      peer(q).recv_push(l, self_, counter, ep, payload);
                    },
                    sim::Bucket::kSynch);
    }
  }

  // 4. Hand the lock back to the manager with the merged page list, and
  //    remember the same list for the barrier arrival report (the barrier
  //    manager routes diffs from arrival reports so that releases still in
  //    flight cannot skew the routing).
  std::vector<PageId> pages;
  pages.reserve(ll.merged.size());
  for (const auto& [pg, d] : ll.merged) pages.push_back(pg);
  release_info_[l] = ArrivalLockInfo{l, ll.grant_counter, pages};
  const ProcId mgr = m_.lock_manager(l);

  // mcs: when the manager linked a successor behind this tenure, hand the
  // lock to it directly — one point-to-point message carrying the release
  // page list plus the grant payload (the successor reads the holder map
  // from the shared record; the bytes model the grant delta it would have
  // received from the manager). Runs as an exclusive event because the
  // successor performs the manager-record bookkeeping on its own node.
  // Disabled under a crash schedule: handoffs then stay on the manager path
  // the failover chain replays.
  if (sh_->strategy == aecdsm::locks::Strategy::kMcs && !crash_scheduled()) {
    if (auto lit = ll.mcs_links.find(ll.grant_counter); lit != ll.mcs_links.end()) {
      const ProcId succ = lit->second;
      ll.mcs_links.erase(lit);
      send_from_app(succ, kCtl + 8 * pages.size() + 32 + 12 * pages.size(),
                    params.list_processing_per_elem * (pages.size() + 4),
                    [this, l, p = self_, pages, ep = episode_, succ] {
                      peer(succ).recv_direct_handoff(l, p, pages, ep);
                    },
                    sim::Bucket::kSynch, /*exclusive=*/true);
      auto sit = std::find(cs_stack_.rbegin(), cs_stack_.rend(), l);
      AECDSM_CHECK(sit != cs_stack_.rend());
      cs_stack_.erase(std::next(sit).base());
      return;
    }
  }

  const std::uint64_t serial = crash_scheduled() ? ll.cur_serial : 0;
  if (serial != 0) {
    // The release op stays tracked until the manager's crash-gated
    // confirmation lands; a manager crash replays it to the successor so
    // the FIFO hand-off is not lost with the crashed node.
    track_mgr_op(l, mgr, serial,
                 [this, l, pages, ep = episode_, serial](ProcId nm) {
                   m_.post(self_, nm, kCtl + 8 * pages.size(),
                           m_.params().list_processing_per_elem * (pages.size() + 2),
                           [this, l, p = self_, pages, ep, serial, nm] {
                             mgr_handle_release(l, p, pages, ep, serial, nm);
                           });
                 });
  }
  send_from_app(mgr, kCtl + 8 * pages.size(),
                params.list_processing_per_elem * (pages.size() + 2),
                [this, l, p = self_, pages, ep = episode_, serial, mgr] {
                  mgr_handle_release(l, p, pages, ep, serial, mgr);
                },
                sim::Bucket::kSynch);

  auto it = std::find(cs_stack_.rbegin(), cs_stack_.rend(), l);
  AECDSM_CHECK(it != cs_stack_.rend());
  cs_stack_.erase(std::next(it).base());
}

void AecProtocol::recv_grant(LockId l, ProcId last_releaser, std::uint32_t counter,
                             std::uint32_t release_counter,
                             std::map<PageId, ProcId> cs_holders,
                             std::vector<ProcId> update_set, bool in_update_set,
                             std::uint64_t serial) {
  LockLocal& ll = llocal(l);
  if (crash_scheduled()) {
    // Only the grant answering the outstanding request counts: duplicates
    // (the pre-crash manager's original racing the successor's rebuild, or
    // a resend triggered by a bounced stale request) are dropped.
    if (serial != ll.awaiting_serial) {
      AECDSM_DEBUG("p" << self_ << " drops grant l" << l << " serial=" << serial
                       << " awaiting=" << ll.awaiting_serial);
      return;
    }
    ll.awaiting_serial = 0;
    clear_mgr_op(ll.req_op_id);
    ll.req_op_id = 0;
  }
  ll.grant_last_releaser = last_releaser;
  ll.grant_counter = counter;
  ll.grant_release_counter = release_counter;
  ll.cs_holders = std::move(cs_holders);
  ll.my_update_set = std::move(update_set);
  // A push is announced; if it already arrived the grant path confirms it,
  // otherwise faults on the releaser's pages wait for it.
  ll.expect_push =
      in_update_set && !(ll.push_valid && ll.push_from == last_releaser &&
                         ll.push_counter == release_counter);
  ll.grant_ready = true;
  proc().poke();
}

void AecProtocol::fold_push(LockLocal& ll) {
  for (const auto& [pg, d] : ll.push) {
    ll.merged[pg] = d;  // cumulative chain diff: the push supersedes ours
  }
  ll.push_valid = false;
  ll.push.clear();
  ll.expect_push = false;
}

void AecProtocol::recv_push(LockId l, ProcId from, std::uint32_t counter,
                            std::uint32_t episode,
                            std::shared_ptr<const std::map<PageId, mem::Diff>> diffs) {
  LockLocal& ll = llocal(l);
  AECDSM_DEBUG("p" << self_ << " recv push l" << l << " from p" << from
                   << " counter=" << counter << " max_seen=" << ll.max_counter_seen);
  // Fault injection can hold a best-effort copy across a barrier; its diffs
  // are then stale against post-barrier frames and must not be applied. A
  // lossless mesh never does this, so the guard stays off to keep fault-free
  // runs bit-identical.
  if (m_.transport().enabled() && episode != episode_) return;
  if (counter <= ll.max_counter_seen) return;  // stale prediction, discard
  if (trace_page() != kNoPage) {
    auto it = diffs->find(trace_page());
    if (it != diffs->end()) {
      std::ostringstream os;
      for (const auto& r : it->second.runs()) {
        for (std::size_t k = 0; k < r.words.size(); ++k) {
          if (r.word_offset + k == trace_word()) {
            os << " w" << r.word_offset + k << "=" << r.words[k];
          }
        }
      }
      AECDSM_DEBUG("p" << self_ << " push-content l" << l << " c" << counter << os.str());
    }
  }
  ll.max_counter_seen = counter;
  ll.push_valid = true;
  ll.push_counter = counter;
  ll.push_from = from;
  ll.push = *diffs;
  ll.chain_applied.clear();
  // An announced push landing mid-critical-section joins the chain custody
  // immediately; waiting faults resume. Before the grant is processed the
  // normal confirmation path consumes the push instead.
  if (ll.grant_ready && ll.grant_processed && ll.expect_push &&
      from == ll.grant_last_releaser && counter == ll.grant_release_counter) {
    fold_push(ll);
  }
  proc().poke();
}

void AecProtocol::recv_mcs_link(LockId l, std::uint32_t pred_counter, ProcId succ) {
  // Store unconditionally: tenure counters are globally unique per lock, so
  // only the tenure whose grant carries `pred_counter` ever consumes this
  // entry. A link landing after its tenure already released the manager way
  // (the REL raced the LINK) goes stale and is pruned at the next grant.
  AECDSM_DEBUG("p" << self_ << " mcs link l" << l << " pred_counter="
                   << pred_counter << " succ=p" << succ);
  llocal(l).mcs_links[pred_counter] = succ;
}

void AecProtocol::recv_direct_handoff(LockId l, ProcId releaser,
                                      std::vector<PageId> pages,
                                      std::uint32_t episode) {
  const ProcId mgr = m_.lock_manager(l);
  LockRecord& rec = sh_->lock(l, mgr);
  AECDSM_DEBUG("p" << self_ << " direct handoff l" << l << " from p" << releaser
                   << " counter=" << rec.counter);
  // The releaser's LINK promised this node is the exact FIFO successor of
  // its tenure — true by construction in crash-free runs (mcs handoffs are
  // disabled under a crash schedule). Validate against the shared record
  // anyway and degrade to a plain manager-path release on any mismatch.
  if (!(rec.taken && rec.owner == releaser && rec.lap.has_waiters() &&
        rec.lap.waiting().front() == self_)) {
    if (sh_->collect_lock_stats()) {
      ++sh_->lockstats[static_cast<std::size_t>(self_)].fallback_rels;
    }
    m_.post(self_, mgr, kCtl + 8 * pages.size(),
            m_.params().list_processing_per_elem * (pages.size() + 2),
            [this, l, releaser, pages, episode, mgr] {
              mgr_handle_release(l, releaser, pages, episode, /*serial=*/0, mgr);
            });
    return;
  }

  // The manager-release half of mgr_handle_release, performed here — this
  // runs as an exclusive event, so mutating the manager's shard from the
  // successor's node is safe.
  if (episode >= rec.epoch) {
    rec.last_releaser = releaser;
    rec.last_release_counter = rec.counter;
    for (const PageId pg : pages) rec.diff_holder[pg] = releaser;
  }
  const ProcId to = rec.lap.dequeue_waiter();
  AECDSM_CHECK(to == self_);

  // The mgr_grant half, minus the reply message: this node IS the grantee.
  rec.owner = self_;  // rec.taken stays true across the handoff
  ++rec.counter;
  std::vector<ProcId> u =
      policy::lap_score_grant(rec.lap, rec.last_releaser, self_);
  rec.update_set[static_cast<std::size_t>(self_)] = u;
  if (trace::Recorder* tr = m_.recorder()) {
    tr->instant(self_, trace::Category::kLap, trace::names::kLapPredict,
                m_.engine().now(), "lock", l, "update_set", u.size());
    tr->instant(self_, trace::Category::kLock, trace::names::kLockHandoff,
                m_.engine().now(), "lock", l, "from",
                static_cast<std::uint64_t>(releaser));
  }
  bool in_update_set = false;
  if (pol_.lap_pushes() && rec.last_releaser != kNoProc &&
      rec.last_releaser != self_) {
    const auto& lu =
        rec.update_set[static_cast<std::size_t>(rec.last_releaser)];
    in_update_set = std::find(lu.begin(), lu.end(), self_) != lu.end();
  }
  if (sh_->collect_lock_stats()) {
    aecdsm::locks::note_grant(sh_->lockstats[static_cast<std::size_t>(self_)],
                              m_.params(), releaser, self_,
                              rec.lap.waiting_count(), /*direct_handoff=*/true,
                              /*skipped_head=*/false);
  }
  trace_counter(trace::names::kLockQueueDepth, m_.engine().now(),
                rec.lap.waiting_count());
  recv_grant(l, rec.last_releaser, rec.counter, rec.last_release_counter,
             rec.diff_holder, std::move(u), in_update_set, /*serial=*/0);
}

// --------------------------------------------------------------------------
// Lock manager (runs as services on the lock's manager node)
// --------------------------------------------------------------------------

void AecProtocol::mgr_handle_request(LockId l, ProcId requester,
                                     std::uint64_t serial, ProcId mgr_at) {
  const ProcId mgr = m_.lock_manager(l);
  if (mgr != mgr_at) {
    // A failover re-elected the manager after this message left: forward
    // one hop. The record now lives in the new manager's shard, which only
    // that node's worker may touch.
    m_.post(mgr_at, mgr, kCtl, m_.params().list_processing_per_elem,
            [this, l, requester, serial, mgr] {
              mgr_handle_request(l, requester, serial, mgr);
            });
    return;
  }
  LockRecord& rec = sh_->lock(l, mgr);
  AECDSM_DEBUG("mgr req l" << l << " from p" << requester << " serial=" << serial
                           << " taken=" << rec.taken << " owner=" << rec.owner);
  if (serial != 0) {
    // Crash-failover dedup (serials are only minted under a crash schedule).
    auto gt = rec.granted_serial.find(requester);
    if (gt != rec.granted_serial.end() && serial <= gt->second) {
      // The tenure this request started was already granted. If the
      // requester still owns the lock its grant was lost with the crashed
      // manager (or raced it): rebuild the reply idempotently. Otherwise
      // the tenure completed and this is a stale replay — drop it. A fresh
      // serial from the current owner (its release still in flight behind
      // this request) falls through and queues like any other waiter.
      if (serial == gt->second && rec.taken && rec.owner == requester) {
        AECDSM_DEBUG("mgr req l" << l << " rebuild lost grant p" << requester);
        mgr_send_grant(l, rec, requester);
      } else {
        AECDSM_DEBUG("mgr req l" << l << " drop stale p" << requester
                                 << " serial=" << serial);
      }
      return;
    }
    if (rec.lap.waiting_contains(requester)) {
      AECDSM_DEBUG("mgr req l" << l << " p" << requester << " already queued");
      return;
    }
    rec.req_serial[requester] = serial;
  }
  rec.lap.count_acquire_event();
  if (rec.taken) {
    if (sh_->strategy == aecdsm::locks::Strategy::kMcs && !crash_scheduled()) {
      // MCS: link the new waiter behind its queue predecessor so the
      // predecessor's release can hand the lock over point-to-point. Grants
      // are strict FIFO under mcs, so the predecessor's tenure counter is
      // known here: the current owner holds rec.counter and the i-th queued
      // waiter (1-based) will hold rec.counter + i. Disabled under a crash
      // schedule — handoffs then stay on the manager path the PR 9 failover
      // chain covers.
      const bool queue_empty = !rec.lap.has_waiters();
      const ProcId pred = queue_empty ? rec.owner : rec.lap.waiting().back();
      const std::uint32_t pred_counter =
          rec.counter + static_cast<std::uint32_t>(rec.lap.waiting_count());
      m_.post(mgr, pred, kCtl, m_.params().list_processing_per_elem,
              [this, l, pred, pred_counter, requester] {
                peer(pred).recv_mcs_link(l, pred_counter, requester);
              });
      if (sh_->collect_lock_stats()) {
        ++sh_->lockstats[static_cast<std::size_t>(mgr)].link_messages;
      }
    }
    rec.lap.enqueue_waiter(requester);
  } else {
    mgr_grant(l, requester);
    if (sh_->collect_lock_stats()) {
      aecdsm::locks::note_grant(sh_->lockstats[static_cast<std::size_t>(mgr)],
                                m_.params(), kNoProc, requester,
                                rec.lap.waiting_count(), /*direct_handoff=*/false,
                                /*skipped_head=*/false);
    }
  }
  trace_counter(trace::names::kLockQueueDepth, m_.engine().now(),
                rec.lap.waiting_count());
}

void AecProtocol::mgr_grant(LockId l, ProcId to) {
  LockRecord& rec = sh_->lock(l, m_.lock_manager(l));
  AECDSM_DEBUG("mgr grant l" << l << " -> p" << to);
  rec.taken = true;
  rec.owner = to;
  ++rec.counter;
  std::vector<ProcId> u = policy::lap_score_grant(rec.lap, rec.last_releaser, to);
  rec.update_set[static_cast<std::size_t>(to)] = std::move(u);
  if (trace::Recorder* tr = m_.recorder()) {
    tr->instant(m_.lock_manager(l), trace::Category::kLap,
                trace::names::kLapPredict, m_.engine().now(), "lock", l,
                "update_set", rec.update_set[static_cast<std::size_t>(to)].size());
  }
  if (crash_scheduled()) rec.granted_serial[to] = rec.req_serial[to];
  mgr_send_grant(l, rec, to);
}

void AecProtocol::mgr_send_grant(LockId l, LockRecord& rec, ProcId to) {
  // Is the acquirer in the last releaser's update set (i.e., is a push of
  // the merged diffs on its way)?
  bool in_update_set = false;
  if (pol_.lap_pushes() && rec.last_releaser != kNoProc &&
      rec.last_releaser != to) {
    const auto& lu = rec.update_set[static_cast<std::size_t>(rec.last_releaser)];
    in_update_set = std::find(lu.begin(), lu.end(), to) != lu.end();
  }

  std::uint64_t serial = 0;
  if (auto it = rec.granted_serial.find(to); it != rec.granted_serial.end()) {
    serial = it->second;
  }
  const ProcId mgr = m_.lock_manager(l);
  const std::size_t bytes = kCtl + 32 + rec.diff_holder.size() * 12;
  const Cycles svc = m_.params().list_processing_per_elem * (rec.diff_holder.size() + 2);
  m_.post(mgr, to, bytes, svc,
          [this, l, to, last = rec.last_releaser, counter = rec.counter,
           rel_counter = rec.last_release_counter, holders = rec.diff_holder,
           u = rec.update_set[static_cast<std::size_t>(to)], in_update_set,
           serial]() mutable {
            peer(to).recv_grant(l, last, counter, rel_counter, std::move(holders),
                                std::move(u), in_update_set, serial);
          });
}

void AecProtocol::mgr_handle_release(LockId l, ProcId releaser,
                                     std::vector<PageId> pages,
                                     std::uint32_t episode, std::uint64_t serial,
                                     ProcId mgr_at) {
  const ProcId mgr = m_.lock_manager(l);
  if (mgr != mgr_at) {
    m_.post(mgr_at, mgr, kCtl + 8 * pages.size(),
            m_.params().list_processing_per_elem,
            [this, l, releaser, pages, episode, serial, mgr] {
              mgr_handle_release(l, releaser, pages, episode, serial, mgr);
            });
    return;
  }
  LockRecord& rec = sh_->lock(l, mgr);
  if (serial != 0) {
    auto& last_rel = rec.released_serial[releaser];
    if (serial <= last_rel) {
      // Replayed or bounced duplicate of a processed release; re-confirm so
      // the releaser's pending op clears even when the first ack raced a
      // crash window.
      mgr_send_release_ack(l, releaser, serial);
      return;
    }
    last_rel = serial;
  }
  AECDSM_CHECK_MSG(rec.taken && rec.owner == releaser,
                   "release of lock " << l << " by non-owner p" << releaser);
  AECDSM_DEBUG("mgr release l" << l << " by p" << releaser << " pages=" << pages.size()
                               << " counter=" << rec.counter << " ep=" << episode);
  if (episode >= rec.epoch) {
    // Releases from before the last barrier reset carry stale chain data.
    rec.last_releaser = releaser;
    rec.last_release_counter = rec.counter;
    for (const PageId pg : pages) rec.diff_holder[pg] = releaser;
  }
  rec.taken = false;
  rec.owner = kNoProc;
  if (rec.lap.has_waiters()) {
    const aecdsm::locks::Pick pick =
        aecdsm::locks::pick_waiter(rec.lap.waiting(), sh_->strategy, releaser,
                                   m_.params(), rec.hier_streak);
    const ProcId to = rec.lap.dequeue_waiter_at(pick.index);
    mgr_grant(l, to);
    if (sh_->collect_lock_stats()) {
      aecdsm::locks::note_grant(sh_->lockstats[static_cast<std::size_t>(mgr)],
                                m_.params(), releaser, to,
                                rec.lap.waiting_count(), /*direct_handoff=*/false,
                                pick.skipped_head);
    }
  }
  trace_counter(trace::names::kLockQueueDepth, m_.engine().now(),
                rec.lap.waiting_count());
  if (serial != 0) mgr_send_release_ack(l, releaser, serial);
}

void AecProtocol::mgr_send_release_ack(LockId l, ProcId releaser,
                                       std::uint64_t serial) {
  // Crash-schedule-only confirmation: clears the releaser's tracked op so a
  // later manager crash does not replay an already-processed release.
  m_.post(m_.lock_manager(l), releaser, kCtl,
          m_.params().list_processing_per_elem, [this, l, releaser, serial] {
            peer(releaser).clear_mgr_op_by_serial(l, serial);
          });
}

void AecProtocol::mgr_handle_notice(LockId l, ProcId p, ProcId mgr_at) {
  if (!pol_.lap_virtual_queue) return;
  const ProcId mgr = m_.lock_manager(l);
  if (mgr != mgr_at) {
    m_.post(mgr_at, mgr, kCtl, m_.params().list_processing_per_elem,
            [this, l, p, mgr] { mgr_handle_notice(l, p, mgr); });
    return;
  }
  sh_->lock(l, mgr).lap.add_notice(p);
}

// --------------------------------------------------------------------------
// Crash failover (policy::PolicyEngine hooks)
// --------------------------------------------------------------------------

std::vector<ProcId> AecProtocol::lock_sharers(LockId l, ProcId crashed) {
  std::vector<ProcId> out;
  const LockRecord* rec = sh_->find_lock(l, crashed);
  if (rec == nullptr) return out;
  if (rec->taken && rec->owner != kNoProc) out.push_back(rec->owner);
  if (rec->last_releaser != kNoProc) out.push_back(rec->last_releaser);
  for (const auto& [pg, h] : rec->diff_holder) out.push_back(h);
  return out;
}

void AecProtocol::migrate_lock_state(LockId l, ProcId from, ProcId to) {
  sh_->migrate_lock(l, from, to);
  if (LockRecord* rec = sh_->find_lock(l, to)) {
    // The waiting/virtual queues die with the crashed manager's custody and
    // are rebuilt from the live requesters' replayed ops; affinity history,
    // chain custody and the grant/release serials are shared state that
    // survives the fail-stop window.
    rec->lap.reset_queues();
  }
}

// --------------------------------------------------------------------------
// Barriers
// --------------------------------------------------------------------------

void AecProtocol::on_page_access(PageId pg) {
  meta(pg).last_access_episode = episode_ + 1;
}

void AecProtocol::barrier() {
  const auto& params = m_.params();
  AECDSM_CHECK(cs_stack_.empty());

  // Arrival lists: per-lock chain reports (lock, acquire counter, merged
  // pages), pages written outside critical sections, and the validity
  // bitmap the manager routes by.
  std::vector<ArrivalLockInfo> lock_info;
  std::size_t lock_info_elems = 0;
  for (const auto& [l, info] : release_info_) {
    lock_info.push_back(info);
    lock_info_elems += 2 + info.pages.size();
  }
  std::vector<PageId> outside(outside_mod_pages_.begin(), outside_mod_pages_.end());
  std::vector<std::uint8_t> vmap((m_.num_pages() + 7) / 8, 0);
  for (PageId pg = 0; pg < m_.num_pages(); ++pg) {
    const auto& frames = static_cast<const mem::PageStore&>(store());
    if (frames.frame(pg).valid) vmap[pg / 8] |= static_cast<std::uint8_t>(1u << (pg % 8));
  }
  proc().advance(params.list_processing_per_elem *
                     (lock_info_elems + outside.size() + m_.num_pages() / 64 + 1),
                 sim::Bucket::kSynch);

  directive_ready_ = false;
  release_ready_ = false;
  expected_recv_ = -1;
  got_recv_ = 0;
  inbound_diffs_.clear();
  inbound_notices_.clear();
  dir_sends_.clear();
  home_gained_.clear();
  drops_.clear();

  const std::size_t arrival_bytes =
      kCtl + 8 * (lock_info_elems + outside.size()) + vmap.size();
  const Cycles arrival_svc =
      params.list_processing_per_elem * (lock_info_elems + outside.size() + 2);
  // The last arrival's handler runs the barrier computation, which resets
  // lock records owned by every manager node — under the parallel engine it
  // must execute alone (Engine::schedule_exclusive). The sender cannot know
  // which arrival is last, so every arrival is posted exclusive.
  send_from_app(m_.barrier_manager(), arrival_bytes, arrival_svc,
                [this, p = self_, lock_info, outside, vmap] {
                  mgr_handle_barrier_arrival(p, lock_info, outside, vmap);
                },
                sim::Bucket::kSynch, /*exclusive=*/true);

  // Overlap the wait with eager outside-diff creation, filtered to pages
  // other processors hold and that have seen at least one request (§3.3).
  auto next_flush = [&]() -> PageId {
    for (const PageId pg : dirty_out_set_) {
      const bool interesting = (interest_[pg / 8] >> (pg % 8)) & 1u;
      if (interesting && meta(pg).request_seen) return pg;
    }
    return kNoPage;
  };
  for (;;) {
    proc().sync();
    if (directive_ready_) break;
    if (const PageId pg = next_flush(); pg != kNoPage) {
      flush_outside_page(pg, /*hidden=*/true, sim::Bucket::kSynch);
      continue;
    }
    proc().wait(sim::Bucket::kSynch, [&] { return directive_ready_; });
  }

  barrier_publish_outside();
  barrier_perform_sends();
  proc().wait(sim::Bucket::kSynch,
              [&] { return got_recv_ >= expected_recv_; });
  barrier_apply_inbound();
  barrier_home_reconstruct();

  send_from_app(m_.barrier_manager(), kCtl, params.list_processing_per_elem,
                [this] { mgr_handle_barrier_completion(); }, sim::Bucket::kSynch);
  proc().wait(sim::Bucket::kSynch, [&] { return release_ready_; });

  barrier_step_cleanup();
}

void AecProtocol::barrier_publish_outside() {
  const std::uint32_t this_episode = episode_ + 1;
  for (const PageId pg : outside_mod_pages_) {
    PageMeta& pm = meta(pg);
    pm.pub_prev = std::move(pm.pub_cur);
    pm.pub_cur = PublishedGen{};
    pm.pub_cur.episode = this_episode;
    AECDSM_TRACE(pg, "p" << self_ << " publish pg" << pg << " ep=" << (episode_ + 1)
                         << " lazy=" << pm.dirty_out << " acc_words="
                         << pm.out_acc.changed_words());
    if (pm.dirty_out) {
      // Skipped by the eager-creation filter: publish lazily (the diff is
      // produced on the first request, against the retained twin).
      pm.pub_cur.diff = std::move(pm.out_acc);
      pm.pub_cur.lazy = true;
    } else {
      pm.pub_cur.diff = std::move(pm.out_acc);
      pm.pub_cur.lazy = false;
    }
    pm.out_acc = mem::Diff{};
  }
}

void AecProtocol::barrier_perform_sends() {
  const auto& params = m_.params();
  // Chain diffs folded from pushes may never have been applied locally (the
  // holder did not touch the page inside its critical section). The barrier
  // routing assumes holders' frames are current, so settle the debt now.
  for (auto& [l, ll] : locks_) {
    for (const auto& [pg, d] : ll.merged) {
      if (ll.chain_applied.count(pg) != 0) continue;
      apply_diff_charged(pg, d, /*hidden=*/false, sim::Bucket::kSynch);
      ll.chain_applied.insert(pg);
      if (!store().frame(pg).valid && sh_->home[pg] == self_) {
        meta(pg).reconstructible = true;
      }
    }
  }
  for (const DirSend& s : dir_sends_) {
    if (s.is_diff) {
      auto lt = locks_.find(s.lock);
      AECDSM_CHECK(lt != locks_.end());
      auto dt = lt->second.merged.find(s.page);
      AECDSM_CHECK_MSG(dt != lt->second.merged.end(),
                       "barrier diff send without local merged diff");
      const mem::Diff* d = &dt->second;
      send_from_app(s.target, kCtl + d->encoded_bytes(),
                    params.list_processing_per_elem * 2,
                    [this, t = s.target, pg = s.page, diff = *d]() mutable {
                      peer(t).recv_barrier_diff(pg, std::move(diff));
                    },
                    sim::Bucket::kSynch);
    } else {
      send_from_app(s.target, kCtl, params.list_processing_per_elem,
                    [this, t = s.target, pg = s.page, w = self_] {
                      peer(t).recv_barrier_notice(pg, w);
                    },
                    sim::Bucket::kSynch);
    }
  }
}

void AecProtocol::recv_barrier_diff(PageId pg, mem::Diff d) {
  AECDSM_DEBUG("p" << self_ << " recv barrier diff pg" << pg << " words="
                   << d.changed_words());
  inbound_diffs_.push_back(InboundDiff{pg, std::move(d)});
  ++got_recv_;
  proc().poke();
}

void AecProtocol::recv_barrier_notice(PageId pg, ProcId writer) {
  inbound_notices_.emplace_back(pg, writer);
  ++got_recv_;
  proc().poke();
}

void AecProtocol::recv_directive(std::vector<DirSend> sends, int expected,
                                 std::vector<std::uint8_t> interest,
                                 std::vector<PageId> gained,
                                 std::vector<PageId> drops) {
  dir_sends_ = std::move(sends);
  expected_recv_ = expected;
  interest_ = std::move(interest);
  home_gained_ = std::move(gained);
  drops_ = std::move(drops);
  directive_ready_ = true;
  proc().poke();
}

void AecProtocol::barrier_apply_inbound() {
  const std::uint32_t this_episode = episode_ + 1;
  // Diffs first is not required for correctness (inside/outside word sets of
  // a race-free program are disjoint) but keeps the common path cheap.
  for (const InboundDiff& in : inbound_diffs_) {
    AECDSM_TRACE(in.page, "p" << self_ << " barrier diff apply pg" << in.page
                              << " words=" << in.diff.changed_words());
    apply_diff_charged(in.page, in.diff, /*hidden=*/false, sim::Bucket::kSynch);
    // An invalid receiver is the page's home (diffs are only routed to
    // valid holders and the home): its frame is now a sound base again.
    if (!store().frame(in.page).valid) meta(in.page).reconstructible = true;
  }
  for (const auto& [pg, writer] : inbound_notices_) {
    AECDSM_TRACE(pg, "p" << self_ << " barrier notice pg" << pg << " writer=p" << writer);
    PageMeta& pm = meta(pg);
    if (pm.notices_episode != this_episode) {
      pm.notices.clear();
      pm.notices_episode = this_episode;
    }
    pm.notices.push_back(writer);
    if (store().frame(pg).valid) invalidate_page(pg);
    proc().advance(m_.params().list_processing_per_elem, sim::Bucket::kSynch);
  }
  // Drop entries last (invalidate propagation, hybrid policies): the local
  // copy leaves the sharing set entirely — no notices, no reconstructible
  // base — and the next access refetches from the page's (new) home, which
  // the diff routing kept current.
  for (const PageId pg : drops_) {
    AECDSM_TRACE(pg, "p" << self_ << " barrier drop pg" << pg);
    PageMeta& pm = meta(pg);
    // A still-lazy published generation is anchored by this page's twin,
    // and the home refetch that follows a drop restarts the twin from the
    // fetched frame; materialize the generations first or later
    // serve_published() calls would diff against the wrong base.
    if (pm.dirty_out) {
      flush_outside_page(pg, /*hidden=*/false, sim::Bucket::kSynch);
    }
    if (store().frame(pg).valid) invalidate_page(pg);
    pm.reconstructible = false;
    pm.notices.clear();
    proc().advance(m_.params().list_processing_per_elem, sim::Bucket::kSynch);
  }
  drops_.clear();
  inbound_diffs_.clear();
  inbound_notices_.clear();
}

void AecProtocol::barrier_home_reconstruct() {
  const std::uint32_t this_episode = episode_ + 1;
  // Temporarily step the episode forward so apply_notice_diffs() requests
  // the generation just published.
  ++episode_;
  for (const PageId pg : home_gained_) {
    PageMeta& pm = meta(pg);
    mem::PageFrame& f = store().frame(pg);
    if (pm.notices.empty() || pm.notices_episode != this_episode) {
      AECDSM_CHECK_MSG(f.valid, "home of page " << pg << " lacks a valid copy");
      continue;
    }
    apply_notice_diffs(pg, sim::Bucket::kSynch);
    f.valid = true;
    pm.reconstructible = false;
    AECDSM_TRACE(pg, "p" << self_ << " home-reconstructed pg" << pg << " frame[0,6]="
                         << f.data[0] << "," << f.data[6]);
  }
  --episode_;
}

void AecProtocol::barrier_step_cleanup() {
  const std::uint32_t this_episode = episode_ + 1;
  for (auto& [l, ll] : locks_) {
    ll.merged.clear();
    ll.push_valid = false;
    ll.push.clear();
    ll.chain_applied.clear();
    ll.grant_ready = false;
    ll.cs_holders.clear();
    ll.my_update_set.clear();
    AECDSM_CHECK(ll.protected_at_acquire.empty());
  }
  owned_this_step_.clear();
  outside_mod_pages_.clear();
  release_info_.clear();
  AECDSM_CHECK(dirty_in_set_.empty());

  // Pages that stayed dirty across the barrier (their publication is lazy)
  // must trap their next write: modifications of the new step belong to a
  // new publication generation, and the twin still anchors the old one.
  for (const PageId pg : dirty_out_set_) {
    store().frame(pg).write_protected = true;
    pages_[pg].stale_twin = true;
  }

  const auto& frames = static_cast<const mem::PageStore&>(store());
  for (PageId pg = 0; pg < m_.num_pages(); ++pg) {
    PageMeta& pm = pages_[pg];
    pm.flushed_at_acquire = false;
    pm.reprotected_out = false;
    if (!frames.frame(pg).valid && pm.notices_episode != this_episode) {
      // Notices from an older episode are useless now (their generations
      // age out); the page must be refetched from its (current) home. The
      // home itself keeps its base: the barrier routes every chain diff to
      // it, so its frame stays current across episodes.
      pm.notices.clear();
      if (sh_->home[pg] != self_) pm.reconstructible = false;
    }
  }
  ++episode_;
}

// --------------------------------------------------------------------------
// Barrier manager (runs as services on node 0)
// --------------------------------------------------------------------------

void AecProtocol::mgr_handle_barrier_arrival(ProcId p,
                                             std::vector<ArrivalLockInfo> lock_info,
                                             std::vector<PageId> outside,
                                             std::vector<std::uint8_t> valid_map) {
  BarrierEpisode& b = sh_->barrier;
  auto& a = b.arrival[static_cast<std::size_t>(p)];
  AECDSM_CHECK(!a.here);
  a.here = true;
  a.lock_info = std::move(lock_info);
  a.outside_pages = std::move(outside);
  a.valid_map = std::move(valid_map);
  if (++b.arrived == m_.nprocs()) mgr_barrier_compute();
}

void AecProtocol::mgr_barrier_compute() {
  BarrierEpisode& b = sh_->barrier;
  const int n = m_.nprocs();
  const std::size_t npages = m_.num_pages();

  // Valid-copy masks per page (DynBitset: no 64-node cap, bit q = proc q).
  std::vector<DynBitset> holders(npages, DynBitset(n));
  for (int p = 0; p < n; ++p) {
    const auto& vm = b.arrival[static_cast<std::size_t>(p)].valid_map;
    for (PageId pg = 0; pg < npages; ++pg) {
      if ((vm[pg / 8] >> (pg % 8)) & 1u) holders[pg].set(p);
    }
  }

  std::vector<std::vector<DirSend>> sends(static_cast<std::size_t>(n));
  std::vector<int> recv_count(static_cast<std::size_t>(n), 0);
  /// Invalidate-propagation entries per processor (hybrid policies): pages
  /// to drop instead of receiving a routed diff. They ride the directive,
  /// so they never count toward expected_recv_.
  std::vector<std::vector<PageId>> drops(static_cast<std::size_t>(n));
  std::size_t elements = npages / 16;

  // Pass 1: collect the routing inputs — the freshest (lock, page) holder
  // per the arrival reports, this step's outside writers, and the home each
  // touched page will move to. All of it is needed up front because the
  // invalidate axis routes diffs by *new* home while update routing reads
  // the old one; sh_->home is only written after routing.
  std::map<std::pair<LockId, PageId>, std::pair<std::uint32_t, ProcId>> freshest;
  for (int p = 0; p < n; ++p) {
    for (const ArrivalLockInfo& info : b.arrival[static_cast<std::size_t>(p)].lock_info) {
      for (const PageId pg : info.pages) {
        // Acquire counters start at 1, so a default slot (0) always loses.
        auto& slot = freshest[{info.lock, pg}];
        if (slot.first < info.counter) slot = {info.counter, p};
        ++elements;
      }
    }
  }
  std::vector<ProcId> cs_modifier(npages, kNoProc);
  for (const auto& [key, val] : freshest) cs_modifier[key.second] = val.second;

  std::vector<ProcId> first_writer(npages, kNoProc);
  std::vector<DynBitset> outside_writers(npages, DynBitset(n));
  for (int p = 0; p < n; ++p) {
    for (const PageId pg : b.arrival[static_cast<std::size_t>(p)].outside_pages) {
      if (first_writer[pg] == kNoProc) first_writer[pg] = p;
      outside_writers[pg].set(p);
    }
  }

  // The new home must hold a valid copy at arrival (a stale-invalid holder
  // would serve a bad base), so fall back along: first outside writer ->
  // freshest CS holder if valid -> any valid holder -> keep the current
  // home (kNoProc here = keep).
  std::vector<ProcId> new_home(npages, kNoProc);
  for (PageId pg = 0; pg < npages; ++pg) {
    if (first_writer[pg] == kNoProc && cs_modifier[pg] == kNoProc) continue;
    ProcId h = kNoProc;
    if (first_writer[pg] != kNoProc) {
      h = first_writer[pg];
    } else if (holders[pg].test(cs_modifier[pg])) {
      h = cs_modifier[pg];
    } else if (holders[pg].any()) {
      for (int q = 0; q < n; ++q) {
        if (holders[pg].test(q)) {
          h = q;
          break;
        }
      }
    }
    new_home[pg] = h;
  }

  // Pass 2 — inside-CS diffs: the freshest holder per (lock, page) —
  // highest acquire counter among the arrival reports — propagates to the
  // other sharers. Routing from arrival reports (not lock-manager records)
  // keeps the barrier correct even when release messages are still in
  // flight. The propagation axis decides who gets the diff:
  //   * update (AEC): every other valid copy, plus the home — even with an
  //     invalid copy — so its frame stays an authoritative base across
  //     episodes where no processor holds the page valid;
  //   * invalidate (hybrid): only the copies that must stay current — old
  //     home, new home, and valid outside writers (their twins anchor the
  //     published generations) — while every other valid copy is dropped
  //     and refetches from the home on demand, TreadMarks-style.
  for (const auto& [key, val] : freshest) {
    const auto [l, pg] = key;
    const ProcId holder = val.second;
    AECDSM_DEBUG("barrier compute: l" << l << " pg" << pg << " holder=p" << holder
                                      << " counter=" << val.first
                                      << " holders=" << holders[pg].count());
    const ProcId old_home = sh_->home[pg];
    DynBitset diff_mask(n);
    DynBitset drop_mask(n);
    if (sh_->policy.propagation_for(pg) == policy::Propagation::kUpdate) {
      diff_mask = holders[pg];
      diff_mask.set(old_home);
      diff_mask.reset(holder);
    } else {
      const ProcId nh = new_home[pg] == kNoProc ? old_home : new_home[pg];
      DynBitset valid_writers = outside_writers[pg];
      valid_writers &= holders[pg];
      diff_mask = valid_writers;
      diff_mask.set(old_home);
      diff_mask.set(nh);
      diff_mask.reset(holder);
      drop_mask = holders[pg];
      drop_mask.andnot(diff_mask);
      drop_mask.reset(holder);
    }
    for (int q = 0; q < n; ++q) {
      if (diff_mask.test(q)) {
        sends[static_cast<std::size_t>(holder)].push_back(
            DirSend{pg, q, l, /*is_diff=*/true});
        ++recv_count[static_cast<std::size_t>(q)];
        ++elements;
      }
      if (drop_mask.test(q)) {
        drops[static_cast<std::size_t>(q)].push_back(pg);
        ++elements;
      }
    }
  }

  // Outside writes: write notices to every other valid copy; the first
  // writer becomes the page's home.
  for (int p = 0; p < n; ++p) {
    for (const PageId pg : b.arrival[static_cast<std::size_t>(p)].outside_pages) {
      DynBitset mask = holders[pg];
      mask.reset(p);
      for (int q = 0; q < n; ++q) {
        if (mask.test(q)) {
          sends[static_cast<std::size_t>(p)].push_back(
              DirSend{pg, q, 0, /*is_diff=*/false});
          ++recv_count[static_cast<std::size_t>(q)];
          ++elements;
        }
      }
    }
  }

  // Home reassignment for every touched page (computed in pass 1).
  std::vector<std::vector<PageId>> gained(static_cast<std::size_t>(n));
  for (PageId pg = 0; pg < npages; ++pg) {
    const ProcId h = new_home[pg];
    if (h == kNoProc) continue;  // untouched, or nobody valid: old home stays
    sh_->home[pg] = h;
    gained[static_cast<std::size_t>(h)].push_back(pg);
    ++elements;
  }

  // Interest bitmaps (feeds next step's eager-diff filter).
  std::vector<std::vector<std::uint8_t>> interest(static_cast<std::size_t>(n));
  for (int p = 0; p < n; ++p) {
    interest[static_cast<std::size_t>(p)].assign((npages + 7) / 8, 0);
    for (PageId pg = 0; pg < npages; ++pg) {
      if (holders[pg].any_except(p)) {
        interest[static_cast<std::size_t>(p)][pg / 8] |=
            static_cast<std::uint8_t>(1u << (pg % 8));
      }
    }
  }

  // Chain reset: barrier-consistent memory starts every lock afresh. The
  // epoch stamp lets the lock manager ignore chain data in release messages
  // that were still in flight when this barrier completed. This writes every
  // manager's shard, which is why the completing arrival runs exclusively
  // under the parallel engine.
  for (auto& shard : sh_->locks) {
    for (auto& [l, rec] : shard) {
      rec.diff_holder.clear();
      rec.last_releaser = kNoProc;
      rec.epoch = b.episode + 1;
    }
  }

  for (int p = 0; p < n; ++p) b.arrival[static_cast<std::size_t>(p)] = {};
  b.arrived = 0;
  b.completed = 0;
  ++b.episode;

  // The whole routing computation occupies the manager node.
  const Cycles cost = m_.params().list_processing_per_elem * elements;
  const Cycles done = m_.node(m_.barrier_manager()).proc->service(cost);
  for (int p = 0; p < n; ++p) {
    const std::size_t bytes = kCtl + 12 * sends[static_cast<std::size_t>(p)].size() +
                              interest[static_cast<std::size_t>(p)].size() +
                              8 * gained[static_cast<std::size_t>(p)].size() +
                              8 * drops[static_cast<std::size_t>(p)].size();
    m_.engine().schedule(done, [this, p, bytes,
                                s = std::move(sends[static_cast<std::size_t>(p)]),
                                e = recv_count[static_cast<std::size_t>(p)],
                                i = std::move(interest[static_cast<std::size_t>(p)]),
                                g = std::move(gained[static_cast<std::size_t>(p)]),
                                d = std::move(drops[static_cast<std::size_t>(p)])]() mutable {
      m_.post(m_.barrier_manager(), p, bytes, m_.params().list_processing_per_elem * 2,
              [this, p, s = std::move(s), e, i = std::move(i), g = std::move(g),
               d = std::move(d)]() mutable {
                peer(p).recv_directive(std::move(s), e, std::move(i), std::move(g),
                                       std::move(d));
              });
    });
  }
}

void AecProtocol::mgr_handle_barrier_completion() {
  BarrierEpisode& b = sh_->barrier;
  if (++b.completed < m_.nprocs()) return;
  for (int p = 0; p < m_.nprocs(); ++p) {
    m_.post(m_.barrier_manager(), p, kCtl, m_.params().list_processing_per_elem,
            [this, p] {
              AecProtocol& node = peer(p);
              node.release_ready_ = true;
              node.proc().poke();
            });
  }
}

}  // namespace aecdsm::aec
