// AEC protocol variant switches (the paper's AEC vs AEC-without-LAP, plus
// the ablation knobs studied in section 5.1).
#pragma once

namespace aecdsm::aec {

struct AecConfig {
  /// false = the paper's "noLAP" baseline: modifications made inside
  /// critical sections are never pushed eagerly; acquirers invalidate and
  /// fetch lazily at access faults.
  bool lap_enabled = true;

  /// Feed acquire notices into the predictor (virtual queue technique).
  bool use_virtual_queue = true;

  /// Use the transfer-affinity technique.
  bool use_affinity = true;
};

}  // namespace aecdsm::aec
