// The Affinity Entry Consistency protocol (section 3 of the paper).
//
// One AecProtocol instance runs per node. Lock-manager and barrier-manager
// records live in AecShared; every handler that touches a manager record
// executes as a *service on the manager's node*, so management cost lands
// on the right simulated processor even though the storage is shared.
//
// Protocol summary implemented here:
//  * Locks: requests go to the static manager; the grant carries the
//    acquirer's LAP-computed update set, the last releaser, the acquire
//    counter and the cumulative (page -> freshest diff holder) map of the
//    current barrier step. Releasers diff their critical-section pages
//    (exposed, as the paper requires), merge with the chain's inherited
//    diffs and push the result to their update set (unless noLAP).
//  * While waiting for the grant, the acquirer overlaps (a) applying
//    already-received pushes to valid pages and (b) flushing outside
//    modifications into diffs (write-protecting the pages) — hidden work.
//  * Barriers: arrival lists go to the manager on node 0; outside-diff
//    creation overlaps the wait, filtered to pages other processors are
//    interested in and that have seen a request (the paper's rule; skipped
//    pages publish their diff lazily on first request). The manager routes
//    inside-CS diffs from their freshest holders to all valid copies,
//    routes write notices from outside writers, reassigns per-page homes,
//    and releases the barrier after everyone confirms.
//  * Access faults (§3.4): base reconstruction via the page's home when the
//    page was not accessed in the previous step; write-notice diffs are
//    fetched from the writers; critical-section faults fetch the chain's
//    merged diff from the holder recorded at the grant (or apply the
//    pending push). Write faults apply the twin discipline, including the
//    paper's "create the outside diff first" careful path.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "aec/shared.hpp"
#include "common/stats.hpp"
#include "dsm/context.hpp"
#include "dsm/machine.hpp"
#include "dsm/protocol.hpp"
#include "mem/diff.hpp"
#include "policy/engine.hpp"
#include "sim/processor.hpp"

namespace aecdsm::aec {

class AecProtocol : public policy::PolicyEngine {
 public:
  AecProtocol(dsm::Machine& m, ProcId self, std::shared_ptr<AecShared> shared);
  ~AecProtocol() override;

  std::string name() const override;

  void on_read_fault(PageId page) override;
  void on_write_fault(PageId page) override;
  void acquire(LockId lock) override;
  void release(LockId lock) override;
  void barrier() override;
  void acquire_notice(LockId lock) override;
  void on_page_access(PageId page) override;

  /// Per-lock LAP scores (Table 3) — identical object across nodes.
  const AecShared& shared() const { return *sh_; }

  /// This node's shard of the lock-strategy counters (summed by run_app).
  LockMgrStats lockmgr_stats() const override {
    return sh_->lockstats[static_cast<std::size_t>(self_)];
  }

 private:
  // --- Per-page node state ---------------------------------------------------

  /// One published generation of a page's outside diff. Two generations are
  /// kept because a fast processor can reach barrier k+1 (republishing) while
  /// a slow one is still resolving notices issued at barrier k.
  struct PublishedGen {
    mem::Diff diff;
    bool lazy = false;           ///< publish deferred: serve from the live twin
    std::uint32_t episode = 0;   ///< barrier episode the generation belongs to (1-based)
  };

  struct PageMeta {
    bool dirty_out = false;        ///< twin present; un-diffed outside mods
    bool reprotected_out = false;  ///< dirty_out page re-protected at acquire (unflushed)
    bool flushed_at_acquire = false;  ///< flushed+protected at acquire; unprotect at release
    mem::Diff out_acc;             ///< outside diffs flushed so far this step
    PublishedGen pub_cur;          ///< outside diff published at the last barrier
    PublishedGen pub_prev;         ///< previous generation (barrier-skew window)
    std::vector<ProcId> notices;   ///< outside writers to fetch from on fault
    std::uint32_t notices_episode = 0;  ///< episode the pending notices belong to
    bool reconstructible = false;  ///< invalid, but frame content is a sound base
    /// The page crossed the last barrier dirty: its twin still anchors the
    /// lazy publication, so the next twin-diff contains *previous-step*
    /// modifications and must flow into the published generations only —
    /// never into out_acc (republishing old values would overwrite other
    /// processors' newer writes).
    bool stale_twin = false;
    std::uint32_t last_access_episode = 0;  ///< 1-based step of last access
    bool dirty_in = false;         ///< modified inside the current critical section
    LockId inside_lock = 0;
    bool request_seen = false;     ///< some remote request ever targeted this page here
  };

  // --- Per-lock node state ---------------------------------------------------
  struct LockLocal {
    /// Cumulative chain diffs I hold (as owner/past owner) this step.
    std::map<PageId, mem::Diff> merged;

    // Freshest pending push (LAP update channel).
    bool push_valid = false;
    std::uint32_t push_counter = 0;
    ProcId push_from = kNoProc;
    std::map<PageId, mem::Diff> push;
    std::uint32_t max_counter_seen = 0;

    /// Pages whose freshest chain diff has been applied to the local frame
    /// (skips redundant fetch/apply work on faults).
    std::set<PageId> chain_applied;

    // Grant reply (valid from grant until release).
    bool grant_ready = false;
    ProcId grant_last_releaser = kNoProc;
    std::uint32_t grant_counter = 0;
    std::uint32_t grant_release_counter = 0;  ///< counter the expected push carries
    std::map<PageId, ProcId> cs_holders;
    std::vector<ProcId> my_update_set;

    /// The grant said this node is in the last releaser's update set but the
    /// push has not landed yet: faults on the releaser's pages wait for it
    /// instead of fetching (the push is guaranteed to arrive).
    bool expect_push = false;
    /// The application thread finished its post-grant processing; a late
    /// push may now fold directly into the merged custody.
    bool grant_processed = false;

    /// Pages this node write-protected during the acquire (flushed or
    /// re-protected); the paper unprotects them again at release when they
    /// were not modified inside the critical section.
    std::vector<PageId> protected_at_acquire;

    // Crash-failover state (all zero in crash-free runs). The acquire mints
    // a per-(node, lock) serial; the grant must echo it to be accepted
    // (duplicate grants from a pre-crash manager and its successor are
    // otherwise indistinguishable), and the release reuses it so the
    // manager can dedup replays.
    std::uint64_t awaiting_serial = 0;  ///< grant we are waiting for
    std::uint64_t cur_serial = 0;       ///< serial of the current tenure
    std::uint64_t req_op_id = 0;        ///< registry id of the pending request op

    /// mcs strategy: successor links keyed by the tenure counter they chain
    /// behind. A LINK(K -> succ) means: the tenure whose grant carries
    /// counter K hands the lock directly to `succ`. Tenure counters are
    /// globally unique per lock, so an entry is only ever consumed by the
    /// node whose grant_counter equals its key; stale keys (< grant_counter)
    /// are pruned when the next grant is processed.
    std::map<std::uint32_t, ProcId> mcs_links;
  };

  // --- Barrier exchange local state -------------------------------------------
  struct DirSend {
    PageId page;
    ProcId target;
    LockId lock = 0;
    bool is_diff = false;  ///< false = write notice
  };
  struct InboundDiff {
    PageId page;
    mem::Diff diff;
  };

  // --- Helpers ----------------------------------------------------------------
  PageMeta& meta(PageId pg) { return pages_[pg]; }
  LockLocal& llocal(LockId l) { return locks_[l]; }
  AecProtocol& peer(ProcId p) { return *sh_->nodes[static_cast<std::size_t>(p)]; }

  /// Best-effort variant of send_from_app, used only for LAP update pushes:
  /// under fault injection the push may be dropped, duplicated or delayed
  /// and the receiver recovers through the lazy-fetch path (§3.4).
  void push_from_app(ProcId to, std::size_t bytes, Cycles svc_cost,
                     std::function<void()> handler, sim::Bucket bucket);

  /// Wait for an announced push, but give up after
  /// faults.push_timeout_cycles (fault injection only — a lossless mesh
  /// guarantees delivery). Returns true when the push landed; on false the
  /// wait cleared expect_push and counted a push timeout, and the caller
  /// falls back to lazy fetching.
  bool wait_for_push_or_timeout(LockLocal& ll, sim::Bucket bucket);

  /// Flush one outside-dirty page: create diff, fold into out_acc, refresh
  /// twin, write-protect.
  void flush_outside_page(PageId pg, bool hidden, sim::Bucket bucket);

  /// Invalidate the local copy, keeping the frame as a reconstructible base.
  void invalidate_page(PageId pg);

  // --- Fault machinery (§3.4) --------------------------------------------------
  void handle_fault(PageId pg, bool is_write);
  void resolve_base(PageId pg);                ///< valid or reconstructible after this
  void apply_notice_diffs(PageId pg, sim::Bucket bucket);  ///< fetch writers' diffs
  void apply_cs_diff_if_needed(PageId pg);     ///< CS chain diff (push or holder fetch)
  void write_twin_discipline(PageId pg);       ///< twin/dirty bookkeeping for writes

  /// Fold an accepted push into the merged-chain custody (engine- or
  /// app-side; pure metadata).
  void fold_push(LockLocal& ll);

  // --- Engine-side receive handlers ---------------------------------------------
  void recv_grant(LockId l, ProcId last_releaser, std::uint32_t counter,
                  std::uint32_t release_counter, std::map<PageId, ProcId> cs_holders,
                  std::vector<ProcId> update_set, bool in_update_set,
                  std::uint64_t serial);
  void recv_push(LockId l, ProcId from, std::uint32_t counter,
                 std::uint32_t episode,
                 std::shared_ptr<const std::map<PageId, mem::Diff>> diffs);
  /// mcs: the manager tells the predecessor (tenure `pred_counter`) who its
  /// queue successor is, so its release can hand the lock over directly.
  void recv_mcs_link(LockId l, std::uint32_t pred_counter, ProcId succ);
  /// mcs: direct lock handoff from the releaser, bypassing the manager.
  /// Runs as an exclusive event (it performs the manager-record bookkeeping
  /// on the successor's node); self-validates against the shared record and
  /// falls back to forwarding a plain release to the manager on mismatch.
  void recv_direct_handoff(LockId l, ProcId releaser, std::vector<PageId> pages,
                           std::uint32_t episode);
  void recv_barrier_diff(PageId pg, mem::Diff d);
  void recv_barrier_notice(PageId pg, ProcId writer);
  void recv_directive(std::vector<DirSend> sends, int expected,
                      std::vector<std::uint8_t> interest, std::vector<PageId> gained,
                      std::vector<PageId> drops);

  /// Serve this node's published outside diff of barrier `episode`
  /// (engine-side; lazy generations are diffed on demand from the live
  /// twin). Returns the diff; `cost` receives the server cycles.
  mem::Diff serve_published(PageId pg, std::uint32_t episode, Cycles& cost);

  /// Serve the merged chain diff for (lock, page) — engine-side.
  const mem::Diff* serve_merged(LockId l, PageId pg);

  // --- Manager handlers (run engine-side, as services on the manager node) -----
  //
  // Each handler carries `mgr_at`, the node the message was addressed to.
  // After a crash failover the current manager may differ: the handler then
  // forwards one hop instead of touching the record, because under the
  // parallel engine a shard may only be mutated by the worker of the node
  // it belongs to. `serial` is the crash-failover dedup serial (0 when no
  // crash schedule exists).
  void mgr_handle_request(LockId l, ProcId requester, std::uint64_t serial,
                          ProcId mgr_at);
  void mgr_handle_release(LockId l, ProcId releaser, std::vector<PageId> pages,
                          std::uint32_t episode, std::uint64_t serial,
                          ProcId mgr_at);
  void mgr_handle_notice(LockId l, ProcId p, ProcId mgr_at);
  void mgr_grant(LockId l, ProcId to);  ///< grant a fresh tenure + send the reply
  /// Send (or re-send) the grant reply from the current record state; the
  /// idempotent half of mgr_grant, also used to answer a replayed request
  /// whose original grant came from the crashed manager.
  void mgr_send_grant(LockId l, LockRecord& rec, ProcId to);
  /// Crash-schedule-only release confirmation (clears the releaser's
  /// tracked op; without it a later manager crash would replay the release).
  void mgr_send_release_ack(LockId l, ProcId releaser, std::uint64_t serial);
  void mgr_handle_barrier_arrival(ProcId p, std::vector<ArrivalLockInfo> lock_info,
                                  std::vector<PageId> outside,
                                  std::vector<std::uint8_t> valid_map);
  void mgr_barrier_compute();  ///< all arrived: route diffs/notices, homes
  void mgr_handle_barrier_completion();

  // --- Crash failover (policy::PolicyEngine hooks) -------------------------------
  std::vector<ProcId> lock_sharers(LockId l, ProcId crashed) override;
  void migrate_lock_state(LockId l, ProcId from, ProcId to) override;

  // --- Barrier phases on the application thread ---------------------------------
  void barrier_publish_outside();
  void barrier_perform_sends();
  void barrier_apply_inbound();
  void barrier_home_reconstruct();
  void barrier_step_cleanup();

  std::shared_ptr<AecShared> sh_;

  std::vector<PageMeta> pages_;
  std::map<LockId, LockLocal> locks_;

  // Dirty-page indices (avoid page-table scans on the hot paths).
  std::set<PageId> dirty_out_set_;  ///< pages with un-flushed outside mods
  std::set<PageId> dirty_in_set_;   ///< pages modified in the current CS

  // Step-local state.
  std::uint32_t episode_ = 0;  ///< completed barrier episodes (= step index)
  std::set<LockId> owned_this_step_;
  std::set<PageId> outside_mod_pages_;  ///< pages with outside mods this step
  std::vector<LockId> cs_stack_;        ///< locks held, in acquisition order

  /// Per lock released this step: my last acquire counter and merged pages
  /// (reported in the barrier arrival; drives the manager's diff routing).
  std::map<LockId, ArrivalLockInfo> release_info_;

  // Barrier exchange state (set by manager/receive handlers, engine-side).
  std::vector<std::uint8_t> interest_;  ///< per-page: someone else holds it
  bool directive_ready_ = false;
  bool release_ready_ = false;
  int expected_recv_ = -1;
  int got_recv_ = 0;
  std::vector<DirSend> dir_sends_;
  std::vector<InboundDiff> inbound_diffs_;
  std::vector<std::pair<PageId, ProcId>> inbound_notices_;
  std::vector<PageId> home_gained_;  ///< pages to home-reconstruct this episode
  /// Invalidate-propagation directive entries (hybrid policies): pages whose
  /// local copy must be dropped instead of receiving a routed diff.
  std::vector<PageId> drops_;
};

}  // namespace aecdsm::aec
