// Factory tying AEC into the generic run driver, keeping a handle on the
// run's shared state so experiments can read LAP scores (Table 3) after the
// simulation finishes.
#pragma once

#include <memory>

#include "aec/shared.hpp"
#include "dsm/system.hpp"
#include "policy/policy.hpp"

namespace aecdsm::aec {

class AecSuite {
 public:
  /// Runs `pol` (family kAec) on the AEC engine; defaults to the full
  /// paper protocol.
  explicit AecSuite(policy::ConsistencyPolicy pol = default_policy());

  /// Protocol suite for dsm::run_app. A fresh AecShared is created when
  /// node 0's protocol is built, so one AecSuite can drive several runs
  /// (each run's scores replace the previous ones).
  dsm::ProtocolSuite suite();

  /// Shared state of the most recent run (LAP scores, lock records).
  const AecShared* shared() const { return shared_.get(); }
  std::shared_ptr<const AecShared> shared_handle() const { return shared_; }

  const policy::ConsistencyPolicy& policy() const { return pol_; }

 private:
  static policy::ConsistencyPolicy default_policy();

  policy::ConsistencyPolicy pol_;
  std::shared_ptr<AecShared> shared_;
};

}  // namespace aecdsm::aec
