#include "trace/overlap.hpp"

#include <algorithm>
#include <cstring>
#include <map>

namespace aecdsm::trace {

namespace {

struct Interval {
  Cycles lo = 0;
  Cycles hi = 0;
};

/// Sort and merge overlapping/adjacent intervals in place.
void normalize(std::vector<Interval>& v) {
  std::sort(v.begin(), v.end(), [](const Interval& a, const Interval& b) {
    if (a.lo != b.lo) return a.lo < b.lo;
    return a.hi < b.hi;
  });
  std::size_t out = 0;
  for (const Interval& iv : v) {
    if (out > 0 && iv.lo <= v[out - 1].hi) {
      v[out - 1].hi = std::max(v[out - 1].hi, iv.hi);
    } else {
      v[out++] = iv;
    }
  }
  v.resize(out);
}

Cycles total_length(const std::vector<Interval>& v) {
  Cycles sum = 0;
  for (const Interval& iv : v) sum += iv.hi - iv.lo;
  return sum;
}

/// Cycles of [lo, hi) covered by the normalized interval set.
Cycles covered(const std::vector<Interval>& set, Cycles lo, Cycles hi) {
  Cycles sum = 0;
  // First interval whose hi exceeds lo; set is sorted and disjoint.
  auto it = std::lower_bound(
      set.begin(), set.end(), lo,
      [](const Interval& iv, Cycles t) { return iv.hi <= t; });
  for (; it != set.end() && it->lo < hi; ++it) {
    sum += std::min(hi, it->hi) - std::max(lo, it->lo);
  }
  return sum;
}

bool name_is(const Event& e, const char* name) {
  return std::strcmp(e.name, name) == 0;
}

/// True for diff work executed inside a message service (arg "svc" = 1):
/// it sits on the *requester's* critical path — TreadMarks' lazy server-side
/// diffs, AEC's deferred-publication serves — so it can never count as
/// hidden, even though a svc span covers it on the serving node.
bool is_service_side(const Event& e) {
  return (e.k0 != nullptr && std::strcmp(e.k0, "svc") == 0 && e.a0 != 0) ||
         (e.k1 != nullptr && std::strcmp(e.k1, "svc") == 0 && e.a1 != 0);
}

struct NodeTimeline {
  std::vector<Interval> diffs;      // raw diff-work spans (not merged: work sums)
  std::vector<Interval> lock_wait;
  std::vector<Interval> barrier_wait;
  std::vector<Interval> service;
  Cycles service_side_diff = 0;     // svc-flagged diff cycles (always exposed)
};

}  // namespace

OverlapReport analyze_overlap(std::vector<Event> events) {
  OverlapReport report;
  std::map<ProcId, NodeTimeline> nodes;

  for (const Event& e : events) {
    if (!e.is_span()) continue;
    NodeTimeline& nt = nodes[e.node];
    const Interval iv{e.t_start, e.t_end};
    if (e.cat == Category::kDiff &&
        (name_is(e, names::kDiffCreate) || name_is(e, names::kDiffApply))) {
      if (is_service_side(e)) {
        nt.service_side_diff += iv.hi - iv.lo;
      } else {
        nt.diffs.push_back(iv);
      }
    } else if (e.cat == Category::kLock && name_is(e, names::kLockWait)) {
      nt.lock_wait.push_back(iv);
      report.episodes.push_back(
          {e.node, names::kLockWait, e.t_start, e.t_end, 0});
    } else if (e.cat == Category::kBarrier && name_is(e, names::kBarrierWait)) {
      nt.barrier_wait.push_back(iv);
      report.episodes.push_back(
          {e.node, names::kBarrierWait, e.t_start, e.t_end, 0});
    } else if (e.cat == Category::kSvc && name_is(e, names::kService)) {
      nt.service.push_back(iv);
    }
  }

  for (auto& [node, nt] : nodes) {
    normalize(nt.lock_wait);
    normalize(nt.barrier_wait);
    normalize(nt.service);
    report.lock_wait_cycles += total_length(nt.lock_wait);
    report.barrier_wait_cycles += total_length(nt.barrier_wait);
    report.service_cycles += total_length(nt.service);

    std::vector<Interval> any;
    any.reserve(nt.lock_wait.size() + nt.barrier_wait.size() + nt.service.size());
    any.insert(any.end(), nt.lock_wait.begin(), nt.lock_wait.end());
    any.insert(any.end(), nt.barrier_wait.begin(), nt.barrier_wait.end());
    any.insert(any.end(), nt.service.begin(), nt.service.end());
    normalize(any);

    report.diff_cycles += nt.service_side_diff;
    for (const Interval& d : nt.diffs) {
      report.diff_cycles += d.hi - d.lo;
      report.overlap_lock_wait += covered(nt.lock_wait, d.lo, d.hi);
      report.overlap_barrier_wait += covered(nt.barrier_wait, d.lo, d.hi);
      report.overlap_service += covered(nt.service, d.lo, d.hi);
      report.overlap_any += covered(any, d.lo, d.hi);
    }
  }

  for (SyncEpisode& ep : report.episodes) {
    const NodeTimeline& nt = nodes[ep.node];
    for (const Interval& d : nt.diffs) {
      if (d.hi > ep.t_start && d.lo < ep.t_end) {
        ep.diff_overlap +=
            std::min(d.hi, ep.t_end) - std::max(d.lo, ep.t_start);
      }
    }
  }
  std::sort(report.episodes.begin(), report.episodes.end(),
            [](const SyncEpisode& a, const SyncEpisode& b) {
              if (a.t_start != b.t_start) return a.t_start < b.t_start;
              if (a.node != b.node) return a.node < b.node;
              return a.t_end < b.t_end;
            });
  return report;
}

OverlapStats to_overlap_stats(const OverlapReport& report) {
  OverlapStats s;
  s.episodes = report.episodes.size();
  s.diff_cycles = report.diff_cycles;
  s.overlap_lock_wait = report.overlap_lock_wait;
  s.overlap_barrier_wait = report.overlap_barrier_wait;
  s.overlap_service = report.overlap_service;
  s.overlap_any = report.overlap_any;
  s.lock_wait_cycles = report.lock_wait_cycles;
  s.barrier_wait_cycles = report.barrier_wait_cycles;
  s.service_cycles = report.service_cycles;
  return s;
}

}  // namespace aecdsm::trace
