// Structured event tracing for the deterministic simulator.
//
// trace::Recorder is a ring-buffered event sink the DSM machine, protocols
// and transport write into while a run executes. Every event carries the
// simulated-cycle interval it covers, the node it happened on, a category,
// a static name and up to two named integer arguments — enough to rebuild a
// per-node timeline of lock/barrier/diff/fault/LAP/transport activity that
// the exporters (trace/export.hpp) turn into Perfetto or aecdsm-trace-v1
// JSON and the OverlapAnalyzer (trace/overlap.hpp) mines for hidden-work
// ratios.
//
// Tracing is strictly observational: recording never advances simulated
// time, schedules events or touches protocol state, so a traced run is
// cycle-identical to an untraced one. Call sites hold a `Recorder*` that is
// nullptr when tracing is off (the common case) and guard each record with
// a single branch; compiling with -DAECDSM_DISABLE_TRACING=ON turns every
// record call into an empty inline so even that branch vanishes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/types.hpp"

namespace aecdsm::trace {

#if defined(AECDSM_DISABLE_TRACING)
inline constexpr bool kTracingCompiled = false;
#else
inline constexpr bool kTracingCompiled = true;
#endif

enum class Category : std::uint8_t {
  kLock,     // lock.request / lock.wait / lock.release
  kBarrier,  // barrier.arrive / barrier.wait / barrier.depart
  kDiff,     // diff.create / diff.apply / diff.merge
  kMem,      // fault.read / fault.write / page.fetch
  kLap,      // lap.predict / lap.push
  kNet,      // net.send / net.retx / net.ack / net.push
  kSvc,      // svc — engine-side message service occupancy on a node
  kCounter,  // sampled numeric tracks: lockq.depth / diff.outstanding
};

const char* category_name(Category cat);

/// Well-known event names. Producers and consumers (the OverlapAnalyzer,
/// tests, golden files) share these constants; comparison is by content, not
/// pointer, so hand-built timelines may also use string literals.
namespace names {
inline constexpr const char* kLockRequest = "lock.request";
inline constexpr const char* kLockWait = "lock.wait";
inline constexpr const char* kLockRelease = "lock.release";
inline constexpr const char* kBarrierArrive = "barrier.arrive";
inline constexpr const char* kBarrierWait = "barrier.wait";
inline constexpr const char* kBarrierDepart = "barrier.depart";
inline constexpr const char* kDiffCreate = "diff.create";
inline constexpr const char* kDiffApply = "diff.apply";
inline constexpr const char* kDiffMerge = "diff.merge";
inline constexpr const char* kFaultRead = "fault.read";
inline constexpr const char* kFaultWrite = "fault.write";
inline constexpr const char* kLapPredict = "lap.predict";
inline constexpr const char* kLapPush = "lap.push";
inline constexpr const char* kNetSend = "net.send";
inline constexpr const char* kNetRetx = "net.retx";
inline constexpr const char* kNetAck = "net.ack";
inline constexpr const char* kNetPush = "net.push";
/// Crash/recovery plane (Category::kNet for transport-observed instants,
/// Category::kLock for the failover protocol's manager changes).
inline constexpr const char* kNetSuspect = "net.suspect";
inline constexpr const char* kNodeCrash = "node.crash";
inline constexpr const char* kNodeRecover = "node.recover";
inline constexpr const char* kLockFailover = "lock.failover";
inline constexpr const char* kLockReelect = "lock.reelect";
/// mcs strategy: direct releaser -> successor lock handoff (Category::kLock).
inline constexpr const char* kLockHandoff = "lock.handoff";
inline constexpr const char* kService = "svc";
/// Counter tracks (Category::kCounter; exported as Perfetto "C" events).
inline constexpr const char* kLockQueueDepth = "lockq.depth";
inline constexpr const char* kDiffOutstanding = "diff.outstanding";
}  // namespace names

/// One recorded event. `t_start == t_end` marks an instant, otherwise the
/// event is a span covering [t_start, t_end). Up to two named integer
/// arguments ride along (k0/k1 are nullptr when unused); names must point
/// at static-lifetime strings — every call site passes literals or the
/// names:: constants.
struct Event {
  Cycles t_start = 0;
  Cycles t_end = 0;
  std::uint64_t seq = 0;  // global record order; tie-break for stable export
  ProcId node = 0;
  Category cat = Category::kLock;
  const char* name = "";
  const char* k0 = nullptr;
  std::uint64_t a0 = 0;
  const char* k1 = nullptr;
  std::uint64_t a1 = 0;

  bool is_span() const { return t_end > t_start; }
  Cycles duration() const { return t_end - t_start; }
};

/// One event in the aecdsm-trace-v1 row format:
///   { "node", "cat", "name", "ts", "dur"?, "args"? }
/// ("dur" omitted for instants, "args" for argument-free events). Shared by
/// the exporters and the Recorder's spill writer so both emit byte-identical
/// rows.
json::Value event_row(const Event& e);

/// Fixed-capacity ring of Events. When the ring is full the oldest events
/// are overwritten (and counted in dropped()) — a bounded-memory tracer can
/// then run under any workload and still keep the tail of the timeline,
/// which is what the overlap analysis and a human in Perfetto care about.
///
/// For full timelines that outgrow any reasonable ring (a default-scale
/// 16-node run records millions of events), enable_spill() additionally
/// streams every event to chunked JSONL files during the run; the exporters
/// then assemble the complete, un-dropped timeline from the chunks while the
/// ring — and everything computed from it — behaves exactly as with spill
/// off.
class Recorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 18;  // ~20 MiB
  /// Spill chunk rotation threshold (events per chunk file).
  static constexpr std::size_t kDefaultChunkEvents = 1u << 16;

  explicit Recorder(std::size_t capacity = kDefaultCapacity);
  ~Recorder();
  Recorder(Recorder&&) noexcept;
  Recorder& operator=(Recorder&&) noexcept;

#if defined(AECDSM_DISABLE_TRACING)
  void span(ProcId, Category, const char*, Cycles, Cycles,
            const char* = nullptr, std::uint64_t = 0,
            const char* = nullptr, std::uint64_t = 0) {}
  void instant(ProcId, Category, const char*, Cycles,
               const char* = nullptr, std::uint64_t = 0,
               const char* = nullptr, std::uint64_t = 0) {}
  void counter(ProcId, const char*, Cycles, std::uint64_t) {}
#else
  /// Record a span covering [t0, t1). A span with t1 <= t0 degrades to an
  /// instant at t0 (zero-cost diff work, e.g. an empty page list).
  void span(ProcId node, Category cat, const char* name, Cycles t0, Cycles t1,
            const char* k0 = nullptr, std::uint64_t a0 = 0,
            const char* k1 = nullptr, std::uint64_t a1 = 0);

  /// Record an instantaneous event at time t.
  void instant(ProcId node, Category cat, const char* name, Cycles t,
               const char* k0 = nullptr, std::uint64_t a0 = 0,
               const char* k1 = nullptr, std::uint64_t a1 = 0) {
    span(node, cat, name, t, t, k0, a0, k1, a1);
  }

  /// Record one sample of a per-node numeric track (queue depths,
  /// outstanding-diff counts). Samples are step-wise: the value holds until
  /// the next sample of the same (node, name) track. Exported as Perfetto
  /// "C" counter events.
  void counter(ProcId node, const char* name, Cycles t, std::uint64_t value) {
    span(node, Category::kCounter, name, t, t, "value", value);
  }
#endif

  /// Retained events sorted by (t_start, seq) — record order within a
  /// timestamp, so the output is identical run-to-run.
  std::vector<Event> events() const;

  std::size_t capacity() const { return ring_.size(); }
  /// Total events recorded, including those the ring has since overwritten.
  std::uint64_t recorded() const { return recorded_; }
  /// Events lost to ring wrap-around.
  std::uint64_t dropped() const {
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
  }
  std::size_t size() const {
    return recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_)
                                    : ring_.size();
  }

  void clear() {
    recorded_ = 0;
    next_ = 0;
  }

  // --- Streaming spill (chunked JSONL) --------------------------------------

  /// Stream every event recorded from now on to chunk files named
  /// `<stem>.chunk-NNNN.jsonl` under `dir` (one aecdsm-trace-v1 row per
  /// line, record order), rotating every `chunk_events` lines. The in-memory
  /// ring — events(), dropped(), the overlap analysis — is completely
  /// unaffected, so a run with spill off is byte-identical to one that never
  /// heard of spilling. `dir` must already exist.
  void enable_spill(const std::string& dir, const std::string& stem,
                    std::size_t chunk_events = kDefaultChunkEvents);
  bool spill_enabled() const { return spill_ != nullptr; }
  /// Events written to chunks (== recorded() when enabled before the run).
  std::uint64_t spilled() const;
  /// Chunk file paths written so far, in rotation order.
  const std::vector<std::string>& spill_chunks() const;
  /// Flush the current chunk to disk (the exporters call this before
  /// reading the chunks back). Const: the spill sink is not observable
  /// recorder state.
  void flush_spill() const;

 private:
  struct Spill;
  void spill_write(const Event& e);

  std::vector<Event> ring_;
  std::size_t next_ = 0;       // slot the next event lands in
  std::uint64_t recorded_ = 0;
  std::unique_ptr<Spill> spill_;
};

}  // namespace aecdsm::trace
