// Sync-delay critical-path analysis over a recorded timeline.
//
// The paper's central claim is that AEC hides diff creation/application
// behind synchronization delay the processor would suffer anyway. The
// OverlapAnalyzer measures that directly: it walks a Recorder timeline and
// intersects, per node, every diff-work span (diff.create / diff.apply)
// with the union of each of the three delay kinds the paper names —
//
//   lock waiting          lock.wait spans (Context::lock),
//   barrier imbalance     barrier.wait spans (Context::barrier),
//   manager processing    svc spans (Processor::service occupancy),
//
// all on the same node, since only co-located delay can hide that node's
// work. `overlap_any` intersects against the merged union of all three, so
// a diff span sitting under both a lock wait and a service span is counted
// once. overlap_ratio() = overlap_any / diff_cycles is the headline number:
// ~1 means diff work is fully hidden (AEC's goal), ~0 means it is fully
// exposed on the critical path (TreadMarks' lazy diffs, ERC's eager flush).
//
// Each lock.wait / barrier.wait span is also reported as one sync episode
// with the diff cycles hidden inside it, which is what bench_trace tabulates
// and the unit tests pin down on hand-built timelines.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "trace/recorder.hpp"

namespace aecdsm::trace {

/// One synchronization episode: a single lock.wait or barrier.wait span and
/// the diff-work cycles that executed inside it on the same node.
struct SyncEpisode {
  ProcId node = 0;
  const char* kind = "";  // names::kLockWait or names::kBarrierWait
  Cycles t_start = 0;
  Cycles t_end = 0;
  Cycles diff_overlap = 0;

  Cycles duration() const { return t_end - t_start; }
};

struct OverlapReport {
  Cycles diff_cycles = 0;          // total diff.create + diff.apply span cycles
  Cycles overlap_lock_wait = 0;    // diff cycles under lock.wait spans
  Cycles overlap_barrier_wait = 0; // diff cycles under barrier.wait spans
  Cycles overlap_service = 0;      // diff cycles under svc spans
  Cycles overlap_any = 0;          // diff cycles under the union of all three
  Cycles lock_wait_cycles = 0;     // total lock.wait span cycles (merged per node)
  Cycles barrier_wait_cycles = 0;  // total barrier.wait span cycles (merged)
  Cycles service_cycles = 0;       // total svc span cycles (merged)
  std::vector<SyncEpisode> episodes;  // chronological (t_start, node)

  double overlap_ratio() const {
    return diff_cycles > 0
               ? static_cast<double>(overlap_any) / static_cast<double>(diff_cycles)
               : 0.0;
  }
};

/// Analyze an event list (as returned by Recorder::events(); any order is
/// accepted — the analyzer sorts internally).
OverlapReport analyze_overlap(std::vector<Event> events);

inline OverlapReport analyze_overlap(const Recorder& rec) {
  return analyze_overlap(rec.events());
}

/// Condense a report into the RunStats-resident summary (drops episodes).
OverlapStats to_overlap_stats(const OverlapReport& report);

}  // namespace aecdsm::trace
