#include "trace/recorder.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace aecdsm::trace {

const char* category_name(Category cat) {
  switch (cat) {
    case Category::kLock: return "lock";
    case Category::kBarrier: return "barrier";
    case Category::kDiff: return "diff";
    case Category::kMem: return "mem";
    case Category::kLap: return "lap";
    case Category::kNet: return "net";
    case Category::kSvc: return "svc";
    case Category::kCounter: return "counter";
  }
  return "?";
}

Recorder::Recorder(std::size_t capacity) {
  AECDSM_CHECK_MSG(capacity > 0, "trace: recorder capacity must be positive");
  ring_.resize(capacity);
}

#if !defined(AECDSM_DISABLE_TRACING)
void Recorder::span(ProcId node, Category cat, const char* name, Cycles t0,
                    Cycles t1, const char* k0, std::uint64_t a0,
                    const char* k1, std::uint64_t a1) {
  Event& e = ring_[next_];
  e.t_start = t0;
  e.t_end = t1 > t0 ? t1 : t0;
  e.seq = recorded_;
  e.node = node;
  e.cat = cat;
  e.name = name;
  e.k0 = k0;
  e.a0 = a0;
  e.k1 = k1;
  e.a1 = a1;
  next_ = next_ + 1 == ring_.size() ? 0 : next_ + 1;
  ++recorded_;
}
#endif

std::vector<Event> Recorder::events() const {
  std::vector<Event> out;
  const std::size_t n = size();
  out.reserve(n);
  // Oldest retained event sits at next_ once the ring has wrapped, at 0
  // before that; copying in ring order keeps seq monotone before the sort.
  const std::size_t first = recorded_ > ring_.size() ? next_ : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(first + i) % ring_.size()]);
  }
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.t_start != b.t_start) return a.t_start < b.t_start;
    return a.seq < b.seq;
  });
  return out;
}

}  // namespace aecdsm::trace
