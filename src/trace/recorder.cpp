#include "trace/recorder.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/check.hpp"

namespace aecdsm::trace {

const char* category_name(Category cat) {
  switch (cat) {
    case Category::kLock: return "lock";
    case Category::kBarrier: return "barrier";
    case Category::kDiff: return "diff";
    case Category::kMem: return "mem";
    case Category::kLap: return "lap";
    case Category::kNet: return "net";
    case Category::kSvc: return "svc";
    case Category::kCounter: return "counter";
  }
  return "?";
}

json::Value event_row(const Event& e) {
  json::Value row = json::Value::object();
  row["node"] = json::Value(e.node);
  row["cat"] = json::Value(category_name(e.cat));
  row["name"] = json::Value(e.name);
  row["ts"] = json::Value(e.t_start);
  if (e.is_span()) row["dur"] = json::Value(e.duration());
  if (e.k0 != nullptr || e.k1 != nullptr) {
    json::Value args = json::Value::object();
    if (e.k0 != nullptr) args[e.k0] = json::Value(e.a0);
    if (e.k1 != nullptr) args[e.k1] = json::Value(e.a1);
    row["args"] = std::move(args);
  }
  return row;
}

/// Chunked JSONL sink state: the open chunk stream plus rotation
/// bookkeeping. Lives behind a pointer so the common no-spill recorder pays
/// one null check per record.
struct Recorder::Spill {
  std::string dir;
  std::string stem;
  std::size_t chunk_events = Recorder::kDefaultChunkEvents;
  std::ofstream out;
  std::vector<std::string> paths;
  std::uint64_t written = 0;
};

Recorder::Recorder(std::size_t capacity) {
  AECDSM_CHECK_MSG(capacity > 0, "trace: recorder capacity must be positive");
  ring_.resize(capacity);
}

Recorder::~Recorder() = default;
Recorder::Recorder(Recorder&&) noexcept = default;
Recorder& Recorder::operator=(Recorder&&) noexcept = default;

void Recorder::enable_spill(const std::string& dir, const std::string& stem,
                            std::size_t chunk_events) {
  AECDSM_CHECK_MSG(chunk_events > 0, "trace: spill chunk size must be positive");
  spill_ = std::make_unique<Spill>();
  spill_->dir = dir;
  spill_->stem = stem;
  spill_->chunk_events = chunk_events;
}

std::uint64_t Recorder::spilled() const {
  return spill_ == nullptr ? 0 : spill_->written;
}

const std::vector<std::string>& Recorder::spill_chunks() const {
  static const std::vector<std::string> kNone;
  return spill_ == nullptr ? kNone : spill_->paths;
}

void Recorder::flush_spill() const {
  if (spill_ != nullptr && spill_->out.is_open()) spill_->out.flush();
}

void Recorder::spill_write(const Event& e) {
  Spill& s = *spill_;
  if (s.written % s.chunk_events == 0) {
    std::ostringstream name;
    name << s.dir << "/" << s.stem << ".chunk-" << std::setw(4)
         << std::setfill('0') << s.paths.size() << ".jsonl";
    if (s.out.is_open()) s.out.close();
    s.out.open(name.str(), std::ios::trunc);
    AECDSM_CHECK_MSG(s.out.good(), "trace: cannot open spill chunk " << name.str());
    s.paths.push_back(name.str());
  }
  s.out << event_row(e).dump(-1) << '\n';
  ++s.written;
}

#if !defined(AECDSM_DISABLE_TRACING)
void Recorder::span(ProcId node, Category cat, const char* name, Cycles t0,
                    Cycles t1, const char* k0, std::uint64_t a0,
                    const char* k1, std::uint64_t a1) {
  Event& e = ring_[next_];
  e.t_start = t0;
  e.t_end = t1 > t0 ? t1 : t0;
  e.seq = recorded_;
  e.node = node;
  e.cat = cat;
  e.name = name;
  e.k0 = k0;
  e.a0 = a0;
  e.k1 = k1;
  e.a1 = a1;
  next_ = next_ + 1 == ring_.size() ? 0 : next_ + 1;
  ++recorded_;
  if (spill_ != nullptr) spill_write(e);
}
#endif

std::vector<Event> Recorder::events() const {
  std::vector<Event> out;
  const std::size_t n = size();
  out.reserve(n);
  // Oldest retained event sits at next_ once the ring has wrapped, at 0
  // before that; copying in ring order keeps seq monotone before the sort.
  const std::size_t first = recorded_ > ring_.size() ? next_ : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(first + i) % ring_.size()]);
  }
  std::sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.t_start != b.t_start) return a.t_start < b.t_start;
    return a.seq < b.seq;
  });
  return out;
}

}  // namespace aecdsm::trace
