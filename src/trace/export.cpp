#include "trace/export.hpp"

#include <algorithm>
#include <fstream>

#include "common/check.hpp"

namespace aecdsm::trace {

namespace {

using json::Value;

Value event_args(const Event& e) {
  Value args = Value::object();
  if (e.k0 != nullptr) args[e.k0] = Value(e.a0);
  if (e.k1 != nullptr) args[e.k1] = Value(e.a1);
  return args;
}

/// Assemble the full timeline from a spilling recorder's chunk files: parse
/// every JSONL row back and stable-sort by "ts". Chunk order is record
/// order, so the stable sort reproduces exactly the (t_start, seq) order
/// events() uses — the spilled export is the ring export with the ring's
/// drops filled back in.
std::vector<Value> spilled_rows(const Recorder& rec) {
  rec.flush_spill();
  std::vector<Value> rows;
  rows.reserve(static_cast<std::size_t>(rec.spilled()));
  for (const std::string& path : rec.spill_chunks()) {
    std::ifstream in(path);
    AECDSM_CHECK_MSG(in.good(), "trace: cannot read spill chunk " << path);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) rows.push_back(Value::parse(line));
    }
  }
  std::stable_sort(rows.begin(), rows.end(), [](const Value& a, const Value& b) {
    return a.at("ts").as_uint() < b.at("ts").as_uint();
  });
  return rows;
}

/// Rebuild one Perfetto trace-event from an aecdsm-trace-v1 row — the same
/// mapping append_perfetto_events applies to in-ring Events.
Value perfetto_row(const Value& row, int pid) {
  Value out = Value::object();
  const std::string cat = row.at("cat").as_string();
  const std::string name = row.at("name").as_string();
  const std::int64_t node = row.at("node").as_int();
  if (cat == "counter") {
    out["ph"] = Value("C");
    out["pid"] = Value(pid);
    out["cat"] = Value(cat);
    out["name"] = Value(name + " node" + std::to_string(node));
    out["ts"] = Value(row.at("ts").as_uint());
    out["args"][name] = Value(row.at("args").at("value").as_uint());
    return out;
  }
  const Value* dur = row.find("dur");
  out["ph"] = Value(dur != nullptr ? "X" : "i");
  out["pid"] = Value(pid);
  out["tid"] = Value(node);
  out["cat"] = Value(cat);
  out["name"] = Value(name);
  out["ts"] = Value(row.at("ts").as_uint());
  if (dur != nullptr) {
    out["dur"] = Value(dur->as_uint());
  } else {
    out["s"] = Value("t");  // instant scoped to its thread (track)
  }
  if (const Value* args = row.find("args")) out["args"] = *args;
  return out;
}

}  // namespace

Value trace_json(const Recorder& rec, const TraceMeta& meta) {
  Value doc = Value::object();
  doc["schema"] = Value("aecdsm-trace-v1");
  doc["protocol"] = Value(meta.protocol);
  doc["app"] = Value(meta.app);
  doc["num_procs"] = Value(meta.num_procs);
  doc["seed"] = Value(static_cast<std::uint64_t>(meta.seed));
  doc["capacity"] = Value(static_cast<std::uint64_t>(rec.capacity()));
  doc["recorded"] = Value(rec.recorded());
  doc["dropped"] = Value(rec.dropped());
  Value events = Value::array();
  if (rec.spill_enabled()) {
    // Full timeline from the chunks (the ring's wrap-around drops do not
    // apply); "dropped" above still reports the ring's view.
    doc["spilled"] = Value(rec.spilled());
    doc["spill_chunks"] = Value(static_cast<std::uint64_t>(rec.spill_chunks().size()));
    for (Value& row : spilled_rows(rec)) events.append(std::move(row));
  } else {
    for (const Event& e : rec.events()) events.append(event_row(e));
  }
  doc["events"] = std::move(events);
  return doc;
}

void append_perfetto_events(Value& trace_events, const Recorder& rec,
                            const TraceMeta& meta, int pid) {
  {
    Value m = Value::object();
    m["ph"] = Value("M");
    m["pid"] = Value(pid);
    m["name"] = Value("process_name");
    m["args"]["name"] = Value(meta.label.empty()
                                  ? meta.protocol + "/" + meta.app
                                  : meta.label);
    trace_events.append(std::move(m));
  }
  for (int node = 0; node < meta.num_procs; ++node) {
    Value m = Value::object();
    m["ph"] = Value("M");
    m["pid"] = Value(pid);
    m["tid"] = Value(node);
    m["name"] = Value("thread_name");
    m["args"]["name"] = Value("node " + std::to_string(node));
    trace_events.append(std::move(m));
  }
  if (rec.spill_enabled()) {
    for (const Value& row : spilled_rows(rec)) {
      trace_events.append(perfetto_row(row, pid));
    }
    return;
  }
  for (const Event& e : rec.events()) {
    Value row = Value::object();
    if (e.cat == Category::kCounter) {
      // Perfetto counter track: one "C" event per sample; the args value
      // becomes the track's y-value. The node rides in the name ("tid" does
      // not scope counters the way it scopes slices), so each node gets its
      // own track per counter name.
      row["ph"] = Value("C");
      row["pid"] = Value(pid);
      row["cat"] = Value(category_name(e.cat));
      row["name"] = Value(std::string(e.name) + " node" + std::to_string(e.node));
      row["ts"] = Value(e.t_start);
      row["args"][e.name] = Value(e.a0);
      trace_events.append(std::move(row));
      continue;
    }
    row["ph"] = Value(e.is_span() ? "X" : "i");
    row["pid"] = Value(pid);
    row["tid"] = Value(e.node);
    row["cat"] = Value(category_name(e.cat));
    row["name"] = Value(e.name);
    row["ts"] = Value(e.t_start);
    if (e.is_span()) {
      row["dur"] = Value(e.duration());
    } else {
      row["s"] = Value("t");  // instant scoped to its thread (track)
    }
    if (e.k0 != nullptr || e.k1 != nullptr) row["args"] = event_args(e);
    trace_events.append(std::move(row));
  }
}

Value perfetto_json(const Recorder& rec, const TraceMeta& meta, int pid) {
  Value doc = Value::object();
  doc["displayTimeUnit"] = Value("ms");
  Value events = Value::array();
  append_perfetto_events(events, rec, meta, pid);
  doc["traceEvents"] = std::move(events);
  return doc;
}

Value overlap_json(const OverlapReport& report, bool include_episodes) {
  Value v = Value::object();
  v["episodes"] = Value(static_cast<std::uint64_t>(report.episodes.size()));
  v["diff_cycles"] = Value(report.diff_cycles);
  v["overlap_lock_wait"] = Value(report.overlap_lock_wait);
  v["overlap_barrier_wait"] = Value(report.overlap_barrier_wait);
  v["overlap_service"] = Value(report.overlap_service);
  v["overlap_any"] = Value(report.overlap_any);
  v["lock_wait_cycles"] = Value(report.lock_wait_cycles);
  v["barrier_wait_cycles"] = Value(report.barrier_wait_cycles);
  v["service_cycles"] = Value(report.service_cycles);
  v["overlap_ratio"] = Value(report.overlap_ratio());
  if (include_episodes) {
    Value rows = Value::array();
    for (const SyncEpisode& ep : report.episodes) {
      Value row = Value::object();
      row["node"] = Value(ep.node);
      row["kind"] = Value(ep.kind);
      row["ts"] = Value(ep.t_start);
      row["dur"] = Value(ep.duration());
      row["diff_overlap"] = Value(ep.diff_overlap);
      rows.append(std::move(row));
    }
    v["episode_rows"] = std::move(rows);
  }
  return v;
}

}  // namespace aecdsm::trace
