#include "trace/export.hpp"

namespace aecdsm::trace {

namespace {

using json::Value;

Value event_args(const Event& e) {
  Value args = Value::object();
  if (e.k0 != nullptr) args[e.k0] = Value(e.a0);
  if (e.k1 != nullptr) args[e.k1] = Value(e.a1);
  return args;
}

}  // namespace

Value trace_json(const Recorder& rec, const TraceMeta& meta) {
  Value doc = Value::object();
  doc["schema"] = Value("aecdsm-trace-v1");
  doc["protocol"] = Value(meta.protocol);
  doc["app"] = Value(meta.app);
  doc["num_procs"] = Value(meta.num_procs);
  doc["seed"] = Value(static_cast<std::uint64_t>(meta.seed));
  doc["capacity"] = Value(static_cast<std::uint64_t>(rec.capacity()));
  doc["recorded"] = Value(rec.recorded());
  doc["dropped"] = Value(rec.dropped());
  Value events = Value::array();
  for (const Event& e : rec.events()) {
    Value row = Value::object();
    row["node"] = Value(e.node);
    row["cat"] = Value(category_name(e.cat));
    row["name"] = Value(e.name);
    row["ts"] = Value(e.t_start);
    if (e.is_span()) row["dur"] = Value(e.duration());
    if (e.k0 != nullptr || e.k1 != nullptr) row["args"] = event_args(e);
    events.append(std::move(row));
  }
  doc["events"] = std::move(events);
  return doc;
}

void append_perfetto_events(Value& trace_events, const Recorder& rec,
                            const TraceMeta& meta, int pid) {
  {
    Value m = Value::object();
    m["ph"] = Value("M");
    m["pid"] = Value(pid);
    m["name"] = Value("process_name");
    m["args"]["name"] = Value(meta.label.empty()
                                  ? meta.protocol + "/" + meta.app
                                  : meta.label);
    trace_events.append(std::move(m));
  }
  for (int node = 0; node < meta.num_procs; ++node) {
    Value m = Value::object();
    m["ph"] = Value("M");
    m["pid"] = Value(pid);
    m["tid"] = Value(node);
    m["name"] = Value("thread_name");
    m["args"]["name"] = Value("node " + std::to_string(node));
    trace_events.append(std::move(m));
  }
  for (const Event& e : rec.events()) {
    Value row = Value::object();
    if (e.cat == Category::kCounter) {
      // Perfetto counter track: one "C" event per sample; the args value
      // becomes the track's y-value. The node rides in the name ("tid" does
      // not scope counters the way it scopes slices), so each node gets its
      // own track per counter name.
      row["ph"] = Value("C");
      row["pid"] = Value(pid);
      row["cat"] = Value(category_name(e.cat));
      row["name"] = Value(std::string(e.name) + " node" + std::to_string(e.node));
      row["ts"] = Value(e.t_start);
      row["args"][e.name] = Value(e.a0);
      trace_events.append(std::move(row));
      continue;
    }
    row["ph"] = Value(e.is_span() ? "X" : "i");
    row["pid"] = Value(pid);
    row["tid"] = Value(e.node);
    row["cat"] = Value(category_name(e.cat));
    row["name"] = Value(e.name);
    row["ts"] = Value(e.t_start);
    if (e.is_span()) {
      row["dur"] = Value(e.duration());
    } else {
      row["s"] = Value("t");  // instant scoped to its thread (track)
    }
    if (e.k0 != nullptr || e.k1 != nullptr) row["args"] = event_args(e);
    trace_events.append(std::move(row));
  }
}

Value perfetto_json(const Recorder& rec, const TraceMeta& meta, int pid) {
  Value doc = Value::object();
  doc["displayTimeUnit"] = Value("ms");
  Value events = Value::array();
  append_perfetto_events(events, rec, meta, pid);
  doc["traceEvents"] = std::move(events);
  return doc;
}

Value overlap_json(const OverlapReport& report, bool include_episodes) {
  Value v = Value::object();
  v["episodes"] = Value(static_cast<std::uint64_t>(report.episodes.size()));
  v["diff_cycles"] = Value(report.diff_cycles);
  v["overlap_lock_wait"] = Value(report.overlap_lock_wait);
  v["overlap_barrier_wait"] = Value(report.overlap_barrier_wait);
  v["overlap_service"] = Value(report.overlap_service);
  v["overlap_any"] = Value(report.overlap_any);
  v["lock_wait_cycles"] = Value(report.lock_wait_cycles);
  v["barrier_wait_cycles"] = Value(report.barrier_wait_cycles);
  v["service_cycles"] = Value(report.service_cycles);
  v["overlap_ratio"] = Value(report.overlap_ratio());
  if (include_episodes) {
    Value rows = Value::array();
    for (const SyncEpisode& ep : report.episodes) {
      Value row = Value::object();
      row["node"] = Value(ep.node);
      row["kind"] = Value(ep.kind);
      row["ts"] = Value(ep.t_start);
      row["dur"] = Value(ep.duration());
      row["diff_overlap"] = Value(ep.diff_overlap);
      rows.append(std::move(row));
    }
    v["episode_rows"] = std::move(rows);
  }
  return v;
}

}  // namespace aecdsm::trace
