// Trace exporters: Chrome trace_event JSON (loadable in Perfetto or
// chrome://tracing, one track per simulated node) and the compact
// aecdsm-trace-v1 schema, both built on the shared json::Value layer so the
// output is byte-stable across runs — the determinism test diffs two traced
// same-seed runs byte-for-byte.
//
// Timestamps are simulated Cycles written verbatim. Chrome's UI labels the
// axis in microseconds; read "1 us" as "1 cycle" (10 ns of simulated time).
#pragma once

#include <cstdint>
#include <string>

#include "common/json.hpp"
#include "trace/overlap.hpp"
#include "trace/recorder.hpp"

namespace aecdsm::trace {

/// Run identity stamped into every export.
struct TraceMeta {
  std::string protocol;
  std::string app;
  int num_procs = 0;
  std::uint32_t seed = 0;
  std::string label;  ///< cell label, e.g. "AEC/Water-SP"; Perfetto process name
};

/// Compact structured export:
///   { "schema": "aecdsm-trace-v1", "protocol": ..., "app": ...,
///     "num_procs": N, "seed": S, "capacity": C, "recorded": R,
///     "dropped": D, "events": [ { "node", "cat", "name", "ts", "dur",
///     "args": {...} } ... ] }
/// Events are sorted by (t_start, record order); "dur" and "args" are
/// omitted for instants / argument-free events.
json::Value trace_json(const Recorder& rec, const TraceMeta& meta);

/// Chrome trace_event document: { "displayTimeUnit": "ms",
/// "traceEvents": [...] } with one process per cell and one thread (track)
/// per node. Spans become "X" complete events, instants "i" events.
json::Value perfetto_json(const Recorder& rec, const TraceMeta& meta,
                          int pid = 0);

/// Append one cell's events (metadata + timeline) to an existing
/// "traceEvents" array under process id `pid` — how --trace merges every
/// cell of a batch into a single Perfetto-loadable file.
void append_perfetto_events(json::Value& trace_events, const Recorder& rec,
                            const TraceMeta& meta, int pid);

/// Overlap summary (and optionally per-episode rows) in JSON form, embedded
/// by the batch layer under "overlap" in aecdsm-trace-v1 documents.
json::Value overlap_json(const OverlapReport& report,
                         bool include_episodes = false);

}  // namespace aecdsm::trace
