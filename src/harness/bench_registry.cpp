#include "harness/bench_registry.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"

namespace aecdsm::harness {

namespace {

std::vector<BenchDef>& registry() {
  static std::vector<BenchDef> benches;
  return benches;
}

}  // namespace

bool register_bench(BenchDef def) {
  AECDSM_CHECK_MSG(def.plan != nullptr && def.report != nullptr,
                   "bench '" << def.name << "' registered without plan/report");
  registry().push_back(std::move(def));
  return true;
}

std::vector<const BenchDef*> registered_benches() {
  std::vector<const BenchDef*> out;
  out.reserve(registry().size());
  for (const BenchDef& def : registry()) out.push_back(&def);
  std::sort(out.begin(), out.end(), [](const BenchDef* a, const BenchDef* b) {
    return a->order != b->order ? a->order < b->order : a->name < b->name;
  });
  return out;
}

int bench_main(const std::string& name, int argc, char** argv) {
  for (const BenchDef* def : registered_benches()) {
    if (def->name == name) return run_bench(argc, argv, def->plan(), def->report);
  }
  std::fprintf(stderr, "%s: bench '%s' is not registered in this binary\n", argv[0],
               name.c_str());
  return 2;
}

}  // namespace aecdsm::harness
