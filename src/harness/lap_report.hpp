// Table 3 support: collect per-lock LAP scores from a finished run and
// aggregate them into the paper's logical variable groups.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "harness/format.hpp"
#include "harness/runner.hpp"

namespace aecdsm::harness {

/// Per-lock LAP scores of a finished run (works for AEC and the
/// scoring-only TreadMarks instances alike).
std::map<LockId, aec::LapScores> lap_scores_of(const ExperimentResult& r);

/// Aggregate per-lock scores into the paper's variable groups, producing
/// Table 3 rows (group totals are event-weighted, like the paper).
std::vector<LapRow> lap_rows(const std::map<LockId, aec::LapScores>& scores,
                             const std::vector<apps::LockGroup>& groups);

/// Event-weighted total of the full-LAP predictor across every lock of a
/// run — the single success-rate number the sweep benches report.
aec::PredictorScore total_lap_score(const ExperimentResult& r);

}  // namespace aecdsm::harness
