#include "harness/artifact_diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <unordered_map>

namespace aecdsm::harness::artifact_diff {

namespace {

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

[[noreturn]] void bad_artifact(const std::string& what, const std::string& why) {
  throw ArtifactError(what + ": " + why);
}

/// Checked member access that reports which artifact is broken instead of
/// the parser-internal CHECK message.
const json::Value& member(const json::Value& v, const char* key,
                          const std::string& what) {
  const json::Value* m = v.find(key);
  if (m == nullptr) bad_artifact(what, std::string("missing member '") + key + "'");
  return *m;
}

double number_of(const json::Value& v, const char* key, const std::string& what) {
  const json::Value& m = member(v, key, what);
  switch (m.kind()) {
    case json::Value::Kind::kInt:
    case json::Value::Kind::kUint:
    case json::Value::Kind::kDouble: return m.as_double();
    default: bad_artifact(what, std::string("member '") + key + "' is not a number");
  }
}

/// Extract one comparable cell from a batch-document cell object.
Cell load_cell(const json::Value& c, const std::string& scope,
               const std::string& what) {
  Cell cell;
  cell.scope = scope;
  cell.label = member(c, "label", what).as_string();
  cell.protocol = member(c, "protocol", what).as_string();
  cell.app = member(c, "app", what).as_string();
  cell.scale = member(c, "scale", what).as_string();
  cell.seed = member(c, "seed", what).as_uint();

  // Content hash over the simulation inputs only — outputs must not feed
  // the alignment key, or a changed result would read as an added cell.
  std::ostringstream key;
  key << cell.protocol << '|' << cell.app << '|' << cell.scale << '|' << cell.seed
      << '|' << member(c, "params", what).dump(-1);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fnv1a64(key.str())));
  cell.content_hash = buf;

  const json::Value& stats = member(c, "stats", what);
  cell.metrics.emplace_back("finish_time", number_of(stats, "finish_time", what));
  cell.metrics.emplace_back("result_valid",
                            member(stats, "result_valid", what).as_bool() ? 1.0 : 0.0);
  const json::Value& msgs = member(stats, "msgs", what);
  cell.metrics.emplace_back("messages", number_of(msgs, "messages", what));
  cell.metrics.emplace_back("message_bytes", number_of(msgs, "bytes", what));
  const json::Value& diffs = member(stats, "diffs", what);
  cell.metrics.emplace_back("diffs_created", number_of(diffs, "diffs_created", what));
  cell.metrics.emplace_back("diff_bytes", number_of(diffs, "diff_bytes", what));
  cell.metrics.emplace_back("diffs_applied", number_of(diffs, "diffs_applied", what));
  // Traced artifacts only; absent on both sides compares clean, appearing or
  // vanishing is flagged by the one-sided-metric rule below.
  if (const json::Value* overlap = stats.find("overlap"); overlap != nullptr) {
    cell.metrics.emplace_back("overlap_ratio",
                              number_of(*overlap, "overlap_ratio", what));
  }
  // Crash-scheduled artifacts only (omit-when-empty, like "overlap").
  if (const json::Value* rec = stats.find("recovery"); rec != nullptr) {
    cell.metrics.emplace_back("failovers", number_of(*rec, "failovers", what));
    cell.metrics.emplace_back("reelections",
                              number_of(*rec, "reelections", what));
    cell.metrics.emplace_back("requeued_requests",
                              number_of(*rec, "requeued_requests", what));
    cell.metrics.emplace_back("recovery_cycles",
                              number_of(*rec, "recovery_cycles", what));
  }
  const json::Value& lap = member(c, "lap", what);
  if (lap.kind() == json::Value::Kind::kObject) {
    cell.metrics.emplace_back("lap_rate",
                              number_of(member(lap, "lap", what), "rate", what));
    cell.metrics.emplace_back("waitq_rate",
                              number_of(member(lap, "waitq", what), "rate", what));
  }
  return cell;
}

}  // namespace

std::string Cell::display() const {
  return scope.empty() ? label : scope + ":" + label;
}

std::string Cell::identity() const {
  std::ostringstream os;
  os << scope << '|' << label << '|' << protocol << '|' << app << '|' << scale
     << '|' << seed;
  return os.str();
}

std::string schema_of(const json::Value& doc, const std::string& what) {
  if (doc.kind() != json::Value::Kind::kObject) {
    bad_artifact(what, "top level is not a JSON object");
  }
  const json::Value* schema = doc.find("schema");
  if (schema == nullptr) bad_artifact(what, "missing top-level 'schema' field");
  if (schema->kind() != json::Value::Kind::kString) {
    bad_artifact(what, "top-level 'schema' field is not a string");
  }
  return schema->as_string();
}

Document load(const json::Value& doc, const std::string& what) {
  Document out;
  out.schema = schema_of(doc, what);
  if (out.schema == kBatchSchema) {
    for (const json::Value& c : member(doc, "cells", what).items()) {
      out.cells.push_back(load_cell(c, "", what));
    }
    return out;
  }
  if (out.schema == kBenchAllSchema) {
    for (const auto& [bench, bench_doc] : member(doc, "benches", what).entries()) {
      const std::string bench_what = what + " (bench '" + bench + "')";
      const std::string nested = schema_of(bench_doc, bench_what);
      if (nested != kBatchSchema) {
        bad_artifact(bench_what, "unsupported nested schema '" + nested + "'");
      }
      for (const json::Value& c : member(bench_doc, "cells", bench_what).items()) {
        out.cells.push_back(load_cell(c, bench, bench_what));
      }
    }
    return out;
  }
  bad_artifact(what, "unsupported schema '" + out.schema + "' (expected '" +
                         kBatchSchema + "' or '" + kBenchAllSchema + "')");
}

Document load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) bad_artifact(path, "cannot read file");
  std::ostringstream os;
  os << in.rdbuf();
  try {
    return load(json::Value::parse(os.str()), path);
  } catch (const ArtifactError&) {
    throw;
  } catch (const std::exception& e) {
    bad_artifact(path, e.what());
  }
}

double Tolerances::parse_value(const std::string& text) {
  std::string body = text;
  double scale = 1.0;
  if (!body.empty() && body.back() == '%') {
    body.pop_back();
    scale = 0.01;
  }
  double value = 0.0;
  std::size_t used = 0;
  try {
    value = std::stod(body, &used);
  } catch (const std::exception&) {
    used = std::string::npos;  // unify the error path below
  }
  if (used != body.size() || body.empty() || !(value >= 0.0)) {
    throw ArtifactError("bad tolerance value '" + text +
                        "' (want e.g. '0.5%' or '0.005')");
  }
  return value * scale;
}

void Tolerances::add_spec(const std::string& spec) {
  const std::size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw ArtifactError("bad tolerance spec '" + spec + "' (want METRIC=VALUE)");
  }
  set(spec.substr(0, eq), parse_value(spec.substr(eq + 1)));
}

void Tolerances::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw ArtifactError(path + ": cannot read tolerance file");
  std::ostringstream os;
  os << in.rdbuf();
  json::Value doc;
  try {
    doc = json::Value::parse(os.str());
  } catch (const std::exception& e) {
    throw ArtifactError(path + ": " + e.what());
  }
  if (schema_of(doc, path) != "aecdsm-tolerances-v1") {
    throw ArtifactError(path + ": unsupported schema (expected aecdsm-tolerances-v1)");
  }
  const json::Value* tols = doc.find("tolerances");
  if (tols == nullptr) throw ArtifactError(path + ": missing 'tolerances' object");
  for (const auto& [metric, value] : tols->entries()) {
    if (value.kind() == json::Value::Kind::kString) {
      set(metric, parse_value(value.as_string()));
    } else {
      set(metric, value.as_double());
    }
  }
}

void Tolerances::set(const std::string& metric, double ratio) {
  if (metric == "*") {
    default_ = ratio;
  } else {
    per_metric_[metric] = ratio;
  }
}

double Tolerances::for_metric(const std::string& metric) const {
  const auto it = per_metric_.find(metric);
  return it == per_metric_.end() ? default_ : it->second;
}

double MetricDelta::rel() const {
  if (before == after) return 0.0;
  if (before == 0.0) {
    return after > 0.0 ? std::numeric_limits<double>::infinity()
                       : -std::numeric_limits<double>::infinity();
  }
  return (after - before) / std::abs(before);
}

bool CellDiff::exceeds() const {
  for (const MetricDelta& d : deltas) {
    if (d.exceeds) return true;
  }
  return false;
}

bool DiffResult::gate_failed() const {
  if (!added.empty() || !removed.empty()) return true;
  for (const CellDiff& c : changed) {
    if (c.exceeds()) return true;
  }
  return false;
}

namespace {

MetricDelta make_delta(const std::string& metric, double before, double after,
                       const Tolerances& tol) {
  MetricDelta d;
  d.metric = metric;
  d.before = before;
  d.after = after;
  d.tolerance = tol.for_metric(metric);
  d.exceeds = std::abs(after - before) > d.tolerance * std::abs(before);
  return d;
}

/// Metric value by name; nullptr when the cell lacks it (e.g. lap_rate on
/// a protocol without LAP scores).
const double* metric_of(const Cell& c, const std::string& name) {
  for (const auto& [metric, value] : c.metrics) {
    if (metric == name) return &value;
  }
  return nullptr;
}

/// Compare two aligned cells; returns the changed metrics only. A metric
/// present on one side only always exceeds (there is no tolerance that
/// excuses a LAP table appearing or vanishing).
std::vector<MetricDelta> compare_cells(const Cell& before, const Cell& after,
                                       const Tolerances& tol) {
  std::vector<MetricDelta> out;
  for (const auto& [metric, b] : before.metrics) {
    const double* a = metric_of(after, metric);
    if (a == nullptr) {
      MetricDelta d = make_delta(metric, b, 0.0, tol);
      d.exceeds = true;
      out.push_back(d);
      continue;
    }
    if (*a == b) continue;
    out.push_back(make_delta(metric, b, *a, tol));
  }
  for (const auto& [metric, a] : after.metrics) {
    if (metric_of(before, metric) != nullptr) continue;
    MetricDelta d = make_delta(metric, 0.0, a, tol);
    d.exceeds = true;
    out.push_back(d);
  }
  return out;
}

}  // namespace

DiffResult diff(const Document& before, const Document& after,
                const Tolerances& tol, bool subset) {
  DiffResult r;
  r.subset = subset;
  r.cells_before = before.cells.size();
  r.cells_after = after.cells.size();

  // Queues of old-document cell indices per alignment key, consumed
  // first-come first-served so duplicate cells pair up in document order.
  // Subset mode keys by content hash alone: the two documents come from
  // different plans, so their scopes and labels never agree.
  std::unordered_map<std::string, std::vector<std::size_t>> by_hash;
  std::unordered_map<std::string, std::vector<std::size_t>> by_identity;
  for (std::size_t i = 0; i < before.cells.size(); ++i) {
    const Cell& c = before.cells[i];
    by_hash[subset ? c.content_hash : c.scope + '|' + c.content_hash].push_back(i);
    by_identity[c.identity()].push_back(i);
  }
  auto take = [](std::unordered_map<std::string, std::vector<std::size_t>>& m,
                 const std::string& key, const std::vector<char>& used) {
    const auto it = m.find(key);
    if (it == m.end()) return static_cast<std::ptrdiff_t>(-1);
    for (std::size_t& i : it->second) {
      if (i != static_cast<std::size_t>(-1) && !used[i]) {
        const std::size_t got = i;
        i = static_cast<std::size_t>(-1);
        return static_cast<std::ptrdiff_t>(got);
      }
    }
    return static_cast<std::ptrdiff_t>(-1);
  };

  std::vector<char> used(before.cells.size(), 0);
  std::map<std::string, std::pair<double, double>> totals;  // metric -> (before, after)
  for (const Cell& cell : after.cells) {
    bool by_content = true;
    std::ptrdiff_t idx =
        take(by_hash, subset ? cell.content_hash : cell.scope + '|' + cell.content_hash,
             used);
    if (idx < 0 && !subset) {
      by_content = false;
      idx = take(by_identity, cell.identity(), used);
    }
    if (idx < 0) {
      if (subset) {
        ++r.ignored;
      } else {
        r.added.push_back(cell);
      }
      continue;
    }
    used[static_cast<std::size_t>(idx)] = 1;
    const Cell& old = before.cells[static_cast<std::size_t>(idx)];
    ++r.compared;
    for (const auto& [metric, value] : old.metrics) {
      totals[metric].first += value;
    }
    for (const auto& [metric, value] : cell.metrics) {
      totals[metric].second += value;
    }
    std::vector<MetricDelta> deltas = compare_cells(old, cell, tol);
    if (deltas.empty()) {
      ++r.identical;
      continue;
    }
    CellDiff cd;
    cd.cell = cell;
    cd.matched_by_hash = by_content;
    cd.deltas = std::move(deltas);
    r.changed.push_back(std::move(cd));
  }
  if (!subset) {
    for (std::size_t i = 0; i < before.cells.size(); ++i) {
      if (!used[i]) r.removed.push_back(before.cells[i]);
    }
  }

  // Aggregates keep the per-cell reporting order where possible; totals is
  // keyed alphabetically, so rebuild from a reference metric order.
  static const char* kMetricOrder[] = {"finish_time",   "result_valid",  "messages",
                                       "message_bytes", "diffs_created", "diff_bytes",
                                       "diffs_applied", "overlap_ratio", "lap_rate",
                                       "waitq_rate"};
  for (const char* metric : kMetricOrder) {
    const auto it = totals.find(metric);
    if (it == totals.end()) continue;
    r.aggregate.push_back(make_delta(metric, it->second.first, it->second.second, tol));
    totals.erase(it);
  }
  for (const auto& [metric, t] : totals) {
    r.aggregate.push_back(make_delta(metric, t.first, t.second, tol));
  }
  return r;
}

namespace {

json::Value cell_id_json(const Cell& c) {
  json::Value v = json::Value::object();
  if (!c.scope.empty()) v["bench"] = json::Value(c.scope);
  v["label"] = json::Value(c.label);
  v["protocol"] = json::Value(c.protocol);
  v["app"] = json::Value(c.app);
  v["scale"] = json::Value(c.scale);
  v["seed"] = json::Value(c.seed);
  v["content_hash"] = json::Value(c.content_hash);
  return v;
}

json::Value delta_json(const MetricDelta& d) {
  json::Value v = json::Value::object();
  v["metric"] = json::Value(d.metric);
  v["before"] = json::Value(d.before);
  v["after"] = json::Value(d.after);
  v["delta"] = json::Value(d.delta());
  // rel() can be infinite (a metric growing from an exact 0), which JSON
  // cannot carry as a number.
  const double rel = d.rel();
  v["rel"] = std::isfinite(rel) ? json::Value(rel) : json::Value();
  v["tolerance"] = json::Value(d.tolerance);
  v["exceeds"] = json::Value(d.exceeds);
  return v;
}

std::string fmt_value(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  return buf;
}

std::string fmt_rel(const MetricDelta& d) {
  const double rel = d.rel();
  if (!std::isfinite(rel)) return d.after > d.before ? "+inf%" : "-inf%";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.3f%%", rel * 100.0);
  return buf;
}

}  // namespace

json::Value to_json(const DiffResult& r) {
  json::Value doc = json::Value::object();
  doc["schema"] = json::Value(kDiffSchema);
  doc["version"] = json::Value(std::uint64_t{1});
  doc["gate_failed"] = json::Value(r.gate_failed());
  doc["subset"] = json::Value(r.subset);
  doc["cells_before"] = json::Value(static_cast<std::uint64_t>(r.cells_before));
  doc["cells_after"] = json::Value(static_cast<std::uint64_t>(r.cells_after));
  doc["compared"] = json::Value(static_cast<std::uint64_t>(r.compared));
  doc["identical"] = json::Value(static_cast<std::uint64_t>(r.identical));
  doc["ignored"] = json::Value(static_cast<std::uint64_t>(r.ignored));
  json::Value changed = json::Value::array();
  for (const CellDiff& c : r.changed) {
    json::Value v = json::Value::object();
    v["cell"] = cell_id_json(c.cell);
    v["matched_by"] = json::Value(c.matched_by_hash ? "content_hash" : "identity");
    v["exceeds"] = json::Value(c.exceeds());
    json::Value deltas = json::Value::array();
    for (const MetricDelta& d : c.deltas) deltas.append(delta_json(d));
    v["deltas"] = std::move(deltas);
    changed.append(std::move(v));
  }
  doc["changed"] = std::move(changed);
  json::Value added = json::Value::array();
  for (const Cell& c : r.added) added.append(cell_id_json(c));
  doc["added"] = std::move(added);
  json::Value removed = json::Value::array();
  for (const Cell& c : r.removed) removed.append(cell_id_json(c));
  doc["removed"] = std::move(removed);
  json::Value aggregate = json::Value::array();
  for (const MetricDelta& d : r.aggregate) aggregate.append(delta_json(d));
  doc["aggregate"] = std::move(aggregate);
  return doc;
}

void print_human(std::ostream& os, const DiffResult& r) {
  for (const CellDiff& c : r.changed) {
    os << (c.exceeds() ? "FAIL " : "ok   ") << c.cell.display() << " ["
       << c.cell.protocol << "/" << c.cell.app << "]"
       << (c.matched_by_hash ? "" : " (matched by identity)") << "\n";
    for (const MetricDelta& d : c.deltas) {
      os << "       " << d.metric << ": " << fmt_value(d.before) << " -> "
         << fmt_value(d.after) << "  (" << fmt_rel(d) << ", tol "
         << fmt_value(d.tolerance * 100.0) << "%"
         << (d.exceeds ? ", EXCEEDS" : "") << ")\n";
    }
  }
  for (const Cell& c : r.added) {
    os << "ADDED   " << c.display() << " [" << c.protocol << "/" << c.app << "]\n";
  }
  for (const Cell& c : r.removed) {
    os << "REMOVED " << c.display() << " [" << c.protocol << "/" << c.app << "]\n";
  }
  if (!r.changed.empty() || !r.added.empty() || !r.removed.empty()) os << "\n";
  os << "aggregate over " << r.compared << " aligned cells:\n";
  for (const MetricDelta& d : r.aggregate) {
    os << "  " << d.metric << ": " << fmt_value(d.before) << " -> "
       << fmt_value(d.after);
    if (d.before != d.after) os << "  (" << fmt_rel(d) << ")";
    os << "\n";
  }
  os << "bench_diff: " << r.compared << " compared, " << r.identical
     << " identical, " << r.changed.size() << " changed, ";
  if (r.subset) {
    os << r.ignored << " unmatched ignored (subset) -> ";
  } else {
    os << r.added.size() << " added, " << r.removed.size() << " removed -> ";
  }
  os << (r.gate_failed() ? "GATE FAILED" : "clean") << "\n";
}

int gate_exit_code(const DiffResult& r) { return r.gate_failed() ? 1 : 0; }

}  // namespace aecdsm::harness::artifact_diff
