// Batch experiment subsystem: a declarative ExperimentPlan over
// (protocol, app, scale, params, seed) cells, executed concurrently on a
// thread pool by BatchRunner. Cells are independent deterministic
// simulations, so results are collected in plan order and the emitted JSON
// document is identical for any --jobs setting.
//
// Every bench binary routes through run_bench(): it parses the shared CLI
// (--jobs N / AECDSM_JOBS, --json PATH | - | --no-json), runs the plan,
// writes one JSON artifact per batch, and hands the plan-ordered results to
// the bench's report callback for the human-readable tables.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "common/params.hpp"
#include "harness/cellcache.hpp"
#include "harness/json_out.hpp"
#include "harness/runner.hpp"

namespace aecdsm::harness {

/// One independent simulation in a batch.
struct ExperimentCell {
  std::string label;  ///< row key for reports and the JSON document
  std::string protocol;
  std::string app;
  apps::Scale scale = apps::Scale::kDefault;
  SystemParams params;
  std::uint64_t seed = 42;
};

/// An ordered set of cells; the whole Figure/Table cross-product of a bench.
struct ExperimentPlan {
  std::string name;  ///< batch name; default JSON artifact is "<name>.json"
  std::vector<ExperimentCell> cells;

  /// Append a cell (label defaults to "protocol/app") and return it for
  /// per-cell tweaks: plan.add("AEC", "IS").params.update_set_size = 3;
  ExperimentCell& add(std::string protocol, std::string app,
                      apps::Scale scale = apps::Scale::kDefault,
                      SystemParams params = SystemParams{}, std::uint64_t seed = 42);
};

struct BatchOptions {
  /// Worker threads; 0 resolves via AECDSM_JOBS then hardware_concurrency.
  int jobs = 0;
  /// JSON artifact destination: "" = "<plan.name>.json", "-" = stdout,
  /// "off" = disabled.
  std::string json_path;
  /// Cell cache location; "" resolves via CellCache::resolve_dir.
  std::string cache_dir;
  /// Disable the cell cache entirely (no loads, no stores, no telemetry).
  bool no_cache = false;
  /// Ignore existing cached cells but overwrite them with fresh results.
  bool refresh = false;
  /// Abort the batch promptly on the first cell failure instead of letting
  /// the remaining cells run.
  bool fail_fast = false;
  /// Memory budget in MiB for concurrently running cells (0 = unbounded).
  /// Workers reserve each cell's estimated footprint (cell_mem_weight)
  /// before simulating and block while the reservation would overflow the
  /// budget. Default comes from AECDSM_MAX_MEM; --max-mem overrides it.
  std::size_t max_mem_mb = 0;
  /// Per-cell wall-clock limit in seconds (0 = none). A cell that exceeds
  /// it is marked with status "timeout" in the results/artifact instead of
  /// hanging the batch; with --fail-fast the remaining cells are cancelled.
  double cell_timeout_sec = 0.0;
  /// Write one combined Chrome trace_event file here covering every cell
  /// (one Perfetto process per cell, one track per node). "" = off.
  std::string trace_path;
  /// Write per-cell trace files (<label>.trace.json in the aecdsm-trace-v1
  /// schema plus <label>.perfetto.json) into this directory. "" = off.
  std::string trace_dir;
  /// Engine worker threads per cell (>1 = the conservative parallel engine;
  /// results are byte-identical to sequential for any value, so the cell
  /// cache key deliberately does not include this).
  int engine_threads = 1;
  /// Debug: after serving cache hits, re-simulate the first warm hit cold
  /// and fail the batch (SimError) unless the artifacts match byte for
  /// byte. Guards the cache against key collisions and stale blobs.
  bool verify_cache = false;

  /// Either trace sink requested. Tracing forces every cell to simulate —
  /// the cell cache is bypassed entirely (no loads, no stores, no
  /// telemetry), because a cached result has no timeline to replay and
  /// trace state must never leak into cached artifacts.
  bool tracing() const { return !trace_path.empty() || !trace_dir.empty(); }
};

/// Strip the shared batch flags (--jobs, --json, --no-json, --cache-dir,
/// --no-cache, --refresh, --fail-fast) out of argc/argv, leaving
/// unrecognized arguments in place for the caller. --help prints usage and
/// exits.
BatchOptions parse_batch_cli(int& argc, char** argv);

/// What one BatchRunner::run did, for cache-effectiveness checks: every
/// cell is either served from cache or simulated (failed cells count as
/// simulated; skipped ones — fail-fast cancellations — as neither).
struct BatchRunInfo {
  std::size_t cells = 0;
  std::size_t cache_hits = 0;
  std::size_t simulated = 0;
  std::size_t skipped = 0;
  /// Cells aborted by --cell-timeout (they count as simulated as well).
  std::size_t timeouts = 0;
  /// Warm hits re-simulated and compared byte-for-byte (--verify-cache).
  std::size_t cache_verified = 0;
  /// Engine events and host wall time summed over freshly simulated cells
  /// (cache hits carry no event count), for events/sec telemetry.
  std::uint64_t engine_events = 0;
  std::uint64_t sim_wall_us = 0;
};

/// Estimated peak host-memory footprint of one cell in bytes: the shared
/// image plus one private copy per processor (twins, caches, diff logs all
/// scale with it), plus a flat allowance for simulator bookkeeping. Only an
/// ordering heuristic for --max-mem — not a guarantee.
std::size_t cell_mem_weight(const ExperimentCell& cell);

/// Counting gate that bounds the summed weight of concurrently admitted
/// cells. A cap of zero disables the gate entirely. Weights above the cap
/// are clamped to it, so an oversized cell still runs — alone.
class MemGate {
 public:
  explicit MemGate(std::size_t cap_bytes) : cap_(cap_bytes) {}

  bool enabled() const { return cap_ != 0; }

  /// Block until `weight` (clamped to the cap) fits, reserve it, and return
  /// the amount actually reserved — pass that to release() when done.
  std::size_t acquire(std::size_t weight);

  /// Non-blocking acquire; returns the reserved amount, or 0 with no
  /// reservation made when the gate is full. (A disabled gate returns 0
  /// too: there is nothing to release either way.)
  std::size_t try_acquire(std::size_t weight);

  void release(std::size_t reserved);

  /// Currently reserved bytes (for tests).
  std::size_t used() const;

 private:
  std::size_t cap_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t used_ = 0;
};

/// Longest-processing-time-first dispatch order of the cache misses, from
/// the per-cell wall-clock telemetry of previous runs: cells with no
/// recorded duration go first (they may be the heavy ones), then known
/// cells in descending duration; ties keep their incoming relative order,
/// so the schedule is deterministic. Empty telemetry leaves the order
/// untouched. `hashes[i]` is the telemetry key of cell index `misses[j]==i`.
std::vector<std::size_t> lpt_schedule(std::vector<std::size_t> misses,
                                      const std::vector<std::string>& hashes,
                                      const TelemetryMap& telemetry);

class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions opts = {});

  /// Execute every cell, up to jobs() concurrently. Cells whose inputs are
  /// memoized in the cell cache are served without simulating; the misses
  /// are scheduled longest-known-wall-clock-first (from the cache's
  /// telemetry of previous runs) to cut tail latency. Results come back in
  /// plan order regardless of completion order; the first cell failure (in
  /// plan order) is rethrown after all in-flight cells finish.
  std::vector<ExperimentResult> run(const ExperimentPlan& plan);

  /// Cache/simulation accounting of the most recent run().
  const BatchRunInfo& last_run_info() const { return info_; }

  /// Deterministic JSON document for a finished batch (schema
  /// "aecdsm-batch-v1"): plan metadata plus, per cell, the full RunStats
  /// breakdown and LAP scores. Independent of the jobs setting.
  static json::Value document(const ExperimentPlan& plan,
                              const std::vector<ExperimentResult>& results);

  /// Emit `doc` according to the options (file, stdout, or disabled).
  void write_json(const ExperimentPlan& plan, const json::Value& doc) const;

  int jobs() const { return jobs_; }

 private:
  /// --verify-cache: re-simulate `cell` cold (same engine-thread setting)
  /// and throw SimError unless its serialized stats and LAP scores match
  /// the warm result byte for byte.
  void verify_warm_hit(const ExperimentCell& cell,
                       const ExperimentResult& warm) const;

  BatchOptions opts_;
  int jobs_;
  BatchRunInfo info_;
};

/// Results of a batch, handed to a bench's report callback. `doc` is the
/// JSON document about to be written; reports may attach derived sections.
struct BenchReport {
  const ExperimentPlan& plan;
  const std::vector<ExperimentResult>& results;
  json::Value& doc;

  /// Result of the first cell whose label matches (checked).
  const ExperimentResult& result(const std::string& label) const;
};

/// Shared main() body for the bench binaries: parse the batch CLI, run the
/// plan, print tables via `report`, write the JSON artifact. Returns the
/// process exit code.
int run_bench(int argc, char** argv, const ExperimentPlan& plan,
              const std::function<void(BenchReport&)>& report);

}  // namespace aecdsm::harness
