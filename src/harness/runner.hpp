// Experiment runner shared by every benchmark binary: builds an app and a
// protocol suite, runs the simulation, and returns the run statistics plus
// handles to protocol-internal detail (LAP scores) for the tables that
// need them.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "aec/suite.hpp"
#include "apps/registry.hpp"
#include "common/params.hpp"
#include "common/stats.hpp"
#include "erc/protocol.hpp"
#include "tmk/protocol.hpp"

namespace aecdsm::trace {
class Recorder;
}

namespace aecdsm::harness {

struct ExperimentResult {
  RunStats stats;
  /// "ok" for a completed cell; BatchRunner marks cells that exceeded
  /// --cell-timeout as "timeout" and fail-fast-cancelled ones as "skipped"
  /// (their stats/lap are then meaningless and serialize as null).
  std::string status = "ok";
  /// Per-lock LAP scores, materialized at the end of the run (or rebuilt
  /// from the cell cache). Everything a bench report needs beyond RunStats
  /// lives here, so a cache hit is indistinguishable from a fresh run.
  std::map<LockId, aec::LapScores> lap_scores;
  /// True when this result was served from the cell cache instead of being
  /// simulated; the protocol handles below are then null.
  bool from_cache = false;
  /// Set when the run used AEC (either variant): LAP scores & lock records.
  std::shared_ptr<const aec::AecShared> aec;
  /// Set when the run used TreadMarks: scoring-only LAP instances.
  std::shared_ptr<const tmk::TmShared> tm;
  /// Set when the run used Munin-ERC: scoring-only LAP instances.
  std::shared_ptr<const erc::ErcShared> erc;
};

/// `protocol` names any policy in the registry (policy/policy.hpp): the
/// legacy presets "AEC", "AEC-noLAP", "TreadMarks", "Munin-ERC" plus any
/// hybrid (e.g. "AEC-TmkBarrier"). Unknown names throw a SimError listing
/// every registered policy.
/// A positive `wall_timeout_sec` aborts the simulation with TimeoutError
/// once that much host time has elapsed. A non-null `recorder` captures the
/// run's event timeline (trace/recorder.hpp) without perturbing it.
/// `engine_threads` > 1 runs the simulation on the engine's conservative
/// parallel mode; results are byte-identical to sequential for any value
/// (traced runs stay sequential).
ExperimentResult run_experiment(const std::string& protocol, const std::string& app,
                                apps::Scale scale, const SystemParams& params,
                                std::uint64_t seed = 42,
                                double wall_timeout_sec = 0.0,
                                trace::Recorder* recorder = nullptr,
                                int engine_threads = 1);

/// The paper's simulated testbed: Table 1 defaults, 16 processors.
SystemParams paper_params();

}  // namespace aecdsm::harness
