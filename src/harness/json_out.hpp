// Structured results input/output for the batch experiment runner.
//
// json::Value (common/json.hpp, aliased here as harness::json) is a minimal
// ordered JSON document tree — objects preserve insertion order and doubles
// print in shortest round-trip form, so a batch document is byte-identical
// across runs and across --jobs settings (the determinism tests rely on
// this). The to_json overloads serialize the full RunStats breakdown plus
// per-lock LAP scores; the from_json counterparts reconstruct them from a
// parsed document, which is how the cell result cache (harness/cellcache)
// serves finished cells without re-simulating.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "aec/lap.hpp"

#include "common/json.hpp"
#include "common/params.hpp"
#include "common/stats.hpp"
#include "harness/runner.hpp"

namespace aecdsm::harness {

namespace json = ::aecdsm::json;

json::Value to_json(const TimeBreakdown& t);
json::Value to_json(const DiffStats& d);
json::Value to_json(const FaultStats& f);
json::Value to_json(const MsgStats& m);
json::Value to_json(const SyncStats& s);
json::Value to_json(const TransportStats& t);
json::Value to_json(const OverlapStats& o);
json::Value to_json(const RecoveryStats& r);
json::Value to_json(const LockMgrStats& l);
json::Value to_json(const RunStats& r);
json::Value to_json(const SystemParams& p);

/// Per-lock LAP scores of a finished run plus the event-weighted total;
/// a null Value when the run's protocol records no scores.
json::Value lap_json(const ExperimentResult& r);

/// Rebuild a RunStats from its to_json form. Derived members ("aggregate",
/// "others", "total") are ignored — they are recomputed on the next
/// serialization, so to_json(from_json(x)) == x byte-for-byte.
RunStats run_stats_from_json(const json::Value& v);

/// Rebuild the per-lock LAP score map from a lap_json value (the "locks"
/// array); a null value yields an empty map.
std::map<LockId, aec::LapScores> lap_scores_from_json(const json::Value& v);

}  // namespace aecdsm::harness
