#include "harness/format.hpp"

#include <iomanip>
#include <sstream>

namespace aecdsm::harness {

std::string pct(double fraction, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << fraction * 100.0 << "%";
  return os.str();
}

void print_header(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

void print_breakdown_figure(std::ostream& os, const std::string& title,
                            const std::vector<BreakdownBar>& bars) {
  print_header(os, title);
  if (bars.empty()) return;
  const double base = static_cast<double>(bars.front().finish);
  os << std::left << std::setw(14) << "config" << std::right << std::setw(8) << "total"
     << std::setw(8) << "busy" << std::setw(8) << "data" << std::setw(8) << "synch"
     << std::setw(8) << "ipc" << std::setw(8) << "others" << "\n";
  for (const BreakdownBar& bar : bars) {
    // Normalize each component by the aggregate attributed time, scaled to
    // the bar's wall-clock finish relative to the first bar (the paper's
    // normalized stacked-bar layout).
    const double total = static_cast<double>(bar.acct.total());
    const double height = static_cast<double>(bar.finish) / base * 100.0;
    auto part = [&](Cycles c) {
      return total == 0.0 ? 0.0 : static_cast<double>(c) / total * height;
    };
    os << std::left << std::setw(14) << bar.label << std::right << std::fixed
       << std::setprecision(1) << std::setw(7) << height << " " << std::setw(7)
       << part(bar.acct.busy) << " " << std::setw(7) << part(bar.acct.data) << " "
       << std::setw(7) << part(bar.acct.synch) << " " << std::setw(7)
       << part(bar.acct.ipc) << " " << std::setw(7) << part(bar.acct.others()) << "\n";
  }
}

void print_lap_table(std::ostream& os, const std::string& app,
                     const std::vector<LapRow>& rows) {
  os << std::left << std::setw(10) << app;
  os << std::left << std::setw(30) << "variable" << std::right << std::setw(9)
     << "events" << std::setw(9) << "% total" << std::setw(8) << "LAP" << std::setw(8)
     << "waitQ" << std::setw(10) << "wQ+aff" << std::setw(10) << "wQ+virtQ" << "\n";
  auto rate = [](const aec::PredictorScore& s) {
    std::ostringstream o;
    if (s.predictions == 0) {
      o << "-";
    } else {
      o << std::fixed << std::setprecision(1) << s.rate() * 100.0;
    }
    return o.str();
  };
  for (const LapRow& row : rows) {
    os << std::left << std::setw(10) << "" << std::setw(30) << row.variable
       << std::right << std::setw(9) << row.lock_events << std::setw(8) << std::fixed
       << std::setprecision(1) << row.pct_of_total * 100.0 << "%" << std::setw(8)
       << rate(row.scores.lap) << std::setw(8) << rate(row.scores.waitq)
       << std::setw(10) << rate(row.scores.waitq_affinity) << std::setw(10)
       << rate(row.scores.waitq_virtualq) << "\n";
  }
}

void print_diff_table(std::ostream& os, const std::vector<DiffRow>& rows) {
  os << std::left << std::setw(10) << "Appl" << std::right << std::setw(8) << "Size"
     << std::setw(12) << "MergedSize" << std::setw(9) << "Merged" << std::setw(12)
     << "Create" << std::setw(9) << "Hidden" << "\n";
  for (const DiffRow& row : rows) {
    const DiffStats& d = row.stats;
    const double avg_size =
        d.diffs_created == 0 ? 0.0
                             : static_cast<double>(d.diff_bytes) /
                                   static_cast<double>(d.diffs_created);
    const double avg_merged =
        d.merged_result_count == 0 ? 0.0
                                   : static_cast<double>(d.merged_result_bytes) /
                                         static_cast<double>(d.merged_result_count);
    const double merged_frac =
        d.diffs_created == 0 ? 0.0
                             : static_cast<double>(d.merged_diffs) /
                                   static_cast<double>(d.diffs_created);
    const double hidden_frac =
        d.create_cycles == 0 ? 0.0
                             : static_cast<double>(d.create_hidden_cycles) /
                                   static_cast<double>(d.create_cycles);
    os << std::left << std::setw(10) << row.app << std::right << std::fixed
       << std::setprecision(0) << std::setw(8) << avg_size << std::setw(12)
       << avg_merged << std::setw(8) << std::setprecision(1) << merged_frac * 100.0
       << "%" << std::setw(11) << std::setprecision(2)
       << static_cast<double>(d.create_cycles) / 1e6 << "M" << std::setw(8)
       << std::setprecision(1) << hidden_frac * 100.0 << "%\n";
  }
}

}  // namespace aecdsm::harness
