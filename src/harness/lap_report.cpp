#include "harness/lap_report.hpp"

namespace aecdsm::harness {

std::map<LockId, aec::LapScores> lap_scores_of(const ExperimentResult& r) {
  std::map<LockId, aec::LapScores> out;
  if (r.aec != nullptr) {
    // Manager shards partition the lock id space; `out` re-sorts globally.
    for (const auto& shard : r.aec->locks) {
      for (const auto& [l, rec] : shard) out[l] = rec.lap.scores();
    }
  } else if (r.tm != nullptr) {
    for (const auto& [l, lap] : r.tm->lap) out[l] = lap.scores();
  } else if (r.erc != nullptr) {
    for (const auto& shard : r.erc->lap) {
      for (const auto& [l, lap] : shard) out[l] = lap.scores();
    }
  } else {
    // No live protocol handle: the result came from the cell cache, which
    // materialized the scores when the cell was first simulated.
    out = r.lap_scores;
  }
  return out;
}

std::vector<LapRow> lap_rows(const std::map<LockId, aec::LapScores>& scores,
                             const std::vector<apps::LockGroup>& groups) {
  std::uint64_t total_events = 0;
  for (const auto& [l, s] : scores) total_events += s.acquire_events;

  std::vector<LapRow> rows;
  for (const apps::LockGroup& g : groups) {
    LapRow row;
    row.variable = g.label;
    for (const auto& [l, s] : scores) {
      if (l < g.lo || l > g.hi) continue;
      row.lock_events += s.acquire_events;
      auto add = [](aec::PredictorScore& into, const aec::PredictorScore& from) {
        into.predictions += from.predictions;
        into.hits += from.hits;
      };
      add(row.scores.lap, s.lap);
      add(row.scores.waitq, s.waitq);
      add(row.scores.waitq_affinity, s.waitq_affinity);
      add(row.scores.waitq_virtualq, s.waitq_virtualq);
    }
    row.scores.acquire_events = row.lock_events;
    row.pct_of_total =
        total_events == 0 ? 0.0
                          : static_cast<double>(row.lock_events) /
                                static_cast<double>(total_events);
    rows.push_back(std::move(row));
  }
  return rows;
}

aec::PredictorScore total_lap_score(const ExperimentResult& r) {
  aec::PredictorScore total;
  for (const auto& [l, s] : lap_scores_of(r)) {
    total.predictions += s.lap.predictions;
    total.hits += s.lap.hits;
  }
  return total;
}

}  // namespace aecdsm::harness
