// Fixed-size worker pool behind the batch experiment runner. Tasks are
// plain closures; wait_all() blocks the submitting thread until every task
// submitted so far has finished. Nothing here knows about simulations —
// BatchRunner layers plan ordering and error collection on top.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace aecdsm::harness {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);

  /// Joins all workers; pending tasks are still drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw — wrap fallible work and capture
  /// the error (BatchRunner stores an exception_ptr per cell). After
  /// request_stop() the task is silently dropped instead.
  void submit(std::function<void()> task);

  /// Block until every submitted task has completed.
  void wait_all();

  /// Cancel all queued-but-not-started tasks and drop any submitted later;
  /// tasks already executing run to completion. Callable from inside a task
  /// (BatchRunner's --fail-fast calls it on the first cell failure), after
  /// which wait_all() returns as soon as the in-flight tasks drain.
  void request_stop();

  /// True once request_stop() has been called.
  bool stop_requested() const;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Resolve a --jobs request: `jobs` when > 0, else the AECDSM_JOBS
  /// environment variable, else hardware_concurrency (at least 1).
  static int resolve_jobs(int jobs);

 private:
  void worker_main();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< signalled when a task arrives / shutdown
  std::condition_variable idle_cv_;  ///< signalled when in-flight work drains
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< queued + currently executing tasks
  bool shutdown_ = false;
  bool stop_ = false;  ///< cancel queued tasks, reject new submissions
  std::vector<std::thread> workers_;
};

}  // namespace aecdsm::harness
