#include "harness/batch.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <mutex>

#include "common/check.hpp"
#include "harness/cellcache.hpp"
#include "harness/threadpool.hpp"
#include "trace/export.hpp"
#include "trace/overlap.hpp"
#include "trace/recorder.hpp"

namespace aecdsm::harness {

ExperimentCell& ExperimentPlan::add(std::string protocol, std::string app,
                                    apps::Scale scale, SystemParams params,
                                    std::uint64_t seed) {
  ExperimentCell cell;
  cell.label = protocol + "/" + app;
  cell.protocol = std::move(protocol);
  cell.app = std::move(app);
  cell.scale = scale;
  cell.params = params;
  cell.seed = seed;
  cells.push_back(std::move(cell));
  return cells.back();
}

namespace {

[[noreturn]] void print_usage_and_exit(const char* argv0) {
  std::printf(
      "usage: %s [--jobs N] [--json PATH | --no-json] [cache flags]\n"
      "  --jobs N        run up to N simulations concurrently\n"
      "                  (default: AECDSM_JOBS, then hardware_concurrency)\n"
      "  --json PATH     write the batch JSON document to PATH ('-' = stdout;\n"
      "                  default: <plan>.json in the working directory)\n"
      "  --no-json       skip the JSON artifact\n"
      "  --cache-dir D   cell result cache location (default: AECDSM_CACHE_DIR,\n"
      "                  then XDG_CACHE_HOME/aecdsm, then ~/.cache/aecdsm)\n"
      "  --no-cache      disable the cell cache (always simulate, never store)\n"
      "  --refresh       re-simulate every cell but refresh the cached copies\n"
      "  --fail-fast     abort the batch on the first cell failure\n"
      "  --max-mem M     cap the estimated memory of concurrently running\n"
      "                  cells at M MiB (default: AECDSM_MAX_MEM; 0 = off)\n"
      "  --cell-timeout S  mark a cell as \"timeout\" in the artifact after S\n"
      "                  seconds of wall clock instead of letting it hang\n"
      "  --trace PATH    record every cell and write one combined Chrome\n"
      "                  trace_event file (load in Perfetto / chrome://tracing)\n"
      "  --trace-dir D   record every cell and write per-cell trace files\n"
      "                  (<label>.trace.json + <label>.perfetto.json) into D\n"
      "                  (tracing bypasses the cell cache: every cell simulates)\n"
      "  --engine-threads N  simulate each cell on N engine worker threads\n"
      "                  (conservative parallel mode; byte-identical results,\n"
      "                  same cache key — default 1, env AECDSM_ENGINE_THREADS)\n"
      "  --verify-cache  debug: re-simulate the first warm cache hit cold and\n"
      "                  fail unless the artifacts match byte for byte\n",
      argv0);
  std::exit(0);
}

/// Value of "--flag V" or "--flag=V"; advances i past a separate value.
bool flag_value(int argc, char** argv, int& i, const char* flag, std::string& out) {
  const std::size_t len = std::strlen(flag);
  if (std::strncmp(argv[i], flag, len) != 0) return false;
  if (argv[i][len] == '=') {
    out = argv[i] + len + 1;
    return true;
  }
  if (argv[i][len] == '\0') {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag);
      std::exit(2);
    }
    out = argv[++i];
    return true;
  }
  return false;
}

}  // namespace

BatchOptions parse_batch_cli(int& argc, char** argv) {
  BatchOptions opts;
  if (const char* env = std::getenv("AECDSM_MAX_MEM")) {
    const long mb = std::atol(env);
    if (mb > 0) opts.max_mem_mb = static_cast<std::size_t>(mb);
  }
  if (const char* env = std::getenv("AECDSM_ENGINE_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) opts.engine_threads = n;
  }
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      print_usage_and_exit(argv[0]);
    } else if (flag_value(argc, argv, i, "--jobs", value)) {
      opts.jobs = std::atoi(value.c_str());
      if (opts.jobs <= 0) {
        std::fprintf(stderr, "%s: --jobs wants a positive integer, got '%s'\n",
                     argv[0], value.c_str());
        std::exit(2);
      }
    } else if (flag_value(argc, argv, i, "--json", value)) {
      opts.json_path = value.empty() ? std::string("-") : value;
    } else if (std::strcmp(argv[i], "--no-json") == 0) {
      opts.json_path = "off";
    } else if (flag_value(argc, argv, i, "--cache-dir", value)) {
      opts.cache_dir = value;
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      opts.no_cache = true;
    } else if (std::strcmp(argv[i], "--refresh") == 0) {
      opts.refresh = true;
    } else if (std::strcmp(argv[i], "--fail-fast") == 0) {
      opts.fail_fast = true;
    } else if (flag_value(argc, argv, i, "--max-mem", value)) {
      const long mb = std::atol(value.c_str());
      if (mb < 0) {
        std::fprintf(stderr, "%s: --max-mem wants a size in MiB >= 0, got '%s'\n",
                     argv[0], value.c_str());
        std::exit(2);
      }
      opts.max_mem_mb = static_cast<std::size_t>(mb);
    } else if (flag_value(argc, argv, i, "--trace", value)) {
      opts.trace_path = value;
    } else if (flag_value(argc, argv, i, "--trace-dir", value)) {
      opts.trace_dir = value;
    } else if (flag_value(argc, argv, i, "--engine-threads", value)) {
      opts.engine_threads = std::atoi(value.c_str());
      if (opts.engine_threads <= 0) {
        std::fprintf(stderr,
                     "%s: --engine-threads wants a positive integer, got '%s'\n",
                     argv[0], value.c_str());
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--verify-cache") == 0) {
      opts.verify_cache = true;
    } else if (flag_value(argc, argv, i, "--cell-timeout", value)) {
      opts.cell_timeout_sec = std::atof(value.c_str());
      if (opts.cell_timeout_sec <= 0) {
        std::fprintf(stderr, "%s: --cell-timeout wants seconds > 0, got '%s'\n",
                     argv[0], value.c_str());
        std::exit(2);
      }
    } else {
      argv[out++] = argv[i];  // leave for the caller (e.g. google-benchmark)
    }
  }
  argc = out;
  argv[argc] = nullptr;
  return opts;
}

std::size_t cell_mem_weight(const ExperimentCell& cell) {
  // App construction is cheap (the working set is allocated in setup(),
  // inside the simulation), so building one just to read shared_bytes() is
  // fine even for a scheduling heuristic.
  const std::size_t shared = apps::make_app(cell.app, cell.scale)->shared_bytes();
  constexpr std::size_t kFixedOverhead = 64u * 1024 * 1024;
  return shared * static_cast<std::size_t>(cell.params.num_procs + 1) +
         kFixedOverhead;
}

std::size_t MemGate::acquire(std::size_t weight) {
  if (!enabled()) return 0;
  const std::size_t w = std::min(weight, cap_);
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return used_ + w <= cap_; });
  used_ += w;
  return w;
}

std::size_t MemGate::try_acquire(std::size_t weight) {
  if (!enabled()) return 0;
  const std::size_t w = std::min(weight, cap_);
  std::lock_guard<std::mutex> lk(mu_);
  if (used_ + w > cap_) return 0;
  used_ += w;
  return w;
}

void MemGate::release(std::size_t reserved) {
  if (reserved == 0) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    AECDSM_CHECK(reserved <= used_);
    used_ -= reserved;
  }
  cv_.notify_all();
}

std::size_t MemGate::used() const {
  std::lock_guard<std::mutex> lk(mu_);
  return used_;
}

std::vector<std::size_t> lpt_schedule(std::vector<std::size_t> misses,
                                      const std::vector<std::string>& hashes,
                                      const TelemetryMap& telemetry) {
  if (telemetry.empty()) return misses;
  auto duration_of = [&](std::size_t i) -> std::uint64_t {
    const auto it = telemetry.find(hashes[i]);
    return it == telemetry.end() ? std::numeric_limits<std::uint64_t>::max()
                                 : it->second;
  };
  std::stable_sort(misses.begin(), misses.end(),
                   [&](std::size_t a, std::size_t b) {
                     return duration_of(a) > duration_of(b);
                   });
  return misses;
}

namespace {

/// Cell label as a filename: anything outside [A-Za-z0-9.-] becomes '_'
/// ("AEC/Water-SP" -> "AEC_Water-SP").
std::string sanitize_label(const std::string& label) {
  std::string out = label;
  for (char& c : out) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '-' && c != '.') {
      c = '_';
    }
  }
  return out;
}

trace::TraceMeta trace_meta_of(const ExperimentCell& cell) {
  trace::TraceMeta meta;
  meta.protocol = cell.protocol;
  meta.app = cell.app;
  meta.num_procs = cell.params.num_procs;
  meta.seed = static_cast<std::uint32_t>(cell.seed);
  meta.label = cell.label;
  return meta;
}

void write_json_file(const std::string& path, const json::Value& doc) {
  std::ofstream out(path);
  AECDSM_CHECK_MSG(out.good(), "cannot open trace output file: " << path);
  doc.write(out);
  out << "\n";
}

/// Emit the requested trace artifacts for every successfully traced cell:
/// one combined Chrome trace_event file (--trace, one Perfetto process per
/// cell) and/or per-cell aecdsm-trace-v1 + Chrome files (--trace-dir).
/// Timed-out / cancelled cells have no coherent timeline and are skipped.
void write_trace_files(const BatchOptions& opts, const ExperimentPlan& plan,
                       const std::vector<ExperimentResult>& results,
                       const std::vector<std::unique_ptr<trace::Recorder>>& recorders) {
  if (!opts.trace_dir.empty()) std::filesystem::create_directories(opts.trace_dir);
  json::Value combined_events = json::Value::array();
  for (std::size_t i = 0; i < plan.cells.size(); ++i) {
    if (recorders[i] == nullptr || results[i].status != "ok") continue;
    const trace::Recorder& rec = *recorders[i];
    const trace::TraceMeta meta = trace_meta_of(plan.cells[i]);
    const int pid = static_cast<int>(i);
    if (!opts.trace_path.empty()) {
      trace::append_perfetto_events(combined_events, rec, meta, pid);
    }
    if (!opts.trace_dir.empty()) {
      const std::string base =
          (std::filesystem::path(opts.trace_dir) / sanitize_label(plan.cells[i].label))
              .string();
      json::Value doc = trace::trace_json(rec, meta);
      doc["overlap"] =
          trace::overlap_json(trace::analyze_overlap(rec), /*include_episodes=*/true);
      write_json_file(base + ".trace.json", doc);
      write_json_file(base + ".perfetto.json", trace::perfetto_json(rec, meta, pid));
    }
  }
  if (!opts.trace_path.empty()) {
    json::Value doc = json::Value::object();
    doc["displayTimeUnit"] = json::Value("ms");
    doc["traceEvents"] = std::move(combined_events);
    write_json_file(opts.trace_path, doc);
    std::fprintf(stderr, "[trace] %s: wrote combined Chrome trace %s\n",
                 plan.name.c_str(), opts.trace_path.c_str());
  }
  if (!opts.trace_dir.empty()) {
    std::fprintf(stderr, "[trace] %s: wrote per-cell traces under %s\n",
                 plan.name.c_str(), opts.trace_dir.c_str());
  }
}

}  // namespace

BatchRunner::BatchRunner(BatchOptions opts)
    : opts_(std::move(opts)), jobs_(ThreadPool::resolve_jobs(opts_.jobs)) {}

void BatchRunner::verify_warm_hit(const ExperimentCell& cell,
                                  const ExperimentResult& warm) const {
  const ExperimentResult cold =
      run_experiment(cell.protocol, cell.app, cell.scale, cell.params, cell.seed,
                     opts_.cell_timeout_sec, nullptr, opts_.engine_threads);
  const std::string warm_doc =
      to_json(warm.stats).dump() + "\n" + lap_json(warm).dump();
  const std::string cold_doc =
      to_json(cold.stats).dump() + "\n" + lap_json(cold).dump();
  AECDSM_CHECK_MSG(warm_doc == cold_doc,
                   "--verify-cache: warm hit for cell '"
                       << cell.label
                       << "' differs from a cold re-simulation — the cache "
                          "served a stale or colliding blob");
  std::fprintf(stderr, "[cache] verify: cell '%s' warm == cold\n",
               cell.label.c_str());
}

std::vector<ExperimentResult> BatchRunner::run(const ExperimentPlan& plan) {
  const std::size_t n = plan.cells.size();
  std::vector<ExperimentResult> results(n);
  std::vector<std::exception_ptr> errors(n);
  std::vector<char> executed(n, 0);
  info_ = BatchRunInfo{};
  info_.cells = n;

  // Tracing wants a timeline for every cell, which only a fresh simulation
  // produces — the cache is bypassed outright (no loads, no stores, no
  // telemetry) so trace runs can never pollute cached artifacts either.
  std::unique_ptr<CellCache> cache;
  if (!opts_.no_cache && !opts_.tracing()) {
    cache = std::make_unique<CellCache>(CellCache::resolve_dir(opts_.cache_dir));
  }
  std::vector<std::unique_ptr<trace::Recorder>> recorders(n);
  // Spilling recorders stream chunks during the run, so the directory must
  // exist before the first cell starts (write_trace_files re-creates it
  // harmlessly later).
  if (opts_.tracing() && !opts_.trace_dir.empty()) {
    std::filesystem::create_directories(opts_.trace_dir);
  }

  // Serve every memoized cell first; only the misses are simulated.
  std::vector<std::string> hashes(n);
  std::vector<std::size_t> misses;
  std::size_t first_hit = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (cache != nullptr) hashes[i] = CellCache::cell_hash(plan.cells[i]);
    if (cache != nullptr && !opts_.refresh) {
      if (auto hit = cache->load(plan.cells[i])) {
        results[i] = std::move(*hit);
        executed[i] = 1;
        ++info_.cache_hits;
        if (first_hit == n) first_hit = i;
        continue;
      }
    }
    misses.push_back(i);
  }

  if (opts_.verify_cache && first_hit < n) {
    verify_warm_hit(plan.cells[first_hit], results[first_hit]);
    ++info_.cache_verified;
  }

  if (cache != nullptr && misses.size() > 1) {
    misses = lpt_schedule(std::move(misses), hashes, cache->load_telemetry());
  }

  TelemetryMap fresh_telemetry;
  TelemetryMap fresh_events;
  std::mutex telemetry_mu;
  MemGate mem_gate(opts_.max_mem_mb * 1024 * 1024);
  {
    // Never spin up more workers than cells; the pool joins in its
    // destructor after wait_all() saw every cell finish.
    const int workers = std::max(static_cast<int>(misses.size()), 1);
    ThreadPool pool(std::min(jobs_, workers));
    for (const std::size_t i : misses) {
      pool.submit([&, i] {
        const ExperimentCell& cell = plan.cells[i];
        executed[i] = 1;
        const std::size_t reserved =
            mem_gate.enabled() ? mem_gate.acquire(cell_mem_weight(cell)) : 0;
        trace::Recorder* rec = nullptr;
        if (opts_.tracing()) {
          recorders[i] = std::make_unique<trace::Recorder>();
          // --trace-dir wants complete per-cell timelines: stream every
          // event to chunked JSONL so long runs outgrow the ring without
          // losing their head. --trace alone keeps the bounded ring only.
          if (!opts_.trace_dir.empty()) {
            recorders[i]->enable_spill(opts_.trace_dir,
                                       sanitize_label(cell.label));
          }
          rec = recorders[i].get();
        }
        const auto start = std::chrono::steady_clock::now();
        try {
          results[i] = run_experiment(cell.protocol, cell.app, cell.scale,
                                      cell.params, cell.seed,
                                      opts_.cell_timeout_sec, rec,
                                      opts_.engine_threads);
          if (rec != nullptr) {
            results[i].stats.overlap =
                trace::to_overlap_stats(trace::analyze_overlap(*rec));
          }
          const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                                  std::chrono::steady_clock::now() - start)
                                  .count();
          const std::uint64_t events = results[i].stats.engine_events;
          const std::uint64_t eps =
              (events > 0 && micros > 0)
                  ? events * 1000000u / static_cast<std::uint64_t>(micros)
                  : 0;
          if (eps > 0) {
            std::fprintf(stderr,
                         "[telemetry] %s: %llu events in %.3fs — %llu events/s "
                         "(engine threads=%d)\n",
                         cell.label.c_str(), static_cast<unsigned long long>(events),
                         static_cast<double>(micros) / 1e6,
                         static_cast<unsigned long long>(eps), opts_.engine_threads);
          }
          {
            std::lock_guard<std::mutex> lk(telemetry_mu);
            info_.engine_events += events;
            info_.sim_wall_us += static_cast<std::uint64_t>(micros);
          }
          if (cache != nullptr) {
            cache->store(cell, results[i]);
            std::lock_guard<std::mutex> lk(telemetry_mu);
            fresh_telemetry[hashes[i]] = static_cast<std::uint64_t>(micros);
            if (eps > 0) fresh_events[hashes[i]] = eps;
          }
        } catch (const TimeoutError& e) {
          // A stuck cell is a recorded outcome, not a batch failure: mark it
          // and move on (or cancel the rest under --fail-fast).
          results[i] = ExperimentResult{};
          results[i].status = "timeout";
          std::fprintf(stderr, "batch '%s': cell %zu (%s) %s\n",
                       plan.name.c_str(), i, cell.label.c_str(), e.what());
          if (opts_.fail_fast) pool.request_stop();
        } catch (...) {
          errors[i] = std::current_exception();
          // The exception is rethrown after the pool drains; until then the
          // status keeps trace export from treating this cell as finished.
          results[i].status = "failed";
          if (opts_.fail_fast) pool.request_stop();
        }
        mem_gate.release(reserved);
      });
    }
    pool.wait_all();
  }
  if (cache != nullptr) cache->merge_telemetry(fresh_telemetry, fresh_events);
  if (opts_.tracing()) write_trace_files(opts_, plan, results, recorders);

  for (std::size_t i = 0; i < n; ++i) {
    if (!executed[i]) {
      results[i].status = "skipped";
      ++info_.skipped;
    } else if (results[i].status == "timeout") {
      ++info_.timeouts;
    }
  }
  info_.simulated = n - info_.cache_hits - info_.skipped;
  if (info_.engine_events > 0 && info_.sim_wall_us > 0) {
    std::fprintf(stderr,
                 "[telemetry] %s: %llu engine events in %.3fs — %llu events/s "
                 "aggregate (engine threads=%d)\n",
                 plan.name.c_str(),
                 static_cast<unsigned long long>(info_.engine_events),
                 static_cast<double>(info_.sim_wall_us) / 1e6,
                 static_cast<unsigned long long>(info_.engine_events * 1000000u /
                                                 info_.sim_wall_us),
                 opts_.engine_threads);
  }
  if (cache != nullptr) {
    std::fprintf(stderr, "[cache] %s: hits=%zu simulated=%zu skipped=%zu dir=%s\n",
                 plan.name.c_str(), info_.cache_hits, info_.simulated, info_.skipped,
                 cache->dir().c_str());
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) {
      std::fprintf(stderr, "batch '%s': cell %zu (%s) failed%s\n", plan.name.c_str(),
                   i, plan.cells[i].label.c_str(),
                   info_.skipped > 0 ? " (remaining cells cancelled)" : "");
      std::rethrow_exception(errors[i]);
    }
  }
  return results;
}

json::Value BatchRunner::document(const ExperimentPlan& plan,
                                  const std::vector<ExperimentResult>& results) {
  AECDSM_CHECK(plan.cells.size() == results.size());
  json::Value doc = json::Value::object();
  doc["schema"] = json::Value("aecdsm-batch-v1");
  doc["plan"] = json::Value(plan.name);
  json::Value cells = json::Value::array();
  for (std::size_t i = 0; i < plan.cells.size(); ++i) {
    const ExperimentCell& cell = plan.cells[i];
    json::Value c = json::Value::object();
    c["label"] = json::Value(cell.label);
    c["protocol"] = json::Value(cell.protocol);
    c["app"] = json::Value(cell.app);
    c["scale"] = json::Value(cell.scale == apps::Scale::kSmall ? "small" : "default");
    c["seed"] = json::Value(cell.seed);
    c["params"] = to_json(cell.params);
    if (results[i].status != "ok") {
      // Timed-out / cancelled cells carry no meaningful measurements.
      c["status"] = json::Value(results[i].status);
      c["stats"] = json::Value();
      c["lap"] = json::Value();
    } else {
      c["stats"] = to_json(results[i].stats);
      c["lap"] = lap_json(results[i]);
    }
    cells.append(std::move(c));
  }
  doc["cells"] = std::move(cells);
  return doc;
}

void BatchRunner::write_json(const ExperimentPlan& plan, const json::Value& doc) const {
  if (opts_.json_path == "off") return;
  if (opts_.json_path == "-") {
    doc.write(std::cout);
    std::cout << "\n";
    return;
  }
  const std::string path =
      opts_.json_path.empty() ? plan.name + ".json" : opts_.json_path;
  std::ofstream out(path);
  AECDSM_CHECK_MSG(out.good(), "cannot open JSON output file: " << path);
  doc.write(out);
  out << "\n";
  std::fprintf(stderr, "[batch] %s: %zu cells, jobs=%d, wrote %s\n",
               plan.name.c_str(), plan.cells.size(), jobs_, path.c_str());
}

const ExperimentResult& BenchReport::result(const std::string& label) const {
  for (std::size_t i = 0; i < plan.cells.size(); ++i) {
    if (plan.cells[i].label == label) return results[i];
  }
  AECDSM_CHECK_MSG(false, "no cell labelled '" << label << "' in plan " << plan.name);
}

int run_bench(int argc, char** argv, const ExperimentPlan& plan,
              const std::function<void(BenchReport&)>& report) {
  BatchOptions opts = parse_batch_cli(argc, argv);
  for (int i = 1; i < argc; ++i) {
    std::fprintf(stderr, "%s: unknown argument '%s' (try --help)\n", argv[0], argv[i]);
    return 2;
  }
  try {
    BatchRunner runner(std::move(opts));
    const std::vector<ExperimentResult> results = runner.run(plan);
    json::Value doc = BatchRunner::document(plan, results);
    BenchReport rep{plan, results, doc};
    report(rep);
    runner.write_json(plan, doc);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 1;
  }
  return 0;
}

}  // namespace aecdsm::harness
