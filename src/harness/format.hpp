// Paper-style table/figure formatters for the benchmark harness: execution
// time breakdowns (figures 3-6), LAP success-rate tables (Table 3) and
// diff statistics (Table 4).
#pragma once

#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "aec/lap.hpp"
#include "common/stats.hpp"

namespace aecdsm::harness {

/// "87.0%" style percentage.
std::string pct(double fraction, int decimals = 1);

/// One bar of a stacked execution-time figure.
struct BreakdownBar {
  std::string label;
  TimeBreakdown acct;
  Cycles finish = 0;
};

/// Print stacked execution-time bars normalized to the first bar's finish
/// time — the layout of the paper's figures 4, 5 and 6.
void print_breakdown_figure(std::ostream& os, const std::string& title,
                            const std::vector<BreakdownBar>& bars);

/// One row of Table 3.
struct LapRow {
  std::string variable;
  std::uint64_t lock_events = 0;
  double pct_of_total = 0.0;
  aec::LapScores scores;
};

void print_lap_table(std::ostream& os, const std::string& app,
                     const std::vector<LapRow>& rows);

/// One row of Table 4.
struct DiffRow {
  std::string app;
  DiffStats stats;
};

void print_diff_table(std::ostream& os, const std::vector<DiffRow>& rows);

/// Section header used by every bench binary.
void print_header(std::ostream& os, const std::string& title);

}  // namespace aecdsm::harness
