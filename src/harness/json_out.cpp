#include "harness/json_out.hpp"

#include "common/check.hpp"
#include "harness/lap_report.hpp"

namespace aecdsm::harness {

using json::Value;

Value to_json(const TimeBreakdown& t) {
  Value v = Value::object();
  v["busy"] = Value(t.busy);
  v["data"] = Value(t.data);
  v["synch"] = Value(t.synch);
  v["ipc"] = Value(t.ipc);
  v["others_cache"] = Value(t.others_cache);
  v["others_tlb"] = Value(t.others_tlb);
  v["others_wb"] = Value(t.others_wb);
  v["others_misc"] = Value(t.others_misc);
  v["others"] = Value(t.others());
  v["total"] = Value(t.total());
  return v;
}

Value to_json(const DiffStats& d) {
  Value v = Value::object();
  v["diffs_created"] = Value(d.diffs_created);
  v["diff_bytes"] = Value(d.diff_bytes);
  v["merged_diffs"] = Value(d.merged_diffs);
  v["merged_result_count"] = Value(d.merged_result_count);
  v["merged_result_bytes"] = Value(d.merged_result_bytes);
  v["create_cycles"] = Value(d.create_cycles);
  v["create_hidden_cycles"] = Value(d.create_hidden_cycles);
  v["apply_cycles"] = Value(d.apply_cycles);
  v["apply_hidden_cycles"] = Value(d.apply_hidden_cycles);
  v["diffs_applied"] = Value(d.diffs_applied);
  return v;
}

Value to_json(const FaultStats& f) {
  Value v = Value::object();
  v["read_faults"] = Value(f.read_faults);
  v["write_faults"] = Value(f.write_faults);
  v["cold_faults"] = Value(f.cold_faults);
  v["faults_inside_cs"] = Value(f.faults_inside_cs);
  v["fault_cycles"] = Value(f.fault_cycles);
  return v;
}

Value to_json(const MsgStats& m) {
  Value v = Value::object();
  v["messages"] = Value(m.messages);
  v["bytes"] = Value(m.bytes);
  return v;
}

Value to_json(const SyncStats& s) {
  Value v = Value::object();
  v["lock_acquires"] = Value(s.lock_acquires);
  v["barrier_events"] = Value(s.barrier_events);
  v["distinct_locks"] = Value(s.distinct_locks);
  return v;
}

Value to_json(const TransportStats& t) {
  Value v = Value::object();
  v["data_sends"] = Value(t.data_sends);
  v["retransmits"] = Value(t.retransmits);
  v["timeouts"] = Value(t.timeouts);
  v["acks"] = Value(t.acks);
  v["dup_dropped"] = Value(t.dup_dropped);
  v["held_ooo"] = Value(t.held_ooo);
  v["drops_injected"] = Value(t.drops_injected);
  v["dups_injected"] = Value(t.dups_injected);
  v["delays_injected"] = Value(t.delays_injected);
  v["reorders_injected"] = Value(t.reorders_injected);
  v["paused_deliveries"] = Value(t.paused_deliveries);
  v["push_sends"] = Value(t.push_sends);
  v["push_drops"] = Value(t.push_drops);
  v["push_timeouts"] = Value(t.push_timeouts);
  v["push_fallbacks"] = Value(t.push_fallbacks);
  return v;
}

Value to_json(const OverlapStats& o) {
  Value v = Value::object();
  v["episodes"] = Value(o.episodes);
  v["diff_cycles"] = Value(o.diff_cycles);
  v["overlap_lock_wait"] = Value(o.overlap_lock_wait);
  v["overlap_barrier_wait"] = Value(o.overlap_barrier_wait);
  v["overlap_service"] = Value(o.overlap_service);
  v["overlap_any"] = Value(o.overlap_any);
  v["lock_wait_cycles"] = Value(o.lock_wait_cycles);
  v["barrier_wait_cycles"] = Value(o.barrier_wait_cycles);
  v["service_cycles"] = Value(o.service_cycles);
  v["overlap_ratio"] = Value(o.ratio());
  return v;
}

Value to_json(const RunStats& r) {
  Value v = Value::object();
  v["protocol"] = Value(r.protocol);
  v["app"] = Value(r.app);
  v["num_procs"] = Value(r.num_procs);
  v["finish_time"] = Value(r.finish_time);
  v["result_valid"] = Value(r.result_valid);
  v["aggregate"] = to_json(r.aggregate());
  Value per = Value::array();
  for (const TimeBreakdown& t : r.per_proc) per.append(to_json(t));
  v["per_proc"] = std::move(per);
  v["diffs"] = to_json(r.diffs);
  v["faults"] = to_json(r.faults);
  v["msgs"] = to_json(r.msgs);
  v["sync"] = to_json(r.sync);
  // Emitted only when fault injection actually ran, so fault-free documents
  // stay byte-identical to pre-fault-plane baselines.
  if (r.transport.any()) v["transport"] = to_json(r.transport);
  // Emitted only for traced + analyzed runs; untraced documents (and every
  // committed baseline) therefore never carry an "overlap" member.
  if (r.overlap.any()) v["overlap"] = to_json(r.overlap);
  // Emitted only when a crash schedule actually fired: crash-free documents
  // (all committed baselines) never carry a "recovery" member.
  if (r.recovery.any()) v["recovery"] = to_json(r.recovery);
  // Emitted only when a lock strategy collected counters (non-central
  // strategy or locks.collect_stats): default documents never carry it.
  if (r.lockmgr.any()) v["lockmgr"] = to_json(r.lockmgr);
  return v;
}

Value to_json(const LockMgrStats& l) {
  Value v = Value::object();
  v["grants"] = Value(l.grants);
  v["handoffs"] = Value(l.handoffs);
  v["direct_handoffs"] = Value(l.direct_handoffs);
  v["link_messages"] = Value(l.link_messages);
  v["fallback_rels"] = Value(l.fallback_rels);
  v["handoff_hops"] = Value(l.handoff_hops);
  v["cross_cohort"] = Value(l.cross_cohort);
  v["hier_skips"] = Value(l.hier_skips);
  v["queue_depth_sum"] = Value(l.queue_depth_sum);
  v["queue_depth_max"] = Value(l.queue_depth_max);
  return v;
}

Value to_json(const RecoveryStats& r) {
  Value v = Value::object();
  v["crash_drops"] = Value(r.crash_drops);
  v["suspects"] = Value(r.suspects);
  v["failovers"] = Value(r.failovers);
  v["reelections"] = Value(r.reelections);
  v["requeued_requests"] = Value(r.requeued_requests);
  v["recovery_cycles"] = Value(r.recovery_cycles);
  return v;
}

Value to_json(const SystemParams& p) {
  Value v = Value::object();
  v["num_procs"] = Value(p.num_procs);
  v["mesh_width"] = Value(p.mesh_width);
  v["page_bytes"] = Value(static_cast<std::uint64_t>(p.page_bytes));
  v["tlb_entries"] = Value(p.tlb_entries);
  v["tlb_fill_cycles"] = Value(p.tlb_fill_cycles);
  v["interrupt_cycles"] = Value(p.interrupt_cycles);
  v["message_overhead"] = Value(p.message_overhead);
  v["list_processing_per_elem"] = Value(p.list_processing_per_elem);
  v["cache_bytes"] = Value(static_cast<std::uint64_t>(p.cache_bytes));
  v["cache_line_bytes"] = Value(static_cast<std::uint64_t>(p.cache_line_bytes));
  v["write_buffer_entries"] = Value(p.write_buffer_entries);
  v["mem_setup_cycles"] = Value(p.mem_setup_cycles);
  v["mem_quarter_cycles_per_word"] = Value(p.mem_quarter_cycles_per_word);
  v["io_setup_cycles"] = Value(p.io_setup_cycles);
  v["io_cycles_per_word"] = Value(p.io_cycles_per_word);
  v["network_width_bits"] = Value(p.network_width_bits);
  v["switch_cycles"] = Value(p.switch_cycles);
  v["wire_cycles"] = Value(p.wire_cycles);
  v["twin_cycles_per_word"] = Value(p.twin_cycles_per_word);
  v["diff_cycles_per_word"] = Value(p.diff_cycles_per_word);
  v["update_set_size"] = Value(p.update_set_size);
  v["affinity_threshold"] = Value(p.affinity_threshold);
  v["quantum_cycles"] = Value(p.quantum_cycles);
  // The faults block appears only when fault injection is on. Default
  // (fault-free) params therefore serialize exactly as before the fault
  // plane existed: cellcache keys and committed baselines are unaffected,
  // while any active fault knob perturbs the content hash.
  if (p.faults.any()) {
    Value f = Value::object();
    f["drop_rate"] = Value(p.faults.drop_rate);
    f["dup_rate"] = Value(p.faults.dup_rate);
    f["delay_rate"] = Value(p.faults.delay_rate);
    f["delay_jitter_cycles"] = Value(p.faults.delay_jitter_cycles);
    f["reorder_rate"] = Value(p.faults.reorder_rate);
    f["reorder_window_cycles"] = Value(p.faults.reorder_window_cycles);
    auto windows = [](const std::vector<FaultWindow>& ws) {
      Value arr = Value::array();
      for (const FaultWindow& w : ws) {
        Value e = Value::object();
        e["node"] = Value(w.node);
        e["at_cycle"] = Value(w.at_cycle);
        e["cycles"] = Value(w.cycles);
        arr.append(std::move(e));
      }
      return arr;
    };
    f["pauses"] = windows(p.faults.pauses);
    f["crashes"] = windows(p.faults.crashes);
    f["suspect_after"] = Value(p.faults.suspect_after);
    f["seed"] = Value(p.faults.seed);
    f["retransmit_timeout_cycles"] = Value(p.faults.retransmit_timeout_cycles);
    f["retransmit_backoff_cap"] = Value(p.faults.retransmit_backoff_cap);
    f["push_timeout_cycles"] = Value(p.faults.push_timeout_cycles);
    v["faults"] = std::move(f);
  }
  // Same omit-when-default rule for the lock-manager strategy: the central
  // default serializes exactly as before src/locks existed, while choosing
  // mcs/hier (or any locks knob) perturbs the cellcache content hash.
  if (p.locks.any()) {
    Value lk = Value::object();
    lk["strategy"] = Value(p.locks.strategy);
    lk["hier_fairness"] = Value(p.locks.hier_fairness);
    lk["collect_stats"] = Value(p.locks.collect_stats);
    v["locks"] = std::move(lk);
  }
  return v;
}

namespace {

Value score_json(const aec::PredictorScore& s) {
  Value v = Value::object();
  v["predictions"] = Value(s.predictions);
  v["hits"] = Value(s.hits);
  v["rate"] = Value(s.rate());
  return v;
}

}  // namespace

Value lap_json(const ExperimentResult& r) {
  const auto scores = lap_scores_of(r);
  if (scores.empty()) return Value();
  Value v = Value::object();
  aec::LapScores total;
  Value locks = Value::array();
  for (const auto& [lock, s] : scores) {
    Value row = Value::object();
    row["lock"] = Value(static_cast<std::uint64_t>(lock));
    row["acquires"] = Value(s.acquire_events);
    row["lap"] = score_json(s.lap);
    row["waitq"] = score_json(s.waitq);
    row["waitq_affinity"] = score_json(s.waitq_affinity);
    row["waitq_virtualq"] = score_json(s.waitq_virtualq);
    locks.append(std::move(row));
    total.acquire_events += s.acquire_events;
    auto add = [](aec::PredictorScore& into, const aec::PredictorScore& from) {
      into.predictions += from.predictions;
      into.hits += from.hits;
    };
    add(total.lap, s.lap);
    add(total.waitq, s.waitq);
    add(total.waitq_affinity, s.waitq_affinity);
    add(total.waitq_virtualq, s.waitq_virtualq);
  }
  v["acquires"] = Value(total.acquire_events);
  v["lap"] = score_json(total.lap);
  v["waitq"] = score_json(total.waitq);
  v["waitq_affinity"] = score_json(total.waitq_affinity);
  v["waitq_virtualq"] = score_json(total.waitq_virtualq);
  v["locks"] = std::move(locks);
  return v;
}

namespace {

TimeBreakdown breakdown_from_json(const Value& v) {
  TimeBreakdown t;
  t.busy = v.at("busy").as_uint();
  t.data = v.at("data").as_uint();
  t.synch = v.at("synch").as_uint();
  t.ipc = v.at("ipc").as_uint();
  t.others_cache = v.at("others_cache").as_uint();
  t.others_tlb = v.at("others_tlb").as_uint();
  t.others_wb = v.at("others_wb").as_uint();
  t.others_misc = v.at("others_misc").as_uint();
  return t;
}

aec::PredictorScore score_from_json(const Value& v) {
  aec::PredictorScore s;
  s.predictions = v.at("predictions").as_uint();
  s.hits = v.at("hits").as_uint();
  return s;
}

}  // namespace

RunStats run_stats_from_json(const Value& v) {
  RunStats r;
  r.protocol = v.at("protocol").as_string();
  r.app = v.at("app").as_string();
  r.num_procs = static_cast<int>(v.at("num_procs").as_int());
  r.finish_time = v.at("finish_time").as_uint();
  r.result_valid = v.at("result_valid").as_bool();
  for (const Value& t : v.at("per_proc").items()) {
    r.per_proc.push_back(breakdown_from_json(t));
  }
  const Value& d = v.at("diffs");
  r.diffs.diffs_created = d.at("diffs_created").as_uint();
  r.diffs.diff_bytes = d.at("diff_bytes").as_uint();
  r.diffs.merged_diffs = d.at("merged_diffs").as_uint();
  r.diffs.merged_result_count = d.at("merged_result_count").as_uint();
  r.diffs.merged_result_bytes = d.at("merged_result_bytes").as_uint();
  r.diffs.create_cycles = d.at("create_cycles").as_uint();
  r.diffs.create_hidden_cycles = d.at("create_hidden_cycles").as_uint();
  r.diffs.apply_cycles = d.at("apply_cycles").as_uint();
  r.diffs.apply_hidden_cycles = d.at("apply_hidden_cycles").as_uint();
  r.diffs.diffs_applied = d.at("diffs_applied").as_uint();
  const Value& f = v.at("faults");
  r.faults.read_faults = f.at("read_faults").as_uint();
  r.faults.write_faults = f.at("write_faults").as_uint();
  r.faults.cold_faults = f.at("cold_faults").as_uint();
  r.faults.faults_inside_cs = f.at("faults_inside_cs").as_uint();
  r.faults.fault_cycles = f.at("fault_cycles").as_uint();
  const Value& m = v.at("msgs");
  r.msgs.messages = m.at("messages").as_uint();
  r.msgs.bytes = m.at("bytes").as_uint();
  const Value& s = v.at("sync");
  r.sync.lock_acquires = s.at("lock_acquires").as_uint();
  r.sync.barrier_events = s.at("barrier_events").as_uint();
  r.sync.distinct_locks = s.at("distinct_locks").as_uint();
  // Optional: present only for runs that executed under fault injection.
  if (const Value* t = v.find("transport"); t != nullptr) {
    r.transport.data_sends = t->at("data_sends").as_uint();
    r.transport.retransmits = t->at("retransmits").as_uint();
    r.transport.timeouts = t->at("timeouts").as_uint();
    r.transport.acks = t->at("acks").as_uint();
    r.transport.dup_dropped = t->at("dup_dropped").as_uint();
    r.transport.held_ooo = t->at("held_ooo").as_uint();
    r.transport.drops_injected = t->at("drops_injected").as_uint();
    r.transport.dups_injected = t->at("dups_injected").as_uint();
    r.transport.delays_injected = t->at("delays_injected").as_uint();
    r.transport.reorders_injected = t->at("reorders_injected").as_uint();
    r.transport.paused_deliveries = t->at("paused_deliveries").as_uint();
    r.transport.push_sends = t->at("push_sends").as_uint();
    r.transport.push_drops = t->at("push_drops").as_uint();
    r.transport.push_timeouts = t->at("push_timeouts").as_uint();
    r.transport.push_fallbacks = t->at("push_fallbacks").as_uint();
  }
  // Optional: present only for runs whose crash schedule fired.
  if (const Value* rc = v.find("recovery"); rc != nullptr) {
    r.recovery.crash_drops = rc->at("crash_drops").as_uint();
    r.recovery.suspects = rc->at("suspects").as_uint();
    r.recovery.failovers = rc->at("failovers").as_uint();
    r.recovery.reelections = rc->at("reelections").as_uint();
    r.recovery.requeued_requests = rc->at("requeued_requests").as_uint();
    r.recovery.recovery_cycles = rc->at("recovery_cycles").as_uint();
  }
  // Optional: present only for traced runs ("overlap_ratio" is derived and
  // recomputed on the next serialization).
  if (const Value* o = v.find("overlap"); o != nullptr) {
    r.overlap.episodes = o->at("episodes").as_uint();
    r.overlap.diff_cycles = o->at("diff_cycles").as_uint();
    r.overlap.overlap_lock_wait = o->at("overlap_lock_wait").as_uint();
    r.overlap.overlap_barrier_wait = o->at("overlap_barrier_wait").as_uint();
    r.overlap.overlap_service = o->at("overlap_service").as_uint();
    r.overlap.overlap_any = o->at("overlap_any").as_uint();
    r.overlap.lock_wait_cycles = o->at("lock_wait_cycles").as_uint();
    r.overlap.barrier_wait_cycles = o->at("barrier_wait_cycles").as_uint();
    r.overlap.service_cycles = o->at("service_cycles").as_uint();
  }
  // Optional: present only when a lock strategy collected counters.
  if (const Value* lk = v.find("lockmgr"); lk != nullptr) {
    r.lockmgr.grants = lk->at("grants").as_uint();
    r.lockmgr.handoffs = lk->at("handoffs").as_uint();
    r.lockmgr.direct_handoffs = lk->at("direct_handoffs").as_uint();
    r.lockmgr.link_messages = lk->at("link_messages").as_uint();
    r.lockmgr.fallback_rels = lk->at("fallback_rels").as_uint();
    r.lockmgr.handoff_hops = lk->at("handoff_hops").as_uint();
    r.lockmgr.cross_cohort = lk->at("cross_cohort").as_uint();
    r.lockmgr.hier_skips = lk->at("hier_skips").as_uint();
    r.lockmgr.queue_depth_sum = lk->at("queue_depth_sum").as_uint();
    r.lockmgr.queue_depth_max = lk->at("queue_depth_max").as_uint();
  }
  return r;
}

std::map<LockId, aec::LapScores> lap_scores_from_json(const Value& v) {
  std::map<LockId, aec::LapScores> out;
  if (v.kind() == Value::Kind::kNull) return out;
  for (const Value& row : v.at("locks").items()) {
    aec::LapScores s;
    s.acquire_events = row.at("acquires").as_uint();
    s.lap = score_from_json(row.at("lap"));
    s.waitq = score_from_json(row.at("waitq"));
    s.waitq_affinity = score_from_json(row.at("waitq_affinity"));
    s.waitq_virtualq = score_from_json(row.at("waitq_virtualq"));
    out[static_cast<LockId>(row.at("lock").as_uint())] = s;
  }
  return out;
}

}  // namespace aecdsm::harness
