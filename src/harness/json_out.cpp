#include "harness/json_out.hpp"

#include <charconv>
#include <cstdio>
#include <cstring>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/check.hpp"
#include "harness/lap_report.hpp"

namespace aecdsm::harness::json {

namespace {

void write_double(std::ostream& os, double d) {
  // Shortest round-trip form, locale-independent: the document must be
  // byte-stable for artifact diffing.
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), d);
  os.write(buf, res.ptr - buf);
}

void write_indent(std::ostream& os, int indent) {
  os << '\n';
  for (int i = 0; i < indent; ++i) os << "  ";
}

}  // namespace

std::string quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

Value& Value::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  AECDSM_CHECK_MSG(kind_ == Kind::kObject, "json: operator[] on non-object");
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(key, Value());
  return members_.back().second;
}

Value& Value::append(Value v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  AECDSM_CHECK_MSG(kind_ == Kind::kArray, "json: append on non-array");
  items_.push_back(std::move(v));
  return items_.back();
}

std::size_t Value::size() const {
  if (kind_ == Kind::kArray) return items_.size();
  if (kind_ == Kind::kObject) return members_.size();
  return 0;
}

void Value::write(std::ostream& os, int indent) const {
  const bool pretty = indent >= 0;
  switch (kind_) {
    case Kind::kNull: os << "null"; break;
    case Kind::kBool: os << (bool_ ? "true" : "false"); break;
    case Kind::kInt: os << int_; break;
    case Kind::kUint: os << uint_; break;
    case Kind::kDouble: write_double(os, double_); break;
    case Kind::kString: os << quote(string_); break;
    case Kind::kArray: {
      if (items_.empty()) { os << "[]"; break; }
      os << '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) os << ',';
        if (pretty) write_indent(os, indent + 1);
        items_[i].write(os, pretty ? indent + 1 : -1);
      }
      if (pretty) write_indent(os, indent);
      os << ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) { os << "{}"; break; }
      os << '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) os << ',';
        if (pretty) write_indent(os, indent + 1);
        os << quote(members_[i].first) << (pretty ? ": " : ":");
        members_[i].second.write(os, pretty ? indent + 1 : -1);
      }
      if (pretty) write_indent(os, indent);
      os << '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  AECDSM_CHECK_MSG(v != nullptr, "json: missing member '" << key << "'");
  return *v;
}

bool Value::as_bool() const {
  AECDSM_CHECK_MSG(kind_ == Kind::kBool, "json: as_bool on non-bool");
  return bool_;
}

std::int64_t Value::as_int() const {
  if (kind_ == Kind::kInt) return int_;
  if (kind_ == Kind::kUint) {
    AECDSM_CHECK_MSG(uint_ <= static_cast<std::uint64_t>(
                                  std::numeric_limits<std::int64_t>::max()),
                     "json: as_int overflow on " << uint_);
    return static_cast<std::int64_t>(uint_);
  }
  AECDSM_CHECK_MSG(false, "json: as_int on non-integer");
}

std::uint64_t Value::as_uint() const {
  if (kind_ == Kind::kUint) return uint_;
  if (kind_ == Kind::kInt) {
    AECDSM_CHECK_MSG(int_ >= 0, "json: as_uint on negative " << int_);
    return static_cast<std::uint64_t>(int_);
  }
  AECDSM_CHECK_MSG(false, "json: as_uint on non-integer");
}

double Value::as_double() const {
  if (kind_ == Kind::kDouble) return double_;
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  if (kind_ == Kind::kUint) return static_cast<double>(uint_);
  AECDSM_CHECK_MSG(false, "json: as_double on non-number");
}

const std::string& Value::as_string() const {
  AECDSM_CHECK_MSG(kind_ == Kind::kString, "json: as_string on non-string");
  return string_;
}

const std::vector<Value>& Value::items() const {
  static const std::vector<Value> kEmpty;
  return kind_ == Kind::kArray ? items_ : kEmpty;
}

const std::vector<std::pair<std::string, Value>>& Value::entries() const {
  static const std::vector<std::pair<std::string, Value>> kEmpty;
  return kind_ == Kind::kObject ? members_ : kEmpty;
}

namespace {

/// Recursive-descent parser over the subset json::Value emits (which is the
/// full JSON grammar minus exotic number forms the simulator never writes).
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    AECDSM_CHECK_MSG(pos_ == text_.size(),
                     "json: trailing garbage at offset " << pos_);
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    AECDSM_CHECK_MSG(false, "json: " << what << " at offset " << pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (text_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  Value parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Value();
        fail("bad literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v = Value::object();
    if (peek() == '}') { ++pos_; return v; }
    for (;;) {
      std::string key = parse_string();
      expect(':');
      v[key] = parse_value();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  Value parse_array() {
    expect('[');
    Value v = Value::array();
    if (peek() == ']') { ++pos_; return v; }
    for (;;) {
      v.append(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') { out += c; continue; }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          const auto res =
              std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          if (res.ec != std::errc{} || res.ptr != text_.data() + pos_ + 4) {
            fail("bad \\u escape");
          }
          pos_ += 4;
          // The writer only emits \u00XX control escapes; reject the rest
          // rather than half-implement UTF-16 surrogates.
          if (code > 0x7F) fail("unsupported \\u escape beyond ASCII");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') { ++pos_; continue; }
      if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ == start) fail("expected a value");
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (is_double) {
      double d = 0.0;
      const auto res = std::from_chars(first, last, d);
      if (res.ec != std::errc{} || res.ptr != last) fail("bad number");
      return Value(d);
    }
    if (*first == '-') {
      std::int64_t i = 0;
      const auto res = std::from_chars(first, last, i);
      if (res.ec != std::errc{} || res.ptr != last) fail("bad number");
      return Value(i);
    }
    std::uint64_t u = 0;
    const auto res = std::from_chars(first, last, u);
    if (res.ec != std::errc{} || res.ptr != last) fail("bad number");
    return Value(u);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace aecdsm::harness::json

namespace aecdsm::harness {

using json::Value;

Value to_json(const TimeBreakdown& t) {
  Value v = Value::object();
  v["busy"] = Value(t.busy);
  v["data"] = Value(t.data);
  v["synch"] = Value(t.synch);
  v["ipc"] = Value(t.ipc);
  v["others_cache"] = Value(t.others_cache);
  v["others_tlb"] = Value(t.others_tlb);
  v["others_wb"] = Value(t.others_wb);
  v["others_misc"] = Value(t.others_misc);
  v["others"] = Value(t.others());
  v["total"] = Value(t.total());
  return v;
}

Value to_json(const DiffStats& d) {
  Value v = Value::object();
  v["diffs_created"] = Value(d.diffs_created);
  v["diff_bytes"] = Value(d.diff_bytes);
  v["merged_diffs"] = Value(d.merged_diffs);
  v["merged_result_count"] = Value(d.merged_result_count);
  v["merged_result_bytes"] = Value(d.merged_result_bytes);
  v["create_cycles"] = Value(d.create_cycles);
  v["create_hidden_cycles"] = Value(d.create_hidden_cycles);
  v["apply_cycles"] = Value(d.apply_cycles);
  v["apply_hidden_cycles"] = Value(d.apply_hidden_cycles);
  v["diffs_applied"] = Value(d.diffs_applied);
  return v;
}

Value to_json(const FaultStats& f) {
  Value v = Value::object();
  v["read_faults"] = Value(f.read_faults);
  v["write_faults"] = Value(f.write_faults);
  v["cold_faults"] = Value(f.cold_faults);
  v["faults_inside_cs"] = Value(f.faults_inside_cs);
  v["fault_cycles"] = Value(f.fault_cycles);
  return v;
}

Value to_json(const MsgStats& m) {
  Value v = Value::object();
  v["messages"] = Value(m.messages);
  v["bytes"] = Value(m.bytes);
  return v;
}

Value to_json(const SyncStats& s) {
  Value v = Value::object();
  v["lock_acquires"] = Value(s.lock_acquires);
  v["barrier_events"] = Value(s.barrier_events);
  v["distinct_locks"] = Value(s.distinct_locks);
  return v;
}

Value to_json(const TransportStats& t) {
  Value v = Value::object();
  v["data_sends"] = Value(t.data_sends);
  v["retransmits"] = Value(t.retransmits);
  v["timeouts"] = Value(t.timeouts);
  v["acks"] = Value(t.acks);
  v["dup_dropped"] = Value(t.dup_dropped);
  v["held_ooo"] = Value(t.held_ooo);
  v["drops_injected"] = Value(t.drops_injected);
  v["dups_injected"] = Value(t.dups_injected);
  v["delays_injected"] = Value(t.delays_injected);
  v["reorders_injected"] = Value(t.reorders_injected);
  v["paused_deliveries"] = Value(t.paused_deliveries);
  v["push_sends"] = Value(t.push_sends);
  v["push_drops"] = Value(t.push_drops);
  v["push_timeouts"] = Value(t.push_timeouts);
  v["push_fallbacks"] = Value(t.push_fallbacks);
  return v;
}

Value to_json(const RunStats& r) {
  Value v = Value::object();
  v["protocol"] = Value(r.protocol);
  v["app"] = Value(r.app);
  v["num_procs"] = Value(r.num_procs);
  v["finish_time"] = Value(r.finish_time);
  v["result_valid"] = Value(r.result_valid);
  v["aggregate"] = to_json(r.aggregate());
  Value per = Value::array();
  for (const TimeBreakdown& t : r.per_proc) per.append(to_json(t));
  v["per_proc"] = std::move(per);
  v["diffs"] = to_json(r.diffs);
  v["faults"] = to_json(r.faults);
  v["msgs"] = to_json(r.msgs);
  v["sync"] = to_json(r.sync);
  // Emitted only when fault injection actually ran, so fault-free documents
  // stay byte-identical to pre-fault-plane baselines.
  if (r.transport.any()) v["transport"] = to_json(r.transport);
  return v;
}

Value to_json(const SystemParams& p) {
  Value v = Value::object();
  v["num_procs"] = Value(p.num_procs);
  v["mesh_width"] = Value(p.mesh_width);
  v["page_bytes"] = Value(static_cast<std::uint64_t>(p.page_bytes));
  v["tlb_entries"] = Value(p.tlb_entries);
  v["tlb_fill_cycles"] = Value(p.tlb_fill_cycles);
  v["interrupt_cycles"] = Value(p.interrupt_cycles);
  v["message_overhead"] = Value(p.message_overhead);
  v["list_processing_per_elem"] = Value(p.list_processing_per_elem);
  v["cache_bytes"] = Value(static_cast<std::uint64_t>(p.cache_bytes));
  v["cache_line_bytes"] = Value(static_cast<std::uint64_t>(p.cache_line_bytes));
  v["write_buffer_entries"] = Value(p.write_buffer_entries);
  v["mem_setup_cycles"] = Value(p.mem_setup_cycles);
  v["mem_quarter_cycles_per_word"] = Value(p.mem_quarter_cycles_per_word);
  v["io_setup_cycles"] = Value(p.io_setup_cycles);
  v["io_cycles_per_word"] = Value(p.io_cycles_per_word);
  v["network_width_bits"] = Value(p.network_width_bits);
  v["switch_cycles"] = Value(p.switch_cycles);
  v["wire_cycles"] = Value(p.wire_cycles);
  v["twin_cycles_per_word"] = Value(p.twin_cycles_per_word);
  v["diff_cycles_per_word"] = Value(p.diff_cycles_per_word);
  v["update_set_size"] = Value(p.update_set_size);
  v["affinity_threshold"] = Value(p.affinity_threshold);
  v["quantum_cycles"] = Value(p.quantum_cycles);
  // The faults block appears only when fault injection is on. Default
  // (fault-free) params therefore serialize exactly as before the fault
  // plane existed: cellcache keys and committed baselines are unaffected,
  // while any active fault knob perturbs the content hash.
  if (p.faults.any()) {
    Value f = Value::object();
    f["drop_rate"] = Value(p.faults.drop_rate);
    f["dup_rate"] = Value(p.faults.dup_rate);
    f["delay_rate"] = Value(p.faults.delay_rate);
    f["delay_jitter_cycles"] = Value(p.faults.delay_jitter_cycles);
    f["reorder_rate"] = Value(p.faults.reorder_rate);
    f["reorder_window_cycles"] = Value(p.faults.reorder_window_cycles);
    f["pause_node"] = Value(p.faults.pause_node);
    f["pause_at_cycle"] = Value(p.faults.pause_at_cycle);
    f["pause_cycles"] = Value(p.faults.pause_cycles);
    f["seed"] = Value(p.faults.seed);
    f["retransmit_timeout_cycles"] = Value(p.faults.retransmit_timeout_cycles);
    f["retransmit_backoff_cap"] = Value(p.faults.retransmit_backoff_cap);
    f["push_timeout_cycles"] = Value(p.faults.push_timeout_cycles);
    v["faults"] = std::move(f);
  }
  return v;
}

namespace {

Value score_json(const aec::PredictorScore& s) {
  Value v = Value::object();
  v["predictions"] = Value(s.predictions);
  v["hits"] = Value(s.hits);
  v["rate"] = Value(s.rate());
  return v;
}

}  // namespace

Value lap_json(const ExperimentResult& r) {
  const auto scores = lap_scores_of(r);
  if (scores.empty()) return Value();
  Value v = Value::object();
  aec::LapScores total;
  Value locks = Value::array();
  for (const auto& [lock, s] : scores) {
    Value row = Value::object();
    row["lock"] = Value(static_cast<std::uint64_t>(lock));
    row["acquires"] = Value(s.acquire_events);
    row["lap"] = score_json(s.lap);
    row["waitq"] = score_json(s.waitq);
    row["waitq_affinity"] = score_json(s.waitq_affinity);
    row["waitq_virtualq"] = score_json(s.waitq_virtualq);
    locks.append(std::move(row));
    total.acquire_events += s.acquire_events;
    auto add = [](aec::PredictorScore& into, const aec::PredictorScore& from) {
      into.predictions += from.predictions;
      into.hits += from.hits;
    };
    add(total.lap, s.lap);
    add(total.waitq, s.waitq);
    add(total.waitq_affinity, s.waitq_affinity);
    add(total.waitq_virtualq, s.waitq_virtualq);
  }
  v["acquires"] = Value(total.acquire_events);
  v["lap"] = score_json(total.lap);
  v["waitq"] = score_json(total.waitq);
  v["waitq_affinity"] = score_json(total.waitq_affinity);
  v["waitq_virtualq"] = score_json(total.waitq_virtualq);
  v["locks"] = std::move(locks);
  return v;
}

namespace {

TimeBreakdown breakdown_from_json(const Value& v) {
  TimeBreakdown t;
  t.busy = v.at("busy").as_uint();
  t.data = v.at("data").as_uint();
  t.synch = v.at("synch").as_uint();
  t.ipc = v.at("ipc").as_uint();
  t.others_cache = v.at("others_cache").as_uint();
  t.others_tlb = v.at("others_tlb").as_uint();
  t.others_wb = v.at("others_wb").as_uint();
  t.others_misc = v.at("others_misc").as_uint();
  return t;
}

aec::PredictorScore score_from_json(const Value& v) {
  aec::PredictorScore s;
  s.predictions = v.at("predictions").as_uint();
  s.hits = v.at("hits").as_uint();
  return s;
}

}  // namespace

RunStats run_stats_from_json(const Value& v) {
  RunStats r;
  r.protocol = v.at("protocol").as_string();
  r.app = v.at("app").as_string();
  r.num_procs = static_cast<int>(v.at("num_procs").as_int());
  r.finish_time = v.at("finish_time").as_uint();
  r.result_valid = v.at("result_valid").as_bool();
  for (const Value& t : v.at("per_proc").items()) {
    r.per_proc.push_back(breakdown_from_json(t));
  }
  const Value& d = v.at("diffs");
  r.diffs.diffs_created = d.at("diffs_created").as_uint();
  r.diffs.diff_bytes = d.at("diff_bytes").as_uint();
  r.diffs.merged_diffs = d.at("merged_diffs").as_uint();
  r.diffs.merged_result_count = d.at("merged_result_count").as_uint();
  r.diffs.merged_result_bytes = d.at("merged_result_bytes").as_uint();
  r.diffs.create_cycles = d.at("create_cycles").as_uint();
  r.diffs.create_hidden_cycles = d.at("create_hidden_cycles").as_uint();
  r.diffs.apply_cycles = d.at("apply_cycles").as_uint();
  r.diffs.apply_hidden_cycles = d.at("apply_hidden_cycles").as_uint();
  r.diffs.diffs_applied = d.at("diffs_applied").as_uint();
  const Value& f = v.at("faults");
  r.faults.read_faults = f.at("read_faults").as_uint();
  r.faults.write_faults = f.at("write_faults").as_uint();
  r.faults.cold_faults = f.at("cold_faults").as_uint();
  r.faults.faults_inside_cs = f.at("faults_inside_cs").as_uint();
  r.faults.fault_cycles = f.at("fault_cycles").as_uint();
  const Value& m = v.at("msgs");
  r.msgs.messages = m.at("messages").as_uint();
  r.msgs.bytes = m.at("bytes").as_uint();
  const Value& s = v.at("sync");
  r.sync.lock_acquires = s.at("lock_acquires").as_uint();
  r.sync.barrier_events = s.at("barrier_events").as_uint();
  r.sync.distinct_locks = s.at("distinct_locks").as_uint();
  // Optional: present only for runs that executed under fault injection.
  if (const Value* t = v.find("transport"); t != nullptr) {
    r.transport.data_sends = t->at("data_sends").as_uint();
    r.transport.retransmits = t->at("retransmits").as_uint();
    r.transport.timeouts = t->at("timeouts").as_uint();
    r.transport.acks = t->at("acks").as_uint();
    r.transport.dup_dropped = t->at("dup_dropped").as_uint();
    r.transport.held_ooo = t->at("held_ooo").as_uint();
    r.transport.drops_injected = t->at("drops_injected").as_uint();
    r.transport.dups_injected = t->at("dups_injected").as_uint();
    r.transport.delays_injected = t->at("delays_injected").as_uint();
    r.transport.reorders_injected = t->at("reorders_injected").as_uint();
    r.transport.paused_deliveries = t->at("paused_deliveries").as_uint();
    r.transport.push_sends = t->at("push_sends").as_uint();
    r.transport.push_drops = t->at("push_drops").as_uint();
    r.transport.push_timeouts = t->at("push_timeouts").as_uint();
    r.transport.push_fallbacks = t->at("push_fallbacks").as_uint();
  }
  return r;
}

std::map<LockId, aec::LapScores> lap_scores_from_json(const Value& v) {
  std::map<LockId, aec::LapScores> out;
  if (v.kind() == Value::Kind::kNull) return out;
  for (const Value& row : v.at("locks").items()) {
    aec::LapScores s;
    s.acquire_events = row.at("acquires").as_uint();
    s.lap = score_from_json(row.at("lap"));
    s.waitq = score_from_json(row.at("waitq"));
    s.waitq_affinity = score_from_json(row.at("waitq_affinity"));
    s.waitq_virtualq = score_from_json(row.at("waitq_virtualq"));
    out[static_cast<LockId>(row.at("lock").as_uint())] = s;
  }
  return out;
}

}  // namespace aecdsm::harness
