#include "harness/json_out.hpp"

#include <charconv>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/check.hpp"
#include "harness/lap_report.hpp"

namespace aecdsm::harness::json {

namespace {

void write_double(std::ostream& os, double d) {
  // Shortest round-trip form, locale-independent: the document must be
  // byte-stable for artifact diffing.
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), d);
  os.write(buf, res.ptr - buf);
}

void write_indent(std::ostream& os, int indent) {
  os << '\n';
  for (int i = 0; i < indent; ++i) os << "  ";
}

}  // namespace

std::string quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

Value& Value::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  AECDSM_CHECK_MSG(kind_ == Kind::kObject, "json: operator[] on non-object");
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(key, Value());
  return members_.back().second;
}

Value& Value::append(Value v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  AECDSM_CHECK_MSG(kind_ == Kind::kArray, "json: append on non-array");
  items_.push_back(std::move(v));
  return items_.back();
}

std::size_t Value::size() const {
  if (kind_ == Kind::kArray) return items_.size();
  if (kind_ == Kind::kObject) return members_.size();
  return 0;
}

void Value::write(std::ostream& os, int indent) const {
  const bool pretty = indent >= 0;
  switch (kind_) {
    case Kind::kNull: os << "null"; break;
    case Kind::kBool: os << (bool_ ? "true" : "false"); break;
    case Kind::kInt: os << int_; break;
    case Kind::kUint: os << uint_; break;
    case Kind::kDouble: write_double(os, double_); break;
    case Kind::kString: os << quote(string_); break;
    case Kind::kArray: {
      if (items_.empty()) { os << "[]"; break; }
      os << '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) os << ',';
        if (pretty) write_indent(os, indent + 1);
        items_[i].write(os, pretty ? indent + 1 : -1);
      }
      if (pretty) write_indent(os, indent);
      os << ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) { os << "{}"; break; }
      os << '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) os << ',';
        if (pretty) write_indent(os, indent + 1);
        os << quote(members_[i].first) << (pretty ? ": " : ":");
        members_[i].second.write(os, pretty ? indent + 1 : -1);
      }
      if (pretty) write_indent(os, indent);
      os << '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

}  // namespace aecdsm::harness::json

namespace aecdsm::harness {

using json::Value;

Value to_json(const TimeBreakdown& t) {
  Value v = Value::object();
  v["busy"] = Value(t.busy);
  v["data"] = Value(t.data);
  v["synch"] = Value(t.synch);
  v["ipc"] = Value(t.ipc);
  v["others_cache"] = Value(t.others_cache);
  v["others_tlb"] = Value(t.others_tlb);
  v["others_wb"] = Value(t.others_wb);
  v["others_misc"] = Value(t.others_misc);
  v["others"] = Value(t.others());
  v["total"] = Value(t.total());
  return v;
}

Value to_json(const DiffStats& d) {
  Value v = Value::object();
  v["diffs_created"] = Value(d.diffs_created);
  v["diff_bytes"] = Value(d.diff_bytes);
  v["merged_diffs"] = Value(d.merged_diffs);
  v["merged_result_count"] = Value(d.merged_result_count);
  v["merged_result_bytes"] = Value(d.merged_result_bytes);
  v["create_cycles"] = Value(d.create_cycles);
  v["create_hidden_cycles"] = Value(d.create_hidden_cycles);
  v["apply_cycles"] = Value(d.apply_cycles);
  v["apply_hidden_cycles"] = Value(d.apply_hidden_cycles);
  v["diffs_applied"] = Value(d.diffs_applied);
  return v;
}

Value to_json(const FaultStats& f) {
  Value v = Value::object();
  v["read_faults"] = Value(f.read_faults);
  v["write_faults"] = Value(f.write_faults);
  v["cold_faults"] = Value(f.cold_faults);
  v["faults_inside_cs"] = Value(f.faults_inside_cs);
  v["fault_cycles"] = Value(f.fault_cycles);
  return v;
}

Value to_json(const MsgStats& m) {
  Value v = Value::object();
  v["messages"] = Value(m.messages);
  v["bytes"] = Value(m.bytes);
  return v;
}

Value to_json(const SyncStats& s) {
  Value v = Value::object();
  v["lock_acquires"] = Value(s.lock_acquires);
  v["barrier_events"] = Value(s.barrier_events);
  v["distinct_locks"] = Value(s.distinct_locks);
  return v;
}

Value to_json(const RunStats& r) {
  Value v = Value::object();
  v["protocol"] = Value(r.protocol);
  v["app"] = Value(r.app);
  v["num_procs"] = Value(r.num_procs);
  v["finish_time"] = Value(r.finish_time);
  v["result_valid"] = Value(r.result_valid);
  v["aggregate"] = to_json(r.aggregate());
  Value per = Value::array();
  for (const TimeBreakdown& t : r.per_proc) per.append(to_json(t));
  v["per_proc"] = std::move(per);
  v["diffs"] = to_json(r.diffs);
  v["faults"] = to_json(r.faults);
  v["msgs"] = to_json(r.msgs);
  v["sync"] = to_json(r.sync);
  return v;
}

Value to_json(const SystemParams& p) {
  Value v = Value::object();
  v["num_procs"] = Value(p.num_procs);
  v["mesh_width"] = Value(p.mesh_width);
  v["page_bytes"] = Value(static_cast<std::uint64_t>(p.page_bytes));
  v["tlb_entries"] = Value(p.tlb_entries);
  v["tlb_fill_cycles"] = Value(p.tlb_fill_cycles);
  v["interrupt_cycles"] = Value(p.interrupt_cycles);
  v["message_overhead"] = Value(p.message_overhead);
  v["list_processing_per_elem"] = Value(p.list_processing_per_elem);
  v["cache_bytes"] = Value(static_cast<std::uint64_t>(p.cache_bytes));
  v["cache_line_bytes"] = Value(static_cast<std::uint64_t>(p.cache_line_bytes));
  v["write_buffer_entries"] = Value(p.write_buffer_entries);
  v["mem_setup_cycles"] = Value(p.mem_setup_cycles);
  v["mem_quarter_cycles_per_word"] = Value(p.mem_quarter_cycles_per_word);
  v["io_setup_cycles"] = Value(p.io_setup_cycles);
  v["io_cycles_per_word"] = Value(p.io_cycles_per_word);
  v["network_width_bits"] = Value(p.network_width_bits);
  v["switch_cycles"] = Value(p.switch_cycles);
  v["wire_cycles"] = Value(p.wire_cycles);
  v["twin_cycles_per_word"] = Value(p.twin_cycles_per_word);
  v["diff_cycles_per_word"] = Value(p.diff_cycles_per_word);
  v["update_set_size"] = Value(p.update_set_size);
  v["affinity_threshold"] = Value(p.affinity_threshold);
  v["quantum_cycles"] = Value(p.quantum_cycles);
  return v;
}

namespace {

Value score_json(const aec::PredictorScore& s) {
  Value v = Value::object();
  v["predictions"] = Value(s.predictions);
  v["hits"] = Value(s.hits);
  v["rate"] = Value(s.rate());
  return v;
}

}  // namespace

Value lap_json(const ExperimentResult& r) {
  const auto scores = lap_scores_of(r);
  if (scores.empty()) return Value();
  Value v = Value::object();
  aec::LapScores total;
  Value locks = Value::array();
  for (const auto& [lock, s] : scores) {
    Value row = Value::object();
    row["lock"] = Value(static_cast<std::uint64_t>(lock));
    row["acquires"] = Value(s.acquire_events);
    row["lap"] = score_json(s.lap);
    row["waitq"] = score_json(s.waitq);
    row["waitq_affinity"] = score_json(s.waitq_affinity);
    row["waitq_virtualq"] = score_json(s.waitq_virtualq);
    locks.append(std::move(row));
    total.acquire_events += s.acquire_events;
    auto add = [](aec::PredictorScore& into, const aec::PredictorScore& from) {
      into.predictions += from.predictions;
      into.hits += from.hits;
    };
    add(total.lap, s.lap);
    add(total.waitq, s.waitq);
    add(total.waitq_affinity, s.waitq_affinity);
    add(total.waitq_virtualq, s.waitq_virtualq);
  }
  v["acquires"] = Value(total.acquire_events);
  v["lap"] = score_json(total.lap);
  v["waitq"] = score_json(total.waitq);
  v["waitq_affinity"] = score_json(total.waitq_affinity);
  v["waitq_virtualq"] = score_json(total.waitq_virtualq);
  v["locks"] = std::move(locks);
  return v;
}

}  // namespace aecdsm::harness
