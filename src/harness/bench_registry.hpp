// Registry of the reproduced tables/figures. Every bench driver file
// defines its plan builder and report callback, registers them under the
// binary's name, and (when compiled standalone) delegates main() to
// bench_main(). The bench_all mega-sweep binary compiles all driver files
// with AECDSM_BENCH_ALL defined — which strips their main()s — and runs the
// union of every registered plan in one deduplicated batch.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "harness/batch.hpp"

namespace aecdsm::harness {

/// One reproduced table/figure: the declarative plan plus the report that
/// prints the paper-style rows from the finished cells.
struct BenchDef {
  std::string name;  ///< binary name and default "<name>.json" artifact
  int order = 0;     ///< presentation order in bench_all (paper order)
  std::function<ExperimentPlan()> plan;
  std::function<void(BenchReport&)> report;
  /// Whether bench_all folds this bench into its mega-sweep. Benches whose
  /// cells deliberately diverge from the paper testbed (e.g. the fault
  /// injection sweep) opt out so the committed bench_all baseline — and its
  /// byte-identity gate — is unaffected by their presence.
  bool in_bench_all = true;
};

/// Called by each driver file's namespace-scope registrar; returns true so
/// registration can initialize a constant.
bool register_bench(BenchDef def);

/// Every bench compiled into this binary, sorted by (order, name) so the
/// sequence is independent of link order.
std::vector<const BenchDef*> registered_benches();

/// main() body for a standalone driver: run the registered bench `name`
/// through run_bench (shared CLI, batch execution, report, JSON artifact).
int bench_main(const std::string& name, int argc, char** argv);

}  // namespace aecdsm::harness
