#include "harness/threadpool.hpp"

#include <cstdlib>
#include <string>

namespace aecdsm::harness {

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) return;  // cancelled pool: drop instead of queueing
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_all() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return in_flight_ == 0; });
}

void ThreadPool::request_stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    // Queued tasks are counted in in_flight_; cancelling them must release
    // wait_all() once the currently executing tasks finish.
    in_flight_ -= queue_.size();
    queue_.clear();
    if (in_flight_ == 0) idle_cv_.notify_all();
  }
  work_cv_.notify_all();
}

bool ThreadPool::stop_requested() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stop_;
}

void ThreadPool::worker_main() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lk(mu_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

int ThreadPool::resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  if (const char* env = std::getenv("AECDSM_JOBS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace aecdsm::harness
