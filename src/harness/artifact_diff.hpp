// Cross-run diffing of benchmark JSON artifacts — the regression gate.
//
// Loads two documents written by the batch runner ("aecdsm-batch-v1") or
// the bench_all mega-sweep ("aecdsm-bench-all-v1"), aligns their cells by
// content hash over the cell's simulation inputs (protocol, app, scale,
// seed, the full params block) and falls back to (label, protocol, app,
// scale, seed) identity when the hashes differ — e.g. when a SystemParams
// field was added between the runs — then reports per-cell and aggregate
// deltas for finish time, message/data traffic, diff counts and LAP
// success rates against per-metric relative tolerances. The simulator is
// deterministic, so the default tolerance is exact (0).
//
// bench/bench_diff.cpp wraps this into the CLI that CI runs against the
// committed baseline in bench/baselines/.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/json_out.hpp"

namespace aecdsm::harness::artifact_diff {

/// Malformed or unsupported artifact input: missing/unknown schema,
/// unreadable file, structurally broken cell. Distinct from SimError so
/// the CLI can report it as a usage/input failure (exit 2) rather than a
/// regression (exit 1).
class ArtifactError : public std::runtime_error {
 public:
  explicit ArtifactError(const std::string& what) : std::runtime_error(what) {}
};

/// Document schemas bench_diff understands.
inline constexpr const char* kBatchSchema = "aecdsm-batch-v1";
inline constexpr const char* kBenchAllSchema = "aecdsm-bench-all-v1";
/// Schema of the machine-readable diff document bench_diff --json emits.
inline constexpr const char* kDiffSchema = "aecdsm-bench-diff-v1";

/// Top-level "schema" member of a parsed document. ArtifactError (with
/// `what` naming the artifact) when the member is missing or not a string.
std::string schema_of(const json::Value& doc, const std::string& what);

/// One comparable cell extracted from an artifact.
struct Cell {
  /// Bench name for cells of a bench-all document (alignment never crosses
  /// scopes); empty for a plain batch document.
  std::string scope;
  std::string label;
  std::string protocol;
  std::string app;
  std::string scale;
  std::uint64_t seed = 0;
  /// FNV-1a 64 over the simulation inputs (protocol, app, scale, seed,
  /// compact params JSON) — the primary alignment key, same spirit as
  /// CellCache::cell_hash but computable from the artifact alone.
  std::string content_hash;
  /// Metric name -> value, in reporting order. LAP metrics are absent for
  /// runs whose protocol records no scores.
  std::vector<std::pair<std::string, double>> metrics;

  /// "scope:label" (or just label), the row name in reports.
  std::string display() const;
  /// (scope, label, protocol, app, scale, seed) fallback alignment key.
  std::string identity() const;
};

/// A flattened, comparable view of one artifact.
struct Document {
  std::string schema;
  std::vector<Cell> cells;
};

/// Flatten a parsed artifact. A bench-all document contributes every
/// nested bench's cells with the bench name as their scope. ArtifactError
/// on a missing/unknown schema or a structurally broken cell; `what` names
/// the artifact in error messages (typically the file path).
Document load(const json::Value& doc, const std::string& what);

/// Read + parse + flatten a file. ArtifactError on any failure.
Document load_file(const std::string& path);

/// Per-metric relative tolerance rules. Unlisted metrics use the default,
/// which is 0 (exact) unless overridden via the "*" metric.
class Tolerances {
 public:
  /// Parse "0.5%" (percentage) or "0.005" (ratio) into a ratio.
  /// ArtifactError on a malformed or negative value.
  static double parse_value(const std::string& text);

  /// Parse a "metric=value" CLI spec; metric "*" sets the default.
  void add_spec(const std::string& spec);

  /// Load an "aecdsm-tolerances-v1" defaults file: an object member
  /// "tolerances" mapping metric names to "0.5%"-style strings or ratios.
  void load_file(const std::string& path);

  void set(const std::string& metric, double ratio);
  double for_metric(const std::string& metric) const;

 private:
  std::map<std::string, double> per_metric_;
  double default_ = 0.0;
};

/// One metric compared between two aligned cells (or two aggregates).
struct MetricDelta {
  std::string metric;
  double before = 0.0;
  double after = 0.0;
  double tolerance = 0.0;  ///< relative, from the Tolerances rules
  bool exceeds = false;    ///< |after-before| > tolerance * |before|

  double delta() const { return after - before; }
  /// Relative delta; +/-inf when before == 0 and after != 0.
  double rel() const;
};

/// A cell present in both documents with at least one metric changed.
struct CellDiff {
  Cell cell;                  ///< identity fields from the *new* document
  bool matched_by_hash = false;  ///< false: aligned by the identity fallback
  std::vector<MetricDelta> deltas;  ///< changed metrics only

  bool exceeds() const;
};

/// Full result of diffing two documents.
struct DiffResult {
  bool subset = false;        ///< produced by a subset-mode diff
  std::size_t cells_before = 0;
  std::size_t cells_after = 0;
  std::size_t compared = 0;   ///< aligned pairs
  std::size_t identical = 0;  ///< aligned pairs with every metric equal
  /// Subset mode only: new-document cells with no content-hash match in the
  /// old document, silently skipped instead of reported as added.
  std::size_t ignored = 0;
  std::vector<CellDiff> changed;
  std::vector<Cell> added;    ///< only in the new document
  std::vector<Cell> removed;  ///< only in the old document
  /// Each metric summed over the aligned pairs, gated by the same rules.
  std::vector<MetricDelta> aggregate;

  /// True when any per-cell metric exceeds its tolerance or any cell was
  /// added or removed — the regression-gate verdict. (Subset mode never
  /// populates added/removed, so only changed cells can fail it.)
  bool gate_failed() const;
};

/// Align and compare. Cells are matched within their scope, first by
/// content hash, then by identity, each consumed first-come first-served
/// so duplicate cells pair up in document order.
///
/// `subset` relaxes the gate to "every cell both documents share must
/// match": alignment is by content hash alone — across scopes, so a plain
/// batch artifact can be held against the committed bench-all baseline —
/// and one-sided cells are counted in `ignored` / implied by `compared`
/// instead of failing the gate. This is the policy-matrix CI mode: legacy
/// presets byte-compare against the baseline while hybrid-only cells,
/// absent from it by design, pass through.
DiffResult diff(const Document& before, const Document& after,
                const Tolerances& tol, bool subset = false);

/// Machine-readable diff document (schema kDiffSchema, "version" 1).
json::Value to_json(const DiffResult& r);

/// Human-readable report: changed cells, added/removed, aggregate table,
/// one-line summary.
void print_human(std::ostream& os, const DiffResult& r);

/// Process exit code for a finished diff: 0 clean, 1 gate failed.
int gate_exit_code(const DiffResult& r);

}  // namespace aecdsm::harness::artifact_diff
