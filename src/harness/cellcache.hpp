// Content-addressed cell result cache for the batch experiment runner.
//
// A plan cell is a pure function of its inputs: (protocol, app, scale, the
// full SystemParams block, seed) plus the simulator version. CellCache
// hashes those inputs into a stable key and memoizes the finished cell's
// JSON blob (RunStats + per-lock LAP scores) on disk, so re-running a sweep
// only simulates cells whose inputs actually changed. A cache hit rebuilds
// an ExperimentResult that serializes byte-identically to the fresh run —
// the determinism tests assert this — which keeps warm artifacts diffable
// against cold ones.
//
// The cache directory also holds per-cell host wall-clock telemetry
// (outside the deterministic JSON documents), which BatchRunner feeds back
// as a longest-processing-time-first schedule on subsequent runs.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "harness/runner.hpp"

namespace aecdsm::harness {

struct ExperimentCell;  // defined in harness/batch.hpp

/// Salt folded into every cell hash. Bump whenever a change alters simulated
/// behavior (protocol logic, cost model, app traces); cached blobs from the
/// previous version then miss instead of serving stale results.
inline constexpr const char* kSimVersionSalt = "aecdsm-sim-1";

/// Host wall-clock observations per cell hash, in microseconds.
using TelemetryMap = std::map<std::string, std::uint64_t>;

class CellCache {
 public:
  /// Resolve the cache location: an explicit `dir` wins, then the
  /// AECDSM_CACHE_DIR environment variable, then XDG_CACHE_HOME/aecdsm,
  /// then ~/.cache/aecdsm.
  static std::string resolve_dir(const std::string& dir);

  /// Canonical key string of a cell: every input that determines the
  /// simulation outcome plus kSimVersionSalt. Stored verbatim in the blob
  /// and re-checked on load, so a hash collision degrades to a miss.
  static std::string cell_key(const ExperimentCell& cell);

  /// 16-hex-digit FNV-1a 64 of cell_key(); the blob's file name.
  static std::string cell_hash(const ExperimentCell& cell);

  /// Opens (and creates if needed) the cache at `dir`.
  explicit CellCache(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Fetch a finished cell. nullopt on miss, on a key mismatch, or on any
  /// unreadable/corrupt blob (the cache never fails a run — worst case the
  /// cell is simulated again). A corrupt or truncated blob is additionally
  /// warned about on stderr and deleted, so it cannot shadow the slot.
  std::optional<ExperimentResult> load(const ExperimentCell& cell) const;

  /// Memoize a finished cell (atomic write-then-rename).
  void store(const ExperimentCell& cell, const ExperimentResult& result) const;

  /// Wall-clock telemetry of previous runs; empty when none recorded.
  TelemetryMap load_telemetry() const;

  /// Engine events/sec of previous fresh simulations (an additive
  /// "events_per_sec" section of the same telemetry document — files
  /// written before the section existed simply have none).
  TelemetryMap load_events_telemetry() const;

  /// Fold fresh per-cell durations (and, when non-empty, engine events/sec)
  /// into the telemetry file (last observation wins per cell).
  void merge_telemetry(const TelemetryMap& updates,
                       const TelemetryMap& events_per_sec = {}) const;

 private:
  std::string blob_path(const std::string& hash) const;
  std::string telemetry_path() const;
  static void drop_corrupt(const std::string& path, const std::string& why);

  std::string dir_;
};

}  // namespace aecdsm::harness
