#include "harness/cellcache.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "apps/synthetic/workload.hpp"
#include "common/check.hpp"
#include "harness/batch.hpp"
#include "harness/json_out.hpp"
#include "policy/policy.hpp"

namespace aecdsm::harness {

namespace fs = std::filesystem;

namespace {

constexpr const char* kCellSchema = "aecdsm-cell-v1";
constexpr const char* kTelemetrySchema = "aecdsm-telemetry-v1";

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Write via a temp file and rename, so readers sharing a cache directory
/// never observe a torn blob. The temp name is unique per process AND per
/// call: two threads of one process (e.g. concurrent BatchRunners in the
/// tests) storing the same blob must not scribble into one temp file.
void write_file_atomic(const std::string& path, const std::string& contents) {
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary);
    AECDSM_CHECK_MSG(out.good(), "cellcache: cannot open " << tmp);
    out << contents;
    AECDSM_CHECK_MSG(out.good(), "cellcache: short write to " << tmp);
  }
  fs::rename(tmp, path);
}

/// Advisory exclusive lock on `path` (created if missing) held for the
/// object's lifetime. Serializes the telemetry read-modify-write across
/// processes and threads; a failed open degrades to lockless operation (the
/// rename-based writes are still torn-free, merges may merely lose races).
class FileLock {
 public:
  explicit FileLock(const std::string& path)
      : fd_(::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644)) {
    if (fd_ >= 0) ::flock(fd_, LOCK_EX);
  }
  ~FileLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

 private:
  int fd_;
};

}  // namespace

std::string CellCache::resolve_dir(const std::string& dir) {
  if (!dir.empty()) return dir;
  if (const char* env = std::getenv("AECDSM_CACHE_DIR"); env != nullptr && *env) {
    return env;
  }
  if (const char* xdg = std::getenv("XDG_CACHE_HOME"); xdg != nullptr && *xdg) {
    return std::string(xdg) + "/aecdsm";
  }
  if (const char* home = std::getenv("HOME"); home != nullptr && *home) {
    return std::string(home) + "/.cache/aecdsm";
  }
  return ".aecdsm-cache";  // last resort: relative to the working directory
}

std::string CellCache::cell_key(const ExperimentCell& cell) {
  // The params block is folded in via its canonical compact JSON form, so
  // any SystemParams field added later automatically perturbs the key.
  // Likewise the resolved policy axes: two registered policies sharing a
  // name but differing in any axis (or a preset whose definition changes)
  // can never alias a cached cell.
  //
  // Synthetic `syn:` app names are folded in as the spec's canonical
  // fingerprint, so spellings of one workload (reordered keys, elided
  // defaults) alias the same cached cell. A malformed spec falls back to
  // its raw spelling here — make_app will surface the parse error.
  std::string app = cell.app;
  if (apps::synthetic::WorkloadSpec::is_spec_name(app)) {
    try {
      app = apps::synthetic::WorkloadSpec::parse(app).fingerprint();
    } catch (const SimError&) {
    }
  }
  std::ostringstream os;
  os << kSimVersionSalt << '|' << cell.protocol << '|' << app << '|'
     << (cell.scale == apps::Scale::kSmall ? "small" : "default") << '|' << cell.seed
     << '|' << to_json(cell.params).dump(-1);
  if (const policy::ConsistencyPolicy* pol = policy::find_policy(cell.protocol)) {
    os << '|' << pol->cache_key();
  } else {
    os << "|unregistered";
  }
  return os.str();
}

std::string CellCache::cell_hash(const ExperimentCell& cell) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fnv1a64(cell_key(cell))));
  return buf;
}

CellCache::CellCache(std::string dir) : dir_(std::move(dir)) {
  fs::create_directories(fs::path(dir_) / "cells");
}

std::string CellCache::blob_path(const std::string& hash) const {
  return (fs::path(dir_) / "cells" / (hash + ".json")).string();
}

std::string CellCache::telemetry_path() const {
  return (fs::path(dir_) / "telemetry.json").string();
}

std::optional<ExperimentResult> CellCache::load(const ExperimentCell& cell) const {
  const std::string path = blob_path(cell_hash(cell));
  const std::string text = read_file(path);
  if (text.empty()) {
    // read_file returns "" both for a missing blob (plain miss) and for an
    // existing-but-empty one (a corrupt artifact of a killed writer).
    std::error_code ec;
    if (fs::exists(path, ec)) drop_corrupt(path, "empty blob");
    return std::nullopt;
  }
  try {
    const json::Value blob = json::Value::parse(text);
    if (blob.at("schema").as_string() != kCellSchema) return std::nullopt;
    if (blob.at("key").as_string() != cell_key(cell)) return std::nullopt;
    ExperimentResult result;
    result.stats = run_stats_from_json(blob.at("stats"));
    result.lap_scores = lap_scores_from_json(blob.at("lap"));
    result.from_cache = true;
    return result;
  } catch (const SimError& e) {
    // Corrupt or truncated blob: warn once, delete it so the fresh result
    // can take its place, and treat the lookup as a miss. (A schema or key
    // mismatch above is a valid blob from another version — left alone.)
    drop_corrupt(path, e.what());
    return std::nullopt;
  }
}

void CellCache::drop_corrupt(const std::string& path, const std::string& why) {
  std::fprintf(stderr, "[cache] dropping corrupt blob %s (%s)\n", path.c_str(),
               why.c_str());
  std::error_code ec;
  fs::remove(path, ec);  // best effort; store() will overwrite anyway
}

void CellCache::store(const ExperimentCell& cell, const ExperimentResult& result) const {
  json::Value blob = json::Value::object();
  blob["schema"] = json::Value(kCellSchema);
  blob["key"] = json::Value(cell_key(cell));
  blob["stats"] = to_json(result.stats);
  blob["lap"] = lap_json(result);
  write_file_atomic(blob_path(cell_hash(cell)), blob.dump() + "\n");
}

TelemetryMap CellCache::load_telemetry() const {
  TelemetryMap out;
  const std::string text = read_file(telemetry_path());
  if (text.empty()) return out;
  try {
    const json::Value doc = json::Value::parse(text);
    if (doc.at("schema").as_string() != kTelemetrySchema) return out;
    for (const auto& [hash, micros] : doc.at("cells").entries()) {
      out[hash] = micros.as_uint();
    }
  } catch (const SimError&) {
    out.clear();  // corrupt telemetry only costs scheduling quality
  }
  return out;
}

TelemetryMap CellCache::load_events_telemetry() const {
  TelemetryMap out;
  const std::string text = read_file(telemetry_path());
  if (text.empty()) return out;
  try {
    const json::Value doc = json::Value::parse(text);
    if (doc.at("schema").as_string() != kTelemetrySchema) return out;
    const json::Value* eps_obj = doc.find("events_per_sec");
    if (eps_obj == nullptr) return out;  // pre-section file
    for (const auto& [hash, eps] : eps_obj->entries()) {
      out[hash] = eps.as_uint();
    }
  } catch (const SimError&) {
    out.clear();
  }
  return out;
}

void CellCache::merge_telemetry(const TelemetryMap& updates,
                                const TelemetryMap& events_per_sec) const {
  if (updates.empty() && events_per_sec.empty()) return;
  // Concurrent batch runs merge into the same telemetry.json; without the
  // lock two read-modify-write cycles could interleave and silently drop
  // one run's durations.
  FileLock lock((fs::path(dir_) / "telemetry.lock").string());
  TelemetryMap merged = load_telemetry();
  for (const auto& [hash, micros] : updates) merged[hash] = micros;
  TelemetryMap merged_eps = load_events_telemetry();
  for (const auto& [hash, eps] : events_per_sec) merged_eps[hash] = eps;
  json::Value doc = json::Value::object();
  doc["schema"] = json::Value(kTelemetrySchema);
  json::Value cells = json::Value::object();
  for (const auto& [hash, micros] : merged) cells[hash] = json::Value(micros);
  doc["cells"] = std::move(cells);
  if (!merged_eps.empty()) {
    json::Value eps_obj = json::Value::object();
    for (const auto& [hash, eps] : merged_eps) eps_obj[hash] = json::Value(eps);
    doc["events_per_sec"] = std::move(eps_obj);
  }
  write_file_atomic(telemetry_path(), doc.dump() + "\n");
}

}  // namespace aecdsm::harness
