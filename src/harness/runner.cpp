#include "harness/runner.hpp"

#include "common/check.hpp"
#include "dsm/system.hpp"
#include "harness/lap_report.hpp"

namespace aecdsm::harness {

SystemParams paper_params() {
  return SystemParams{};  // Table 1 defaults: 16 procs, 4x4 mesh, 4K pages
}

ExperimentResult run_experiment(const std::string& protocol, const std::string& app_name,
                                apps::Scale scale, const SystemParams& params,
                                std::uint64_t seed, double wall_timeout_sec,
                                trace::Recorder* recorder) {
  auto app = apps::make_app(app_name, scale);
  dsm::RunConfig cfg;
  cfg.params = params;
  cfg.seed = seed;
  cfg.wall_timeout_sec = wall_timeout_sec;
  cfg.recorder = recorder;

  ExperimentResult out;
  if (protocol == "AEC" || protocol == "AEC-noLAP") {
    aec::AecConfig acfg;
    acfg.lap_enabled = protocol == "AEC";
    aec::AecSuite suite(acfg);
    out.stats = dsm::run_app(*app, suite.suite(), cfg);
    out.aec = suite.shared_handle();
  } else if (protocol == "TreadMarks") {
    tmk::TmSuite suite;
    out.stats = dsm::run_app(*app, suite.suite(), cfg);
    out.tm = suite.shared_handle();
  } else if (protocol == "Munin-ERC") {
    erc::ErcSuite suite;
    out.stats = dsm::run_app(*app, suite.suite(), cfg);
    out.erc = suite.shared_handle();
  } else {
    AECDSM_CHECK_MSG(false, "unknown protocol: " << protocol);
  }
  AECDSM_CHECK_MSG(out.stats.result_valid,
                   app_name << " under " << protocol << " failed its oracle check");
  out.lap_scores = lap_scores_of(out);
  return out;
}

}  // namespace aecdsm::harness
