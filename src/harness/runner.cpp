#include "harness/runner.hpp"

#include "common/check.hpp"
#include "dsm/system.hpp"
#include "harness/lap_report.hpp"
#include "policy/instance.hpp"

namespace aecdsm::harness {

SystemParams paper_params() {
  return SystemParams{};  // Table 1 defaults: 16 procs, 4x4 mesh, 4K pages
}

ExperimentResult run_experiment(const std::string& protocol, const std::string& app_name,
                                apps::Scale scale, const SystemParams& params,
                                std::uint64_t seed, double wall_timeout_sec,
                                trace::Recorder* recorder, int engine_threads) {
  auto app = apps::make_app(app_name, scale);
  dsm::RunConfig cfg;
  cfg.params = params;
  cfg.seed = seed;
  cfg.wall_timeout_sec = wall_timeout_sec;
  cfg.recorder = recorder;
  cfg.engine_threads = engine_threads;

  // The registry replaces the old per-protocol if/else chain: any registered
  // policy (the legacy presets plus hybrids) resolves to a runnable suite.
  policy::ProtocolInstance inst = policy::make_instance(protocol);
  ExperimentResult out;
  out.stats = dsm::run_app(*app, inst.suite(), cfg);
  out.aec = inst.aec_shared();
  out.tm = inst.tm_shared();
  out.erc = inst.erc_shared();
  AECDSM_CHECK_MSG(out.stats.result_valid,
                   app_name << " under " << protocol << " failed its oracle check");
  out.lap_scores = lap_scores_of(out);
  return out;
}

}  // namespace aecdsm::harness
