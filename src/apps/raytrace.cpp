#include "apps/raytrace.hpp"

#include "common/check.hpp"
#include "common/log.hpp"
#include <sstream>
#include <cstdio>

namespace aecdsm::apps {

namespace {
/// Deterministic stand-in for tracing one pixel's ray through the scene.
std::uint32_t trace_pixel(std::size_t x, std::size_t y) {
  std::uint64_t z = (static_cast<std::uint64_t>(y) << 32) | (x + 1);
  for (int round = 0; round < 3; ++round) {
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z ^= z >> 27;
  }
  return static_cast<std::uint32_t>(z);
}
}  // namespace

std::size_t RaytraceApp::shared_bytes() const {
  // Image + queues (generously sized: each queue can hold every task) +
  // counters, each rounded up to pages by the allocator.
  const std::size_t queue_words = 64 * (2 + total_tasks());
  return (cfg_.width * cfg_.height + queue_words + 64) * 4 + 80 * 4096;
}

void RaytraceApp::setup(dsm::Machine& m) {
  nprocs_ = m.nprocs();
  image_ = dsm::SharedArray<std::uint32_t>::alloc(m, cfg_.width * cfg_.height);
  queue_stride_ = 2 + total_tasks();
  queues_ = dsm::SharedArray<std::uint32_t>::alloc(
      m, static_cast<std::size_t>(nprocs_) * queue_stride_);
  counters_ = dsm::SharedArray<std::uint32_t>::alloc(m, 2);

  oracle_checksum_ = 0;
  for (std::size_t y = 0; y < cfg_.height; ++y) {
    for (std::size_t x = 0; x < cfg_.width; ++x) {
      oracle_checksum_ = mix_into(oracle_checksum_, trace_pixel(x, y));
    }
  }
}

void RaytraceApp::body(dsm::Context& ctx) {
    const int np = ctx.nprocs();
  const int me = ctx.pid();
  const LockId mem_lock = memory_lock(np);
  const std::size_t q0 = static_cast<std::size_t>(me) * queue_stride_;

  // Distributed initialization: this processor's queue receives the tasks
  // of its contiguous block of tiles.
  const Block tb = block_of(total_tasks(), np, me);
  queues_.put(ctx, q0 + 0, 0);  // base
  queues_.put(ctx, q0 + 1, static_cast<std::uint32_t>(tb.end - tb.begin));  // count
  for (std::size_t t = tb.begin; t < tb.end; ++t) {
    queues_.put(ctx, q0 + 2 + (t - tb.begin), static_cast<std::uint32_t>(t));
  }
  if (me == 0) {
    counters_.put(ctx, 0, 0);
    counters_.put(ctx, 1, 0);
  }
  ctx.barrier();

  const std::uint32_t total = static_cast<std::uint32_t>(total_tasks());
  auto render_task = [&](std::uint32_t task) {
    AECDSM_DEBUG("RENDER p" << me << " task " << task);
    // Allocate ray nodes (the hot memory-management lock of the paper).
    for (int a = 0; a < cfg_.allocs_per_task; ++a) {
      ctx.lock(mem_lock);
      counters_.put(ctx, 0, counters_.get(ctx, 0) + 1);
      ctx.unlock(mem_lock);
      ctx.compute(40);
    }
    const std::size_t ty = task / tiles_x();
    const std::size_t tx = task % tiles_x();
    for (std::size_t dy = 0; dy < cfg_.tile; ++dy) {
      for (std::size_t dx = 0; dx < cfg_.tile; ++dx) {
        const std::size_t x = tx * cfg_.tile + dx;
        const std::size_t y = ty * cfg_.tile + dy;
        // Ray cost varies strongly with scene content: pixels near the
        // scene object (image centre) trace many reflections, the border
        // almost none. The contiguous-block partition then overloads the
        // processors owning the centre, so stealing is sustained and the
        // queue locks develop the transfer affinity the paper reports.
        const double nx = (static_cast<double>(x) / cfg_.width) - 0.5;
        const double ny = (static_cast<double>(y) / cfg_.height) - 0.5;
        const double r2 = nx * nx + ny * ny;
        const Cycles depth = r2 < 0.09 ? 26000 : (r2 < 0.2 ? 4000 : 300);
        ctx.compute(depth + (trace_pixel(x, y) & 0x7F));
        image_.put(ctx, y * cfg_.width + x, trace_pixel(x, y));
      }
    }
    // Completion bookkeeping shares the memory-management lock.
    ctx.lock(mem_lock);
    counters_.put(ctx, 1, counters_.get(ctx, 1) + 1);
    ctx.unlock(mem_lock);
  };

  // Pop from the own queue; steal from victims when empty; stop once all
  // tasks are confirmed done.
  int last_victim = (me + 1) % np;
  for (;;) {
    bool worked = false;

    // Own queue (LIFO end). An emptied queue is compacted so re-queued
    // loot never outgrows the slot array.
    ctx.lock(queue_lock(me));
    std::uint32_t base = queues_.get(ctx, q0 + 0);
    std::uint32_t count = queues_.get(ctx, q0 + 1);
    std::uint32_t task = 0;
    if (count > base) {
      task = queues_.get(ctx, q0 + 2 + count - 1);
      queues_.put(ctx, q0 + 1, count - 1);
      AECDSM_DEBUG("POP p" << me << " task " << task << " base=" << base
                           << " count=" << count - 1);
      worked = true;
    } else if (base != 0) {
      queues_.put(ctx, q0 + 0, 0);
      queues_.put(ctx, q0 + 1, 0);
    }
    ctx.unlock(queue_lock(me));
    if (worked) {
      render_task(task);
      continue;
    }

    // Steal from the other queues (FIFO end). A thief retries its last
    // successful victim first (affinity stealing), so the queue locks
    // develop the stable owner<->thief transfer pairs the original program
    // exhibits; half of the remaining tasks move over (chunky stealing).
    for (int k = 0; k < np && !worked; ++k) {
      const int victim = k == 0 ? last_victim : (me + k) % np;
      if (victim == me || (k > 0 && victim == last_victim)) continue;
      const std::size_t v0 = static_cast<std::size_t>(victim) * queue_stride_;
      // Racy peek without the lock (stale values are fine — the steal
      // re-checks under the lock). This keeps the queue locks for genuine
      // transfers instead of idle-scan churn.
      if (queues_.get(ctx, v0 + 1) <= queues_.get(ctx, v0 + 0)) continue;
      std::vector<std::uint32_t> loot;
      ctx.lock(queue_lock(victim));
      base = queues_.get(ctx, v0 + 0);
      count = queues_.get(ctx, v0 + 1);
      if (count > base) {
        const std::uint32_t take = (count - base + 1) / 2;
        for (std::uint32_t t = 0; t < take; ++t) {
          loot.push_back(queues_.get(ctx, v0 + 2 + base + t));
        }
        queues_.put(ctx, v0 + 0, base + take);
        worked = true;
      }
      ctx.unlock(queue_lock(victim));
      if (worked) {
        AECDSM_DEBUG("STEAL p" << me << " from p" << victim << " base=" << base
                               << " take=" << loot.size() << " first=" << loot.front());
        last_victim = victim;
        // First loot task runs now; the rest join the own queue.
        task = loot.front();
        if (loot.size() > 1) {
          ctx.lock(queue_lock(me));
          base = queues_.get(ctx, q0 + 0);
          count = queues_.get(ctx, q0 + 1);
          for (std::size_t t = 1; t < loot.size(); ++t) {
            queues_.put(ctx, q0 + 2 + count, loot[t]);
            ++count;
          }
          queues_.put(ctx, q0 + 1, count);
          ctx.unlock(queue_lock(me));
        }
      }
    }
    if (worked) {
      render_task(task);
      continue;
    }

    // Nothing found anywhere: check the done counter under the lock.
    ctx.lock(mem_lock);
    const std::uint32_t done = counters_.get(ctx, 1);
    ctx.unlock(mem_lock);
    if (done >= total) break;
    AECDSM_DEBUG("raytrace p" << me << " idle: done=" << done << "/" << total);
    if (me == 0 && logging::level() == logging::Level::kDebug) {
      std::ostringstream qs;
      for (int q = 0; q < np; ++q) {
        const std::size_t v0 = static_cast<std::size_t>(q) * queue_stride_;
        ctx.lock(queue_lock(q));
        qs << " q" << q << "=" << queues_.get(ctx, v0) << "/"
           << queues_.get(ctx, v0 + 1);
        ctx.unlock(queue_lock(q));
      }
      AECDSM_DEBUG("raytrace queues:" << qs.str());
    }
    ctx.compute(500);  // back off before rescanning
  }

  ctx.barrier();
  if (me == 0) {
    std::uint64_t checksum = 0;
    for (std::size_t y = 0; y < cfg_.height; ++y) {
      for (std::size_t x = 0; x < cfg_.width; ++x) {
        checksum = mix_into(checksum, image_.get(ctx, y * cfg_.width + x));
      }
    }
    const bool allocs_ok =
        counters_.get(ctx, 0) ==
        total * static_cast<std::uint32_t>(cfg_.allocs_per_task);
    if (checksum != oracle_checksum_) {
      AECDSM_DEBUG("raytrace checksum mismatch");
    }
    if (!allocs_ok) {
      AECDSM_DEBUG("raytrace alloc count " << counters_.get(ctx, 0) << " want "
                                           << total * static_cast<std::uint32_t>(
                                                          cfg_.allocs_per_task)
                                           << " done=" << counters_.get(ctx, 1));
    }
    set_ok(checksum == oracle_checksum_ && allocs_ok);
  }
}

}  // namespace aecdsm::apps
