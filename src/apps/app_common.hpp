// Shared helpers for the SPMD application suite.
//
// All applications validate against a sequential oracle. Science kernels
// use scaled 64-bit fixed-point arithmetic so that parallel accumulation
// order cannot perturb results — the oracle comparison is exact, which
// turns every run into a protocol-correctness check.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "dsm/app.hpp"
#include "dsm/context.hpp"
#include "dsm/shared_array.hpp"

namespace aecdsm::apps {

/// Contiguous block partition of [0, n) among nprocs; returns [begin, end)
/// for processor `pid`.
struct Block {
  std::size_t begin;
  std::size_t end;
};

inline Block block_of(std::size_t n, int nprocs, int pid) {
  const std::size_t base = n / static_cast<std::size_t>(nprocs);
  const std::size_t extra = n % static_cast<std::size_t>(nprocs);
  const std::size_t b =
      static_cast<std::size_t>(pid) * base + std::min<std::size_t>(pid, extra);
  const std::size_t len = base + (static_cast<std::size_t>(pid) < extra ? 1 : 0);
  return Block{b, b + len};
}

/// Order-independent checksum for result validation.
inline std::uint64_t mix_into(std::uint64_t acc, std::uint64_t v) {
  v *= 0x9E3779B97F4A7C15ULL;
  v ^= v >> 29;
  return acc + v;
}

/// Base class centralizing the ok-flag plumbing.
class AppBase : public dsm::App {
 public:
  bool ok() const override { return ok_; }

 protected:
  void set_ok(bool v) { ok_ = v; }

 private:
  bool ok_ = false;
};

}  // namespace aecdsm::apps
