#include "apps/fft.hpp"

#include <cmath>
#include <cstring>
#include <numbers>

#include "common/check.hpp"

namespace aecdsm::apps {

namespace {

/// In-place iterative radix-2 FFT of one row (`len` complex values,
/// interleaved re/im). Shared by the oracle and the parallel body so both
/// perform bit-identical floating-point operations.
void fft_row(double* row, std::size_t len) {
  // Bit reversal.
  for (std::size_t i = 1, j = 0; i < len; ++i) {
    std::size_t bit = len >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      std::swap(row[2 * i], row[2 * j]);
      std::swap(row[2 * i + 1], row[2 * j + 1]);
    }
  }
  for (std::size_t half = 1; half < len; half <<= 1) {
    const double ang = -std::numbers::pi / static_cast<double>(half);
    const double wr = std::cos(ang);
    const double wi = std::sin(ang);
    for (std::size_t base = 0; base < len; base += 2 * half) {
      double cr = 1.0, ci = 0.0;
      for (std::size_t k = 0; k < half; ++k) {
        const std::size_t u = 2 * (base + k);
        const std::size_t v = 2 * (base + k + half);
        const double tr = row[v] * cr - row[v + 1] * ci;
        const double ti = row[v] * ci + row[v + 1] * cr;
        row[v] = row[u] - tr;
        row[v + 1] = row[u + 1] - ti;
        row[u] += tr;
        row[u + 1] += ti;
        const double ncr = cr * wr - ci * wi;
        ci = cr * wi + ci * wr;
        cr = ncr;
      }
    }
  }
}

void twiddle(double* re, double* im, std::size_t i, std::size_t j, std::size_t n) {
  const double ang = -2.0 * std::numbers::pi * static_cast<double>(i) *
                     static_cast<double>(j) / static_cast<double>(n);
  const double wr = std::cos(ang);
  const double wi = std::sin(ang);
  const double r = *re * wr - *im * wi;
  const double m = *re * wi + *im * wr;
  *re = r;
  *im = m;
}

double input_value(std::size_t idx, bool imag) {
  std::uint64_t z = (idx * 2 + (imag ? 1 : 0) + 11) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  return static_cast<double>(z % 2048) / 1024.0 - 1.0;
}

std::uint64_t bits_of(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

}  // namespace

void FftApp::setup(dsm::Machine& machine) {
  const std::size_t m = cfg_.m;
  const std::size_t n = m * m;
  AECDSM_CHECK_MSG((m & (m - 1)) == 0, "FFT matrix edge must be a power of two");
  a_ = dsm::SharedArray<double>::alloc(machine, n * 2);
  b_ = dsm::SharedArray<double>::alloc(machine, n * 2);
  ids_ = dsm::SharedArray<std::uint32_t>::alloc(machine, 1);

  // Oracle: the same six-step algorithm, sequentially.
  std::vector<double> a(n * 2), b(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    a[2 * i] = input_value(i, false);
    a[2 * i + 1] = input_value(i, true);
  }
  auto transpose = [&](std::vector<double>& src, std::vector<double>& dst) {
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < m; ++c) {
        dst[2 * (c * m + r)] = src[2 * (r * m + c)];
        dst[2 * (c * m + r) + 1] = src[2 * (r * m + c) + 1];
      }
    }
  };
  transpose(a, b);
  for (std::size_t r = 0; r < m; ++r) fft_row(&b[2 * r * m], m);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      twiddle(&b[2 * (r * m + c)], &b[2 * (r * m + c) + 1], r, c, n);
    }
  }
  transpose(b, a);
  for (std::size_t r = 0; r < m; ++r) fft_row(&a[2 * r * m], m);
  transpose(a, b);

  oracle_checksum_ = 0;
  for (std::size_t i = 0; i < n * 2; ++i) {
    oracle_checksum_ = mix_into(oracle_checksum_, bits_of(b[i]));
  }
}

void FftApp::body(dsm::Context& ctx) {
  const std::size_t m = cfg_.m;
  const std::size_t n = m * m;
  const int np = ctx.nprocs();
  const int me = ctx.pid();
  const Block rows = block_of(m, np, me);

  // The original program's only lock: process-id assignment.
  ctx.lock(0);
  ids_.put(ctx, 0, ids_.get(ctx, 0) + 1);
  ctx.unlock(0);

  // Distributed initialization of this processor's rows of A.
  for (std::size_t r = rows.begin; r < rows.end; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      const std::size_t i = r * m + c;
      a_.put(ctx, 2 * i, input_value(i, false));
      a_.put(ctx, 2 * i + 1, input_value(i, true));
    }
  }
  ctx.barrier();

  auto transpose_into = [&](dsm::SharedArray<double>& src,
                            dsm::SharedArray<double>& dst) {
    // Each processor writes its own rows of dst, reading columns of src
    // (the all-to-all communication step of the six-step FFT).
    for (std::size_t r = rows.begin; r < rows.end; ++r) {
      for (std::size_t c = 0; c < m; ++c) {
        dst.put(ctx, 2 * (r * m + c), src.get(ctx, 2 * (c * m + r)));
        dst.put(ctx, 2 * (r * m + c) + 1, src.get(ctx, 2 * (c * m + r) + 1));
        ctx.compute(4);
      }
    }
  };
  auto fft_rows = [&](dsm::SharedArray<double>& arr) {
    std::vector<double> row(2 * m);
    for (std::size_t r = rows.begin; r < rows.end; ++r) {
      for (std::size_t c = 0; c < 2 * m; ++c) row[c] = arr.get(ctx, 2 * r * m + c);
      ctx.compute(static_cast<Cycles>(5 * m));  // the butterflies
      fft_row(row.data(), m);
      for (std::size_t c = 0; c < 2 * m; ++c) arr.put(ctx, 2 * r * m + c, row[c]);
    }
  };

  transpose_into(a_, b_);
  ctx.barrier();
  fft_rows(b_);
  ctx.barrier();
  for (std::size_t r = rows.begin; r < rows.end; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      double re = b_.get(ctx, 2 * (r * m + c));
      double im = b_.get(ctx, 2 * (r * m + c) + 1);
      twiddle(&re, &im, r, c, n);
      b_.put(ctx, 2 * (r * m + c), re);
      b_.put(ctx, 2 * (r * m + c) + 1, im);
      ctx.compute(12);
    }
  }
  ctx.barrier();
  transpose_into(b_, a_);
  ctx.barrier();
  fft_rows(a_);
  ctx.barrier();
  transpose_into(a_, b_);
  ctx.barrier();

  if (me == 0) {
    std::uint64_t checksum = 0;
    for (std::size_t i = 0; i < n * 2; ++i) {
      checksum = mix_into(checksum, bits_of(b_.get(ctx, i)));
    }
    set_ok(checksum == oracle_checksum_ && ids_.get(ctx, 0) ==
                                               static_cast<std::uint32_t>(np));
  }
}

}  // namespace aecdsm::apps
