// Water-nsquared — molecular dynamics with an O(n^2) force computation
// (paper §4.2). One lock per molecule protects its force accumulator (the
// paper's variables 4..515); a handful of global locks accumulate system
// energies. The application inserts lock acquire notices ahead of its
// molecule-lock acquisitions, feeding LAP's virtual-queue technique exactly
// as the paper describes.
//
// All arithmetic is 64-bit fixed point, so parallel accumulation order
// cannot perturb the result and the sequential oracle comparison is exact.
#pragma once

#include <vector>

#include "apps/app_common.hpp"

namespace aecdsm::apps {

struct WaterNsConfig {
  std::size_t molecules = 64;  ///< paper: 512
  int steps = 5;               ///< paper: 5
};

class WaterNsApp : public AppBase {
 public:
  explicit WaterNsApp(WaterNsConfig cfg = {}) : cfg_(cfg) {}

  std::string name() const override { return "Water-ns"; }
  std::size_t shared_bytes() const override {
    return cfg_.molecules * 8 * 8 + 64 * 8 + 32 * 4096;
  }
  void setup(dsm::Machine& m) override;
  void body(dsm::Context& ctx) override;

  const WaterNsConfig& config() const { return cfg_; }

  LockId molecule_lock(std::size_t mol) const { return static_cast<LockId>(mol); }
  LockId global_lock(int k) const {
    return static_cast<LockId>(cfg_.molecules + static_cast<std::size_t>(k));
  }

 private:
  WaterNsConfig cfg_;
  /// Per molecule: pos[3], force[3], pad[2] (64 bytes — several molecules
  /// share a page, reproducing the paper's small per-molecule diffs).
  dsm::SharedArray<std::int64_t> mol_;
  dsm::SharedArray<std::int64_t> globals_;  ///< [potential, kinetic] padded
  std::vector<std::int64_t> oracle_pos_;  ///< final oracle positions (debug aid)
  std::int64_t oracle_potential_ = 0;
  std::uint64_t oracle_checksum_ = 0;
};

}  // namespace aecdsm::apps
