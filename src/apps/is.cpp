#include "apps/is.hpp"

#include "common/check.hpp"

namespace aecdsm::apps {

namespace {
/// Deterministic key generator (pure function of the index, so processors
/// can initialize their own blocks without host-side distribution).
std::uint32_t key_of(std::size_t i, std::size_t buckets) {
  std::uint64_t z = (static_cast<std::uint64_t>(i) + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z ^= z >> 27;
  return static_cast<std::uint32_t>(z % buckets);
}
}  // namespace

void IsApp::setup(dsm::Machine& m) {
  keys_ = dsm::SharedArray<std::uint32_t>::alloc(m, cfg_.num_keys);
  buckets_ = dsm::SharedArray<std::uint32_t>::alloc(m, cfg_.num_buckets);
  // One result slot per processor, padded onto separate cache lines.
  results_ = dsm::SharedArray<std::uint64_t>::alloc(
      m, static_cast<std::size_t>(m.nprocs()) * 8);

  // Sequential oracle: bucket histogram -> prefix ranks -> checksum.
  std::vector<std::uint32_t> hist(cfg_.num_buckets, 0);
  for (std::size_t i = 0; i < cfg_.num_keys; ++i) ++hist[key_of(i, cfg_.num_buckets)];
  std::vector<std::uint32_t> prefix(cfg_.num_buckets, 0);
  std::uint32_t run = 0;
  for (std::size_t b = 0; b < cfg_.num_buckets; ++b) {
    prefix[b] = run;
    run += hist[b];
  }
  oracle_checksum_ = 0;
  for (std::size_t i = 0; i < cfg_.num_keys; ++i) {
    oracle_checksum_ = mix_into(oracle_checksum_, prefix[key_of(i, cfg_.num_buckets)]);
  }
}

void IsApp::body(dsm::Context& ctx) {
  const int np = ctx.nprocs();
  const int me = ctx.pid();
  const Block kb = block_of(cfg_.num_keys, np, me);
  const Block bb = block_of(cfg_.num_buckets, np, me);

  // Distributed initialization of the key array.
  for (std::size_t i = kb.begin; i < kb.end; ++i) {
    keys_.put(ctx, i, key_of(i, cfg_.num_buckets));
    ctx.compute(4);
  }
  ctx.barrier();

  std::uint64_t checksum = 0;
  for (int it = 0; it < cfg_.iterations; ++it) {
    // Phase 0: distributed reset of the shared bucket array.
    for (std::size_t b = bb.begin; b < bb.end; ++b) buckets_.put(ctx, b, 0);
    ctx.barrier();

    // Phase 1: private histogram of this block's keys...
    std::vector<std::uint32_t> local(cfg_.num_buckets, 0);
    for (std::size_t i = kb.begin; i < kb.end; ++i) {
      ++local[keys_.get(ctx, i)];
      ctx.compute(6);
    }
    ctx.barrier();
    // ...then the program's single critical section: update the whole
    // shared array (the paper's heavily contended lock).
    ctx.lock(0);
    for (std::size_t b = 0; b < cfg_.num_buckets; ++b) {
      if (local[b] != 0) buckets_.put(ctx, b, buckets_.get(ctx, b) + local[b]);
      ctx.compute(2);
    }
    ctx.unlock(0);
    ctx.barrier();

    // Phase 2: read the shared histogram and rank this block's keys.
    std::vector<std::uint32_t> prefix(cfg_.num_buckets, 0);
    std::uint32_t run = 0;
    for (std::size_t b = 0; b < cfg_.num_buckets; ++b) {
      prefix[b] = run;
      run += buckets_.get(ctx, b);
      ctx.compute(2);
    }
    checksum = 0;
    for (std::size_t i = kb.begin; i < kb.end; ++i) {
      checksum = mix_into(checksum, prefix[keys_.get(ctx, i)]);
      ctx.compute(4);
    }
    results_.put(ctx, static_cast<std::size_t>(me) * 8, checksum);
    ctx.barrier();
  }

  if (me == 0) {
    std::uint64_t total = 0;
    for (int p = 0; p < np; ++p) {
      total += results_.get(ctx, static_cast<std::size_t>(p) * 8);
    }
    set_ok(total == oracle_checksum_);
  }
}

}  // namespace aecdsm::apps
