// Raytrace — ray tracing with per-processor task queues and task stealing
// (paper §4.2). The image plane is partitioned into tiles distributed over
// per-processor work queues (one lock each); an additional memory-management
// lock serializes ray-node allocation and is the program's hottest lock
// (the paper's variable 1). Stealing moves tiles between queues for load
// balance, producing the lock-transfer affinity the LAP technique exploits.
#pragma once

#include "apps/app_common.hpp"

namespace aecdsm::apps {

struct RaytraceConfig {
  std::size_t width = 64;
  std::size_t height = 64;
  std::size_t tile = 4;          ///< tile edge (tasks are tile x tile pixels)
  int allocs_per_task = 1;       ///< memory-management lock acquires per tile
};

class RaytraceApp : public AppBase {
 public:
  explicit RaytraceApp(RaytraceConfig cfg = {}) : cfg_(cfg) {}

  std::string name() const override { return "Raytrace"; }
  std::size_t shared_bytes() const override;
  void setup(dsm::Machine& m) override;
  void body(dsm::Context& ctx) override;

  const RaytraceConfig& config() const { return cfg_; }

  /// Lock ids: one queue lock per processor, then the memory lock.
  static LockId queue_lock(int pid) { return static_cast<LockId>(pid); }
  LockId memory_lock(int nprocs) const { return static_cast<LockId>(nprocs); }

 private:
  std::size_t tiles_x() const { return cfg_.width / cfg_.tile; }
  std::size_t tiles_y() const { return cfg_.height / cfg_.tile; }
  std::size_t total_tasks() const { return tiles_x() * tiles_y(); }

  RaytraceConfig cfg_;
  int nprocs_ = 0;
  dsm::SharedArray<std::uint32_t> image_;
  dsm::SharedArray<std::uint32_t> queues_;  ///< per proc: [base, count, slots...]
  dsm::SharedArray<std::uint32_t> counters_;  ///< [alloc_count, done_count]
  std::size_t queue_stride_ = 0;
  std::uint64_t oracle_checksum_ = 0;
};

}  // namespace aecdsm::apps
