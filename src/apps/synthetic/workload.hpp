// The `syn:` workload grammar — seeded, deterministic synthetic apps.
//
// A WorkloadSpec names a sharing pattern plus the knobs the analytical
// locking literature models (critical-section length, lock fan-out, barrier
// cadence, region geometry, read/write mix). Compiling a spec yields an
// explicit ScheduleSet (schedule.hpp), so every synthetic app carries the
// sequential-reference oracle for free and is conformance-checkable under
// any consistency policy.
//
// Spec names parse from strings like `syn:migratory/cs32/fan4/seed7` and
// round-trip through fingerprint(): the canonical spelling with every field
// materialized. make_app accepts any spelling; the harness folds the
// fingerprint into cache keys so spellings of the same workload alias.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "apps/synthetic/schedule.hpp"

namespace aecdsm::apps::synthetic {

/// Sharing patterns, mirroring the classic DSM taxonomy (Munin's categories).
enum class Pattern {
  kMigratory,         ///< one token region set migrates proc-to-proc
  kProducerConsumer,  ///< each proc produces its region, consumes a neighbor's
  kReadMostly,        ///< write-once (fill round), then dominated by reads
  kHotspot,           ///< most bursts contend on region 0
  kMixed,             ///< per-burst random draw over the other patterns
};

const char* pattern_name(Pattern p);

struct WorkloadSpec {
  Pattern pattern = Pattern::kMigratory;
  std::uint32_t cs_cycles = 64;  ///< modeled compute inside each CS (`cs`)
  std::uint32_t fan = 4;         ///< lock fan-out: #regions = #locks (`fan`)
  std::uint64_t seed = 1;        ///< generator seed (`seed`)
  std::uint32_t rounds = 4;      ///< barrier-separated rounds (`rounds`)
  std::uint32_t bursts = 8;      ///< lock bursts per proc per round (`bursts`)
  std::uint32_t region_cells = 24;  ///< 64-bit cells per region (`cells`)
  std::int32_t read_pct = -1;    ///< read share 0..100; -1 = pattern default

  /// True for any name carrying the `syn:` prefix (well-formed or not).
  static bool is_spec_name(const std::string& name);

  /// One-paragraph grammar reference, embedded in parse errors.
  static std::string grammar();

  /// Parse `syn:<pattern>[/key<uint>...]`; throws SimError with the grammar
  /// on any malformed input (unknown pattern/key, duplicate key, bad or
  /// out-of-range number).
  static WorkloadSpec parse(const std::string& name);

  /// Canonical spelling with every field materialized (read resolved to the
  /// pattern default). Stable under re-parsing: parse(fingerprint()) yields
  /// the same fingerprint.
  std::string fingerprint() const;

  /// The read share the generator actually uses.
  int resolved_read_pct() const;

  /// Test-scale variant: kSmall halves rounds and bursts (min 1).
  WorkloadSpec scaled(Scale scale) const;
};

/// Compile the spec into an explicit per-processor schedule. Deterministic
/// in (spec, nprocs); all randomness is consumed here, never during the run.
ScheduleSet build_schedule_set(const WorkloadSpec& spec, int nprocs);

/// A spec-defined app. Its name() is the canonical fingerprint of the
/// unscaled spec; the schedule itself is built from spec.scaled(scale).
class SyntheticApp : public ScheduleApp {
 public:
  SyntheticApp(const WorkloadSpec& spec, Scale scale);

  const WorkloadSpec& spec() const { return spec_; }

 private:
  WorkloadSpec spec_;
};

/// Lock groups for a spec: one region per lock, ids [0, fan).
std::vector<LockGroup> spec_lock_groups(const WorkloadSpec& spec);

/// The default grammar corpus for bench_workloads and CI: every pattern,
/// varied CS lengths, fan-outs, page-spanning region sizes and seeds.
std::vector<std::string> default_corpus();

}  // namespace aecdsm::apps::synthetic
