#include "apps/synthetic/workload.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace aecdsm::apps::synthetic {
namespace {

constexpr const char* kPrefix = "syn:";

/// Private-block stride per processor, in 64-bit slots. Private writes run
/// outside any critical section, which entry consistency only permits when
/// no two processors ever touch one page unsynchronized — so each block
/// spans a whole page at the largest page size in use (4 KiB). Only the
/// first 8 slots of a block are ever written.
constexpr std::size_t kPrivSlotsPerProc = 512;

struct PatternEntry {
  const char* name;
  Pattern pattern;
  int default_read_pct;
};

// Order defines the canonical listing in errors and docs.
constexpr PatternEntry kPatterns[] = {
    {"migratory", Pattern::kMigratory, 20},
    {"producer-consumer", Pattern::kProducerConsumer, 50},
    {"read-mostly", Pattern::kReadMostly, 90},
    {"hotspot", Pattern::kHotspot, 10},
    {"mixed", Pattern::kMixed, 40},
};

const PatternEntry& entry_of(Pattern p) {
  for (const PatternEntry& e : kPatterns) {
    if (e.pattern == p) return e;
  }
  AECDSM_CHECK_MSG(false, "unreachable: unregistered pattern");
}

std::string pattern_list() {
  std::string out;
  for (const PatternEntry& e : kPatterns) {
    if (!out.empty()) out += ", ";
    out += e.name;
  }
  return out;
}

std::uint64_t parse_uint(const std::string& token, const std::string& key,
                         const std::string& digits, std::uint64_t lo,
                         std::uint64_t hi) {
  std::uint64_t v = 0;
  const char* first = digits.data();
  const char* last = digits.data() + digits.size();
  const auto [ptr, ec] = std::from_chars(first, last, v);
  AECDSM_CHECK_MSG(ec == std::errc() && ptr == last && !digits.empty(),
                   "workload spec token '" << token << "': '" << digits
                                           << "' is not an unsigned integer\n"
                                           << WorkloadSpec::grammar());
  AECDSM_CHECK_MSG(v >= lo && v <= hi, "workload spec token '"
                                           << token << "': " << key
                                           << " must be in [" << lo << ", "
                                           << hi << "], got " << v << "\n"
                                           << WorkloadSpec::grammar());
  return v;
}

std::vector<std::string> split_slashes(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t slash = s.find('/', start);
    if (slash == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, slash - start));
    start = slash + 1;
  }
  return out;
}

}  // namespace

const char* pattern_name(Pattern p) { return entry_of(p).name; }

bool WorkloadSpec::is_spec_name(const std::string& name) {
  return name.rfind(kPrefix, 0) == 0;
}

std::string WorkloadSpec::grammar() {
  std::ostringstream os;
  os << "  syn:<pattern>[/key<uint>...] with pattern in {" << pattern_list()
     << "} and keys:\n"
     << "    cs<N>      cycles inside each critical section (0..1000000, default 64)\n"
     << "    fan<N>     lock fan-out = #regions = #locks    (1..256, default 4)\n"
     << "    cells<N>   64-bit cells per region             (1..4096, default 24)\n"
     << "    rounds<N>  barrier-separated rounds            (1..64, default 4)\n"
     << "    bursts<N>  lock bursts per proc per round      (1..1024, default 8)\n"
     << "    read<N>    read share percent                  (0..100, default per pattern)\n"
     << "    seed<N>    generator seed                      (default 1)\n"
     << "  e.g. syn:migratory/cs32/fan4/seed7";
  return os.str();
}

WorkloadSpec WorkloadSpec::parse(const std::string& name) {
  AECDSM_CHECK_MSG(is_spec_name(name),
                   "not a workload spec (missing 'syn:' prefix): " << name);
  const std::vector<std::string> tokens =
      split_slashes(name.substr(std::string(kPrefix).size()));

  WorkloadSpec spec;
  bool found = false;
  for (const PatternEntry& e : kPatterns) {
    if (tokens.front() == e.name) {
      spec.pattern = e.pattern;
      found = true;
      break;
    }
  }
  AECDSM_CHECK_MSG(found, "workload spec '" << name
                                            << "': first token must be a "
                                               "pattern in {"
                                            << pattern_list() << "}\n"
                                            << grammar());

  bool seen_cs = false, seen_fan = false, seen_cells = false,
       seen_rounds = false, seen_bursts = false, seen_read = false,
       seen_seed = false;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string& t = tokens[i];
    const auto take = [&](const char* key, bool& seen) -> std::string {
      AECDSM_CHECK_MSG(!seen, "workload spec '" << name << "': duplicate key '"
                                                << key << "'\n"
                                                << grammar());
      seen = true;
      return t.substr(std::string(key).size());
    };
    if (t.rfind("cells", 0) == 0) {
      spec.region_cells = static_cast<std::uint32_t>(
          parse_uint(t, "cells", take("cells", seen_cells), 1, 4096));
    } else if (t.rfind("cs", 0) == 0) {
      spec.cs_cycles = static_cast<std::uint32_t>(
          parse_uint(t, "cs", take("cs", seen_cs), 0, 1000000));
    } else if (t.rfind("fan", 0) == 0) {
      spec.fan = static_cast<std::uint32_t>(
          parse_uint(t, "fan", take("fan", seen_fan), 1, 256));
    } else if (t.rfind("rounds", 0) == 0) {
      spec.rounds = static_cast<std::uint32_t>(
          parse_uint(t, "rounds", take("rounds", seen_rounds), 1, 64));
    } else if (t.rfind("bursts", 0) == 0) {
      spec.bursts = static_cast<std::uint32_t>(
          parse_uint(t, "bursts", take("bursts", seen_bursts), 1, 1024));
    } else if (t.rfind("read", 0) == 0) {
      spec.read_pct = static_cast<std::int32_t>(
          parse_uint(t, "read", take("read", seen_read), 0, 100));
    } else if (t.rfind("seed", 0) == 0) {
      spec.seed = parse_uint(t, "seed", take("seed", seen_seed), 0,
                             UINT64_MAX);
    } else {
      AECDSM_CHECK_MSG(false, "workload spec '"
                                  << name << "': unknown token '" << t
                                  << "' (patterns go first, keys are "
                                     "cs/fan/cells/rounds/bursts/read/seed)\n"
                                  << grammar());
    }
  }
  return spec;
}

std::string WorkloadSpec::fingerprint() const {
  std::ostringstream os;
  os << kPrefix << pattern_name(pattern) << "/cs" << cs_cycles << "/fan" << fan
     << "/cells" << region_cells << "/rounds" << rounds << "/bursts" << bursts
     << "/read" << resolved_read_pct() << "/seed" << seed;
  return os.str();
}

int WorkloadSpec::resolved_read_pct() const {
  return read_pct >= 0 ? read_pct : entry_of(pattern).default_read_pct;
}

WorkloadSpec WorkloadSpec::scaled(Scale scale) const {
  WorkloadSpec s = *this;
  if (scale == Scale::kSmall) {
    s.rounds = std::max<std::uint32_t>(1, s.rounds / 2);
    s.bursts = std::max<std::uint32_t>(1, s.bursts / 2);
  }
  return s;
}

ScheduleSet build_schedule_set(const WorkloadSpec& spec, int nprocs) {
  AECDSM_CHECK_MSG(nprocs > 0, "workload needs at least one processor");
  const std::size_t fan = spec.fan;
  const std::size_t cells_per_region = spec.region_cells;
  const int read_pct = spec.resolved_read_pct();

  ScheduleSet set;
  set.cell_count = fan * cells_per_region;
  set.priv_count = kPrivSlotsPerProc * static_cast<std::size_t>(nprocs);
  set.procs.resize(static_cast<std::size_t>(nprocs));

  for (int p = 0; p < nprocs; ++p) {
    Rng rng = Rng(spec.seed).split(static_cast<std::uint64_t>(p) + 1);
    ProcSchedule& sched = set.procs[static_cast<std::size_t>(p)];
    sched.rounds.resize(spec.rounds);
    for (std::uint32_t r = 0; r < spec.rounds; ++r) {
      std::vector<Op>& round = sched.rounds[r];
      round.reserve(spec.bursts);
      for (std::uint32_t b = 0; b < spec.bursts; ++b) {
        Op op;

        // Region choice and read share, by sharing pattern.
        std::size_t region = 0;
        int op_read_pct = read_pct;
        bool forced_writes = false, forced_reads = false;
        Pattern pat = spec.pattern;
        if (pat == Pattern::kMixed) {
          // Per-burst draw over the four concrete patterns. The draw is
          // consumed unconditionally so schedules stay seed-stable.
          static constexpr Pattern kConcrete[] = {
              Pattern::kMigratory, Pattern::kProducerConsumer,
              Pattern::kReadMostly, Pattern::kHotspot};
          pat = kConcrete[rng.next_below(4)];
        }
        switch (pat) {
          case Pattern::kMigratory:
            // Every processor walks the same region sequence, so ownership
            // of the region (and its lock) migrates proc to proc.
            region = (static_cast<std::size_t>(r) * spec.bursts + b) % fan;
            break;
          case Pattern::kProducerConsumer:
            if (b % 2 == 0) {
              region = static_cast<std::size_t>(p) % fan;
              forced_writes = true;  // produce into the own region
            } else {
              region = static_cast<std::size_t>((p + 1) % nprocs) % fan;
              forced_reads = true;  // consume the neighbour's region
            }
            break;
          case Pattern::kReadMostly:
            region = rng.next_below(fan);
            // Round 0 is the fill round; afterwards reads dominate.
            if (r == 0) op_read_pct = 0;
            break;
          case Pattern::kHotspot:
            // 60% of bursts contend on region 0.
            region = rng.next_below(10) < 6 ? 0 : rng.next_below(fan);
            break;
          case Pattern::kMixed:
            AECDSM_CHECK_MSG(false, "unreachable: mixed resolves above");
        }

        op.burst.lock = static_cast<LockId>(region);
        op.burst.cs_cycles = spec.cs_cycles;
        op.burst.notice = rng.next_below(4) == 0;
        const std::size_t n_ops = 1 + rng.next_below(4);
        for (std::size_t k = 0; k < n_ops; ++k) {
          const std::uint32_t cell = static_cast<std::uint32_t>(
              region * cells_per_region + rng.next_below(cells_per_region));
          const bool is_read =
              forced_reads ||
              (!forced_writes &&
               rng.next_below(100) < static_cast<std::uint64_t>(op_read_pct));
          if (is_read) {
            op.burst.reads.push_back(cell);
          } else {
            op.burst.updates.push_back(CellUpdate{
                cell, static_cast<std::uint32_t>(rng.next_below(1000) + 1)});
          }
        }

        // Private traffic outside the CS: owner-disjoint last-write slots.
        if (rng.next_below(2) == 0) {
          op.writes.push_back(PrivateWrite{
              static_cast<std::uint32_t>(
                  kPrivSlotsPerProc * static_cast<std::size_t>(p) +
                  rng.next_below(8)),
              rng.next_u64()});
        }
        op.post_compute = static_cast<Cycles>(rng.next_below(200));
        round.push_back(std::move(op));
      }
    }
  }
  validate(set);
  return set;
}

namespace {

std::size_t spec_shared_bytes(const WorkloadSpec& spec) {
  // Page frames allocate lazily, so a generous processor-count bound (the
  // actual count is unknown until setup) costs address space, not memory.
  constexpr std::size_t kMaxProcs = 1024;
  return (static_cast<std::size_t>(spec.fan) * spec.region_cells +
          kPrivSlotsPerProc * kMaxProcs) *
             sizeof(std::uint64_t) +
         16 * 4096;
}

}  // namespace

SyntheticApp::SyntheticApp(const WorkloadSpec& spec, Scale scale)
    : ScheduleApp(spec.fingerprint(), spec_shared_bytes(spec),
                  [run = spec.scaled(scale)](int nprocs) {
                    return build_schedule_set(run, nprocs);
                  }),
      spec_(spec) {}

std::vector<LockGroup> spec_lock_groups(const WorkloadSpec& spec) {
  const LockId hi = static_cast<LockId>(spec.fan - 1);
  std::string label = spec.fan == 1
                          ? "var 0 (region)"
                          : "vars 0-" + std::to_string(spec.fan - 1) +
                                " (regions)";
  return {{std::move(label), 0, hi}};
}

std::vector<std::string> default_corpus() {
  return {
      "syn:migratory/cs32/fan4/seed7",
      "syn:migratory/cs512/fan2/seed11",
      "syn:producer-consumer/fan4/seed3",
      "syn:producer-consumer/cs128/fan8/seed5",
      "syn:read-mostly/fan4/cells96/seed13",
      "syn:read-mostly/cs16/fan1/seed31",
      "syn:hotspot/cs64/fan8/seed17",
      "syn:hotspot/fan2/cells48/seed19",
      "syn:mixed/fan6/seed23",
      "syn:mixed/cs256/fan3/cells40/seed29",
  };
}

}  // namespace aecdsm::apps::synthetic
