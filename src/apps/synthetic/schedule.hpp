// Explicit operation schedules with a sequential-reference oracle — the
// correctness backbone of every synthetic workload.
//
// A ScheduleSet is the fully materialized program of one run: per processor,
// barrier-separated rounds of lock-protected bursts (reads + read-modify-
// write updates of shared counter cells), private last-write-wins slots
// written outside any critical section, and modeled compute. Because the
// schedule is explicit data — generated once on the host, then both replayed
// sequentially (the oracle) and executed under the protocol (the run) — the
// two sides can never drift out of step the way paired RNG draws can.
//
// Why canonical replay is exact: all lock-protected mutations are
// commutative integer additions, so any interleaving the lock discipline
// permits within a round produces the same sums; private slots are
// last-write-wins, so they replay exactly as long as at most one processor
// writes a given slot per round (generators keep slots owner-private).
// Rounds are barrier-separated, so the oracle replays round-major: every
// processor's round r before any processor's round r+1. Any run whose final
// memory image differs from the replayed image under these rules has a
// coherence bug — which is precisely what the embedded oracle check exists
// to catch, under every registered consistency policy.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "apps/app_common.hpp"
#include "common/types.hpp"
#include "dsm/shared_array.hpp"

namespace aecdsm::apps::synthetic {

/// cells[cell] += delta inside the burst's critical section.
struct CellUpdate {
  std::uint32_t cell = 0;
  std::uint32_t delta = 0;
};

/// priv[slot] = value, outside any critical section. Slots must be written
/// by at most one processor per round (generators keep them owner-private).
struct PrivateWrite {
  std::uint32_t slot = 0;
  std::uint64_t value = 0;
};

/// One lock-protected episode: acquire `lock`, perform the pure reads and
/// the read-modify-write updates, model `cs_cycles` of compute, release.
struct LockBurst {
  LockId lock = 0;
  bool notice = false;   ///< issue lock_acquire_notice before acquiring
  Cycles cs_cycles = 0;  ///< modeled compute inside the critical section
  std::vector<std::uint32_t> reads;  ///< pure reads of shared cells
  std::vector<CellUpdate> updates;   ///< read-modify-writes under the lock

  bool empty() const { return reads.empty() && updates.empty(); }
};

/// One schedule step: an optional lock burst, then private writes and
/// modeled compute outside any critical section.
struct Op {
  LockBurst burst;  ///< skipped entirely when burst.empty()
  std::vector<PrivateWrite> writes;
  Cycles post_compute = 0;
};

/// One processor's program: rounds[r] runs between barrier r and r+1.
struct ProcSchedule {
  std::vector<std::vector<Op>> rounds;
};

/// The whole run: every processor's schedule over one shared image. All
/// processors must have the same number of rounds (they share barriers).
struct ScheduleSet {
  std::size_t cell_count = 0;  ///< shared commutative counter cells
  std::size_t priv_count = 0;  ///< shared last-write-wins slots
  std::vector<ProcSchedule> procs;

  std::size_t rounds() const {
    return procs.empty() ? 0 : procs.front().rounds.size();
  }
};

/// Throws SimError unless the set is well-formed: equal round counts, every
/// cell/slot index in range.
void validate(const ScheduleSet& set);

/// The sequential oracle's view of the final shared image.
struct OracleImage {
  std::vector<std::uint64_t> cells;
  std::vector<std::uint64_t> priv;

  /// Order-independent checksum over both arrays (apps::mix_into).
  std::uint64_t checksum() const;
};

/// Replay the set on the host in canonical round-major order (for each
/// round, processors 0..N-1 in turn) and return the reference image.
OracleImage replay_sequential(const ScheduleSet& set);

/// Execute one processor's schedule against the shared arrays, with a
/// barrier after every round. The simulation-side twin of replay_sequential.
void execute_schedule(dsm::Context& ctx, const ProcSchedule& sched,
                      const dsm::SharedArray<std::uint64_t>& cells,
                      const dsm::SharedArray<std::uint64_t>& priv);

/// A dsm::App around any ScheduleSet: setup builds the set for the actual
/// machine size, replays the oracle and allocates the shared image; the body
/// executes each processor's schedule; processor 0 then audits the final
/// image cell-for-cell against the oracle. SyntheticApp (workload.hpp) and
/// the randomized property suite both build on this one implementation.
class ScheduleApp : public AppBase {
 public:
  using Builder = std::function<ScheduleSet(int nprocs)>;

  /// `shared_bytes` must bound the set's shared image for any machine the
  /// app will run on (cells + priv, in 64-bit words, plus page slack).
  ScheduleApp(std::string name, std::size_t shared_bytes, Builder build);

  std::string name() const override { return name_; }
  std::size_t shared_bytes() const override { return bytes_; }
  void setup(dsm::Machine& m) override;
  void body(dsm::Context& ctx) override;

  const ScheduleSet& schedule() const { return set_; }
  const OracleImage& oracle() const { return oracle_; }

 private:
  std::string name_;
  std::size_t bytes_;
  Builder build_;
  ScheduleSet set_;
  OracleImage oracle_;
  dsm::SharedArray<std::uint64_t> cells_;
  dsm::SharedArray<std::uint64_t> priv_;
};

}  // namespace aecdsm::apps::synthetic
