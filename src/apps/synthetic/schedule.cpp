#include "apps/synthetic/schedule.hpp"

#include <utility>

#include "common/check.hpp"
#include "common/log.hpp"

namespace aecdsm::apps::synthetic {

void validate(const ScheduleSet& set) {
  AECDSM_CHECK_MSG(!set.procs.empty(), "schedule set has no processors");
  const std::size_t rounds = set.procs.front().rounds.size();
  for (std::size_t p = 0; p < set.procs.size(); ++p) {
    const ProcSchedule& sched = set.procs[p];
    AECDSM_CHECK_MSG(sched.rounds.size() == rounds,
                     "proc " << p << " has " << sched.rounds.size()
                             << " rounds, proc 0 has " << rounds
                             << " (rounds are barrier-separated and must match)");
    for (const std::vector<Op>& round : sched.rounds) {
      for (const Op& op : round) {
        for (const std::uint32_t c : op.burst.reads) {
          AECDSM_CHECK_MSG(c < set.cell_count,
                           "read of cell " << c << " out of " << set.cell_count);
        }
        for (const CellUpdate& u : op.burst.updates) {
          AECDSM_CHECK_MSG(u.cell < set.cell_count,
                           "update of cell " << u.cell << " out of "
                                             << set.cell_count);
        }
        for (const PrivateWrite& w : op.writes) {
          AECDSM_CHECK_MSG(w.slot < set.priv_count,
                           "private write to slot " << w.slot << " out of "
                                                    << set.priv_count);
        }
      }
    }
  }
}

std::uint64_t OracleImage::checksum() const {
  std::uint64_t acc = 0;
  for (const std::uint64_t v : cells) acc = mix_into(acc, v);
  for (const std::uint64_t v : priv) acc = mix_into(acc, v);
  return acc;
}

OracleImage replay_sequential(const ScheduleSet& set) {
  validate(set);
  OracleImage img;
  img.cells.assign(set.cell_count, 0);
  img.priv.assign(set.priv_count, 0);
  // Round-major: rounds are barrier-separated, so every processor's round r
  // lands before any processor's round r+1. Within a round, per-processor
  // order is arbitrary for the oracle because updates commute and private
  // slots have at most one writer per round.
  for (std::size_t r = 0; r < set.rounds(); ++r) {
    for (const ProcSchedule& sched : set.procs) {
      for (const Op& op : sched.rounds[r]) {
        for (const CellUpdate& u : op.burst.updates) {
          img.cells[u.cell] += u.delta;
        }
        for (const PrivateWrite& w : op.writes) {
          img.priv[w.slot] = w.value;
        }
      }
    }
  }
  return img;
}

void execute_schedule(dsm::Context& ctx, const ProcSchedule& sched,
                      const dsm::SharedArray<std::uint64_t>& cells,
                      const dsm::SharedArray<std::uint64_t>& priv) {
  for (const std::vector<Op>& round : sched.rounds) {
    for (const Op& op : round) {
      if (!op.burst.empty()) {
        if (op.burst.notice) ctx.lock_acquire_notice(op.burst.lock);
        ctx.lock(op.burst.lock);
        std::uint64_t sink = 0;
        for (const std::uint32_t c : op.burst.reads) {
          sink ^= cells.get(ctx, c);
        }
        for (const CellUpdate& u : op.burst.updates) {
          cells.put(ctx, u.cell, cells.get(ctx, u.cell) + u.delta);
        }
        if (op.burst.cs_cycles > 0) ctx.compute(op.burst.cs_cycles);
        ctx.unlock(op.burst.lock);
        // The read sink is dead by construction; keep the compiler honest.
        if (sink == 0x5DEECE66DULL) ctx.compute(1);
      }
      for (const PrivateWrite& w : op.writes) {
        priv.put(ctx, w.slot, w.value);
      }
      if (op.post_compute > 0) ctx.compute(op.post_compute);
    }
    ctx.barrier();
  }
}

ScheduleApp::ScheduleApp(std::string name, std::size_t shared_bytes,
                         Builder build)
    : name_(std::move(name)), bytes_(shared_bytes), build_(std::move(build)) {}

void ScheduleApp::setup(dsm::Machine& m) {
  set_ = build_(m.nprocs());
  AECDSM_CHECK_MSG(set_.procs.size() == static_cast<std::size_t>(m.nprocs()),
                   name_ << ": builder produced " << set_.procs.size()
                         << " proc schedules for " << m.nprocs() << " procs");
  oracle_ = replay_sequential(set_);
  cells_ = dsm::SharedArray<std::uint64_t>::alloc(m, set_.cell_count);
  priv_ = dsm::SharedArray<std::uint64_t>::alloc(m, set_.priv_count);
  const std::size_t need = (set_.cell_count + set_.priv_count) * sizeof(std::uint64_t);
  AECDSM_CHECK_MSG(need <= bytes_, name_ << ": shared image " << need
                                         << " B exceeds declared bound "
                                         << bytes_ << " B");
}

void ScheduleApp::body(dsm::Context& ctx) {
  execute_schedule(ctx, set_.procs[static_cast<std::size_t>(ctx.pid())], cells_,
                   priv_);
  ctx.barrier();
  if (ctx.pid() != 0) return;
  bool all_match = true;
  for (std::size_t i = 0; i < set_.cell_count; ++i) {
    const std::uint64_t v = cells_.get(ctx, i);
    if (v != oracle_.cells[i]) {
      all_match = false;
      AECDSM_DEBUG(name_ << " cell " << i << ": got " << v << " want "
                         << oracle_.cells[i]);
    }
  }
  for (std::size_t i = 0; i < set_.priv_count; ++i) {
    const std::uint64_t v = priv_.get(ctx, i);
    if (v != oracle_.priv[i]) {
      all_match = false;
      AECDSM_DEBUG(name_ << " priv slot " << i << ": got " << v << " want "
                         << oracle_.priv[i]);
    }
  }
  set_ok(all_match);
}

}  // namespace aecdsm::apps::synthetic
