// Factory for the paper's application suite (§4.2), with two preset input
// scales: "small" for tests and quick runs, "default" for the benchmark
// harness (scaled-down but representative inputs; see DESIGN.md §5).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dsm/app.hpp"

namespace aecdsm::apps {

enum class Scale { kSmall, kDefault };

/// Names in the paper's order: IS, Raytrace, Water-ns, FFT, Ocean, Water-sp.
/// Synthetic `syn:` workload specs (apps/synthetic/workload.hpp) are also
/// accepted by make_app/lock_groups but not listed here.
std::vector<std::string> app_names();

/// Build an application by paper name or `syn:` workload spec; throws
/// SimError (listing the valid names and the spec grammar) on unknown names.
std::unique_ptr<dsm::App> make_app(const std::string& name, Scale scale);

/// Logical grouping of an application's lock variables, mirroring how the
/// paper's Table 3 groups related variables (inclusive lock-id ranges).
struct LockGroup {
  std::string label;
  LockId lo = 0;
  LockId hi = 0;
};

std::vector<LockGroup> lock_groups(const std::string& name, Scale scale, int nprocs);

}  // namespace aecdsm::apps
