#include "apps/water_ns.hpp"

#include "common/check.hpp"
#include "common/log.hpp"

namespace aecdsm::apps {

namespace {

// Fixed-point "physics": deterministic, overflow-safe, order-independent.

std::int64_t clip(std::int64_t v) { return (v << 20) >> 20; }  // keep 44 bits

void init_position(std::size_t mol, std::int64_t out[3]) {
  std::uint64_t z = (static_cast<std::uint64_t>(mol) + 7) * 0xD1B54A32D192ED03ULL;
  for (int d = 0; d < 3; ++d) {
    z = (z ^ (z >> 29)) * 0x9E3779B97F4A7C15ULL;
    out[d] = static_cast<std::int64_t>(z & 0xFFFFF) - 0x80000;
  }
}

/// Pairwise interaction on molecule i from molecule j (antisymmetric).
void pair_force(const std::int64_t pi[3], const std::int64_t pj[3],
                std::int64_t out[3]) {
  for (int d = 0; d < 3; ++d) {
    const std::int64_t diff = clip(pi[d] - pj[d]);
    out[d] = clip(diff - (diff >> 3) + ((diff * diff) >> 24));
  }
}

std::int64_t potential_of(const std::int64_t f[3]) {
  return clip((f[0] >> 2) + (f[1] >> 3) + (f[2] >> 4));
}

void advance_position(std::int64_t pos[3], const std::int64_t force[3]) {
  for (int d = 0; d < 3; ++d) pos[d] = clip(pos[d] + (force[d] >> 6));
}

}  // namespace

void WaterNsApp::setup(dsm::Machine& m) {
  mol_ = dsm::SharedArray<std::int64_t>::alloc(m, cfg_.molecules * 8);
  globals_ = dsm::SharedArray<std::int64_t>::alloc(m, 64);

  // Sequential oracle: identical phase structure on host arrays.
  const std::size_t n = cfg_.molecules;
  std::vector<std::int64_t> pos(n * 3), force(n * 3, 0);
  for (std::size_t i = 0; i < n; ++i) init_position(i, &pos[i * 3]);
  std::int64_t potential = 0;
  for (int step = 0; step < cfg_.steps; ++step) {
    std::fill(force.begin(), force.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < std::min(n, i + 1 + n / 2); ++j) {
        std::int64_t f[3];
        pair_force(&pos[i * 3], &pos[j * 3], f);
        // Plain additions keep accumulation commutative, so the parallel
        // run (any lock-arrival order) reproduces the oracle exactly.
        for (int d = 0; d < 3; ++d) {
          force[i * 3 + d] += f[d];
          force[j * 3 + d] -= f[d];
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      advance_position(&pos[i * 3], &force[i * 3]);
      potential += potential_of(&force[i * 3]);
    }
  }
  oracle_pos_ = pos;
  oracle_potential_ = potential;
  oracle_checksum_ = 0;
  for (std::size_t i = 0; i < n * 3; ++i) {
    oracle_checksum_ = mix_into(oracle_checksum_, static_cast<std::uint64_t>(pos[i]));
  }
  oracle_checksum_ = mix_into(oracle_checksum_, static_cast<std::uint64_t>(potential));
}

void WaterNsApp::body(dsm::Context& ctx) {
  const int np = ctx.nprocs();
  const int me = ctx.pid();
  const std::size_t n = cfg_.molecules;
  const Block mb = block_of(n, np, me);

  auto pos_addr = [&](std::size_t i, int d) { return i * 8 + static_cast<std::size_t>(d); };
  auto force_addr = [&](std::size_t i, int d) {
    return i * 8 + 3 + static_cast<std::size_t>(d);
  };

  // Initialization: each processor places its own molecules.
  for (std::size_t i = mb.begin; i < mb.end; ++i) {
    std::int64_t p[3];
    init_position(i, p);
    for (int d = 0; d < 3; ++d) mol_.put(ctx, pos_addr(i, d), p[d]);
    ctx.compute(20);
  }
  if (me == 0) {
    globals_.put(ctx, 0, 0);  // potential
  }
  ctx.barrier();
  ctx.barrier();  // INTRAF-style phase split of the original program
  ctx.barrier();

  for (int step = 0; step < cfg_.steps; ++step) {
    // Phase 1: owners clear their molecules' force accumulators.
    for (std::size_t i = mb.begin; i < mb.end; ++i) {
      for (int d = 0; d < 3; ++d) mol_.put(ctx, force_addr(i, d), 0);
    }
    ctx.barrier();
    ctx.barrier();  // predictor phase (compute only in the original)

    // Phase 2: O(n^2) pair interactions; partial forces accumulate locally,
    // then flow into the shared per-molecule records under their locks.
    std::vector<std::int64_t> local(n * 3, 0);
    std::vector<bool> touched(n, false);
    for (std::size_t i = mb.begin; i < mb.end; ++i) {
      for (std::size_t j = i + 1; j < std::min(n, i + 1 + n / 2); ++j) {
        std::int64_t pi[3], pj[3], f[3];
        for (int d = 0; d < 3; ++d) pi[d] = mol_.get(ctx, pos_addr(i, d));
        for (int d = 0; d < 3; ++d) pj[d] = mol_.get(ctx, pos_addr(j, d));
        ctx.compute(80);
        pair_force(pi, pj, f);
        for (int d = 0; d < 3; ++d) {
          local[i * 3 + d] += f[d];
          local[j * 3 + d] -= f[d];
        }
        touched[i] = touched[j] = true;
      }
    }
    // Visit molecules starting at the own block so processors sweep the
    // lock space in staggered order (less contention, more transfers).
    std::vector<std::size_t> mols;
    for (std::size_t i = 0; i < n; ++i) {
      if (touched[(i + mb.begin) % n]) mols.push_back((i + mb.begin) % n);
    }
    for (std::size_t k = 0; k < mols.size(); ++k) {
      // Acquire notices a few locks ahead: the compiler-inserted
      // virtual-queue hints of the paper (the lead distance gives the
      // notice time to reach the manager before the predecessor's grant).
      if (k + 6 < mols.size()) {
        ctx.lock_acquire_notice(molecule_lock(mols[k + 6]));
      }
      if (k == 0) {
        for (std::size_t ahead = 0; ahead < std::min<std::size_t>(6, mols.size()); ++ahead) {
          ctx.lock_acquire_notice(molecule_lock(mols[ahead]));
        }
      }
      const std::size_t i = mols[k];
      ctx.lock(molecule_lock(i));
      for (int d = 0; d < 3; ++d) {
        const std::int64_t cur = mol_.get(ctx, force_addr(i, d));
        mol_.put(ctx, force_addr(i, d), cur + local[i * 3 + d]);
      }
      ctx.unlock(molecule_lock(i));
      ctx.compute(60);
    }
    ctx.barrier();
    ctx.barrier();  // force-scaling phase of the original

    // Phase 3: owners advance their molecules and accumulate the potential
    // under a global lock.
    std::int64_t my_potential = 0;
    for (std::size_t i = mb.begin; i < mb.end; ++i) {
      std::int64_t p[3], f[3];
      for (int d = 0; d < 3; ++d) p[d] = mol_.get(ctx, pos_addr(i, d));
      for (int d = 0; d < 3; ++d) f[d] = mol_.get(ctx, force_addr(i, d));
      advance_position(p, f);
      for (int d = 0; d < 3; ++d) mol_.put(ctx, pos_addr(i, d), p[d]);
      my_potential += potential_of(f);
      ctx.compute(60);
    }
    ctx.lock(global_lock(0));
    globals_.put(ctx, 0, globals_.get(ctx, 0) + my_potential);
    ctx.unlock(global_lock(0));
    ctx.barrier();
    ctx.barrier();  // kinetic-energy phase of the original
  }

  if (me == 0) {
    std::uint64_t checksum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (int d = 0; d < 3; ++d) {
        const std::int64_t v = mol_.get(ctx, pos_addr(i, d));
        if (!oracle_pos_.empty() && v != oracle_pos_[i * 3 + static_cast<std::size_t>(d)]) {
          AECDSM_DEBUG("water-ns mismatch mol " << i << " d" << d << ": got " << v
                                                << " want " << oracle_pos_[i * 3 + d]);
        }
        checksum = mix_into(checksum, static_cast<std::uint64_t>(v));
      }
    }
    const std::int64_t pot = globals_.get(ctx, 0);
    if (pot != oracle_potential_) {
      AECDSM_DEBUG("water-ns potential mismatch: got " << pot << " want "
                                                       << oracle_potential_);
    }
    checksum = mix_into(checksum, static_cast<std::uint64_t>(pot));
    set_ok(checksum == oracle_checksum_);
  }
}

}  // namespace aecdsm::apps
