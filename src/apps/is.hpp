// IS — integer sort by bucket ranking (Rice University kernel, paper §4.2).
//
// Each iteration: every processor ranks its block of keys into a private
// histogram, then updates the single shared bucket array inside the one
// critical section of the program (processors write the whole array there,
// which is why IS has large merged diffs and release-point diff creation in
// the paper's Table 4); a barrier follows the contended section, then every
// processor reads the shared array to compute its keys' final ranks.
#pragma once

#include <vector>

#include "apps/app_common.hpp"

namespace aecdsm::apps {

struct IsConfig {
  std::size_t num_keys = 16 * 1024;  ///< paper: 64K
  std::size_t num_buckets = 4096;  ///< rank array: 4 pages -> multi-page CS diffs
  int iterations = 5;                ///< paper: 80 acquires / 16 procs = 5
};

class IsApp : public AppBase {
 public:
  explicit IsApp(IsConfig cfg = {}) : cfg_(cfg) {}

  std::string name() const override { return "IS"; }
  std::size_t shared_bytes() const override {
    return (cfg_.num_keys + cfg_.num_buckets) * sizeof(std::uint32_t) + 16 * 4096;
  }

  void setup(dsm::Machine& m) override;
  void body(dsm::Context& ctx) override;

  const IsConfig& config() const { return cfg_; }

 private:
  IsConfig cfg_;
  dsm::SharedArray<std::uint32_t> keys_;
  dsm::SharedArray<std::uint32_t> buckets_;
  dsm::SharedArray<std::uint64_t> results_;  ///< per-proc checksum slots (padded)
  std::uint64_t oracle_checksum_ = 0;
};

}  // namespace aecdsm::apps
