// Ocean — eddy/boundary-current simulation reduced to its computational
// core: iterative 5-point stencil relaxation over a shared grid with
// barrier-separated phases and a small set of locks for global reductions
// (paper §4.2: 4 locks — processor ids and global sums — plus hundreds of
// barrier events).
//
// The stencil runs a fixed number of Jacobi iterations (deterministic); the
// residual reduction accumulates in scaled 64-bit integers so the parallel
// sum matches the sequential oracle exactly.
#pragma once

#include <vector>

#include "apps/app_common.hpp"

namespace aecdsm::apps {

struct OceanConfig {
  std::size_t grid = 34;  ///< grid edge incl. boundary (paper: 258)
  int iterations = 20;
  int reduce_every = 2;   ///< residual reduction cadence (lock traffic)
};

class OceanApp : public AppBase {
 public:
  explicit OceanApp(OceanConfig cfg = {}) : cfg_(cfg) {}

  std::string name() const override { return "Ocean"; }
  std::size_t shared_bytes() const override {
    return cfg_.grid * cfg_.grid * sizeof(double) * 2 + 8 * 4096;
  }
  void setup(dsm::Machine& m) override;
  void body(dsm::Context& ctx) override;

  const OceanConfig& config() const { return cfg_; }

 private:
  OceanConfig cfg_;
  dsm::SharedArray<double> grid_a_;
  dsm::SharedArray<double> grid_b_;
  dsm::SharedArray<std::int64_t> globals_;  ///< [id_count, residual, sum2, sum3]
  std::vector<double> oracle_grid_;   ///< final oracle grid (debug aid)
  std::int64_t oracle_residual_ = 0;  ///< final oracle residual (debug aid)
  std::uint64_t oracle_checksum_ = 0;
};

}  // namespace aecdsm::apps
