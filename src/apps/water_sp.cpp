#include "apps/water_sp.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/check.hpp"
#include "common/log.hpp"

namespace aecdsm::apps {

namespace {

std::int64_t clip(std::int64_t v) { return (v << 20) >> 20; }

int trace_mol() {
  static const int m = [] {
    const char* v = std::getenv("AECDSM_WSP_TRACE");
    return v == nullptr ? -1 : std::atoi(v);
  }();
  return m;
}

void init_position(std::size_t mol, std::int64_t out[3]) {
  std::uint64_t z = (static_cast<std::uint64_t>(mol) + 13) * 0xD1B54A32D192ED03ULL;
  for (int d = 0; d < 3; ++d) {
    z = (z ^ (z >> 29)) * 0x9E3779B97F4A7C15ULL;
    out[d] = static_cast<std::int64_t>(z & 0xFFFFF);  // non-negative: cell mapping
  }
}

void pair_force(const std::int64_t pi[3], const std::int64_t pj[3],
                std::int64_t out[3]) {
  for (int d = 0; d < 3; ++d) {
    const std::int64_t diff = clip(pi[d] - pj[d]);
    out[d] = clip(diff - (diff >> 2) + ((diff * diff) >> 26));
  }
}

std::int64_t potential_of(const std::int64_t f[3]) {
  return clip((f[0] >> 2) + (f[1] >> 3) + (f[2] >> 4));
}

void advance_position(std::int64_t pos[3], const std::int64_t force[3]) {
  for (int d = 0; d < 3; ++d) {
    pos[d] = (pos[d] + (force[d] >> 7)) & 0xFFFFF;  // wrap within the box
  }
}

/// Cell of a molecule from its (x, y) position (2-D decomposition).
std::size_t cell_of(const std::int64_t pos[3], std::size_t cells) {
  const std::size_t cx = static_cast<std::size_t>(pos[0]) * cells >> 20;
  const std::size_t cy = static_cast<std::size_t>(pos[1]) * cells >> 20;
  return std::min(cy, cells - 1) * cells + std::min(cx, cells - 1);
}

}  // namespace

void WaterSpApp::setup(dsm::Machine& m) {
  const std::size_t n = cfg_.molecules;
  const std::size_t nc = cfg_.cells * cfg_.cells;
  mol_ = dsm::SharedArray<std::int64_t>::alloc(m, n * 8);
  cells_ = dsm::SharedArray<std::uint32_t>::alloc(m, nc * (n + 1));
  globals_ = dsm::SharedArray<std::int64_t>::alloc(m, 64);

  // Oracle: same phases, sequentially.
  std::vector<std::int64_t> pos(n * 3), force(n * 3);
  for (std::size_t i = 0; i < n; ++i) init_position(i, &pos[i * 3]);
  std::int64_t potential = 0;
  for (int step = 0; step < cfg_.steps; ++step) {
    std::vector<std::vector<std::uint32_t>> lists(nc);
    for (std::size_t i = 0; i < n; ++i) {
      lists[cell_of(&pos[i * 3], cfg_.cells)].push_back(static_cast<std::uint32_t>(i));
    }
    oracle_lists_.push_back(lists);
    oracle_step_pos_.push_back(pos);
    std::fill(force.begin(), force.end(), 0);
    for (std::size_t cy = 0; cy < cfg_.cells; ++cy) {
      for (std::size_t cx = 0; cx < cfg_.cells; ++cx) {
        for (const std::uint32_t i : lists[cy * cfg_.cells + cx]) {
          for (std::size_t dy = 0; dy < 3; ++dy) {
            for (std::size_t dx = 0; dx < 3; ++dx) {
              const std::size_t ny = (cy + dy + cfg_.cells - 1) % cfg_.cells;
              const std::size_t nx = (cx + dx + cfg_.cells - 1) % cfg_.cells;
              for (const std::uint32_t j : lists[ny * cfg_.cells + nx]) {
                if (j == i) continue;
                std::int64_t f[3];
                pair_force(&pos[i * 3], &pos[j * 3], f);
                for (int d = 0; d < 3; ++d) force[i * 3 + d] += f[d];
                if (trace_mol() == static_cast<int>(i) && step == cfg_.steps - 1) {
                  AECDSM_DEBUG("oracle mol" << i << " pair j" << j << " pj="
                                            << pos[j * 3] << " f0=" << f[0]);
                }
              }
            }
          }
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      advance_position(&pos[i * 3], &force[i * 3]);
      potential += potential_of(&force[i * 3]);
    }
  }
  oracle_pos_ = pos;
  oracle_checksum_ = 0;
  for (std::size_t i = 0; i < n * 3; ++i) {
    oracle_checksum_ = mix_into(oracle_checksum_, static_cast<std::uint64_t>(pos[i]));
  }
  oracle_checksum_ = mix_into(oracle_checksum_, static_cast<std::uint64_t>(potential));
}

void WaterSpApp::body(dsm::Context& ctx) {
  const std::size_t n = cfg_.molecules;
  const std::size_t nc = cfg_.cells * cfg_.cells;
  const int np = ctx.nprocs();
  const int me = ctx.pid();
  const Block mb = block_of(n, np, me);       // molecule blocks (init only)
  const Block cb = block_of(nc, np, me);      // owned cells
  const std::size_t cell_stride = n + 1;

  auto pos_addr = [&](std::size_t i, int d) { return i * 8 + static_cast<std::size_t>(d); };
  auto force_addr = [&](std::size_t i, int d) {
    return i * 8 + 3 + static_cast<std::size_t>(d);
  };

  // The paper's 6 global lock variables.
  const LockId kIdLock = 0, kPotLock = 1, kKinLock = 2;
  const LockId kSumLock[3] = {3, 4, 5};

  ctx.lock(kIdLock);
  globals_.put(ctx, 0, globals_.get(ctx, 0) + 1);
  ctx.unlock(kIdLock);

  for (std::size_t i = mb.begin; i < mb.end; ++i) {
    std::int64_t p[3];
    init_position(i, p);
    for (int d = 0; d < 3; ++d) mol_.put(ctx, pos_addr(i, d), p[d]);
    ctx.compute(20);
  }
  ctx.barrier();
  ctx.barrier();  // system-setup phase split of the original

  for (int step = 0; step < cfg_.steps; ++step) {
    // Phase 1: rebuild the molecule lists of the owned cells (reads every
    // position, writes only the owned cells).
    std::vector<std::uint32_t> counts(nc, 0);
    for (std::size_t i = 0; i < n; ++i) {
      std::int64_t p[3];
      for (int d = 0; d < 3; ++d) p[d] = mol_.get(ctx, pos_addr(i, d));
      const std::size_t cell = cell_of(p, cfg_.cells);
      if (cell >= cb.begin && cell < cb.end) {
        cells_.put(ctx, cell * cell_stride + 1 + counts[cell],
                   static_cast<std::uint32_t>(i));
        ++counts[cell];
      }
      ctx.compute(10);
    }
    for (std::size_t cell = cb.begin; cell < cb.end; ++cell) {
      cells_.put(ctx, cell * cell_stride, counts[cell]);
    }
    ctx.barrier();

    // Phase 2: forces for molecules in the owned cells; every pair is
    // evaluated from both sides, so all writes stay local to the owner.
    std::int64_t my_potential = 0;
    for (std::size_t cell = cb.begin; cell < cb.end; ++cell) {
      const std::size_t cy = cell / cfg_.cells;
      const std::size_t cx = cell % cfg_.cells;
      const std::uint32_t cnt = cells_.get(ctx, cell * cell_stride);
      if (!oracle_lists_.empty() &&
          cnt != oracle_lists_[static_cast<std::size_t>(step)][cell].size()) {
        AECDSM_DEBUG("p" << me << " step" << step << " cell" << cell
                         << " count=" << cnt << " want "
                         << oracle_lists_[static_cast<std::size_t>(step)][cell].size());
      }
      for (std::uint32_t k = 0; k < cnt; ++k) {
        const std::uint32_t i = cells_.get(ctx, cell * cell_stride + 1 + k);
        if (!oracle_lists_.empty() &&
            (k >= oracle_lists_[static_cast<std::size_t>(step)][cell].size() ||
             i != oracle_lists_[static_cast<std::size_t>(step)][cell][k])) {
          AECDSM_DEBUG("p" << me << " step" << step << " cell" << cell << " slot" << k
                           << " id=" << i);
        }
        std::int64_t pi[3], acc[3] = {0, 0, 0};
        for (int d = 0; d < 3; ++d) pi[d] = mol_.get(ctx, pos_addr(i, d));
        for (std::size_t dy = 0; dy < 3; ++dy) {
          for (std::size_t dx = 0; dx < 3; ++dx) {
            const std::size_t ny = (cy + dy + cfg_.cells - 1) % cfg_.cells;
            const std::size_t nx = (cx + dx + cfg_.cells - 1) % cfg_.cells;
            const std::size_t ncell = ny * cfg_.cells + nx;
            const std::uint32_t ncnt = cells_.get(ctx, ncell * cell_stride);
            if (!oracle_lists_.empty() &&
                ncnt != oracle_lists_[static_cast<std::size_t>(step)][ncell].size()) {
              AECDSM_DEBUG("p" << me << " step" << step << " ncell" << ncell
                               << " count=" << ncnt << " want "
                               << oracle_lists_[static_cast<std::size_t>(step)][ncell].size());
            }
            for (std::uint32_t kk = 0; kk < ncnt; ++kk) {
              const std::uint32_t j = cells_.get(ctx, ncell * cell_stride + 1 + kk);
              if (j == i) continue;
              std::int64_t pj[3], f[3];
              for (int d = 0; d < 3; ++d) pj[d] = mol_.get(ctx, pos_addr(j, d));
              if (!oracle_step_pos_.empty() &&
                  pj[0] != oracle_step_pos_[static_cast<std::size_t>(step)][j * 3]) {
                AECDSM_DEBUG("p" << me << " step" << step << " stale pos mol" << j
                                 << ": got " << pj[0] << " want "
                                 << oracle_step_pos_[static_cast<std::size_t>(step)][j * 3]);
              }
              ctx.compute(60);
              pair_force(pi, pj, f);
              for (int d = 0; d < 3; ++d) acc[d] += f[d];
              if (trace_mol() == static_cast<int>(i) && step == cfg_.steps - 1) {
                AECDSM_DEBUG("p" << me << " mol" << i << " pair j" << j << " pj="
                                 << pj[0] << " f0=" << f[0]);
              }
            }
          }
        }
        for (int d = 0; d < 3; ++d) mol_.put(ctx, force_addr(i, d), acc[d]);
        my_potential += potential_of(acc);
      }
    }
    ctx.barrier();

    // Phase 3: advance the owned cells' molecules; global reductions under
    // the remaining locks.
    for (std::size_t cell = cb.begin; cell < cb.end; ++cell) {
      const std::uint32_t cnt = cells_.get(ctx, cell * cell_stride);
      for (std::uint32_t k = 0; k < cnt; ++k) {
        const std::uint32_t i = cells_.get(ctx, cell * cell_stride + 1 + k);
        std::int64_t p[3], f[3];
        for (int d = 0; d < 3; ++d) p[d] = mol_.get(ctx, pos_addr(i, d));
        for (int d = 0; d < 3; ++d) f[d] = mol_.get(ctx, force_addr(i, d));
        advance_position(p, f);
        if (trace_mol() == static_cast<int>(i)) {
          AECDSM_DEBUG("p" << me << " advance mol" << i << " step" << step
                           << " f0=" << f[0] << " new_pos0=" << p[0]);
        }
        for (int d = 0; d < 3; ++d) mol_.put(ctx, pos_addr(i, d), p[d]);
        ctx.compute(40);
      }
    }
    ctx.lock(kPotLock);
    globals_.put(ctx, 8, globals_.get(ctx, 8) + my_potential);
    ctx.unlock(kPotLock);
    ctx.lock(kKinLock);
    globals_.put(ctx, 16, globals_.get(ctx, 16) + (my_potential >> 3));
    ctx.unlock(kKinLock);
    for (int s = 0; s < 3; ++s) {
      ctx.lock(kSumLock[s]);
      globals_.put(ctx, 24 + static_cast<std::size_t>(s) * 8,
                   globals_.get(ctx, 24 + static_cast<std::size_t>(s) * 8) + 1);
      ctx.unlock(kSumLock[s]);
    }
    ctx.barrier();
    ctx.barrier();  // bookkeeping phase splits of the original
    ctx.barrier();
    ctx.barrier();
  }
  ctx.barrier();

  if (me == 0) {
    std::uint64_t checksum = 0;
    for (std::size_t i = 0; i < n; ++i) {
      for (int d = 0; d < 3; ++d) {
        const std::int64_t v = mol_.get(ctx, pos_addr(i, d));
        if (oracle_pos_.size() == n * 3 &&
            v != oracle_pos_[i * 3 + static_cast<std::size_t>(d)]) {
          AECDSM_DEBUG("water-sp mismatch mol " << i << " d" << d << ": got " << v
                                                << " want "
                                                << oracle_pos_[i * 3 + d]);
        }
        checksum = mix_into(checksum, static_cast<std::uint64_t>(v));
      }
    }
    checksum = mix_into(checksum, static_cast<std::uint64_t>(globals_.get(ctx, 8)));
    set_ok(checksum == oracle_checksum_);
  }
}

}  // namespace aecdsm::apps
