#include "apps/registry.hpp"

#include "apps/fft.hpp"
#include "apps/is.hpp"
#include "apps/ocean.hpp"
#include "apps/raytrace.hpp"
#include "apps/synthetic/workload.hpp"
#include "apps/water_ns.hpp"
#include "apps/water_sp.hpp"
#include "common/check.hpp"

namespace aecdsm::apps {
namespace {

std::string app_names_joined() {
  std::string out;
  for (const std::string& n : app_names()) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

}  // namespace

std::vector<std::string> app_names() {
  return {"IS", "Raytrace", "Water-ns", "FFT", "Ocean", "Water-sp"};
}

std::unique_ptr<dsm::App> make_app(const std::string& name, Scale scale) {
  if (synthetic::WorkloadSpec::is_spec_name(name)) {
    return std::make_unique<synthetic::SyntheticApp>(
        synthetic::WorkloadSpec::parse(name), scale);
  }
  const bool small = scale == Scale::kSmall;
  if (name == "IS") {
    IsConfig cfg;
    if (small) {
      cfg.num_keys = 2048;
      cfg.num_buckets = 256;
      cfg.iterations = 2;
    }
    return std::make_unique<IsApp>(cfg);
  }
  if (name == "Raytrace") {
    RaytraceConfig cfg;
    if (small) {
      cfg.width = 32;
      cfg.height = 32;
    }
    return std::make_unique<RaytraceApp>(cfg);
  }
  if (name == "Water-ns") {
    WaterNsConfig cfg;
    if (small) {
      cfg.molecules = 32;
      cfg.steps = 2;
    }
    return std::make_unique<WaterNsApp>(cfg);
  }
  if (name == "FFT") {
    FftConfig cfg;
    if (small) cfg.m = 16;
    return std::make_unique<FftApp>(cfg);
  }
  if (name == "Ocean") {
    OceanConfig cfg;
    if (small) {
      cfg.grid = 18;
      cfg.iterations = 6;
    }
    return std::make_unique<OceanApp>(cfg);
  }
  if (name == "Water-sp") {
    WaterSpConfig cfg;
    if (small) {
      cfg.molecules = 32;
      cfg.steps = 2;
    }
    return std::make_unique<WaterSpApp>(cfg);
  }
  AECDSM_CHECK_MSG(false, "unknown application '"
                              << name << "'; registered applications: "
                              << app_names_joined()
                              << "; or a synthetic workload spec:\n"
                              << synthetic::WorkloadSpec::grammar());
}

std::vector<LockGroup> lock_groups(const std::string& name, Scale scale, int nprocs) {
  if (synthetic::WorkloadSpec::is_spec_name(name)) {
    return synthetic::spec_lock_groups(synthetic::WorkloadSpec::parse(name));
  }
  const bool small = scale == Scale::kSmall;
  if (name == "IS") return {{"var 0 (rank array)", 0, 0}};
  if (name == "Raytrace") {
    const LockId mem = static_cast<LockId>(nprocs);
    return {{"var 1 (memory mgmt)", mem, mem},
            {"vars 2-" + std::to_string(nprocs + 1) + " (task queues)", 0,
             static_cast<LockId>(nprocs - 1)}};
  }
  if (name == "Water-ns") {
    const LockId mols = small ? 32 : 64;
    return {{"vars 0-3 (global sums)", mols, mols + 5},
            {"vars 4-" + std::to_string(mols + 3) + " (molecules)", 0, mols - 1}};
  }
  if (name == "FFT") return {{"var 0 (proc ids)", 0, 0}};
  if (name == "Ocean") {
    return {{"var 0 (proc ids)", 0, 0}, {"vars 1-3 (global sums)", 1, 3}};
  }
  if (name == "Water-sp") return {{"vars 0-5 (global values)", 0, 5}};
  AECDSM_CHECK_MSG(false, "unknown application '"
                              << name << "'; registered applications: "
                              << app_names_joined()
                              << "; or a synthetic workload spec:\n"
                              << synthetic::WorkloadSpec::grammar());
}

}  // namespace aecdsm::apps
