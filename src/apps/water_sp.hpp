// Water-spatial — the O(n) cell-list variant of Water (paper §4.2). Space
// is divided into cells; each processor owns a block of cells, rebuilds
// their molecule lists each step, and computes forces for the molecules in
// its cells by scanning neighbour cells (each pair evaluated from both
// sides, so all force writes stay with the cell owner and no per-molecule
// locks are needed). Locks protect only the global accumulations — the
// paper's 6 lock variables.
#pragma once

#include <vector>

#include "apps/app_common.hpp"

namespace aecdsm::apps {

struct WaterSpConfig {
  std::size_t molecules = 64;  ///< paper: 512
  std::size_t cells = 4;       ///< cell grid edge (cells x cells)
  int steps = 5;
};

class WaterSpApp : public AppBase {
 public:
  explicit WaterSpApp(WaterSpConfig cfg = {}) : cfg_(cfg) {}

  std::string name() const override { return "Water-sp"; }
  std::size_t shared_bytes() const override {
    const std::size_t cell_words = cfg_.cells * cfg_.cells * (cfg_.molecules + 1);
    return cfg_.molecules * 8 * 8 + cell_words * 4 + 64 * 8 + 16 * 4096;
  }
  void setup(dsm::Machine& m) override;
  void body(dsm::Context& ctx) override;

  const WaterSpConfig& config() const { return cfg_; }

 private:
  WaterSpConfig cfg_;
  dsm::SharedArray<std::int64_t> mol_;      ///< per molecule: pos[3], force[3], pad[2]
  dsm::SharedArray<std::uint32_t> cells_;   ///< per cell: count + molecule ids
  dsm::SharedArray<std::int64_t> globals_;  ///< 6 lock-protected global sums
  std::vector<std::int64_t> oracle_pos_;  ///< final oracle positions (debug aid)
  /// Oracle start-of-step positions (debug aid).
  std::vector<std::vector<std::int64_t>> oracle_step_pos_;
  /// Oracle cell lists per step (debug aid for stale-list detection).
  std::vector<std::vector<std::vector<std::uint32_t>>> oracle_lists_;
  std::uint64_t oracle_checksum_ = 0;
};

}  // namespace aecdsm::apps
