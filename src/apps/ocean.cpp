#include "apps/ocean.hpp"

#include <cmath>
#include <cstring>

#include "common/check.hpp"
#include "common/log.hpp"

namespace aecdsm::apps {

namespace {

double initial_value(std::size_t r, std::size_t c) {
  std::uint64_t z = ((r + 3) * 0x9E3779B97F4A7C15ULL) ^ ((c + 5) * 0xD1B54A32D192ED03ULL);
  z = (z ^ (z >> 31)) * 0xBF58476D1CE4E5B9ULL;
  return static_cast<double>(z % 4096) / 2048.0 - 1.0;
}

std::int64_t scaled_residual(double a, double b) {
  return static_cast<std::int64_t>(std::fabs(a - b) * 1048576.0);
}

std::uint64_t bits_of(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

}  // namespace

void OceanApp::setup(dsm::Machine& m) {
  const std::size_t g = cfg_.grid;
  grid_a_ = dsm::SharedArray<double>::alloc(m, g * g);
  grid_b_ = dsm::SharedArray<double>::alloc(m, g * g);
  globals_ = dsm::SharedArray<std::int64_t>::alloc(m, 32);

  // Oracle: identical Jacobi sweep, sequentially.
  std::vector<double> a(g * g), b(g * g);
  for (std::size_t r = 0; r < g; ++r) {
    for (std::size_t c = 0; c < g; ++c) a[r * g + c] = initial_value(r, c);
  }
  b = a;
  std::int64_t residual = 0;
  double* src = a.data();
  double* dst = b.data();
  for (int it = 0; it < cfg_.iterations; ++it) {
    std::int64_t iter_residual = 0;
    for (std::size_t r = 1; r + 1 < g; ++r) {
      for (std::size_t c = 1; c + 1 < g; ++c) {
        const double v = 0.25 * (src[(r - 1) * g + c] + src[(r + 1) * g + c] +
                                 src[r * g + c - 1] + src[r * g + c + 1]);
        dst[r * g + c] = v;
        iter_residual += scaled_residual(v, src[r * g + c]);
      }
    }
    if ((it + 1) % cfg_.reduce_every == 0) residual += iter_residual;
    std::swap(src, dst);
  }
  oracle_grid_.assign(src, src + g * g);
  oracle_residual_ = residual;
  oracle_checksum_ = 0;
  for (std::size_t i = 0; i < g * g; ++i) {
    oracle_checksum_ = mix_into(oracle_checksum_, bits_of(src[i]));
  }
  oracle_checksum_ = mix_into(oracle_checksum_, static_cast<std::uint64_t>(residual));
}

void OceanApp::body(dsm::Context& ctx) {
  const std::size_t g = cfg_.grid;
  const int np = ctx.nprocs();
  const int me = ctx.pid();
  // Interior rows are block-partitioned.
  const Block rows = block_of(g - 2, np, me);

  // The program's id lock (lock 0).
  ctx.lock(0);
  globals_.put(ctx, 0, globals_.get(ctx, 0) + 1);
  ctx.unlock(0);

  // Distributed initialization: each proc fills its interior rows; proc 0
  // also fills the two boundary rows, the left/right columns come with the
  // row initialization.
  auto init_row = [&](std::size_t r) {
    for (std::size_t c = 0; c < g; ++c) {
      const double v = initial_value(r, c);
      grid_a_.put(ctx, r * g + c, v);
      grid_b_.put(ctx, r * g + c, v);
    }
  };
  for (std::size_t r = rows.begin + 1; r < rows.end + 1; ++r) init_row(r);
  if (me == 0) {
    init_row(0);
    init_row(g - 1);
    globals_.put(ctx, 1, 0);
  }
  ctx.barrier();

  dsm::SharedArray<double>* src = &grid_a_;
  dsm::SharedArray<double>* dst = &grid_b_;
  for (int it = 0; it < cfg_.iterations; ++it) {
    std::int64_t iter_residual = 0;
    for (std::size_t r = rows.begin + 1; r < rows.end + 1; ++r) {
      for (std::size_t c = 1; c + 1 < g; ++c) {
        const double v = 0.25 * (src->get(ctx, (r - 1) * g + c) +
                                 src->get(ctx, (r + 1) * g + c) +
                                 src->get(ctx, r * g + c - 1) +
                                 src->get(ctx, r * g + c + 1));
        dst->put(ctx, r * g + c, v);
        iter_residual += scaled_residual(v, src->get(ctx, r * g + c));
        ctx.compute(16);
      }
    }
    if ((it + 1) % cfg_.reduce_every == 0) {
      // Global residual reduction (lock 1), plus the auxiliary sums the
      // original accumulates (locks 2 and 3).
      ctx.lock(1);
      globals_.put(ctx, 1, globals_.get(ctx, 1) + iter_residual);
      ctx.unlock(1);
      ctx.lock(2);
      globals_.put(ctx, 2, globals_.get(ctx, 2) + (iter_residual >> 4));
      ctx.unlock(2);
      ctx.lock(3);
      globals_.put(ctx, 3, globals_.get(ctx, 3) + 1);
      ctx.unlock(3);
    }
    ctx.barrier();
    std::swap(src, dst);
    ctx.barrier();
  }

  if (me == 0) {
    std::uint64_t checksum = 0;
    int shown = 0;
    for (std::size_t i = 0; i < g * g; ++i) {
      const double v = src->get(ctx, i);
      if (!oracle_grid_.empty() && v != oracle_grid_[i] && shown < 6) {
        AECDSM_DEBUG("ocean mismatch cell (" << i / g << "," << i % g << "): got " << v
                                             << " want " << oracle_grid_[i]);
        ++shown;
      }
      checksum = mix_into(checksum, bits_of(v));
    }
    const std::int64_t res = globals_.get(ctx, 1);
    if (res != oracle_residual_) {
      AECDSM_DEBUG("ocean residual mismatch: got " << res << " want "
                                                   << oracle_residual_);
    }
    checksum = mix_into(checksum, static_cast<std::uint64_t>(res));
    set_ok(checksum == oracle_checksum_);
  }
}

}  // namespace aecdsm::apps
