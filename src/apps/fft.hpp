// FFT — complex 1-D FFT, six-step (transpose) formulation optimized to
// reduce interprocessor communication (paper §4.2). Synchronization is
// almost entirely barriers (7 events); the single lock only hands out
// process ids, exactly as in the original program.
//
// The sequential oracle runs the same six-step algorithm on host arrays,
// so the comparison is bitwise exact.
#pragma once

#include <vector>

#include "apps/app_common.hpp"

namespace aecdsm::apps {

struct FftConfig {
  std::size_t m = 64;  ///< matrix edge; n = m*m points (paper: 1024 -> 1M)
};

class FftApp : public AppBase {
 public:
  explicit FftApp(FftConfig cfg = {}) : cfg_(cfg) {}

  std::string name() const override { return "FFT"; }
  std::size_t shared_bytes() const override {
    return cfg_.m * cfg_.m * 2 * sizeof(double) * 2 + 8 * 4096;
  }
  void setup(dsm::Machine& m) override;
  void body(dsm::Context& ctx) override;

  const FftConfig& config() const { return cfg_; }

 private:
  FftConfig cfg_;
  dsm::SharedArray<double> a_;   ///< m x m complex matrix (interleaved re/im)
  dsm::SharedArray<double> b_;   ///< transpose scratch
  dsm::SharedArray<std::uint32_t> ids_;  ///< the id lock's shared counter
  std::uint64_t oracle_checksum_ = 0;
};

}  // namespace aecdsm::apps
