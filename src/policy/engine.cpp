#include "policy/engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <span>
#include <sstream>

#include "common/check.hpp"
#include "common/log.hpp"
#include "trace/recorder.hpp"

namespace aecdsm::policy {

std::vector<ProcId> lap_score_grant(LockLap& lap, ProcId from, ProcId to) {
  if (from != kNoProc) lap.record_transfer(from, to);
  lap.consume_notice(to);
  return lap.compute_update_set(to);
}

LockLap& scoring_lap(std::map<LockId, LockLap>& laps, const SystemParams& p,
                     LockId l) {
  auto it = laps.find(l);
  if (it == laps.end()) {
    it = laps.emplace(l, LockLap(p.num_procs, p.update_set_size,
                                 p.affinity_threshold))
             .first;
  }
  return it->second;
}

PolicyEngine::PolicyEngine(dsm::Machine& m, ProcId self, ConsistencyPolicy pol)
    : pol_(std::move(pol)), m_(m), self_(self) {}

PageId PolicyEngine::trace_page() {
  static const PageId pg = [] {
    const char* v = std::getenv("AECDSM_TRACE_PAGE");
    return v == nullptr ? kNoPage : static_cast<PageId>(std::atoi(v));
  }();
  return pg;
}

std::size_t PolicyEngine::trace_word() {
  static const std::size_t w = [] {
    const char* v = std::getenv("AECDSM_TRACE_WORD");
    return v == nullptr ? std::size_t{0} : static_cast<std::size_t>(std::atoi(v));
  }();
  return w;
}

void PolicyEngine::send_from_app(ProcId to, std::size_t bytes, Cycles svc_cost,
                                 std::function<void()> handler,
                                 sim::Bucket bucket, bool exclusive) {
  proc().advance(m_.params().message_overhead, bucket);
  proc().sync();
  if (exclusive) {
    m_.post_exclusive(self_, to, bytes, svc_cost, std::move(handler));
  } else {
    m_.post(self_, to, bytes, svc_cost, std::move(handler));
  }
}

void PolicyEngine::post_dynamic(ProcId from, ProcId to, std::size_t bytes,
                                std::function<Cycles()> cost,
                                std::function<void()> handler) {
  m_.transport().send(from, to, bytes,
                    [this, to, c = std::move(cost), h = std::move(handler)]() mutable {
                      const Cycles done = m_.node(to).proc->service(c());
                      m_.engine().schedule(done, std::move(h));
                    });
}

mem::Diff PolicyEngine::create_diff_charged(PageId pg, bool hidden,
                                            sim::Bucket bucket) {
  const Cycles c = m_.params().diff_create_cycles();
  const Cycles trace_t0 = proc().now();
  proc().advance(c, bucket);
  proc().sync();
  if (trace::Recorder* tr = m_.recorder()) {
    tr->span(self_, trace::Category::kDiff, trace::names::kDiffCreate, trace_t0,
             proc().now(), "page", pg, "hidden", hidden ? 1 : 0);
  }
  mem::Diff d = store().diff_against_twin(pg);
  if (pg == trace_page()) {
    std::ostringstream os;
    for (const auto& r : d.runs()) {
      if (r.word_offset <= 10 && 8 < r.word_offset + r.words.size()) {
        for (std::size_t k = 0; k < r.words.size(); ++k) {
          if (r.word_offset + k == trace_word()) {
            os << " w" << r.word_offset + k << "=" << r.words[k];
          }
        }
      }
    }
    AECDSM_DEBUG("p" << self_ << " create_diff pg" << pg << " twin[8..10]="
                     << (*store().frame(pg).twin)[8] << ","
                     << (*store().frame(pg).twin)[9] << ","
                     << (*store().frame(pg).twin)[10] << " frame[8..10]="
                     << store().frame(pg).data[8] << "," << store().frame(pg).data[9]
                     << "," << store().frame(pg).data[10] << " diff:" << os.str());
  }
  ++dstats_.diffs_created;
  dstats_.diff_bytes += d.encoded_bytes();
  dstats_.create_cycles += c;
  if (hidden) dstats_.create_hidden_cycles += c;
  return d;
}

void PolicyEngine::apply_diff_charged(PageId pg, const mem::Diff& d, bool hidden,
                                      sim::Bucket bucket) {
  if (pg == trace_page()) {
    std::ostringstream runs;
    long tw = -1;
    for (const auto& r : d.runs()) {
      runs << " @" << r.word_offset << "+" << r.words.size();
      if (r.word_offset <= trace_word() &&
          trace_word() < r.word_offset + r.words.size()) {
        tw = static_cast<long>(r.words[trace_word() - r.word_offset]);
      }
    }
    AECDSM_DEBUG("p" << self_ << " apply pg" << pg << " diff[w" << trace_word()
                     << "]=" << tw << " frame_before="
                     << store().frame(pg).data[trace_word()] << runs.str());
  }
  const Cycles c = m_.params().diff_apply_cycles(d.changed_words());
  const Cycles trace_t0 = proc().now();
  proc().advance(c, bucket);
  proc().sync();
  if (trace::Recorder* tr = m_.recorder()) {
    tr->span(self_, trace::Category::kDiff, trace::names::kDiffApply, trace_t0,
             proc().now(), "page", pg, "hidden", hidden ? 1 : 0);
  }
  mem::PageFrame& f = store().frame(pg);
  d.apply_to(std::span<Word>(f.data));
  // A live twin must see remote modifications too, or later twin-diffs of
  // this page would encode the remote words as if they were local writes.
  if (f.has_twin()) d.apply_to(std::span<Word>(*f.twin));
  ctx().invalidate_cache_page(pg);
  ++dstats_.diffs_applied;
  dstats_.apply_cycles += c;
  if (hidden) dstats_.apply_hidden_cycles += c;
}

void PolicyEngine::make_twin_charged(PageId pg, sim::Bucket bucket) {
  proc().advance(m_.params().twin_create_cycles(), bucket);
  store().make_twin(pg);
}

mem::Diff PolicyEngine::service_diff_create(PageId pg, Cycles& cost) {
  const Cycles c = m_.params().diff_create_cycles();
  cost += c;
  if (trace::Recorder* tr = m_.recorder()) {
    tr->span(self_, trace::Category::kDiff, trace::names::kDiffCreate,
             m_.engine().now(), m_.engine().now() + c, "page", pg, "svc", 1);
  }
  ++dstats_.diffs_created;
  dstats_.create_cycles += c;
  mem::Diff d = store().diff_against_twin(pg);
  dstats_.diff_bytes += d.encoded_bytes();
  return d;
}

void PolicyEngine::trace_counter(const char* name, Cycles t,
                                 std::uint64_t value) {
  if (trace::Recorder* tr = m_.recorder()) {
    tr->counter(self_, name, t, value);
  }
}

std::uint64_t PolicyEngine::track_mgr_op(LockId l, ProcId mgr,
                                         std::uint64_t serial,
                                         std::function<void(ProcId)> replay) {
  if (!crash_scheduled()) return 0;
  MgrOp op;
  op.lock = l;
  op.mgr = mgr;
  op.serial = serial;
  op.replay = std::move(replay);
  const std::uint64_t id = ++next_op_id_;
  mgr_ops_.emplace(id, std::move(op));
  return id;
}

void PolicyEngine::clear_mgr_op(std::uint64_t id) {
  if (id != 0) mgr_ops_.erase(id);
}

void PolicyEngine::clear_mgr_op_by_serial(LockId l, std::uint64_t serial) {
  for (auto it = mgr_ops_.begin(); it != mgr_ops_.end(); ++it) {
    if (it->second.lock == l && it->second.serial == serial) {
      mgr_ops_.erase(it);
      return;
    }
  }
}

void PolicyEngine::on_peer_suspect(ProcId peer) {
  // Timer context at this node: only node-local state (the op registry) and
  // concurrent-read-safe state (the manager override table) may be touched.
  // The election itself runs in an exclusive self-event.
  AECDSM_DEBUG("p" << self_ << " suspects p" << peer << " (" << mgr_ops_.size()
                   << " pending ops)");
  std::vector<LockId> locks;
  for (const auto& [id, op] : mgr_ops_) {
    if (op.mgr != peer) continue;
    if (m_.lock_manager(op.lock) != peer) continue;  // already failed over
    if (std::find(locks.begin(), locks.end(), op.lock) != locks.end()) continue;
    locks.push_back(op.lock);
  }
  for (const LockId l : locks) {
    m_.post_exclusive(self_, self_, kCtl,
                      m_.params().list_processing_per_elem * 4,
                      [this, l, peer] { begin_failover(l, peer); });
  }
}

void PolicyEngine::on_recover() {
  // Engine-side at the recovered node. Re-reads the shared override table
  // (concurrent-read-safe: writes happen only in exclusive events) so ops
  // aimed at this node's own pre-crash managership chase the re-elected
  // manager; the one-hop bounce in the manager handlers covers elections
  // that land after this replay.
  for (auto& [id, op] : mgr_ops_) {
    const ProcId mgr = m_.lock_manager(op.lock);
    op.mgr = mgr;
    ++m_.transport().recovery_for(self_).requeued_requests;
    AECDSM_DEBUG("p" << self_ << " recovers, replays op serial=" << op.serial
                     << " l" << op.lock << " to mgr p" << mgr);
    op.replay(mgr);
  }
}

void PolicyEngine::begin_failover(LockId l, ProcId crashed) {
  // Exclusive event: the machine is quiescent, cross-node reads are safe.
  if (m_.lock_manager(l) != crashed) return;  // a peer already failed it over
  const Cycles now = m_.engine().now();
  net::FaultPlane& plane = m_.transport().plane();
  if (!plane.crashed(crashed, now)) return;  // recovered: keep the manager
  std::vector<ProcId> cand = lock_sharers(l, crashed);
  cand.push_back(self_);
  ProcId successor = kNoProc;
  for (const ProcId p : cand) {
    if (p == kNoProc || p == crashed || plane.crashed(p, now)) continue;
    if (successor == kNoProc || p < successor) successor = p;
  }
  if (successor == kNoProc) return;  // nobody live: stall until recovery
  AECDSM_DEBUG("p" << self_ << " failover l" << l << ": crashed mgr p"
                   << crashed << " -> successor p" << successor);
  ++m_.transport().recovery_for(self_).failovers;
  if (trace::Recorder* tr = m_.recorder()) {
    tr->instant(self_, trace::Category::kLock, trace::names::kLockFailover, now,
                "lock", static_cast<std::uint64_t>(l), "crashed",
                static_cast<std::uint64_t>(crashed));
  }
  m_.post_exclusive(self_, successor, kCtl,
                    m_.params().list_processing_per_elem * 4,
                    [this, l, crashed, successor] {
                      peer_engine(successor).handle_failover_request(l, crashed);
                    });
}

void PolicyEngine::handle_failover_request(LockId l, ProcId crashed) {
  // Exclusive event at the elected successor.
  if (m_.lock_manager(l) != crashed) return;  // duplicate election
  const Cycles now = m_.engine().now();
  net::FaultPlane& plane = m_.transport().plane();
  if (!plane.crashed(crashed, now)) return;  // recovered while electing
  AECDSM_DEBUG("p" << self_ << " re-elected as manager of l" << l
                   << " (was p" << crashed << ")");
  m_.set_lock_manager_override(l, self_);
  migrate_lock_state(l, crashed, self_);
  RecoveryStats& rs = m_.transport().recovery_for(self_);
  ++rs.reelections;
  rs.recovery_cycles += now - plane.crash_start(crashed, now);
  if (trace::Recorder* tr = m_.recorder()) {
    tr->instant(self_, trace::Category::kLock, trace::names::kLockReelect, now,
                "lock", static_cast<std::uint64_t>(l), "mgr",
                static_cast<std::uint64_t>(self_));
  }
  // Every live node re-aims its pending ops; the crashed node needs no
  // notification — it reads the shared override table once it recovers.
  for (int p = 0; p < m_.nprocs(); ++p) {
    if (p == self_) {
      on_manager_change(l, self_);
      continue;
    }
    if (plane.crashed(p, now)) continue;
    m_.post(self_, p, kCtl, m_.params().list_processing_per_elem * 2,
            [this, l, p, mgr = self_] {
              peer_engine(p).on_manager_change(l, mgr);
            });
  }
}

void PolicyEngine::on_manager_change(LockId l, ProcId new_mgr) {
  for (auto& [id, op] : mgr_ops_) {
    if (op.lock != l || op.mgr == new_mgr) continue;
    op.mgr = new_mgr;
    ++m_.transport().recovery_for(self_).requeued_requests;
    AECDSM_DEBUG("p" << self_ << " replays op serial=" << op.serial << " l"
                     << l << " to new mgr p" << new_mgr);
    op.replay(new_mgr);
  }
}

void PolicyEngine::fetch_page_from_home(
    PageId pg, ProcId h, sim::Bucket bucket,
    std::function<void(std::vector<Word>& buf)> at_home,
    std::function<void()> landed) {
  const auto& params = m_.params();
  proc().advance(params.message_overhead, bucket);
  proc().sync();
  bool done = false;
  auto buf = std::make_shared<std::vector<Word>>();
  const std::size_t page_words = params.words_per_page();
  post_dynamic(
      self_, h, kCtl,
      [this, buf, page_words, at_home = std::move(at_home)] {
        at_home(*buf);
        return m_.params().memory_access_cycles(page_words);
      },
      [this, h, pg, buf, page_words, &done, landed = std::move(landed)]() mutable {
        // Reply carries the page contents back.
        post_dynamic(
            h, self_, m_.params().page_bytes + kCtl,
            [this, page_words] { return m_.params().memory_access_cycles(page_words); },
            [this, pg, buf, &done, landed = std::move(landed)] {
              auto span = store().page_span(pg);
              std::copy(buf->begin(), buf->end(), span.begin());
              if (landed) landed();
              done = true;
              proc().poke();
            });
      });
  proc().wait(bucket, [&done] { return done; });
}

}  // namespace aecdsm::policy
