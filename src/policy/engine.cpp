#include "policy/engine.hpp"

#include <algorithm>
#include <cstdlib>
#include <span>
#include <sstream>

#include "common/check.hpp"
#include "common/log.hpp"
#include "trace/recorder.hpp"

namespace aecdsm::policy {

std::vector<ProcId> lap_score_grant(LockLap& lap, ProcId from, ProcId to) {
  if (from != kNoProc) lap.record_transfer(from, to);
  lap.consume_notice(to);
  return lap.compute_update_set(to);
}

LockLap& scoring_lap(std::map<LockId, LockLap>& laps, const SystemParams& p,
                     LockId l) {
  auto it = laps.find(l);
  if (it == laps.end()) {
    it = laps.emplace(l, LockLap(p.num_procs, p.update_set_size,
                                 p.affinity_threshold))
             .first;
  }
  return it->second;
}

PolicyEngine::PolicyEngine(dsm::Machine& m, ProcId self, ConsistencyPolicy pol)
    : pol_(std::move(pol)), m_(m), self_(self) {}

PageId PolicyEngine::trace_page() {
  static const PageId pg = [] {
    const char* v = std::getenv("AECDSM_TRACE_PAGE");
    return v == nullptr ? kNoPage : static_cast<PageId>(std::atoi(v));
  }();
  return pg;
}

std::size_t PolicyEngine::trace_word() {
  static const std::size_t w = [] {
    const char* v = std::getenv("AECDSM_TRACE_WORD");
    return v == nullptr ? std::size_t{0} : static_cast<std::size_t>(std::atoi(v));
  }();
  return w;
}

void PolicyEngine::send_from_app(ProcId to, std::size_t bytes, Cycles svc_cost,
                                 std::function<void()> handler,
                                 sim::Bucket bucket, bool exclusive) {
  proc().advance(m_.params().message_overhead, bucket);
  proc().sync();
  if (exclusive) {
    m_.post_exclusive(self_, to, bytes, svc_cost, std::move(handler));
  } else {
    m_.post(self_, to, bytes, svc_cost, std::move(handler));
  }
}

void PolicyEngine::post_dynamic(ProcId from, ProcId to, std::size_t bytes,
                                std::function<Cycles()> cost,
                                std::function<void()> handler) {
  m_.transport().send(from, to, bytes,
                    [this, to, c = std::move(cost), h = std::move(handler)]() mutable {
                      const Cycles done = m_.node(to).proc->service(c());
                      m_.engine().schedule(done, std::move(h));
                    });
}

mem::Diff PolicyEngine::create_diff_charged(PageId pg, bool hidden,
                                            sim::Bucket bucket) {
  const Cycles c = m_.params().diff_create_cycles();
  const Cycles trace_t0 = proc().now();
  proc().advance(c, bucket);
  proc().sync();
  if (trace::Recorder* tr = m_.recorder()) {
    tr->span(self_, trace::Category::kDiff, trace::names::kDiffCreate, trace_t0,
             proc().now(), "page", pg, "hidden", hidden ? 1 : 0);
  }
  mem::Diff d = store().diff_against_twin(pg);
  if (pg == trace_page()) {
    std::ostringstream os;
    for (const auto& r : d.runs()) {
      if (r.word_offset <= 10 && 8 < r.word_offset + r.words.size()) {
        for (std::size_t k = 0; k < r.words.size(); ++k) {
          if (r.word_offset + k == trace_word()) {
            os << " w" << r.word_offset + k << "=" << r.words[k];
          }
        }
      }
    }
    AECDSM_DEBUG("p" << self_ << " create_diff pg" << pg << " twin[8..10]="
                     << (*store().frame(pg).twin)[8] << ","
                     << (*store().frame(pg).twin)[9] << ","
                     << (*store().frame(pg).twin)[10] << " frame[8..10]="
                     << store().frame(pg).data[8] << "," << store().frame(pg).data[9]
                     << "," << store().frame(pg).data[10] << " diff:" << os.str());
  }
  ++dstats_.diffs_created;
  dstats_.diff_bytes += d.encoded_bytes();
  dstats_.create_cycles += c;
  if (hidden) dstats_.create_hidden_cycles += c;
  return d;
}

void PolicyEngine::apply_diff_charged(PageId pg, const mem::Diff& d, bool hidden,
                                      sim::Bucket bucket) {
  if (pg == trace_page()) {
    std::ostringstream runs;
    long tw = -1;
    for (const auto& r : d.runs()) {
      runs << " @" << r.word_offset << "+" << r.words.size();
      if (r.word_offset <= trace_word() &&
          trace_word() < r.word_offset + r.words.size()) {
        tw = static_cast<long>(r.words[trace_word() - r.word_offset]);
      }
    }
    AECDSM_DEBUG("p" << self_ << " apply pg" << pg << " diff[w" << trace_word()
                     << "]=" << tw << " frame_before="
                     << store().frame(pg).data[trace_word()] << runs.str());
  }
  const Cycles c = m_.params().diff_apply_cycles(d.changed_words());
  const Cycles trace_t0 = proc().now();
  proc().advance(c, bucket);
  proc().sync();
  if (trace::Recorder* tr = m_.recorder()) {
    tr->span(self_, trace::Category::kDiff, trace::names::kDiffApply, trace_t0,
             proc().now(), "page", pg, "hidden", hidden ? 1 : 0);
  }
  mem::PageFrame& f = store().frame(pg);
  d.apply_to(std::span<Word>(f.data));
  // A live twin must see remote modifications too, or later twin-diffs of
  // this page would encode the remote words as if they were local writes.
  if (f.has_twin()) d.apply_to(std::span<Word>(*f.twin));
  ctx().invalidate_cache_page(pg);
  ++dstats_.diffs_applied;
  dstats_.apply_cycles += c;
  if (hidden) dstats_.apply_hidden_cycles += c;
}

void PolicyEngine::make_twin_charged(PageId pg, sim::Bucket bucket) {
  proc().advance(m_.params().twin_create_cycles(), bucket);
  store().make_twin(pg);
}

mem::Diff PolicyEngine::service_diff_create(PageId pg, Cycles& cost) {
  const Cycles c = m_.params().diff_create_cycles();
  cost += c;
  if (trace::Recorder* tr = m_.recorder()) {
    tr->span(self_, trace::Category::kDiff, trace::names::kDiffCreate,
             m_.engine().now(), m_.engine().now() + c, "page", pg, "svc", 1);
  }
  ++dstats_.diffs_created;
  dstats_.create_cycles += c;
  mem::Diff d = store().diff_against_twin(pg);
  dstats_.diff_bytes += d.encoded_bytes();
  return d;
}

void PolicyEngine::trace_counter(const char* name, Cycles t,
                                 std::uint64_t value) {
  if (trace::Recorder* tr = m_.recorder()) {
    tr->counter(self_, name, t, value);
  }
}

void PolicyEngine::fetch_page_from_home(
    PageId pg, ProcId h, sim::Bucket bucket,
    std::function<void(std::vector<Word>& buf)> at_home,
    std::function<void()> landed) {
  const auto& params = m_.params();
  proc().advance(params.message_overhead, bucket);
  proc().sync();
  bool done = false;
  auto buf = std::make_shared<std::vector<Word>>();
  const std::size_t page_words = params.words_per_page();
  post_dynamic(
      self_, h, kCtl,
      [this, buf, page_words, at_home = std::move(at_home)] {
        at_home(*buf);
        return m_.params().memory_access_cycles(page_words);
      },
      [this, h, pg, buf, page_words, &done, landed = std::move(landed)]() mutable {
        // Reply carries the page contents back.
        post_dynamic(
            h, self_, m_.params().page_bytes + kCtl,
            [this, page_words] { return m_.params().memory_access_cycles(page_words); },
            [this, pg, buf, &done, landed = std::move(landed)] {
              auto span = store().page_span(pg);
              std::copy(buf->begin(), buf->end(), span.begin());
              if (landed) landed();
              done = true;
              proc().poke();
            });
      });
  proc().wait(bucket, [&done] { return done; });
}

}  // namespace aecdsm::policy
