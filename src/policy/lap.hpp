// Lock Acquirer Prediction (LAP) — section 2 of the paper.
//
// For each lock the manager maintains the three low-level predictors:
//   * waiting queue  — the real FIFO of blocked requesters (perfect when
//                      there is contention),
//   * virtual queue  — acquire notices sent ahead of the real requests,
//   * transfer affinity — aff_l(p,q): past ownership transfers p -> q; the
//                      affinity set of p holds every q whose affinity is at
//                      least (1 + threshold) times p's mean affinity.
// compute_update_set() combines them with the exact algorithm of §2.2.
//
// The class also scores every low-level combination against the realized
// acquisition order, producing the per-variable success rates of Table 3.
//
// LAP lives in the policy layer because it is protocol-neutral machinery:
// AEC consumes its predictions (PushSelector::kLapUpdateSet), while
// TreadMarks and Munin-ERC run it in scoring-only mode for the paper's §5.1
// robustness claim. The historical aecdsm::aec:: names stay valid through
// the aliases below.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hpp"

namespace aecdsm::policy {

/// Success-rate counters for one prediction strategy on one lock variable.
struct PredictorScore {
  std::uint64_t predictions = 0;  ///< ownership transfers scored
  std::uint64_t hits = 0;         ///< transfers whose target was predicted

  double rate() const {
    return predictions == 0 ? 0.0
                            : static_cast<double>(hits) / static_cast<double>(predictions);
  }
};

/// Scores for the paper's four Table 3 columns.
struct LapScores {
  std::uint64_t acquire_events = 0;
  PredictorScore lap;              ///< full combination (what AEC uses)
  PredictorScore waitq;            ///< waiting queue alone
  PredictorScore waitq_affinity;   ///< waiting queue + affinity
  PredictorScore waitq_virtualq;   ///< waiting queue + virtual queue
};

class LockLap {
 public:
  LockLap(int num_procs, int update_set_size, double affinity_threshold);

  // --- Feeding the low-level predictors -----------------------------------

  /// A processor announced it will acquire the lock soon (virtual queue).
  void add_notice(ProcId p);

  /// p's intention was consumed (it acquired, or its queued request was
  /// granted); drop its oldest pending notice.
  void consume_notice(ProcId p);

  /// The real FIFO waiting queue, maintained by the lock manager.
  void enqueue_waiter(ProcId p) { waiting_.push_back(p); }
  ProcId dequeue_waiter();
  /// Out-of-order removal for the hier strategy's cohort-first grants
  /// (locks::pick_waiter chooses the index; FIFO order of the rest holds).
  ProcId dequeue_waiter_at(std::size_t idx);
  bool has_waiters() const { return !waiting_.empty(); }
  std::size_t waiting_count() const { return waiting_.size(); }
  /// Read-only view for strategy code (locks::pick_waiter) and MCS
  /// predecessor lookup; mutation stays behind the enqueue/dequeue API.
  const std::deque<ProcId>& waiting() const { return waiting_; }
  bool waiting_contains(ProcId p) const {
    for (const ProcId q : waiting_) {
      if (q == p) return true;
    }
    return false;
  }

  /// Crash failover: the waiting and virtual queues die with the old
  /// manager's custody and are rebuilt from the requesters' replayed
  /// requests/notices; the affinity history is shared state that survives.
  void reset_queues() {
    waiting_.clear();
    virtual_queue_.clear();
  }

  /// Record a realized ownership transfer from -> to (affinity history) and
  /// score all predictor snapshots taken for `from`.
  void record_transfer(ProcId from, ProcId to);

  // --- Prediction ----------------------------------------------------------

  /// §2.2: the update set of (future releaser) p, at most K processors.
  /// Also snapshots what each low-level combination would have predicted,
  /// so record_transfer() can score them later.
  std::vector<ProcId> compute_update_set(ProcId p);

  /// Affinity set A_l(p): processors with affinity >(1+threshold)*mean,
  /// ordered by descending affinity (ties by pid).
  std::vector<ProcId> affinity_set(ProcId p) const;

  int affinity(ProcId from, ProcId to) const;

  void count_acquire_event() { ++scores_.acquire_events; }
  const LapScores& scores() const { return scores_; }

  const std::deque<ProcId>& virtual_queue() const { return virtual_queue_; }

 private:
  static bool contains(const std::vector<ProcId>& v, ProcId p);

  const int nprocs_;
  const int k_;
  const double threshold_;

  std::deque<ProcId> waiting_;
  std::deque<ProcId> virtual_queue_;
  std::vector<int> affinity_;  ///< nprocs x nprocs, row = from

  // Prediction snapshots per releaser, scored at the next transfer.
  struct Snapshot {
    bool valid = false;
    std::vector<ProcId> lap;
    std::vector<ProcId> waitq;
    std::vector<ProcId> waitq_affinity;
    std::vector<ProcId> waitq_virtualq;
  };
  std::vector<Snapshot> snapshot_;  ///< indexed by releaser pid

  LapScores scores_;
};

}  // namespace aecdsm::policy

namespace aecdsm::aec {
// Historical home of LAP before the policy-engine refactor; every protocol
// and report site that says aec::LockLap keeps compiling.
using policy::LapScores;
using policy::LockLap;
using policy::PredictorScore;
}  // namespace aecdsm::aec
