// PolicyEngine: the machinery the three consistency protocols share,
// hoisted out of aec/tmk/erc protocol.cpp where it lived in triplicate.
//
// The engine owns:
//   * the cost-charged messaging idioms — send_from_app (fixed service
//     cost, app thread pays the overhead) and post_dynamic (service cost
//     computed engine-side at delivery);
//   * the charged twin/diff chain — make_twin_charged, create_diff_charged,
//     apply_diff_charged charge the paper's Table 1 per-word costs to the
//     calling application thread and record diff.create/diff.apply trace
//     spans;
//   * service_diff_create — engine-side (svc-flagged) lazy diff creation at
//     a serving node, the shape AEC's deferred publication and TreadMarks'
//     critical-path diffing share;
//   * fetch_page_from_home — the two-hop whole-page RPC every protocol uses
//     on a cold miss;
//   * LAP plumbing shared by every lock-manager flavour (lap_score_grant,
//     scoring_lap).
//
// Derived protocols (AecProtocol, TmProtocol, ErcProtocol) keep their
// protocol-specific state machines and consult pol_ for the axes their
// engine makes configurable. Everything here preserves the exact
// advance/sync/post sequences of the pre-refactor code: the determinism
// contract is that the legacy presets stay byte-identical to the committed
// bench baselines.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "dsm/context.hpp"
#include "dsm/machine.hpp"
#include "dsm/protocol.hpp"
#include "mem/diff.hpp"
#include "policy/lap.hpp"
#include "policy/policy.hpp"
#include "sim/processor.hpp"

namespace aecdsm::policy {

/// Manager-side LAP bookkeeping at a lock grant, shared by every lock
/// scheme: score the realized transfer, consume the acquirer's virtual-queue
/// notice, and predict the next update set. `from` is kNoProc on the first
/// grant of a chain.
std::vector<ProcId> lap_score_grant(LockLap& lap, ProcId from, ProcId to);

/// Lazily build the scoring-only LAP instance for lock `l` (TreadMarks and
/// Munin-ERC run the predictor without consuming it — paper §5.1).
LockLap& scoring_lap(std::map<LockId, LockLap>& laps, const SystemParams& p,
                     LockId l);

class PolicyEngine : public dsm::Protocol {
 public:
  const ConsistencyPolicy* active_policy() const override { return &pol_; }
  DiffStats diff_stats() const override { return dstats_; }

  /// Transport suspect verdict: `peer` is fail-stop crashed and has pending
  /// traffic from this node. Starts lock-manager failover for every lock
  /// with a pending op aimed at the crashed manager (§ DESIGN.md 12).
  void on_peer_suspect(ProcId peer) override;

  /// Warm reboot at the end of this node's crash window: replay every
  /// pending manager op to the lock's *current* manager. The crashed node
  /// missed any re-election broadcast (it is skipped while down), so ops
  /// it aimed at its own pre-crash managership would otherwise never chase
  /// the successor; manager-side serial dedup absorbs replays that race a
  /// reply still being retransmitted by a live sender.
  void on_recover() override;

 protected:
  PolicyEngine(dsm::Machine& m, ProcId self, ConsistencyPolicy pol);

  /// Fixed size of small control messages (requests, grants sans lists,
  /// acks).
  static constexpr std::size_t kCtl = 32;

  /// Page singled out for verbose tracing via AECDSM_TRACE_PAGE (debugging).
  static PageId trace_page();

  /// Word within the traced page reported by value traces
  /// (AECDSM_TRACE_WORD).
  static std::size_t trace_word();

  sim::Processor& proc() { return *m_.node(self_).proc; }
  dsm::Context& ctx() { return *m_.node(self_).ctx; }
  mem::PageStore& store() { return *m_.node(self_).store; }

  /// Post a message whose service cost is known now; the calling app thread
  /// pays the send overhead in `bucket` before the post. `exclusive` routes
  /// through Machine::post_exclusive: the handler runs as an exclusive event
  /// under the parallel engine (required when it mutates state owned by
  /// other nodes, e.g. a barrier completion).
  void send_from_app(ProcId to, std::size_t bytes, Cycles svc_cost,
                     std::function<void()> handler, sim::Bucket bucket,
                     bool exclusive = false);

  /// Post a message whose service cost is computed engine-side at delivery
  /// (the serve lambda runs at the receiver and returns its cost).
  void post_dynamic(ProcId from, ProcId to, std::size_t bytes,
                    std::function<Cycles()> cost,
                    std::function<void()> handler);

  /// Twin creation charged to the app thread (Table 1).
  void make_twin_charged(PageId pg, sim::Bucket bucket);

  /// Diff creation charged to the app thread; `hidden` marks work the
  /// protocol overlaps with synchronization waiting (Table 4 accounting).
  mem::Diff create_diff_charged(PageId pg, bool hidden, sim::Bucket bucket);

  /// Diff application charged to the app thread; keeps a live twin in sync
  /// and invalidates the cached copy of the page.
  void apply_diff_charged(PageId pg, const mem::Diff& d, bool hidden,
                          sim::Bucket bucket);

  /// Engine-side diff creation at a serving node: adds the creation cost to
  /// `cost` (the enclosing message service), records an svc-flagged
  /// diff.create span and the stats, and returns the live diff against the
  /// twin. The page's twin is left untouched — disposition is the caller's.
  mem::Diff service_diff_create(PageId pg, Cycles& cost);

  /// Two-hop whole-page fetch from `h` (cold miss / stale copy). `at_home`
  /// runs engine-side at the home: it does the home's bookkeeping and fills
  /// `buf` with the page contents (every protocol copies the home's span,
  /// some also snapshot metadata). The reply lands the buffer into the
  /// local frame; `landed` (may be null) then runs engine-side at self for
  /// local post-processing (twin restart, deferred-update replay) before
  /// the waiting app thread resumes. Blocks in `bucket` until the page has
  /// landed.
  void fetch_page_from_home(PageId pg, ProcId h, sim::Bucket bucket,
                            std::function<void(std::vector<Word>& buf)> at_home,
                            std::function<void()> landed);

  /// Record one sample of this node's counter track `name` at time `t`
  /// (trace::names::kLockQueueDepth, kDiffOutstanding). Pass proc().now()
  /// from app-side code and m_.engine().now() from engine-side handlers.
  /// Observational only: never advances time or perturbs the run.
  void trace_counter(const char* name, Cycles t, std::uint64_t value);

  // --- Crash failover: lock-manager re-election -----------------------------
  //
  // Every manager-directed operation that would be lost if the manager
  // crashed (an un-granted REQUEST, an unconfirmed RELEASE) is tracked in a
  // per-node registry while a crash schedule exists. When the transport
  // suspects the manager, a surviving node with pending business is elected
  // deterministically (lowest live rank among the lock's sharers), the lock
  // record migrates to its shard — lock records live in shared host memory,
  // so custody survives the fail-stop window — and every live node replays
  // its pending ops to the new manager, rebuilding the FIFO/LAP waiting
  // queue in deterministic DES arrival order. Crash-free runs never build
  // the registry and never see a failover message.

  /// Is any crash window scheduled? Gates all failover-only traffic.
  bool crash_scheduled() const {
    return m_.params().faults.crash_scheduled();
  }

  /// Per-(node, lock) monotonic serial minted at acquire; the matching
  /// release reuses the acquire's serial. Managers dedup replayed requests
  /// and releases by it.
  std::uint64_t next_op_serial(LockId l) { return ++op_serial_[l]; }

  /// Track a pending manager op for crash replay; returns a registry id for
  /// clear_mgr_op (0 — and no tracking — when no crash is scheduled).
  /// `replay` re-posts the op to the re-elected manager; retransmission is
  /// NIC-autonomous and charges no app-thread time.
  std::uint64_t track_mgr_op(LockId l, ProcId mgr, std::uint64_t serial,
                             std::function<void(ProcId new_mgr)> replay);
  void clear_mgr_op(std::uint64_t id);

  /// Release confirmation: erase the tracked op for (l, serial). The
  /// confirming manager does not know the releaser's registry id, but the
  /// (lock, serial) pair identifies at most one pending op.
  void clear_mgr_op_by_serial(LockId l, std::uint64_t serial);

  /// The PolicyEngine instance running at `p` (all nodes of a run execute
  /// the same preset).
  PolicyEngine& peer_engine(ProcId p) {
    return *static_cast<PolicyEngine*>(m_.node(p).protocol.get());
  }

  /// Exclusive self-event: elect a successor for `l` whose manager
  /// `crashed` is suspected, and post it the failover request.
  void begin_failover(LockId l, ProcId crashed);

  /// Exclusive event at the elected successor: install the override, migrate
  /// custody, and broadcast the manager change to every live node.
  void handle_failover_request(LockId l, ProcId crashed);

  /// At each node: re-aim pending ops for `l` at the new manager and replay
  /// them.
  void on_manager_change(LockId l, ProcId new_mgr);

  /// Protocol-specific election input: nodes known to share lock `l`'s
  /// state (owner, diff custodians, ...). The suspecter itself is always a
  /// candidate. Runs inside an exclusive event — cross-node reads are safe.
  virtual std::vector<ProcId> lock_sharers(LockId l, ProcId crashed) {
    (void)l;
    (void)crashed;
    return {};
  }

  /// Protocol-specific custody migration: move lock `l`'s record between
  /// the shard maps of `from` and `to` and reset manager-soft state (the
  /// waiting/virtual queues; affinity history and diff custody survive).
  /// Runs inside an exclusive event.
  virtual void migrate_lock_state(LockId l, ProcId from, ProcId to) {
    (void)l;
    (void)from;
    (void)to;
  }

  const ConsistencyPolicy pol_;
  dsm::Machine& m_;
  const ProcId self_;
  DiffStats dstats_;

 private:
  /// Pending manager-directed op, keyed by a monotonically increasing id so
  /// replay iterates in issue order (preserving per-channel REL-before-REQ
  /// FIFO order at the new manager).
  struct MgrOp {
    LockId lock = 0;
    ProcId mgr = kNoProc;
    std::uint64_t serial = 0;
    std::function<void(ProcId new_mgr)> replay;
  };
  std::map<std::uint64_t, MgrOp> mgr_ops_;
  std::uint64_t next_op_id_ = 0;
  std::map<LockId, std::uint64_t> op_serial_;
};

}  // namespace aecdsm::policy
