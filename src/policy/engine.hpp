// PolicyEngine: the machinery the three consistency protocols share,
// hoisted out of aec/tmk/erc protocol.cpp where it lived in triplicate.
//
// The engine owns:
//   * the cost-charged messaging idioms — send_from_app (fixed service
//     cost, app thread pays the overhead) and post_dynamic (service cost
//     computed engine-side at delivery);
//   * the charged twin/diff chain — make_twin_charged, create_diff_charged,
//     apply_diff_charged charge the paper's Table 1 per-word costs to the
//     calling application thread and record diff.create/diff.apply trace
//     spans;
//   * service_diff_create — engine-side (svc-flagged) lazy diff creation at
//     a serving node, the shape AEC's deferred publication and TreadMarks'
//     critical-path diffing share;
//   * fetch_page_from_home — the two-hop whole-page RPC every protocol uses
//     on a cold miss;
//   * LAP plumbing shared by every lock-manager flavour (lap_score_grant,
//     scoring_lap).
//
// Derived protocols (AecProtocol, TmProtocol, ErcProtocol) keep their
// protocol-specific state machines and consult pol_ for the axes their
// engine makes configurable. Everything here preserves the exact
// advance/sync/post sequences of the pre-refactor code: the determinism
// contract is that the legacy presets stay byte-identical to the committed
// bench baselines.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "dsm/context.hpp"
#include "dsm/machine.hpp"
#include "dsm/protocol.hpp"
#include "mem/diff.hpp"
#include "policy/lap.hpp"
#include "policy/policy.hpp"
#include "sim/processor.hpp"

namespace aecdsm::policy {

/// Manager-side LAP bookkeeping at a lock grant, shared by every lock
/// scheme: score the realized transfer, consume the acquirer's virtual-queue
/// notice, and predict the next update set. `from` is kNoProc on the first
/// grant of a chain.
std::vector<ProcId> lap_score_grant(LockLap& lap, ProcId from, ProcId to);

/// Lazily build the scoring-only LAP instance for lock `l` (TreadMarks and
/// Munin-ERC run the predictor without consuming it — paper §5.1).
LockLap& scoring_lap(std::map<LockId, LockLap>& laps, const SystemParams& p,
                     LockId l);

class PolicyEngine : public dsm::Protocol {
 public:
  const ConsistencyPolicy* active_policy() const override { return &pol_; }
  DiffStats diff_stats() const override { return dstats_; }

 protected:
  PolicyEngine(dsm::Machine& m, ProcId self, ConsistencyPolicy pol);

  /// Fixed size of small control messages (requests, grants sans lists,
  /// acks).
  static constexpr std::size_t kCtl = 32;

  /// Page singled out for verbose tracing via AECDSM_TRACE_PAGE (debugging).
  static PageId trace_page();

  /// Word within the traced page reported by value traces
  /// (AECDSM_TRACE_WORD).
  static std::size_t trace_word();

  sim::Processor& proc() { return *m_.node(self_).proc; }
  dsm::Context& ctx() { return *m_.node(self_).ctx; }
  mem::PageStore& store() { return *m_.node(self_).store; }

  /// Post a message whose service cost is known now; the calling app thread
  /// pays the send overhead in `bucket` before the post. `exclusive` routes
  /// through Machine::post_exclusive: the handler runs as an exclusive event
  /// under the parallel engine (required when it mutates state owned by
  /// other nodes, e.g. a barrier completion).
  void send_from_app(ProcId to, std::size_t bytes, Cycles svc_cost,
                     std::function<void()> handler, sim::Bucket bucket,
                     bool exclusive = false);

  /// Post a message whose service cost is computed engine-side at delivery
  /// (the serve lambda runs at the receiver and returns its cost).
  void post_dynamic(ProcId from, ProcId to, std::size_t bytes,
                    std::function<Cycles()> cost,
                    std::function<void()> handler);

  /// Twin creation charged to the app thread (Table 1).
  void make_twin_charged(PageId pg, sim::Bucket bucket);

  /// Diff creation charged to the app thread; `hidden` marks work the
  /// protocol overlaps with synchronization waiting (Table 4 accounting).
  mem::Diff create_diff_charged(PageId pg, bool hidden, sim::Bucket bucket);

  /// Diff application charged to the app thread; keeps a live twin in sync
  /// and invalidates the cached copy of the page.
  void apply_diff_charged(PageId pg, const mem::Diff& d, bool hidden,
                          sim::Bucket bucket);

  /// Engine-side diff creation at a serving node: adds the creation cost to
  /// `cost` (the enclosing message service), records an svc-flagged
  /// diff.create span and the stats, and returns the live diff against the
  /// twin. The page's twin is left untouched — disposition is the caller's.
  mem::Diff service_diff_create(PageId pg, Cycles& cost);

  /// Two-hop whole-page fetch from `h` (cold miss / stale copy). `at_home`
  /// runs engine-side at the home: it does the home's bookkeeping and fills
  /// `buf` with the page contents (every protocol copies the home's span,
  /// some also snapshot metadata). The reply lands the buffer into the
  /// local frame; `landed` (may be null) then runs engine-side at self for
  /// local post-processing (twin restart, deferred-update replay) before
  /// the waiting app thread resumes. Blocks in `bucket` until the page has
  /// landed.
  void fetch_page_from_home(PageId pg, ProcId h, sim::Bucket bucket,
                            std::function<void(std::vector<Word>& buf)> at_home,
                            std::function<void()> landed);

  /// Record one sample of this node's counter track `name` at time `t`
  /// (trace::names::kLockQueueDepth, kDiffOutstanding). Pass proc().now()
  /// from app-side code and m_.engine().now() from engine-side handlers.
  /// Observational only: never advances time or perturbs the run.
  void trace_counter(const char* name, Cycles t, std::uint64_t value);

  const ConsistencyPolicy pol_;
  dsm::Machine& m_;
  const ProcId self_;
  DiffStats dstats_;
};

}  // namespace aecdsm::policy
