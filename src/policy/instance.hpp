// ProtocolInstance: the bridge from a ConsistencyPolicy to a runnable
// dsm::ProtocolSuite. This is the table-driven replacement for the string
// if/else chains that used to live in harness/runner.cpp and the tests:
// callers resolve a policy by name (make_instance), get a suite, run it,
// and read the family-specific shared-state handle afterwards (LAP scores,
// lock records).
//
// Lives in its own library target (aecdsm_protocols) because it links all
// three protocol engines, which themselves link aecdsm_policy.
#pragma once

#include <memory>
#include <string>

#include "dsm/system.hpp"
#include "policy/policy.hpp"

namespace aecdsm::aec {
class AecSuite;
struct AecShared;
}  // namespace aecdsm::aec
namespace aecdsm::tmk {
class TmSuite;
struct TmShared;
}  // namespace aecdsm::tmk
namespace aecdsm::erc {
class ErcSuite;
struct ErcShared;
}  // namespace aecdsm::erc

namespace aecdsm::policy {

/// One runnable instantiation of a policy. Owns the family's suite factory;
/// after a run the shared handle of the family that ran is non-null, the
/// other two stay null.
class ProtocolInstance {
 public:
  explicit ProtocolInstance(ConsistencyPolicy pol);
  ProtocolInstance(ProtocolInstance&&) noexcept;
  ProtocolInstance& operator=(ProtocolInstance&&) noexcept;
  ~ProtocolInstance();

  const ConsistencyPolicy& policy() const { return pol_; }

  /// Suite for dsm::run_app; suite.name is the policy name.
  dsm::ProtocolSuite suite();

  std::shared_ptr<const aec::AecShared> aec_shared() const;
  std::shared_ptr<const tmk::TmShared> tm_shared() const;
  std::shared_ptr<const erc::ErcShared> erc_shared() const;

 private:
  ConsistencyPolicy pol_;
  std::unique_ptr<aec::AecSuite> aec_;
  std::unique_ptr<tmk::TmSuite> tm_;
  std::unique_ptr<erc::ErcSuite> erc_;
};

/// Resolve `name` through the policy registry and build an instance.
/// Throws SimError naming every registered policy when the name is unknown.
ProtocolInstance make_instance(const std::string& name);

}  // namespace aecdsm::policy
