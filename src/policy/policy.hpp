// ConsistencyPolicy: the per-run (and per-region) description of how shared
// memory is kept coherent, decomposed along the axes the paper's three
// protocols actually differ on:
//
//   * propagation      — push updates (diffs travel to sharers) or push
//                        invalidations (sharers refetch on demand);
//   * diff timing      — when twins are diffed: overlapped with barrier
//                        waiting (AEC), lazily on a remote access miss
//                        (TreadMarks), or eagerly with blocking acks at
//                        release (Munin-ERC);
//   * push selector    — who receives eager pushes: nobody, the LAP-predicted
//                        update set (§2.2), or the page's copyset;
//   * home placement   — static interleaved homes, or homes reassigned at
//                        each barrier toward the writer (AEC §3.3);
//   * lock scheme      — manager-serialized grant chain (AEC), distributed
//                        ownership chase (TreadMarks), or a manager FIFO
//                        (Munin-ERC);
//   * barrier action   — diff-routing directives (AEC), write-notice
//                        exchange (TreadMarks), or flush-then-gather
//                        (Munin-ERC).
//
// A policy names one point in that space. The three paper protocols are
// registered presets; hybrids pick a different value on one axis (the stock
// hybrid `AEC-TmkBarrier` keeps AEC's lock handling and barrier routing but
// flips propagation to invalidate, so barrier directives carry drop notices
// instead of diffs for non-home sharers). The `regions` table refines the
// propagation axis per page range, which is what "resolved per-region at
// runtime" means: the engine asks `propagation_for(page)` at every routing
// decision.
//
// Policies are looked up by name through a process-wide registry
// (find_policy / register_policy); the harness runner, bench drivers and
// tests all dispatch through it instead of string-matching protocol names.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace aecdsm::policy {

/// Which protocol engine interprets the policy. The axes are descriptive for
/// every family, but each family only implements the combinations its
/// engine supports (see validate()); the AEC engine is the configurable one.
enum class Family : std::uint8_t {
  kAec,  ///< aec::AecProtocol — the paper's protocol, §3
  kTmk,  ///< tmk::TmProtocol — TreadMarks-style lazy release consistency
  kErc,  ///< erc::ErcProtocol — Munin-style eager release consistency
};

enum class Propagation : std::uint8_t {
  kUpdate,      ///< diffs are pushed/routed to sharers
  kInvalidate,  ///< sharers are told to drop; they refetch on demand
};

enum class DiffTiming : std::uint8_t {
  kEagerOverlapped,  ///< diffs created during barrier overlap (AEC)
  kLazyOnDemand,     ///< diffs created at the writer on access miss (TMK)
  kEagerBlocking,    ///< diffs flushed with blocking acks at release (ERC)
};

enum class PushSelector : std::uint8_t {
  kNone,          ///< nobody is pushed to eagerly
  kLapUpdateSet,  ///< LAP-predicted update set of the releaser (§2.2)
  kCopyset,       ///< every current holder of a copy (Munin update fan-out)
};

enum class HomePlacement : std::uint8_t {
  kStaticInterleaved,  ///< home(pg) = pg mod nprocs, forever
  kBarrierReassign,    ///< homes migrate toward writers at barriers (§3.3)
};

enum class LockScheme : std::uint8_t {
  kManagerChain,      ///< manager serializes grants; releaser chains diffs
  kDistributedOwner,  ///< owner hint + hand-off pointer chase (TreadMarks)
  kManagerFifo,       ///< plain manager FIFO, no consistency piggyback
};

enum class BarrierAction : std::uint8_t {
  kDirectiveRouting,  ///< manager routes diffs/drops + reassigns homes (AEC)
  kNoticeExchange,    ///< gather/broadcast of write notices (TreadMarks)
  kFlushGather,       ///< flush updates home, then a plain gather (ERC)
};

const char* to_string(Family v);
const char* to_string(Propagation v);
const char* to_string(DiffTiming v);
const char* to_string(PushSelector v);
const char* to_string(HomePlacement v);
const char* to_string(LockScheme v);
const char* to_string(BarrierAction v);

/// Overrides the propagation axis for pages in [first, last] (inclusive).
/// Later rules win; pages matched by no rule use the policy-wide axis.
struct RegionRule {
  PageId first = 0;
  PageId last = 0;
  Propagation propagation = Propagation::kUpdate;
};

struct ConsistencyPolicy {
  std::string name;
  Family family = Family::kAec;
  Propagation propagation = Propagation::kUpdate;
  DiffTiming diff_timing = DiffTiming::kEagerOverlapped;
  PushSelector push_selector = PushSelector::kLapUpdateSet;
  HomePlacement home_placement = HomePlacement::kBarrierReassign;
  LockScheme lock_scheme = LockScheme::kManagerChain;
  BarrierAction barrier_action = BarrierAction::kDirectiveRouting;

  /// LAP low-level predictor toggles (meaningful when the engine consults
  /// LAP; both true for the paper's full predictor).
  bool lap_virtual_queue = true;
  bool lap_affinity = true;

  std::vector<RegionRule> regions;

  /// Does this policy feed LAP predictions into lock grants?
  bool lap_pushes() const { return push_selector == PushSelector::kLapUpdateSet; }

  /// The propagation axis for one page, after region overrides.
  Propagation propagation_for(PageId pg) const;

  /// Canonical fingerprint of every behavior-affecting field (not the name),
  /// folded into the cell-cache key so two policies that differ on any axis
  /// never alias a cached artifact.
  std::string cache_key() const;
};

/// Throws SimError if the family's engine does not implement the requested
/// axis combination, or a region rule is malformed (first > last).
void validate(const ConsistencyPolicy& pol);

/// Register (or replace) a policy under pol.name. Validates first.
void register_policy(const ConsistencyPolicy& pol);

/// Look up a policy by name; nullptr if unknown. Built-in presets (AEC,
/// AEC-noLAP, TreadMarks, Munin-ERC, AEC-TmkBarrier) are always present.
const ConsistencyPolicy* find_policy(const std::string& name);

/// Names of every registered policy, sorted; presets first registration.
std::vector<std::string> registered_names();

/// "AEC, AEC-TmkBarrier, ..." — for unknown-protocol error messages.
std::string registered_names_joined();

}  // namespace aecdsm::policy
