#include "policy/policy.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>

#include "common/check.hpp"

namespace aecdsm::policy {

const char* to_string(Family v) {
  switch (v) {
    case Family::kAec: return "aec";
    case Family::kTmk: return "tmk";
    case Family::kErc: return "erc";
  }
  return "?";
}

const char* to_string(Propagation v) {
  switch (v) {
    case Propagation::kUpdate: return "update";
    case Propagation::kInvalidate: return "invalidate";
  }
  return "?";
}

const char* to_string(DiffTiming v) {
  switch (v) {
    case DiffTiming::kEagerOverlapped: return "eager-overlapped";
    case DiffTiming::kLazyOnDemand: return "lazy-on-demand";
    case DiffTiming::kEagerBlocking: return "eager-blocking";
  }
  return "?";
}

const char* to_string(PushSelector v) {
  switch (v) {
    case PushSelector::kNone: return "none";
    case PushSelector::kLapUpdateSet: return "lap-update-set";
    case PushSelector::kCopyset: return "copyset";
  }
  return "?";
}

const char* to_string(HomePlacement v) {
  switch (v) {
    case HomePlacement::kStaticInterleaved: return "static-interleaved";
    case HomePlacement::kBarrierReassign: return "barrier-reassign";
  }
  return "?";
}

const char* to_string(LockScheme v) {
  switch (v) {
    case LockScheme::kManagerChain: return "manager-chain";
    case LockScheme::kDistributedOwner: return "distributed-owner";
    case LockScheme::kManagerFifo: return "manager-fifo";
  }
  return "?";
}

const char* to_string(BarrierAction v) {
  switch (v) {
    case BarrierAction::kDirectiveRouting: return "directive-routing";
    case BarrierAction::kNoticeExchange: return "notice-exchange";
    case BarrierAction::kFlushGather: return "flush-gather";
  }
  return "?";
}

Propagation ConsistencyPolicy::propagation_for(PageId pg) const {
  Propagation p = propagation;
  for (const RegionRule& r : regions) {
    if (pg >= r.first && pg <= r.last) p = r.propagation;
  }
  return p;
}

std::string ConsistencyPolicy::cache_key() const {
  std::ostringstream os;
  os << "fam=" << to_string(family) << ";prop=" << to_string(propagation)
     << ";diff=" << to_string(diff_timing) << ";push=" << to_string(push_selector)
     << ";home=" << to_string(home_placement) << ";lock=" << to_string(lock_scheme)
     << ";bar=" << to_string(barrier_action) << ";vq=" << (lap_virtual_queue ? 1 : 0)
     << ";aff=" << (lap_affinity ? 1 : 0) << ";regions=";
  for (std::size_t i = 0; i < regions.size(); ++i) {
    if (i) os << ',';
    os << regions[i].first << '-' << regions[i].last << ':'
       << to_string(regions[i].propagation);
  }
  return os.str();
}

void validate(const ConsistencyPolicy& pol) {
  AECDSM_CHECK_MSG(!pol.name.empty(), "policy has no name");
  for (const RegionRule& r : pol.regions) {
    AECDSM_CHECK_MSG(r.first <= r.last,
                     "policy '" + pol.name + "': region rule first > last");
  }
  const auto require = [&](bool ok, const char* what) {
    AECDSM_CHECK_MSG(ok, "policy '" + pol.name + "': " + what +
                             std::string(" is not implemented by the ") +
                             to_string(pol.family) + " engine");
  };
  switch (pol.family) {
    case Family::kAec:
      // The configurable engine: the propagation axis (including per-region
      // rules) and the LAP knobs are free; the remaining axes are what the
      // AEC machinery embodies.
      require(pol.diff_timing == DiffTiming::kEagerOverlapped, "diff timing");
      require(pol.push_selector == PushSelector::kNone ||
                  pol.push_selector == PushSelector::kLapUpdateSet,
              "push selector");
      require(pol.home_placement == HomePlacement::kBarrierReassign,
              "home placement");
      require(pol.lock_scheme == LockScheme::kManagerChain, "lock scheme");
      require(pol.barrier_action == BarrierAction::kDirectiveRouting,
              "barrier action");
      break;
    case Family::kTmk:
      require(pol.propagation == Propagation::kInvalidate, "propagation");
      require(pol.diff_timing == DiffTiming::kLazyOnDemand, "diff timing");
      require(pol.push_selector == PushSelector::kNone, "push selector");
      require(pol.home_placement == HomePlacement::kStaticInterleaved,
              "home placement");
      require(pol.lock_scheme == LockScheme::kDistributedOwner, "lock scheme");
      require(pol.barrier_action == BarrierAction::kNoticeExchange,
              "barrier action");
      require(pol.regions.empty(), "per-region propagation");
      break;
    case Family::kErc:
      require(pol.propagation == Propagation::kUpdate, "propagation");
      require(pol.diff_timing == DiffTiming::kEagerBlocking, "diff timing");
      require(pol.push_selector == PushSelector::kCopyset, "push selector");
      require(pol.home_placement == HomePlacement::kStaticInterleaved,
              "home placement");
      require(pol.lock_scheme == LockScheme::kManagerFifo, "lock scheme");
      require(pol.barrier_action == BarrierAction::kFlushGather,
              "barrier action");
      require(pol.regions.empty(), "per-region propagation");
      break;
  }
}

namespace {

struct Registry {
  std::mutex mu;
  std::map<std::string, ConsistencyPolicy> by_name;
};

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry;
    const auto add = [&](ConsistencyPolicy p) {
      validate(p);
      reg->by_name.emplace(p.name, std::move(p));
    };

    // The paper's protocol (§3): LAP update pushes on lock grants, diff
    // creation overlapped with barrier waiting, barrier directive routing
    // with home reassignment.
    ConsistencyPolicy aec;
    aec.name = "AEC";
    add(aec);

    // AEC with the predictor disabled — grants carry no update sets.
    ConsistencyPolicy nolap = aec;
    nolap.name = "AEC-noLAP";
    nolap.push_selector = PushSelector::kNone;
    add(nolap);

    ConsistencyPolicy tmk;
    tmk.name = "TreadMarks";
    tmk.family = Family::kTmk;
    tmk.propagation = Propagation::kInvalidate;
    tmk.diff_timing = DiffTiming::kLazyOnDemand;
    tmk.push_selector = PushSelector::kNone;
    tmk.home_placement = HomePlacement::kStaticInterleaved;
    tmk.lock_scheme = LockScheme::kDistributedOwner;
    tmk.barrier_action = BarrierAction::kNoticeExchange;
    add(tmk);

    ConsistencyPolicy erc;
    erc.name = "Munin-ERC";
    erc.family = Family::kErc;
    erc.propagation = Propagation::kUpdate;
    erc.diff_timing = DiffTiming::kEagerBlocking;
    erc.push_selector = PushSelector::kCopyset;
    erc.home_placement = HomePlacement::kStaticInterleaved;
    erc.lock_scheme = LockScheme::kManagerFifo;
    erc.barrier_action = BarrierAction::kFlushGather;
    add(erc);

    // The stock hybrid: AEC's lock handling, diff overlap and directive
    // barrier, with TreadMarks-style invalidate propagation — barrier
    // directives carry drop notices instead of routed diffs for sharers
    // that are neither the old nor the new home.
    ConsistencyPolicy hybrid = aec;
    hybrid.name = "AEC-TmkBarrier";
    hybrid.propagation = Propagation::kInvalidate;
    add(hybrid);

    return reg;
  }();
  return *r;
}

}  // namespace

void register_policy(const ConsistencyPolicy& pol) {
  validate(pol);
  Registry& r = registry();
  std::lock_guard<std::mutex> g(r.mu);
  r.by_name[pol.name] = pol;
}

const ConsistencyPolicy* find_policy(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> g(r.mu);
  auto it = r.by_name.find(name);
  return it == r.by_name.end() ? nullptr : &it->second;
}

std::vector<std::string> registered_names() {
  Registry& r = registry();
  std::lock_guard<std::mutex> g(r.mu);
  std::vector<std::string> names;
  names.reserve(r.by_name.size());
  for (const auto& [name, pol] : r.by_name) names.push_back(name);
  return names;
}

std::string registered_names_joined() {
  std::string out;
  for (const std::string& n : registered_names()) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

}  // namespace aecdsm::policy
