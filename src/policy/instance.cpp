#include "policy/instance.hpp"

#include "aec/suite.hpp"
#include "common/check.hpp"
#include "erc/protocol.hpp"
#include "tmk/protocol.hpp"

namespace aecdsm::policy {

ProtocolInstance::ProtocolInstance(ConsistencyPolicy pol) : pol_(std::move(pol)) {
  validate(pol_);
  switch (pol_.family) {
    case Family::kAec:
      aec_ = std::make_unique<aec::AecSuite>(pol_);
      break;
    case Family::kTmk:
      tm_ = std::make_unique<tmk::TmSuite>(pol_);
      break;
    case Family::kErc:
      erc_ = std::make_unique<erc::ErcSuite>(pol_);
      break;
  }
}

ProtocolInstance::ProtocolInstance(ProtocolInstance&&) noexcept = default;
ProtocolInstance& ProtocolInstance::operator=(ProtocolInstance&&) noexcept = default;
ProtocolInstance::~ProtocolInstance() = default;

dsm::ProtocolSuite ProtocolInstance::suite() {
  if (aec_) return aec_->suite();
  if (tm_) return tm_->suite();
  return erc_->suite();
}

std::shared_ptr<const aec::AecShared> ProtocolInstance::aec_shared() const {
  return aec_ ? aec_->shared_handle() : nullptr;
}

std::shared_ptr<const tmk::TmShared> ProtocolInstance::tm_shared() const {
  return tm_ ? tm_->shared_handle() : nullptr;
}

std::shared_ptr<const erc::ErcShared> ProtocolInstance::erc_shared() const {
  return erc_ ? erc_->shared_handle() : nullptr;
}

ProtocolInstance make_instance(const std::string& name) {
  const ConsistencyPolicy* pol = find_policy(name);
  AECDSM_CHECK_MSG(pol != nullptr, "unknown protocol/policy '"
                                       << name << "'; registered policies: "
                                       << registered_names_joined());
  return ProtocolInstance(*pol);
}

}  // namespace aecdsm::policy
