#include "policy/lap.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace aecdsm::policy {

LockLap::LockLap(int num_procs, int update_set_size, double affinity_threshold)
    : nprocs_(num_procs),
      k_(update_set_size),
      threshold_(affinity_threshold),
      affinity_(static_cast<std::size_t>(num_procs) * num_procs, 0),
      snapshot_(static_cast<std::size_t>(num_procs)) {
  AECDSM_CHECK(num_procs > 0 && update_set_size > 0);
}

void LockLap::add_notice(ProcId p) { virtual_queue_.push_back(p); }

void LockLap::consume_notice(ProcId p) {
  auto it = std::find(virtual_queue_.begin(), virtual_queue_.end(), p);
  if (it != virtual_queue_.end()) virtual_queue_.erase(it);
}

ProcId LockLap::dequeue_waiter() {
  AECDSM_CHECK(!waiting_.empty());
  const ProcId p = waiting_.front();
  waiting_.pop_front();
  return p;
}

ProcId LockLap::dequeue_waiter_at(std::size_t idx) {
  AECDSM_CHECK(idx < waiting_.size());
  const ProcId p = waiting_[idx];
  waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(idx));
  return p;
}

int LockLap::affinity(ProcId from, ProcId to) const {
  return affinity_[static_cast<std::size_t>(from) * nprocs_ + static_cast<std::size_t>(to)];
}

bool LockLap::contains(const std::vector<ProcId>& v, ProcId p) {
  return std::find(v.begin(), v.end(), p) != v.end();
}

std::vector<ProcId> LockLap::affinity_set(ProcId p) const {
  // Mean affinity of p over the other processors (zeros included).
  long total = 0;
  for (ProcId q = 0; q < nprocs_; ++q) {
    if (q != p) total += affinity(p, q);
  }
  const double mean =
      nprocs_ > 1 ? static_cast<double>(total) / static_cast<double>(nprocs_ - 1) : 0.0;
  const double cut = (1.0 + threshold_) * mean;

  std::vector<ProcId> set;
  for (ProcId q = 0; q < nprocs_; ++q) {
    const int a = affinity(p, q);
    if (q == p || a == 0) continue;
    if (static_cast<double>(a) >= cut) set.push_back(q);
  }
  std::sort(set.begin(), set.end(), [&](ProcId a, ProcId b) {
    const int aa = affinity(p, a);
    const int ab = affinity(p, b);
    if (aa != ab) return aa > ab;
    return a < b;
  });
  return set;
}

std::vector<ProcId> LockLap::compute_update_set(ProcId p) {
  Snapshot& snap = snapshot_[static_cast<std::size_t>(p)];
  snap = Snapshot{};
  snap.valid = true;

  const std::vector<ProcId> aff = affinity_set(p);

  // --- Low-level combination snapshots for Table 3 scoring ----------------
  if (!waiting_.empty()) {
    snap.waitq = {waiting_.front()};
    snap.waitq_affinity = {waiting_.front()};
    snap.waitq_virtualq = {waiting_.front()};
  } else {
    snap.waitq = {};
    snap.waitq_affinity = aff;
    if (snap.waitq_affinity.size() > static_cast<std::size_t>(k_)) {
      snap.waitq_affinity.resize(static_cast<std::size_t>(k_));
    }
    for (const ProcId q : virtual_queue_) {
      if (snap.waitq_virtualq.size() >= static_cast<std::size_t>(k_)) break;
      if (q != p && !contains(snap.waitq_virtualq, q)) snap.waitq_virtualq.push_back(q);
    }
  }

  // --- The §2.2 algorithm ---------------------------------------------------
  std::vector<ProcId> u;

  // 1. Under contention the head of the real waiting queue is a perfect
  //    prediction; the algorithm stops there.
  if (!waiting_.empty()) {
    u.push_back(waiting_.front());
    snap.lap = u;
    return u;
  }

  // 2. Include the affinity set.
  for (const ProcId q : aff) {
    if (u.size() >= static_cast<std::size_t>(k_)) break;
    u.push_back(q);
  }

  // 3. Complete with virtual-queue members that have nonzero affinity.
  if (u.size() < static_cast<std::size_t>(k_)) {
    for (const ProcId q : virtual_queue_) {
      if (u.size() >= static_cast<std::size_t>(k_)) break;
      if (q != p && affinity(p, q) > 0 && !contains(u, q)) u.push_back(q);
    }
  }

  // 4. Still short: any virtual-queue member first, then any processor with
  //    nonzero affinity.
  if (u.size() < static_cast<std::size_t>(k_)) {
    for (const ProcId q : virtual_queue_) {
      if (u.size() >= static_cast<std::size_t>(k_)) break;
      if (q != p && !contains(u, q)) u.push_back(q);
    }
  }
  if (u.size() < static_cast<std::size_t>(k_)) {
    // Candidates ordered by descending affinity for determinism.
    std::vector<ProcId> by_aff;
    for (ProcId q = 0; q < nprocs_; ++q) {
      if (q != p && affinity(p, q) > 0 && !contains(u, q)) by_aff.push_back(q);
    }
    std::sort(by_aff.begin(), by_aff.end(), [&](ProcId a, ProcId b) {
      const int aa = affinity(p, a);
      const int ab = affinity(p, b);
      if (aa != ab) return aa > ab;
      return a < b;
    });
    for (const ProcId q : by_aff) {
      if (u.size() >= static_cast<std::size_t>(k_)) break;
      u.push_back(q);
    }
  }

  snap.lap = u;
  return u;
}

void LockLap::record_transfer(ProcId from, ProcId to) {
  AECDSM_CHECK(from >= 0 && from < nprocs_ && to >= 0 && to < nprocs_);
  if (from == to) return;  // self-reacquisition needs no prediction

  Snapshot& snap = snapshot_[static_cast<std::size_t>(from)];
  if (snap.valid) {
    auto score = [&](PredictorScore& s, const std::vector<ProcId>& pred) {
      ++s.predictions;
      if (contains(pred, to)) ++s.hits;
    };
    score(scores_.lap, snap.lap);
    score(scores_.waitq, snap.waitq);
    score(scores_.waitq_affinity, snap.waitq_affinity);
    score(scores_.waitq_virtualq, snap.waitq_virtualq);
    snap.valid = false;
  }

  ++affinity_[static_cast<std::size_t>(from) * nprocs_ + static_cast<std::size_t>(to)];
}

}  // namespace aecdsm::policy
