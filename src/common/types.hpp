// Fundamental scalar types shared by every module of the AEC/DSM simulator.
//
// The simulator models a 16-node network of workstations at 10ns-cycle
// resolution, following the methodology of Seidel, Bianchini & Amorim,
// "The Affinity Entry Consistency Protocol" (ICPP 1997), section 4.1.
#pragma once

#include <cstdint>
#include <cstddef>

namespace aecdsm {

/// Simulated processor cycles. The paper gives all times in 10ns cycles.
using Cycles = std::uint64_t;

/// Identifier of a simulated compute node (processor + memory + NIC).
using ProcId = int;

/// Identifier of a shared page (index into the global shared address space).
using PageId = std::uint32_t;

/// Identifier of a lock variable.
using LockId = std::uint32_t;

/// Byte offset into the global shared virtual address space.
using GAddr = std::uint64_t;

/// Sentinel for "no processor".
inline constexpr ProcId kNoProc = -1;

/// Sentinel for "no page".
inline constexpr PageId kNoPage = static_cast<PageId>(-1);

/// Machine word the coherence machinery operates on. Diffs, twins and the
/// per-word cost model (Table 1: 5 cycles/word twinning, 7 cycles/word diff
/// creation/application) all use 32-bit words, matching the 1997 target.
using Word = std::uint32_t;

inline constexpr std::size_t kWordBytes = sizeof(Word);

}  // namespace aecdsm
