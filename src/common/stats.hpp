// Execution-time accounting, mirroring the breakdown reported by the paper
// (figures 4, 5 and 6): busy / data / synch / ipc / others.
//
// Every simulated cycle of a processor's wall-clock time is attributed to
// exactly one bucket, so per-processor breakdowns always sum to the
// processor's finish time (tests assert this invariant).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace aecdsm {

/// Per-processor attribution of simulated time.
struct TimeBreakdown {
  Cycles busy = 0;        ///< useful application work (compute + hit-path accesses)
  Cycles data = 0;        ///< memory access fault overhead (page fetch, diff fetch/apply on faults)
  Cycles synch = 0;       ///< waiting at locks and barriers (incl. manager processing)
  Cycles ipc = 0;         ///< servicing requests from remote processors
  Cycles others_cache = 0;  ///< cache miss latency (dominant "others" per the paper)
  Cycles others_tlb = 0;    ///< TLB fill latency
  Cycles others_wb = 0;     ///< write buffer stall time
  Cycles others_misc = 0;   ///< remaining overheads (e.g. local interrupts)

  Cycles others() const { return others_cache + others_tlb + others_wb + others_misc; }
  Cycles total() const { return busy + data + synch + ipc + others(); }

  TimeBreakdown& operator+=(const TimeBreakdown& o) {
    busy += o.busy;
    data += o.data;
    synch += o.synch;
    ipc += o.ipc;
    others_cache += o.others_cache;
    others_tlb += o.others_tlb;
    others_wb += o.others_wb;
    others_misc += o.others_misc;
    return *this;
  }
};

/// Diff machinery statistics (paper Table 4).
struct DiffStats {
  std::uint64_t diffs_created = 0;
  std::uint64_t diff_bytes = 0;          ///< sum of encoded diff sizes
  std::uint64_t merged_diffs = 0;        ///< diffs that participated in a merge at release
  std::uint64_t merged_result_count = 0; ///< number of merge results produced
  std::uint64_t merged_result_bytes = 0; ///< sum of merged-diff sizes
  Cycles create_cycles = 0;              ///< total diff creation cost
  Cycles create_hidden_cycles = 0;       ///< part of create_cycles overlapped with waiting
  Cycles apply_cycles = 0;               ///< total diff application cost
  Cycles apply_hidden_cycles = 0;        ///< part of apply_cycles overlapped with waiting
  std::uint64_t diffs_applied = 0;

  DiffStats& operator+=(const DiffStats& o) {
    diffs_created += o.diffs_created;
    diff_bytes += o.diff_bytes;
    merged_diffs += o.merged_diffs;
    merged_result_count += o.merged_result_count;
    merged_result_bytes += o.merged_result_bytes;
    create_cycles += o.create_cycles;
    create_hidden_cycles += o.create_hidden_cycles;
    apply_cycles += o.apply_cycles;
    apply_hidden_cycles += o.apply_hidden_cycles;
    diffs_applied += o.diffs_applied;
    return *this;
  }
};

/// Access-fault statistics (paper figure 3 input).
struct FaultStats {
  std::uint64_t read_faults = 0;
  std::uint64_t write_faults = 0;
  std::uint64_t cold_faults = 0;       ///< first-touch faults needing a remote page copy
  std::uint64_t faults_inside_cs = 0;  ///< faults taken while holding at least one lock
  Cycles fault_cycles = 0;             ///< total stall attributed to access faults

  FaultStats& operator+=(const FaultStats& o) {
    read_faults += o.read_faults;
    write_faults += o.write_faults;
    cold_faults += o.cold_faults;
    faults_inside_cs += o.faults_inside_cs;
    fault_cycles += o.fault_cycles;
    return *this;
  }
};

/// Interconnect traffic statistics.
struct MsgStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;

  MsgStats& operator+=(const MsgStats& o) {
    messages += o.messages;
    bytes += o.bytes;
    return *this;
  }
};

/// Reliable-transport and fault-injection counters (net::Transport over
/// net::FaultPlane). All zero — and omitted from the JSON artifacts — when
/// fault injection is disabled, which keeps fault-free documents
/// byte-identical to pre-fault-plane baselines.
struct TransportStats {
  std::uint64_t data_sends = 0;    ///< reliable payload sends entering the transport
  std::uint64_t retransmits = 0;   ///< payload copies re-sent after an RTO expiry
  std::uint64_t timeouts = 0;      ///< retransmit timer expiries
  std::uint64_t acks = 0;          ///< acknowledgement copies injected
  std::uint64_t dup_dropped = 0;   ///< receiver-side dedup discards
  std::uint64_t held_ooo = 0;      ///< arrivals held for in-order release

  std::uint64_t drops_injected = 0;    ///< copies lost by the fault plane
  std::uint64_t dups_injected = 0;     ///< copies duplicated by the fault plane
  std::uint64_t delays_injected = 0;   ///< copies delay-jittered
  std::uint64_t reorders_injected = 0; ///< copies held past later traffic
  std::uint64_t paused_deliveries = 0; ///< deliveries stalled by a node pause

  std::uint64_t push_sends = 0;     ///< best-effort sends (AEC LAP pushes)
  std::uint64_t push_drops = 0;     ///< best-effort copies lost (no retransmit)
  std::uint64_t push_timeouts = 0;  ///< AEC waits that gave up on a promised push
  std::uint64_t push_fallbacks = 0; ///< noLAP lazy fetches taken after a timeout

  bool any() const {
    return data_sends != 0 || retransmits != 0 || timeouts != 0 || acks != 0 ||
           dup_dropped != 0 || held_ooo != 0 || drops_injected != 0 ||
           dups_injected != 0 || delays_injected != 0 || reorders_injected != 0 ||
           paused_deliveries != 0 || push_sends != 0 || push_drops != 0 ||
           push_timeouts != 0 || push_fallbacks != 0;
  }

  TransportStats& operator+=(const TransportStats& o) {
    data_sends += o.data_sends;
    retransmits += o.retransmits;
    timeouts += o.timeouts;
    acks += o.acks;
    dup_dropped += o.dup_dropped;
    held_ooo += o.held_ooo;
    drops_injected += o.drops_injected;
    dups_injected += o.dups_injected;
    delays_injected += o.delays_injected;
    reorders_injected += o.reorders_injected;
    paused_deliveries += o.paused_deliveries;
    push_sends += o.push_sends;
    push_drops += o.push_drops;
    push_timeouts += o.push_timeouts;
    push_fallbacks += o.push_fallbacks;
    return *this;
  }

  friend bool operator==(const TransportStats&, const TransportStats&) = default;
};

/// Crash/recovery counters for the fail-stop fault plane (crash schedules in
/// FaultParams::crashes plus the lock-manager failover protocol in
/// policy::PolicyEngine). All zero — and omitted from the JSON artifacts —
/// when no crash is scheduled, which keeps crash-free documents
/// byte-identical to pre-crash-plane baselines.
struct RecoveryStats {
  std::uint64_t crash_drops = 0;        ///< message copies refused by a crashed NIC
  std::uint64_t suspects = 0;           ///< suspect verdicts raised by the transport
  std::uint64_t failovers = 0;          ///< lock failovers initiated by a suspecter
  std::uint64_t reelections = 0;        ///< manager re-elections installed
  std::uint64_t requeued_requests = 0;  ///< pending ops replayed to a new manager
  Cycles recovery_cycles = 0;           ///< sum over installs of (install time - crash start)

  bool any() const {
    return crash_drops != 0 || suspects != 0 || failovers != 0 ||
           reelections != 0 || requeued_requests != 0 || recovery_cycles != 0;
  }

  RecoveryStats& operator+=(const RecoveryStats& o) {
    crash_drops += o.crash_drops;
    suspects += o.suspects;
    failovers += o.failovers;
    reelections += o.reelections;
    requeued_requests += o.requeued_requests;
    recovery_cycles += o.recovery_cycles;
    return *this;
  }

  friend bool operator==(const RecoveryStats&, const RecoveryStats&) = default;
};

/// Lock-manager strategy counters (src/locks; DESIGN.md §13). Collected only
/// when a non-central strategy is selected or SystemParams::locks.collect_stats
/// is set; all zero — and omitted from the JSON artifacts — otherwise, which
/// keeps default documents byte-identical to pre-locks-subsystem baselines.
struct LockMgrStats {
  std::uint64_t grants = 0;            ///< lock grants issued (all paths)
  std::uint64_t handoffs = 0;          ///< grants to a waiter (owner -> waiter transfers)
  std::uint64_t direct_handoffs = 0;   ///< mcs: releaser->successor grants bypassing the manager
  std::uint64_t link_messages = 0;     ///< mcs: predecessor-link installs sent by managers
  std::uint64_t fallback_rels = 0;     ///< mcs: direct handoffs that bounced back to the manager
  std::uint64_t handoff_hops = 0;      ///< sum of mesh hops releaser -> next owner
  std::uint64_t cross_cohort = 0;      ///< handoffs leaving the releaser's mesh quadrant
  std::uint64_t hier_skips = 0;        ///< hier: grants that bypassed a cross-cohort FIFO head
  std::uint64_t queue_depth_sum = 0;   ///< sum of manager queue depth sampled at each grant
  std::uint64_t queue_depth_max = 0;   ///< deepest manager queue observed

  bool any() const {
    return grants != 0 || handoffs != 0 || direct_handoffs != 0 ||
           link_messages != 0 || fallback_rels != 0 || handoff_hops != 0 ||
           cross_cohort != 0 || hier_skips != 0 || queue_depth_sum != 0 ||
           queue_depth_max != 0;
  }

  LockMgrStats& operator+=(const LockMgrStats& o) {
    grants += o.grants;
    handoffs += o.handoffs;
    direct_handoffs += o.direct_handoffs;
    link_messages += o.link_messages;
    fallback_rels += o.fallback_rels;
    handoff_hops += o.handoff_hops;
    cross_cohort += o.cross_cohort;
    hier_skips += o.hier_skips;
    queue_depth_sum += o.queue_depth_sum;
    queue_depth_max = queue_depth_max > o.queue_depth_max ? queue_depth_max
                                                          : o.queue_depth_max;
    return *this;
  }

  friend bool operator==(const LockMgrStats&, const LockMgrStats&) = default;
};

/// Diff-work / synchronization-delay overlap summary, produced by the
/// trace::OverlapAnalyzer from a recorded timeline (trace/overlap.hpp).
/// All zero — and omitted from the JSON artifacts — when the run was not
/// traced, which keeps untraced documents byte-identical to pre-trace
/// baselines.
struct OverlapStats {
  std::uint64_t episodes = 0;          ///< lock.wait + barrier.wait spans seen
  Cycles diff_cycles = 0;              ///< total diff.create + diff.apply span cycles
  Cycles overlap_lock_wait = 0;        ///< diff cycles hidden under lock waiting
  Cycles overlap_barrier_wait = 0;     ///< diff cycles hidden under barrier imbalance
  Cycles overlap_service = 0;          ///< diff cycles hidden under message service
  Cycles overlap_any = 0;              ///< diff cycles hidden under the union of the three
  Cycles lock_wait_cycles = 0;         ///< total lock.wait cycles (merged per node)
  Cycles barrier_wait_cycles = 0;      ///< total barrier.wait cycles (merged per node)
  Cycles service_cycles = 0;           ///< total svc cycles (merged per node)

  /// Fraction of diff work overlapped with some synchronization delay.
  double ratio() const {
    return diff_cycles > 0
               ? static_cast<double>(overlap_any) / static_cast<double>(diff_cycles)
               : 0.0;
  }

  bool any() const {
    return episodes != 0 || diff_cycles != 0 || overlap_any != 0 ||
           lock_wait_cycles != 0 || barrier_wait_cycles != 0 ||
           service_cycles != 0;
  }

  friend bool operator==(const OverlapStats&, const OverlapStats&) = default;
};

/// Synchronization-event counts (paper Table 2).
struct SyncStats {
  std::uint64_t lock_acquires = 0;
  std::uint64_t barrier_events = 0;    ///< global barrier episodes (counted once each)
  std::uint64_t distinct_locks = 0;

  SyncStats& operator+=(const SyncStats& o) {
    lock_acquires += o.lock_acquires;
    barrier_events += o.barrier_events;
    // distinct_locks is a property of the run, not additive; keep the max.
    if (o.distinct_locks > distinct_locks) distinct_locks = o.distinct_locks;
    return *this;
  }
};

/// Everything measured by one simulated run.
struct RunStats {
  std::string protocol;   ///< "AEC", "AEC-noLAP", "TreadMarks"
  std::string app;
  int num_procs = 0;
  Cycles finish_time = 0;  ///< simulated time when the last processor finished

  std::vector<TimeBreakdown> per_proc;  ///< indexed by ProcId
  DiffStats diffs;
  FaultStats faults;
  MsgStats msgs;
  SyncStats sync;
  TransportStats transport;  ///< all-zero when fault injection is disabled
  RecoveryStats recovery;    ///< all-zero unless a crash was scheduled
  OverlapStats overlap;      ///< all-zero unless the run was traced + analyzed
  LockMgrStats lockmgr;      ///< all-zero unless a lock strategy collects stats

  /// Total engine events of the run. Thread-count-independent (the parallel
  /// engine replays the sequential numbering). Deliberately NOT part of the
  /// artifact JSON — committed bench baselines and cached blobs predate it —
  /// so it is zero for cache-served results; events-per-second telemetry
  /// (BatchRunInfo) uses it for fresh runs only.
  std::uint64_t engine_events = 0;

  bool result_valid = false;  ///< did the app's output match its sequential oracle?

  TimeBreakdown aggregate() const {
    TimeBreakdown t;
    for (const auto& b : per_proc) t += b;
    return t;
  }
};

}  // namespace aecdsm
