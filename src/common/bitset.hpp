// Fixed-width dynamic bitset over processor ids. The AEC barrier router and
// the ERC copysets used raw std::uint64_t masks, capping runs at 64 nodes;
// this replaces them with a word-array of the same semantics so k x k mesh
// sweeps reach 256/1024 nodes. Bit i <-> processor i; all operations keep
// the 0..n-1 iteration order the protocols rely on for determinism.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aecdsm {

class DynBitset {
 public:
  DynBitset() = default;
  explicit DynBitset(int bits)
      : bits_(bits), words_((static_cast<std::size_t>(bits) + 63) / 64, 0) {}

  int size() const { return bits_; }

  void set(int i) { words_[word(i)] |= mask(i); }
  void reset(int i) { words_[word(i)] &= ~mask(i); }
  bool test(int i) const { return (words_[word(i)] & mask(i)) != 0; }

  bool any() const {
    for (const std::uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }
  bool none() const { return !any(); }

  /// Any bit set besides `i`? (The barrier's "someone else still holds a
  /// copy" interest test.)
  bool any_except(int i) const {
    for (std::size_t k = 0; k < words_.size(); ++k) {
      std::uint64_t w = words_[k];
      if (k == word(i)) w &= ~mask(i);
      if (w != 0) return true;
    }
    return false;
  }

  int count() const {
    int n = 0;
    for (int i = 0; i < bits_; ++i) n += test(i) ? 1 : 0;
    return n;
  }

  DynBitset& operator|=(const DynBitset& o) {
    for (std::size_t k = 0; k < words_.size(); ++k) words_[k] |= o.words_[k];
    return *this;
  }
  DynBitset& operator&=(const DynBitset& o) {
    for (std::size_t k = 0; k < words_.size(); ++k) words_[k] &= o.words_[k];
    return *this;
  }
  /// this &= ~o (mask subtraction).
  DynBitset& andnot(const DynBitset& o) {
    for (std::size_t k = 0; k < words_.size(); ++k) words_[k] &= ~o.words_[k];
    return *this;
  }

  friend bool operator==(const DynBitset&, const DynBitset&) = default;

 private:
  static std::size_t word(int i) { return static_cast<std::size_t>(i) >> 6; }
  static std::uint64_t mask(int i) { return 1ULL << (i & 63); }

  int bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace aecdsm
