// Deterministic pseudo-random number generation for workloads.
//
// Every application seeds one SplitMix64 per simulated processor from a
// fixed run seed, so a run is exactly reproducible regardless of host
// scheduling. Simulation timing itself uses no randomness at all.
#pragma once

#include <cstdint>

#include "common/check.hpp"

namespace aecdsm {

/// SplitMix64: tiny, fast, statistically solid for workload generation.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97f4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    AECDSM_CHECK(bound > 0);
    // Rejection-free modulo is fine for workload generation purposes.
    return next_u64() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    AECDSM_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Derive an independent stream (e.g., one per simulated processor).
  Rng split(std::uint64_t salt) {
    return Rng(next_u64() ^ (salt * 0xD1B54A32D192ED03ULL + 0x8BB84B93962EACC9ULL));
  }

 private:
  std::uint64_t state_;
};

}  // namespace aecdsm
