// Minimal leveled logging. Off by default so simulation hot paths stay cheap;
// enable with AECDSM_LOG=debug|info|warn in the environment or via set_level.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace aecdsm::logging {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kOff = 3 };

/// Current threshold; messages below it are discarded.
Level level();

/// Override the threshold programmatically (tests use this).
void set_level(Level lvl);

/// Initialize from the AECDSM_LOG environment variable (idempotent).
void init_from_env();

namespace detail {
void emit(Level lvl, const std::string& msg);
}  // namespace detail

}  // namespace aecdsm::logging

#define AECDSM_LOG_AT(lvl, stream_expr)                                     \
  do {                                                                      \
    if (static_cast<int>(lvl) >=                                            \
        static_cast<int>(::aecdsm::logging::level())) {                     \
      std::ostringstream aecdsm_log_os_;                                    \
      aecdsm_log_os_ << stream_expr;                                        \
      ::aecdsm::logging::detail::emit(lvl, aecdsm_log_os_.str());           \
    }                                                                       \
  } while (0)

#define AECDSM_DEBUG(stream_expr) AECDSM_LOG_AT(::aecdsm::logging::Level::kDebug, stream_expr)
#define AECDSM_INFO(stream_expr) AECDSM_LOG_AT(::aecdsm::logging::Level::kInfo, stream_expr)
#define AECDSM_WARN(stream_expr) AECDSM_LOG_AT(::aecdsm::logging::Level::kWarn, stream_expr)
