// System parameter block reproducing Table 1 of the AEC paper.
//
// Every timing constant of the simulated network of workstations lives here
// so that experiments can sweep them and tests can pin them.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace aecdsm {

/// One scheduled availability window on a node: starting at `at_cycle`, the
/// node is out of service for `cycles` simulated cycles. Used both for
/// transient pauses (inbound deliveries complete at the window end) and for
/// fail-stop crashes (the node drops traffic and makes no progress until the
/// window ends, then resumes from its last sync point with memory intact).
struct FaultWindow {
  int node = kNoProc;
  Cycles at_cycle = 0;
  Cycles cycles = 0;

  Cycles end() const { return at_cycle + cycles; }
  bool covers(Cycles t) const {
    return cycles > 0 && t >= at_cycle && t < at_cycle + cycles;
  }

  friend bool operator==(const FaultWindow&, const FaultWindow&) = default;
};

/// Deterministic fault-injection knobs for the interconnect (net::FaultPlane).
///
/// All rates are per message copy in [0, 1]; every fault decision is drawn
/// from per-link SplitMix64 streams derived from `seed`, so identical seeds
/// replay identical fault schedules regardless of host scheduling. The
/// default-constructed value means "no faults": the transport then becomes a
/// strict pass-through and simulated behaviour is bit-identical to a build
/// without the fault plane.
struct FaultParams {
  double drop_rate = 0.0;     ///< P(message copy is lost in the mesh)
  double dup_rate = 0.0;      ///< P(message copy is delivered twice)
  double delay_rate = 0.0;    ///< P(message copy is delay-jittered)
  Cycles delay_jitter_cycles = 2000;  ///< max extra latency of a delayed copy
  double reorder_rate = 0.0;  ///< P(copy is held so later sends overtake it)
  Cycles reorder_window_cycles = 1000;  ///< hold time of a reordered copy

  /// Stall a node's inbound message processing for a cycle window
  /// (deliveries arriving inside the window complete at its end). Multiple
  /// windows, possibly on different nodes, may be scheduled.
  std::vector<FaultWindow> pauses;

  /// Fail-stop crash schedule: inside a window the node's NIC drops all
  /// inbound traffic (data, acks, best-effort pushes) and its application
  /// thread makes no progress; at the window end the node resumes from its
  /// last sync point with memory intact (warm reboot). Node 0 hosts the
  /// barrier manager and the result oracle and must never crash.
  std::vector<FaultWindow> crashes;

  /// Retransmit attempts to a node before the reliable transport declares
  /// it *suspect* and triggers lock-manager failover (only while the node
  /// is actually crashed — pure message loss never raises a suspicion).
  int suspect_after = 3;

  std::uint64_t seed = 1;  ///< fault-schedule seed (independent of app seed)

  // Reliable-transport tuning (net::Transport).
  Cycles retransmit_timeout_cycles = 20000;  ///< base RTO before 1st retransmit
  int retransmit_backoff_cap = 6;            ///< max exponential RTO doublings
  /// AEC graceful degradation: how long an acquirer waits for a promised
  /// best-effort LAP push before falling back to the noLAP lazy-fetch path.
  Cycles push_timeout_cycles = 60000;

  /// Any fault source active? When false the whole fault/transport stack is
  /// bypassed (send == MeshNetwork::send).
  bool any() const {
    auto active = [](const std::vector<FaultWindow>& ws) {
      for (const FaultWindow& w : ws) {
        if (w.node != kNoProc && w.cycles > 0) return true;
      }
      return false;
    };
    return drop_rate > 0.0 || dup_rate > 0.0 || delay_rate > 0.0 ||
           reorder_rate > 0.0 || active(pauses) || active(crashes);
  }

  /// Any crash window scheduled? Gates the failover machinery (suspect
  /// verdicts, release acknowledgements, manager re-election) so crash-free
  /// configurations stay byte-identical to builds without the crash plane.
  bool crash_scheduled() const {
    for (const FaultWindow& w : crashes) {
      if (w.node != kNoProc && w.cycles > 0) return true;
    }
    return false;
  }

  friend bool operator==(const FaultParams&, const FaultParams&) = default;
};

/// Lock-manager strategy selection (src/locks). The default reproduces the
/// paper's centralized per-lock FIFO manager exactly; the alternatives keep
/// the shared lock records but change who forwards the grant and in what
/// order waiters are served. See DESIGN.md §13.
struct LockParams {
  /// Queue discipline + handoff transport:
  ///   "central" — manager-mediated FIFO (the paper's scheme; default),
  ///   "mcs"     — MCS-style queue: the manager links each waiter to its
  ///               predecessor and a release hands off with one
  ///               point-to-point message,
  ///   "hier"    — topology-aware hierarchical: grants prefer waiters in
  ///               the releaser's mesh quadrant (cohort) before crossing
  ///               quadrant boundaries.
  std::string strategy = "central";

  /// `hier` fairness budget: consecutive grants that may skip over a
  /// cross-cohort FIFO head before the global head must be served.
  int hier_fairness = 4;

  /// Collect LockMgrStats even under `central` (non-central strategies
  /// always collect). Changes the cell-cache key, never the simulation.
  bool collect_stats = false;

  /// Non-default? Gates artifact emission so default runs stay
  /// byte-identical to builds without the locks subsystem.
  bool any() const {
    return strategy != "central" || hier_fairness != 4 || collect_stats;
  }

  friend bool operator==(const LockParams&, const LockParams&) = default;
};

/// Defaults for system parameters (paper Table 1; 1 cycle = 10 ns).
///
/// The structure is a plain aggregate: experiments copy it, tweak fields and
/// hand it to `dsm::DsmSystem`. All per-word costs are charged on 32-bit
/// words (`Word`).
struct SystemParams {
  // --- Machine organization -------------------------------------------------
  int num_procs = 16;              ///< simulated compute nodes
  int mesh_width = 4;              ///< nodes arranged as mesh_width x (num_procs/mesh_width)

  // --- Virtual memory --------------------------------------------------------
  std::size_t page_bytes = 4096;   ///< coherence unit (Table 1: 4K bytes)
  int tlb_entries = 128;           ///< Table 1: TLB size
  Cycles tlb_fill_cycles = 100;    ///< Table 1: TLB fill service time

  // --- Interrupts / software overheads --------------------------------------
  Cycles interrupt_cycles = 4000;  ///< Table 1: all interrupts
  Cycles message_overhead = 400;   ///< Table 1: messaging overhead (software send cost)
  Cycles list_processing_per_elem = 6;  ///< Table 1: list processing, cycles/element

  // --- Cache / memory hierarchy ----------------------------------------------
  std::size_t cache_bytes = 256 * 1024;  ///< Table 1: total cache (direct mapped)
  std::size_t cache_line_bytes = 32;     ///< Table 1: cache line size
  int write_buffer_entries = 4;          ///< Table 1: write buffer size
  Cycles mem_setup_cycles = 9;           ///< Table 1: memory setup time
  /// Table 1: memory access time, 2.25 cycles/word. Stored in quarter cycles
  /// to stay in integer arithmetic (9 quarter-cycles per word).
  Cycles mem_quarter_cycles_per_word = 9;

  // --- I/O bus (NIC attach point) --------------------------------------------
  Cycles io_setup_cycles = 12;        ///< Table 1: I/O bus setup time
  Cycles io_cycles_per_word = 3;      ///< Table 1: I/O bus access time

  // --- Interconnect (wormhole-routed mesh) -----------------------------------
  int network_width_bits = 16;        ///< Table 1: network path width (bidirectional)
  Cycles switch_cycles = 4;           ///< Table 1: switch latency
  Cycles wire_cycles = 2;             ///< Table 1: wire latency

  // --- Coherence machinery per-word costs ------------------------------------
  Cycles twin_cycles_per_word = 5;    ///< Table 1: page twinning (plus memory accesses)
  Cycles diff_cycles_per_word = 7;    ///< Table 1: diff application/creation (plus memory)

  // --- Protocol tunables (section 2.2 / 5.1) ----------------------------------
  int update_set_size = 2;            ///< K: paper finds K=2 the best size
  /// Affinity-set inclusion threshold: processor q enters A_l(p) when
  /// aff_l(p,q) >= (1 + affinity_threshold) * mean affinity. Paper: 60%.
  double affinity_threshold = 0.60;

  // --- Simulation mechanics ---------------------------------------------------
  /// An application thread synchronizes with global simulated time at least
  /// every `quantum_cycles` of locally accumulated work, so that incoming
  /// protocol requests are serviced with bounded skew.
  Cycles quantum_cycles = 20000;

  // --- Fault injection (off by default) ---------------------------------------
  FaultParams faults;

  // --- Lock-manager strategy (central by default) ------------------------------
  LockParams locks;

  // Derived helpers -----------------------------------------------------------

  std::size_t words_per_page() const { return page_bytes / kWordBytes; }
  std::size_t words_per_cache_line() const { return cache_line_bytes / kWordBytes; }
  int mesh_height() const { return (num_procs + mesh_width - 1) / mesh_width; }

  /// Payload cycles for `bytes` on a 16-bit-per-cycle network path.
  Cycles network_payload_cycles(std::size_t bytes) const {
    const std::size_t bytes_per_cycle = static_cast<std::size_t>(network_width_bits) / 8;
    return (bytes + bytes_per_cycle - 1) / bytes_per_cycle;
  }

  /// Memory cost of touching `words` words (setup + per-word), rounding the
  /// quarter-cycle per-word rate up to whole cycles at the end.
  Cycles memory_access_cycles(std::size_t words) const {
    const Cycles quarters = mem_quarter_cycles_per_word * words;
    return mem_setup_cycles + (quarters + 3) / 4;
  }

  /// I/O-bus cost of moving `words` words between memory and the NIC.
  Cycles io_transfer_cycles(std::size_t words) const {
    return io_setup_cycles + io_cycles_per_word * words;
  }

  /// Cost of creating a twin of one page (Table 1: 5 cycles/word + memory).
  Cycles twin_create_cycles() const {
    const std::size_t w = words_per_page();
    return twin_cycles_per_word * w + memory_access_cycles(2 * w);
  }

  /// Cost of creating or applying a diff covering `words` changed words out
  /// of a whole-page comparison (creation scans the full page).
  Cycles diff_create_cycles() const {
    const std::size_t w = words_per_page();
    return diff_cycles_per_word * w + memory_access_cycles(2 * w);
  }

  /// Applying a diff touches only the encoded words.
  Cycles diff_apply_cycles(std::size_t changed_words) const {
    return diff_cycles_per_word * changed_words + memory_access_cycles(changed_words);
  }

  /// Validate invariants; returns an error string or empty when consistent.
  std::string validate() const;
};

}  // namespace aecdsm
