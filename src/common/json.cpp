#include "common/json.hpp"

#include <charconv>
#include <cstdio>
#include <cstring>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace aecdsm::json {

namespace {

void write_double(std::ostream& os, double d) {
  // Shortest round-trip form, locale-independent: the document must be
  // byte-stable for artifact diffing.
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), d);
  os.write(buf, res.ptr - buf);
}

void write_indent(std::ostream& os, int indent) {
  os << '\n';
  for (int i = 0; i < indent; ++i) os << "  ";
}

}  // namespace

std::string quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

Value& Value::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  AECDSM_CHECK_MSG(kind_ == Kind::kObject, "json: operator[] on non-object");
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(key, Value());
  return members_.back().second;
}

Value& Value::append(Value v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  AECDSM_CHECK_MSG(kind_ == Kind::kArray, "json: append on non-array");
  items_.push_back(std::move(v));
  return items_.back();
}

std::size_t Value::size() const {
  if (kind_ == Kind::kArray) return items_.size();
  if (kind_ == Kind::kObject) return members_.size();
  return 0;
}

void Value::write(std::ostream& os, int indent) const {
  const bool pretty = indent >= 0;
  switch (kind_) {
    case Kind::kNull: os << "null"; break;
    case Kind::kBool: os << (bool_ ? "true" : "false"); break;
    case Kind::kInt: os << int_; break;
    case Kind::kUint: os << uint_; break;
    case Kind::kDouble: write_double(os, double_); break;
    case Kind::kString: os << quote(string_); break;
    case Kind::kArray: {
      if (items_.empty()) { os << "[]"; break; }
      os << '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) os << ',';
        if (pretty) write_indent(os, indent + 1);
        items_[i].write(os, pretty ? indent + 1 : -1);
      }
      if (pretty) write_indent(os, indent);
      os << ']';
      break;
    }
    case Kind::kObject: {
      if (members_.empty()) { os << "{}"; break; }
      os << '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) os << ',';
        if (pretty) write_indent(os, indent + 1);
        os << quote(members_[i].first) << (pretty ? ": " : ":");
        members_[i].second.write(os, pretty ? indent + 1 : -1);
      }
      if (pretty) write_indent(os, indent);
      os << '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  AECDSM_CHECK_MSG(v != nullptr, "json: missing member '" << key << "'");
  return *v;
}

bool Value::as_bool() const {
  AECDSM_CHECK_MSG(kind_ == Kind::kBool, "json: as_bool on non-bool");
  return bool_;
}

std::int64_t Value::as_int() const {
  if (kind_ == Kind::kInt) return int_;
  if (kind_ == Kind::kUint) {
    AECDSM_CHECK_MSG(uint_ <= static_cast<std::uint64_t>(
                                  std::numeric_limits<std::int64_t>::max()),
                     "json: as_int overflow on " << uint_);
    return static_cast<std::int64_t>(uint_);
  }
  AECDSM_CHECK_MSG(false, "json: as_int on non-integer");
}

std::uint64_t Value::as_uint() const {
  if (kind_ == Kind::kUint) return uint_;
  if (kind_ == Kind::kInt) {
    AECDSM_CHECK_MSG(int_ >= 0, "json: as_uint on negative " << int_);
    return static_cast<std::uint64_t>(int_);
  }
  AECDSM_CHECK_MSG(false, "json: as_uint on non-integer");
}

double Value::as_double() const {
  if (kind_ == Kind::kDouble) return double_;
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  if (kind_ == Kind::kUint) return static_cast<double>(uint_);
  AECDSM_CHECK_MSG(false, "json: as_double on non-number");
}

const std::string& Value::as_string() const {
  AECDSM_CHECK_MSG(kind_ == Kind::kString, "json: as_string on non-string");
  return string_;
}

const std::vector<Value>& Value::items() const {
  static const std::vector<Value> kEmpty;
  return kind_ == Kind::kArray ? items_ : kEmpty;
}

const std::vector<std::pair<std::string, Value>>& Value::entries() const {
  static const std::vector<std::pair<std::string, Value>> kEmpty;
  return kind_ == Kind::kObject ? members_ : kEmpty;
}

namespace {

/// Recursive-descent parser over the subset json::Value emits (which is the
/// full JSON grammar minus exotic number forms the simulator never writes).
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    AECDSM_CHECK_MSG(pos_ == text_.size(),
                     "json: trailing garbage at offset " << pos_);
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    AECDSM_CHECK_MSG(false, "json: " << what << " at offset " << pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (text_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  Value parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Value();
        fail("bad literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v = Value::object();
    if (peek() == '}') { ++pos_; return v; }
    for (;;) {
      std::string key = parse_string();
      expect(':');
      v[key] = parse_value();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  Value parse_array() {
    expect('[');
    Value v = Value::array();
    if (peek() == ']') { ++pos_; return v; }
    for (;;) {
      v.append(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') { out += c; continue; }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          const auto res =
              std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          if (res.ec != std::errc{} || res.ptr != text_.data() + pos_ + 4) {
            fail("bad \\u escape");
          }
          pos_ += 4;
          // The writer only emits \u00XX control escapes; reject the rest
          // rather than half-implement UTF-16 surrogates.
          if (code > 0x7F) fail("unsupported \\u escape beyond ASCII");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') { ++pos_; continue; }
      if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ == start) fail("expected a value");
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (is_double) {
      double d = 0.0;
      const auto res = std::from_chars(first, last, d);
      if (res.ec != std::errc{} || res.ptr != last) fail("bad number");
      return Value(d);
    }
    if (*first == '-') {
      std::int64_t i = 0;
      const auto res = std::from_chars(first, last, i);
      if (res.ec != std::errc{} || res.ptr != last) fail("bad number");
      return Value(i);
    }
    std::uint64_t u = 0;
    const auto res = std::from_chars(first, last, u);
    if (res.ec != std::errc{} || res.ptr != last) fail("bad number");
    return Value(u);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace aecdsm::json
