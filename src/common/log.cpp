#include "common/log.hpp"

#include <cstdlib>

namespace aecdsm::logging {

namespace {
Level g_level = Level::kOff;
bool g_env_done = false;
}  // namespace

Level level() { return g_level; }

void set_level(Level lvl) { g_level = lvl; }

void init_from_env() {
  if (g_env_done) return;
  g_env_done = true;
  const char* v = std::getenv("AECDSM_LOG");
  if (v == nullptr) return;
  const std::string s(v);
  if (s == "debug") g_level = Level::kDebug;
  else if (s == "info") g_level = Level::kInfo;
  else if (s == "warn") g_level = Level::kWarn;
}

namespace detail {
void emit(Level lvl, const std::string& msg) {
  const char* tag = lvl == Level::kDebug ? "D" : lvl == Level::kInfo ? "I" : "W";
  std::cerr << "[" << tag << "] " << msg << "\n";
}
}  // namespace detail

}  // namespace aecdsm::logging
