#include "common/log.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>

namespace aecdsm::logging {

namespace {
// The level is the only cross-run mutable state in the logging layer. Batch
// runs execute simulations on several threads, so it is an atomic read by
// the hot-path macro and the env lookup happens exactly once per process.
std::atomic<Level> g_level{Level::kOff};
std::once_flag g_env_once;
std::mutex g_emit_mu;
}  // namespace

Level level() { return g_level.load(std::memory_order_relaxed); }

void set_level(Level lvl) { g_level.store(lvl, std::memory_order_relaxed); }

void init_from_env() {
  std::call_once(g_env_once, [] {
    const char* v = std::getenv("AECDSM_LOG");
    if (v == nullptr) return;
    const std::string s(v);
    if (s == "debug") g_level.store(Level::kDebug, std::memory_order_relaxed);
    else if (s == "info") g_level.store(Level::kInfo, std::memory_order_relaxed);
    else if (s == "warn") g_level.store(Level::kWarn, std::memory_order_relaxed);
  });
}

namespace detail {
void emit(Level lvl, const std::string& msg) {
  const char* tag = lvl == Level::kDebug ? "D" : lvl == Level::kInfo ? "I" : "W";
  // Compose the whole line first and hold the sink mutex for the single
  // write, so lines from concurrently running simulations never interleave.
  std::string line;
  line.reserve(msg.size() + 5);
  line += '[';
  line += tag;
  line += "] ";
  line += msg;
  line += '\n';
  std::lock_guard<std::mutex> lk(g_emit_mu);
  std::cerr << line;
}
}  // namespace detail

}  // namespace aecdsm::logging
