// Minimal ordered JSON document tree, shared by the harness artifact layer
// and the trace exporters.
//
// Objects preserve insertion order and doubles print in shortest round-trip
// form, so a document is byte-identical across runs and across --jobs
// settings (the determinism tests rely on this). Lives in common/ — below
// sim, dsm and trace — so low-level subsystems can emit JSON without pulling
// in the harness; `harness::json` aliases this namespace for existing users.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace aecdsm::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  Value() : kind_(Kind::kNull) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(int i) : kind_(Kind::kInt), int_(i) {}
  Value(std::int64_t i) : kind_(Kind::kInt), int_(i) {}
  Value(std::uint64_t u) : kind_(Kind::kUint), uint_(u) {}
  Value(double d) : kind_(Kind::kDouble), double_(d) {}
  Value(const char* s) : kind_(Kind::kString), string_(s) {}
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static Value array() { Value v; v.kind_ = Kind::kArray; return v; }
  static Value object() { Value v; v.kind_ = Kind::kObject; return v; }

  /// Parse a JSON document. Numbers keep their lexical class: an integer
  /// literal parses as kInt/kUint, anything with '.', 'e' or 'E' as kDouble,
  /// so parse → dump round-trips a document byte-identically. Malformed
  /// input raises SimError with the byte offset of the failure.
  static Value parse(const std::string& text);

  Kind kind() const { return kind_; }

  /// Object member access: inserts a null member on first use (a null Value
  /// silently becomes an object, so `doc["a"]["b"] = 1` works).
  Value& operator[](const std::string& key);

  /// Array append; a null Value silently becomes an array.
  Value& append(Value v);

  std::size_t size() const;

  // --- Read access (for parsed documents) ----------------------------------

  /// Object member lookup without insertion; nullptr when absent or when
  /// this value is not an object.
  const Value* find(const std::string& key) const;

  /// Checked member access: SimError when the key is missing.
  const Value& at(const std::string& key) const;

  /// Typed scalar access; SimError on a kind mismatch. as_uint accepts a
  /// non-negative kInt and as_int a kUint within range, since the parser
  /// classifies by lexical form only.
  bool as_bool() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  double as_double() const;
  const std::string& as_string() const;

  /// Array elements (empty for non-arrays).
  const std::vector<Value>& items() const;

  /// Object members in insertion order (empty for non-objects).
  const std::vector<std::pair<std::string, Value>>& entries() const;

  /// Serialize with 2-space indentation per level; `indent < 0` gives the
  /// compact single-line form.
  void write(std::ostream& os, int indent = 0) const;
  std::string dump(int indent = 0) const;

 private:
  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// JSON string escaping (quotes included in the output).
std::string quote(const std::string& s);

}  // namespace aecdsm::json
