// Runtime invariant checking for the simulator.
//
// Simulation bugs (protocol state machine violations, time going backwards)
// must fail loudly and immediately; they would otherwise silently corrupt
// the measured results. CHECK stays on in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace aecdsm {

/// Thrown on any violated simulator invariant.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a run exceeds its wall-clock budget (BatchRunner
/// --cell-timeout). A distinct type so the batch runner can record the cell
/// as "timeout" instead of treating it as a simulator bug.
class TimeoutError : public SimError {
 public:
  using SimError::SimError;
};

namespace detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw SimError(os.str());
}

}  // namespace detail
}  // namespace aecdsm

/// Always-on invariant check. Throws aecdsm::SimError on failure.
#define AECDSM_CHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond))                                                             \
      ::aecdsm::detail::check_failed(#cond, __FILE__, __LINE__, {});         \
  } while (0)

/// Invariant check with a streamed message: AECDSM_CHECK_MSG(x > 0, "x=" << x)
#define AECDSM_CHECK_MSG(cond, stream_expr)                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream aecdsm_check_os_;                                   \
      aecdsm_check_os_ << stream_expr;                                       \
      ::aecdsm::detail::check_failed(#cond, __FILE__, __LINE__,              \
                                     aecdsm_check_os_.str());                \
    }                                                                        \
  } while (0)
