#include "common/params.hpp"

#include <algorithm>
#include <sstream>

namespace aecdsm {

std::string SystemParams::validate() const {
  std::ostringstream err;
  // Mesh geometry first: every knob names itself so a sweep that computes
  // k x k shapes programmatically gets a SimError pointing at the bad value
  // (matching the faults.* convention below).
  if (num_procs <= 0)
    err << "num_procs: must be positive (got " << num_procs << "); ";
  if (mesh_width <= 0)
    err << "mesh_width: mesh edge must be positive (got " << mesh_width << "); ";
  if (num_procs > 0 && mesh_width > 0 && num_procs % mesh_width != 0)
    err << "num_procs: " << num_procs << " nodes do not tile a mesh_width="
        << mesh_width << " mesh (num_procs must be a multiple of mesh_width, "
        << "so " << mesh_width << "x" << mesh_height() << " = "
        << mesh_width * mesh_height() << " != num_procs); ";
  if (page_bytes == 0 || page_bytes % kWordBytes != 0)
    err << "page_bytes must be a positive multiple of the word size; ";
  if (cache_line_bytes == 0 || cache_line_bytes % kWordBytes != 0)
    err << "cache_line_bytes must be a positive multiple of the word size; ";
  if (cache_bytes % cache_line_bytes != 0)
    err << "cache_bytes must be a multiple of cache_line_bytes; ";
  if (page_bytes % cache_line_bytes != 0)
    err << "page_bytes must be a multiple of cache_line_bytes; ";
  if (network_width_bits % 8 != 0 || network_width_bits == 0)
    err << "network_width_bits must be a positive multiple of 8; ";
  if (tlb_entries <= 0) err << "tlb_entries must be positive; ";
  if (write_buffer_entries <= 0) err << "write_buffer_entries must be positive; ";
  if (update_set_size <= 0) err << "update_set_size must be positive; ";
  if (affinity_threshold < 0.0) err << "affinity_threshold must be non-negative; ";
  if (quantum_cycles == 0) err << "quantum_cycles must be positive; ";
  auto rate_ok = [](double r) { return r >= 0.0 && r <= 1.0; };
  if (!rate_ok(faults.drop_rate) || !rate_ok(faults.dup_rate) ||
      !rate_ok(faults.delay_rate) || !rate_ok(faults.reorder_rate))
    err << "fault rates must lie in [0, 1]; ";
  // drop_rate == 1 would retransmit forever; anything below one terminates
  // almost surely.
  if (faults.drop_rate >= 1.0) err << "drop_rate must be below 1; ";
  if (faults.delay_rate > 0.0 && faults.delay_jitter_cycles == 0)
    err << "delay_jitter_cycles must be positive when delay_rate > 0; ";
  if (faults.reorder_rate > 0.0 && faults.reorder_window_cycles == 0)
    err << "reorder_window_cycles must be positive when reorder_rate > 0; ";
  for (const FaultWindow& w : faults.pauses) {
    if (w.node < 0 || w.node >= num_procs)
      err << "faults.pauses: node " << w.node << " must name an existing processor; ";
    if (w.cycles == 0)
      err << "faults.pauses: window on node " << w.node
          << " must have positive cycles; ";
  }
  for (const FaultWindow& w : faults.crashes) {
    // Node 0 hosts the barrier manager and runs the result oracle; letting it
    // crash would take the run's control plane down with it.
    if (w.node < 1 || w.node >= num_procs)
      err << "faults.crashes: node " << w.node
          << " must name an existing processor other than node 0; ";
    if (w.cycles == 0)
      err << "faults.crashes: window on node " << w.node
          << " must have positive cycles; ";
  }
  // Overlapping crash windows on one node would make crashed()/crash_end()
  // ambiguous; reject them instead of silently folding into the cache key.
  {
    std::vector<FaultWindow> sorted = faults.crashes;
    std::sort(sorted.begin(), sorted.end(),
              [](const FaultWindow& a, const FaultWindow& b) {
                return a.node != b.node ? a.node < b.node : a.at_cycle < b.at_cycle;
              });
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      const FaultWindow& prev = sorted[i - 1];
      const FaultWindow& cur = sorted[i];
      if (prev.node == cur.node && cur.at_cycle < prev.end())
        err << "faults.crashes: overlapping windows on node " << cur.node
            << " (cycle " << cur.at_cycle << " < " << prev.end() << "); ";
    }
  }
  if (faults.crash_scheduled() && faults.suspect_after < 1)
    err << "faults.suspect_after must be at least 1; ";
  if (faults.any() && faults.retransmit_timeout_cycles == 0)
    err << "retransmit_timeout_cycles must be positive under faults; ";
  if (faults.any() && faults.retransmit_backoff_cap < 0)
    err << "retransmit_backoff_cap must be non-negative; ";
  if (faults.any() && faults.push_timeout_cycles == 0)
    err << "push_timeout_cycles must be positive under faults; ";
  if (locks.strategy != "central" && locks.strategy != "mcs" &&
      locks.strategy != "hier")
    err << "locks.strategy: unknown strategy '" << locks.strategy
        << "' (choose central, mcs or hier); ";
  if (locks.hier_fairness < 1)
    err << "locks.hier_fairness: budget must be at least 1 (got "
        << locks.hier_fairness << "); ";
  return err.str();
}

}  // namespace aecdsm
