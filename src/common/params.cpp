#include "common/params.hpp"

#include <sstream>

namespace aecdsm {

std::string SystemParams::validate() const {
  std::ostringstream err;
  if (num_procs <= 0) err << "num_procs must be positive; ";
  if (mesh_width <= 0) err << "mesh_width must be positive; ";
  if (num_procs % mesh_width != 0)
    err << "num_procs must be a multiple of mesh_width; ";
  if (page_bytes == 0 || page_bytes % kWordBytes != 0)
    err << "page_bytes must be a positive multiple of the word size; ";
  if (cache_line_bytes == 0 || cache_line_bytes % kWordBytes != 0)
    err << "cache_line_bytes must be a positive multiple of the word size; ";
  if (cache_bytes % cache_line_bytes != 0)
    err << "cache_bytes must be a multiple of cache_line_bytes; ";
  if (page_bytes % cache_line_bytes != 0)
    err << "page_bytes must be a multiple of cache_line_bytes; ";
  if (network_width_bits % 8 != 0 || network_width_bits == 0)
    err << "network_width_bits must be a positive multiple of 8; ";
  if (tlb_entries <= 0) err << "tlb_entries must be positive; ";
  if (write_buffer_entries <= 0) err << "write_buffer_entries must be positive; ";
  if (update_set_size <= 0) err << "update_set_size must be positive; ";
  if (affinity_threshold < 0.0) err << "affinity_threshold must be non-negative; ";
  if (quantum_cycles == 0) err << "quantum_cycles must be positive; ";
  return err.str();
}

}  // namespace aecdsm
