#include "net/transport.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "trace/recorder.hpp"

namespace aecdsm::net {

namespace {

/// Fixed injection offset of a duplicated copy, so the twin lands shortly
/// after (or, under jitter, before) the original instead of in the same
/// mesh transaction.
constexpr Cycles kDuplicateOffset = 64;

}  // namespace

Transport::Transport(sim::Engine& engine, MeshNetwork& mesh,
                     const SystemParams& params)
    : engine_(engine),
      mesh_(mesh),
      plane_(params),
      nprocs_(params.num_procs),
      base_rto_(params.faults.retransmit_timeout_cycles),
      backoff_cap_(params.faults.retransmit_backoff_cap),
      suspect_after_(params.faults.suspect_after) {
  // Protocols count push_timeouts/push_fallbacks even with faults disabled.
  stats_.resize(static_cast<std::size_t>(nprocs_));
  rstats_.resize(static_cast<std::size_t>(nprocs_));
  excl_dst_.assign(static_cast<std::size_t>(nprocs_), 0);
  if (plane_.enabled()) {
    const std::size_t channels = static_cast<std::size_t>(nprocs_) *
                                 static_cast<std::size_t>(nprocs_);
    send_ch_.resize(channels);
    recv_ch_.resize(channels);
    pending_.resize(static_cast<std::size_t>(nprocs_));
    suspected_.resize(static_cast<std::size_t>(nprocs_));
  }
}

TransportStats Transport::stats() const {
  TransportStats total;
  for (const TransportStats& s : stats_) total += s;
  return total;
}

RecoveryStats Transport::recovery() const {
  RecoveryStats total;
  for (const RecoveryStats& s : rstats_) total += s;
  return total;
}

void Transport::mark_exclusive_dst(ProcId dst) {
  AECDSM_CHECK(dst >= 0 && dst < nprocs_);
  excl_dst_[static_cast<std::size_t>(dst)] = 1;
}

void Transport::inject_copy(ProcId src, ProcId dst, std::size_t bytes,
                            bool exclusive, sim::Engine::EventFn fn) {
  const FaultPlane::Decision d = plane_.decide(src, dst);
  TransportStats& st = stats_for(src);
  if (d.delayed) ++st.delays_injected;
  if (d.reordered) ++st.reorders_injected;
  if (d.drop) {
    ++st.drops_injected;
    return;
  }
  auto emit = [this, src, dst, bytes,
               exclusive](Cycles extra, sim::Engine::EventFn deliver) {
    if (extra == 0) {
      mesh_.send(src, dst, bytes, std::move(deliver), exclusive);
    } else {
      engine_.schedule(engine_.now() + extra,
                       [this, src, dst, bytes, exclusive,
                        h = std::move(deliver)]() mutable {
                         mesh_.send(src, dst, bytes, std::move(h), exclusive);
                       });
    }
  };
  if (d.duplicate) {
    // The twin is injected verbatim at a fixed offset — it takes no further
    // fault decision, so duplication cannot cascade.
    ++st.dups_injected;
    emit(d.extra_delay + kDuplicateOffset, fn);
  }
  emit(d.extra_delay, std::move(fn));
}

void Transport::send(ProcId src, ProcId dst, std::size_t bytes,
                     sim::Engine::EventFn deliver, bool exclusive) {
  if (recorder_ != nullptr) {
    recorder_->instant(src, trace::Category::kNet, trace::names::kNetSend,
                       engine_.now(), "dst", static_cast<std::uint64_t>(dst),
                       "bytes", bytes);
  }
  if (!plane_.enabled() || src == dst) {
    mesh_.send(src, dst, bytes, std::move(deliver), exclusive);
    return;
  }
  // Under faults, a registered destination widens exclusivity to every
  // reliable carrier headed its way (see mark_exclusive_dst).
  const bool excl = exclusive || excl_dst_[static_cast<std::size_t>(dst)] != 0;
  ++stats_for(src).data_sends;
  const std::size_t ch = channel(src, dst);
  const std::uint32_t seq = send_ch_[ch].next_seq++;
  const std::uint64_t key = pending_key(ch, seq);
  auto fn = std::make_shared<sim::Engine::EventFn>(std::move(deliver));

  Pending p;
  p.src = src;
  p.dst = dst;
  p.bytes = bytes;
  p.seq = seq;
  p.exclusive = excl;
  p.deliver = fn;
  pending_shard(key).emplace(key, std::move(p));

  inject_copy(src, dst, bytes, excl, [this, src, dst, seq, excl, fn] {
    on_data_arrival(src, dst, seq, excl, fn);
  });
  arm_timer(key, 0);
}

void Transport::arm_timer(std::uint64_t key, int attempt) {
  const int shift = std::min(attempt, backoff_cap_);
  const Cycles rto = base_rto_ << shift;
  engine_.schedule(engine_.now() + rto,
                   [this, key, attempt] { timer_fire(key, attempt); });
}

void Transport::timer_fire(std::uint64_t key, int attempt) {
  auto& shard = pending_shard(key);
  const auto it = shard.find(key);
  // Acked (erased) or already retransmitted by a newer timer: stale timer.
  if (it == shard.end() || it->second.attempt != attempt) return;
  Pending& p = it->second;
  const Cycles now = engine_.now();
  if (plane_.crashed(p.src, now)) {
    // A crashed NIC cannot retransmit: re-check at the window end without
    // consuming an attempt or counting a timeout.
    engine_.schedule(plane_.crash_end(p.src, now),
                     [this, key, attempt] { timer_fire(key, attempt); });
    return;
  }
  if (suspect_handler_ && attempt + 1 >= suspect_after_ &&
      plane_.crashed(p.dst, now)) {
    // Enough unacknowledged copies to a destination that really is crashed:
    // raise the suspect verdict (once per window), but keep retransmitting —
    // the payload must still deliver after recovery.
    maybe_suspect(p.src, p.dst, now);
  }
  ++stats_for(p.src).timeouts;
  ++stats_for(p.src).retransmits;
  if (recorder_ != nullptr) {
    recorder_->instant(p.src, trace::Category::kNet, trace::names::kNetRetx,
                       engine_.now(), "dst",
                       static_cast<std::uint64_t>(p.dst), "attempt",
                       static_cast<std::uint64_t>(attempt + 1));
  }
  p.attempt = attempt + 1;
  const ProcId src = p.src;
  const ProcId dst = p.dst;
  const std::uint32_t seq = p.seq;
  const bool excl = p.exclusive;
  auto fn = p.deliver;
  inject_copy(src, dst, p.bytes, excl, [this, src, dst, seq, excl, fn] {
    on_data_arrival(src, dst, seq, excl, fn);
  });
  arm_timer(key, attempt + 1);
}

void Transport::maybe_suspect(ProcId src, ProcId dst, Cycles now) {
  const Cycles window_end = plane_.crash_end(dst, now);
  auto& memo = suspected_[static_cast<std::size_t>(src)];
  const auto [it, inserted] = memo.try_emplace(dst, window_end);
  if (inserted || it->second != window_end) {
    // First verdict for this window: count it and stamp the instant once.
    it->second = window_end;
    ++recovery_for(src).suspects;
    if (recorder_ != nullptr) {
      recorder_->instant(src, trace::Category::kNet, trace::names::kNetSuspect,
                         now, "dst", static_cast<std::uint64_t>(dst));
    }
  }
  // The hook itself fires on every exhausted message, not just the first:
  // a lock request issued after the manager was suspected via unrelated
  // traffic must still reach failover once its own retransmits exhaust.
  // The protocol's handler is idempotent (locks already failed over are
  // skipped), so repeat invocations only cost the registry scan.
  suspect_handler_(src, dst);
}

void Transport::on_data_arrival(ProcId src, ProcId dst, std::uint32_t seq,
                                bool exclusive,
                                std::shared_ptr<sim::Engine::EventFn> fn) {
  if (plane_.crashed(dst, engine_.now())) {
    // A crashed NIC refuses the copy and sends no ack; the sender's
    // retransmissions deliver it after recovery.
    ++recovery_for(dst).crash_drops;
    return;
  }
  if (plane_.paused(dst, engine_.now())) {
    ++stats_for(dst).paused_deliveries;
    const Cycles resume_at = plane_.pause_end(dst, engine_.now());
    // The retry must keep running solo, or a held exclusive handler could be
    // released from a concurrent event after the pause lifts.
    auto retry = [this, src, dst, seq, exclusive, fn] {
      on_data_arrival(src, dst, seq, exclusive, fn);
    };
    if (exclusive) {
      engine_.schedule_exclusive(resume_at, std::move(retry));
    } else {
      engine_.schedule(resume_at, std::move(retry));
    }
    return;
  }
  const std::size_t ch = channel(src, dst);
  RecvChannel& rc = recv_ch_[ch];
  const std::uint64_t key = pending_key(ch, seq);
  if (seq < rc.next_expected || rc.held.count(seq) != 0) {
    ++stats_for(dst).dup_dropped;
    send_ack(dst, src, key);  // the ack for the earlier copy may have died
    return;
  }
  if (seq == rc.next_expected) {
    ++rc.next_expected;
    (*fn)();
    // Release any copies that were held behind the gap, in order.
    for (auto it = rc.held.find(rc.next_expected); it != rc.held.end();
         it = rc.held.find(rc.next_expected)) {
      auto held = std::move(it->second);
      rc.held.erase(it);
      ++rc.next_expected;
      (*held)();
    }
  } else {
    ++stats_for(dst).held_ooo;
    rc.held.emplace(seq, std::move(fn));
  }
  send_ack(dst, src, key);
}

void Transport::send_ack(ProcId from, ProcId to, std::uint64_t key) {
  TransportStats& st = stats_for(from);
  ++st.acks;
  if (recorder_ != nullptr) {
    recorder_->instant(from, trace::Category::kNet, trace::names::kNetAck,
                       engine_.now(), "dst", static_cast<std::uint64_t>(to));
  }
  const FaultPlane::Decision d = plane_.decide(from, to);
  if (d.delayed) ++st.delays_injected;
  if (d.reordered) ++st.reorders_injected;
  if (d.drop) {
    ++st.drops_injected;
    return;  // the sender retransmits; the receiver dedups
  }
  auto emit = [this, from, to](Cycles extra, std::uint64_t k) {
    // Delivers at `to`, the original sender — the shard owner. A crashed
    // original sender refuses the ack like any other inbound copy (its
    // retransmit timer is already deferred to the window end).
    auto deliver = [this, to, k] {
      if (plane_.crashed(to, engine_.now())) {
        ++recovery_for(to).crash_drops;
        return;
      }
      pending_shard(k).erase(k);
    };
    if (extra == 0) {
      mesh_.send(from, to, kAckBytes, std::move(deliver));
    } else {
      engine_.schedule(engine_.now() + extra,
                       [this, from, to, h = std::move(deliver)]() mutable {
                         mesh_.send(from, to, kAckBytes, std::move(h));
                       });
    }
  };
  if (d.duplicate) {
    ++st.dups_injected;
    emit(d.extra_delay + kDuplicateOffset, key);
  }
  emit(d.extra_delay, key);
}

void Transport::send_best_effort(ProcId src, ProcId dst, std::size_t bytes,
                                 sim::Engine::EventFn deliver) {
  if (recorder_ != nullptr) {
    recorder_->instant(src, trace::Category::kNet, trace::names::kNetPush,
                       engine_.now(), "dst", static_cast<std::uint64_t>(dst),
                       "bytes", bytes);
  }
  if (!plane_.enabled() || src == dst) {
    mesh_.send(src, dst, bytes, std::move(deliver));
    return;
  }
  ++stats_for(src).push_sends;
  auto fn = std::make_shared<sim::Engine::EventFn>(std::move(deliver));
  // Arrival still honours a destination pause window; there is no dedup, so
  // a duplicated copy runs the handler twice (receivers are idempotent).
  auto arrival = [this, dst, fn] {
    if (plane_.crashed(dst, engine_.now())) {
      // Best-effort copies have no retransmission: a crash-dropped push is
      // simply gone and the protocol's push-timeout fallback covers it.
      ++recovery_for(dst).crash_drops;
      return;
    }
    if (plane_.paused(dst, engine_.now())) {
      ++stats_for(dst).paused_deliveries;
      const auto held = fn;
      engine_.schedule(plane_.pause_end(dst, engine_.now()), [held] { (*held)(); });
      return;
    }
    (*fn)();
  };
  const FaultPlane::Decision d = plane_.decide(src, dst);
  TransportStats& st = stats_for(src);
  if (d.delayed) ++st.delays_injected;
  if (d.reordered) ++st.reorders_injected;
  if (d.drop) {
    ++st.drops_injected;
    ++st.push_drops;
    return;
  }
  auto emit = [this, src, dst, bytes, &arrival](Cycles extra) {
    if (extra == 0) {
      mesh_.send(src, dst, bytes, arrival);
    } else {
      engine_.schedule(engine_.now() + extra, [this, src, dst, bytes, arrival] {
        mesh_.send(src, dst, bytes, arrival);
      });
    }
  };
  if (d.duplicate) {
    ++st.dups_injected;
    emit(d.extra_delay + kDuplicateOffset);
  }
  emit(d.extra_delay);
}

}  // namespace aecdsm::net
