#include "net/transport.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "trace/recorder.hpp"

namespace aecdsm::net {

namespace {

/// Fixed injection offset of a duplicated copy, so the twin lands shortly
/// after (or, under jitter, before) the original instead of in the same
/// mesh transaction.
constexpr Cycles kDuplicateOffset = 64;

}  // namespace

Transport::Transport(sim::Engine& engine, MeshNetwork& mesh,
                     const SystemParams& params)
    : engine_(engine),
      mesh_(mesh),
      plane_(params),
      nprocs_(params.num_procs),
      base_rto_(params.faults.retransmit_timeout_cycles),
      backoff_cap_(params.faults.retransmit_backoff_cap) {
  if (plane_.enabled()) {
    const std::size_t channels = static_cast<std::size_t>(nprocs_) *
                                 static_cast<std::size_t>(nprocs_);
    send_ch_.resize(channels);
    recv_ch_.resize(channels);
  }
}

void Transport::inject_copy(ProcId src, ProcId dst, std::size_t bytes,
                            sim::Engine::EventFn fn) {
  const FaultPlane::Decision d = plane_.decide(src, dst);
  if (d.delayed) ++stats_.delays_injected;
  if (d.reordered) ++stats_.reorders_injected;
  if (d.drop) {
    ++stats_.drops_injected;
    return;
  }
  auto emit = [this, src, dst, bytes](Cycles extra, sim::Engine::EventFn deliver) {
    if (extra == 0) {
      mesh_.send(src, dst, bytes, std::move(deliver));
    } else {
      engine_.schedule(engine_.now() + extra,
                       [this, src, dst, bytes, h = std::move(deliver)]() mutable {
                         mesh_.send(src, dst, bytes, std::move(h));
                       });
    }
  };
  if (d.duplicate) {
    // The twin is injected verbatim at a fixed offset — it takes no further
    // fault decision, so duplication cannot cascade.
    ++stats_.dups_injected;
    emit(d.extra_delay + kDuplicateOffset, fn);
  }
  emit(d.extra_delay, std::move(fn));
}

void Transport::send(ProcId src, ProcId dst, std::size_t bytes,
                     sim::Engine::EventFn deliver) {
  if (recorder_ != nullptr) {
    recorder_->instant(src, trace::Category::kNet, trace::names::kNetSend,
                       engine_.now(), "dst", static_cast<std::uint64_t>(dst),
                       "bytes", bytes);
  }
  if (!plane_.enabled() || src == dst) {
    mesh_.send(src, dst, bytes, std::move(deliver));
    return;
  }
  ++stats_.data_sends;
  const std::size_t ch = channel(src, dst);
  const std::uint32_t seq = send_ch_[ch].next_seq++;
  const std::uint64_t key = pending_key(ch, seq);
  auto fn = std::make_shared<sim::Engine::EventFn>(std::move(deliver));

  Pending p;
  p.src = src;
  p.dst = dst;
  p.bytes = bytes;
  p.seq = seq;
  p.deliver = fn;
  pending_.emplace(key, std::move(p));

  inject_copy(src, dst, bytes,
              [this, src, dst, seq, fn] { on_data_arrival(src, dst, seq, fn); });
  arm_timer(key, 0);
}

void Transport::arm_timer(std::uint64_t key, int attempt) {
  const int shift = std::min(attempt, backoff_cap_);
  const Cycles rto = base_rto_ << shift;
  engine_.schedule(engine_.now() + rto, [this, key, attempt] {
    const auto it = pending_.find(key);
    // Acked (erased) or already retransmitted by a newer timer: stale timer.
    if (it == pending_.end() || it->second.attempt != attempt) return;
    ++stats_.timeouts;
    ++stats_.retransmits;
    Pending& p = it->second;
    if (recorder_ != nullptr) {
      recorder_->instant(p.src, trace::Category::kNet, trace::names::kNetRetx,
                         engine_.now(), "dst",
                         static_cast<std::uint64_t>(p.dst), "attempt",
                         static_cast<std::uint64_t>(attempt + 1));
    }
    p.attempt = attempt + 1;
    const ProcId src = p.src;
    const ProcId dst = p.dst;
    const std::uint32_t seq = p.seq;
    auto fn = p.deliver;
    inject_copy(src, dst, p.bytes,
                [this, src, dst, seq, fn] { on_data_arrival(src, dst, seq, fn); });
    arm_timer(key, attempt + 1);
  });
}

void Transport::on_data_arrival(ProcId src, ProcId dst, std::uint32_t seq,
                                std::shared_ptr<sim::Engine::EventFn> fn) {
  if (plane_.paused(dst, engine_.now())) {
    ++stats_.paused_deliveries;
    engine_.schedule(plane_.pause_end(),
                     [this, src, dst, seq, fn] { on_data_arrival(src, dst, seq, fn); });
    return;
  }
  const std::size_t ch = channel(src, dst);
  RecvChannel& rc = recv_ch_[ch];
  const std::uint64_t key = pending_key(ch, seq);
  if (seq < rc.next_expected || rc.held.count(seq) != 0) {
    ++stats_.dup_dropped;
    send_ack(dst, src, key);  // the ack for the earlier copy may have died
    return;
  }
  if (seq == rc.next_expected) {
    ++rc.next_expected;
    (*fn)();
    // Release any copies that were held behind the gap, in order.
    for (auto it = rc.held.find(rc.next_expected); it != rc.held.end();
         it = rc.held.find(rc.next_expected)) {
      auto held = std::move(it->second);
      rc.held.erase(it);
      ++rc.next_expected;
      (*held)();
    }
  } else {
    ++stats_.held_ooo;
    rc.held.emplace(seq, std::move(fn));
  }
  send_ack(dst, src, key);
}

void Transport::send_ack(ProcId from, ProcId to, std::uint64_t key) {
  ++stats_.acks;
  if (recorder_ != nullptr) {
    recorder_->instant(from, trace::Category::kNet, trace::names::kNetAck,
                       engine_.now(), "dst", static_cast<std::uint64_t>(to));
  }
  const FaultPlane::Decision d = plane_.decide(from, to);
  if (d.delayed) ++stats_.delays_injected;
  if (d.reordered) ++stats_.reorders_injected;
  if (d.drop) {
    ++stats_.drops_injected;
    return;  // the sender retransmits; the receiver dedups
  }
  auto emit = [this, from, to](Cycles extra, std::uint64_t k) {
    auto deliver = [this, k] { pending_.erase(k); };
    if (extra == 0) {
      mesh_.send(from, to, kAckBytes, std::move(deliver));
    } else {
      engine_.schedule(engine_.now() + extra,
                       [this, from, to, h = std::move(deliver)]() mutable {
                         mesh_.send(from, to, kAckBytes, std::move(h));
                       });
    }
  };
  if (d.duplicate) {
    ++stats_.dups_injected;
    emit(d.extra_delay + kDuplicateOffset, key);
  }
  emit(d.extra_delay, key);
}

void Transport::send_best_effort(ProcId src, ProcId dst, std::size_t bytes,
                                 sim::Engine::EventFn deliver) {
  if (recorder_ != nullptr) {
    recorder_->instant(src, trace::Category::kNet, trace::names::kNetPush,
                       engine_.now(), "dst", static_cast<std::uint64_t>(dst),
                       "bytes", bytes);
  }
  if (!plane_.enabled() || src == dst) {
    mesh_.send(src, dst, bytes, std::move(deliver));
    return;
  }
  ++stats_.push_sends;
  auto fn = std::make_shared<sim::Engine::EventFn>(std::move(deliver));
  // Arrival still honours a destination pause window; there is no dedup, so
  // a duplicated copy runs the handler twice (receivers are idempotent).
  auto arrival = [this, dst, fn] {
    if (plane_.paused(dst, engine_.now())) {
      ++stats_.paused_deliveries;
      const auto held = fn;
      engine_.schedule(plane_.pause_end(), [held] { (*held)(); });
      return;
    }
    (*fn)();
  };
  const FaultPlane::Decision d = plane_.decide(src, dst);
  if (d.delayed) ++stats_.delays_injected;
  if (d.reordered) ++stats_.reorders_injected;
  if (d.drop) {
    ++stats_.drops_injected;
    ++stats_.push_drops;
    return;
  }
  auto emit = [this, src, dst, bytes, &arrival](Cycles extra) {
    if (extra == 0) {
      mesh_.send(src, dst, bytes, arrival);
    } else {
      engine_.schedule(engine_.now() + extra, [this, src, dst, bytes, arrival] {
        mesh_.send(src, dst, bytes, arrival);
      });
    }
  };
  if (d.duplicate) {
    ++stats_.dups_injected;
    emit(d.extra_delay + kDuplicateOffset);
  }
  emit(d.extra_delay);
}

}  // namespace aecdsm::net
