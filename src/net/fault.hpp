// Deterministic fault injection for the interconnect.
//
// The fault plane sits between the reliable transport and the mesh: every
// message *copy* handed to the mesh first receives a fault decision — drop,
// duplicate, delay-jitter, or reorder-hold — drawn from a per-directed-link
// SplitMix64 stream seeded from FaultParams::seed. Decisions depend only on
// the sequence of copies sent over that link, never on host scheduling or
// traffic on other links, so identical seeds replay identical fault
// schedules. Node pause windows additionally stall inbound deliveries at
// the destination, and fail-stop crash windows take a node out of service
// entirely (inbound traffic dropped, application progress halted) until the
// window ends. With default FaultParams the plane reports disabled and is
// never consulted.
#pragma once

#include <vector>

#include "common/params.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace aecdsm::net {

class FaultPlane {
 public:
  FaultPlane(const SystemParams& params);

  /// Any fault source configured? When false, decide() must not be called
  /// (the transport bypasses the plane entirely).
  bool enabled() const { return fp_.any(); }

  const FaultParams& params() const { return fp_; }

  /// Outcome for one message copy on the directed link src -> dst.
  struct Decision {
    bool drop = false;       ///< copy never arrives
    bool duplicate = false;  ///< a second copy is injected
    Cycles extra_delay = 0;  ///< injection held back by this many cycles
    bool delayed = false;    ///< extra_delay includes delay jitter
    bool reordered = false;  ///< extra_delay includes a reorder hold
  };

  /// Draw the fault decision for the next copy on src -> dst. Consumes a
  /// fixed number of draws from that link's stream regardless of outcome,
  /// so one knob never perturbs another knob's schedule.
  Decision decide(ProcId src, ProcId dst);

  /// Is `dst` inside a pause window at time `t`?
  bool paused(ProcId dst, Cycles t) const {
    return window_at(pauses_, dst, t) != nullptr;
  }

  /// First cycle after the pause window covering (dst, t); deliveries resume
  /// here. Precondition: paused(dst, t).
  Cycles pause_end(ProcId dst, Cycles t) const {
    return window_at(pauses_, dst, t)->end();
  }

  /// Is `node` crashed (fail-stop window active) at time `t`?
  bool crashed(ProcId node, Cycles t) const {
    return window_at(crashes_, node, t) != nullptr;
  }

  /// First cycle after the crash window covering (node, t); the node resumes
  /// here. Precondition: crashed(node, t).
  Cycles crash_end(ProcId node, Cycles t) const {
    return window_at(crashes_, node, t)->end();
  }

  /// Start cycle of the crash window covering (node, t).
  /// Precondition: crashed(node, t).
  Cycles crash_start(ProcId node, Cycles t) const {
    return window_at(crashes_, node, t)->at_cycle;
  }

  /// Any crash window scheduled anywhere in the run?
  bool crash_scheduled() const { return fp_.crash_scheduled(); }

 private:
  /// Per-node window schedules, sorted by start cycle (validation rejects
  /// overlapping crash windows, so at most one window covers any t).
  using Schedule = std::vector<std::vector<FaultWindow>>;

  const FaultWindow* window_at(const Schedule& s, ProcId node, Cycles t) const {
    if (node < 0 || node >= nprocs_) return nullptr;
    for (const FaultWindow& w : s[static_cast<std::size_t>(node)]) {
      if (w.covers(t)) return &w;
      if (w.at_cycle > t) break;
    }
    return nullptr;
  }

  FaultParams fp_;
  int nprocs_;
  std::vector<Rng> link_rng_;  ///< one stream per directed (src, dst) pair
  Schedule pauses_;
  Schedule crashes_;
};

}  // namespace aecdsm::net
