// Deterministic fault injection for the interconnect.
//
// The fault plane sits between the reliable transport and the mesh: every
// message *copy* handed to the mesh first receives a fault decision — drop,
// duplicate, delay-jitter, or reorder-hold — drawn from a per-directed-link
// SplitMix64 stream seeded from FaultParams::seed. Decisions depend only on
// the sequence of copies sent over that link, never on host scheduling or
// traffic on other links, so identical seeds replay identical fault
// schedules. A node pause window additionally stalls inbound deliveries at
// the destination. With default FaultParams the plane reports disabled and
// is never consulted.
#pragma once

#include <vector>

#include "common/params.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace aecdsm::net {

class FaultPlane {
 public:
  FaultPlane(const SystemParams& params);

  /// Any fault source configured? When false, decide() must not be called
  /// (the transport bypasses the plane entirely).
  bool enabled() const { return fp_.any(); }

  const FaultParams& params() const { return fp_; }

  /// Outcome for one message copy on the directed link src -> dst.
  struct Decision {
    bool drop = false;       ///< copy never arrives
    bool duplicate = false;  ///< a second copy is injected
    Cycles extra_delay = 0;  ///< injection held back by this many cycles
    bool delayed = false;    ///< extra_delay includes delay jitter
    bool reordered = false;  ///< extra_delay includes a reorder hold
  };

  /// Draw the fault decision for the next copy on src -> dst. Consumes a
  /// fixed number of draws from that link's stream regardless of outcome,
  /// so one knob never perturbs another knob's schedule.
  Decision decide(ProcId src, ProcId dst);

  /// Is `dst` inside its pause window at time `t`?
  bool paused(ProcId dst, Cycles t) const {
    return dst == fp_.pause_node && fp_.pause_cycles > 0 &&
           t >= fp_.pause_at_cycle && t < pause_end();
  }

  /// First cycle after the pause window (deliveries resume here).
  Cycles pause_end() const { return fp_.pause_at_cycle + fp_.pause_cycles; }

 private:
  FaultParams fp_;
  int nprocs_;
  std::vector<Rng> link_rng_;  ///< one stream per directed (src, dst) pair
};

}  // namespace aecdsm::net
