#include "net/mesh.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace aecdsm::net {

MeshNetwork::MeshNetwork(sim::Engine& engine, const SystemParams& params)
    : engine_(engine), params_(params) {
  const std::string err = params.validate();
  AECDSM_CHECK_MSG(err.empty(), err);
  // Four directed links per node (N/E/S/W); edge links exist but stay idle.
  link_busy_.assign(static_cast<std::size_t>(params.num_procs) * 4, 0);
  nic_busy_.assign(static_cast<std::size_t>(params.num_procs), 0);
}

MeshNetwork::Coord MeshNetwork::coord_of(ProcId p) const {
  return Coord{p % params_.mesh_width, p / params_.mesh_width};
}

ProcId MeshNetwork::node_at(Coord c) const {
  return c.y * params_.mesh_width + c.x;
}

std::size_t MeshNetwork::link_index(ProcId from, ProcId to) const {
  const Coord a = coord_of(from);
  const Coord b = coord_of(to);
  int dir;
  if (b.x == a.x + 1 && b.y == a.y) dir = 0;       // east
  else if (b.x == a.x - 1 && b.y == a.y) dir = 1;  // west
  else if (b.y == a.y + 1 && b.x == a.x) dir = 2;  // south
  else if (b.y == a.y - 1 && b.x == a.x) dir = 3;  // north
  else {
    AECDSM_CHECK_MSG(false, "non-adjacent link " << from << "->" << to);
  }
  return static_cast<std::size_t>(from) * 4 + static_cast<std::size_t>(dir);
}

std::vector<ProcId> MeshNetwork::route(ProcId src, ProcId dst) const {
  std::vector<ProcId> path{src};
  Coord c = coord_of(src);
  const Coord d = coord_of(dst);
  while (c.x != d.x) {  // X first, then Y (deadlock-free dimension order)
    c.x += (d.x > c.x) ? 1 : -1;
    path.push_back(node_at(c));
  }
  while (c.y != d.y) {
    c.y += (d.y > c.y) ? 1 : -1;
    path.push_back(node_at(c));
  }
  return path;
}

int MeshNetwork::hop_count(ProcId src, ProcId dst) const {
  const Coord a = coord_of(src);
  const Coord b = coord_of(dst);
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

Cycles MeshNetwork::uncontended_latency(ProcId src, ProcId dst, std::size_t bytes) const {
  if (src == dst) return 0;
  const std::size_t words = (bytes + kWordBytes - 1) / kWordBytes;
  const Cycles inject = params_.io_transfer_cycles(words);
  const Cycles eject = params_.io_transfer_cycles(words);
  const Cycles per_hop = params_.switch_cycles + params_.wire_cycles;
  const Cycles payload = params_.network_payload_cycles(bytes);
  return inject + static_cast<Cycles>(hop_count(src, dst)) * per_hop + payload + eject;
}

Cycles MeshNetwork::route_and_occupy(ProcId src, ProcId dst, std::size_t bytes,
                                     Cycles t0) {
  const std::size_t words = (bytes + kWordBytes - 1) / kWordBytes;
  const Cycles payload = params_.network_payload_cycles(bytes);

  // Source NIC injection over the I/O bus; back-to-back sends serialize.
  Cycles t = std::max(t0, nic_busy_[static_cast<std::size_t>(src)]);
  t += params_.io_transfer_cycles(words);
  nic_busy_[static_cast<std::size_t>(src)] = t;

  // Wormhole traversal: the header reserves each link in turn; the tail
  // occupies each link for the payload's serialization time.
  const std::vector<ProcId> path = route(src, dst);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const std::size_t link = link_index(path[i], path[i + 1]);
    t = std::max(t, link_busy_[link]) + params_.switch_cycles + params_.wire_cycles;
    link_busy_[link] = t + payload;
  }
  t += payload;

  // Destination ejection over the I/O bus into memory.
  t += params_.io_transfer_cycles(words);
  return t;
}

void MeshNetwork::send(ProcId src, ProcId dst, std::size_t bytes,
                       sim::Engine::EventFn deliver, bool exclusive) {
  AECDSM_CHECK(src >= 0 && src < params_.num_procs);
  AECDSM_CHECK(dst >= 0 && dst < params_.num_procs);

  if (engine_.parallel_running()) {
    // Workers may send concurrently; defer every shared-state mutation
    // (stats, NIC/link occupancy) to the replay, which commits them in
    // sequential event order. Exclusive self-sends are captured too: the
    // replay pushes the delivery with its flag, and the sender holds its own
    // frontier at the send time until then (Engine::capture_mesh_send).
    if (src == dst && !exclusive) {
      engine_.note_local_send(bytes);
      engine_.schedule(engine_.now(), std::move(deliver));
    } else {
      engine_.capture_mesh_send(src, dst, bytes, std::move(deliver), exclusive);
    }
    return;
  }

  stats_.messages += 1;
  stats_.bytes += bytes;

  const Cycles now = engine_.now();
  if (src == dst) {
    engine_.schedule(now, std::move(deliver));
    return;
  }
  engine_.schedule(route_and_occupy(src, dst, bytes, now), std::move(deliver));
}

Cycles MeshNetwork::resolve_send(ProcId src, ProcId dst, std::size_t bytes,
                                 Cycles t_send) {
  stats_.messages += 1;
  stats_.bytes += bytes;
  return route_and_occupy(src, dst, bytes, t_send);
}

void MeshNetwork::note_local_send(std::size_t bytes) {
  stats_.messages += 1;
  stats_.bytes += bytes;
}

Cycles MeshNetwork::min_cross_latency() const {
  // Every cross-node message pays at least: NIC injection and ejection of a
  // zero-word transfer, one switch+wire hop, and a zero-byte payload tail.
  return 2 * params_.io_transfer_cycles(0) + params_.switch_cycles +
         params_.wire_cycles + params_.network_payload_cycles(0);
}

}  // namespace aecdsm::net
