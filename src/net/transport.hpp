// Reliable message transport over the (optionally lossy) mesh.
//
// When fault injection is disabled this layer is a strict pass-through to
// MeshNetwork::send — no extra events, no extra state, bit-identical
// behaviour to the pre-transport simulator. When a FaultPlane is active,
// reliable sends get per-directed-channel sequence numbers, receiver-side
// dedup plus in-order release (so protocols keep the per-channel FIFO
// ordering the lossless mesh gave them), per-copy acknowledgements, and
// exponential-backoff retransmission driven by engine timers. Retransmitted
// copies and acks traverse the mesh like any other message (Table-1 wire,
// switch and NIC costs, counted in MsgStats); retransmission itself is
// NIC-autonomous and charges no host CPU.
//
// Best-effort sends (AEC's LAP update pushes) take the fault decision but
// skip sequencing, acks and retransmission entirely: a dropped push is
// simply gone, and the protocol must degrade gracefully.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/params.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "net/fault.hpp"
#include "net/mesh.hpp"
#include "sim/engine.hpp"

namespace aecdsm::trace {
class Recorder;
}

namespace aecdsm::net {

class Transport {
 public:
  /// Mesh cost charged for one acknowledgement (header-only message).
  static constexpr std::size_t kAckBytes = 16;

  Transport(sim::Engine& engine, MeshNetwork& mesh, const SystemParams& params);

  bool enabled() const { return plane_.enabled(); }
  FaultPlane& plane() { return plane_; }

  /// Reliable send: `deliver` runs exactly once at the destination, in
  /// per-channel send order, regardless of injected faults. Self-messages
  /// and the disabled transport go straight to the mesh.
  ///
  /// `exclusive` marks the delivery (and every retransmitted copy of it) as
  /// an exclusive event under the parallel engine; sequential runs ignore it.
  void send(ProcId src, ProcId dst, std::size_t bytes, sim::Engine::EventFn deliver,
            bool exclusive = false);

  /// Register, at startup before any traffic, a destination whose reliable
  /// deliveries must all run exclusively when faults are enabled. Needed
  /// because the receive channels release held out-of-order handlers inline
  /// inside whichever carrier fills the gap: if any message to `dst` is
  /// exclusive, every reliable carrier that could release it must run solo
  /// too, and copies already in flight cannot be flagged after the fact.
  /// No effect with faults disabled or under the sequential engine.
  void mark_exclusive_dst(ProcId dst);

  /// Best-effort send: the copy may be dropped, duplicated, delayed or
  /// reordered; the receiver's handler must tolerate all of that.
  void send_best_effort(ProcId src, ProcId dst, std::size_t bytes,
                        sim::Engine::EventFn deliver);

  /// Aggregate counters across all per-node shards.
  TransportStats stats() const;

  /// Counter shard owned by `node`. Every transport event executes at a
  /// well-defined node (sends and retransmit timers at the source,
  /// arrival-side bookkeeping at the destination), so in parallel engine
  /// mode each shard is only ever touched by that node's worker.
  TransportStats& stats_for(ProcId node) {
    return stats_[static_cast<std::size_t>(node)];
  }

  /// Attach (or detach, with nullptr) a trace sink recording send /
  /// retransmit / ack instants; purely observational.
  void set_recorder(trace::Recorder* rec) { recorder_ = rec; }

  // --- Crash plane ----------------------------------------------------------

  /// Aggregate crash/recovery counters across all per-node shards.
  RecoveryStats recovery() const;

  /// Recovery counter shard owned by `node` (same ownership discipline as
  /// stats_for: each shard is only touched by events executing at that node).
  RecoveryStats& recovery_for(ProcId node) {
    return rstats_[static_cast<std::size_t>(node)];
  }

  /// Install the suspect callback: invoked once per (source, crashed
  /// destination, crash window) when `suspect_after` unacknowledged copies
  /// have been sent to a destination that is actually crashed. Runs in the
  /// retransmit-timer context at the source node. Pure message loss never
  /// raises a suspicion — the failure detector is deterministic and perfect.
  void set_suspect_handler(std::function<void(ProcId src, ProcId dst)> h) {
    suspect_handler_ = std::move(h);
  }

 private:
  struct SendChannel {
    std::uint32_t next_seq = 0;
  };
  struct RecvChannel {
    std::uint32_t next_expected = 0;
    /// Arrived ahead of a gap; released in order once the gap fills.
    std::map<std::uint32_t, std::shared_ptr<sim::Engine::EventFn>> held;
  };
  struct Pending {
    ProcId src = kNoProc;
    ProcId dst = kNoProc;
    std::size_t bytes = 0;
    std::uint32_t seq = 0;
    int attempt = 0;  ///< copies injected so far minus one
    bool exclusive = false;
    std::shared_ptr<sim::Engine::EventFn> deliver;
  };

  std::size_t channel(ProcId src, ProcId dst) const {
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(nprocs_) +
           static_cast<std::size_t>(dst);
  }
  static std::uint64_t pending_key(std::size_t ch, std::uint32_t seq) {
    return (static_cast<std::uint64_t>(ch) << 32) | seq;
  }

  /// Put one copy of a message on the mesh after a fault decision; `fn`
  /// must be pause- and dedup-checked by the closure itself.
  void inject_copy(ProcId src, ProcId dst, std::size_t bytes, bool exclusive,
                   sim::Engine::EventFn fn);

  void arm_timer(std::uint64_t key, int attempt);
  void timer_fire(std::uint64_t key, int attempt);
  void maybe_suspect(ProcId src, ProcId dst, Cycles now);
  void on_data_arrival(ProcId src, ProcId dst, std::uint32_t seq, bool exclusive,
                       std::shared_ptr<sim::Engine::EventFn> fn);
  void send_ack(ProcId from, ProcId to, std::uint64_t key);

  sim::Engine& engine_;
  MeshNetwork& mesh_;
  FaultPlane plane_;
  int nprocs_;
  Cycles base_rto_;
  int backoff_cap_;

  /// Retransmission shard holding `key`: its source node's. A message's
  /// send, all of its retransmit timers, and the ack-triggered erase execute
  /// at the source (the ack's mesh delivery lands there), so each shard is
  /// single-node-owned.
  std::unordered_map<std::uint64_t, Pending>& pending_shard(std::uint64_t key) {
    return pending_[static_cast<std::size_t>(key >> 32) /
                    static_cast<std::size_t>(nprocs_)];
  }

  std::vector<SendChannel> send_ch_;
  std::vector<RecvChannel> recv_ch_;
  std::vector<std::unordered_map<std::uint64_t, Pending>> pending_;
  std::vector<TransportStats> stats_;
  std::vector<RecoveryStats> rstats_;
  std::vector<char> excl_dst_;  ///< per-dst: all reliable deliveries exclusive
  /// Per-source memo of already-suspected (dst -> crash window end) pairs, so
  /// one crash window raises at most one suspicion per directed channel.
  /// Sharded by source like pending_ (timer events execute at the source).
  std::vector<std::unordered_map<ProcId, Cycles>> suspected_;
  std::function<void(ProcId, ProcId)> suspect_handler_;
  int suspect_after_;
  trace::Recorder* recorder_ = nullptr;
};

}  // namespace aecdsm::net
