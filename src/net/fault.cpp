#include "net/fault.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace aecdsm::net {

namespace {

std::vector<std::vector<FaultWindow>> build_schedule(
    const std::vector<FaultWindow>& windows, int nprocs) {
  std::vector<std::vector<FaultWindow>> s(static_cast<std::size_t>(nprocs));
  for (const FaultWindow& w : windows) {
    if (w.node < 0 || w.node >= nprocs || w.cycles == 0) continue;
    s[static_cast<std::size_t>(w.node)].push_back(w);
  }
  for (auto& per_node : s) {
    std::sort(per_node.begin(), per_node.end(),
              [](const FaultWindow& a, const FaultWindow& b) {
                return a.at_cycle < b.at_cycle;
              });
  }
  return s;
}

}  // namespace

FaultPlane::FaultPlane(const SystemParams& params)
    : fp_(params.faults), nprocs_(params.num_procs) {
  Rng master(fp_.seed ^ 0xFA017F1A7EULL);
  const std::size_t links = static_cast<std::size_t>(nprocs_) *
                            static_cast<std::size_t>(nprocs_);
  link_rng_.reserve(links);
  for (std::size_t l = 0; l < links; ++l) link_rng_.push_back(master.split(l));
  pauses_ = build_schedule(fp_.pauses, nprocs_);
  crashes_ = build_schedule(fp_.crashes, nprocs_);
}

FaultPlane::Decision FaultPlane::decide(ProcId src, ProcId dst) {
  AECDSM_CHECK(src >= 0 && src < nprocs_ && dst >= 0 && dst < nprocs_);
  Rng& rng = link_rng_[static_cast<std::size_t>(src) *
                           static_cast<std::size_t>(nprocs_) +
                       static_cast<std::size_t>(dst)];
  // Fixed draw count per decision: four uniforms for the outcome rolls plus
  // one for the jitter magnitude, consumed even when unused.
  const double roll_drop = rng.next_double();
  const double roll_dup = rng.next_double();
  const double roll_delay = rng.next_double();
  const double roll_reorder = rng.next_double();
  const std::uint64_t magnitude = rng.next_u64();

  Decision d;
  if (roll_drop < fp_.drop_rate) {
    d.drop = true;
    return d;
  }
  d.duplicate = roll_dup < fp_.dup_rate;
  if (roll_delay < fp_.delay_rate) {
    d.delayed = true;
    d.extra_delay += 1 + magnitude % fp_.delay_jitter_cycles;
  }
  if (roll_reorder < fp_.reorder_rate) {
    d.reordered = true;
    d.extra_delay += fp_.reorder_window_cycles;
  }
  return d;
}

}  // namespace aecdsm::net
