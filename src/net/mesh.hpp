// Wormhole-routed 2-D mesh interconnect with link and NIC contention.
//
// Reproduces the network of the paper's simulated testbed (Table 1): 16-bit
// bidirectional paths, 4-cycle switch latency, 2-cycle wire latency,
// wormhole (pipelined) transmission, with contention modeled at the source,
// the destination and every traversed link.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/params.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/engine.hpp"

namespace aecdsm::net {

class MeshNetwork {
 public:
  MeshNetwork(sim::Engine& engine, const SystemParams& params);

  /// Transmit `bytes` of payload from `src` to `dst`; `deliver` runs as an
  /// engine event at the arrival time. The sender's software messaging
  /// overhead (Table 1: 400 cycles) is charged by the caller on the sending
  /// processor — this method models NIC injection, the wire, and ejection.
  ///
  /// A message to self bypasses the mesh and delivers immediately.
  void send(ProcId src, ProcId dst, std::size_t bytes, sim::Engine::EventFn deliver);

  /// Number of mesh hops between two nodes under XY routing (tests).
  int hop_count(ProcId src, ProcId dst) const;

  /// End-to-end latency of an uncontended message of `bytes` (tests and
  /// analytical sanity checks).
  Cycles uncontended_latency(ProcId src, ProcId dst, std::size_t bytes) const;

  const MsgStats& stats() const { return stats_; }

 private:
  struct Coord {
    int x, y;
  };

  Coord coord_of(ProcId p) const;
  ProcId node_at(Coord c) const;

  /// Directed link leaving `from` towards adjacent `to`.
  std::size_t link_index(ProcId from, ProcId to) const;

  /// XY route as the node sequence src..dst (inclusive).
  std::vector<ProcId> route(ProcId src, ProcId dst) const;

  sim::Engine& engine_;
  const SystemParams& params_;
  std::vector<Cycles> link_busy_;  ///< per directed link: busy-until time
  std::vector<Cycles> nic_busy_;   ///< per node: NIC injection busy-until
  MsgStats stats_;
};

}  // namespace aecdsm::net
