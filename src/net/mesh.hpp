// Wormhole-routed 2-D mesh interconnect with link and NIC contention.
//
// Reproduces the network of the paper's simulated testbed (Table 1): 16-bit
// bidirectional paths, 4-cycle switch latency, 2-cycle wire latency,
// wormhole (pipelined) transmission, with contention modeled at the source,
// the destination and every traversed link.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/params.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/engine.hpp"

namespace aecdsm::net {

class MeshNetwork {
 public:
  MeshNetwork(sim::Engine& engine, const SystemParams& params);

  /// Transmit `bytes` of payload from `src` to `dst`; `deliver` runs as an
  /// engine event at the arrival time. The sender's software messaging
  /// overhead (Table 1: 400 cycles) is charged by the caller on the sending
  /// processor — this method models NIC injection, the wire, and ejection.
  ///
  /// A message to self bypasses the mesh and delivers immediately.
  ///
  /// While the engine is in parallel-running mode, cross-node sends are
  /// captured (Engine::capture_mesh_send) instead of routed; the engine's
  /// replay calls resolve_send in sequential event order, so link/NIC
  /// contention and MsgStats evolve exactly as in a sequential run.
  ///
  /// `exclusive` marks the delivery as an exclusive event under the parallel
  /// engine (it runs alone at quiescence — see Engine::schedule_exclusive);
  /// the sequential engine ignores the flag entirely.
  void send(ProcId src, ProcId dst, std::size_t bytes, sim::Engine::EventFn deliver,
            bool exclusive = false);

  /// Route one captured cross-node send issued at `t_send`: commits its
  /// statistics, occupies NIC and links, and returns the delivery time.
  /// Called serially by the parallel engine's replay.
  Cycles resolve_send(ProcId src, ProcId dst, std::size_t bytes, Cycles t_send);

  /// Commit the statistics of one captured node-local send (replay).
  void note_local_send(std::size_t bytes);

  /// Lower bound on the send-to-delivery latency of any cross-node message,
  /// independent of size, distance and contention — the parallel engine's
  /// lookahead horizon.
  Cycles min_cross_latency() const;

  /// Number of mesh hops between two nodes under XY routing (tests).
  int hop_count(ProcId src, ProcId dst) const;

  /// End-to-end latency of an uncontended message of `bytes` (tests and
  /// analytical sanity checks).
  Cycles uncontended_latency(ProcId src, ProcId dst, std::size_t bytes) const;

  const MsgStats& stats() const { return stats_; }

 private:
  struct Coord {
    int x, y;
  };

  Coord coord_of(ProcId p) const;
  ProcId node_at(Coord c) const;

  /// Directed link leaving `from` towards adjacent `to`.
  std::size_t link_index(ProcId from, ProcId to) const;

  /// XY route as the node sequence src..dst (inclusive).
  std::vector<ProcId> route(ProcId src, ProcId dst) const;

  /// NIC injection + wormhole traversal + ejection starting at `t0`;
  /// occupies the NIC and every traversed link. Returns the delivery time.
  Cycles route_and_occupy(ProcId src, ProcId dst, std::size_t bytes, Cycles t0);

  sim::Engine& engine_;
  const SystemParams& params_;
  std::vector<Cycles> link_busy_;  ///< per directed link: busy-until time
  std::vector<Cycles> nic_busy_;   ///< per node: NIC injection busy-until
  MsgStats stats_;
};

}  // namespace aecdsm::net
