// Munin-style eager release consistency (ERC) — the "locally-developed
// release-consistent SW-DSM" of the paper's §5.1 robustness study, and the
// update-everyone baseline its §6 contrasts AEC against ("AEC leads to much
// less communication than in Munin, since updates are only sent to the
// update set of the lock releaser, as opposed to all processors that shared
// the modified data").
//
// Protocol summary:
//  * multiple-writer pages with the usual twin/diff discipline;
//  * a static per-page directory (the page's home, page % nprocs) tracks
//    the copyset; faults fetch the page from the home, which always holds a
//    current copy (it is a member of every update);
//  * at every lock release and barrier arrival the processor flushes its
//    dirty pages: each diff goes to the home, the home applies it and
//    forwards it to the other copyset members, members acknowledge, and the
//    releaser proceeds only after all updates are acknowledged — eager
//    release consistency with its full update traffic and release stalls;
//  * locks use a static manager with a FIFO queue (grants carry no data —
//    the updates already happened); barriers are a gather/release round;
//  * the LAP predictor runs scoring-only at the lock managers, fed by the
//    same events as under AEC, completing the paper's three-protocol
//    accuracy comparison.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/bitset.hpp"
#include "common/stats.hpp"
#include "dsm/context.hpp"
#include "dsm/machine.hpp"
#include "dsm/protocol.hpp"
#include "dsm/system.hpp"
#include "locks/strategy.hpp"
#include "mem/diff.hpp"
#include "policy/engine.hpp"
#include "policy/lap.hpp"
#include "policy/policy.hpp"
#include "sim/processor.hpp"

namespace aecdsm::erc {

class ErcProtocol;

/// Run-wide ERC state: lock manager records, the per-page copysets (stored
/// with the page's home; handlers touching them run as services there), and
/// the scoring-only LAP instances.
struct ErcShared {
  ErcShared(const SystemParams& p, policy::ConsistencyPolicy pol)
      : params(p),
        policy(std::move(pol)),
        strategy(aecdsm::locks::parse_strategy(p.locks.strategy)),
        locks(static_cast<std::size_t>(p.num_procs)),
        lockstats(static_cast<std::size_t>(p.num_procs)),
        lap(static_cast<std::size_t>(p.num_procs)) {}

  const SystemParams params;
  const policy::ConsistencyPolicy policy;
  // The lock-record shards below are also named `locks`, so the strategy
  // namespace needs full qualification inside this class.
  const aecdsm::locks::Strategy strategy;  ///< locks.strategy, parsed once

  /// Collect LockMgrStats? Off for the default central/no-stats config so
  /// artifacts stay byte-identical to pre-locks baselines.
  bool collect_lock_stats() const {
    return strategy != aecdsm::locks::Strategy::kCentral ||
           params.locks.collect_stats;
  }

  std::vector<ErcProtocol*> nodes;

  struct LockRecord {
    bool taken = false;
    ProcId owner = kNoProc;
    ProcId last_releaser = kNoProc;
    /// Acquire counter (++ per grant). Unused by central ERC bookkeeping;
    /// the mcs strategy keys its successor links by the holder's tenure.
    std::uint32_t counter = 0;
    /// hier strategy: consecutive grants that skipped a cross-cohort FIFO
    /// head (locks::pick_waiter's fairness budget).
    int hier_streak = 0;
    // Crash-failover dedup state (see aec::LockRecord): pending request
    // serial per proc, serial echoed at grant, last processed release.
    std::map<ProcId, std::uint64_t> req_serial;
    std::map<ProcId, std::uint64_t> granted_serial;
    std::map<ProcId, std::uint64_t> released_serial;
  };
  /// Lock records and LAP instances, sharded by manager node (lock %
  /// nprocs): ERC's lock handling is fully centralized at the manager, so
  /// each shard — including lazy insertion — is only ever touched by that
  /// node's worker under the parallel engine.
  std::vector<std::map<LockId, LockRecord>> locks;

  /// Copyset per page (bit p = processor p caches the page). DynBitset: no
  /// 64-node cap, so k x k mesh sweeps reach 256/1024 nodes.
  std::vector<DynBitset> copyset;

  /// Strategy counters, sharded like the lock records: manager-side paths
  /// update the manager node's slot, the mcs direct handoff (an exclusive
  /// event) the handler node's slot. run_app sums the shards.
  std::vector<LockMgrStats> lockstats;

  struct BarrierGather {
    int arrived = 0;
  } barrier;

  std::vector<std::map<LockId, policy::LockLap>> lap;

  LockRecord& lock(LockId l) {
    return lock(l, static_cast<ProcId>(l % static_cast<LockId>(params.num_procs)));
  }
  policy::LockLap& lap_of(LockId l) {
    return lap_of(l, static_cast<ProcId>(l % static_cast<LockId>(params.num_procs)));
  }

  /// Manager-aware lookups: after a crash failover the record and its LAP
  /// instance live in the re-elected manager's shard (handlers pass
  /// Machine::lock_manager(l)).
  LockRecord& lock(LockId l, ProcId mgr) {
    return locks[static_cast<std::size_t>(mgr)][l];
  }
  policy::LockLap& lap_of(LockId l, ProcId mgr) {
    return policy::scoring_lap(lap[static_cast<std::size_t>(mgr)], params, l);
  }
  LockRecord* find_lock(LockId l, ProcId mgr) {
    auto& shard = locks[static_cast<std::size_t>(mgr)];
    auto it = shard.find(l);
    return it == shard.end() ? nullptr : &it->second;
  }

  /// Crash failover: move the record and LAP instance between manager
  /// shards (exclusive-event only).
  void migrate_lock(LockId l, ProcId from, ProcId to) {
    auto rec = locks[static_cast<std::size_t>(from)].extract(l);
    if (!rec.empty()) locks[static_cast<std::size_t>(to)].insert(std::move(rec));
    auto lp = lap[static_cast<std::size_t>(from)].extract(l);
    if (!lp.empty()) lap[static_cast<std::size_t>(to)].insert(std::move(lp));
  }
};

class ErcProtocol : public policy::PolicyEngine {
 public:
  ErcProtocol(dsm::Machine& m, ProcId self, std::shared_ptr<ErcShared> shared);
  ~ErcProtocol() override;

  std::string name() const override { return pol_.name; }

  void on_read_fault(PageId page) override;
  void on_write_fault(PageId page) override;
  void acquire(LockId lock) override;
  void release(LockId lock) override;
  void barrier() override;
  void acquire_notice(LockId lock) override;

  const ErcShared& shared() const { return *sh_; }

  /// This node's shard of the lock-strategy counters (summed by run_app).
  LockMgrStats lockmgr_stats() const override {
    return sh_->lockstats[static_cast<std::size_t>(self_)];
  }

 private:
  ErcProtocol& peer(ProcId p) { return *sh_->nodes[static_cast<std::size_t>(p)]; }
  ProcId home_of(PageId pg) const {
    return static_cast<ProcId>(pg % static_cast<PageId>(m_.nprocs()));
  }

  /// Flush all dirty pages: diff, update the copyset through the home, and
  /// wait for every acknowledgement (the eager-RC release stall).
  void flush_updates(sim::Bucket bucket);

  /// Engine-side: the home applies an update and fans it out; the last
  /// member acknowledgement triggers the ack back to the writer.
  void home_handle_update(PageId pg, ProcId writer, const mem::Diff& diff,
                          std::uint64_t update_id);

  /// Engine-side at a member: apply the forwarded update, ack the home.
  void member_apply_update(PageId pg, ProcId home, const mem::Diff& diff,
                           std::uint64_t update_id, ProcId writer);

  /// Engine-side apply helper (frame + twin), with stats.
  void apply_update(PageId pg, const mem::Diff& diff);

  // Lock manager handlers (services on the manager's node). `mgr_at` is the
  // node the message was addressed to: when a crash failover re-elected the
  // manager meanwhile, the handler forwards one hop instead of touching a
  // shard another node's worker owns. `serial` is the crash-failover dedup
  // serial (0 when no crash schedule exists).
  void mgr_handle_request(LockId l, ProcId requester, std::uint64_t serial,
                          ProcId mgr_at);
  void mgr_handle_release(LockId l, ProcId releaser, std::uint64_t serial,
                          ProcId mgr_at);
  void mgr_handle_notice(LockId l, ProcId p, ProcId mgr_at);
  void mgr_grant(LockId l, ProcId to);
  /// Idempotent grant (re)send from the record state (crash dedup path).
  void mgr_send_grant(LockId l, ErcShared::LockRecord& rec, ProcId to);
  void mgr_send_release_ack(LockId l, ProcId releaser, std::uint64_t serial);

  /// Engine-side at the requester: accept the grant iff it answers the
  /// outstanding request (serial echo; always accepted crash-free).
  /// `counter` is the granted tenure's acquire counter (mcs link keying).
  void recv_grant(LockId l, std::uint64_t serial, std::uint32_t counter);

  /// mcs: the manager tells the predecessor (tenure `pred_counter`) who its
  /// queue successor is, so its release can hand the lock over directly.
  void recv_mcs_link(LockId l, std::uint32_t pred_counter, ProcId succ);
  /// mcs: direct lock handoff from the releaser, bypassing the manager.
  /// Runs as an exclusive event (it performs the manager-record bookkeeping
  /// on the successor's node); self-validates against the shared record and
  /// falls back to forwarding a plain release to the manager on mismatch.
  void recv_direct_handoff(LockId l, ProcId releaser);

  void mgr_handle_barrier_arrival();

  // Crash failover (policy::PolicyEngine hooks).
  std::vector<ProcId> lock_sharers(LockId l, ProcId crashed) override;
  void migrate_lock_state(LockId l, ProcId from, ProcId to) override;

  std::shared_ptr<ErcShared> sh_;

  std::set<PageId> dirty_set_;

  /// Pages whose home fetch is in flight, with updates that fanned out to
  /// this node meanwhile: the full-page reply would overwrite them, so they
  /// are queued and re-applied once the copy lands.
  std::set<PageId> fetching_;
  std::map<PageId, std::vector<mem::Diff>> fetch_pending_;

  bool grant_ready_ = false;
  bool barrier_release_ = false;

  // mcs strategy local state (untouched under central/hier): the acquire
  // counter of this node's current/last tenure per lock, and the successor
  // links received from the manager, keyed by the tenure they chain behind
  // (stale keys are pruned when a newer grant is accepted).
  std::map<LockId, std::uint32_t> grant_counter_;
  std::map<LockId, std::map<std::uint32_t, ProcId>> mcs_links_;

  // Crash-failover state (zero in crash-free runs): a node has at most one
  // outstanding acquire, but may hold several locks, so the tenure serial
  // used by release is per lock.
  std::uint64_t awaiting_serial_ = 0;
  std::uint64_t req_op_id_ = 0;
  std::map<LockId, std::uint64_t> cur_serial_;

  /// Outstanding update acknowledgements during a flush.
  int pending_acks_ = 0;
  std::uint64_t next_update_id_ = 1;

  /// Home-side bookkeeping of in-flight fan-outs: update id -> (writer,
  /// remaining member acks).
  struct FanOut {
    ProcId writer = kNoProc;
    int remaining = 0;
  };
  std::map<std::uint64_t, FanOut> fanouts_;
};

/// Suite factory (mirrors aec::AecSuite / tmk::TmSuite).
class ErcSuite {
 public:
  /// Runs `pol` (family kErc) on the eager-RC engine.
  explicit ErcSuite(policy::ConsistencyPolicy pol = default_policy());

  dsm::ProtocolSuite suite();
  const ErcShared* shared() const { return shared_.get(); }
  std::shared_ptr<const ErcShared> shared_handle() const { return shared_; }

  const policy::ConsistencyPolicy& policy() const { return pol_; }

 private:
  static policy::ConsistencyPolicy default_policy();

  policy::ConsistencyPolicy pol_;
  std::shared_ptr<ErcShared> shared_;
};

}  // namespace aecdsm::erc
