#include "erc/protocol.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/check.hpp"
#include "common/log.hpp"
#include "locks/discipline.hpp"
#include "trace/recorder.hpp"

namespace aecdsm::erc {

// kCtl and trace_page() are inherited from policy::PolicyEngine.

#define AECDSM_TRACE(pg, stream_expr)                    \
  do {                                                   \
    if ((pg) == trace_page()) AECDSM_DEBUG(stream_expr); \
  } while (0)

ErcProtocol::ErcProtocol(dsm::Machine& m, ProcId self, std::shared_ptr<ErcShared> shared)
    : policy::PolicyEngine(m, self, shared->policy), sh_(std::move(shared)) {
  if (sh_->nodes.empty()) {
    sh_->nodes.resize(static_cast<std::size_t>(m.nprocs()), nullptr);
    sh_->copyset.assign(m.num_pages(), DynBitset(m.nprocs()));
    for (PageId pg = 0; pg < m.num_pages(); ++pg) {
      sh_->copyset[pg].set(static_cast<int>(pg % static_cast<PageId>(m.nprocs())));
    }
  }
  sh_->nodes[static_cast<std::size_t>(self)] = this;
  dsm::init_round_robin_validity(m, self);
}

ErcProtocol::~ErcProtocol() = default;

// --------------------------------------------------------------------------
// Faults
// --------------------------------------------------------------------------

void ErcProtocol::on_read_fault(PageId pg) {
  const auto& params = m_.params();
  proc().advance(params.interrupt_cycles, sim::Bucket::kData);
  mem::PageFrame& f = store().frame(pg);
  if (f.valid) return;

  // Fetch the current copy from the page's home (which joins us to the
  // copyset — from now on we receive every update of the page).
  const ProcId h = home_of(pg);
  AECDSM_CHECK_MSG(h != self_, "ERC home fault on own page " << pg);
  ++m_.node(self_).faults.cold_faults;
  // Marked before the request goes out: any update fanned out to this node
  // while the fetch is in flight must be deferred, or the full-page reply
  // would overwrite it.
  fetching_.insert(pg);
  fetch_page_from_home(
      pg, h, sim::Bucket::kData,
      [this, h, pg](std::vector<Word>& buf) {
        AECDSM_TRACE(pg, "p" << self_ << " erc-fetch pg" << pg << " (copyset now "
                             << sh_->copyset[pg].count() + 1 << " members)");
        sh_->copyset[pg].set(self_);
        auto span = peer(h).store().page_span(pg);
        buf.assign(span.begin(), span.end());
      },
      [this, pg] {
        // Updates that raced the reply are newer than the copied frame;
        // fold them back in, in arrival order.
        fetching_.erase(pg);
        auto it = fetch_pending_.find(pg);
        if (it != fetch_pending_.end()) {
          for (const mem::Diff& d : it->second) apply_update(pg, d);
          fetch_pending_.erase(it);
        }
      });
  f.valid = true;
  ctx().invalidate_cache_page(pg);
}

void ErcProtocol::on_write_fault(PageId pg) {
  on_read_fault(pg);  // ensure a current copy (no-op when valid)
  mem::PageFrame& f = store().frame(pg);
  if (f.write_protected) {
    AECDSM_CHECK(!f.has_twin());
    proc().advance(m_.params().twin_create_cycles(), sim::Bucket::kData);
    store().make_twin(pg);
    dirty_set_.insert(pg);
    trace_counter(trace::names::kDiffOutstanding, proc().now(),
                  dirty_set_.size());
    f.write_protected = false;
  }
}

// --------------------------------------------------------------------------
// Update flush (release consistency's eager propagation)
// --------------------------------------------------------------------------

void ErcProtocol::flush_updates(sim::Bucket bucket) {
  const auto& params = m_.params();
  if (dirty_set_.empty()) return;

  const std::vector<PageId> dirty(dirty_set_.begin(), dirty_set_.end());
  for (const PageId pg : dirty) {
    // Eager RC: diff creation sits on the release's critical path (never
    // hidden behind a synchronization wait).
    mem::Diff d = create_diff_charged(pg, /*hidden=*/false, bucket);

    store().drop_twin(pg);
    store().frame(pg).write_protected = true;
    dirty_set_.erase(pg);
    trace_counter(trace::names::kDiffOutstanding, proc().now(),
                  dirty_set_.size());
    if (d.empty()) continue;

    const std::uint64_t id =
        (static_cast<std::uint64_t>(self_) << 48) | next_update_id_++;
    ++pending_acks_;
    const std::size_t bytes = kCtl + d.encoded_bytes();
    send_from_app(home_of(pg), bytes,
                  params.diff_apply_cycles(d.changed_words()),
                  [this, pg, id, diff = std::move(d), w = self_]() mutable {
                    peer(home_of(pg)).home_handle_update(pg, w, diff, id);
                  },
                  bucket);
  }
  // The eager-RC stall: the release cannot complete until every copy is
  // updated and acknowledged.
  proc().wait(bucket, [this] { return pending_acks_ == 0; });
}

void ErcProtocol::home_handle_update(PageId pg, ProcId writer, const mem::Diff& diff,
                                     std::uint64_t update_id) {
  AECDSM_TRACE(pg, "home p" << self_ << " update pg" << pg << " from p" << writer
                            << " words=" << diff.changed_words() << " copyset="
                            << sh_->copyset[pg].count());
  // The home applies first (its copy is the fault-service master).
  if (writer != self_) apply_update(pg, diff);

  DynBitset members = sh_->copyset[pg];
  members.reset(writer);
  members.reset(self_);
  const int count = members.count();
  if (count == 0) {
    // Nobody else caches the page: acknowledge the writer directly.
    m_.post(self_, writer, kCtl, m_.params().list_processing_per_elem,
            [this, writer] {
              ErcProtocol& w = peer(writer);
              --w.pending_acks_;
              w.proc().poke();
            });
    return;
  }
  fanouts_[update_id] = FanOut{writer, count};
  for (int q = 0; q < m_.nprocs(); ++q) {
    if (!members.test(q)) continue;
    m_.post(self_, q, kCtl + diff.encoded_bytes(),
            m_.params().diff_apply_cycles(diff.changed_words()),
            [this, pg, q, update_id, diff, h = self_] {
              peer(q).member_apply_update(pg, h, diff, update_id, kNoProc);
            });
  }
}

void ErcProtocol::member_apply_update(PageId pg, ProcId home, const mem::Diff& diff,
                                      std::uint64_t update_id, ProcId /*writer*/) {
  if (fetching_.count(pg) != 0) {
    // A home fetch for this page is in flight; the full-page reply would
    // overwrite this update, so defer it (the fetch handler re-applies it,
    // and this node cannot read the page before the fetch completes).
    fetch_pending_[pg].push_back(diff);
  } else {
    apply_update(pg, diff);
  }
  m_.post(self_, home, kCtl, m_.params().list_processing_per_elem,
          [this, home, update_id] {
            ErcProtocol& hp = peer(home);
            auto it = hp.fanouts_.find(update_id);
            AECDSM_CHECK(it != hp.fanouts_.end());
            if (--it->second.remaining == 0) {
              const ProcId writer = it->second.writer;
              hp.fanouts_.erase(it);
              m_.post(home, writer, kCtl, m_.params().list_processing_per_elem,
                      [this, writer] {
                        ErcProtocol& w = peer(writer);
                        --w.pending_acks_;
                        w.proc().poke();
                      });
            }
          });
}

void ErcProtocol::apply_update(PageId pg, const mem::Diff& diff) {
  AECDSM_TRACE(pg, "p" << self_ << " erc-apply pg" << pg << " words="
                       << diff.changed_words());
  mem::PageFrame& f = store().frame(pg);
  diff.apply_to(std::span<Word>(f.data));
  if (f.has_twin()) diff.apply_to(std::span<Word>(*f.twin));
  ctx().invalidate_cache_page(pg);
  ++dstats_.diffs_applied;
  const Cycles c = m_.params().diff_apply_cycles(diff.changed_words());
  dstats_.apply_cycles += c;
  // Updates are applied engine-side while servicing the home/member message;
  // the apply cost is part of that service, i.e. on the update's critical
  // path, so the span is svc-flagged (never counted as hidden).
  if (trace::Recorder* tr = m_.recorder()) {
    tr->span(self_, trace::Category::kDiff, trace::names::kDiffApply,
             m_.engine().now(), m_.engine().now() + c, "page", pg, "svc", 1);
  }
}

// --------------------------------------------------------------------------
// Locks
// --------------------------------------------------------------------------

void ErcProtocol::acquire_notice(LockId l) {
  const ProcId mgr = m_.lock_manager(l);
  send_from_app(mgr, kCtl, m_.params().list_processing_per_elem,
                [this, l, p = self_, mgr] { mgr_handle_notice(l, p, mgr); },
                sim::Bucket::kSynch);
}

void ErcProtocol::acquire(LockId l) {
  grant_ready_ = false;
  const ProcId mgr = m_.lock_manager(l);
  std::uint64_t serial = 0;
  if (crash_scheduled()) {
    serial = next_op_serial(l);
    awaiting_serial_ = serial;
    cur_serial_[l] = serial;
    req_op_id_ = track_mgr_op(
        l, mgr, serial, [this, l, serial](ProcId nm) {
          m_.post(self_, nm, kCtl, m_.params().list_processing_per_elem * 2,
                  [this, l, p = self_, serial, nm] {
                    mgr_handle_request(l, p, serial, nm);
                  });
        });
  }
  send_from_app(mgr, kCtl, m_.params().list_processing_per_elem * 2,
                [this, l, p = self_, serial, mgr] {
                  mgr_handle_request(l, p, serial, mgr);
                },
                sim::Bucket::kSynch);
  proc().wait(sim::Bucket::kSynch, [this] { return grant_ready_; });
}

void ErcProtocol::release(LockId l) {
  // Eager release consistency: flush and wait before releasing the lock.
  flush_updates(sim::Bucket::kSynch);
  const ProcId mgr = m_.lock_manager(l);

  // mcs: when the manager linked a successor behind this tenure, hand the
  // lock to it directly — one point-to-point message instead of the
  // release/grant pair through the manager. Runs as an exclusive event
  // because the successor performs the manager-record bookkeeping on its
  // own node. Disabled under a crash schedule: handoffs then stay on the
  // manager path the failover chain replays.
  if (sh_->strategy == aecdsm::locks::Strategy::kMcs && !crash_scheduled()) {
    auto& links = mcs_links_[l];
    if (auto lit = links.find(grant_counter_[l]); lit != links.end()) {
      const ProcId succ = lit->second;
      links.erase(lit);
      send_from_app(succ, kCtl, m_.params().list_processing_per_elem * 2,
                    [this, l, p = self_, succ] {
                      peer(succ).recv_direct_handoff(l, p);
                    },
                    sim::Bucket::kSynch, /*exclusive=*/true);
      return;
    }
  }

  const std::uint64_t serial = crash_scheduled() ? cur_serial_[l] : 0;
  if (serial != 0) {
    track_mgr_op(l, mgr, serial, [this, l, serial](ProcId nm) {
      m_.post(self_, nm, kCtl, m_.params().list_processing_per_elem * 2,
              [this, l, p = self_, serial, nm] {
                mgr_handle_release(l, p, serial, nm);
              });
    });
  }
  send_from_app(mgr, kCtl, m_.params().list_processing_per_elem * 2,
                [this, l, p = self_, serial, mgr] {
                  mgr_handle_release(l, p, serial, mgr);
                },
                sim::Bucket::kSynch);
}

void ErcProtocol::recv_grant(LockId l, std::uint64_t serial, std::uint32_t counter) {
  if (crash_scheduled()) {
    if (serial != awaiting_serial_) return;  // duplicate/stale grant
    awaiting_serial_ = 0;
    clear_mgr_op(req_op_id_);
    req_op_id_ = 0;
  }
  grant_counter_[l] = counter;
  if (sh_->strategy == aecdsm::locks::Strategy::kMcs) {
    // Links chained behind past tenures were consumed (or superseded by a
    // manager-path grant that raced the LINK); prune them.
    auto& links = mcs_links_[l];
    links.erase(links.begin(), links.lower_bound(counter));
  }
  grant_ready_ = true;
  proc().poke();
}

void ErcProtocol::recv_mcs_link(LockId l, std::uint32_t pred_counter, ProcId succ) {
  // Store unconditionally: tenure counters are globally unique per lock, so
  // only the tenure whose grant carries `pred_counter` ever consumes this
  // entry; stale keys are pruned when the next grant is accepted.
  mcs_links_[l][pred_counter] = succ;
}

void ErcProtocol::recv_direct_handoff(LockId l, ProcId releaser) {
  const ProcId mgr = m_.lock_manager(l);
  auto& rec = sh_->lock(l, mgr);
  policy::LockLap& lap = sh_->lap_of(l, mgr);
  // The releaser's LINK promised this node is the exact FIFO successor of
  // its tenure — true by construction in crash-free runs (mcs handoffs are
  // disabled under a crash schedule). Validate against the shared record
  // anyway and degrade to a plain manager-path release on any mismatch.
  if (!(rec.taken && rec.owner == releaser && lap.has_waiters() &&
        lap.waiting().front() == self_)) {
    if (sh_->collect_lock_stats()) {
      ++sh_->lockstats[static_cast<std::size_t>(self_)].fallback_rels;
    }
    m_.post(self_, mgr, kCtl, m_.params().list_processing_per_elem * 2,
            [this, l, releaser, mgr] {
              mgr_handle_release(l, releaser, /*serial=*/0, mgr);
            });
    return;
  }
  // The manager's release + grant bookkeeping, performed here — this runs
  // as an exclusive event, so mutating the manager's shard from the
  // successor's node is safe.
  rec.last_releaser = releaser;
  const ProcId to = lap.dequeue_waiter();
  AECDSM_CHECK(to == self_);
  rec.owner = self_;  // rec.taken stays true across the handoff
  ++rec.counter;
  policy::lap_score_grant(lap, rec.last_releaser, self_);
  if (trace::Recorder* tr = m_.recorder()) {
    tr->instant(self_, trace::Category::kLock, trace::names::kLockHandoff,
                m_.engine().now(), "lock", l, "from",
                static_cast<std::uint64_t>(releaser));
  }
  if (sh_->collect_lock_stats()) {
    aecdsm::locks::note_grant(sh_->lockstats[static_cast<std::size_t>(self_)],
                              m_.params(), releaser, self_, lap.waiting_count(),
                              /*direct_handoff=*/true, /*skipped_head=*/false);
  }
  trace_counter(trace::names::kLockQueueDepth, m_.engine().now(),
                lap.waiting_count());
  recv_grant(l, /*serial=*/0, rec.counter);
}

void ErcProtocol::mgr_handle_request(LockId l, ProcId requester,
                                     std::uint64_t serial, ProcId mgr_at) {
  const ProcId mgr = m_.lock_manager(l);
  if (mgr != mgr_at) {
    // Re-elected manager: forward one hop (the record's shard belongs to
    // the new manager's worker).
    m_.post(mgr_at, mgr, kCtl, m_.params().list_processing_per_elem,
            [this, l, requester, serial, mgr] {
              mgr_handle_request(l, requester, serial, mgr);
            });
    return;
  }
  auto& rec = sh_->lock(l, mgr);
  policy::LockLap& lap = sh_->lap_of(l, mgr);
  if (serial != 0) {
    auto gt = rec.granted_serial.find(requester);
    if (gt != rec.granted_serial.end() && serial <= gt->second) {
      // Already-granted tenure: rebuild the lost grant while the requester
      // still owns the lock, drop the stale replay otherwise. A fresh serial
      // from the current owner (release in flight behind it) falls through
      // and queues normally.
      if (serial == gt->second && rec.taken && rec.owner == requester) {
        mgr_send_grant(l, rec, requester);
      }
      return;
    }
    if (lap.waiting_contains(requester)) return;
    rec.req_serial[requester] = serial;
  }
  lap.count_acquire_event();
  if (rec.taken) {
    if (sh_->strategy == aecdsm::locks::Strategy::kMcs && !crash_scheduled()) {
      // MCS: link the new waiter behind its queue predecessor (see the AEC
      // manager for the tenure-counter derivation). Disabled under a crash
      // schedule — handoffs then stay on the manager path the failover
      // chain covers.
      const bool queue_empty = !lap.has_waiters();
      const ProcId pred = queue_empty ? rec.owner : lap.waiting().back();
      const std::uint32_t pred_counter =
          rec.counter + static_cast<std::uint32_t>(lap.waiting_count());
      m_.post(mgr, pred, kCtl, m_.params().list_processing_per_elem,
              [this, l, pred, pred_counter, requester] {
                peer(pred).recv_mcs_link(l, pred_counter, requester);
              });
      if (sh_->collect_lock_stats()) {
        ++sh_->lockstats[static_cast<std::size_t>(mgr)].link_messages;
      }
    }
    lap.enqueue_waiter(requester);
  } else {
    mgr_grant(l, requester);
    if (sh_->collect_lock_stats()) {
      aecdsm::locks::note_grant(sh_->lockstats[static_cast<std::size_t>(mgr)],
                                m_.params(), kNoProc, requester,
                                lap.waiting_count(), /*direct_handoff=*/false,
                                /*skipped_head=*/false);
    }
  }
  trace_counter(trace::names::kLockQueueDepth, m_.engine().now(),
                lap.waiting_count());
}

void ErcProtocol::mgr_grant(LockId l, ProcId to) {
  auto& rec = sh_->lock(l, m_.lock_manager(l));
  rec.taken = true;
  rec.owner = to;
  ++rec.counter;
  // Scoring-only under ERC: the update set is computed but never acted on.
  policy::lap_score_grant(sh_->lap_of(l, m_.lock_manager(l)), rec.last_releaser, to);
  if (crash_scheduled()) rec.granted_serial[to] = rec.req_serial[to];
  mgr_send_grant(l, rec, to);
}

void ErcProtocol::mgr_send_grant(LockId l, ErcShared::LockRecord& rec, ProcId to) {
  std::uint64_t serial = 0;
  if (auto it = rec.granted_serial.find(to); it != rec.granted_serial.end()) {
    serial = it->second;
  }
  m_.post(m_.lock_manager(l), to, kCtl, m_.params().list_processing_per_elem,
          [this, l, to, serial, counter = rec.counter] {
            peer(to).recv_grant(l, serial, counter);
          });
}

void ErcProtocol::mgr_handle_release(LockId l, ProcId releaser,
                                     std::uint64_t serial, ProcId mgr_at) {
  const ProcId mgr = m_.lock_manager(l);
  if (mgr != mgr_at) {
    m_.post(mgr_at, mgr, kCtl, m_.params().list_processing_per_elem,
            [this, l, releaser, serial, mgr] {
              mgr_handle_release(l, releaser, serial, mgr);
            });
    return;
  }
  auto& rec = sh_->lock(l, mgr);
  if (serial != 0) {
    auto& last_rel = rec.released_serial[releaser];
    if (serial <= last_rel) {
      mgr_send_release_ack(l, releaser, serial);  // duplicate: re-confirm only
      return;
    }
    last_rel = serial;
  }
  AECDSM_CHECK(rec.taken && rec.owner == releaser);
  rec.last_releaser = releaser;
  rec.taken = false;
  rec.owner = kNoProc;
  policy::LockLap& lap = sh_->lap_of(l, mgr);
  if (lap.has_waiters()) {
    const aecdsm::locks::Pick pick = aecdsm::locks::pick_waiter(
        lap.waiting(), sh_->strategy, releaser, m_.params(), rec.hier_streak);
    const ProcId to = lap.dequeue_waiter_at(pick.index);
    mgr_grant(l, to);
    if (sh_->collect_lock_stats()) {
      aecdsm::locks::note_grant(sh_->lockstats[static_cast<std::size_t>(mgr)],
                                m_.params(), releaser, to, lap.waiting_count(),
                                /*direct_handoff=*/false, pick.skipped_head);
    }
  }
  trace_counter(trace::names::kLockQueueDepth, m_.engine().now(),
                lap.waiting_count());
  if (serial != 0) mgr_send_release_ack(l, releaser, serial);
}

void ErcProtocol::mgr_send_release_ack(LockId l, ProcId releaser,
                                       std::uint64_t serial) {
  m_.post(m_.lock_manager(l), releaser, kCtl,
          m_.params().list_processing_per_elem, [this, l, releaser, serial] {
            peer(releaser).clear_mgr_op_by_serial(l, serial);
          });
}

void ErcProtocol::mgr_handle_notice(LockId l, ProcId p, ProcId mgr_at) {
  const ProcId mgr = m_.lock_manager(l);
  if (mgr != mgr_at) {
    m_.post(mgr_at, mgr, kCtl, m_.params().list_processing_per_elem,
            [this, l, p, mgr] { mgr_handle_notice(l, p, mgr); });
    return;
  }
  sh_->lap_of(l, mgr).add_notice(p);
}

// --------------------------------------------------------------------------
// Crash failover (policy::PolicyEngine hooks)
// --------------------------------------------------------------------------

std::vector<ProcId> ErcProtocol::lock_sharers(LockId l, ProcId crashed) {
  std::vector<ProcId> out;
  const ErcShared::LockRecord* rec = sh_->find_lock(l, crashed);
  if (rec == nullptr) return out;
  if (rec->taken && rec->owner != kNoProc) out.push_back(rec->owner);
  if (rec->last_releaser != kNoProc) out.push_back(rec->last_releaser);
  return out;
}

void ErcProtocol::migrate_lock_state(LockId l, ProcId from, ProcId to) {
  sh_->migrate_lock(l, from, to);
  // The FIFO queue (the LAP instance's waiting queue doubles as ERC's real
  // queue) is rebuilt from the live requesters' replayed ops.
  sh_->lap_of(l, to).reset_queues();
}

// --------------------------------------------------------------------------
// Barriers
// --------------------------------------------------------------------------

void ErcProtocol::barrier() {
  flush_updates(sim::Bucket::kSynch);
  barrier_release_ = false;
  send_from_app(m_.barrier_manager(), kCtl, m_.params().list_processing_per_elem,
                [this] { mgr_handle_barrier_arrival(); }, sim::Bucket::kSynch);
  proc().wait(sim::Bucket::kSynch, [this] { return barrier_release_; });
}

void ErcProtocol::mgr_handle_barrier_arrival() {
  auto& b = sh_->barrier;
  if (++b.arrived < m_.nprocs()) return;
  b.arrived = 0;
  for (int q = 0; q < m_.nprocs(); ++q) {
    m_.post(m_.barrier_manager(), q, kCtl, m_.params().list_processing_per_elem,
            [this, q] {
              ErcProtocol& p = peer(q);
              p.barrier_release_ = true;
              p.proc().poke();
            });
  }
}

// --------------------------------------------------------------------------
// Suite
// --------------------------------------------------------------------------

policy::ConsistencyPolicy ErcSuite::default_policy() {
  const policy::ConsistencyPolicy* p = policy::find_policy("Munin-ERC");
  AECDSM_CHECK(p != nullptr);
  return *p;
}

ErcSuite::ErcSuite(policy::ConsistencyPolicy pol) : pol_(std::move(pol)) {
  policy::validate(pol_);
  AECDSM_CHECK_MSG(pol_.family == policy::Family::kErc,
                   "ErcSuite asked to run non-ERC policy '" << pol_.name << "'");
}

dsm::ProtocolSuite ErcSuite::suite() {
  dsm::ProtocolSuite s;
  s.name = pol_.name;
  s.make = [this](dsm::Machine& m, ProcId p) -> std::unique_ptr<dsm::Protocol> {
    if (p == 0) shared_ = std::make_shared<ErcShared>(m.params(), pol_);
    return std::make_unique<ErcProtocol>(m, p, shared_);
  };
  return s;
}

}  // namespace aecdsm::erc
