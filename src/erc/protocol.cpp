#include "erc/protocol.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/check.hpp"
#include "common/log.hpp"
#include "trace/recorder.hpp"

namespace aecdsm::erc {

namespace {
constexpr std::size_t kCtl = 32;

PageId trace_page() {
  static const PageId pg = [] {
    const char* v = std::getenv("AECDSM_TRACE_PAGE");
    return v == nullptr ? kNoPage : static_cast<PageId>(std::atoi(v));
  }();
  return pg;
}
}  // namespace

#define AECDSM_TRACE(pg, stream_expr)                    \
  do {                                                   \
    if ((pg) == trace_page()) AECDSM_DEBUG(stream_expr); \
  } while (0)

ErcProtocol::ErcProtocol(dsm::Machine& m, ProcId self, std::shared_ptr<ErcShared> shared)
    : m_(m), self_(self), sh_(std::move(shared)) {
  if (sh_->nodes.empty()) {
    sh_->nodes.resize(static_cast<std::size_t>(m.nprocs()), nullptr);
    sh_->copyset.assign(m.num_pages(), 0);
    for (PageId pg = 0; pg < m.num_pages(); ++pg) {
      sh_->copyset[pg] = 1ULL << (pg % static_cast<PageId>(m.nprocs()));
    }
  }
  sh_->nodes[static_cast<std::size_t>(self)] = this;
  dsm::init_round_robin_validity(m, self);
}

ErcProtocol::~ErcProtocol() = default;

void ErcProtocol::send_from_app(ProcId to, std::size_t bytes, Cycles svc_cost,
                                std::function<void()> handler, sim::Bucket bucket) {
  proc().advance(m_.params().message_overhead, bucket);
  proc().sync();
  m_.post(self_, to, bytes, svc_cost, std::move(handler));
}

void ErcProtocol::post_dynamic(ProcId from, ProcId to, std::size_t bytes,
                               std::function<Cycles()> cost,
                               std::function<void()> handler) {
  m_.transport().send(from, to, bytes,
                    [this, to, c = std::move(cost), h = std::move(handler)]() mutable {
                      const Cycles done = m_.node(to).proc->service(c());
                      m_.engine().schedule(done, std::move(h));
                    });
}

// --------------------------------------------------------------------------
// Faults
// --------------------------------------------------------------------------

void ErcProtocol::on_read_fault(PageId pg) {
  const auto& params = m_.params();
  proc().advance(params.interrupt_cycles, sim::Bucket::kData);
  mem::PageFrame& f = store().frame(pg);
  if (f.valid) return;

  // Fetch the current copy from the page's home (which joins us to the
  // copyset — from now on we receive every update of the page).
  const ProcId h = home_of(pg);
  AECDSM_CHECK_MSG(h != self_, "ERC home fault on own page " << pg);
  ++m_.node(self_).faults.cold_faults;
  proc().advance(params.message_overhead, sim::Bucket::kData);
  proc().sync();
  bool done = false;
  auto buf = std::make_shared<std::vector<Word>>();
  const std::size_t page_words = params.words_per_page();
  fetching_.insert(pg);
  post_dynamic(
      self_, h, kCtl,
      [this, h, pg, buf, page_words] {
        AECDSM_TRACE(pg, "p" << self_ << " erc-fetch pg" << pg << " (copyset now "
                             << (sh_->copyset[pg] | (1ULL << self_)) << ")");
        sh_->copyset[pg] |= 1ULL << self_;
        auto span = peer(h).store().page_span(pg);
        *buf = std::vector<Word>(span.begin(), span.end());
        return m_.params().memory_access_cycles(page_words);
      },
      [this, h, pg, buf, page_words, &done] {
        post_dynamic(
            h, self_, m_.params().page_bytes + kCtl,
            [this, page_words] { return m_.params().memory_access_cycles(page_words); },
            [this, pg, buf, &done] {
              auto span = store().page_span(pg);
              std::copy(buf->begin(), buf->end(), span.begin());
              // Updates that raced the reply are newer than the copied
              // frame; fold them back in, in arrival order.
              fetching_.erase(pg);
              auto it = fetch_pending_.find(pg);
              if (it != fetch_pending_.end()) {
                for (const mem::Diff& d : it->second) apply_update(pg, d);
                fetch_pending_.erase(it);
              }
              done = true;
              proc().poke();
            });
      });
  proc().wait(sim::Bucket::kData, [&done] { return done; });
  f.valid = true;
  ctx().invalidate_cache_page(pg);
}

void ErcProtocol::on_write_fault(PageId pg) {
  on_read_fault(pg);  // ensure a current copy (no-op when valid)
  mem::PageFrame& f = store().frame(pg);
  if (f.write_protected) {
    AECDSM_CHECK(!f.has_twin());
    proc().advance(m_.params().twin_create_cycles(), sim::Bucket::kData);
    store().make_twin(pg);
    dirty_set_.insert(pg);
    f.write_protected = false;
  }
}

// --------------------------------------------------------------------------
// Update flush (release consistency's eager propagation)
// --------------------------------------------------------------------------

void ErcProtocol::flush_updates(sim::Bucket bucket) {
  const auto& params = m_.params();
  if (dirty_set_.empty()) return;

  const std::vector<PageId> dirty(dirty_set_.begin(), dirty_set_.end());
  for (const PageId pg : dirty) {
    const Cycles c = params.diff_create_cycles();
    const Cycles trace_t0 = proc().now();
    proc().advance(c, bucket);
    proc().sync();
    if (trace::Recorder* tr = m_.recorder()) {
      tr->span(self_, trace::Category::kDiff, trace::names::kDiffCreate,
               trace_t0, proc().now(), "page", pg);
    }
    mem::Diff d = store().diff_against_twin(pg);
    ++dstats_.diffs_created;
    dstats_.diff_bytes += d.encoded_bytes();
    dstats_.create_cycles += c;  // eager RC: never hidden

    store().drop_twin(pg);
    store().frame(pg).write_protected = true;
    dirty_set_.erase(pg);
    if (d.empty()) continue;

    const std::uint64_t id =
        (static_cast<std::uint64_t>(self_) << 48) | next_update_id_++;
    ++pending_acks_;
    const std::size_t bytes = kCtl + d.encoded_bytes();
    send_from_app(home_of(pg), bytes,
                  params.diff_apply_cycles(d.changed_words()),
                  [this, pg, id, diff = std::move(d), w = self_]() mutable {
                    peer(home_of(pg)).home_handle_update(pg, w, diff, id);
                  },
                  bucket);
  }
  // The eager-RC stall: the release cannot complete until every copy is
  // updated and acknowledged.
  proc().wait(bucket, [this] { return pending_acks_ == 0; });
}

void ErcProtocol::home_handle_update(PageId pg, ProcId writer, const mem::Diff& diff,
                                     std::uint64_t update_id) {
  AECDSM_TRACE(pg, "home p" << self_ << " update pg" << pg << " from p" << writer
                            << " words=" << diff.changed_words() << " copyset="
                            << sh_->copyset[pg]);
  // The home applies first (its copy is the fault-service master).
  if (writer != self_) apply_update(pg, diff);

  std::uint64_t members = sh_->copyset[pg] & ~(1ULL << writer) & ~(1ULL << self_);
  int count = 0;
  for (int q = 0; q < m_.nprocs(); ++q) {
    if ((members >> q) & 1ULL) ++count;
  }
  if (count == 0) {
    // Nobody else caches the page: acknowledge the writer directly.
    m_.post(self_, writer, kCtl, m_.params().list_processing_per_elem,
            [this, writer] {
              ErcProtocol& w = peer(writer);
              --w.pending_acks_;
              w.proc().poke();
            });
    return;
  }
  fanouts_[update_id] = FanOut{writer, count};
  for (int q = 0; q < m_.nprocs(); ++q) {
    if (((members >> q) & 1ULL) == 0) continue;
    m_.post(self_, q, kCtl + diff.encoded_bytes(),
            m_.params().diff_apply_cycles(diff.changed_words()),
            [this, pg, q, update_id, diff, h = self_] {
              peer(q).member_apply_update(pg, h, diff, update_id, kNoProc);
            });
  }
}

void ErcProtocol::member_apply_update(PageId pg, ProcId home, const mem::Diff& diff,
                                      std::uint64_t update_id, ProcId /*writer*/) {
  if (fetching_.count(pg) != 0) {
    // A home fetch for this page is in flight; the full-page reply would
    // overwrite this update, so defer it (the fetch handler re-applies it,
    // and this node cannot read the page before the fetch completes).
    fetch_pending_[pg].push_back(diff);
  } else {
    apply_update(pg, diff);
  }
  m_.post(self_, home, kCtl, m_.params().list_processing_per_elem,
          [this, home, update_id] {
            ErcProtocol& hp = peer(home);
            auto it = hp.fanouts_.find(update_id);
            AECDSM_CHECK(it != hp.fanouts_.end());
            if (--it->second.remaining == 0) {
              const ProcId writer = it->second.writer;
              hp.fanouts_.erase(it);
              m_.post(home, writer, kCtl, m_.params().list_processing_per_elem,
                      [this, writer] {
                        ErcProtocol& w = peer(writer);
                        --w.pending_acks_;
                        w.proc().poke();
                      });
            }
          });
}

void ErcProtocol::apply_update(PageId pg, const mem::Diff& diff) {
  AECDSM_TRACE(pg, "p" << self_ << " erc-apply pg" << pg << " words="
                       << diff.changed_words());
  mem::PageFrame& f = store().frame(pg);
  diff.apply_to(std::span<Word>(f.data));
  if (f.has_twin()) diff.apply_to(std::span<Word>(*f.twin));
  ctx().invalidate_cache_page(pg);
  ++dstats_.diffs_applied;
  const Cycles c = m_.params().diff_apply_cycles(diff.changed_words());
  dstats_.apply_cycles += c;
  // Updates are applied engine-side while servicing the home/member message;
  // the apply cost is part of that service, i.e. on the update's critical
  // path, so the span is svc-flagged (never counted as hidden).
  if (trace::Recorder* tr = m_.recorder()) {
    tr->span(self_, trace::Category::kDiff, trace::names::kDiffApply,
             m_.engine().now(), m_.engine().now() + c, "page", pg, "svc", 1);
  }
}

// --------------------------------------------------------------------------
// Locks
// --------------------------------------------------------------------------

void ErcProtocol::acquire_notice(LockId l) {
  send_from_app(m_.lock_manager(l), kCtl, m_.params().list_processing_per_elem,
                [this, l, p = self_] { sh_->lap_of(l).add_notice(p); },
                sim::Bucket::kSynch);
}

void ErcProtocol::acquire(LockId l) {
  grant_ready_ = false;
  send_from_app(m_.lock_manager(l), kCtl, m_.params().list_processing_per_elem * 2,
                [this, l, p = self_] { mgr_handle_request(l, p); },
                sim::Bucket::kSynch);
  proc().wait(sim::Bucket::kSynch, [this] { return grant_ready_; });
}

void ErcProtocol::release(LockId l) {
  // Eager release consistency: flush and wait before releasing the lock.
  flush_updates(sim::Bucket::kSynch);
  send_from_app(m_.lock_manager(l), kCtl, m_.params().list_processing_per_elem * 2,
                [this, l, p = self_] { mgr_handle_release(l, p); },
                sim::Bucket::kSynch);
}

void ErcProtocol::mgr_handle_request(LockId l, ProcId requester) {
  auto& rec = sh_->locks[l];
  aec::LockLap& lap = sh_->lap_of(l);
  lap.count_acquire_event();
  if (rec.taken) {
    lap.enqueue_waiter(requester);
  } else {
    mgr_grant(l, requester);
  }
}

void ErcProtocol::mgr_grant(LockId l, ProcId to) {
  auto& rec = sh_->locks[l];
  rec.taken = true;
  rec.owner = to;
  aec::LockLap& lap = sh_->lap_of(l);
  if (rec.last_releaser != kNoProc) lap.record_transfer(rec.last_releaser, to);
  lap.consume_notice(to);
  lap.compute_update_set(to);  // scoring-only under ERC
  m_.post(m_.lock_manager(l), to, kCtl, m_.params().list_processing_per_elem,
          [this, to] {
            ErcProtocol& p = peer(to);
            p.grant_ready_ = true;
            p.proc().poke();
          });
}

void ErcProtocol::mgr_handle_release(LockId l, ProcId releaser) {
  auto& rec = sh_->locks[l];
  AECDSM_CHECK(rec.taken && rec.owner == releaser);
  rec.last_releaser = releaser;
  rec.taken = false;
  rec.owner = kNoProc;
  aec::LockLap& lap = sh_->lap_of(l);
  if (lap.has_waiters()) mgr_grant(l, lap.dequeue_waiter());
}

// --------------------------------------------------------------------------
// Barriers
// --------------------------------------------------------------------------

void ErcProtocol::barrier() {
  flush_updates(sim::Bucket::kSynch);
  barrier_release_ = false;
  send_from_app(m_.barrier_manager(), kCtl, m_.params().list_processing_per_elem,
                [this] { mgr_handle_barrier_arrival(); }, sim::Bucket::kSynch);
  proc().wait(sim::Bucket::kSynch, [this] { return barrier_release_; });
}

void ErcProtocol::mgr_handle_barrier_arrival() {
  auto& b = sh_->barrier;
  if (++b.arrived < m_.nprocs()) return;
  b.arrived = 0;
  for (int q = 0; q < m_.nprocs(); ++q) {
    m_.post(m_.barrier_manager(), q, kCtl, m_.params().list_processing_per_elem,
            [this, q] {
              ErcProtocol& p = peer(q);
              p.barrier_release_ = true;
              p.proc().poke();
            });
  }
}

// --------------------------------------------------------------------------
// Suite
// --------------------------------------------------------------------------

dsm::ProtocolSuite ErcSuite::suite() {
  dsm::ProtocolSuite s;
  s.name = "Munin-ERC";
  s.make = [this](dsm::Machine& m, ProcId p) -> std::unique_ptr<dsm::Protocol> {
    if (p == 0) shared_ = std::make_shared<ErcShared>(m.params());
    return std::make_unique<ErcProtocol>(m, p, shared_);
  };
  return s;
}

}  // namespace aecdsm::erc
