// TreadMarks-style lazy release consistency — the paper's baseline (§4.3).
//
// Implemented machinery:
//  * vector timestamps and intervals; an interval ends whenever this node
//    serves a lock grant, releases a lock, acquires a lock, or arrives at a
//    barrier;
//  * write notices: at interval end every still-dirty page enters the
//    interval's notice entry; lock grants carry the entries the acquirer
//    has not seen (vector-clock filtering), which invalidate pages;
//  * lazy diffs: diffs are created at the *writer* only when some processor
//    requests them on an access miss — so diff creation sits on the
//    critical path of both the requester (data time) and the server (ipc
//    time), the behaviour the paper contrasts AEC against;
//  * distributed lock ownership: the static manager forwards a request to
//    its owner hint; non-owners forward along their hand-off pointer;
//    an owner inside its critical section queues the request locally;
//  * barriers: one gather/broadcast round through the manager on node 0,
//    merging vector clocks and distributing the step's write notices.
//
// For the paper's §5.1 robustness claim, the same LAP predictor runs here
// in scoring-only mode (fed by grant events and acquire notices) — it never
// influences TreadMarks' behaviour.
#pragma once

#include <compare>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <ostream>
#include <set>
#include <vector>

#include "common/stats.hpp"
#include "dsm/context.hpp"
#include "dsm/machine.hpp"
#include "dsm/protocol.hpp"
#include "dsm/system.hpp"
#include "mem/diff.hpp"
#include "policy/engine.hpp"
#include "policy/lap.hpp"
#include "policy/policy.hpp"
#include "sim/processor.hpp"

namespace aecdsm::tmk {

class TmProtocol;

using VectorTime = std::vector<std::uint32_t>;

/// One interval's write notices: the pages `writer` dirtied in the interval
/// stamped `vt`.
struct NoticeEntry {
  ProcId writer = kNoProc;
  VectorTime vt;
  std::vector<PageId> pages;
};

/// Run-wide TreadMarks state (manager hints, barrier gather, LAP scorer).
struct TmShared {
  TmShared(const SystemParams& p, policy::ConsistencyPolicy pol)
      : params(p),
        policy(std::move(pol)),
        owner_hint(static_cast<std::size_t>(p.num_procs)) {}

  const SystemParams params;
  const policy::ConsistencyPolicy policy;
  std::vector<TmProtocol*> nodes;

  /// Manager-side owner hints (start: manager grants first requester),
  /// sharded by manager node (lock % nprocs): every hint access runs as a
  /// service on the lock's manager, so under the parallel engine each shard
  /// — including its lazy insertions — belongs to one node's worker.
  std::vector<std::map<LockId, ProcId>> owner_hint;

  std::map<LockId, ProcId>& hint_shard(LockId l) {
    return owner_hint[static_cast<std::size_t>(
        l % static_cast<LockId>(params.num_procs))];
  }

  /// Manager-aware variant: after a crash failover the hint lives in the
  /// re-elected manager's shard (handlers pass Machine::lock_manager(l)).
  std::map<LockId, ProcId>& hint_shard(LockId l, ProcId mgr) {
    (void)l;
    return owner_hint[static_cast<std::size_t>(mgr)];
  }

  /// Crash failover: move the owner hint between manager shards
  /// (exclusive-event only).
  void migrate_hint(LockId l, ProcId from, ProcId to) {
    auto node = owner_hint[static_cast<std::size_t>(from)].extract(l);
    if (!node.empty()) owner_hint[static_cast<std::size_t>(to)].insert(std::move(node));
  }

  /// Barrier gather state (node 0). Arrivals carry each processor's vector
  /// time and the notice entries it created since the previous barrier; the
  /// release redistributes to each processor exactly the entries its clock
  /// has not covered (current dirty sets alone would under-report: a lazily
  /// served diff cleans the page while its interval notices still need to
  /// reach everyone).
  struct BarrierGather {
    int arrived = 0;
    VectorTime merged_vt;
    std::vector<VectorTime> arrival_vt;
    std::vector<NoticeEntry> entries;
  } barrier;

  /// Scoring-only LAP instances (paper §5.1: LAP accuracy under TreadMarks).
  /// Mutated by events at the manager *and* the current owner, so every
  /// write goes through Engine::at_commit: under the parallel engine the
  /// mutations apply serially at replay, in sequential event order, and the
  /// map (including lazy insertion) is never touched concurrently.
  std::map<LockId, policy::LockLap> lap;

  policy::LockLap& lap_of(LockId l) { return policy::scoring_lap(lap, params, l); }
};

class TmProtocol : public policy::PolicyEngine {
 public:
  TmProtocol(dsm::Machine& m, ProcId self, std::shared_ptr<TmShared> shared);
  ~TmProtocol() override;

  std::string name() const override { return pol_.name; }

  void on_read_fault(PageId page) override;
  void on_write_fault(PageId page) override;
  void acquire(LockId lock) override;
  void release(LockId lock) override;
  void barrier() override;
  void acquire_notice(LockId lock) override;

  const TmShared& shared() const { return *sh_; }

 private:
  /// Lazily created diff. The tag orders creation: for any word written
  /// under a lock chain, fetch-before-write forces the older writer's diff
  /// to be materialized before the newer writer's — at a strictly later
  /// simulated time — so creation-time order is a sound application order
  /// for conflicting words (concurrent diffs touch disjoint words in
  /// data-race-free programs). The tag is therefore (creation time, node,
  /// per-node counter): any refinement of time order works, and this one
  /// needs no cross-node counter, so every node mints identical tags under
  /// the sequential and the parallel engine. Per-page vector-time tags are
  /// NOT sound here: a page shared by several locks can carry concurrent
  /// intervals whose clock sums tie or invert relative to a single word's
  /// chain.
  struct DiffTag {
    Cycles t = 0;           ///< serving event's simulated time
    ProcId node = kNoProc;  ///< creating node (time tie-break)
    std::uint64_t k = 0;    ///< per-node creation counter
    friend auto operator<=>(const DiffTag&, const DiffTag&) = default;
    friend std::ostream& operator<<(std::ostream& os, const DiffTag& tg) {
      return os << tg.t << "/p" << tg.node << "/" << tg.k;
    }
  };
  struct StoredDiff {
    DiffTag tag;
    mem::Diff diff;
  };

  struct PageState {
    bool ever_valid = false;        ///< frame content is a sound base
    bool dirty = false;             ///< twin present, un-diffed local mods
    std::vector<StoredDiff> stored; ///< diffs this node created for the page
    std::set<ProcId> pending;       ///< writers whose diffs must be fetched
    std::map<ProcId, std::size_t> fetched_upto;  ///< stored-diff index consumed
    /// Creation tag of the newest diff applied to each word. Batches fetched
    /// at different times can interleave creation order (a later batch may
    /// carry an older diff); per-word tags stop stale values from reverting
    /// newer ones. Local writes need no stamp: a conflicting remote write
    /// is always fetched before the local one happens (lock-chain h-b).
    std::vector<DiffTag> word_tag;
  };

  /// A queued lock request. `serial` is the crash-failover dedup serial the
  /// grant must echo (0 in crash-free runs).
  struct Waiter {
    ProcId p = kNoProc;
    VectorTime vt;
    std::uint64_t serial = 0;
  };

  struct LockLocal {
    bool owner = false;
    bool in_cs = false;
    ProcId handed_to = kNoProc;
    std::uint64_t handed_serial = 0;  ///< serial of the request last granted
    std::deque<Waiter> waiting;
    bool grant_ready = false;
    // Crash-failover state (zero in crash-free runs).
    std::uint64_t awaiting_serial = 0;
    std::uint64_t req_op_id = 0;
  };

  // Helpers.
  TmProtocol& peer(ProcId p) { return *sh_->nodes[static_cast<std::size_t>(p)]; }
  PageState& page(PageId pg) { return pages_[pg]; }

  static std::uint64_t vt_sum(const VectorTime& vt);

  /// End the current interval: bump own clock, log the dirty set.
  void end_interval();

  /// Append a notice entry (deduplicated) and return true if it was new.
  bool absorb_entry(const NoticeEntry& e);

  /// Invalidate local copies named by `e` (writer != self).
  void apply_entry_invalidations(const NoticeEntry& e);

  // Fault machinery.
  void handle_fault(PageId pg, bool is_write);
  void resolve_page(PageId pg);  ///< valid after this
  void fetch_pending_diffs(PageId pg, sim::Bucket bucket);

  /// Serve a diff request (engine-side at the writer): stored diffs after
  /// `after`, creating the live diff first if the page is dirty. `cost`
  /// accumulates the server cycles (diff creation happens here — TreadMarks'
  /// critical-path diffing).
  std::vector<StoredDiff> serve_diffs(PageId pg, std::size_t after, Cycles& cost);

  // Lock machinery (engine-side handlers). `serial` is the crash-failover
  // dedup serial the eventual grant echoes (0 crash-free); `mgr_at` on the
  // manager handlers is the node the message was addressed to — when a
  // crash failover re-elected the hint manager meanwhile, the handler
  // forwards one hop instead of touching a shard another worker owns.
  void mgr_route_request(LockId l, ProcId requester,
                         std::shared_ptr<VectorTime> req_vt,
                         std::uint64_t serial, ProcId mgr_at);
  void mgr_set_hint(LockId l, ProcId p, ProcId mgr_at);
  bool duplicate_waiter(const LockLocal& ll, ProcId requester,
                        std::uint64_t serial) const;
  void lock_request_arrive(LockId l, ProcId requester, VectorTime req_vt,
                           std::uint64_t serial);
  void requeue_request(LockId l, ProcId requester, VectorTime req_vt,
                       std::uint64_t serial);
  void serve_grant(LockId l, ProcId requester, const VectorTime& req_vt,
                   bool engine_side, std::uint64_t serial);
  void recv_grant(LockId l, std::vector<NoticeEntry> entries, VectorTime owner_vt,
                  std::uint64_t serial);

  // Crash failover (policy::PolicyEngine hooks). TreadMarks' manager holds
  // only the owner hint, so failover migrates the hint entry; distributed
  // waiting queues live at surviving owners. A crashed *owner* is a
  // stall-until-recovery case by design (§ DESIGN.md 12).
  std::vector<ProcId> lock_sharers(LockId l, ProcId crashed) override;
  void migrate_lock_state(LockId l, ProcId from, ProcId to) override;

  // Barrier machinery.
  void mgr_barrier_arrive(ProcId p, VectorTime vt, std::vector<NoticeEntry> entries);
  void recv_barrier_release(VectorTime merged, std::vector<NoticeEntry> entries);

  std::shared_ptr<TmShared> sh_;

  std::uint64_t diff_k_ = 0;  ///< per-node DiffTag counter

  VectorTime vt_;
  std::vector<PageState> pages_;
  std::set<PageId> dirty_set_;
  /// Pages write-faulted in the current interval. Kept separately from the
  /// twin state: serving a diff mid-interval cleans the twin but the
  /// interval's write notices must still be issued, or processors that did
  /// not fetch the diff never learn of the writes.
  std::set<PageId> interval_writes_;
  std::vector<NoticeEntry> log_;
  std::set<std::pair<ProcId, std::uint32_t>> seen_intervals_;
  std::map<LockId, LockLocal> locks_;

  bool barrier_release_ = false;
  std::uint32_t last_barrier_own_ = 0;  ///< own clock at the previous barrier
  std::uint64_t invalidations_pending_cost_ = 0;
};

/// Suite factory (mirrors aec::AecSuite).
class TmSuite {
 public:
  /// Runs `pol` (family kTmk) on the TreadMarks engine.
  explicit TmSuite(policy::ConsistencyPolicy pol = default_policy());

  dsm::ProtocolSuite suite();
  const TmShared* shared() const { return shared_.get(); }
  std::shared_ptr<const TmShared> shared_handle() const { return shared_; }

  const policy::ConsistencyPolicy& policy() const { return pol_; }

 private:
  static policy::ConsistencyPolicy default_policy();

  policy::ConsistencyPolicy pol_;
  std::shared_ptr<TmShared> shared_;
};

}  // namespace aecdsm::tmk
